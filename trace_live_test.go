package wanamcast

// Live-cluster coverage for the observability PR: the flight recorder
// dumps parseable JSONL the moment the §2.2 checker sees a violation, the
// introspection plane serves /metrics and /spans while a workload is in
// flight, and end-to-end tracing stays cheap enough that a traced run
// sustains at least 90% of an untraced run's ordered/s.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wanamcast/internal/harness"
)

// pushLoad casts n A1 multicasts to both groups round-robin across
// processes and blocks until every copy is delivered. Returns ordered/s.
func pushLoad(t *testing.T, l *LiveCluster, n int) float64 {
	t.Helper()
	topo := l.Topology()
	begin := time.Now()
	ids := make([]MessageID, 0, n)
	for i := 0; i < n; i++ {
		from := l.Process(GroupID(i%2), i%3)
		ids = append(ids, l.Multicast(from, fmt.Sprintf("m-%d", i), 0, 1))
	}
	for _, id := range ids {
		if !l.WaitDelivered(id, topo.N(), 30*time.Second) {
			t.Fatalf("%v delivered by %d of %d", id, l.DeliveredCount(id), topo.N())
		}
	}
	return float64(n) / time.Since(begin).Seconds()
}

// TestFlightDumpOnViolation injects a forged delivery into the live
// checker and verifies CheckProperties trips the flight recorder: the
// dump file exists, parses line-by-line as JSON, and holds real spans.
func TestFlightDumpOnViolation(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "flight.jsonl")
	l := NewLiveCluster(LiveConfig{
		Groups:     2,
		PerGroup:   3,
		BasePort:   23100,
		WANDelay:   2 * time.Millisecond,
		MaxBatch:   16,
		Pipeline:   2,
		Check:      true,
		TraceSpans: true,
		SpanBuf:    512,
		FlightDump: dump,
	})
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	pushLoad(t, l, 20)
	if v := l.CheckProperties(); len(v) != 0 {
		t.Fatalf("clean run reports violations: %v", v)
	}
	if _, err := os.Stat(dump); !os.IsNotExist(err) {
		t.Fatalf("flight recorder fired without a violation (stat err=%v)", err)
	}

	// Forge a delivery of a message that was never cast: uniform
	// integrity fails and the recorder must dump the retained spans.
	l.mu.Lock()
	l.checker.RecordDeliver(l.Topology().AllProcesses()[0], MessageID{Origin: 99, Seq: 999})
	l.mu.Unlock()
	if v := l.CheckProperties(); len(v) == 0 {
		t.Fatal("injected violation not detected")
	}

	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("flight dump missing after violation: %v", err)
	}
	defer f.Close()
	stages := map[string]int{}
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var ev struct {
			Span  uint64 `json:"span"`
			Stage string `json:"stage"`
			At    int64  `json:"at_ns"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("unparseable JSONL line %d: %q: %v", lines+1, sc.Text(), err)
		}
		if ev.Stage == "" || ev.At == 0 {
			t.Fatalf("span on line %d lacks stage/timestamp: %q", lines+1, sc.Text())
		}
		stages[ev.Stage]++
		lines++
	}
	if lines == 0 {
		t.Fatal("flight dump is empty")
	}
	for _, want := range []string{"cast", "deliver"} {
		if stages[want] == 0 {
			t.Fatalf("dump holds no %q spans (stages: %v)", want, stages)
		}
	}
	t.Logf("flight dump: %d spans across stages %v", lines, stages)
}

// TestTelemetryServesUnderLoad mounts the introspection plane on a traced
// live cluster and scrapes /metrics, /spans, and /healthz while a
// workload is in flight.
func TestTelemetryServesUnderLoad(t *testing.T) {
	l := NewLiveCluster(LiveConfig{
		Groups:     2,
		PerGroup:   3,
		BasePort:   23200,
		WANDelay:   2 * time.Millisecond,
		MaxBatch:   16,
		Pipeline:   2,
		TraceSpans: true,
		SpanBuf:    512,
	})
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	srv, err := harness.ServeTelemetry("127.0.0.1:0", l.TelemetrySource("test", nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		pushLoad(t, l, 60)
	}()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Scrape repeatedly while the workload runs, then once after.
	deadline := time.After(30 * time.Second)
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-deadline:
			t.Fatal("workload did not drain within 30s")
		default:
			time.Sleep(10 * time.Millisecond)
		}
		if code, body := get("/metrics"); code != http.StatusOK ||
			!strings.Contains(body, "wanamcast_messages_total") {
			t.Fatalf("/metrics: code %d, body %.200s", code, body)
		}
		if code, _ := get("/healthz"); code != http.StatusOK {
			t.Fatalf("/healthz: code %d", code)
		}
		if code, _ := get("/spans"); code != http.StatusOK {
			t.Fatalf("/spans: code %d", code)
		}
	}

	// After the run the stage histograms must be populated and the span
	// feed must parse as JSONL.
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "wanamcast_stage_latency_seconds") {
		t.Fatalf("stage histograms missing from /metrics after load (code %d)", code)
	}
	code, spans := get("/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans: code %d", code)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(spans), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("/spans line %q is not JSON: %v", line, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("/spans served no spans after a traced workload")
	}
	t.Logf("/spans served %d spans; /metrics %d bytes", n, len(body))
}

// TestTracingOverheadUnderLoad pins the tracer's cost at the acceptance
// bound: a fully traced run must sustain at least 90% of the untraced
// ordered/s on the same workload. Each mode takes its best of two runs so
// scheduler noise doesn't mask the comparison.
func TestTracingOverheadUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock throughput comparison; skipped under the race detector")
	}
	const casts = 120
	run := func(port int, traced bool) float64 {
		cfg := LiveConfig{
			Groups:   2,
			PerGroup: 3,
			BasePort: port,
			MaxBatch: 64,
			Pipeline: 4,
		}
		if traced {
			cfg.TraceSpans = true
			cfg.SpanBuf = 1024
		}
		l := NewLiveCluster(cfg)
		if err := l.Start(); err != nil {
			t.Fatal(err)
		}
		defer l.Stop()
		return pushLoad(t, l, casts)
	}
	best := func(port int, traced bool) float64 {
		a := run(port, traced)
		b := run(port+100, traced)
		if b > a {
			return b
		}
		return a
	}
	base := best(23300, false)
	traced := best(23500, true)
	if traced < 0.9*base {
		t.Fatalf("traced throughput %.0f/s is below 90%% of untraced %.0f/s (%.1f%%)",
			traced, base, 100*traced/base)
	}
	t.Logf("untraced %.0f/s, traced %.0f/s (%.1f%%)", base, traced, 100*traced/base)
}
