package wanamcast

// Tests for the batched, pipelined ordering engine at the public Cluster
// surface: the ≥5× messages-ordered-per-consensus-instance amortization at
// saturating load, and the latency-degree regressions with the strictest
// knob settings.

import (
	"testing"
	"time"
)

// saturate casts n A1 multicasts to both groups in one burst and returns
// the run's stats.
func saturate(t testing.TB, n, maxBatch, pipeline int) Stats {
	t.Helper()
	c := NewCluster(Config{Groups: 2, PerGroup: 3, MaxBatch: maxBatch, Pipeline: pipeline})
	for i := 0; i < n; i++ {
		from := c.Process(GroupID(i%2), i%3)
		c.MulticastAt(0, from, i, 0, 1)
	}
	c.Run()
	if v := c.CheckProperties(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	st := c.Stats()
	if st.MessagesDelivered != n {
		t.Fatalf("delivered %d of %d", st.MessagesDelivered, n)
	}
	return st
}

// TestBatchedThroughputMultiplier is the headline claim of the batched
// engine: at saturating load, MaxBatch=64 orders at least 5× more
// messages per consensus instance than MaxBatch=1.
func TestBatchedThroughputMultiplier(t *testing.T) {
	batched := saturate(t, 64, 64, 1)
	strict := saturate(t, 64, 1, 1)
	if batched.OrderedPerLearn < 5*strict.OrderedPerLearn {
		t.Fatalf("ordered/learn: MaxBatch=64 %.4f vs MaxBatch=1 %.4f — below the 5x bound",
			batched.OrderedPerLearn, strict.OrderedPerLearn)
	}
	if batched.ThroughputPerSec <= strict.ThroughputPerSec {
		t.Errorf("virtual throughput did not improve: %.1f vs %.1f msg/s",
			batched.ThroughputPerSec, strict.ThroughputPerSec)
	}
	t.Logf("ordered/learn: batched %.3f, strict %.3f (%.1fx); throughput %.0f vs %.0f msg/s",
		batched.OrderedPerLearn, strict.OrderedPerLearn,
		batched.OrderedPerLearn/strict.OrderedPerLearn,
		batched.ThroughputPerSec, strict.ThroughputPerSec)
}

// TestStrictKnobsKeepPaperDegrees: with MaxBatch=1 and Pipeline=1 the
// paper's latency degrees are unchanged — 2 for a multi-group A1
// multicast (Theorem 4.1) and 1 for a warm A2 broadcast (Theorem 5.1).
func TestStrictKnobsKeepPaperDegrees(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 3, MaxBatch: 1, Pipeline: 1})
	id := c.Multicast(c.Process(0, 0), "m", 0, 1)
	c.Run()
	if deg, ok := c.LatencyDegree(id); !ok || deg != 2 {
		t.Fatalf("A1 degree = %d ok=%v, want 2 with MaxBatch=1 Pipeline=1", deg, ok)
	}

	c2 := NewCluster(Config{Groups: 2, PerGroup: 3, MaxBatch: 1, Pipeline: 1})
	c2.BroadcastAt(0, c2.Process(0, 0), "warm0")
	c2.BroadcastAt(0, c2.Process(1, 0), "warm1")
	var probe MessageID
	c2.rt.Scheduler().At(50*time.Millisecond, func() {
		probe = c2.Broadcast(c2.Process(0, 1), "probe")
	})
	c2.Run()
	if deg, ok := c2.LatencyDegree(probe); !ok || deg != 1 {
		t.Fatalf("A2 warm degree = %d ok=%v, want 1 with MaxBatch=1 Pipeline=1", deg, ok)
	}
}

// TestDefaultKnobsKeepPaperDegrees: the zero-value knobs (unbounded
// batches, sequential pipeline — the paper's algorithms) are untouched by
// the engine refactor.
func TestDefaultKnobsKeepPaperDegrees(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 3})
	id := c.Multicast(c.Process(0, 0), "m", 0, 1)
	c.Run()
	if deg, ok := c.LatencyDegree(id); !ok || deg != 2 {
		t.Fatalf("A1 degree = %d ok=%v, want 2 with default knobs", deg, ok)
	}
}

// TestPipelinedClusterDeterminism: the same seed and knobs reproduce the
// same delivery log at the public surface, with Pipeline > 1.
func TestPipelinedClusterDeterminism(t *testing.T) {
	run := func() []Delivery {
		c := NewCluster(Config{Groups: 2, PerGroup: 3, Seed: 9, MaxBatch: 4, Pipeline: 4})
		for i := 0; i < 12; i++ {
			from := c.Process(GroupID(i%2), i%3)
			c.MulticastAt(time.Duration(i)*5*time.Millisecond, from, i, 0, 1)
			c.BroadcastAt(time.Duration(i)*7*time.Millisecond, from, i+100)
		}
		c.Run()
		if v := c.CheckProperties(); len(v) != 0 {
			t.Fatalf("violations: %v", v)
		}
		return c.Deliveries()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i].Process != b[i].Process || a[i].ID != b[i].ID || a[i].At != b[i].At {
			t.Fatalf("delivery %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}
