// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6, Figure 1a/1b) and its latency-degree theorems (4.1, 5.1, 5.2), plus
// ablations of the design choices DESIGN.md calls out.
//
// Each benchmark iteration simulates a full wide-area run and reports, as
// custom metrics, the two quantities Figure 1 compares:
//
//	degree     — measured latency degree Δ(m) of the probe message
//	igmsg/cast — inter-group messages attributable to one cast
//	wall_ms    — virtual-time latency from cast to last delivery
//
// ns/op reflects simulator speed, not protocol latency; the protocol's
// cost is the virtual-time and message metrics. Run:
//
//	go test -bench=. -benchmem
package wanamcast

import (
	"testing"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/types"
)

// figure1aRun drives one multicast to k groups and returns (degree,
// inter-group messages, wall latency).
func figure1aRun(b *testing.B, algo harness.Algo, k, d int) (int64, uint64, time.Duration) {
	b.Helper()
	s := harness.Build(algo, harness.Options{
		Groups: k, PerGroup: d,
		DetMergeInterval: time.Second, DetMergeStop: 500 * time.Millisecond,
	})
	dest := make([]types.GroupID, k)
	for i := range dest {
		dest[i] = types.GroupID(i)
	}
	members := s.Topo.Members(types.GroupID(k - 1))
	caster := members[len(members)-1]
	var id types.MessageID
	s.RT.Scheduler().At(15*time.Millisecond, func() {
		id = s.Cast(caster, "bench", types.NewGroupSet(dest...))
		if algo == harness.AlgoDetMerge {
			for _, p := range s.Topo.AllProcesses() {
				if p != caster {
					s.Cast(p, "slot", types.NewGroupSet(dest...))
				}
			}
		}
	})
	s.Run()
	deg, ok := s.DegreeOf(id)
	if !ok {
		b.Fatalf("%s: probe not delivered", algo)
	}
	if v := s.Check(); len(v) != 0 {
		b.Fatalf("%s: violations %v", algo, v)
	}
	wall, _ := s.Col.WallLatency(id)
	st := s.Col.Snapshot()
	inter := st.InterGroupMessages
	if algo == harness.AlgoDetMerge {
		// Per-cast accounting for [1] excludes the background stream and
		// averages over the slot's casts, matching the paper's per-cast
		// O(kd) row.
		if hb, ok := st.PerProtocol["dm.hb"]; ok {
			inter -= hb.InterGroup
		}
		inter /= uint64(s.Topo.N())
	}
	return deg, inter, wall
}

func benchFigure1a(b *testing.B, algo harness.Algo, k, d int) {
	var deg int64
	var msgs uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		deg, msgs, wall = figure1aRun(b, algo, k, d)
	}
	b.ReportMetric(float64(deg), "degree")
	b.ReportMetric(float64(msgs), "igmsg/cast")
	b.ReportMetric(float64(wall)/1e6, "wall_ms")
}

// Figure 1(a): atomic multicast comparison. One sub-benchmark per (row, k).
func BenchmarkFigure1aDelporte(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoDelporte, k, 3) })
	}
}

func BenchmarkFigure1aRodrigues(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoRodrigues, k, 3) })
	}
}

func BenchmarkFigure1aFritzke(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoFritzke, k, 3) })
	}
}

func BenchmarkFigure1aA1(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoA1, k, 3) })
	}
}

func BenchmarkFigure1aSkeen(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoSkeen, k, 3) })
	}
}

func BenchmarkFigure1aDetMerge(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(kd(k, 3), func(b *testing.B) { benchFigure1a(b, harness.AlgoDetMerge, k, 3) })
	}
}

func kd(k, d int) string {
	return "k=" + itoa(k) + "/d=" + itoa(d)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// figure1bRun drives one broadcast probe and returns (degree, inter-group
// messages per cast, wall latency).
func figure1bRun(b *testing.B, algo harness.Algo, groups, d int) (int64, uint64, time.Duration) {
	b.Helper()
	s := harness.Build(algo, harness.Options{
		Groups: groups, PerGroup: d,
		DetMergeInterval: time.Second, DetMergeStop: 500 * time.Millisecond,
	})
	all := s.Topo.AllGroups()
	warmups := 0
	if algo == harness.AlgoA2 {
		for g := 0; g < groups; g++ {
			s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			warmups++
		}
	}
	caster := s.Topo.Members(0)[1%d]
	var id types.MessageID
	casts := 1
	s.RT.Scheduler().At(15*time.Millisecond, func() {
		id = s.Cast(caster, "bench", all)
		if algo == harness.AlgoDetMerge {
			for _, p := range s.Topo.AllProcesses() {
				if p != caster {
					s.Cast(p, "slot", all)
					casts++
				}
			}
		}
	})
	s.Run()
	deg, ok := s.DegreeOf(id)
	if !ok {
		b.Fatalf("%s: probe not delivered", algo)
	}
	if v := s.Check(); len(v) != 0 {
		b.Fatalf("%s: violations %v", algo, v)
	}
	wall, _ := s.Col.WallLatency(id)
	st := s.Col.Snapshot()
	inter := st.InterGroupMessages
	if hb, ok := st.PerProtocol["dm.hb"]; ok {
		inter -= hb.InterGroup
	}
	inter /= uint64(casts + warmups)
	return deg, inter, wall
}

func benchFigure1b(b *testing.B, algo harness.Algo, groups, d int) {
	var deg int64
	var msgs uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		deg, msgs, wall = figure1bRun(b, algo, groups, d)
	}
	b.ReportMetric(float64(deg), "degree")
	b.ReportMetric(float64(msgs), "igmsg/cast")
	b.ReportMetric(float64(wall)/1e6, "wall_ms")
}

// Figure 1(b): atomic broadcast comparison, n = groups × d processes.
func BenchmarkFigure1bSousa(b *testing.B) {
	for _, g := range []int{2, 3, 4} {
		b.Run(kd(g, 3), func(b *testing.B) { benchFigure1b(b, harness.AlgoSousa, g, 3) })
	}
}

func BenchmarkFigure1bVicente(b *testing.B) {
	for _, g := range []int{2, 3, 4} {
		b.Run(kd(g, 3), func(b *testing.B) { benchFigure1b(b, harness.AlgoVicente, g, 3) })
	}
}

func BenchmarkFigure1bA2(b *testing.B) {
	for _, g := range []int{2, 3, 4} {
		b.Run(kd(g, 3), func(b *testing.B) { benchFigure1b(b, harness.AlgoA2, g, 3) })
	}
}

func BenchmarkFigure1bDetMerge(b *testing.B) {
	for _, g := range []int{2, 3, 4} {
		b.Run(kd(g, 3), func(b *testing.B) { benchFigure1b(b, harness.AlgoDetMerge, g, 3) })
	}
}

// BenchmarkTheorem41: ∃ run of A1 with Δ(m) = 2 for a 2-group multicast.
func BenchmarkTheorem41(b *testing.B) {
	var deg int64
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Groups: 2, PerGroup: 3})
		id := c.Multicast(c.Process(0, 0), "m", 0, 1)
		c.Run()
		deg, _ = c.LatencyDegree(id)
		if deg != 2 {
			b.Fatalf("degree = %d, want 2", deg)
		}
	}
	b.ReportMetric(float64(deg), "degree")
}

// BenchmarkTheorem51: ∃ run of A2 with Δ(m) = 1 (synchronized rounds).
func BenchmarkTheorem51(b *testing.B) {
	var deg int64
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Groups: 2, PerGroup: 3})
		c.BroadcastAt(0, c.Process(0, 0), "warm0")
		c.BroadcastAt(0, c.Process(1, 0), "warm1")
		var id MessageID
		c.rt.Scheduler().At(50*time.Millisecond, func() {
			id = c.Broadcast(c.Process(0, 1), "probe")
		})
		c.Run()
		deg, _ = c.LatencyDegree(id)
		if deg != 1 {
			b.Fatalf("degree = %d, want 1", deg)
		}
	}
	b.ReportMetric(float64(deg), "degree")
}

// BenchmarkTheorem52: the broadcast cast after quiescence costs Δ(m) = 2.
func BenchmarkTheorem52(b *testing.B) {
	var deg int64
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Groups: 2, PerGroup: 3})
		c.Broadcast(c.Process(0, 0), "first")
		c.Run() // quiesce
		id := c.Broadcast(c.Process(1, 0), "late")
		c.Run()
		deg, _ = c.LatencyDegree(id)
		if deg != 2 {
			b.Fatalf("degree = %d, want 2", deg)
		}
	}
	b.ReportMetric(float64(deg), "degree")
}

// BenchmarkA2Frequency sweeps the broadcast period around the round
// duration (§5.3): below it the mean latency degree stays 1; far above it
// every cast restarts quiescent rounds and pays 2.
func BenchmarkA2Frequency(b *testing.B) {
	for _, period := range []time.Duration{50 * time.Millisecond, 80 * time.Millisecond, 400 * time.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				c := NewCluster(Config{Groups: 2, PerGroup: 3})
				c.BroadcastAt(0, c.Process(0, 0), "warm0")
				c.BroadcastAt(0, c.Process(1, 0), "warm1")
				var ids []MessageID
				for j := 1; j <= 10; j++ {
					j := j
					c.rt.Scheduler().At(time.Duration(j)*period, func() {
						ids = append(ids, c.Broadcast(c.Process(GroupID(j%2), j%3), "m"))
					})
				}
				c.Run()
				var sum int64
				for _, id := range ids {
					d, ok := c.LatencyDegree(id)
					if !ok {
						b.Fatal("message lost")
					}
					sum += d
				}
				mean = float64(sum) / float64(len(ids))
			}
			b.ReportMetric(mean, "mean_degree")
		})
	}
}

// BenchmarkTradeoffLatencyVsMessages is the §1/§6 trade-off: multicast a
// 2-group operation in an 8-group system via genuine A1 (latency 2, few
// messages) versus broadcasting it to everyone with warm A2 (latency 1,
// O(n²) messages).
func BenchmarkTradeoffLatencyVsMessages(b *testing.B) {
	b.Run("a1-genuine", func(b *testing.B) {
		var deg int64
		var msgs uint64
		for i := 0; i < b.N; i++ {
			s := harness.Build(harness.AlgoA1, harness.Options{Groups: 8, PerGroup: 3})
			id := s.Cast(s.Topo.Members(0)[0], "op", types.NewGroupSet(0, 1))
			s.Run()
			deg, _ = s.DegreeOf(id)
			msgs = s.Col.Snapshot().InterGroupMessages
		}
		b.ReportMetric(float64(deg), "degree")
		b.ReportMetric(float64(msgs), "igmsg/cast")
	})
	b.Run("a2-broadcast-all", func(b *testing.B) {
		var deg int64
		var msgs uint64
		for i := 0; i < b.N; i++ {
			s := harness.Build(harness.AlgoA2, harness.Options{Groups: 8, PerGroup: 3})
			all := s.Topo.AllGroups()
			for g := 0; g < 8; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			}
			var id types.MessageID
			s.RT.Scheduler().At(50*time.Millisecond, func() {
				id = s.Cast(s.Topo.Members(0)[0], "op", all)
			})
			s.Run()
			deg, _ = s.DegreeOf(id)
			msgs = s.Col.Snapshot().InterGroupMessages / 9 // amortize over the 9 casts
		}
		b.ReportMetric(float64(deg), "degree")
		b.ReportMetric(float64(msgs), "igmsg/cast")
	})
}

// BenchmarkAblationStageSkip measures what A1's stage skipping saves over
// the full Fritzke pipeline: consensus instances and total messages, at
// equal latency degree.
func BenchmarkAblationStageSkip(b *testing.B) {
	run := func(b *testing.B, algo harness.Algo) {
		var learns, msgs uint64
		var deg int64
		for i := 0; i < b.N; i++ {
			s := harness.Build(algo, harness.Options{Groups: 3, PerGroup: 3})
			var id types.MessageID
			s.RT.Scheduler().At(0, func() {
				id = s.Cast(s.Topo.Members(0)[0], "m", types.NewGroupSet(0, 1, 2))
			})
			s.Run()
			st := s.Col.Snapshot()
			learns, msgs = st.ConsensusInstances, st.TotalMessages
			deg, _ = s.DegreeOf(id)
		}
		b.ReportMetric(float64(learns), "consensus_learns")
		b.ReportMetric(float64(msgs), "msgs")
		b.ReportMetric(float64(deg), "degree")
	}
	b.Run("skip-on-a1", func(b *testing.B) { run(b, harness.AlgoA1) })
	b.Run("skip-off-fritzke", func(b *testing.B) { run(b, harness.AlgoFritzke) })
}

// BenchmarkAblationBatching: A1 proposes all pending s0/s2 messages per
// consensus instance ("to share the cost of consensus instances", §4.2).
// A burst of concurrent casts should need far fewer instances than casts.
func BenchmarkAblationBatching(b *testing.B) {
	for _, burst := range []int{1, 8, 32} {
		burst := burst
		b.Run("burst="+itoa(burst), func(b *testing.B) {
			var perCast float64
			for i := 0; i < b.N; i++ {
				s := harness.Build(harness.AlgoA1, harness.Options{Groups: 2, PerGroup: 3})
				s.RT.Scheduler().At(0, func() {
					for j := 0; j < burst; j++ {
						s.Cast(s.Topo.Members(0)[j%3], j, types.NewGroupSet(0, 1))
					}
				})
				s.Run()
				if v := s.Check(); len(v) != 0 {
					b.Fatalf("violations: %v", v)
				}
				perCast = float64(s.Col.Snapshot().ConsensusInstances) / float64(burst)
			}
			b.ReportMetric(perCast, "consensus_learns/cast")
		})
	}
}

// BenchmarkAblationProactive compares quiescent A2 with an always-on
// variant at a low cast rate over a fixed horizon: proactivity buys the
// latency-1 pipeline at the price of empty-round traffic.
func BenchmarkAblationProactive(b *testing.B) {
	const horizon = 2 * time.Second
	run := func(b *testing.B, alwaysOn bool) {
		var msgs uint64
		for i := 0; i < b.N; i++ {
			s := harness.Build(harness.AlgoA2, harness.Options{Groups: 2, PerGroup: 3, A2AlwaysOn: alwaysOn})
			all := s.Topo.AllGroups()
			for g := 0; g < 2; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			}
			s.CastAt(time.Second, s.Topo.Members(0)[0], "lone", all)
			s.RunUntil(horizon)
			msgs = s.Col.Snapshot().TotalMessages
			if v := s.Check(); len(v) != 0 {
				b.Fatalf("violations: %v", v)
			}
		}
		b.ReportMetric(float64(msgs), "msgs_2s")
	}
	b.Run("quiescent", func(b *testing.B) { run(b, false) })
	b.Run("always-on", func(b *testing.B) { run(b, true) })
}

// BenchmarkHeadlineSeparation is the paper's central claim in one bench:
// atomic multicast is inherently more expensive than atomic broadcast.
// The same message addressed to ALL groups costs Δ=2 through genuine A1
// (Prop. 3.1's lower bound) but Δ=1 through proactive A2 (Theorem 5.1).
func BenchmarkHeadlineSeparation(b *testing.B) {
	b.Run("a1-all-groups", func(b *testing.B) {
		var deg int64
		for i := 0; i < b.N; i++ {
			s := harness.Build(harness.AlgoA1, harness.Options{Groups: 3, PerGroup: 3})
			id := s.Cast(s.Topo.Members(0)[0], "m", s.Topo.AllGroups())
			s.Run()
			deg, _ = s.DegreeOf(id)
			if deg != 2 {
				b.Fatalf("genuine multicast to Γ measured Δ=%d, want 2", deg)
			}
		}
		b.ReportMetric(float64(deg), "degree")
	})
	b.Run("a2-warm", func(b *testing.B) {
		var deg int64
		for i := 0; i < b.N; i++ {
			s := harness.Build(harness.AlgoA2, harness.Options{Groups: 3, PerGroup: 3})
			all := s.Topo.AllGroups()
			for g := 0; g < 3; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			}
			var id types.MessageID
			s.RT.Scheduler().At(50*time.Millisecond, func() {
				id = s.Cast(s.Topo.Members(0)[0], "m", all)
			})
			s.Run()
			deg, _ = s.DegreeOf(id)
			if deg != 1 {
				b.Fatalf("warm broadcast measured Δ=%d, want 1", deg)
			}
		}
		b.ReportMetric(float64(deg), "degree")
	})
}

// BenchmarkAblationKeepAlive sweeps A2's quiescence-predictor patience
// (§5.3's suggested refinement) on a bursty workload with ~2.5-round gaps:
// patience buys latency degree one for post-gap casts at the price of
// empty-round traffic.
func BenchmarkAblationKeepAlive(b *testing.B) {
	for _, patience := range []int{1, 2, 4} {
		patience := patience
		b.Run("patience="+itoa(patience), func(b *testing.B) {
			var mean float64
			var msgs uint64
			for i := 0; i < b.N; i++ {
				s := buildA2KeepAlive(patience)
				all := s.Topo.AllGroups()
				for g := 0; g < 2; g++ {
					s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
				}
				var ids []types.MessageID
				for j := 1; j <= 6; j++ {
					j := j
					from := s.Topo.Members(types.GroupID(j % 2))[0]
					s.RT.Scheduler().At(time.Duration(j)*260*time.Millisecond, func() {
						ids = append(ids, s.Cast(from, j, all))
					})
				}
				s.Run()
				var sum int64
				for _, id := range ids {
					d, ok := s.DegreeOf(id)
					if !ok {
						b.Fatal("message lost")
					}
					sum += d
				}
				mean = float64(sum) / float64(len(ids))
				msgs = s.Col.Snapshot().TotalMessages
			}
			b.ReportMetric(mean, "mean_degree")
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

func buildA2KeepAlive(patience int) *harness.System {
	return harness.Build(harness.AlgoA2, harness.Options{
		Groups: 2, PerGroup: 3, A2KeepAlive: patience,
	})
}

// BenchmarkExtensionPipeline measures the pipelined-rounds extension: at a
// cast rate far above one per round (10 ms period vs ~104 ms rounds), the
// paper's sequential A2 queues casts for the next proposable round while a
// deep pipeline proposes a fresh round per consensus completion. Reported:
// mean virtual-time wall latency per message.
func BenchmarkExtensionPipeline(b *testing.B) {
	for _, depth := range []int{1, 2, 8} {
		depth := depth
		b.Run("depth="+itoa(depth), func(b *testing.B) {
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				s := harness.Build(harness.AlgoA2, harness.Options{
					Groups: 2, PerGroup: 3, A2Pipeline: depth,
				})
				all := s.Topo.AllGroups()
				for g := 0; g < 2; g++ {
					s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
				}
				var ids []types.MessageID
				for j := 1; j <= 30; j++ {
					j := j
					from := s.Topo.Members(types.GroupID(j % 2))[j%3]
					s.RT.Scheduler().At(time.Duration(10*j)*time.Millisecond, func() {
						ids = append(ids, s.Cast(from, j, all))
					})
				}
				s.Run()
				if v := s.Check(); len(v) != 0 {
					b.Fatalf("violations: %v", v)
				}
				var sum time.Duration
				for _, id := range ids {
					w, ok := s.Col.WallLatency(id)
					if !ok {
						b.Fatal("message lost")
					}
					sum += w
				}
				mean = sum / time.Duration(len(ids))
			}
			b.ReportMetric(float64(mean)/1e6, "mean_wall_ms")
		})
	}
}

// BenchmarkBatchedThroughput measures what the batched ordering engine
// buys at saturating load: 64 concurrent A1 multicasts to two groups,
// swept over MaxBatch. Reported per configuration:
//
//	ordered/learn — messages delivered per consensus learn (the
//	                amortization; MaxBatch=64 must be ≥5× MaxBatch=1)
//	vmsg/s        — delivered messages per second of virtual time
//	mean_batch    — mean decided batch size
//
// The sequential seed engine corresponds to MaxBatch=1.
func BenchmarkBatchedThroughput(b *testing.B) {
	measure := func(b *testing.B, maxBatch, pipeline int) Stats {
		var st Stats
		for i := 0; i < b.N; i++ {
			st = saturate(b, 64, maxBatch, pipeline)
		}
		b.ReportMetric(st.OrderedPerLearn, "ordered/learn")
		b.ReportMetric(st.ThroughputPerSec, "vmsg/s")
		b.ReportMetric(st.MeanBatchSize, "mean_batch")
		return st
	}
	var strict, batched Stats
	b.Run("maxbatch=1", func(b *testing.B) { strict = measure(b, 1, 1) })
	b.Run("maxbatch=8", func(b *testing.B) { measure(b, 8, 1) })
	b.Run("maxbatch=64", func(b *testing.B) { batched = measure(b, 64, 1) })
	b.Run("maxbatch=64/pipeline=4", func(b *testing.B) { measure(b, 64, 4) })
	if strict.OrderedPerLearn > 0 && batched.OrderedPerLearn < 5*strict.OrderedPerLearn {
		b.Fatalf("ordered/learn: MaxBatch=64 %.4f vs MaxBatch=1 %.4f — below the 5x bound",
			batched.OrderedPerLearn, strict.OrderedPerLearn)
	}
}

// BenchmarkSimThroughput measures raw simulator speed: a sustained A2
// stream, reporting virtual deliveries per wall second via ns/op.
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Groups: 3, PerGroup: 3})
		for g := 0; g < 3; g++ {
			c.BroadcastAt(0, c.Process(GroupID(g), 0), "warm")
		}
		for j := 1; j <= 50; j++ {
			c.BroadcastAt(time.Duration(j)*20*time.Millisecond, c.Process(GroupID(j%3), j%3), j)
		}
		c.Run()
		if got := len(c.Deliveries()); got != 53*9 {
			b.Fatalf("deliveries = %d", got)
		}
	}
}
