package wanamcast

// Regression tests for LiveCluster.Stop: repeated, concurrent, and
// out-of-order Stop/Start must neither panic nor hang nor double-close
// sockets.

import (
	"sync"
	"testing"
	"time"
)

// TestLiveClusterStopIdempotent: Stop many times, concurrently, after a
// run with traffic; every call returns, and a Start afterwards fails
// cleanly instead of resurrecting closed sockets.
func TestLiveClusterStopIdempotent(t *testing.T) {
	l := NewLiveCluster(LiveConfig{Groups: 2, PerGroup: 2, BasePort: 24500, WANDelay: 5 * time.Millisecond})
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	id := l.Broadcast(l.Process(0, 0), "traffic")
	if !l.WaitDelivered(id, 4, 10*time.Second) {
		t.Fatal("broadcast not delivered")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Stop()
			}()
		}
		wg.Wait()
		l.Stop() // and once more, sequentially
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Stops did not all return")
	}
	if err := l.Start(); err == nil {
		t.Fatal("Start after Stop must fail")
	}
}

// TestLiveClusterStopBeforeStart: stopping a never-started cluster is a
// no-op (twice), and a later Start refuses rather than hanging on dead
// event loops.
func TestLiveClusterStopBeforeStart(t *testing.T) {
	l := NewLiveCluster(LiveConfig{Groups: 1, PerGroup: 2, BasePort: 24600})
	finished := make(chan error, 1)
	go func() {
		l.Stop()
		l.Stop()
		finished <- l.Start()
	}()
	select {
	case err := <-finished:
		if err == nil {
			t.Fatal("Start after Stop-before-Start must fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stop/Start on a never-started cluster hung")
	}
}
