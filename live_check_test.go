package wanamcast

// Satellite of the service-layer PR: the §2.2 checkers, previously only
// exercised on simulator traces, run here against the delivery log of a
// REAL TCP cluster — both through the built-in LiveConfig.Check path and
// through an independently reconstructed checker fed from Deliveries().

import (
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/workload"
)

func TestLiveCheckProperties(t *testing.T) {
	l := NewLiveCluster(LiveConfig{
		Groups:   3,
		PerGroup: 2,
		BasePort: 24700,
		WANDelay: 5 * time.Millisecond,
		MaxBatch: 16,
		Pipeline: 2,
		Check:    true,
	})
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	topo := l.Topology()
	casts := workload.Generate(topo, workload.Spec{Casts: 40, MeanPeriod: 2 * time.Millisecond, Seed: 3})
	type castRec struct {
		id   MessageID
		dest GroupSet
		want int
	}
	var recs []castRec
	for _, c := range casts {
		id := l.Multicast(c.From, c.Payload, c.Dest.Groups()...)
		recs = append(recs, castRec{id: id, dest: c.Dest, want: len(topo.ProcessesIn(c.Dest))})
	}
	for _, r := range recs {
		if !l.WaitDelivered(r.id, r.want, 30*time.Second) {
			t.Fatalf("%v delivered by %d of %d addressees", r.id, l.DeliveredCount(r.id), r.want)
		}
	}

	// The built-in checker over the live run.
	if v := l.CheckProperties(); len(v) != 0 {
		t.Fatalf("live run violates §2.2 (%d):\n%v", len(v), v)
	}

	// And independently: rebuild a checker from the public delivery log
	// (the log's global order preserves each process's delivery order).
	ck := check.New(topo)
	for _, r := range recs {
		ck.RecordCast(r.id, r.dest)
	}
	for _, d := range l.Deliveries() {
		ck.RecordDeliver(d.Process, d.ID)
	}
	if v := ck.Check(nil, func(MessageID) bool { return true }); len(v) != 0 {
		t.Fatalf("reconstructed checker found violations (%d):\n%v", len(v), v)
	}

	// Negative control: a forged delivery trips integrity immediately.
	ck.RecordDeliver(topo.AllProcesses()[0], MessageID{Origin: 99, Seq: 99})
	if v := ck.Check(nil, nil); len(v) == 0 {
		t.Fatal("checker missed a delivery that was never cast")
	}
}
