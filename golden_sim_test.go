package wanamcast

// Golden-trace pin for the simulator's event core. The discrete-event
// scheduler was rewritten (inline-value four-ary heap, typed closure-free
// delivery/timer events, single-call fabric routing) with one hard
// contract: a simulated run is a function of its seed and nothing else,
// and the rewrite must not change ANY run — not the event order, not the
// rng draw order, not a single trace byte.
//
// These hashes were recorded from the seed scheduler (container/heap of
// *event pointers, closure per send) BEFORE the rewrite, over workloads
// chosen to exercise every scheduling path: jittered delays (rng draw
// order), inter-group priority classes, crash timers, severed-link parking
// and heal release (partition-heal scenario), and both A1 and A2 engines
// under batching. If a scheduler change breaks a hash, it changed
// observable behavior — fix the scheduler, never the hash.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
)

// goldenRun drives one fully traced simulated run and returns the sha256
// of the complete trace (every SEND/HOLD/RELEASE/CRASH line plus each
// protocol's own trace output) concatenated with the delivery log.
func goldenRun(algo harness.Algo, withChaos bool) string {
	var buf strings.Builder
	opts := harness.Options{
		Groups: 3, PerGroup: 3,
		Inter: 20 * time.Millisecond, Intra: time.Millisecond,
		Jitter: 3 * time.Millisecond, Seed: 11,
		MaxBatch: 4, A1Pipeline: 2, A2Pipeline: 2,
		Trace: func(format string, args ...any) {
			fmt.Fprintf(&buf, format+"\n", args...)
		},
	}
	s := harness.Build(algo, opts)
	if withChaos {
		sc, ok := scenario.ByName(s.Topo, scenario.SuiteConfig{Unit: 40 * time.Millisecond}, "partition-heal")
		if !ok {
			panic("golden: partition-heal scenario missing")
		}
		scenario.Apply(s.Chaos(), sc)
	}
	// One mid-run crash-stop exercises the crash suspicion timer and the
	// crashed-owner timer drops.
	s.CrashAt(s.Topo.Members(2)[2], 70*time.Millisecond)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		from := types.ProcessID(rng.Intn(s.Topo.N()))
		ga := types.GroupID(rng.Intn(3))
		gb := types.GroupID(rng.Intn(3))
		at := time.Duration(i+1) * 5 * time.Millisecond
		payload := fmt.Sprintf("m%d", i)
		s.CastAt(at, from, payload, types.NewGroupSet(ga, gb))
	}
	s.Run()
	for _, d := range s.Deliveries {
		fmt.Fprintf(&buf, "DELIVER %v %v at %v\n", d.ID, d.Process, d.At)
	}
	sum := sha256.Sum256([]byte(buf.String()))
	return hex.EncodeToString(sum[:])
}

func TestGoldenTraceUnchangedBySchedulerRewrite(t *testing.T) {
	cases := []struct {
		name  string
		algo  harness.Algo
		chaos bool
		want  string
	}{
		{"a1", harness.AlgoA1, false, "f622d6b870e51c274096e3601234080844c0bfa5854987008bac7317acf6c9b2"},
		{"a1-partition-heal", harness.AlgoA1, true, "94640b502e8d1bf7f196f9a7776859fcca71c8e89f1c73640a14d196b66a1c6f"},
		{"a2", harness.AlgoA2, false, "6ae88b38093f471adb9ba13c60bf61b7bc99bc5a8678a77f015312b6819aa809"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenRun(tc.algo, tc.chaos)
			if got != tc.want {
				t.Errorf("trace hash = %s, want %s (the scheduler rewrite changed a same-seed run)", got, tc.want)
			}
		})
	}
}
