// Package wanamcast is a reproduction of Schiper & Pedone, "Optimal Atomic
// Broadcast and Multicast Algorithms for Wide Area Networks" (PODC 2007).
//
// It provides:
//
//   - Algorithm A1: a genuine fault-tolerant atomic multicast with the
//     optimal latency degree of two for messages addressed to multiple
//     groups (use Cluster.Multicast);
//   - Algorithm A2: a proactive, quiescent, fault-tolerant atomic broadcast
//     with latency degree one (use Cluster.Broadcast);
//   - a deterministic WAN simulator that measures latency degrees with the
//     paper's modified Lamport clocks (§2.3) and counts inter-group
//     messages, reproducing the comparisons of Figure 1;
//   - a batched, pipelined ordering engine under both algorithms:
//     Config.MaxBatch caps how many messages one consensus instance orders
//     (0 = the paper's propose-everything rule) and Config.Pipeline sets
//     how many instances/rounds run concurrently (1 = the paper's
//     sequential engine). The defaults reproduce the paper exactly; larger
//     values amortize agreement cost under heavy load without changing any
//     §2.2 property, and Stats reports the resulting batch sizes and
//     throughput;
//   - durable state and crash recovery on the live cluster: with
//     LiveConfig.DataDir set, every process journals its Paxos acceptor
//     state, ordering decisions, and service state to a write-ahead log
//     with periodic snapshots (internal/storage), a crashed process comes
//     back with LiveCluster.Restart — recovering from disk and catching up
//     missed instances from live peers — and fsync batching rides the
//     ordering batches, so durability costs one fsync per decided batch.
//
// The quickest way in:
//
//	cfg := wanamcast.Config{Groups: 3, PerGroup: 3, InterGroupDelay: 100 * time.Millisecond}
//	c := wanamcast.NewCluster(cfg)
//	c.OnDeliver(func(p wanamcast.ProcessID, id wanamcast.MessageID, payload any) { ... })
//	id := c.Broadcast(c.Process(0, 0), "hello")
//	c.Run()
//	deg, _ := c.LatencyDegree(id) // 1 while rounds run, 2 after quiescence
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and theorem.
package wanamcast

import (
	"fmt"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
)

// Re-exported identifiers so that users of the public API never import
// internal packages.
type (
	// ProcessID identifies a process (the paper's Π).
	ProcessID = types.ProcessID
	// GroupID identifies a group (the paper's Γ).
	GroupID = types.GroupID
	// MessageID identifies a cast message.
	MessageID = types.MessageID
	// GroupSet is a set of destination groups.
	GroupSet = types.GroupSet
	// Topology is the static process/group layout (Π and Γ).
	Topology = types.Topology
	// Stats is the aggregate measurement snapshot of a run.
	Stats = metrics.Stats
)

// NewGroupSet builds a destination set.
func NewGroupSet(groups ...GroupID) GroupSet { return types.NewGroupSet(groups...) }

// Config describes a simulated wide-area system.
type Config struct {
	// Groups is the number of groups (≥ 1).
	Groups int
	// PerGroup is the number of processes per group (≥ 1).
	PerGroup int
	// InterGroupDelay is the one-way delay between processes of different
	// groups. Defaults to 100 ms, the figure §5.3 uses.
	InterGroupDelay time.Duration
	// IntraGroupDelay is the one-way delay inside a group. Defaults to 1 ms.
	IntraGroupDelay time.Duration
	// Jitter adds uniform per-message extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed makes the run reproducible. Zero is a valid seed.
	Seed int64
	// LogSends retains a per-send event log (needed by genuineness checks).
	LogSends bool
	// DisableSkipping turns off A1's stage-skipping optimizations,
	// yielding the Fritzke et al. [5] pipeline (used for ablations).
	DisableSkipping bool
	// SuspicionDelay is the failure-detection lag after a crash.
	// Defaults to 20 ms.
	SuspicionDelay time.Duration
	// MaxBatch caps how many messages one consensus instance may order,
	// for both A1 and A2. Zero means unbounded — the paper's
	// propose-everything rule; 1 degenerates to one message per instance.
	MaxBatch int
	// Pipeline is the number of consensus instances (A1) / rounds (A2)
	// that may be in flight concurrently. Zero or 1 is the paper's
	// strictly sequential engine; deeper pipelines overlap agreement with
	// the WAN exchange, trading extra in-flight state for throughput.
	Pipeline int
}

func (c *Config) fill() {
	if c.Groups == 0 {
		c.Groups = 2
	}
	if c.PerGroup == 0 {
		c.PerGroup = 3
	}
	if c.InterGroupDelay == 0 {
		c.InterGroupDelay = 100 * time.Millisecond
	}
	if c.IntraGroupDelay == 0 {
		c.IntraGroupDelay = 1 * time.Millisecond
	}
	if c.SuspicionDelay == 0 {
		c.SuspicionDelay = 20 * time.Millisecond
	}
}

// Delivery is one A-Deliver event observed at a process.
type Delivery struct {
	Process ProcessID
	ID      MessageID
	Payload any
	At      time.Duration
}

// Cluster is a simulated wide-area system running both A1 (atomic
// multicast) and A2 (atomic broadcast) on every process. Clusters are not
// safe for concurrent use: drive them from one goroutine.
type Cluster struct {
	cfg     Config
	rt      *node.Runtime
	col     *metrics.Collector
	checker *check.Checker
	a1      []*amcast.Mcast
	a2      []*abcast.Bcast

	deliveries []Delivery
	onDeliver  func(p ProcessID, id MessageID, payload any)
	crashed    map[ProcessID]bool
}

// NewCluster builds a simulated cluster from cfg.
func NewCluster(cfg Config) *Cluster {
	cfg.fill()
	topo := types.NewTopology(cfg.Groups, cfg.PerGroup)
	col := &metrics.Collector{LogSends: cfg.LogSends}
	model := network.Model{
		IntraGroup: cfg.IntraGroupDelay,
		InterGroup: cfg.InterGroupDelay,
		Jitter:     cfg.Jitter,
	}
	rt := node.NewRuntime(topo, model, cfg.Seed, col)
	rt.SuspicionDelay = cfg.SuspicionDelay
	c := &Cluster{
		cfg:     cfg,
		rt:      rt,
		col:     col,
		checker: check.New(topo),
		a1:      make([]*amcast.Mcast, topo.N()),
		a2:      make([]*abcast.Bcast, topo.N()),
		crashed: make(map[ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		proc := rt.Proc(id)
		// A1 and A2 share one cast-ID allocator per process so their
		// message identifiers never collide.
		var castSeq uint64
		nextID := func() MessageID {
			castSeq++
			return MessageID{Origin: id, Seq: castSeq}
		}
		c.a1[id] = amcast.New(amcast.Config{
			Host:       proc,
			Detector:   rt.Oracle(),
			SkipStages: !cfg.DisableSkipping,
			NextID:     nextID,
			MaxBatch:   cfg.MaxBatch,
			Pipeline:   cfg.Pipeline,
			OnDeliver: func(m rmcast.Message) {
				c.recordDelivery(id, m.ID, m.Payload)
			},
		})
		c.a2[id] = abcast.New(abcast.Config{
			Host:     proc,
			Detector: rt.Oracle(),
			NextID:   nextID,
			MaxBatch: cfg.MaxBatch,
			Pipeline: cfg.Pipeline,
			OnDeliver: func(mid MessageID, payload any) {
				c.recordDelivery(id, mid, payload)
			},
		})
	}
	rt.Start()
	return c
}

func (c *Cluster) recordDelivery(p ProcessID, id MessageID, payload any) {
	c.checker.RecordDeliver(p, id)
	c.deliveries = append(c.deliveries, Delivery{Process: p, ID: id, Payload: payload, At: c.rt.Now()})
	if c.onDeliver != nil {
		c.onDeliver(p, id, payload)
	}
}

// Process returns the ProcessID of the i-th member of group g.
func (c *Cluster) Process(g GroupID, i int) ProcessID {
	return c.rt.Topo().Members(g)[i]
}

// Groups returns the set of all groups.
func (c *Cluster) Groups() GroupSet { return c.rt.Topo().AllGroups() }

// OnDeliver installs a delivery callback invoked on every A-Deliver at
// every process, in global delivery order.
func (c *Cluster) OnDeliver(fn func(p ProcessID, id MessageID, payload any)) { c.onDeliver = fn }

// Multicast atomically multicasts payload from process from to the given
// groups using Algorithm A1, and returns the message ID.
func (c *Cluster) Multicast(from ProcessID, payload any, groups ...GroupID) MessageID {
	if len(groups) == 0 {
		panic("wanamcast: Multicast needs at least one destination group")
	}
	dest := types.NewGroupSet(groups...)
	id := c.a1[from].AMCast(payload, dest)
	c.checker.RecordCast(id, dest)
	return id
}

// Broadcast atomically broadcasts payload from process from to all groups
// using Algorithm A2, and returns the message ID.
func (c *Cluster) Broadcast(from ProcessID, payload any) MessageID {
	id := c.a2[from].ABCast(payload)
	c.checker.RecordCast(id, c.rt.Topo().AllGroups())
	return id
}

// MulticastAt schedules a Multicast at virtual time at.
func (c *Cluster) MulticastAt(at time.Duration, from ProcessID, payload any, groups ...GroupID) {
	c.rt.Scheduler().At(at, func() { c.Multicast(from, payload, groups...) })
}

// BroadcastAt schedules a Broadcast at virtual time at.
func (c *Cluster) BroadcastAt(at time.Duration, from ProcessID, payload any) {
	c.rt.Scheduler().At(at, func() { c.Broadcast(from, payload) })
}

// CrashAt schedules a crash-stop of process p at virtual time at.
func (c *Cluster) CrashAt(p ProcessID, at time.Duration) {
	c.crashed[p] = true
	c.rt.CrashAt(p, at)
}

// Crash crash-stops process p now (chaos scenarios crash mid-event).
func (c *Cluster) Crash(p ProcessID) {
	c.crashed[p] = true
	c.rt.Crash(p)
}

// Fabric exposes the simulated network's mutable link table: sever and
// heal links (messages on severed links are withheld, not lost, so a
// partition-then-heal is an admissible quasi-reliable run), override
// per-link delays and jitter, or partition whole group sets. Mutate it
// only from scheduled events (or before Run) — the simulation is
// single-threaded.
func (c *Cluster) Fabric() *network.Fabric { return c.rt.Fabric() }

// Chaos returns the scenario control surface of the simulated cluster:
// pass it to scenario.Apply to schedule a fault script. Crashed processes
// are excluded from the §2.2 checker's correct set automatically. The
// simulator has no durable restart, so Restart events leave their crash
// permanent (logged and skipped).
func (c *Cluster) Chaos() scenario.Funcs {
	return scenario.SimFuncs(c.rt, func(p types.ProcessID) { c.crashed[p] = true })
}

// Run executes the simulation until no events remain (all protocols
// quiescent) and returns the virtual time reached.
func (c *Cluster) Run() time.Duration {
	c.rt.Run()
	return c.rt.Now()
}

// RunFor executes the simulation up to virtual time deadline.
func (c *Cluster) RunFor(deadline time.Duration) { c.rt.RunUntil(deadline) }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.rt.Now() }

// Stats returns the aggregate measurements of the run so far.
func (c *Cluster) Stats() Stats { return c.col.Snapshot() }

// LatencyDegree returns the measured latency degree Δ(m) of message id:
// the maximum, over its deliverers, of the §2.3 Lamport clock at delivery
// minus the clock at cast.
func (c *Cluster) LatencyDegree(id MessageID) (int64, bool) { return c.col.LatencyDegree(id) }

// WallLatency returns the virtual-time span between cast and last delivery.
func (c *Cluster) WallLatency(id MessageID) (time.Duration, bool) { return c.col.WallLatency(id) }

// Deliveries returns every delivery observed, in global order. Callers
// must not modify the returned slice.
func (c *Cluster) Deliveries() []Delivery { return c.deliveries }

// SequenceAt returns the delivery sequence of process p.
func (c *Cluster) SequenceAt(p ProcessID) []MessageID { return c.checker.Sequence(p) }

// LastSend returns the virtual time of the last message send (the
// quiescence signal of Prop. A.9) and whether anything was sent.
func (c *Cluster) LastSend() (time.Duration, bool) { return c.col.LastSend() }

// CheckProperties verifies uniform integrity, validity, uniform agreement,
// and uniform prefix order over everything recorded so far, and returns the
// violations (empty means the run satisfied the specification §2.2).
func (c *Cluster) CheckProperties() []string {
	correct := func(p ProcessID) bool { return !c.crashed[p] }
	correctCaster := func(id MessageID) bool { return !c.crashed[id.Origin] }
	return c.checker.Check(correct, correctCaster)
}

// CheckGenuineness verifies, over the send log (Config.LogSends must be
// set), that only casters and addressees participated in the A1 protocol.
func (c *Cluster) CheckGenuineness() []string {
	if !c.cfg.LogSends {
		panic("wanamcast: CheckGenuineness requires Config.LogSends")
	}
	sends := make([]check.SendRecord, 0, len(c.col.Sends()))
	for _, s := range c.col.Sends() {
		sends = append(sends, check.SendRecord{Proto: s.Proto, From: s.From, To: s.To})
	}
	return c.checker.GenuinenessViolations(sends, "a1")
}

// String describes the cluster configuration.
func (c *Cluster) String() string {
	return fmt.Sprintf("wanamcast cluster: %d groups x %d processes, inter-group %v",
		c.cfg.Groups, c.cfg.PerGroup, c.cfg.InterGroupDelay)
}
