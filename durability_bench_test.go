package wanamcast

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// BenchmarkDurableKVLoad measures the price of durability on the client
// path: the same closed-loop KV load (50 sessions, MaxBatch=64,
// Pipeline=4, wan=1ms) against a volatile cluster, a WAL without fsync
// barriers, and the full fsync-per-batch configuration. The numbers feed
// the EXPERIMENTS.md durability table.
func BenchmarkDurableKVLoad(b *testing.B) {
	for _, mode := range []string{"mem", "wal-nofsync", "wal-fsync"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opsPerSec, mean1, mean2 := runDurableLoad(b, mode, 23300+100*i)
				b.ReportMetric(opsPerSec, "ops/s")
				b.ReportMetric(float64(mean1.Microseconds()), "µs/op-1shard")
				b.ReportMetric(float64(mean2.Microseconds()), "µs/op-2shard")
			}
		})
	}
}

func runDurableLoad(tb testing.TB, mode string, basePort int) (opsPerSec float64, mean1, mean2 time.Duration) {
	tb.Helper()
	cfg := LiveConfig{
		Groups: 2, PerGroup: 3, BasePort: basePort, WANDelay: time.Millisecond,
		MaxBatch: 64, Pipeline: 4,
	}
	switch mode {
	case "wal-nofsync":
		cfg.DataDir = tb.TempDir()
		cfg.NoFsync = true
	case "wal-fsync":
		cfg.DataDir = tb.TempDir()
	}
	cl := NewLiveCluster(cfg)
	if err := cl.Start(); err != nil {
		tb.Fatal(err)
	}
	defer cl.Stop()
	topo := cl.Topology()
	route := svc.PrefixRoute(topo.NumGroups())
	stats := &metrics.Service{}
	service, err := svc.ServeCluster(cl, topo, svc.ServiceConfig{
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		Stats: stats,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer service.Stop()
	res := svc.RunKVLoad(topo, service.Addrs(), svc.LoadSpec{
		Clients: 50, Ops: 40, Mix: workload.DefaultMix(), Timeout: 2 * time.Second, Seed: 3,
	}, stats)
	if res.Errors > 0 {
		tb.Fatalf("%s: %d load errors", mode, res.Errors)
	}
	st := res.Stats
	return float64(res.Ops) / res.Elapsed.Seconds(), st.ByFanout[1].Mean, st.ByFanout[2].Mean
}

// TestDurableLoadModesAgree sanity-checks that all three durability modes
// complete the same load correctly (the benchmark above only runs under
// -bench).
func TestDurableLoadModesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster live test")
	}
	for i, mode := range []string{"mem", "wal-nofsync", "wal-fsync"} {
		opsPerSec, _, _ := runDurableLoad(t, mode, 23600+100*i)
		if opsPerSec <= 0 {
			t.Fatalf("%s: no throughput", mode)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for future table printing
