package wanamcast_test

import (
	"fmt"
	"time"

	"wanamcast"
)

// The simplest possible use: broadcast once, run to quiescence, inspect
// the measured latency degree. A cold-start broadcast costs two
// inter-group delays (Theorem 5.2).
func ExampleCluster_broadcast() {
	c := wanamcast.NewCluster(wanamcast.Config{Groups: 2, PerGroup: 3})
	id := c.Broadcast(c.Process(0, 0), "hello")
	c.Run()
	deg, _ := c.LatencyDegree(id)
	fmt.Println("deliveries:", len(c.Deliveries()))
	fmt.Println("latency degree:", deg)
	// Output:
	// deliveries: 6
	// latency degree: 2
}

// Genuine atomic multicast addresses only the groups that matter: group 2
// neither delivers nor participates, and the latency degree is the optimal
// two (Theorem 4.1, Proposition 3.1).
func ExampleCluster_multicast() {
	c := wanamcast.NewCluster(wanamcast.Config{Groups: 3, PerGroup: 3, LogSends: true})
	id := c.Multicast(c.Process(0, 0), "rebalance", 0, 1)
	c.Run()
	deg, _ := c.LatencyDegree(id)
	fmt.Println("deliveries:", len(c.Deliveries()))
	fmt.Println("latency degree:", deg)
	fmt.Println("genuineness violations:", len(c.CheckGenuineness()))
	// Output:
	// deliveries: 6
	// latency degree: 2
	// genuineness violations: 0
}

// While Algorithm A2's rounds run synchronized across groups, a broadcast
// achieves latency degree one — the paper's optimum (Theorem 5.1). Rounds
// synchronize when every group starts round 1 together.
func ExampleCluster_warmBroadcast() {
	c := wanamcast.NewCluster(wanamcast.Config{Groups: 2, PerGroup: 3})
	c.BroadcastAt(0, c.Process(0, 0), "warm-0")
	c.BroadcastAt(0, c.Process(1, 0), "warm-1")
	var probe wanamcast.MessageID
	c.RunFor(50 * time.Millisecond)
	probe = c.Broadcast(c.Process(0, 1), "probe")
	c.Run()
	deg, _ := c.LatencyDegree(probe)
	fmt.Println("latency degree while rounds run:", deg)
	// Output:
	// latency degree while rounds run: 1
}

// Every run can be checked against the paper's §2.2 specification, even
// with crashes. (Concurrent messages that need mutual ordering must share
// one primitive: A1 and A2 are independent total orders.)
func ExampleCluster_checkProperties() {
	c := wanamcast.NewCluster(wanamcast.Config{Groups: 2, PerGroup: 3})
	c.CrashAt(c.Process(0, 2), 5*time.Millisecond) // a minority crash is fine
	c.Multicast(c.Process(0, 0), "a", 0, 1)
	c.Multicast(c.Process(1, 0), "b", 0, 1)
	c.Run()
	fmt.Println("violations:", len(c.CheckProperties()))
	// Output:
	// violations: 0
}

func ExampleNewGroupSet() {
	gs := wanamcast.NewGroupSet(2, 0, 2)
	fmt.Println(gs, "size", gs.Size())
	// Output:
	// {g0,g2} size 2
}
