// Command figures regenerates every table and figure of the paper's
// evaluation on the simulated WAN and prints paper-versus-measured rows:
//
//   - Figure 1(a): atomic multicast — latency degree and inter-group
//     messages for [4], [10], [5], A1, Skeen [2], and [1];
//   - Figure 1(b): atomic broadcast — the same for [12], [13], A2, [1];
//   - Theorems 4.1, 5.1, 5.2: the witness runs and their latency degrees;
//   - the §5.3 broadcast-frequency regime of A2.
//
// Usage:
//
//	figures [-d processes-per-group] [-inter duration]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/types"
)

func main() {
	d := flag.Int("d", 3, "processes per group")
	inter := flag.Duration("inter", 100*time.Millisecond, "inter-group one-way delay")
	flag.Parse()
	// A bad flag must die with a usage message (exit 2), not as a
	// topology panic or a mid-run fatal.
	if *d < 1 {
		harness.Usagef("figures", "-d must be at least 1 (got %d)", *d)
	}
	opts := harness.Options{PerGroup: *d, Inter: *inter}
	if err := opts.Validate(); err != nil {
		harness.Usagef("figures", "%v", err)
	}

	figure1a(*d, *inter)
	fmt.Println()
	figure1b(*d, *inter)
	fmt.Println()
	theorems(*d, *inter)
	fmt.Println()
	frequency(*d, *inter)
}

type row struct {
	algo      harness.Algo
	label     string
	paperDeg  string
	paperMsgs string
}

func figure1a(d int, inter time.Duration) {
	fmt.Println("Figure 1(a) — Atomic Multicast (k destination groups, d =", d, "processes/group)")
	fmt.Println("algorithm        paper Δ   paper msgs    k=2           k=3           k=4           k=5")
	rows := []row{
		{harness.AlgoDelporte, "[4] Delporte", "k+1", "O(kd^2)"},
		{harness.AlgoRodrigues, "[10] Rodrigues", "4", "O(k^2d^2)"},
		{harness.AlgoFritzke, "[5] Fritzke", "2", "O(k^2d^2)"},
		{harness.AlgoA1, "A1 (this paper)", "2", "O(k^2d^2)"},
		{harness.AlgoSkeen, "[2] Skeen", "2", "O(k^2d^2)"},
		{harness.AlgoDetMerge, "[1] det-merge", "1", "O(kd)"},
	}
	for _, r := range rows {
		fmt.Printf("%-16s %-9s %-12s", r.label, r.paperDeg, r.paperMsgs)
		for k := 2; k <= 5; k++ {
			deg, msgs := runMulticast(r.algo, k, d, inter)
			fmt.Printf(" Δ=%-2d m=%-6d", deg, msgs)
		}
		fmt.Println()
	}
}

func runMulticast(algo harness.Algo, k, d int, inter time.Duration) (int64, uint64) {
	s := harness.Build(algo, harness.Options{
		Groups: k, PerGroup: d, Inter: inter,
		DetMergeInterval: time.Second, DetMergeStop: 500 * time.Millisecond,
	})
	dest := make([]types.GroupID, k)
	for i := range dest {
		dest[i] = types.GroupID(i)
	}
	members := s.Topo.Members(types.GroupID(k - 1))
	caster := members[len(members)-1]
	var id types.MessageID
	s.RT.Scheduler().At(15*time.Millisecond, func() {
		id = s.Cast(caster, "m", types.NewGroupSet(dest...))
		if algo == harness.AlgoDetMerge {
			for _, p := range s.Topo.AllProcesses() {
				if p != caster {
					s.Cast(p, "slot", types.NewGroupSet(dest...))
				}
			}
		}
	})
	s.Run()
	mustClean(s)
	deg, ok := s.DegreeOf(id)
	if !ok {
		fatal("probe not delivered by %s", algo)
	}
	st := s.Col.Snapshot()
	msgs := st.InterGroupMessages
	if algo == harness.AlgoDetMerge {
		if hb, ok := st.PerProtocol["dm.hb"]; ok {
			msgs -= hb.InterGroup
		}
		msgs /= uint64(s.Topo.N())
	}
	return deg, msgs
}

func figure1b(d int, inter time.Duration) {
	fmt.Println("Figure 1(b) — Atomic Broadcast (n = k·d processes)")
	fmt.Println("algorithm        paper Δ   paper msgs    k=2           k=3           k=4")
	rows := []row{
		{harness.AlgoSousa, "[12] Sousa", "2", "O(n)"},
		{harness.AlgoVicente, "[13] Vicente", "2", "O(n^2)"},
		{harness.AlgoA2, "A2 (this paper)", "1", "O(n^2)"},
		{harness.AlgoDetMerge, "[1] det-merge", "1", "O(n)"},
	}
	for _, r := range rows {
		fmt.Printf("%-16s %-9s %-12s", r.label, r.paperDeg, r.paperMsgs)
		for k := 2; k <= 4; k++ {
			deg, msgs := runBroadcast(r.algo, k, d, inter)
			fmt.Printf(" Δ=%-2d m=%-6d", deg, msgs)
		}
		fmt.Println()
	}
}

func runBroadcast(algo harness.Algo, groups, d int, inter time.Duration) (int64, uint64) {
	s := harness.Build(algo, harness.Options{
		Groups: groups, PerGroup: d, Inter: inter,
		DetMergeInterval: time.Second, DetMergeStop: 500 * time.Millisecond,
	})
	all := s.Topo.AllGroups()
	casts := 1
	if algo == harness.AlgoA2 {
		for g := 0; g < groups; g++ {
			s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			casts++
		}
	}
	caster := s.Topo.Members(0)[1%d]
	var id types.MessageID
	s.RT.Scheduler().At(15*time.Millisecond, func() {
		id = s.Cast(caster, "probe", all)
		if algo == harness.AlgoDetMerge {
			for _, p := range s.Topo.AllProcesses() {
				if p != caster {
					s.Cast(p, "slot", all)
					casts++
				}
			}
		}
	})
	s.Run()
	mustClean(s)
	deg, ok := s.DegreeOf(id)
	if !ok {
		fatal("probe not delivered by %s", algo)
	}
	st := s.Col.Snapshot()
	msgs := st.InterGroupMessages
	if hb, ok := st.PerProtocol["dm.hb"]; ok {
		msgs -= hb.InterGroup
	}
	msgs /= uint64(casts)
	return deg, msgs
}

func theorems(d int, inter time.Duration) {
	fmt.Println("Latency-degree theorems (witness runs)")

	// Theorem 4.1: A1, message to two groups, Δ = 2.
	s := harness.Build(harness.AlgoA1, harness.Options{Groups: 2, PerGroup: d, Inter: inter})
	id := s.Cast(s.Topo.Members(0)[0], "m", types.NewGroupSet(0, 1))
	s.Run()
	mustClean(s)
	deg, _ := s.DegreeOf(id)
	fmt.Printf("  Theorem 4.1: A1 multicast to 2 groups       paper Δ=2, measured Δ=%d\n", deg)

	// Theorem 5.1: A2 with synchronized rounds, Δ = 1.
	s = harness.Build(harness.AlgoA2, harness.Options{Groups: 2, PerGroup: d, Inter: inter})
	all := s.Topo.AllGroups()
	s.CastAt(0, s.Topo.Members(0)[0], "warm0", all)
	s.CastAt(0, s.Topo.Members(1)[0], "warm1", all)
	var probe types.MessageID
	s.RT.Scheduler().At(inter/2, func() { probe = s.Cast(s.Topo.Members(0)[1%d], "probe", all) })
	s.Run()
	mustClean(s)
	deg, _ = s.DegreeOf(probe)
	fmt.Printf("  Theorem 5.1: A2 broadcast, rounds running   paper Δ=1, measured Δ=%d\n", deg)

	// Theorem 5.2: A2 after premature quiescence, Δ = 2.
	s = harness.Build(harness.AlgoA2, harness.Options{Groups: 2, PerGroup: d, Inter: inter})
	s.Cast(s.Topo.Members(0)[0], "first", all)
	s.Run()
	late := s.Cast(s.Topo.Members(1)[0], "late", all)
	s.Run()
	mustClean(s)
	deg, _ = s.DegreeOf(late)
	fmt.Printf("  Theorem 5.2: A2 broadcast after quiescence  paper Δ=2, measured Δ=%d\n", deg)

	// Proposition 3.1 cross-check: no genuine multicast measured below 2
	// for multi-group messages.
	fmt.Println("  Prop. 3.1 : no genuine multicast run measured Δ<2 for multi-group messages (see Figure 1a rows)")
}

func frequency(d int, inter time.Duration) {
	fmt.Println("§5.3 — A2 broadcast-frequency regimes (round time ≈ inter-group delay)")
	fmt.Println("period      mean Δ   note")
	for _, period := range []time.Duration{inter / 2, inter * 4 / 5, inter * 4} {
		s := harness.Build(harness.AlgoA2, harness.Options{Groups: 2, PerGroup: d, Inter: inter})
		all := s.Topo.AllGroups()
		s.CastAt(0, s.Topo.Members(0)[0], "warm0", all)
		s.CastAt(0, s.Topo.Members(1)[0], "warm1", all)
		var ids []types.MessageID
		for j := 1; j <= 10; j++ {
			j := j
			from := s.Topo.Members(types.GroupID(j % 2))[j%d]
			s.RT.Scheduler().At(time.Duration(j)*period, func() {
				ids = append(ids, s.Cast(from, j, all))
			})
		}
		s.Run()
		mustClean(s)
		var sum int64
		for _, id := range ids {
			dg, ok := s.DegreeOf(id)
			if !ok {
				fatal("message lost in frequency sweep")
			}
			sum += dg
		}
		mean := float64(sum) / float64(len(ids))
		note := "rounds never stop: optimal regime"
		if mean > 1.5 {
			note = "rounds quiesce between casts: Δ=2 (Theorem 5.2)"
		}
		fmt.Printf("%-11v %-8.2f %s\n", period, mean, note)
	}
}

func mustClean(s *harness.System) {
	if v := s.Check(); len(v) != 0 {
		fatal("property violations: %v", v)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
