// Command wannode runs ONE process of a wide-area system as its own OS
// process, talking real TCP to the other wannode instances. Start one per
// process ID (the topology and base port must agree across instances),
// then type commands on stdin:
//
//	bcast <text>          atomic broadcast (Algorithm A2)
//	mcast <g0,g1> <text>  genuine atomic multicast (Algorithm A1)
//	quit
//
// Example, a 2×2 system in four shells:
//
//	wannode -id 0 -groups 2 -d 2 &
//	wannode -id 1 -groups 2 -d 2 &
//	wannode -id 2 -groups 2 -d 2 &
//	wannode -id 3 -groups 2 -d 2
//
// Deliveries print as they happen; every instance prints the same order.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/durable"
	"wanamcast/internal/harness"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/storage"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// snapshotNode persists one snapshot, reporting failure without dying:
// a failed snapshot costs replay time, not correctness.
func snapshotNode(n *durable.Node) {
	if err := n.Snapshot(); err != nil {
		fmt.Fprintln(os.Stderr, "wannode: snapshot:", err)
	}
}

func main() {
	var (
		id       = flag.Int("id", 0, "this process's ID (0..groups*d-1)")
		groups   = flag.Int("groups", 2, "number of groups")
		d        = flag.Int("d", 2, "processes per group")
		basePort = flag.Int("port", 19000, "base port (process p listens on port+p)")
		wan      = flag.Duration("wan", 100*time.Millisecond, "injected one-way inter-group delay")
		sendq    = flag.Int("sendqueue", 0, "per-connection send queue depth (0 = default 4096)")
		flush    = flag.Duration("flush", 0, "max frame-coalescing latency before a flush (0 = default 200µs)")
		gobWire  = flag.Bool("gobwire", false, "use the legacy gob codec instead of the wire codec (all instances must agree)")
		trace    = flag.Bool("trace", false, "print transport trace lines to stderr")
		dataDir  = flag.String("datadir", "", "persist WAL+snapshots under this directory and recover from it at startup (empty = volatile)")
		noFsync  = flag.Bool("nofsync", false, "with -datadir: write the WAL without fsync barriers (benchmark knob; OS-process crashes may lose the tail)")
		snapEvry = flag.Int("snapevery", 0, "with -datadir: snapshot every N deliveries (0 = default 512)")
	)
	flag.Parse()

	// Validate everything up front: a bad flag must die with a usage
	// message here, not as a topology panic or socket error mid-run.
	fail := func(format string, args ...any) {
		harness.Usagef("wannode", format, args...)
	}
	if *groups < 1 || *d < 1 {
		fail("-groups and -d must be at least 1 (got %d x %d)", *groups, *d)
	}
	if err := harness.ValidatePortRange(*basePort, *groups**d); err != nil {
		fail("-port: %v", err)
	}
	if *wan < 0 {
		fail("-wan must be non-negative (got %v)", *wan)
	}
	if *sendq < 0 {
		fail("-sendqueue must be non-negative (got %d)", *sendq)
	}
	if *flush < 0 {
		fail("-flush must be non-negative (got %v)", *flush)
	}
	if (*noFsync || *snapEvry != 0) && *dataDir == "" {
		fail("-nofsync and -snapevery need -datadir")
	}
	topo := types.NewTopology(*groups, *d)
	if *id < 0 || *id >= topo.N() {
		fail("-id must be in [0,%d) (got %d)", topo.N(), *id)
	}
	self := types.ProcessID(*id)

	tcp.RegisterWireTypes()
	codec := tcp.CodecWire
	if *gobWire {
		codec = tcp.CodecGob
	}
	var tracer func(format string, args ...any)
	if *trace {
		tracer = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "TRACE "+format+"\n", args...)
		}
	}
	rt := tcp.New(tcp.Config{
		Topo:       topo,
		Local:      []types.ProcessID{self},
		BasePort:   *basePort,
		WANDelay:   *wan,
		SendQueue:  *sendq,
		FlushEvery: *flush,
		Codec:      codec,
		Trace:      tracer,
	})

	var store storage.Store
	if *dataDir != "" {
		d, err := storage.OpenDisk(*dataDir, storage.DiskOptions{NoFsync: *noFsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wannode:", err)
			os.Exit(1)
		}
		store = d
		defer store.Close()
	}
	log := storage.NewLog(store)
	snapEvery := *snapEvry
	if snapEvery == 0 {
		snapEvery = 512
	}

	var seq uint64
	nextID := func() types.MessageID {
		seq++
		return types.MessageID{Origin: self, Seq: seq}
	}
	var dnode *durable.Node
	var sinceSnap int
	deliver := func(kind string) func(mid types.MessageID, payload any) {
		return func(mid types.MessageID, payload any) {
			if !rt.Proc(self).Recovering() {
				fmt.Printf("[%v] A-Deliver %s %v: %v\n", self, kind, mid, payload)
			}
			if store != nil && snapEvery > 0 {
				sinceSnap++
				if sinceSnap >= snapEvery {
					sinceSnap = 0
					rt.Async(self, func() { snapshotNode(dnode) })
				}
			}
		}
	}
	var onSynced func()
	if store != nil {
		onSynced = func() { rt.Async(self, func() { snapshotNode(dnode) }) }
	}
	a1 := amcast.New(amcast.Config{
		Host:       rt.Proc(self),
		Detector:   rt.Detector(self),
		SkipStages: true,
		NextID:     nextID,
		Log:        log,
		OnSynced:   onSynced,
		OnDeliver:  func(m rmcast.Message) { deliver("mcast")(m.ID, m.Payload) },
	})
	a2 := abcast.New(abcast.Config{
		Host:      rt.Proc(self),
		Detector:  rt.Detector(self),
		NextID:    nextID,
		Log:       log,
		OnSynced:  onSynced,
		OnDeliver: deliver("bcast"),
	})
	dnode = &durable.Node{Store: store, A1: a1, A2: a2, Extra: []durable.Section{{
		Name: "wannode",
		Save: func() ([]byte, error) { return binary.AppendUvarint(nil, seq), nil },
		Restore: func(data []byte) error {
			s, n := binary.Uvarint(data)
			if n <= 0 {
				// A silent seq=0 here could re-issue MessageIDs the old
				// incarnation already used: fail the recovery instead.
				return fmt.Errorf("corrupt wannode section")
			}
			seq = s
			return nil
		},
	}}}

	// Recover durable state before the transport starts: the acceptor must
	// never answer a Prepare or Accept with amnesia. Runs with sends and
	// prints suppressed; the loops are not running yet, so this is safe on
	// the main goroutine.
	recovered := false
	if store != nil {
		proc := rt.Proc(self)
		proc.SetRecovering(true)
		if err := dnode.Recover(); err != nil {
			fmt.Fprintln(os.Stderr, "wannode: recovery:", err)
			os.Exit(1)
		}
		proc.SetRecovering(false)
		recovered = a1.Delivered() > 0 || a2.Round() > 1 || seq > 0
		if recovered {
			// A fresh incarnation must never reuse a MessageID: casts
			// since the last snapshot are not individually logged.
			seq += 1 << 20
		}
	}

	if err := rt.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "wannode:", err)
		os.Exit(1)
	}
	defer rt.Stop()
	if store != nil {
		// Catch up whatever the group ordered while this instance was
		// down. This must run for a COLD start too: recovery leaves
		// delivery gated until the state transfer confirms the group's
		// prefix (a wiped data dir on a running cluster is just "very far
		// behind"), and on a cluster-wide cold start every member answers
		// Busy-with-nothing-newer, so the group concludes nobody holds
		// more and resumes — skipping the sync here would leave the gate
		// armed forever.
		rt.Run(self, func() {
			a1.StartSync()
			a2.StartSync()
		})
		if recovered {
			fmt.Printf("[%v] recovered from %s (a1 deliveries=%d, a2 round=%d); syncing with group peers\n",
				self, *dataDir, a1.Delivered(), a2.Round())
		}
	}
	fmt.Printf("[%v] up: group %v, listening on %d, peers on %d..%d\n",
		self, topo.GroupOf(self), *basePort+*id, *basePort, *basePort+topo.N()-1)

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit":
			if store != nil {
				// Parting snapshot: the next incarnation recovers from it
				// instead of replaying the whole WAL tail.
				rt.Run(self, func() { snapshotNode(dnode) })
			}
			return
		case strings.HasPrefix(line, "bcast "):
			text := strings.TrimPrefix(line, "bcast ")
			rt.Run(self, func() { a2.ABCast(text) })
		case strings.HasPrefix(line, "mcast "):
			rest := strings.TrimPrefix(line, "mcast ")
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				fmt.Println("usage: mcast <g0,g1,...> <text>")
				continue
			}
			var dest []types.GroupID
			ok := true
			for _, s := range strings.Split(parts[0], ",") {
				g, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || g < 0 || g >= *groups {
					ok = false
					break
				}
				dest = append(dest, types.GroupID(g))
			}
			if !ok || len(dest) == 0 {
				fmt.Println("usage: mcast <g0,g1,...> <text>")
				continue
			}
			text := parts[1]
			rt.Run(self, func() { a1.AMCast(text, types.NewGroupSet(dest...)) })
		default:
			fmt.Println("commands: bcast <text> | mcast <g0,g1> <text> | quit")
		}
	}
}
