// Command wanchaos is the chaos driver: it runs declarative fault
// scenarios — partitions, heals, crashes with recovery, delay spikes,
// leader flaps — against a cluster under client load and verifies that
// the §2.2 properties hold throughout and that delivery resumes after the
// faults end. It exits non-zero on any violation, failed operation, or
// stalled post-heal progress.
//
// Live mode (default) drives a real TCP cluster with the replicated KV
// service under a closed-loop client load while the scenario runs
// (replicas restart from in-memory durable stores, so crash/restart needs
// no disk):
//
//	wanchaos -scenario partition-recovery -groups 2 -d 3 -wan 5ms -clients 100
//	wanchaos -scenario suite -clients 100        # all six scenarios
//
// The lease-partition scenario additionally enables leader leases, serves
// half the load as lease-consistent reads, and pins the read tier's safety
// hand-off: the severed holder's lease must lapse strictly before the
// successor's activates, so no read served under the old lease can be
// stale.
//
// Sim mode replays the same scenarios deterministically on the virtual
// cluster under a Poisson workload:
//
//	wanchaos -mode sim -scenario suite -algo a1 -seed 7
//
// Measure mode records the failure-detection experiment of EXPERIMENTS.md
// ("partition & heal"): leader re-election latency after isolating the
// rank-0 leader, trust-restoration latency after the heal, and
// time-to-resume-delivery after healing a group partition:
//
//	wanchaos -measure -suspectafter 250ms -wan 5ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wanamcast"
	"wanamcast/internal/fd"
	"wanamcast/internal/harness"
	"wanamcast/internal/metrics"
	"wanamcast/internal/scenario"
	"wanamcast/internal/storage"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		mode     = flag.String("mode", "live", "live (real TCP + KV service under load) or sim (deterministic virtual time)")
		scn      = flag.String("scenario", "suite", "scenario name (partition-heal, asym-partition, leader-flap, delay-spike, partition-recovery, lease-partition) or \"suite\" for all")
		groups   = flag.Int("groups", 2, "number of groups/shards")
		d        = flag.Int("d", 3, "processes per group")
		basePort = flag.Int("port", 27000, "cluster base port (live)")
		svcPort  = flag.Int("svcport", 28000, "client-facing base port (live)")
		wan      = flag.Duration("wan", 5*time.Millisecond, "one-way inter-group delay")
		lan      = flag.Duration("lan", 0, "intra-group delay")
		maxBatch = flag.Int("maxbatch", 64, "max messages per consensus instance")
		pipeline = flag.Int("pipeline", 2, "consensus instances in flight")
		clients  = flag.Int("clients", 100, "closed-loop KV clients (live)")
		ops      = flag.Int("ops", 4, "operations per client (live)")
		timeout  = flag.Duration("timeout", 250*time.Millisecond, "client first-attempt reply timeout (doubles per retry)")
		unit     = flag.Duration("unit", 500*time.Millisecond, "scenario time step: faults start at 1×unit, last heal by ~3.5×unit")
		spike    = flag.Duration("spike", 0, "delay-spike override (0 = max(unit, 8×wan))")
		algoName = flag.String("algo", "a1", "sim mode: algorithm under chaos (a1 or a2)")
		seed     = flag.Int64("seed", 1, "workload/sim seed")
		suspAft  = flag.Duration("suspectafter", 250*time.Millisecond, "failure detector suspicion timeout (live)")
		hbEvery  = flag.Duration("heartbeat", 50*time.Millisecond, "failure detector heartbeat period (live)")
		measure  = flag.Bool("measure", false, "measure re-election/trust-restore/resume latencies instead of running a scenario")
		lanes    = flag.Int("lanes", 0, "shard processes across this many ordering lane goroutines by group (0 = one per process)")
		inbox    = flag.Int("inbox", 0, "per-lane inbox ring size, live mode (0 = default 4096)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-GC, live objects) to this file")
		mtxProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		verbose  = flag.Bool("v", false, "log every scenario event and delivery progress")
		telem    = flag.String("telemetry", "", "live mode: serve the introspection plane (/metrics, /spans, /healthz) on this host:port; enables lifecycle tracing")
		spanBuf  = flag.Int("spanbuf", 0, "per-lane lifecycle span ring size (0 = default 4096; >0 enables tracing)")
		flightD  = flag.String("flightdump", "", "dump recent spans as JSONL here on a property violation, failed state transfer, or restart; enables tracing")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		harness.Usagef("wanchaos", format, args...)
	}
	if *mode != "live" && *mode != "sim" {
		fail("-mode must be live or sim (got %q)", *mode)
	}
	if *groups < 2 {
		fail("-groups must be at least 2 (nothing to partition with %d)", *groups)
	}
	if *d < 3 {
		fail("-d must be at least 3 (crash recovery needs a surviving majority per group)")
	}
	if *wan < 0 || *lan < 0 {
		fail("-wan and -lan must be non-negative")
	}
	if *maxBatch < 0 || *pipeline < 1 {
		fail("-maxbatch must be non-negative and -pipeline at least 1")
	}
	if *clients < 1 || *ops < 1 {
		fail("-clients and -ops must be at least 1")
	}
	if *timeout <= 0 || *unit <= 0 || *spike < 0 {
		fail("-timeout and -unit must be positive, -spike non-negative")
	}
	if *suspAft <= 0 || *hbEvery <= 0 || *hbEvery >= *suspAft {
		fail("need 0 < -heartbeat < -suspectafter (got %v, %v)", *hbEvery, *suspAft)
	}
	if *lanes < 0 || *inbox < 0 {
		fail("-lanes and -inbox must be non-negative")
	}
	// The telemetry flags share the harness validation with every command.
	tOpts := harness.Options{TelemetryAddr: *telem, SpanBuf: *spanBuf, FlightDump: *flightD}
	if err := tOpts.Validate(); err != nil {
		fail("%v", err)
	}
	if tOpts.TraceLifecycle() && *mode != "live" {
		fail("-telemetry, -spanbuf, and -flightdump need live mode")
	}
	n := *groups * *d
	// Each live scenario gets a disjoint port block so a fresh cluster
	// never binds a port the previous one just released: the stride must
	// cover the cluster itself, not just a fixed 64.
	stride := 64
	if n > stride {
		stride = n
	}
	if *mode == "live" {
		if err := harness.ValidatePortRange(*basePort, stride*len(scenario.Names())); err != nil {
			fail("-port: %v", err)
		}
		if err := harness.ValidatePortRange(*svcPort, stride*len(scenario.Names())); err != nil {
			fail("-svcport: %v", err)
		}
	}
	algo := harness.Algo(*algoName)
	if algo != harness.AlgoA1 && algo != harness.AlgoA2 {
		fail("-algo must be a1 or a2 (got %q)", *algoName)
	}

	if *spike == 0 {
		*spike = *unit
		if s := 8 * *wan; s > *spike {
			*spike = s
		}
	}
	topo := types.NewTopology(*groups, *d)
	suiteCfg := scenario.SuiteConfig{Unit: *unit, Spike: *spike}
	var scenarios []scenario.Scenario
	if *scn == "suite" {
		scenarios = scenario.Suite(topo, suiteCfg)
	} else {
		sc, ok := scenario.ByName(topo, suiteCfg, *scn)
		if !ok {
			fail("unknown -scenario %q (have %v and \"suite\")", *scn, scenario.Names())
		}
		scenarios = []scenario.Scenario{sc}
	}

	stopProf, err := harness.StartProfiles(*cpuProf, *memProf, *mtxProf)
	if err != nil {
		fail("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "wanchaos: profile:", err)
		}
	}()

	if *measure {
		return measureLatencies(*groups, *d, *basePort, *wan, *lan, *hbEvery, *suspAft, *verbose)
	}

	failures := 0
	for i, sc := range scenarios {
		fmt.Printf("=== scenario %s (%s mode) ===\n", sc.Name, *mode)
		if *verbose {
			fmt.Println("   ", sc)
		}
		var ok bool
		if *mode == "sim" {
			ok = runSim(algo, sc, *groups, *d, *wan, *lan, *maxBatch, *pipeline, *lanes, *seed, *verbose)
		} else {
			// Fresh ports per scenario: listeners of the previous cluster
			// are closed, but lingering TIME_WAIT sockets must not flake
			// the next bind.
			ok = runLive(sc, *groups, *d, *basePort+i*stride, *svcPort+i*stride, *wan, *lan,
				*hbEvery, *suspAft, *maxBatch, *pipeline, *lanes, *inbox, *clients, *ops, *timeout, *seed, *verbose, tOpts)
		}
		if ok {
			fmt.Printf("=== %s: OK ===\n\n", sc.Name)
		} else {
			failures++
			fmt.Printf("=== %s: FAILED ===\n\n", sc.Name)
		}
	}
	if failures > 0 {
		fmt.Printf("wanchaos: %d of %d scenarios FAILED\n", failures, len(scenarios))
		return 1
	}
	fmt.Printf("wanchaos: all %d scenarios passed (§2.2 clean, post-heal delivery resumed)\n", len(scenarios))
	return 0
}

// runLive runs one scenario against a real TCP cluster serving the KV
// service under closed-loop client load. Replicas persist to in-memory
// stores so crash/restart scenarios work without disk.
func runLive(sc scenario.Scenario, groups, d, basePort, svcPort int, wan, lan,
	hbEvery, suspAft time.Duration, maxBatch, pipeline, lanes, inbox, clients, ops int,
	timeout time.Duration, seed int64, verbose bool, tOpts harness.Options) bool {

	// Scenarios that isolate a process exercise the lease hand-off: enable
	// leader leases and serve part of the load as lease-consistent reads so
	// the fenced window is actually crossed by read traffic.
	leasing := false
	for _, e := range sc.Events {
		if e.Kind == scenario.Isolate {
			leasing = true
		}
	}
	cfg := wanamcast.LiveConfig{
		Groups:         groups,
		PerGroup:       d,
		BasePort:       basePort,
		WANDelay:       wan,
		LANDelay:       lan,
		HeartbeatEvery: hbEvery,
		SuspectAfter:   suspAft,
		MaxBatch:       maxBatch,
		Pipeline:       pipeline,
		Lanes:          lanes,
		InboxSize:      inbox,
		Check:          true,
		TraceSpans:     tOpts.TraceLifecycle(),
		SpanBuf:        tOpts.SpanBuf,
		FlightDump:     tOpts.FlightDump,
	}
	if leasing {
		cfg.LeaseDuration = suspAft
	}
	stores := make([]storage.Store, groups*d)
	for i := range stores {
		stores[i] = storage.NewMem()
	}
	cfg.StoreFor = func(p wanamcast.ProcessID) storage.Store { return stores[p] }
	cluster := wanamcast.NewLiveCluster(cfg)
	if err := cluster.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "wanchaos:", err)
		return false
	}
	defer cluster.Stop()

	topo := cluster.Topology()
	route := svc.PrefixRoute(groups)
	stats := &metrics.Service{}
	svcCfg := svc.ServiceConfig{
		BasePort: svcPort,
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		Stats:  stats,
		Tracer: cluster.Tracer(),
	}
	if leasing {
		svcCfg.LeaseFor = func(p types.ProcessID) *fd.Lease { return cluster.ReadLease(p) }
	}
	service, err := svc.ServeCluster(cluster, topo, svcCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wanchaos:", err)
		return false
	}
	defer service.Stop()

	if tOpts.TelemetryAddr != "" {
		tsrv, err := harness.ServeTelemetry(tOpts.TelemetryAddr, cluster.TelemetrySource("wanchaos", stats))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wanchaos:", err)
			return false
		}
		defer tsrv.Close()
		fmt.Printf("  telemetry: http://%s/metrics\n", tsrv.Addr())
	}

	funcs := cluster.Chaos()
	funcs.RestartFn = service.RestartReplica // reincarnate the replica's server too
	if verbose {
		funcs.Logf = func(format string, args ...any) {
			fmt.Printf("  chaos: "+format+"\n", args...)
		}
	}
	scenario.Apply(funcs, sc)

	// The load must OVERLAP the fault schedule, not finish before it: run
	// closed-loop waves (fresh sessions each — the replicated dedup
	// windows outlive a wave) until the scenario's horizon plus detector
	// slack has passed. Waves that span a partition stall on their
	// cross-shard commands and complete after the heal via client retries.
	fmt.Printf("  load: %d clients x %d ops per wave under %s (horizon %v)\n",
		clients, ops, sc.Name, sc.Horizon())
	begin := time.Now()
	totalOps, totalErrs, waves := 0, 0, 0
	for {
		spec := svc.LoadSpec{
			Clients:     clients,
			Ops:         ops,
			Mix:         workload.DefaultMix(),
			Timeout:     timeout,
			Seed:        seed + int64(waves),
			SessionBase: uint64(waves * (clients + 1)),
		}
		if leasing {
			spec.ReadFraction = 0.5
			spec.Consistency = svc.ConsistencyLease
		}
		res := svc.RunKVLoad(topo, service.Addrs(), spec, stats)
		totalOps += res.Ops
		totalErrs += res.Errors
		waves++
		if time.Since(begin) > sc.Horizon()+suspAft {
			break
		}
	}
	elapsed := time.Since(begin)
	fmt.Printf("  ops: %d ok, %d failed in %d waves over %v (%.1f ops/s)\n",
		totalOps, totalErrs, waves, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds())

	good := true
	if totalErrs > 0 {
		fmt.Printf("  FAIL: %d client operations failed\n", totalErrs)
		good = false
	}

	// Post-heal delivery progress: a fresh broadcast and a fresh
	// cross-group multicast must reach every correct process.
	correct := topo.N()
	probeFrom := topo.Members(1)[0]
	bid := cluster.Broadcast(probeFrom, "post-heal-probe-a2")
	if !cluster.WaitDelivered(bid, correct, 30*time.Second) {
		fmt.Printf("  FAIL: post-heal broadcast reached %d/%d processes\n",
			cluster.DeliveredCount(bid), correct)
		good = false
	}
	mid := cluster.Multicast(probeFrom, "post-heal-probe-a1", 0, 1)
	if !cluster.WaitDelivered(mid, 2*d, 30*time.Second) {
		fmt.Printf("  FAIL: post-heal multicast reached %d/%d processes\n",
			cluster.DeliveredCount(mid), 2*d)
		good = false
	}

	// §2.2 over the whole run, faults included.
	if v := cluster.WaitPropertiesClean(30 * time.Second); len(v) > 0 {
		fmt.Printf("  FAIL: %d property violations, first: %s\n", len(v), v[0])
		good = false
	} else {
		fmt.Println("  properties: uniform integrity, validity, uniform agreement, uniform prefix order: OK")
	}
	// Lease-safety pin: the isolated holder's lease must have lapsed
	// strictly before the successor's activated, so no read the old holder
	// served could land after the successor started serving — the fenced
	// window never overlaps.
	if leasing {
		victim := topo.Members(0)[0]
		succ := topo.Members(0)[1]
		succLease := cluster.ReadLease(succ)
		if succLease.Activations() == 0 {
			fmt.Println("  FAIL: successor never earned a lease — the failover path was not exercised")
			good = false
		} else {
			old := cluster.ReadLease(victim)
			// ExpiredAt is frozen lazily (on the next extend/revoke); if the
			// victim has not re-earned its lease yet, its still-frozen
			// ValidUntil IS the old incarnation's end.
			oldEnd := old.ExpiredAt()
			if oldEnd.IsZero() {
				oldEnd = old.ValidUntil()
			}
			gap := succLease.ActivatedAt().Sub(oldEnd)
			if gap <= 0 {
				fmt.Printf("  FAIL: lease overlap — old holder valid until %v, successor active from %v\n",
					oldEnd, succLease.ActivatedAt())
				good = false
			} else {
				fmt.Printf("  lease hand-off: old holder lapsed %v before the successor activated (stale-reads rejected: %d, lease reads denied: %d)\n",
					gap.Round(time.Millisecond), stats.Snapshot().StaleReads, stats.Snapshot().LeaseDenied)
			}
		}
	}
	st := cluster.Stats()
	fmt.Printf("  fd: suspicions=%d trust-restored=%d leader-changes=%d\n",
		st.Suspicions, st.TrustRestorations, st.LeaderChanges)
	return good
}

// runSim replays one scenario deterministically on the simulated runtime
// under a Poisson workload.
func runSim(algo harness.Algo, sc scenario.Scenario, groups, d int, wan, lan time.Duration,
	maxBatch, pipeline, lanes int, seed int64, verbose bool) bool {

	s := harness.Build(algo, harness.Options{
		Groups: groups, PerGroup: d, Inter: wan, Intra: lan, Seed: seed,
		MaxBatch: maxBatch, A1Pipeline: pipeline, A2Pipeline: pipeline,
		Lanes: lanes,
	})
	funcs := s.Chaos()
	if verbose {
		funcs.Logf = func(format string, args ...any) {
			fmt.Printf("  chaos: "+format+"\n", args...)
		}
	}
	scenario.Apply(funcs, sc)

	crashed := make(map[types.ProcessID]bool)
	for _, e := range sc.Events {
		if e.Kind == scenario.Crash {
			for _, p := range e.Procs {
				crashed[p] = true
			}
		}
	}
	casts := workload.Generate(s.Topo, workload.Spec{
		Casts:      40,
		MeanPeriod: sc.Horizon() / 30,
		Poisson:    true,
		Seed:       seed,
	})
	for _, c := range casts {
		c := c
		s.RT.Scheduler().At(c.At, func() {
			if !crashed[c.From] {
				s.Cast(c.From, c.Payload, c.Dest)
			}
		})
	}
	probeAt := sc.Horizon() + 100*time.Millisecond
	s.RT.Scheduler().At(probeAt, func() {
		s.Cast(s.Topo.Members(1)[0], "post-heal-probe", s.Topo.AllGroups())
	})
	s.RT.Scheduler().MaxSteps = 50_000_000
	s.Run()

	good := true
	if v := s.Check(); len(v) > 0 {
		fmt.Printf("  FAIL: %d property violations, first: %s\n", len(v), v[0])
		good = false
	} else {
		fmt.Println("  properties: uniform integrity, validity, uniform agreement, uniform prefix order: OK")
	}
	probes := 0
	for _, del := range s.Deliveries {
		if del.Payload == "post-heal-probe" {
			probes++
		}
	}
	want := 0
	for _, p := range s.Topo.AllProcesses() {
		if !crashed[p] {
			want++
		}
	}
	if probes != want {
		fmt.Printf("  FAIL: post-heal probe delivered %d/%d times\n", probes, want)
		good = false
	} else {
		fmt.Printf("  post-heal probe delivered by all %d correct processes at t=%v\n", want, s.RT.Now())
	}
	fmt.Printf("  stats: %v\n", s.Col.Snapshot())
	return good
}

// measureLatencies records the EXPERIMENTS.md "partition & heal" numbers:
// how long after isolating the rank-0 leader its group re-elects, how
// long after the heal trust (and leadership) is restored, and how long
// after healing a full inter-group partition a stalled broadcast resumes
// and completes delivery.
func measureLatencies(groups, d, basePort int, wan, lan, hbEvery, suspAft time.Duration, verbose bool) int {
	cluster := wanamcast.NewLiveCluster(wanamcast.LiveConfig{
		Groups:         groups,
		PerGroup:       d,
		BasePort:       basePort,
		WANDelay:       wan,
		LANDelay:       lan,
		HeartbeatEvery: hbEvery,
		SuspectAfter:   suspAft,
		MaxBatch:       64,
		Pipeline:       2,
	})
	leader := cluster.Process(0, 0)
	watcher := cluster.Process(0, 1)
	changes := make(chan wanamcast.ProcessID, 16)
	cluster.SubscribeLeader(watcher, func(_ wanamcast.GroupID, l wanamcast.ProcessID) {
		changes <- l
	})
	if err := cluster.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "wanchaos:", err)
		return 1
	}
	defer cluster.Stop()
	time.Sleep(4 * hbEvery) // let the detectors see everyone first

	waitLeader := func(want wanamcast.ProcessID) bool {
		deadline := time.After(30 * time.Second)
		for {
			select {
			case l := <-changes:
				if verbose {
					fmt.Printf("  (leader change at watcher -> %v)\n", l)
				}
				if l == want {
					return true
				}
			case <-deadline:
				return false
			}
		}
	}

	// Leader re-election: isolate the rank-0 leader inside its group.
	t0 := time.Now()
	cluster.Fabric().Isolate(leader)
	if !waitLeader(watcher) {
		fmt.Fprintln(os.Stderr, "wanchaos: group never re-elected after isolating its leader")
		return 1
	}
	reelect := time.Since(t0)

	// Trust restoration: heal and wait for the old leader to return.
	t1 := time.Now()
	cluster.Fabric().HealIsolate(leader)
	if !waitLeader(leader) {
		fmt.Fprintln(os.Stderr, "wanchaos: trust never restored after heal")
		return 1
	}
	restore := time.Since(t1)

	// Time-to-resume-delivery: broadcast into a group partition, heal,
	// and time the full fan-in from the heal instant.
	cluster.Fabric().Partition([]wanamcast.GroupID{0}, allOtherGroups(groups), true)
	id := cluster.Broadcast(leader, "stalled-until-heal")
	time.Sleep(500 * time.Millisecond) // let the cast stall mid-protocol
	partial := cluster.DeliveredCount(id)
	t2 := time.Now()
	cluster.Fabric().HealAll()
	if !cluster.WaitDelivered(id, groups*d, 30*time.Second) {
		fmt.Fprintln(os.Stderr, "wanchaos: delivery never resumed after heal")
		return 1
	}
	resume := time.Since(t2)
	if verbose {
		fmt.Printf("  (deliveries during partition: %d of %d)\n", partial, groups*d)
	}

	fmt.Printf("suspectafter=%v heartbeat=%v wan=%v: reelect=%v trust-restore=%v resume-delivery=%v\n",
		suspAft, hbEvery, wan,
		reelect.Round(time.Millisecond), restore.Round(time.Millisecond), resume.Round(time.Millisecond))
	return 0
}

func allOtherGroups(groups int) []wanamcast.GroupID {
	out := make([]wanamcast.GroupID, 0, groups-1)
	for g := 1; g < groups; g++ {
		out = append(out, wanamcast.GroupID(g))
	}
	return out
}
