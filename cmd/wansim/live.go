package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"wanamcast"
	"wanamcast/internal/harness"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// runLive drives the wansim workload over a real TCP cluster on localhost
// (algorithms a1 and a2 only) instead of the simulator, and prints wall
// throughput. The transport knobs ride in on harness.Options: SendQueue,
// FlushEvery, and GobWire map straight onto the live transport's queue
// depth, flush coalescing window, and codec.
func runLive(algo harness.Algo, opts harness.Options, basePort, casts int, rate float64, spread int, seed int64, verbose bool) {
	if algo != harness.AlgoA1 && algo != harness.AlgoA2 {
		fmt.Fprintf(os.Stderr, "wansim: -live supports a1 and a2 only (got %s)\n", algo)
		os.Exit(1)
	}
	cfg := wanamcast.LiveConfig{
		Groups:      opts.Groups,
		PerGroup:    opts.PerGroup,
		BasePort:    basePort,
		WANDelay:    opts.Inter,
		LANDelay:    opts.Intra,
		MaxBatch:    opts.MaxBatch,
		Pipeline:    opts.A1Pipeline,
		Lanes:       opts.Lanes,
		InboxSize:   opts.InboxSize,
		SendQueue:   opts.SendQueue,
		FlushEvery:  opts.FlushEvery,
		GobCodec:    opts.GobWire,
		Bandwidth:   opts.BandwidthBytes(),
		Uncoalesced: opts.Uncoalesced,
		CompressMin: opts.CompressMin,
		TraceSpans:  opts.TraceLifecycle(),
		SpanBuf:     opts.SpanBuf,
		FlightDump:  opts.FlightDump,
	}
	if algo == harness.AlgoA2 {
		cfg.Pipeline = opts.A2Pipeline
	}
	l := wanamcast.NewLiveCluster(cfg)
	if err := l.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "wansim:", err)
		os.Exit(1)
	}
	defer l.Stop()

	if opts.TelemetryAddr != "" {
		tsrv, err := harness.ServeTelemetry(opts.TelemetryAddr, l.TelemetrySource("wansim", nil))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wansim:", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", tsrv.Addr())
	}

	codec := "wire"
	if opts.GobWire {
		codec = "gob"
	}
	sendq, flush := opts.SendQueue, opts.FlushEvery
	if sendq <= 0 {
		sendq = tcp.DefaultSendQueue
	}
	if flush <= 0 {
		flush = tcp.DefaultFlushEvery
	}
	n := opts.Groups * opts.PerGroup
	laneDesc := fmt.Sprintf("%d", opts.Lanes)
	if opts.Lanes == 0 {
		laneDesc = "per-process"
	}
	if opts.Uncoalesced {
		codec += " (uncoalesced)"
	}
	fmt.Printf("live %s: %d groups x %d processes over TCP, wan=%v lan=%v codec=%s lanes=%s sendqueue=%d flush=%v\n",
		algo, opts.Groups, opts.PerGroup, opts.Inter, opts.Intra, codec, laneDesc, sendq, flush)
	if opts.Bandwidth != "" {
		fmt.Printf("bandwidth      %s per link (heartbeats exempt)\n", opts.Bandwidth)
	}

	rng := rand.New(rand.NewSource(seed))
	period := time.Duration(float64(time.Second) / rate)
	begin := time.Now()
	ids := make([]wanamcast.MessageID, 0, casts)
	expected := 0
	for i := 0; i < casts; i++ {
		from := types.ProcessID(rng.Intn(n))
		if algo == harness.AlgoA2 {
			ids = append(ids, l.Broadcast(from, fmt.Sprintf("msg-%d", i)))
			expected += n
		} else {
			dest := pickDest(rng, opts.Groups, spread)
			ids = append(ids, l.Multicast(from, fmt.Sprintf("msg-%d", i), dest...))
			expected += spread * opts.PerGroup
		}
		if period > 0 {
			time.Sleep(period)
		}
	}
	for _, id := range ids {
		if !l.WaitDelivered(id, 1, 30*time.Second) {
			fmt.Fprintf(os.Stderr, "wansim: %v not delivered within 30s\n", id)
			os.Exit(1)
		}
	}
	// Drain the fan-out: every cast must reach all of its destinations.
	deadline := time.Now().Add(30 * time.Second)
	delivered := 0
	for time.Now().Before(deadline) {
		delivered = 0
		for _, id := range ids {
			delivered += l.DeliveredCount(id)
		}
		if delivered >= expected {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(begin)
	if verbose {
		for _, d := range l.Deliveries() {
			fmt.Printf("deliver %v at %v t=%v\n", d.ID, d.Process, d.At)
		}
	}
	fmt.Printf("casts          %d (%d deliveries of %d expected)\n", casts, delivered, expected)
	fmt.Printf("wall time      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("ordered/sec    %.0f (deliveries/sec %.0f)\n",
		float64(casts)/elapsed.Seconds(), float64(delivered)/elapsed.Seconds())
	if w := l.Stats().Wire; w.BytesOut > 0 && casts > 0 {
		fmt.Printf("wire           %d B out, %.0f B/cast, %.1f frames/write",
			w.BytesOut, float64(w.BytesOut)/float64(casts), w.FramesPerEnvelope())
		if cr := w.CompressionRatio(); cr > 0 {
			fmt.Printf(", compression %.2fx", cr)
		}
		fmt.Println()
	}
	if opts.BenchJSON != "" {
		st := l.Stats()
		fs := l.FsyncStats()
		r := harness.BenchResult{
			Name:           "wansim-live-" + string(algo),
			Topology:       fmt.Sprintf("%dx%d", opts.Groups, opts.PerGroup),
			Lanes:          opts.Lanes,
			Cores:          runtime.NumCPU(),
			Casts:          casts,
			OrderedPerSec:  float64(casts) / elapsed.Seconds(),
			P50Ms:          float64(st.P50Wall) / float64(time.Millisecond),
			P99Ms:          float64(st.P99Wall) / float64(time.Millisecond),
			Fsyncs:         fs.Fsyncs,
			GCBarriers:     fs.Barriers,
			GCWindows:      fs.Windows,
			BatchesDecided: st.BatchesDecided,
			StartedAt:      begin.UTC().Format(time.RFC3339),
		}
		if r.BatchesDecided > 0 {
			r.FsyncsPerBatch = float64(r.Fsyncs) / float64(r.BatchesDecided)
		}
		r.WanHops = harness.WanHopHist(st.DegreeHist)
		r.SetWire(st.Wire, opts.Bandwidth, opts.Uncoalesced)
		if tr := l.Tracer(); tr != nil {
			r.Stages = harness.StageBreakdown(tr.Stats().Snapshot())
		}
		if err := harness.AppendBenchJSON(opts.BenchJSON, r); err != nil {
			fmt.Fprintln(os.Stderr, "wansim: benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson      appended to %s\n", opts.BenchJSON)
	}
}
