// Command wansim runs a configurable wide-area workload through any of the
// nine algorithms and prints per-run statistics: latency-degree
// distribution, inter-group message counts, wall latencies, and the §2.2
// property-check verdict.
//
// Examples:
//
//	wansim -algo a1 -groups 3 -d 3 -casts 50 -spread 2
//	wansim -algo a2 -groups 2 -d 3 -casts 100 -rate 20 -crash 1
//	wansim -algo delporte -groups 4 -casts 20 -seed 7
//	wansim -algo all -groups 3 -casts 30        # one comparison table
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
)

func main() {
	var (
		algoName  = flag.String("algo", "a1", "algorithm: a1, a2, skeen, fritzke, delporte, rodrigues, detmerge, sousa, vicente")
		groups    = flag.Int("groups", 3, "number of groups")
		d         = flag.Int("d", 3, "processes per group")
		procs     = flag.Int("procs", 0, "processes per group (alias of -d; 0 defers to -d)")
		sweepSpec = flag.String("sweep", "", "run a scale sweep over these topology shapes instead of one run, e.g. 50x3,100x3,200x5 (sim only)")
		inter     = flag.Duration("inter", 100*time.Millisecond, "inter-group one-way delay")
		intra     = flag.Duration("intra", time.Millisecond, "intra-group one-way delay")
		jitter    = flag.Duration("jitter", 0, "uniform extra delay in [0,jitter)")
		casts     = flag.Int("casts", 20, "number of messages to cast")
		rate      = flag.Float64("rate", 10, "casts per second (virtual time)")
		spread    = flag.Int("spread", 2, "destination groups per multicast (ignored by broadcasts)")
		crash     = flag.Int("crash", 0, "crash this many processes (one per group, minority) mid-run")
		seed      = flag.Int64("seed", 1, "simulation seed")
		maxBatch  = flag.Int("maxbatch", 0, "max messages per consensus instance (0 = unbounded, the paper's rule)")
		pipeline  = flag.Int("pipeline", 1, "consensus instances/rounds in flight (1 = the paper's sequential engine)")
		live      = flag.Bool("live", false, "run over real TCP sockets on localhost instead of the simulator (a1/a2 only)")
		basePort  = flag.Int("port", 22000, "base TCP port for -live (process p listens on port+p)")
		sendq     = flag.Int("sendqueue", 0, "live transport: per-connection send queue depth (0 = default 4096)")
		flush     = flag.Duration("flush", 0, "live transport: max frame-coalescing latency before a flush (0 = default 200µs)")
		gobWire   = flag.Bool("gobwire", false, "live transport: use the legacy gob codec instead of the wire codec")
		bandwidth = flag.String("bandwidth", "", "per-link bandwidth cap, e.g. 50mbit, 6.25MB, 1gbit (empty = uncapped; heartbeats are exempt)")
		uncoal    = flag.Bool("uncoalesced", false, "live transport: disable batch envelopes (one frame per message; baseline codec)")
		compMin   = flag.Int("compressmin", 0, "live transport: compress batch envelopes at or above this many bytes (0 = default 1500, negative = off)")
		lanes     = flag.Int("lanes", 0, "ordering lanes: shard processes across this many goroutines by group (0 = one per process); sim runs only account lanes")
		inbox     = flag.Int("inbox", 0, "live transport: per-lane inbox ring size (0 = default 4096)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-GC, live objects) to this file")
		mtxProf   = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		benchOut  = flag.String("benchjson", "", "with -live: append a machine-readable result record to this JSON file")
		telem     = flag.String("telemetry", "", "with -live: serve /metrics, /spans, and /healthz on this host:port (empty = off)")
		spanBuf   = flag.Int("spanbuf", 0, "with -live: per-lane span ring capacity for lifecycle tracing (0 = default)")
		flightD   = flag.String("flightdump", "", "with -live: write a JSONL span dump here on a property violation or sync failure")
		scn       = flag.String("scenario", "", "chaos scenario to run under the workload (partition-heal, asym-partition, leader-flap, delay-spike, partition-recovery); sim only")
		scnUnit   = flag.Duration("scnunit", 500*time.Millisecond, "chaos scenario time step (with -scenario)")
		verbose   = flag.Bool("v", false, "print every delivery")
	)
	flag.Parse()

	// Validate all flags before building anything: exit 2 with a usage
	// message instead of panicking mid-run on a bad topology or workload.
	fail := func(format string, args ...any) {
		harness.Usagef("wansim", format, args...)
	}
	if *procs != 0 {
		if *procs < 1 {
			fail("-procs must be at least 1 (got %d)", *procs)
		}
		dSet := false
		flag.Visit(func(f *flag.Flag) { dSet = dSet || f.Name == "d" })
		if dSet && *d != *procs {
			fail("-procs is an alias of -d; got conflicting values %d and %d", *procs, *d)
		}
		*d = *procs
	}
	if *groups < 1 || *d < 1 {
		fail("-groups and -d must be at least 1 (got %d x %d)", *groups, *d)
	}
	if *casts < 0 {
		fail("-casts must be non-negative (got %d)", *casts)
	}
	if *rate <= 0 {
		fail("-rate must be positive (got %g)", *rate)
	}
	if *spread < 1 {
		fail("-spread must be at least 1 (got %d)", *spread)
	}
	if *crash < 0 {
		fail("-crash must be non-negative (got %d)", *crash)
	}
	if *pipeline < 1 {
		fail("-pipeline must be at least 1 (got %d)", *pipeline)
	}
	if *live {
		if err := harness.ValidatePortRange(*basePort, *groups**d); err != nil {
			fail("-port: %v", err)
		}
		if *scn != "" {
			fail("-scenario runs on the simulator only (cmd/wanchaos drives live chaos)")
		}
	}
	if *scn != "" {
		if *groups < 2 {
			fail("-scenario needs at least 2 groups to partition")
		}
		if *scnUnit <= 0 {
			fail("-scnunit must be positive")
		}
	}
	if *spread > *groups {
		*spread = *groups
	}
	if *algoName == "all" {
		compareAll(*groups, *d, *inter, *intra, *jitter, *casts, *rate, *spread, *seed)
		return
	}
	algo := harness.Algo(*algoName)
	if !algo.Known() {
		fail("unknown -algo %q", *algoName)
	}
	if *benchOut != "" && !*live && *sweepSpec == "" {
		fail("-benchjson records live benchmark or -sweep runs only")
	}
	var sweepShapes []harness.Shape
	if *sweepSpec != "" {
		if *live {
			fail("-sweep runs on the simulator only")
		}
		if *scn != "" {
			fail("-sweep and -scenario are mutually exclusive")
		}
		var err error
		sweepShapes, err = harness.ParseSweep(*sweepSpec)
		if err != nil {
			fail("-sweep: %v", err)
		}
	}
	opts := harness.Options{
		Groups: *groups, PerGroup: *d,
		Inter: *inter, Intra: *intra, Jitter: *jitter, Seed: *seed,
		MaxBatch: *maxBatch, A1Pipeline: *pipeline, A2Pipeline: *pipeline,
		SendQueue: *sendq, FlushEvery: *flush, GobWire: *gobWire,
		Bandwidth: *bandwidth, Uncoalesced: *uncoal, CompressMin: *compMin,
		Lanes: *lanes, InboxSize: *inbox,
		CPUProfile: *cpuProf, MemProfile: *memProf, MutexProfile: *mtxProf,
		BenchJSON:     *benchOut,
		TelemetryAddr: *telem, SpanBuf: *spanBuf, FlightDump: *flightD,
	}
	if err := opts.Validate(); err != nil {
		fail("%v", err)
	}
	// Every sweep point must validate as a full Options value too, so a bad
	// shape dies here with a usage message, not mid-sweep.
	for _, sh := range sweepShapes {
		o := opts
		o.Groups, o.PerGroup = sh.Groups, sh.PerGroup
		if err := o.Validate(); err != nil {
			fail("-sweep %v: %v", sh, err)
		}
	}
	if opts.TraceLifecycle() && !*live {
		fail("-telemetry, -spanbuf, and -flightdump instrument live runs only (add -live)")
	}
	if (*uncoal || *compMin != 0) && !*live {
		fail("-uncoalesced and -compressmin tune the live transport only (add -live)")
	}
	stopProf, err := harness.StartProfiles(opts.CPUProfile, opts.MemProfile, opts.MutexProfile)
	if err != nil {
		fail("%v", err)
	}
	flushProf := func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "wansim: profile:", err)
		}
	}
	if len(sweepShapes) > 0 {
		runSweep(algo, opts, sweepShapes, *casts, *benchOut)
		flushProf()
		return
	}
	if *live {
		runLive(algo, opts, *basePort, *casts, *rate, *spread, *seed, *verbose)
		flushProf()
		return
	}
	s := harness.Build(algo, opts)
	rng := rand.New(rand.NewSource(*seed))
	period := time.Duration(float64(time.Second) / *rate)

	crashed := make(map[types.ProcessID]bool)
	if *scn != "" {
		sc, ok := scenario.ByName(s.Topo, scenario.SuiteConfig{Unit: *scnUnit}, *scn)
		if !ok {
			fail("unknown -scenario %q (have %v)", *scn, scenario.Names())
		}
		funcs := s.Chaos()
		funcs.Logf = func(format string, args ...any) {
			fmt.Printf("chaos: "+format+"\n", args...)
		}
		scenario.Apply(funcs, sc)
		// The simulator cannot restart, so scenario crash victims stay
		// down: stop scheduling casts from them.
		for _, e := range sc.Events {
			if e.Kind == scenario.Crash {
				for _, p := range e.Procs {
					crashed[p] = true
				}
			}
		}
	}

	// Warm A2's rounds so the steady-state latency is measured.
	if algo == harness.AlgoA2 {
		for g := 0; g < *groups; g++ {
			s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", s.Topo.AllGroups())
		}
	}

	for i := 0; i < *crash && i < *groups; i++ {
		// Crash the last member of group i (never the consensus leader's
		// whole majority).
		members := s.Topo.Members(types.GroupID(i))
		if len(members) < 3 {
			fmt.Fprintln(os.Stderr, "wansim: refusing to crash in groups smaller than 3 (consensus needs a majority)")
			break
		}
		victim := members[len(members)-1]
		at := time.Duration(i+1) * period
		s.CrashAt(victim, at)
		crashed[victim] = true
		fmt.Printf("crash: %v at %v\n", victim, at)
	}

	var ids []types.MessageID
	for i := 0; i < *casts; i++ {
		i := i
		from := types.ProcessID(rng.Intn(s.Topo.N()))
		dest := pickDest(rng, *groups, *spread)
		at := time.Duration(i+1) * period
		s.RT.Scheduler().At(at, func() {
			if crashed[from] {
				return
			}
			ids = append(ids, s.Cast(from, fmt.Sprintf("msg-%d", i), types.NewGroupSet(dest...)))
		})
	}

	s.Run()
	flushProf()

	if *verbose {
		for _, del := range s.Deliveries {
			fmt.Printf("deliver %v at %v t=%v\n", del.ID, del.Process, del.At)
		}
	}

	st := s.Col.Snapshot()
	fmt.Printf("\nalgorithm      %s\n", algo)
	fmt.Printf("topology       %d groups x %d processes, inter=%v intra=%v jitter=%v\n", *groups, *d, *inter, *intra, *jitter)
	fmt.Printf("casts          %d (plus warm-ups where applicable)\n", len(ids))
	fmt.Printf("virtual time   %v\n", s.RT.Now())
	fmt.Printf("stats          %v\n", st)
	if v := s.Check(); len(v) != 0 {
		fmt.Printf("\nPROPERTY VIOLATIONS (%d):\n", len(v))
		for _, x := range v {
			fmt.Println(" ", x)
		}
		os.Exit(1)
	}
	fmt.Println("properties     uniform integrity, validity, uniform agreement, uniform prefix order: OK")
}

// runSweep measures the simulation runtime itself across topology shapes:
// one full workload per shape, reporting events/s, allocs/event, wall
// clock, and peak heap. With benchOut set, each point also appends a
// machine-readable record (BENCH_sim.json by convention).
func runSweep(algo harness.Algo, opts harness.Options, shapes []harness.Shape, casts int, benchOut string) {
	fmt.Printf("scale sweep: algo=%s casts=%d seed=%d inter=%v intra=%v jitter=%v\n",
		algo, casts, opts.Seed, opts.Inter, opts.Intra, opts.Jitter)
	fmt.Printf("%-8s %-6s %-10s %-12s %-14s %-10s %-12s %s\n",
		"shape", "procs", "casts", "events", "events/s", "wall", "allocs/ev", "peak heap")
	for _, sh := range shapes {
		p := harness.RunScaleSweep(algo, opts, []harness.Shape{sh}, casts)[0]
		fmt.Printf("%-8s %-6d %-10d %-12d %-14.0f %-10v %-12.2f %.1f MiB\n",
			p.Shape, p.Shape.N(), p.Casts, p.Events, p.EventsPerSec,
			p.Wall.Round(time.Millisecond), p.AllocsPerEvent,
			float64(p.PeakHeapBytes)/(1<<20))
		if p.Violations != 0 {
			fmt.Fprintf(os.Stderr, "wansim: %d property violations at %v\n", p.Violations, p.Shape)
			os.Exit(1)
		}
		if benchOut != "" {
			rec := p.BenchRecord("sim-sweep-"+string(algo), opts.Seed)
			rec.StartedAt = time.Now().UTC().Format(time.RFC3339)
			if err := harness.AppendBenchJSON(benchOut, rec); err != nil {
				fmt.Fprintln(os.Stderr, "wansim: benchjson:", err)
				os.Exit(1)
			}
		}
	}
}

// pickDest samples spread distinct destination groups. It requires
// spread <= groups (main clamps the flag) or it would never terminate.
func pickDest(rng *rand.Rand, groups, spread int) []types.GroupID {
	var dest []types.GroupID
	for len(dest) < spread {
		g := types.GroupID(rng.Intn(groups))
		dup := false
		for _, x := range dest {
			dup = dup || x == g
		}
		if !dup {
			dest = append(dest, g)
		}
	}
	return dest
}

// compareAll runs the same workload through every algorithm and prints one
// row per contender: mean latency degree, inter-group messages, and wall
// latency percentiles.
func compareAll(groups, d int, inter, intra, jitter time.Duration, casts int, rate float64, spread int, seed int64) {
	period := time.Duration(float64(time.Second) / rate)
	algos := append(harness.MulticastAlgos(), harness.AlgoSkeen)
	algos = append(algos, harness.BroadcastAlgos()[:3]...) // det-merge already listed
	fmt.Printf("workload: %d casts, period %v, %d of %d groups per cast, seed %d\n", casts, period, spread, groups, seed)
	fmt.Printf("%-11s %-6s %-12s %-12s %-10s %-10s %s\n", "algorithm", "kind", "mean degree", "inter-group", "p50 wall", "p99 wall", "properties")
	seen := map[harness.Algo]bool{}
	for _, algo := range algos {
		if seen[algo] {
			continue
		}
		seen[algo] = true
		s := harness.Build(algo, harness.Options{
			Groups: groups, PerGroup: d, Inter: inter, Intra: intra, Jitter: jitter, Seed: seed,
			DetMergeInterval: inter / 2, DetMergeStop: time.Duration(casts+4) * period,
		})
		if algo == harness.AlgoA2 {
			for g := 0; g < groups; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", s.Topo.AllGroups())
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < casts; i++ {
			i := i
			from := types.ProcessID(rng.Intn(s.Topo.N()))
			dest := pickDest(rng, groups, spread)
			s.CastAt(time.Duration(i+1)*period, from, fmt.Sprintf("m%d", i), types.NewGroupSet(dest...))
		}
		s.Run()
		st := s.Col.Snapshot()
		kind := "mcast"
		if s.IsBroadcast() {
			kind = "bcast"
		}
		verdict := "OK"
		if v := s.Check(); len(v) != 0 {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(v))
		}
		fmt.Printf("%-11s %-6s %-12.2f %-12d %-10v %-10v %s\n",
			algo, kind, st.MeanDegree, st.InterGroupMessages,
			st.P50Wall.Round(time.Millisecond), st.P99Wall.Round(time.Millisecond), verdict)
	}
	fmt.Println("\nnote: mean degrees exceed the single-message optima under contention —")
	fmt.Println("concurrent messages extend each other's causal paths; see EXPERIMENTS.md.")
}
