// Command quiesce explores Algorithm A2's quiescence behaviour
// (Proposition A.9 and §5.3): it casts a finite burst of broadcasts,
// reports when the system stops sending messages, then casts one more
// message after quiescence and shows the latency-degree penalty
// (Theorem 5.2). It also sweeps the broadcast period to locate the
// frequency below which rounds never stop and every message keeps latency
// degree one.
//
// Usage:
//
//	quiesce [-groups n] [-d per-group] [-inter delay]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/types"
)

func main() {
	groups := flag.Int("groups", 2, "number of groups")
	d := flag.Int("d", 3, "processes per group")
	inter := flag.Duration("inter", 100*time.Millisecond, "inter-group one-way delay")
	flag.Parse()

	// A bad flag must die with a usage message here, not as a topology
	// panic mid-run.
	if *groups < 1 || *d < 1 {
		harness.Usagef("quiesce", "-groups and -d must be at least 1 (got %d x %d)", *groups, *d)
	}
	opts := harness.Options{Groups: *groups, PerGroup: *d, Inter: *inter}
	if err := opts.Validate(); err != nil {
		harness.Usagef("quiesce", "%v", err)
	}

	burst(*groups, *d, *inter)
	fmt.Println()
	sweep(*groups, *d, *inter)
}

func burst(groups, d int, inter time.Duration) {
	fmt.Println("Proposition A.9 — quiescence after a finite burst")
	s := harness.Build(harness.AlgoA2, harness.Options{Groups: groups, PerGroup: d, Inter: inter})
	all := s.Topo.AllGroups()
	for g := 0; g < groups; g++ {
		s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
	}
	lastCast := time.Duration(0)
	for i := 1; i <= 5; i++ {
		lastCast = time.Duration(i) * 30 * time.Millisecond
		s.CastAt(lastCast, s.Topo.Members(0)[i%d], i, all)
	}
	s.Run()
	lastSend, _ := s.Col.LastSend()
	fmt.Printf("  last cast at             %v\n", lastCast)
	fmt.Printf("  last message sent at     %v (then silence — quiescent)\n", lastSend)
	fmt.Printf("  virtual time at drain    %v\n", s.RT.Now())

	// Theorem 5.2: the next cast pays latency degree two.
	late := s.Cast(s.Topo.Members(types.GroupID(groups - 1))[0], "late", all)
	s.Run()
	deg, ok := s.DegreeOf(late)
	if !ok {
		fmt.Fprintln(os.Stderr, "quiesce: late message not delivered")
		os.Exit(1)
	}
	fmt.Printf("  cast after quiescence    Δ=%d (Theorem 5.2: the restart costs one extra hop)\n", deg)
	if v := s.Check(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "quiesce: property violations: %v\n", v)
		os.Exit(1)
	}
}

func sweep(groups, d int, inter time.Duration) {
	fmt.Println("§5.3 — period sweep: below the round time, rounds stay useful and Δ stays 1")
	fmt.Println("  period    mean Δ   rounds-stopped?")
	for _, frac := range []int{4, 2, 1} { // inter/4, inter/2, inter (≈ round time), then above
		sweepOne(groups, d, inter, inter/time.Duration(frac))
	}
	sweepOne(groups, d, inter, 3*inter)
}

func sweepOne(groups, d int, inter, period time.Duration) {
	s := harness.Build(harness.AlgoA2, harness.Options{Groups: groups, PerGroup: d, Inter: inter})
	all := s.Topo.AllGroups()
	for g := 0; g < groups; g++ {
		s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
	}
	var ids []types.MessageID
	for j := 1; j <= 12; j++ {
		j := j
		from := s.Topo.Members(types.GroupID(j % groups))[j%d]
		s.RT.Scheduler().At(time.Duration(j)*period, func() {
			ids = append(ids, s.Cast(from, j, all))
		})
	}
	s.Run()
	var sum int64
	for _, id := range ids {
		dg, ok := s.DegreeOf(id)
		if !ok {
			fmt.Fprintln(os.Stderr, "quiesce: message lost in sweep")
			os.Exit(1)
		}
		sum += dg
	}
	mean := float64(sum) / float64(len(ids))
	stopped := "no"
	if mean > 1.5 {
		stopped = "yes (every cast restarts rounds)"
	}
	fmt.Printf("  %-9v %-8.2f %s\n", period, mean, stopped)
}
