// Command wankv runs the client-facing replicated key-value service: a
// live wide-area cluster (real TCP, injected WAN delay) whose every
// replica also serves clients through the exactly-once session protocol of
// internal/svc. Keys of the form "g<N>/..." live on shard N; a put
// touching several shards is one cross-shard command, genuinely multicast
// to exactly those shards (Algorithm A1).
//
// Serve mode (default) keeps the service up until interrupted:
//
//	wankv -groups 3 -d 3 -svcport 20000
//
// Load mode drives a closed-loop multi-client workload against the
// service, prints the client-observed latency by shard fan-out, verifies
// the §2.2 properties over the run, and exits non-zero on any violation
// or failed operation:
//
//	wankv -groups 3 -d 3 -clients 100 -ops 5 -check
//
// The read tier serves a read-heavy mix without a WAN round trip per
// read: -reads sets the read fraction and -consistency picks the mode —
// ordered (a full total-order round), lease (linearizable at the leader
// under a leader lease, enabled by -leasems and guarded by -skewms), or
// watermark (monotonic session reads at any replica):
//
//	wankv -groups 4 -d 3 -clients 64 -ops 50 -reads 0.95 -consistency lease -leasems 250
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"wanamcast"
	"wanamcast/internal/fd"
	"wanamcast/internal/harness"
	"wanamcast/internal/metrics"
	"wanamcast/internal/scenario"
	"wanamcast/internal/storage"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

func main() { os.Exit(run()) }

// run holds the real main so deferred shutdowns survive the explicit exit
// code.
func run() int {
	var (
		groups   = flag.Int("groups", 3, "number of shards (groups)")
		d        = flag.Int("d", 3, "replicas per shard")
		basePort = flag.Int("port", 19000, "cluster base port (process p listens on port+p)")
		svcPort  = flag.Int("svcport", 20000, "client-facing base port (replica p serves on svcport+p)")
		wan      = flag.Duration("wan", 100*time.Millisecond, "injected one-way inter-shard delay")
		lan      = flag.Duration("lan", 0, "injected intra-shard delay (0 = raw loopback)")
		maxBatch = flag.Int("maxbatch", 64, "max messages per consensus instance (0 = unbounded)")
		pipeline = flag.Int("pipeline", 4, "consensus instances in flight")
		clients  = flag.Int("clients", 0, "closed-loop client sessions; 0 = serve until interrupted")
		ops      = flag.Int("ops", 5, "operations per client (load mode)")
		timeout  = flag.Duration("timeout", time.Second, "client first-attempt reply timeout (doubles per retry)")
		seed     = flag.Int64("seed", 1, "workload seed")
		checkRun = flag.Bool("check", false, "verify the §2.2 properties over the run (unbounded memory)")
		dataDir  = flag.String("datadir", "", "persist each replica's WAL+snapshots under this directory (empty = volatile)")
		noFsync  = flag.Bool("nofsync", false, "with -datadir: write WALs without fsync barriers (benchmark knob)")
		snapEvry = flag.Int("snapevery", 0, "with -datadir: snapshot every N deliveries per replica (0 = default 512)")
		reads    = flag.Float64("reads", 0, "read fraction of the load in [0,1] (load mode; 0 = write-only)")
		consist  = flag.String("consistency", "ordered", "read consistency: ordered (full total-order round), lease (leader-local linearizable), watermark (any-replica monotonic)")
		leaseMS  = flag.Int("leasems", 0, "leader lease duration in milliseconds (0 = leases off; required for -consistency lease)")
		skewMS   = flag.Int("skewms", 0, "max clock-rate drift per lease window in milliseconds (0 = default 10ms when leases are on)")
		scn      = flag.String("scenario", "", "chaos scenario to run under the load (partition-heal, asym-partition, leader-flap, delay-spike, partition-recovery, lease-partition); load mode only")
		scnUnit  = flag.Duration("unit", 500*time.Millisecond, "chaos scenario time step (with -scenario)")
		bandw    = flag.String("bandwidth", "", "per-link bandwidth cap, e.g. 50mbit, 6.25MB, 1gbit (empty = uncapped; heartbeats are exempt)")
		uncoal   = flag.Bool("uncoalesced", false, "disable batch envelopes (one wire frame per message; baseline codec)")
		compMin  = flag.Int("compressmin", 0, "compress batch envelopes at or above this many bytes (0 = default 1500, negative = off)")
		lanes    = flag.Int("lanes", 0, "shard replicas across this many ordering lane goroutines by group (0 = one per replica)")
		inbox    = flag.Int("inbox", 0, "per-lane inbox ring size (0 = default 4096)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-GC, live objects) to this file")
		mtxProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		benchOut = flag.String("benchjson", "", "load mode: append a machine-readable result record to this JSON file")
		telem    = flag.String("telemetry", "", "serve the introspection plane (/metrics, /spans, /healthz) on this host:port; enables lifecycle tracing")
		spanBuf  = flag.Int("spanbuf", 0, "per-lane lifecycle span ring size (0 = default 4096; >0 enables tracing)")
		flightD  = flag.String("flightdump", "", "dump recent spans as JSONL here on a property violation, failed state transfer, or restart; enables tracing")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		harness.Usagef("wankv", format, args...)
	}
	if *groups < 1 || *d < 1 {
		fail("-groups and -d must be at least 1 (got %d x %d)", *groups, *d)
	}
	n := *groups * *d
	if err := harness.ValidatePortRange(*basePort, n); err != nil {
		fail("-port: %v", err)
	}
	if err := harness.ValidatePortRange(*svcPort, n); err != nil {
		fail("-svcport: %v", err)
	}
	if *wan < 0 || *lan < 0 {
		fail("-wan and -lan must be non-negative")
	}
	if *maxBatch < 0 || *pipeline < 1 {
		fail("-maxbatch must be non-negative and -pipeline at least 1")
	}
	if *clients < 0 || (*clients > 0 && *ops < 1) {
		fail("-clients must be non-negative and -ops at least 1 in load mode")
	}
	if *timeout <= 0 {
		fail("-timeout must be positive")
	}
	if (*noFsync || *snapEvry != 0) && *dataDir == "" {
		fail("-nofsync and -snapevery need -datadir")
	}
	if *lanes < 0 || *inbox < 0 {
		fail("-lanes and -inbox must be non-negative")
	}
	if *leaseMS < 0 || *skewMS < 0 {
		fail("-leasems and -skewms must be non-negative")
	}
	// The read-tier flags share the harness validation with every command.
	readOpts := harness.Options{
		ReadFraction:  *reads,
		Consistency:   *consist,
		LeaseDuration: time.Duration(*leaseMS) * time.Millisecond,
		MaxClockSkew:  time.Duration(*skewMS) * time.Millisecond,
		TelemetryAddr: *telem,
		SpanBuf:       *spanBuf,
		FlightDump:    *flightD,
		Bandwidth:     *bandw,
		Uncoalesced:   *uncoal,
		CompressMin:   *compMin,
	}
	if err := readOpts.Validate(); err != nil {
		fail("%v", err)
	}
	mode, err := svc.ParseConsistency(*consist)
	if err != nil {
		fail("-consistency: %v", err)
	}
	if *benchOut != "" && *clients < 1 {
		fail("-benchjson records load-mode runs only (-clients >= 1)")
	}
	if *scn != "" {
		if *clients < 1 {
			fail("-scenario needs load mode (-clients >= 1)")
		}
		if *groups < 2 {
			fail("-scenario needs at least 2 shards to partition")
		}
		if *scnUnit <= 0 {
			fail("-unit must be positive")
		}
	}

	stopProf, err := harness.StartProfiles(*cpuProf, *memProf, *mtxProf)
	if err != nil {
		fail("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "wankv: profile:", err)
		}
	}()

	cfg := wanamcast.LiveConfig{
		Groups:        *groups,
		PerGroup:      *d,
		BasePort:      *basePort,
		WANDelay:      *wan,
		LANDelay:      *lan,
		MaxBatch:      *maxBatch,
		Pipeline:      *pipeline,
		Lanes:         *lanes,
		InboxSize:     *inbox,
		Check:         *checkRun,
		DataDir:       *dataDir,
		NoFsync:       *noFsync,
		SnapshotEvery: *snapEvry,
		LeaseDuration: readOpts.LeaseDuration,
		MaxClockSkew:  readOpts.MaxClockSkew,
		TraceSpans:    readOpts.TraceLifecycle(),
		SpanBuf:       *spanBuf,
		FlightDump:    *flightD,
		Bandwidth:     readOpts.BandwidthBytes(),
		Uncoalesced:   *uncoal,
		CompressMin:   *compMin,
	}
	if *scn != "" && *dataDir == "" {
		// Crash/restart scenarios need a durable store per replica; without
		// a data dir, in-memory stores keep the run volatile but
		// restartable.
		stores := make([]storage.Store, *groups**d)
		for i := range stores {
			stores[i] = storage.NewMem()
		}
		cfg.StoreFor = func(p wanamcast.ProcessID) storage.Store { return stores[p] }
	}
	cluster := wanamcast.NewLiveCluster(cfg)
	if err := cluster.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "wankv:", err)
		return 1
	}
	defer cluster.Stop()

	topo := cluster.Topology()
	route := svc.PrefixRoute(*groups)
	stats := &metrics.Service{}
	svcCfg := svc.ServiceConfig{
		BasePort: *svcPort,
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		Stats:  stats,
		Tracer: cluster.Tracer(),
	}
	if readOpts.LeaseDuration > 0 {
		svcCfg.LeaseFor = func(p types.ProcessID) *fd.Lease { return cluster.ReadLease(p) }
	}
	service, err := svc.ServeCluster(cluster, topo, svcCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wankv:", err)
		return 1
	}
	defer service.Stop()

	laneDesc := "one per replica"
	if *lanes > 0 {
		laneDesc = fmt.Sprintf("%d", *lanes)
	}
	fmt.Printf("wankv: %d shards x %d replicas, wan=%v lan=%v maxbatch=%d pipeline=%d lanes=%s\n",
		*groups, *d, *wan, *lan, *maxBatch, *pipeline, laneDesc)
	if *bandw != "" {
		fmt.Printf("  bandwidth: %s per link (heartbeats exempt)\n", *bandw)
	}
	if *dataDir != "" {
		mode := "fsync per batch"
		if *noFsync {
			mode = "fsync OFF"
		}
		fmt.Printf("  durability: %s (%s)\n", *dataDir, mode)
	}
	for g := 0; g < *groups; g++ {
		fmt.Printf("  shard g%d: %v\n", g, service.Addrs()[types.GroupID(g)])
	}
	if *telem != "" {
		tsrv, err := harness.ServeTelemetry(*telem, cluster.TelemetrySource("wankv", stats))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wankv:", err)
			return 1
		}
		defer tsrv.Close()
		fmt.Printf("  telemetry: http://%s/metrics\n", tsrv.Addr())
	}

	if *clients == 0 {
		fmt.Println("serving; keys \"g<N>/...\" live on shard N; Ctrl-C to stop")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		return 0
	}

	if *scn != "" {
		sc, ok := scenario.ByName(topo, scenario.SuiteConfig{Unit: *scnUnit}, *scn)
		if !ok {
			fail("unknown -scenario %q (have %v)", *scn, scenario.Names())
		}
		funcs := cluster.Chaos()
		funcs.RestartFn = service.RestartReplica
		funcs.Logf = func(format string, args ...any) {
			fmt.Printf("chaos: "+format+"\n", args...)
		}
		scenario.Apply(funcs, sc)
		fmt.Printf("chaos: scenario %s armed (unit %v, horizon %v)\n", sc.Name, *scnUnit, sc.Horizon())
	}

	if *reads > 0 {
		fmt.Printf("load: %d closed-loop clients x %d ops, %.0f%% reads at %s consistency (seed %d, timeout %v)\n",
			*clients, *ops, *reads*100, *consist, *seed, *timeout)
	} else {
		fmt.Printf("load: %d closed-loop clients x %d ops (seed %d, timeout %v)\n", *clients, *ops, *seed, *timeout)
	}
	res := svc.RunKVLoad(topo, service.Addrs(), svc.LoadSpec{
		Clients:      *clients,
		Ops:          *ops,
		Mix:          workload.DefaultMix(),
		Timeout:      *timeout,
		Seed:         *seed,
		ReadFraction: *reads,
		Consistency:  mode,
	}, stats)

	fmt.Printf("\nops            %d ok, %d failed in %v (%.1f ops/s)\n",
		res.Ops, res.Errors, res.Elapsed.Round(time.Millisecond),
		float64(res.Ops)/res.Elapsed.Seconds())
	if res.Reads > 0 {
		fmt.Printf("read tier      %d reads, %d writes (%.1f reads/s at %s consistency)\n",
			res.Reads, res.Writes, float64(res.Reads)/res.Elapsed.Seconds(), *consist)
	}
	fmt.Printf("service        %v\n", res.Stats)
	if st := cluster.Stats(); st.Suspicions > 0 || st.TrustRestorations > 0 || st.LeaderChanges > 0 {
		fmt.Printf("fd             suspicions=%d trust-restored=%d leader-changes=%d\n",
			st.Suspicions, st.TrustRestorations, st.LeaderChanges)
	}
	if fs := cluster.FsyncStats(); fs.Fsyncs > 0 || fs.Barriers > 0 {
		fmt.Printf("durability     fsyncs=%d gc-barriers=%d gc-windows=%d\n",
			fs.Fsyncs, fs.Barriers, fs.Windows)
	}
	if w := cluster.Stats().Wire; w.BytesOut > 0 && res.Ops > 0 {
		fmt.Printf("wire           %d B out, %.0f B/op, %.1f frames/write",
			w.BytesOut, float64(w.BytesOut)/float64(res.Ops), w.FramesPerEnvelope())
		if cr := w.CompressionRatio(); cr > 0 {
			fmt.Printf(", compression %.2fx", cr)
		}
		fmt.Println()
	}
	if *benchOut != "" {
		st := cluster.Stats()
		fs := cluster.FsyncStats()
		r := harness.BenchResult{
			Name:           "wankv-load",
			Topology:       fmt.Sprintf("%dx%d", *groups, *d),
			Lanes:          *lanes,
			Cores:          runtime.NumCPU(),
			Casts:          res.Ops,
			OrderedPerSec:  float64(res.Ops) / res.Elapsed.Seconds(),
			P50Ms:          float64(st.P50Wall) / float64(time.Millisecond),
			P99Ms:          float64(st.P99Wall) / float64(time.Millisecond),
			Fsyncs:         fs.Fsyncs,
			GCBarriers:     fs.Barriers,
			GCWindows:      fs.Windows,
			BatchesDecided: st.BatchesDecided,
			StartedAt:      time.Now().UTC().Format(time.RFC3339),
		}
		if r.BatchesDecided > 0 {
			r.FsyncsPerBatch = float64(r.Fsyncs) / float64(r.BatchesDecided)
		}
		r.WanHops = harness.WanHopHist(st.DegreeHist)
		r.SetWire(st.Wire, *bandw, *uncoal)
		if tr := cluster.Tracer(); tr != nil {
			r.Stages = harness.StageBreakdown(tr.Stats().Snapshot())
		}
		if res.Reads > 0 {
			ss := stats.Snapshot()
			r.ReadFraction = *reads
			r.Consistency = *consist
			r.Reads = res.Reads
			r.ReadsPerSec = float64(res.Reads) / res.Elapsed.Seconds()
			r.StaleReads = ss.StaleReads
			r.LeaseDenied = ss.LeaseDenied
			r.ByClass = make(map[string]map[string]float64, len(ss.ByClass))
			for class, sum := range ss.ByClass {
				r.ByClass[class] = map[string]float64{
					"p50": float64(sum.P50) / float64(time.Millisecond),
					"p99": float64(sum.P99) / float64(time.Millisecond),
				}
			}
		}
		if err := harness.AppendBenchJSON(*benchOut, r); err != nil {
			fmt.Fprintln(os.Stderr, "wankv: benchjson:", err)
			return 1
		}
		fmt.Printf("benchjson      appended to %s\n", *benchOut)
	}

	exit := 0
	if res.Errors > 0 {
		exit = 1
	}
	if *checkRun {
		// In-flight duplicates of retried commands may still be draining;
		// wait until the §2.2 checker is clean or the grace period ends.
		violations := cluster.WaitPropertiesClean(30 * time.Second)
		if len(violations) > 0 {
			fmt.Printf("\nPROPERTY VIOLATIONS (%d):\n", len(violations))
			for _, v := range violations {
				fmt.Println(" ", v)
			}
			exit = 1
		} else {
			fmt.Println("properties     uniform integrity, validity, uniform agreement, uniform prefix order: OK")
		}
	}
	return exit
}
