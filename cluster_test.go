package wanamcast

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(Config{})
	if c.Groups().Size() != 2 {
		t.Errorf("default groups = %d, want 2", c.Groups().Size())
	}
	id := c.Broadcast(c.Process(0, 0), "x")
	c.Run()
	if _, ok := c.LatencyDegree(id); !ok {
		t.Error("default cluster did not deliver")
	}
}

func TestClusterOnDeliverOrder(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 2})
	var order []string
	c.OnDeliver(func(p ProcessID, id MessageID, payload any) {
		order = append(order, fmt.Sprintf("%v:%v", p, payload))
	})
	c.Broadcast(c.Process(0, 0), "a")
	c.Run()
	if len(order) != 4 {
		t.Fatalf("callback fired %d times, want 4", len(order))
	}
}

func TestClusterSequences(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 2})
	a := c.Broadcast(c.Process(0, 0), "a")
	c.Run()
	b := c.Broadcast(c.Process(1, 0), "b")
	c.Run()
	for _, p := range []ProcessID{0, 1, 2, 3} {
		seq := c.SequenceAt(p)
		if len(seq) != 2 || seq[0] != a || seq[1] != b {
			t.Fatalf("p%v sequence %v, want [%v %v]", p, seq, a, b)
		}
	}
}

func TestClusterMulticastNoGroupsPanics(t *testing.T) {
	c := NewCluster(Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Multicast(0, "x")
}

func TestClusterGenuinenessRequiresLogSends(t *testing.T) {
	c := NewCluster(Config{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic without LogSends")
		}
	}()
	c.CheckGenuineness()
}

func TestClusterGenuinenessClean(t *testing.T) {
	c := NewCluster(Config{Groups: 3, PerGroup: 2, LogSends: true})
	c.Multicast(c.Process(0, 0), "x", 0, 1)
	c.Run()
	if v := c.CheckGenuineness(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestClusterWallLatency(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 2, InterGroupDelay: 50 * time.Millisecond})
	id := c.Multicast(c.Process(0, 0), "x", 0, 1)
	c.Run()
	wall, ok := c.WallLatency(id)
	if !ok || wall < 100*time.Millisecond || wall > 130*time.Millisecond {
		t.Errorf("wall = %v ok=%v, want ~100ms (two WAN hops)", wall, ok)
	}
}

func TestClusterDisableSkipping(t *testing.T) {
	on := NewCluster(Config{Groups: 2, PerGroup: 2})
	off := NewCluster(Config{Groups: 2, PerGroup: 2, DisableSkipping: true})
	on.Multicast(on.Process(0, 0), "x", 0, 1)
	off.Multicast(off.Process(0, 0), "x", 0, 1)
	on.Run()
	off.Run()
	if onN, offN := on.Stats().ConsensusInstances, off.Stats().ConsensusInstances; onN >= offN {
		t.Errorf("skipping on: %d consensus learns, off: %d — expected fewer with skipping", onN, offN)
	}
}

func TestClusterJitterStillCorrect(t *testing.T) {
	// A1-only workload: mixing A1 and A2 messages is legal but their
	// relative delivery order is unconstrained (independent primitives),
	// so the cross-primitive prefix check would be vacuously violated.
	for seed := int64(0); seed < 5; seed++ {
		c := NewCluster(Config{Groups: 3, PerGroup: 2, Jitter: 30 * time.Millisecond, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			from := c.Process(GroupID(rng.Intn(3)), rng.Intn(2))
			if rng.Intn(2) == 0 {
				c.MulticastAt(time.Duration(rng.Intn(300))*time.Millisecond, from, i, 0, 1, 2)
			} else {
				g1, g2 := GroupID(rng.Intn(3)), GroupID(rng.Intn(3))
				c.MulticastAt(time.Duration(rng.Intn(300))*time.Millisecond, from, i, g1, g2)
			}
		}
		c.Run()
		if v := c.CheckProperties(); len(v) != 0 {
			t.Fatalf("seed %d: violations %v", seed, v)
		}
	}
}

// TestClusterBroadcastJitterStillCorrect is the A2 counterpart.
func TestClusterBroadcastJitterStillCorrect(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := NewCluster(Config{Groups: 3, PerGroup: 2, Jitter: 30 * time.Millisecond, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			from := c.Process(GroupID(rng.Intn(3)), rng.Intn(2))
			c.BroadcastAt(time.Duration(rng.Intn(300))*time.Millisecond, from, i)
		}
		c.Run()
		if v := c.CheckProperties(); len(v) != 0 {
			t.Fatalf("seed %d: violations %v", seed, v)
		}
	}
}

func TestClusterCrashMinority(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 3})
	c.CrashAt(c.Process(0, 2), 10*time.Millisecond)
	c.CrashAt(c.Process(1, 2), 60*time.Millisecond)
	for i := 0; i < 6; i++ {
		c.BroadcastAt(time.Duration(i*40)*time.Millisecond, c.Process(GroupID(i%2), i%2), i)
	}
	c.Run()
	if v := c.CheckProperties(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestClusterLastSend(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 2})
	if _, any := c.LastSend(); any {
		t.Error("fresh cluster reports sends")
	}
	c.Broadcast(c.Process(0, 0), "x")
	end := c.Run()
	last, any := c.LastSend()
	if !any || last > end {
		t.Errorf("last send %v beyond end %v", last, end)
	}
}

func TestClusterDeterministicAcrossRuns(t *testing.T) {
	trace := func() []Delivery {
		c := NewCluster(Config{Groups: 2, PerGroup: 3, Seed: 42, Jitter: 10 * time.Millisecond})
		for i := 0; i < 8; i++ {
			c.BroadcastAt(time.Duration(i*30)*time.Millisecond, c.Process(GroupID(i%2), i%3), i)
		}
		c.Run()
		return c.Deliveries()
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestClusterPrefixOrderQuick is the §2.2 prefix-order property under
// randomized A1 workloads, via testing/quick: for any seed and small cast
// schedule of multicasts (single-group, two-group, or spanning), the
// checker finds no violations. Broadcasts are excluded on purpose: A1 and
// A2 are independent total orders, so cross-primitive delivery orders are
// unconstrained (see the ledger example's audit discussion).
func TestClusterPrefixOrderQuick(t *testing.T) {
	f := func(seed int64, plan []uint8) bool {
		if len(plan) > 12 {
			plan = plan[:12]
		}
		c := NewCluster(Config{Groups: 3, PerGroup: 2, Seed: seed})
		for i, b := range plan {
			from := c.Process(GroupID(int(b)%3), int(b>>2)%2)
			at := time.Duration(int(b)*7+i*11) * time.Millisecond
			switch b % 3 {
			case 0:
				c.MulticastAt(at, from, i, 0, 1, 2)
			case 1:
				c.MulticastAt(at, from, i, GroupID(int(b)%3))
			default:
				c.MulticastAt(at, from, i, GroupID(int(b)%3), GroupID(int(b+1)%3))
			}
		}
		c.Run()
		return len(c.CheckProperties()) == 0
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestClusterString(t *testing.T) {
	c := NewCluster(Config{Groups: 2, PerGroup: 3})
	if s := c.String(); s == "" {
		t.Error("empty String()")
	}
}
