package wanamcast

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/scenario"
	"wanamcast/internal/storage"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// TestChaosSuiteLiveKVLoad is the acceptance bar of the chaos fabric: the
// full scenario suite — symmetric partition+heal, asymmetric partition,
// leader flap ×3, inter-group delay spike, and partition during
// crash-recovery — each runs against a real TCP cluster serving the
// replicated KV service under a 100-client closed-loop load that overlaps
// the fault window. Every scenario must end with zero lost client
// operations, a clean §2.2 CheckProperties verdict over the whole run
// (faults included), and post-heal delivery progress: a fresh broadcast
// and a fresh cross-shard multicast reach every correct process.
func TestChaosSuiteLiveKVLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live chaos suite")
	}
	const (
		groups  = 2
		perG    = 3
		clients = 100
		ops     = 3
		unit    = 300 * time.Millisecond
	)
	topo := types.NewTopology(groups, perG)
	suite := scenario.Suite(topo, scenario.SuiteConfig{Unit: unit, Spike: 200 * time.Millisecond})
	for i, sc := range suite {
		i, sc := i, sc
		t.Run(sc.Name, func(t *testing.T) {
			stores := make([]storage.Store, topo.N())
			for j := range stores {
				stores[j] = storage.NewMem()
			}
			cl := NewLiveCluster(LiveConfig{
				Groups:         groups,
				PerGroup:       perG,
				BasePort:       26100 + i*100,
				WANDelay:       5 * time.Millisecond,
				HeartbeatEvery: 20 * time.Millisecond,
				SuspectAfter:   100 * time.Millisecond,
				MaxBatch:       64,
				Pipeline:       2,
				Check:          true,
				StoreFor:       func(p ProcessID) storage.Store { return stores[p] },
			})
			if err := cl.Start(); err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			stats := &metrics.Service{}
			route := svc.PrefixRoute(groups)
			service, err := svc.ServeCluster(cl, topo, svc.ServiceConfig{
				BasePort: 26150 + i*100,
				NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
					return svc.NewKVMachine(g, route)
				},
				Stats: stats,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer service.Stop()

			funcs := cl.Chaos()
			funcs.RestartFn = service.RestartReplica
			funcs.Logf = t.Logf
			scenario.Apply(funcs, sc)

			// Closed-loop load waves until the fault window has passed:
			// a wave caught by a partition stalls on its cross-shard
			// commands and completes after the heal via client retries.
			begin := time.Now()
			totalOps, totalErrs, wave := 0, 0, 0
			for {
				res := svc.RunKVLoad(topo, service.Addrs(), svc.LoadSpec{
					Clients:     clients,
					Ops:         ops,
					Mix:         workload.DefaultMix(),
					Timeout:     250 * time.Millisecond,
					Seed:        int64(100*i + wave),
					SessionBase: uint64(wave * (clients + 1)),
				}, stats)
				totalOps += res.Ops
				totalErrs += res.Errors
				wave++
				if time.Since(begin) > sc.Horizon()+200*time.Millisecond {
					break
				}
			}
			if totalErrs > 0 {
				t.Errorf("%d of %d client ops failed across the fault window", totalErrs, totalErrs+totalOps)
			}
			if totalOps < clients*ops {
				t.Errorf("load too small to overlap the schedule: %d ops", totalOps)
			}

			// Post-heal delivery progress on both algorithms.
			probeFrom := cl.Process(1, 0)
			bid := cl.Broadcast(probeFrom, fmt.Sprintf("probe-a2-%s", sc.Name))
			if !cl.WaitDelivered(bid, topo.N(), 30*time.Second) {
				t.Errorf("post-heal broadcast reached %d/%d processes", cl.DeliveredCount(bid), topo.N())
			}
			mid := cl.Multicast(probeFrom, fmt.Sprintf("probe-a1-%s", sc.Name), 0, 1)
			if !cl.WaitDelivered(mid, 2*perG, 30*time.Second) {
				t.Errorf("post-heal multicast reached %d/%d processes", cl.DeliveredCount(mid), 2*perG)
			}

			// §2.2 over the whole faulted run.
			if v := cl.WaitPropertiesClean(30 * time.Second); len(v) != 0 {
				t.Fatalf("property violations under %s (%d), first: %s", sc.Name, len(v), v[0])
			}
		})
	}
}

// TestFalselySuspectedLeaderReelected pins the trust-restoration contract
// on the live runtime: the rank-0 leader of a group is falsely suspected
// (no crash, no partition — pure Ω mistake), every peer demotes it, and
// once its heartbeats land again the peers restore trust and provably
// re-elect it — observed through the leader-change subscription, not by
// polling.
func TestFalselySuspectedLeaderReelected(t *testing.T) {
	cl := NewLiveCluster(LiveConfig{
		Groups:         2,
		PerGroup:       3,
		BasePort:       26700,
		WANDelay:       5 * time.Millisecond,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   75 * time.Millisecond,
	})
	leader := cl.Process(0, 0)
	watcher := cl.Process(0, 1)
	changes := make(chan ProcessID, 32)
	cl.SubscribeLeader(watcher, func(_ GroupID, l ProcessID) { changes <- l })
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	time.Sleep(100 * time.Millisecond) // detectors see everyone first

	if got := cl.LeaderOf(watcher); got != leader {
		t.Fatalf("initial leader at watcher = %v, want rank-0 %v", got, leader)
	}
	cl.ForceSuspect(leader)

	wait := func(want ProcessID, what string) {
		deadline := time.After(10 * time.Second)
		for {
			select {
			case l := <-changes:
				if l == want {
					return
				}
			case <-deadline:
				t.Fatalf("never observed %s (leader change to %v)", what, want)
			}
		}
	}
	// Demotion: the false suspicion must move leadership off rank 0.
	wait(watcher, "demotion of the falsely suspected rank-0 leader")
	// Re-election: the suspect's own heartbeats (it never stopped beating)
	// restore trust without any explicit intervention.
	wait(leader, "re-election of rank 0 after trust restoration")

	if got := cl.LeaderOf(watcher); got != leader {
		t.Fatalf("final leader at watcher = %v, want the re-elected %v", got, leader)
	}
	st := cl.Stats()
	if st.Suspicions == 0 || st.TrustRestorations == 0 || st.LeaderChanges < 2 {
		t.Fatalf("fd counters missed the flap: %+v suspicions=%d trust=%d leaders=%d",
			st.PerGroupFD, st.Suspicions, st.TrustRestorations, st.LeaderChanges)
	}
}
