package wanamcast

import (
	"bytes"
	"testing"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// TestCrashRestartKVLoad is the acceptance scenario of the durability
// work, end to end on a real TCP cluster with a real on-disk WAL: a
// replica is crashed in the middle of a client load, brought back with
// Restart, rejoins the cluster by recovering its Paxos/clock/session
// state from disk and catching up missed instances from live peers; a
// subsequent 100-client RunKVLoad completes with zero lost or
// double-applied writes, CheckProperties stays clean (the restarted
// replica counted as correct), and its KV snapshot converges with its
// peers'.
func TestCrashRestartKVLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live cluster test")
	}
	cl := NewLiveCluster(LiveConfig{
		Groups:        2,
		PerGroup:      3,
		BasePort:      21400,
		WANDelay:      5 * time.Millisecond,
		MaxBatch:      64,
		Pipeline:      2,
		Check:         true,
		DataDir:       t.TempDir(),
		SnapshotEvery: 64,
	})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	topo := cl.Topology()
	route := svc.PrefixRoute(topo.NumGroups())
	stats := &metrics.Service{}
	service, err := svc.ServeCluster(cl, topo, svc.ServiceConfig{
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer service.Stop()

	victim := cl.Process(0, 1)

	// Phase 1: a load with the crash and restart in the middle of it.
	// Clients talking to the victim lose their connections (or time out
	// against its dead ordering layer) and retry against live replicas
	// under the same sequence numbers — exactly-once must hold throughout.
	firstDone := make(chan svc.LoadResult, 1)
	go func() {
		firstDone <- svc.RunKVLoad(topo, service.Addrs(), svc.LoadSpec{
			Clients: 40, Ops: 6, Mix: workload.DefaultMix(),
			Timeout: 250 * time.Millisecond, Seed: 7,
		}, stats)
	}()
	time.Sleep(120 * time.Millisecond) // mid-load
	cl.Crash(victim)
	time.Sleep(80 * time.Millisecond) // the cluster orders on without it
	if err := service.RestartReplica(victim); err != nil {
		t.Fatalf("RestartReplica(%v): %v", victim, err)
	}
	first := <-firstDone
	if first.Errors > 0 {
		t.Fatalf("first load lost %d/%d ops across the crash", first.Errors, first.Errors+first.Ops)
	}

	// Phase 2: the acceptance bar — a 100-client load against the healed
	// cluster, fresh sessions.
	second := svc.RunKVLoad(topo, service.Addrs(), svc.LoadSpec{
		Clients: 100, Ops: 3, Mix: workload.DefaultMix(),
		Timeout: 250 * time.Millisecond, Seed: 11, SessionBase: 10_000,
	}, stats)
	if second.Errors > 0 || second.Ops != 100*3 {
		t.Fatalf("post-restart load: %d ok, %d errors (want 300, 0)", second.Ops, second.Errors)
	}

	// §2.2 over the whole run, with the restarted victim held to the
	// obligations of a CORRECT process.
	if v := cl.WaitPropertiesClean(30 * time.Second); len(v) != 0 {
		t.Fatalf("property violations after crash+restart: %v", v)
	}

	// Replica convergence: within each shard every replica's snapshot —
	// including the restarted one's and its exactly-once apply counter —
	// must be byte-identical.
	waitConverged(t, service, topo, 15*time.Second)
}

// waitConverged polls until every group's replicas have byte-identical
// machine snapshots (deliveries finish asynchronously after the checker
// turns clean).
func waitConverged(t *testing.T, service *svc.Service, topo *types.Topology, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		mismatch := convergenceMismatch(t, service, topo)
		if mismatch == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %s", mismatch)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func convergenceMismatch(t *testing.T, service *svc.Service, topo *types.Topology) string {
	t.Helper()
	for g := 0; g < topo.NumGroups(); g++ {
		members := topo.Members(types.GroupID(g))
		ref, err := service.Machine(members[0]).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range members[1:] {
			snap, err := service.Machine(p).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, snap) {
				return "group " + types.GroupID(g).String() + ": " + members[0].String() + " vs " + p.String()
			}
		}
	}
	return ""
}
