package wanamcast

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/check"
	"wanamcast/internal/durable"
	"wanamcast/internal/fd"
	"wanamcast/internal/harness"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/scenario"
	"wanamcast/internal/storage"
	"wanamcast/internal/trace"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// LiveConfig describes a cluster running over real TCP sockets on
// localhost, with an injected one-way WAN delay between groups.
type LiveConfig struct {
	// Groups and PerGroup shape the topology (defaults 2 × 3).
	Groups   int
	PerGroup int
	// BasePort: process p listens on BasePort+p (default 19000).
	BasePort int
	// WANDelay is the injected inter-group one-way delay (default 100 ms);
	// LANDelay applies within groups (default 0: raw loopback).
	WANDelay time.Duration
	LANDelay time.Duration
	// HeartbeatEvery and SuspectAfter tune the heartbeat failure detector
	// (defaults 50 ms and 250 ms): a peer silent for SuspectAfter is
	// suspected — and trusted again the moment its beats resume.
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	// LeaseDuration enables leader leases: each group's rank-0 replica
	// collects time-bounded grants over the heartbeat traffic and, while a
	// majority's grants are live, publishes a lease (ReadLease) that lets
	// it serve linearizable single-shard reads locally — zero WAN round
	// trips. 0 (the default) disables leases. Safety holds as long as
	// clock RATE drift over one lease window stays under MaxClockSkew;
	// clock offsets don't matter (see the tcp lease protocol).
	LeaseDuration time.Duration
	// MaxClockSkew guards the lease windows against clock drift (default
	// 10 ms when leases are enabled).
	MaxClockSkew time.Duration
	// KeepAliveRounds tunes A2's quiescence predictor (default 1, the
	// paper's Algorithm A2).
	KeepAliveRounds int
	// Pipeline sets the consensus-instances-in-flight limit for both A1
	// and A2 (default 1, the paper's sequential algorithms).
	Pipeline int
	// MaxBatch caps how many messages one consensus instance may order,
	// for both A1 and A2 (default 0: unbounded, the paper's rule).
	MaxBatch int
	// ConsensusRetry overrides the re-drive period for undecided consensus
	// proposals (default 40 ms). Raise it on bandwidth-capped clusters:
	// re-driving faster than the links drain only multiplies the queued
	// bytes the retries are waiting behind.
	ConsensusRetry time.Duration
	// Lanes shards the cluster's processes across exactly this many
	// ordering lane goroutines, by group (lane = group mod Lanes): each
	// group's protocol state stays confined to one lane while different
	// groups order in parallel on different cores. Lanes > 0 also routes
	// every durable store's fsync barriers through a single group-commit
	// syncer, so one fsync covers every lane's promises in a window. 0
	// (the default) keeps the historical layout — one goroutine per
	// process, synchronous Commit barriers.
	Lanes int
	// InboxSize bounds each lane's lock-free inbox ring (default 4096).
	// A full ring parks further events in an unbounded overflow list —
	// lane events are never dropped.
	InboxSize int
	// SendQueue bounds each TCP connection's outbound frame queue
	// (default 4096); a full queue drops frames instead of blocking a
	// process loop, and protocol retries recover the drops.
	SendQueue int
	// FlushEvery caps how long the TCP writer may coalesce frames before
	// flushing them in one syscall (default 200 µs).
	FlushEvery time.Duration
	// GobCodec reverts the transport to the legacy encoding/gob stream
	// (the benchmark baseline). The default is the zero-allocation
	// internal/wire codec.
	GobCodec bool
	// Bandwidth caps every link at this many bytes per second (0 =
	// uncapped): each TCP connection's writer paces itself to the rate.
	// Heartbeats are exempt, so a saturated link cannot look like a crash.
	// Commands parse human-readable rates via harness.ParseBandwidth.
	Bandwidth int64
	// Uncoalesced reverts the wire codec to one plain frame per protocol
	// message — no batch envelopes, no compression. The WAN-efficiency
	// baseline the bandwidth benchmarks compare against.
	Uncoalesced bool
	// CompressMin is the batch compression threshold in bytes (0 = default
	// wire.MinCompress, negative = compression off).
	CompressMin int
	// RetainDeliveries bounds the cluster's delivery bookkeeping: only the
	// most recent RetainDeliveries entries of the Deliveries() log are
	// kept, and the per-message counts behind WaitDelivered and
	// DeliveredCount are evicted for all but the most recent
	// max(8×RetainDeliveries, 4096) messages — wait only on recent casts.
	// 0 keeps everything forever (the historical behavior — beware that
	// it grows without bound in long runs).
	RetainDeliveries int
	// Check records every cast and delivery into a §2.2 property checker
	// so CheckProperties can verify uniform integrity, validity, uniform
	// agreement, and uniform prefix order over the live run. The checker
	// retains the full run (unaffected by RetainDeliveries): leave it off
	// for unbounded benchmarks.
	Check bool
	// DataDir enables durability: process p persists its WAL and
	// snapshots under DataDir/p<N>, and Crash(p) can be undone with
	// Restart(p) — the replica recovers its Paxos, clock, and session
	// state from disk and catches up missed instances from live peers.
	// Empty means no persistence (the historical behavior).
	DataDir string
	// StoreFor overrides DataDir with an explicit store per process
	// (tests use storage.NewMem). When it returns nil for a process, that
	// process runs without persistence.
	StoreFor func(p ProcessID) storage.Store
	// NoFsync makes Commit barriers flush without fsyncing: crashes of
	// the whole OS process lose the tail, in-process Crash/Restart does
	// not. The "fsync=off" benchmark knob.
	NoFsync bool
	// SnapshotEvery is how many A-Deliveries a process accumulates before
	// its state is snapshotted and the WAL truncated (default 512;
	// negative disables automatic snapshots).
	SnapshotEvery int
	// SyncArchive bounds the per-process archives (recent deliveries for
	// A1, completed rounds for A2) that serve restarted peers' catch-up.
	// Default 4096: a replica that missed more than this cannot rejoin by
	// log transfer.
	SyncArchive int
	// TraceSpans enables the end-to-end message lifecycle tracer: every
	// process records causal spans (submit, rmcast send/admit, cast,
	// consensus propose/promise/accept/learn, fsync barriers, lane
	// dequeues, A-Deliver, reply) into bounded per-lane rings, and the
	// duration-carrying stages feed per-stage latency histograms
	// (Tracer().Stats()). Off by default; disabled it costs one atomic
	// load per potential span.
	TraceSpans bool
	// SpanBuf bounds each lane's span ring (default 4096 events, rounded
	// up to a power of two). Older spans are overwritten — the tracer is
	// a flight recorder, not a complete log.
	SpanBuf int
	// FlightDump arms the flight recorder (requires TraceSpans): on a
	// §2.2 checker violation, an abandoned state transfer (SyncFailed),
	// or a crash-restart, the retained spans are dumped as JSONL to this
	// path (overwritten per trigger — the last incident wins).
	FlightDump string
}

// LiveCluster runs Algorithms A1 and A2 on every process over TCP.
// Construct with NewLiveCluster, then Start; deliveries arrive on the
// callback passed to OnDeliver (installed before Start). LiveCluster is
// safe for concurrent use.
type LiveCluster struct {
	rt     *tcp.Runtime
	topo   *types.Topology
	cfg    LiveConfig
	col    *metrics.LockedCollector
	tracer *trace.Tracer // nil unless LiveConfig.TraceSpans
	a1     []*amcast.Mcast
	a2     []*abcast.Bcast

	stores   []storage.Store      // per process; nil = no persistence
	gc       *storage.GroupCommit // cross-lane fsync batcher; nil when Lanes == 0
	castSeqs []uint64             // per-process cast allocators (loop-confined)

	mu         sync.Mutex
	onDeliver  func(p ProcessID, id MessageID, payload any)
	hooks      [][]func(id MessageID, payload any) // per-process delivery hooks
	extras     [][]durable.Section                 // registered snapshot sections
	recovering []bool                              // per process: replaying its log
	snapCount  []int                               // deliveries since last snapshot
	deliveries []Delivery
	retain     int
	counts     map[MessageID]int
	countOrder []MessageID // first-delivery order, for bounded eviction
	checker    *check.Checker
	crashed    map[ProcessID]bool
	started    bool
	stopped    bool
	startTime  time.Time
	closeOnce  sync.Once
}

// NewLiveCluster builds (but does not start) a live cluster. Protocol wire
// types are registered with gob; register your own payload types before
// casting non-basic values. It panics if a configured data directory
// cannot be opened: a cluster asked to be durable must not silently run
// volatile.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	if cfg.PerGroup == 0 {
		cfg.PerGroup = 3
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 512
	}
	tcp.RegisterWireTypes()
	topo := types.NewTopology(cfg.Groups, cfg.PerGroup)
	codec := tcp.CodecWire
	if cfg.GobCodec {
		codec = tcp.CodecGob
	}
	col := &metrics.LockedCollector{}
	// The collector's per-cast records (each holding its deliveries) must
	// not grow forever on a long-lived cluster: bound them like the
	// delivery-count map — generously past RetainDeliveries when that is
	// set, and at 64k casts otherwise (a serve-mode cluster with the
	// historical keep-everything delivery log still gets bounded metrics).
	if cfg.RetainDeliveries > 0 {
		col.SetCastWindow(8 * cfg.RetainDeliveries)
	} else {
		col.SetCastWindow(1 << 16)
	}
	var tr *trace.Tracer
	if cfg.TraceSpans {
		// One span ring per ordering lane: with Lanes unset every process
		// runs its own lane, so size the tracer to the process count.
		lanes := cfg.Lanes
		if lanes <= 0 {
			lanes = topo.N()
		}
		tr = trace.New(lanes, cfg.SpanBuf)
		tr.SetEnabled(true)
	}
	rt := tcp.New(tcp.Config{
		Topo:           topo,
		BasePort:       cfg.BasePort,
		WANDelay:       cfg.WANDelay,
		LANDelay:       cfg.LANDelay,
		HeartbeatEvery: cfg.HeartbeatEvery,
		SuspectAfter:   cfg.SuspectAfter,
		LeaseDuration:  cfg.LeaseDuration,
		MaxClockSkew:   cfg.MaxClockSkew,
		Lanes:          cfg.Lanes,
		InboxSize:      cfg.InboxSize,
		SendQueue:      cfg.SendQueue,
		FlushEvery:     cfg.FlushEvery,
		Codec:          codec,
		Bandwidth:      cfg.Bandwidth,
		Uncoalesced:    cfg.Uncoalesced,
		CompressMin:    cfg.CompressMin,
		Recorder:       col,
		Tracer:         tr,
	})
	l := &LiveCluster{
		rt:         rt,
		col:        col,
		tracer:     tr,
		topo:       topo,
		cfg:        cfg,
		a1:         make([]*amcast.Mcast, topo.N()),
		a2:         make([]*abcast.Bcast, topo.N()),
		stores:     make([]storage.Store, topo.N()),
		castSeqs:   make([]uint64, topo.N()),
		retain:     cfg.RetainDeliveries,
		counts:     make(map[MessageID]int),
		hooks:      make([][]func(id MessageID, payload any), topo.N()),
		extras:     make([][]durable.Section, topo.N()),
		recovering: make([]bool, topo.N()),
		snapCount:  make([]int, topo.N()),
		crashed:    make(map[ProcessID]bool),
	}
	if cfg.Check {
		l.checker = check.New(topo)
	}
	for _, id := range topo.AllProcesses() {
		l.stores[id] = l.openStore(id)
	}
	// With lanes sharing goroutines, Commit barriers batch through one
	// group-commit syncer instead of fsyncing inline (see
	// storage.GroupCommit). Only worth starting when some store can
	// actually split its barrier.
	if cfg.Lanes > 0 {
		for _, s := range l.stores {
			if _, ok := s.(storage.SyncStore); ok {
				l.gc = storage.NewGroupCommit()
				l.gc.SetTracer(tr)
				break
			}
		}
	}
	for _, id := range topo.AllProcesses() {
		l.buildEndpoints(id, rt.Proc(id), rt.Detector(id))
	}
	return l
}

// openStore creates process id's durable store per the config: StoreFor
// wins, then DataDir, else none.
func (l *LiveCluster) openStore(id ProcessID) storage.Store {
	if l.cfg.StoreFor != nil {
		return l.cfg.StoreFor(id)
	}
	if l.cfg.DataDir == "" {
		return nil
	}
	d, err := storage.OpenDisk(filepath.Join(l.cfg.DataDir, fmt.Sprintf("p%d", int(id))),
		storage.DiskOptions{NoFsync: l.cfg.NoFsync})
	if err != nil {
		panic(fmt.Sprintf("wanamcast: open data dir for %v: %v", id, err))
	}
	return d
}

// buildEndpoints wires one process's A1 and A2 endpoints onto proc. It
// runs at construction and again, on the process's own event loop, when
// Restart builds a fresh incarnation.
func (l *LiveCluster) buildEndpoints(id ProcessID, proc *node.Proc, det fd.Detector) {
	// One allocator per process: A1 and A2 IDs must not collide. The
	// counter is only touched on the process's own event loop (and is
	// snapshot-restored with a safety gap across restarts).
	nextID := func() MessageID {
		l.castSeqs[id]++
		return MessageID{Origin: id, Seq: l.castSeqs[id]}
	}
	log := storage.NewLog(l.stores[id])
	if l.gc != nil {
		// Barrier continuations (the parked Promise/Accepted replies) run
		// back on the process's own lane, where protocol state is safe to
		// touch.
		log.AttachGroupCommit(l.gc, func(fn func()) { l.rt.Async(id, fn) })
	}
	var onSynced func()
	if l.stores[id] != nil {
		// A completed state transfer is the natural snapshot point: the
		// adopted deliveries live only in the WAL until one is taken.
		onSynced = func() { l.rt.Async(id, func() { l.snapshot(id) }) }
	}
	l.a1[id] = amcast.New(amcast.Config{
		Host:           proc,
		Detector:       det,
		SkipStages:     true,
		NextID:         nextID,
		MaxBatch:       l.cfg.MaxBatch,
		Pipeline:       l.cfg.Pipeline,
		ConsensusRetry: l.cfg.ConsensusRetry,
		Log:            log,
		SyncArchive:    l.cfg.SyncArchive,
		OnSynced:       onSynced,
		OnSyncFailed: func() {
			l.flightRecord(fmt.Sprintf("a1 state transfer abandoned at %v", id))
		},
		OnDeliver: func(m rmcast.Message) { l.recordDelivery(id, m.ID, m.Payload) },
	})
	l.a2[id] = abcast.New(abcast.Config{
		Host:            proc,
		Detector:        det,
		KeepAliveRounds: l.cfg.KeepAliveRounds,
		Pipeline:        l.cfg.Pipeline,
		MaxBatch:        l.cfg.MaxBatch,
		ConsensusRetry:  l.cfg.ConsensusRetry,
		NextID:          nextID,
		Log:             log,
		SyncArchive:     l.cfg.SyncArchive,
		OnSynced:        onSynced,
		OnSyncFailed: func() {
			l.flightRecord(fmt.Sprintf("a2 state transfer abandoned at %v", id))
		},
		OnDeliver: func(mid MessageID, payload any) { l.recordDelivery(id, mid, payload) },
	})
}

func (l *LiveCluster) recordDelivery(p ProcessID, id MessageID, payload any) {
	l.mu.Lock()
	if l.recovering[p] {
		// Log replay re-emits deliveries the cluster already recorded
		// before the crash: the checker, counts, and the delivery log must
		// not see them twice. The per-process hooks DO run — they rebuild
		// the restarted replica's service state from the replayed sequence.
		hooks := l.hooks[p]
		l.mu.Unlock()
		for _, h := range hooks {
			h(id, payload)
		}
		return
	}
	fn := l.onDeliver
	hooks := l.hooks[p]
	snapDue := false
	if l.stores[p] != nil && l.cfg.SnapshotEvery > 0 {
		l.snapCount[p]++
		if l.snapCount[p] >= l.cfg.SnapshotEvery {
			l.snapCount[p] = 0
			snapDue = true
		}
	}
	if l.checker != nil {
		l.checker.RecordDeliver(p, id)
	}
	if _, seen := l.counts[id]; !seen {
		l.countOrder = append(l.countOrder, id)
	}
	l.counts[id]++
	l.deliveries = append(l.deliveries, Delivery{Process: p, ID: id, Payload: payload, At: time.Since(l.startTime)})
	// With RetainDeliveries set, trim amortised: let the log grow to twice
	// the bound, then copy the newest half down. The per-message count map
	// is bounded too (its entries are small but would otherwise accumulate
	// one per message forever): the oldest ids are evicted once it exceeds
	// countBound(), so DeliveredCount stays exact for recent messages only.
	if l.retain > 0 {
		l.deliveries, _ = storage.TrimTail(l.deliveries, l.retain)
		if bound := l.countBound(); len(l.countOrder) > 2*bound {
			evict := l.countOrder[:len(l.countOrder)-bound]
			for _, old := range evict {
				delete(l.counts, old)
			}
			l.countOrder = append(l.countOrder[:0], l.countOrder[len(l.countOrder)-bound:]...)
		}
	}
	l.mu.Unlock()
	if fn != nil {
		fn(p, id, payload)
	}
	// Hooks run on p's event loop (like fn), so each process's hooks see
	// its deliveries sequentially, in A-Delivery order.
	for _, h := range hooks {
		h(id, payload)
	}
	if snapDue {
		// Snapshots must not run mid-delivery-cascade (the engine state is
		// only consistent between loop events): enqueue as its own event.
		l.rt.Async(p, func() { l.snapshot(p) })
	}
}

// countBound is how many per-message delivery counts are retained when
// RetainDeliveries bounds the cluster's memory: comfortably more than the
// delivery log itself so WaitDelivered works for anything still visible in
// Deliveries(), with a floor that keeps short test runs exact.
func (l *LiveCluster) countBound() int {
	const floor = 4096
	if b := 8 * l.retain; b > floor {
		return b
	}
	return floor
}

// OnDeliver installs the delivery callback. Install before Start.
func (l *LiveCluster) OnDeliver(fn func(p ProcessID, id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onDeliver = fn
}

// OnDeliverAt installs an additional per-process delivery hook: fn runs on
// p's event loop for each of p's A-Deliveries, in delivery order, after
// the global OnDeliver callback. The service layer (internal/svc) hangs
// its replica servers here. Install before the first cast.
func (l *LiveCluster) OnDeliverAt(p ProcessID, fn func(id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks[p] = append(l.hooks[p], fn)
}

// Topology exposes the cluster's process/group layout.
func (l *LiveCluster) Topology() *Topology { return l.topo }

// Start opens sockets and launches every process. A cluster can be
// started at most once; Start after Stop fails rather than resurrecting
// closed sockets.
func (l *LiveCluster) Start() error {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: live cluster already started")
	}
	if l.stopped {
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: live cluster already stopped")
	}
	l.started = true
	l.startTime = time.Now()
	l.mu.Unlock()
	return l.rt.Start()
}

// Stop shuts the cluster down. It is idempotent and safe to call
// concurrently (every call blocks until shutdown completes) and before
// Start (the cluster then refuses to start).
func (l *LiveCluster) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	l.rt.Stop()
	// Loops are drained: stop the group-commit syncer (its final sweep
	// must precede the store closes below — a Sync racing Close would
	// hit a closed file), then flush and release the durable stores
	// exactly once.
	l.closeOnce.Do(func() {
		if l.gc != nil {
			l.gc.Close()
		}
		for _, s := range l.stores {
			if s != nil {
				_ = s.Close()
			}
		}
	})
}

// Process returns the ProcessID of the i-th member of group g.
func (l *LiveCluster) Process(g GroupID, i int) ProcessID { return l.topo.Members(g)[i] }

// Broadcast atomically broadcasts payload from process from (Algorithm A2).
func (l *LiveCluster) Broadcast(from ProcessID, payload any) MessageID {
	var id MessageID
	// With checking on, l.mu is held ACROSS the cast and its recording: a
	// remote replica could otherwise order and deliver the message between
	// ABCast handing frames to the async writers and the checker learning
	// of the cast, and recordDelivery would file a permanent false
	// integrity fault. Deadlock-free: ABCast only enqueues (never blocks
	// on another loop), and no A-Delivery can happen synchronously inside
	// it. l.checker is immutable after construction, so the checker-off
	// hot path (all benchmarks) adds no cross-loop lock contention.
	// Broadcasting from a crashed (not yet restarted) process is refused:
	// the zero MessageID is returned and nothing is cast — a dead process
	// cannot originate messages, and recording such a cast would become a
	// permanent false validity fault once the process restarts as correct.
	l.rt.Run(from, func() {
		// The crash flag is loop-confined state of the CURRENT incarnation
		// (Restart swaps in a fresh one), so the checker-off hot path stays
		// lock-free.
		if l.rt.Proc(from).Crashed() {
			return
		}
		if l.checker == nil {
			id = l.a2[from].ABCast(payload)
			return
		}
		l.mu.Lock()
		if l.crashed[from] {
			l.mu.Unlock()
			return
		}
		id = l.a2[from].ABCast(payload)
		l.checker.RecordCast(id, l.topo.AllGroups())
		l.mu.Unlock()
	})
	return id
}

// Multicast atomically multicasts payload from from to groups (Algorithm A1).
func (l *LiveCluster) Multicast(from ProcessID, payload any, groups ...GroupID) MessageID {
	if len(groups) == 0 {
		panic("wanamcast: Multicast needs at least one destination group")
	}
	dest := types.NewGroupSet(groups...)
	var id MessageID
	// See Broadcast for why l.mu spans the cast and its recording when
	// checking is on, why it is skipped entirely when it is off, and why
	// a crashed originator is refused (zero MessageID).
	l.rt.Run(from, func() {
		if l.rt.Proc(from).Crashed() {
			return
		}
		if l.checker == nil {
			id = l.a1[from].AMCast(payload, dest)
			return
		}
		l.mu.Lock()
		if l.crashed[from] {
			l.mu.Unlock()
			return
		}
		id = l.a1[from].AMCast(payload, dest)
		l.checker.RecordCast(id, dest)
		l.mu.Unlock()
	})
	return id
}

// WaitPropertiesClean polls CheckProperties until it reports no
// violations or the timeout expires, returning the final verdict (empty
// means the run satisfies §2.2). This is the idiomatic way to check a
// live run: casts still draining report as transient agreement/validity
// violations that disappear once every addressee has delivered.
func (l *LiveCluster) WaitPropertiesClean(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		v := l.CheckProperties()
		if len(v) == 0 || time.Now().After(deadline) {
			return v
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Crash crash-stops process p.
func (l *LiveCluster) Crash(p ProcessID) {
	l.mu.Lock()
	l.crashed[p] = true
	l.mu.Unlock()
	l.rt.Crash(p)
}

// Stats returns the aggregate protocol measurements of the run so far:
// message counts, latency degrees, batch sizes, and the failure-detector
// counters (suspicions, trust restorations, leader changes per group).
// Counters are cumulative; the per-cast latency aggregates cover a bounded
// window of recent casts (8×RetainDeliveries, or 65536 when the delivery
// log is unbounded), so a long-running cluster's memory stays flat.
func (l *LiveCluster) Stats() Stats { return l.col.Snapshot() }

// FsyncStats reports the cluster's durability-barrier accounting:
// Fsyncs is the total fsyncs issued across every durable store, and the
// group-commit counters (zero when Lanes == 0) show the batching — with
// B barriers amortised over W windows, B/W lane barriers shared each
// fsync.
type FsyncStats struct {
	Fsyncs   uint64 // fsyncs issued across all stores (inline + group commit)
	Barriers uint64 // durability barriers staged through the group-commit syncer
	Windows  uint64 // group-commit windows executed
	Syncs    uint64 // fsyncs issued by the syncer (subset of Fsyncs)
}

// Tracer returns the cluster's message-lifecycle tracer, nil unless
// LiveConfig.TraceSpans: recent spans via Snapshot/WriteJSONL, per-stage
// latency histograms via Stats().
func (l *LiveCluster) Tracer() *trace.Tracer { return l.tracer }

// LaneDepths snapshots each ordering lane's pending-event count.
func (l *LiveCluster) LaneDepths() []int { return l.rt.LaneDepths() }

// TelemetrySource assembles the live introspection plane's data sources
// from this cluster for harness.ServeTelemetry: protocol stats, fsync and
// lane-depth gauges, and — when TraceSpans is on — the stage histograms
// and the recent span dump. svcStats adds the service-layer counters
// (nil omits them); cmd names the serving command on the index page.
func (l *LiveCluster) TelemetrySource(cmd string, svcStats *metrics.Service) harness.Telemetry {
	t := harness.Telemetry{
		Cmd:   cmd,
		Stats: l.Stats,
		Gauges: func() map[string]float64 {
			fs := l.FsyncStats()
			w := l.Stats().Wire
			g := map[string]float64{
				"wanamcast_fsyncs_total":           float64(fs.Fsyncs),
				"wanamcast_gc_barriers_total":      float64(fs.Barriers),
				"wanamcast_gc_windows_total":       float64(fs.Windows),
				"wanamcast_wire_bytes_out_total":   float64(w.BytesOut),
				"wanamcast_wire_bytes_in_total":    float64(w.BytesIn),
				"wanamcast_wire_frames_out_total":  float64(w.FramesOut),
				"wanamcast_wire_writes_out_total":  float64(w.EnvelopesOut),
				"wanamcast_wire_compression_ratio": w.CompressionRatio(),
				"wanamcast_wire_frames_per_write":  w.FramesPerEnvelope(),
			}
			for i, d := range l.LaneDepths() {
				g[fmt.Sprintf("wanamcast_lane_depth{lane=\"%d\"}", i)] = float64(d)
			}
			return g
		},
	}
	if svcStats != nil {
		t.Service = svcStats.Snapshot
	}
	if tr := l.tracer; tr != nil {
		t.Stages = tr.Stats().Snapshot
		t.Spans = tr.WriteJSONL
	}
	return t
}

// flightRecord dumps the retained spans to LiveConfig.FlightDump — the
// crash-dump path for §2.2 violations, abandoned state transfers, and
// restarts. A no-op unless both TraceSpans and FlightDump are set.
func (l *LiveCluster) flightRecord(reason string) {
	if l.tracer == nil || l.cfg.FlightDump == "" {
		return
	}
	if err := l.tracer.DumpFile(l.cfg.FlightDump); err != nil {
		l.rt.Tracef("flight recorder: dump failed: %v", err)
		return
	}
	l.rt.Tracef("flight recorder: spans dumped to %s (%s)", l.cfg.FlightDump, reason)
}

// FsyncStats returns the durability-barrier counters of the run so far.
func (l *LiveCluster) FsyncStats() FsyncStats {
	var st FsyncStats
	for _, s := range l.stores {
		if ss, ok := s.(storage.SyncStore); ok {
			st.Fsyncs += ss.Fsyncs()
		}
	}
	if l.gc != nil {
		g := l.gc.Stats()
		st.Barriers, st.Windows, st.Syncs = g.Barriers, g.Windows, g.Syncs
	}
	return st
}

// Fabric exposes the live network's mutable link table: severing a
// (from, to) pair kills its TCP connection, rejects dials, and parks
// outbound frames (except heartbeats) until the link heals — the paper's
// quasi-reliable channel under arbitrary delay, so partitions are
// admissible runs. Safe to mutate from any goroutine while the cluster
// runs.
func (l *LiveCluster) Fabric() *network.Fabric { return l.rt.Fabric() }

// ReadLease returns process p's leader lease — valid only while p holds a
// majority of live grants from its group (nil when LeaseDuration is 0).
// Pass it to the service layer (svc.ServiceConfig.LeaseFor) to let p serve
// linearizable reads locally, and to chaos assertions that pin the
// no-two-leases-overlap invariant across a partition.
func (l *LiveCluster) ReadLease(p ProcessID) *fd.Lease { return l.rt.Lease(p) }

// ForceSuspect injects a false suspicion of p into every group peer's
// failure detector — a leader flap without any real fault. Trust restores
// itself as soon as p's next heartbeats land (within ~HeartbeatEvery), or
// explicitly via Unsuspect.
func (l *LiveCluster) ForceSuspect(p ProcessID) {
	for _, q := range l.topo.Members(l.topo.GroupOf(p)) {
		if q == p {
			continue
		}
		q := q
		l.rt.Run(q, func() { l.rt.Detector(q).Suspect(p) })
	}
}

// Unsuspect restores every group peer's trust in p immediately.
func (l *LiveCluster) Unsuspect(p ProcessID) {
	for _, q := range l.topo.Members(l.topo.GroupOf(p)) {
		if q == p {
			continue
		}
		q := q
		l.rt.Run(q, func() { l.rt.Detector(q).Unsuspect(p) })
	}
}

// LeaderOf returns process q's current view of its own group's leader.
func (l *LiveCluster) LeaderOf(q ProcessID) ProcessID {
	var leader ProcessID
	l.rt.Run(q, func() { leader = l.rt.Detector(q).Leader(l.topo.GroupOf(q)) })
	return leader
}

// SubscribeLeader registers fn with process q's failure detector: it runs
// on q's event loop at every leader change q observes — demotions and
// re-elections both. Subscribe before Start or while the cluster runs.
func (l *LiveCluster) SubscribeLeader(q ProcessID, fn func(g GroupID, leader ProcessID)) {
	l.mu.Lock()
	started := l.started
	l.mu.Unlock()
	if !started {
		// Loops are not running yet; the detector is safe to touch
		// directly.
		l.rt.Detector(q).Subscribe(fn)
		return
	}
	l.rt.Run(q, func() { l.rt.Detector(q).Subscribe(fn) })
}

// Chaos returns the scenario control surface of the live cluster: pass it
// to scenario.Apply to run a fault script (wall-clock timed) against the
// real TCP fabric. Restart events go through LiveCluster.Restart and thus
// need a durable store; when the cluster hosts a service layer
// (svc.ServeCluster), override RestartFn with Service.RestartReplica so
// the replica's server is reincarnated too. Scenario events are logged
// through the runtime's trace hook.
func (l *LiveCluster) Chaos() scenario.Funcs {
	return scenario.Funcs{
		Topo:        l.topo,
		Net:         l.rt.Fabric(),
		Schedule:    func(d time.Duration, fn func()) { time.AfterFunc(d, fn) },
		CrashFn:     l.Crash,
		RestartFn:   l.Restart,
		SuspectFn:   l.ForceSuspect,
		UnsuspectFn: l.Unsuspect,
		Logf:        l.rt.Tracef,
	}
}

// restartSeqGap is how far a restarted process's cast allocator jumps past
// its recovered value: casts made after the last snapshot are not
// individually logged, so the jump guarantees a fresh incarnation can
// never re-issue a MessageID the old one already used.
const restartSeqGap = 1 << 20

// Restart brings a crashed process back as a fresh incarnation: it
// recovers Paxos acceptor state, the group clock, delivery rounds, and
// every registered snapshot section (e.g. the service layer's state
// machine and session tables) from its durable store, then catches up the
// instances it missed from live group peers via the bounded state-transfer
// protocol. The restarted process resumes as a correct participant: once
// its state transfer completes it again delivers everything addressed to
// its group, and CheckProperties holds it to that.
//
// Restart requires the process to be crashed and durably configured
// (DataDir or StoreFor).
func (l *LiveCluster) Restart(p ProcessID) error {
	l.mu.Lock()
	switch {
	case !l.started || l.stopped:
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: Restart(%v) needs a started, unstopped cluster", p)
	case !l.crashed[p]:
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: Restart(%v): process is not crashed", p)
	case l.stores[p] == nil:
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: Restart(%v): no durable store (set DataDir or StoreFor)", p)
	}
	l.mu.Unlock()

	// Snapshot the pre-restart spans before recovery overwrites the rings:
	// whatever led to the crash is about to age out.
	l.flightRecord(fmt.Sprintf("restart %v", p))

	var recErr error
	err := l.rt.Restart(p, func(proc *node.Proc, det fd.Detector) {
		l.buildEndpoints(p, proc, det)
		l.mu.Lock()
		l.recovering[p] = true
		l.mu.Unlock()
		recErr = l.node(p).Recover()
		// Casts since the last snapshot are not individually logged: jump
		// the allocator so the new incarnation cannot reuse an ID.
		l.castSeqs[p] += restartSeqGap
		l.mu.Lock()
		l.recovering[p] = false
		l.mu.Unlock()
	})
	if err == nil {
		err = recErr
	}
	if err != nil {
		return err
	}
	l.mu.Lock()
	delete(l.crashed, p)
	l.mu.Unlock()
	// Liveness: fetch everything missed while down from the group peers.
	l.rt.Run(p, func() {
		l.a1[p].StartSync()
		l.a2[p].StartSync()
	})
	return nil
}

// node assembles process p's durable orchestration view: A1, A2, the
// cluster's own section (the cast allocator), and every registered extra
// section, in registration order.
func (l *LiveCluster) node(p ProcessID) *durable.Node {
	l.mu.Lock()
	extra := make([]durable.Section, 0, 1+len(l.extras[p]))
	extra = append(extra, l.clusterSection(p))
	extra = append(extra, l.extras[p]...)
	l.mu.Unlock()
	return &durable.Node{Store: l.stores[p], A1: l.a1[p], A2: l.a2[p], Extra: extra}
}

// clusterSection persists cluster-level per-process state: the cast
// allocator.
func (l *LiveCluster) clusterSection(p ProcessID) durable.Section {
	return durable.Section{
		Name: "cluster",
		Save: func() ([]byte, error) {
			return wire.AppendUvarint(nil, l.castSeqs[p]), nil
		},
		Restore: func(data []byte) error {
			seq, _, err := wire.Uvarint(data)
			if err != nil {
				return err
			}
			l.castSeqs[p] = seq
			return nil
		},
	}
}

// snapshot captures process p's full durable state and truncates its WAL.
// It must run as its own event on p's loop (between protocol events).
func (l *LiveCluster) snapshot(p ProcessID) {
	l.mu.Lock()
	skip := l.crashed[p] || l.recovering[p] || l.stores[p] == nil
	l.mu.Unlock()
	if skip {
		return
	}
	if err := l.node(p).Snapshot(); err != nil {
		l.rt.Tracef("snapshot %v failed: %v", p, err)
	}
}

// Snapshot forces an immediate snapshot of process p (tests, graceful
// shutdown). It blocks until the snapshot completes.
func (l *LiveCluster) Snapshot(p ProcessID) {
	l.rt.Run(p, func() { l.snapshot(p) })
}

// RegisterSnapshot adds (or, by name, replaces) a snapshot section for
// process p: save contributes to every future snapshot, restore runs
// during Restart before the ordering layers replay their logs. The
// service layer registers each replica's state machine and session tables
// here.
func (l *LiveCluster) RegisterSnapshot(p ProcessID, name string, save func() ([]byte, error), restore func(data []byte) error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sec := durable.Section{Name: name, Save: save, Restore: restore}
	for i, s := range l.extras[p] {
		if s.Name == name {
			l.extras[p][i] = sec
			return
		}
	}
	l.extras[p] = append(l.extras[p], sec)
}

// SetDeliverAt replaces ALL of process p's delivery hooks with fn (nil
// clears them). Restart flows use it so a dead incarnation's hooks cannot
// linger behind the new one's.
func (l *LiveCluster) SetDeliverAt(p ProcessID, fn func(id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks[p] = nil
	if fn != nil {
		l.hooks[p] = append(l.hooks[p], fn)
	}
}

// DeliverHookCount returns how many delivery hooks process p currently
// has (leak diagnostics).
func (l *LiveCluster) DeliverHookCount(p ProcessID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.hooks[p])
}

// CheckProperties verifies the §2.2 properties — uniform integrity,
// validity, uniform agreement, uniform prefix order — over every cast and
// delivery recorded so far, and returns the violations. It requires
// LiveConfig.Check. Note that a live run has no quiescence signal: casts
// still in flight report as transient agreement/validity violations, so
// call it (or poll it) after the workload has drained.
func (l *LiveCluster) CheckProperties() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.checker == nil {
		panic("wanamcast: CheckProperties requires LiveConfig.Check")
	}
	correct := func(p ProcessID) bool { return !l.crashed[p] }
	correctCaster := func(id MessageID) bool { return !l.crashed[id.Origin] }
	v := l.checker.Check(correct, correctCaster)
	if len(v) > 0 {
		// Arm-once is wrong here: each check with violations refreshes the
		// dump so the recorded spans cover the window closest to the fault.
		l.flightRecord("§2.2 violation: " + v[0])
	}
	return v
}

// Deliveries returns a snapshot of the delivery log: every delivery
// observed so far, or only the most recent LiveConfig.RetainDeliveries of
// them when that bound is set.
func (l *LiveCluster) Deliveries() []Delivery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Delivery(nil), l.deliveries...)
}

// DeliveredCount returns how many processes have delivered id so far. It
// stays exact when RetainDeliveries has trimmed the delivery log, until id
// itself ages out of the (much larger) count window — see
// LiveConfig.RetainDeliveries.
func (l *LiveCluster) DeliveredCount(id MessageID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[id]
}

// WaitDelivered blocks until id has been delivered by n processes or the
// timeout expires; it reports whether the count was reached.
func (l *LiveCluster) WaitDelivered(id MessageID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l.DeliveredCount(id) >= n {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
