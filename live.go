package wanamcast

import (
	"fmt"
	"sync"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/check"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// LiveConfig describes a cluster running over real TCP sockets on
// localhost, with an injected one-way WAN delay between groups.
type LiveConfig struct {
	// Groups and PerGroup shape the topology (defaults 2 × 3).
	Groups   int
	PerGroup int
	// BasePort: process p listens on BasePort+p (default 19000).
	BasePort int
	// WANDelay is the injected inter-group one-way delay (default 100 ms);
	// LANDelay applies within groups (default 0: raw loopback).
	WANDelay time.Duration
	LANDelay time.Duration
	// KeepAliveRounds tunes A2's quiescence predictor (default 1, the
	// paper's Algorithm A2).
	KeepAliveRounds int
	// Pipeline sets the consensus-instances-in-flight limit for both A1
	// and A2 (default 1, the paper's sequential algorithms).
	Pipeline int
	// MaxBatch caps how many messages one consensus instance may order,
	// for both A1 and A2 (default 0: unbounded, the paper's rule).
	MaxBatch int
	// SendQueue bounds each TCP connection's outbound frame queue
	// (default 4096); a full queue drops frames instead of blocking a
	// process loop, and protocol retries recover the drops.
	SendQueue int
	// FlushEvery caps how long the TCP writer may coalesce frames before
	// flushing them in one syscall (default 200 µs).
	FlushEvery time.Duration
	// GobCodec reverts the transport to the legacy encoding/gob stream
	// (the benchmark baseline). The default is the zero-allocation
	// internal/wire codec.
	GobCodec bool
	// RetainDeliveries bounds the cluster's delivery bookkeeping: only the
	// most recent RetainDeliveries entries of the Deliveries() log are
	// kept, and the per-message counts behind WaitDelivered and
	// DeliveredCount are evicted for all but the most recent
	// max(8×RetainDeliveries, 4096) messages — wait only on recent casts.
	// 0 keeps everything forever (the historical behavior — beware that
	// it grows without bound in long runs).
	RetainDeliveries int
	// Check records every cast and delivery into a §2.2 property checker
	// so CheckProperties can verify uniform integrity, validity, uniform
	// agreement, and uniform prefix order over the live run. The checker
	// retains the full run (unaffected by RetainDeliveries): leave it off
	// for unbounded benchmarks.
	Check bool
}

// LiveCluster runs Algorithms A1 and A2 on every process over TCP.
// Construct with NewLiveCluster, then Start; deliveries arrive on the
// callback passed to OnDeliver (installed before Start). LiveCluster is
// safe for concurrent use.
type LiveCluster struct {
	rt   *tcp.Runtime
	topo *types.Topology
	a1   []*amcast.Mcast
	a2   []*abcast.Bcast

	mu         sync.Mutex
	onDeliver  func(p ProcessID, id MessageID, payload any)
	hooks      [][]func(id MessageID, payload any) // per-process delivery hooks
	deliveries []Delivery
	retain     int
	counts     map[MessageID]int
	countOrder []MessageID // first-delivery order, for bounded eviction
	checker    *check.Checker
	crashed    map[ProcessID]bool
	started    bool
	stopped    bool
	startTime  time.Time
}

// NewLiveCluster builds (but does not start) a live cluster. Protocol wire
// types are registered with gob; register your own payload types before
// casting non-basic values.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	if cfg.PerGroup == 0 {
		cfg.PerGroup = 3
	}
	tcp.RegisterWireTypes()
	topo := types.NewTopology(cfg.Groups, cfg.PerGroup)
	codec := tcp.CodecWire
	if cfg.GobCodec {
		codec = tcp.CodecGob
	}
	rt := tcp.New(tcp.Config{
		Topo:       topo,
		BasePort:   cfg.BasePort,
		WANDelay:   cfg.WANDelay,
		LANDelay:   cfg.LANDelay,
		SendQueue:  cfg.SendQueue,
		FlushEvery: cfg.FlushEvery,
		Codec:      codec,
		Recorder:   node.NopRecorder{},
	})
	l := &LiveCluster{
		rt:      rt,
		topo:    topo,
		a1:      make([]*amcast.Mcast, topo.N()),
		a2:      make([]*abcast.Bcast, topo.N()),
		retain:  cfg.RetainDeliveries,
		counts:  make(map[MessageID]int),
		hooks:   make([][]func(id MessageID, payload any), topo.N()),
		crashed: make(map[ProcessID]bool),
	}
	if cfg.Check {
		l.checker = check.New(topo)
	}
	for _, id := range topo.AllProcesses() {
		id := id
		// One allocator per process: A1 and A2 IDs must not collide. The
		// counter is only touched on the process's own event loop.
		var castSeq uint64
		nextID := func() MessageID {
			castSeq++
			return MessageID{Origin: id, Seq: castSeq}
		}
		l.a1[id] = amcast.New(amcast.Config{
			Host:       rt.Proc(id),
			Detector:   rt.Detector(id),
			SkipStages: true,
			NextID:     nextID,
			MaxBatch:   cfg.MaxBatch,
			Pipeline:   cfg.Pipeline,
			OnDeliver:  func(m rmcast.Message) { l.recordDelivery(id, m.ID, m.Payload) },
		})
		l.a2[id] = abcast.New(abcast.Config{
			Host:            rt.Proc(id),
			Detector:        rt.Detector(id),
			KeepAliveRounds: cfg.KeepAliveRounds,
			Pipeline:        cfg.Pipeline,
			MaxBatch:        cfg.MaxBatch,
			NextID:          nextID,
			OnDeliver:       func(mid MessageID, payload any) { l.recordDelivery(id, mid, payload) },
		})
	}
	return l
}

func (l *LiveCluster) recordDelivery(p ProcessID, id MessageID, payload any) {
	l.mu.Lock()
	fn := l.onDeliver
	hooks := l.hooks[p]
	if l.checker != nil {
		l.checker.RecordDeliver(p, id)
	}
	if _, seen := l.counts[id]; !seen {
		l.countOrder = append(l.countOrder, id)
	}
	l.counts[id]++
	l.deliveries = append(l.deliveries, Delivery{Process: p, ID: id, Payload: payload, At: time.Since(l.startTime)})
	// With RetainDeliveries set, trim amortised: let the log grow to twice
	// the bound, then copy the newest half down. The per-message count map
	// is bounded too (its entries are small but would otherwise accumulate
	// one per message forever): the oldest ids are evicted once it exceeds
	// countBound(), so DeliveredCount stays exact for recent messages only.
	if l.retain > 0 {
		if len(l.deliveries) >= 2*l.retain {
			n := copy(l.deliveries, l.deliveries[len(l.deliveries)-l.retain:])
			for i := n; i < len(l.deliveries); i++ {
				l.deliveries[i] = Delivery{} // release payload references
			}
			l.deliveries = l.deliveries[:n]
		}
		if bound := l.countBound(); len(l.countOrder) > 2*bound {
			evict := l.countOrder[:len(l.countOrder)-bound]
			for _, old := range evict {
				delete(l.counts, old)
			}
			l.countOrder = append(l.countOrder[:0], l.countOrder[len(l.countOrder)-bound:]...)
		}
	}
	l.mu.Unlock()
	if fn != nil {
		fn(p, id, payload)
	}
	// Hooks run on p's event loop (like fn), so each process's hooks see
	// its deliveries sequentially, in A-Delivery order.
	for _, h := range hooks {
		h(id, payload)
	}
}

// countBound is how many per-message delivery counts are retained when
// RetainDeliveries bounds the cluster's memory: comfortably more than the
// delivery log itself so WaitDelivered works for anything still visible in
// Deliveries(), with a floor that keeps short test runs exact.
func (l *LiveCluster) countBound() int {
	const floor = 4096
	if b := 8 * l.retain; b > floor {
		return b
	}
	return floor
}

// OnDeliver installs the delivery callback. Install before Start.
func (l *LiveCluster) OnDeliver(fn func(p ProcessID, id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onDeliver = fn
}

// OnDeliverAt installs an additional per-process delivery hook: fn runs on
// p's event loop for each of p's A-Deliveries, in delivery order, after
// the global OnDeliver callback. The service layer (internal/svc) hangs
// its replica servers here. Install before the first cast.
func (l *LiveCluster) OnDeliverAt(p ProcessID, fn func(id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks[p] = append(l.hooks[p], fn)
}

// Topology exposes the cluster's process/group layout.
func (l *LiveCluster) Topology() *Topology { return l.topo }

// Start opens sockets and launches every process. A cluster can be
// started at most once; Start after Stop fails rather than resurrecting
// closed sockets.
func (l *LiveCluster) Start() error {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: live cluster already started")
	}
	if l.stopped {
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: live cluster already stopped")
	}
	l.started = true
	l.startTime = time.Now()
	l.mu.Unlock()
	return l.rt.Start()
}

// Stop shuts the cluster down. It is idempotent and safe to call
// concurrently (every call blocks until shutdown completes) and before
// Start (the cluster then refuses to start).
func (l *LiveCluster) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	l.rt.Stop()
}

// Process returns the ProcessID of the i-th member of group g.
func (l *LiveCluster) Process(g GroupID, i int) ProcessID { return l.topo.Members(g)[i] }

// Broadcast atomically broadcasts payload from process from (Algorithm A2).
func (l *LiveCluster) Broadcast(from ProcessID, payload any) MessageID {
	var id MessageID
	// With checking on, l.mu is held ACROSS the cast and its recording: a
	// remote replica could otherwise order and deliver the message between
	// ABCast handing frames to the async writers and the checker learning
	// of the cast, and recordDelivery would file a permanent false
	// integrity fault. Deadlock-free: ABCast only enqueues (never blocks
	// on another loop), and no A-Delivery can happen synchronously inside
	// it. l.checker is immutable after construction, so the checker-off
	// hot path (all benchmarks) adds no cross-loop lock contention.
	l.rt.Run(from, func() {
		if l.checker == nil {
			id = l.a2[from].ABCast(payload)
			return
		}
		l.mu.Lock()
		id = l.a2[from].ABCast(payload)
		l.checker.RecordCast(id, l.topo.AllGroups())
		l.mu.Unlock()
	})
	return id
}

// Multicast atomically multicasts payload from from to groups (Algorithm A1).
func (l *LiveCluster) Multicast(from ProcessID, payload any, groups ...GroupID) MessageID {
	if len(groups) == 0 {
		panic("wanamcast: Multicast needs at least one destination group")
	}
	dest := types.NewGroupSet(groups...)
	var id MessageID
	// See Broadcast for why l.mu spans the cast and its recording when
	// checking is on, and why it is skipped entirely when it is off.
	l.rt.Run(from, func() {
		if l.checker == nil {
			id = l.a1[from].AMCast(payload, dest)
			return
		}
		l.mu.Lock()
		id = l.a1[from].AMCast(payload, dest)
		l.checker.RecordCast(id, dest)
		l.mu.Unlock()
	})
	return id
}

// WaitPropertiesClean polls CheckProperties until it reports no
// violations or the timeout expires, returning the final verdict (empty
// means the run satisfies §2.2). This is the idiomatic way to check a
// live run: casts still draining report as transient agreement/validity
// violations that disappear once every addressee has delivered.
func (l *LiveCluster) WaitPropertiesClean(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		v := l.CheckProperties()
		if len(v) == 0 || time.Now().After(deadline) {
			return v
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Crash crash-stops process p.
func (l *LiveCluster) Crash(p ProcessID) {
	l.mu.Lock()
	l.crashed[p] = true
	l.mu.Unlock()
	l.rt.Crash(p)
}

// CheckProperties verifies the §2.2 properties — uniform integrity,
// validity, uniform agreement, uniform prefix order — over every cast and
// delivery recorded so far, and returns the violations. It requires
// LiveConfig.Check. Note that a live run has no quiescence signal: casts
// still in flight report as transient agreement/validity violations, so
// call it (or poll it) after the workload has drained.
func (l *LiveCluster) CheckProperties() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.checker == nil {
		panic("wanamcast: CheckProperties requires LiveConfig.Check")
	}
	correct := func(p ProcessID) bool { return !l.crashed[p] }
	correctCaster := func(id MessageID) bool { return !l.crashed[id.Origin] }
	return l.checker.Check(correct, correctCaster)
}

// Deliveries returns a snapshot of the delivery log: every delivery
// observed so far, or only the most recent LiveConfig.RetainDeliveries of
// them when that bound is set.
func (l *LiveCluster) Deliveries() []Delivery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Delivery(nil), l.deliveries...)
}

// DeliveredCount returns how many processes have delivered id so far. It
// stays exact when RetainDeliveries has trimmed the delivery log, until id
// itself ages out of the (much larger) count window — see
// LiveConfig.RetainDeliveries.
func (l *LiveCluster) DeliveredCount(id MessageID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[id]
}

// WaitDelivered blocks until id has been delivered by n processes or the
// timeout expires; it reports whether the count was reached.
func (l *LiveCluster) WaitDelivered(id MessageID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l.DeliveredCount(id) >= n {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
