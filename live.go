package wanamcast

import (
	"fmt"
	"sync"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// LiveConfig describes a cluster running over real TCP sockets on
// localhost, with an injected one-way WAN delay between groups.
type LiveConfig struct {
	// Groups and PerGroup shape the topology (defaults 2 × 3).
	Groups   int
	PerGroup int
	// BasePort: process p listens on BasePort+p (default 19000).
	BasePort int
	// WANDelay is the injected inter-group one-way delay (default 100 ms);
	// LANDelay applies within groups (default 0: raw loopback).
	WANDelay time.Duration
	LANDelay time.Duration
	// KeepAliveRounds tunes A2's quiescence predictor (default 1, the
	// paper's Algorithm A2).
	KeepAliveRounds int
	// Pipeline sets the consensus-instances-in-flight limit for both A1
	// and A2 (default 1, the paper's sequential algorithms).
	Pipeline int
	// MaxBatch caps how many messages one consensus instance may order,
	// for both A1 and A2 (default 0: unbounded, the paper's rule).
	MaxBatch int
	// SendQueue bounds each TCP connection's outbound frame queue
	// (default 4096); a full queue drops frames instead of blocking a
	// process loop, and protocol retries recover the drops.
	SendQueue int
	// FlushEvery caps how long the TCP writer may coalesce frames before
	// flushing them in one syscall (default 200 µs).
	FlushEvery time.Duration
	// GobCodec reverts the transport to the legacy encoding/gob stream
	// (the benchmark baseline). The default is the zero-allocation
	// internal/wire codec.
	GobCodec bool
	// RetainDeliveries bounds the cluster's delivery bookkeeping: only the
	// most recent RetainDeliveries entries of the Deliveries() log are
	// kept, and the per-message counts behind WaitDelivered and
	// DeliveredCount are evicted for all but the most recent
	// max(8×RetainDeliveries, 4096) messages — wait only on recent casts.
	// 0 keeps everything forever (the historical behavior — beware that
	// it grows without bound in long runs).
	RetainDeliveries int
}

// LiveCluster runs Algorithms A1 and A2 on every process over TCP.
// Construct with NewLiveCluster, then Start; deliveries arrive on the
// callback passed to OnDeliver (installed before Start). LiveCluster is
// safe for concurrent use.
type LiveCluster struct {
	rt   *tcp.Runtime
	topo *types.Topology
	a1   []*amcast.Mcast
	a2   []*abcast.Bcast

	mu         sync.Mutex
	onDeliver  func(p ProcessID, id MessageID, payload any)
	deliveries []Delivery
	retain     int
	counts     map[MessageID]int
	countOrder []MessageID // first-delivery order, for bounded eviction
	started    bool
	startTime  time.Time
}

// NewLiveCluster builds (but does not start) a live cluster. Protocol wire
// types are registered with gob; register your own payload types before
// casting non-basic values.
func NewLiveCluster(cfg LiveConfig) *LiveCluster {
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	if cfg.PerGroup == 0 {
		cfg.PerGroup = 3
	}
	tcp.RegisterWireTypes()
	topo := types.NewTopology(cfg.Groups, cfg.PerGroup)
	codec := tcp.CodecWire
	if cfg.GobCodec {
		codec = tcp.CodecGob
	}
	rt := tcp.New(tcp.Config{
		Topo:       topo,
		BasePort:   cfg.BasePort,
		WANDelay:   cfg.WANDelay,
		LANDelay:   cfg.LANDelay,
		SendQueue:  cfg.SendQueue,
		FlushEvery: cfg.FlushEvery,
		Codec:      codec,
		Recorder:   node.NopRecorder{},
	})
	l := &LiveCluster{
		rt:     rt,
		topo:   topo,
		a1:     make([]*amcast.Mcast, topo.N()),
		a2:     make([]*abcast.Bcast, topo.N()),
		retain: cfg.RetainDeliveries,
		counts: make(map[MessageID]int),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		// One allocator per process: A1 and A2 IDs must not collide. The
		// counter is only touched on the process's own event loop.
		var castSeq uint64
		nextID := func() MessageID {
			castSeq++
			return MessageID{Origin: id, Seq: castSeq}
		}
		l.a1[id] = amcast.New(amcast.Config{
			Host:       rt.Proc(id),
			Detector:   rt.Detector(id),
			SkipStages: true,
			NextID:     nextID,
			MaxBatch:   cfg.MaxBatch,
			Pipeline:   cfg.Pipeline,
			OnDeliver:  func(m rmcast.Message) { l.recordDelivery(id, m.ID, m.Payload) },
		})
		l.a2[id] = abcast.New(abcast.Config{
			Host:            rt.Proc(id),
			Detector:        rt.Detector(id),
			KeepAliveRounds: cfg.KeepAliveRounds,
			Pipeline:        cfg.Pipeline,
			MaxBatch:        cfg.MaxBatch,
			NextID:          nextID,
			OnDeliver:       func(mid MessageID, payload any) { l.recordDelivery(id, mid, payload) },
		})
	}
	return l
}

func (l *LiveCluster) recordDelivery(p ProcessID, id MessageID, payload any) {
	l.mu.Lock()
	fn := l.onDeliver
	if _, seen := l.counts[id]; !seen {
		l.countOrder = append(l.countOrder, id)
	}
	l.counts[id]++
	l.deliveries = append(l.deliveries, Delivery{Process: p, ID: id, Payload: payload, At: time.Since(l.startTime)})
	// With RetainDeliveries set, trim amortised: let the log grow to twice
	// the bound, then copy the newest half down. The per-message count map
	// is bounded too (its entries are small but would otherwise accumulate
	// one per message forever): the oldest ids are evicted once it exceeds
	// countBound(), so DeliveredCount stays exact for recent messages only.
	if l.retain > 0 {
		if len(l.deliveries) >= 2*l.retain {
			n := copy(l.deliveries, l.deliveries[len(l.deliveries)-l.retain:])
			for i := n; i < len(l.deliveries); i++ {
				l.deliveries[i] = Delivery{} // release payload references
			}
			l.deliveries = l.deliveries[:n]
		}
		if bound := l.countBound(); len(l.countOrder) > 2*bound {
			evict := l.countOrder[:len(l.countOrder)-bound]
			for _, old := range evict {
				delete(l.counts, old)
			}
			l.countOrder = append(l.countOrder[:0], l.countOrder[len(l.countOrder)-bound:]...)
		}
	}
	l.mu.Unlock()
	if fn != nil {
		fn(p, id, payload)
	}
}

// countBound is how many per-message delivery counts are retained when
// RetainDeliveries bounds the cluster's memory: comfortably more than the
// delivery log itself so WaitDelivered works for anything still visible in
// Deliveries(), with a floor that keeps short test runs exact.
func (l *LiveCluster) countBound() int {
	const floor = 4096
	if b := 8 * l.retain; b > floor {
		return b
	}
	return floor
}

// OnDeliver installs the delivery callback. Install before Start.
func (l *LiveCluster) OnDeliver(fn func(p ProcessID, id MessageID, payload any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onDeliver = fn
}

// Start opens sockets and launches every process.
func (l *LiveCluster) Start() error {
	l.mu.Lock()
	if l.started {
		l.mu.Unlock()
		return fmt.Errorf("wanamcast: live cluster already started")
	}
	l.started = true
	l.startTime = time.Now()
	l.mu.Unlock()
	return l.rt.Start()
}

// Stop shuts the cluster down.
func (l *LiveCluster) Stop() { l.rt.Stop() }

// Process returns the ProcessID of the i-th member of group g.
func (l *LiveCluster) Process(g GroupID, i int) ProcessID { return l.topo.Members(g)[i] }

// Broadcast atomically broadcasts payload from process from (Algorithm A2).
func (l *LiveCluster) Broadcast(from ProcessID, payload any) MessageID {
	var id MessageID
	l.rt.Run(from, func() { id = l.a2[from].ABCast(payload) })
	return id
}

// Multicast atomically multicasts payload from from to groups (Algorithm A1).
func (l *LiveCluster) Multicast(from ProcessID, payload any, groups ...GroupID) MessageID {
	if len(groups) == 0 {
		panic("wanamcast: Multicast needs at least one destination group")
	}
	var id MessageID
	l.rt.Run(from, func() { id = l.a1[from].AMCast(payload, types.NewGroupSet(groups...)) })
	return id
}

// Crash crash-stops process p.
func (l *LiveCluster) Crash(p ProcessID) { l.rt.Crash(p) }

// Deliveries returns a snapshot of the delivery log: every delivery
// observed so far, or only the most recent LiveConfig.RetainDeliveries of
// them when that bound is set.
func (l *LiveCluster) Deliveries() []Delivery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Delivery(nil), l.deliveries...)
}

// DeliveredCount returns how many processes have delivered id so far. It
// stays exact when RetainDeliveries has trimmed the delivery log, until id
// itself ages out of the (much larger) count window — see
// LiveConfig.RetainDeliveries.
func (l *LiveCluster) DeliveredCount(id MessageID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[id]
}

// WaitDelivered blocks until id has been delivered by n processes or the
// timeout expires; it reports whether the count was reached.
func (l *LiveCluster) WaitDelivered(id MessageID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l.DeliveredCount(id) >= n {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
