// kvstore is the paper's §1 motivation made concrete: a partially
// replicated key-value store spanning three sites. Each group owns a key
// shard and fully replicates it among its members. Commands are ordered
// with genuine atomic multicast (Algorithm A1):
//
//   - single-shard writes are multicast to one group (latency degree 0–1);
//   - cross-shard transactions are multicast to exactly the shards they
//     touch (latency degree 2 — optimal, by Proposition 3.1);
//   - uninvolved shards never see a message (genuineness), which is the
//     whole point versus broadcast-everything.
//
// Every replica applies commands in A-Delivery order, so replicas of a
// shard stay byte-identical, and cross-shard transactions are serialized
// consistently at every shard they touch (uniform prefix order).
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wanamcast"
)

// command is the replicated state machine's operation.
type command struct {
	// Sets maps key → value; a transaction may touch several shards.
	Sets map[string]string
}

// shardOf routes keys to groups: the first byte decides.
func shardOf(key string) wanamcast.GroupID {
	return wanamcast.GroupID(int(key[0]) % 3)
}

// store is one replica's state: only the keys of its own shard.
type store struct {
	group   wanamcast.GroupID
	data    map[string]string
	applied []string
}

func (s *store) apply(id wanamcast.MessageID, cmd command) {
	keys := make([]string, 0, len(cmd.Sets))
	for k := range cmd.Sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var touched []string
	for _, k := range keys {
		if shardOf(k) == s.group {
			s.data[k] = cmd.Sets[k]
			touched = append(touched, k+"="+cmd.Sets[k])
		}
	}
	s.applied = append(s.applied, fmt.Sprintf("%v{%s}", id, strings.Join(touched, ",")))
}

func main() {
	c := wanamcast.NewCluster(wanamcast.Config{
		Groups:          3,
		PerGroup:        3,
		InterGroupDelay: 100 * time.Millisecond,
		LogSends:        true,
	})

	stores := make(map[wanamcast.ProcessID]*store)
	for g := 0; g < 3; g++ {
		for i := 0; i < 3; i++ {
			p := c.Process(wanamcast.GroupID(g), i)
			stores[p] = &store{group: wanamcast.GroupID(g), data: make(map[string]string)}
		}
	}
	c.OnDeliver(func(p wanamcast.ProcessID, id wanamcast.MessageID, payload any) {
		stores[p].apply(id, payload.(command))
	})

	// groupsOf computes the exact destination set of a command — the
	// genuineness contract: only touched shards participate.
	groupsOf := func(cmd command) []wanamcast.GroupID {
		seen := map[wanamcast.GroupID]bool{}
		var gs []wanamcast.GroupID
		for k := range cmd.Sets {
			if g := shardOf(k); !seen[g] {
				seen[g] = true
				gs = append(gs, g)
			}
		}
		return gs
	}
	put := func(from wanamcast.ProcessID, sets map[string]string) wanamcast.MessageID {
		cmd := command{Sets: sets}
		return c.Multicast(from, cmd, groupsOf(cmd)...)
	}

	// Single-shard writes from their local sites, plus two cross-shard
	// transactions racing from different sites. Shards: 'c' → group 0,
	// 'a' → group 1; group 2 owns neither key and must stay silent.
	w1 := put(c.Process(0, 0), map[string]string{"cart:alice": "book"})
	w2 := put(c.Process(1, 0), map[string]string{"acct:alice": "premium"})
	tx1 := put(c.Process(0, 1), map[string]string{"cart:alice": "book,lamp", "acct:alice": "gold"})
	tx2 := put(c.Process(1, 1), map[string]string{"cart:alice": "empty", "acct:alice": "basic"})
	c.Run()

	fmt.Println("== per-replica applied command logs ==")
	for g := 0; g < 3; g++ {
		for i := 0; i < 3; i++ {
			p := c.Process(wanamcast.GroupID(g), i)
			fmt.Printf("  g%d %v: %s\n", g, p, strings.Join(stores[p].applied, " -> "))
		}
	}

	// Replicas of a shard must be identical.
	for g := 0; g < 3; g++ {
		ref := stores[c.Process(wanamcast.GroupID(g), 0)]
		for i := 1; i < 3; i++ {
			rep := stores[c.Process(wanamcast.GroupID(g), i)]
			if fmt.Sprint(rep.data) != fmt.Sprint(ref.data) || fmt.Sprint(rep.applied) != fmt.Sprint(ref.applied) {
				fmt.Printf("REPLICA DIVERGENCE in group %d!\n", g)
				return
			}
		}
	}
	fmt.Println("\nall shard replicas identical; cross-shard transactions serialized consistently")

	for name, id := range map[string]wanamcast.MessageID{"w1": w1, "w2": w2, "tx1": tx1, "tx2": tx2} {
		deg, _ := c.LatencyDegree(id)
		wall, _ := c.WallLatency(id)
		fmt.Printf("  %-4s latency degree %d, wall %v\n", name, deg, wall)
	}

	if v := c.CheckProperties(); len(v) != 0 {
		fmt.Println("PROPERTY VIOLATIONS:", v)
		return
	}
	if v := c.CheckGenuineness(); len(v) != 0 {
		fmt.Println("GENUINENESS VIOLATIONS:", v)
		return
	}
	fmt.Println("\ngenuineness verified: shard 2's processes sent nothing for single/two-shard commands they don't own")
}
