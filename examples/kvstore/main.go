// kvstore is the paper's §1 motivation made concrete, now served to a real
// client: a partially replicated key-value store spanning three sites over
// live TCP, fronted by the exactly-once service layer (internal/svc). Each
// group owns a key shard and fully replicates it among its members.
// Commands are ordered with genuine atomic multicast (Algorithm A1):
//
//   - single-shard writes are multicast to one group;
//   - cross-shard transactions are multicast to exactly the shards they
//     touch (latency degree 2 — optimal, by Proposition 3.1);
//   - uninvolved shards never see a message (genuineness), which is the
//     whole point versus broadcast-everything.
//
// The client opens a session, numbers its commands, and retries under the
// same sequence number; replicas dedup via the replicated session table,
// so every command mutates each destination shard exactly once. Every
// replica applies commands in A-Delivery order, so replicas of a shard
// stay byte-identical and cross-shard transactions are serialized
// consistently at every shard they touch (uniform prefix order).
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"fmt"
	"time"

	"wanamcast"
	"wanamcast/internal/metrics"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
)

// shardOf routes keys to groups: the first byte decides ('c'art → g0,
// 'a'cct → g1; group 2 owns neither key and must stay silent).
func shardOf(key string) types.GroupID {
	return types.GroupID(int(key[0]) % 3)
}

func main() {
	cluster := wanamcast.NewLiveCluster(wanamcast.LiveConfig{
		Groups:   3,
		PerGroup: 3,
		BasePort: 23300,
		WANDelay: 50 * time.Millisecond,
		Check:    true,
	})
	if err := cluster.Start(); err != nil {
		fmt.Println("start:", err)
		return
	}
	defer cluster.Stop()

	stats := &metrics.Service{}
	service, err := svc.ServeCluster(cluster, cluster.Topology(), svc.ServiceConfig{
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, shardOf)
		},
		Stats: stats,
	})
	if err != nil {
		fmt.Println("serve:", err)
		return
	}
	defer service.Stop()

	client := svc.NewClient(svc.ClientConfig{
		Session: 42,
		Addrs:   service.Addrs(),
		Timeout: 2 * time.Second,
		Stats:   stats,
	})
	defer client.Close()
	kv := &svc.KV{Client: client, Route: shardOf}

	// Single-shard writes, then two cross-shard transactions from the same
	// session — one command each, multicast to exactly the shards touched.
	ops := []struct {
		name string
		sets map[string]string
	}{
		{"w1", map[string]string{"cart:alice": "book"}},
		{"w2", map[string]string{"acct:alice": "premium"}},
		{"tx1", map[string]string{"cart:alice": "book,lamp", "acct:alice": "gold"}},
		{"tx2", map[string]string{"cart:alice": "empty", "acct:alice": "basic"}},
	}
	for _, op := range ops {
		start := time.Now()
		if _, err := kv.Put(op.sets); err != nil {
			fmt.Printf("%s failed: %v\n", op.name, err)
			return
		}
		dest := kv.DestOf(keysOf(op.sets)...)
		fmt.Printf("  %-4s shards %v  committed in %v\n", op.name, dest, time.Since(start).Round(time.Millisecond))
	}

	// Linearizable reads ride the same ordered path.
	for _, key := range []string{"cart:alice", "acct:alice"} {
		v, ok, err := kv.Get(key)
		fmt.Printf("  get %-11s -> %q (found=%v, err=%v)\n", key, v, ok, err)
	}

	// The client's reply proves only the coordinator delivered; give the
	// remaining replicas a moment to drain before the uniform checks.
	violations := cluster.WaitPropertiesClean(10 * time.Second)
	if len(violations) != 0 {
		fmt.Println("PROPERTY VIOLATIONS:", violations)
		return
	}

	// Replicas of a shard must be byte-identical (safe to compare now:
	// the §2.2 check passing means every addressee delivered everything).
	topo := cluster.Topology()
	for g := 0; g < 3; g++ {
		ref, _ := service.Machine(topo.Members(types.GroupID(g))[0]).Snapshot()
		for _, p := range topo.Members(types.GroupID(g))[1:] {
			snap, _ := service.Machine(p).Snapshot()
			if !bytes.Equal(ref, snap) {
				fmt.Printf("REPLICA DIVERGENCE in group %d!\n", g)
				return
			}
		}
	}
	fmt.Println("\nall shard replicas identical; cross-shard transactions serialized consistently")

	// Group 2 owns neither key: its replicas must have applied nothing.
	for _, p := range topo.Members(2) {
		if n := service.Machine(p).(*svc.KVMachine).Applied(); n != 0 {
			fmt.Printf("genuineness broken: uninvolved replica %v applied %d commands\n", p, n)
			return
		}
	}
	fmt.Println("genuineness: shard 2's replicas applied nothing — uninvolved shards stay silent")

	fmt.Println("properties: uniform integrity, validity, uniform agreement, uniform prefix order: OK")
	fmt.Printf("\nservice stats: %v\n", stats.Snapshot())
}

func keysOf(sets map[string]string) []string {
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	return keys
}
