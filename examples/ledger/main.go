// ledger is a wide-area bank: accounts are partitioned across three
// continental sites (groups), transfers between accounts are genuine
// atomic multicasts (Algorithm A1) addressed to exactly the two sites
// involved, and a global audit snapshot marker is an A1 multicast to all
// three sites. Mid-run, one replica of the European site crashes; uniform
// agreement keeps every surviving replica's ledger consistent.
//
// The audit must travel through the same primitive as the transfers: A1's
// uniform prefix order then places the marker consistently against every
// transfer at every process that sees both, so each site's snapshot at the
// marker forms a consistent cut — the three local snapshots sum exactly to
// the initial total, with no transfer caught halfway. (A1 and A2 are
// independent total orders; a marker broadcast through A2 would not be
// ordered against A1 transfers. A2 is used here for what it is good at:
// an ordering-independent, latency-degree-1 announcement to everyone.)
//
//	go run ./examples/ledger
package main

import (
	"fmt"
	"time"

	"wanamcast"
)

const initialBalance = 1000

// transfer moves Amount from From to To (accounts live on possibly
// different sites).
type transfer struct {
	From, To string
	Amount   int
}

// audit asks every site to snapshot its balances when it delivers the
// marker.
type audit struct{ Name string }

var sites = []string{"america", "europe", "asia"}

// siteOf maps an account to its home site.
func siteOf(account string) wanamcast.GroupID {
	switch account[0] {
	case 'a': // alice, ann
		return 0
	case 'e': // erik, eva
		return 1
	default: // zoe, zhang, ...
		return 2
	}
}

// replica is one process's ledger state for its site's accounts.
type replica struct {
	site      wanamcast.GroupID
	balances  map[string]int
	snapshots map[string]map[string]int
}

func newReplica(site wanamcast.GroupID) *replica {
	r := &replica{site: site, balances: make(map[string]int), snapshots: make(map[string]map[string]int)}
	for _, acct := range accountsOf(site) {
		r.balances[acct] = initialBalance
	}
	return r
}

func accountsOf(site wanamcast.GroupID) []string {
	switch site {
	case 0:
		return []string{"alice", "ann"}
	case 1:
		return []string{"erik", "eva"}
	default:
		return []string{"zoe", "zhang"}
	}
}

func (r *replica) apply(payload any) {
	switch op := payload.(type) {
	case transfer:
		if siteOf(op.From) == r.site {
			r.balances[op.From] -= op.Amount
		}
		if siteOf(op.To) == r.site {
			r.balances[op.To] += op.Amount
		}
	case audit:
		snap := make(map[string]int, len(r.balances))
		for k, v := range r.balances {
			snap[k] = v
		}
		r.snapshots[op.Name] = snap
	}
}

func main() {
	c := wanamcast.NewCluster(wanamcast.Config{
		Groups:          3,
		PerGroup:        3,
		InterGroupDelay: 80 * time.Millisecond,
	})
	replicas := make(map[wanamcast.ProcessID]*replica)
	for g := 0; g < 3; g++ {
		for i := 0; i < 3; i++ {
			replicas[c.Process(wanamcast.GroupID(g), i)] = newReplica(wanamcast.GroupID(g))
		}
	}
	c.OnDeliver(func(p wanamcast.ProcessID, _ wanamcast.MessageID, payload any) {
		replicas[p].apply(payload)
	})

	send := func(at time.Duration, from wanamcast.ProcessID, t transfer) {
		gs := wanamcast.NewGroupSet(siteOf(t.From), siteOf(t.To))
		c.MulticastAt(at, from, t, gs.Groups()...)
	}

	// A stream of transfers, an audit marker racing them through the same
	// A1 order, and a crash of one European replica in the middle.
	send(0, c.Process(0, 0), transfer{From: "alice", To: "erik", Amount: 100})
	send(10*time.Millisecond, c.Process(1, 1), transfer{From: "eva", To: "zoe", Amount: 250})
	send(20*time.Millisecond, c.Process(2, 2), transfer{From: "zhang", To: "ann", Amount: 75})
	c.MulticastAt(30*time.Millisecond, c.Process(0, 1), audit{Name: "q2-close"}, 0, 1, 2)
	send(40*time.Millisecond, c.Process(1, 0), transfer{From: "erik", To: "zhang", Amount: 30})
	send(55*time.Millisecond, c.Process(0, 2), transfer{From: "ann", To: "eva", Amount: 60})
	c.CrashAt(c.Process(1, 2), 90*time.Millisecond) // one European replica dies
	// An ordering-independent announcement to everyone via A2.
	c.BroadcastAt(120*time.Millisecond, c.Process(2, 0), "audit q2-close scheduled: books closing")

	c.Run()

	fmt.Println("== final balances per site (from the first live replica) ==")
	total := 0
	for g := 0; g < 3; g++ {
		rep := replicas[c.Process(wanamcast.GroupID(g), 0)]
		fmt.Printf("  %-8s %v\n", sites[g], rep.balances)
		for _, v := range rep.balances {
			total += v
		}
	}
	fmt.Printf("  grand total: %d (must be %d)\n\n", total, 6*initialBalance)

	// Surviving replicas of each site agree bit-for-bit.
	for g := 0; g < 3; g++ {
		live := []int{0, 1, 2}
		if g == 1 {
			live = []int{0, 1} // replica 2 crashed
		}
		ref := replicas[c.Process(wanamcast.GroupID(g), live[0])]
		for _, i := range live[1:] {
			rep := replicas[c.Process(wanamcast.GroupID(g), i)]
			if fmt.Sprint(rep.balances) != fmt.Sprint(ref.balances) {
				fmt.Printf("DIVERGENCE at site %s!\n", sites[g])
				return
			}
		}
	}
	fmt.Println("surviving replicas agree at every site (uniform agreement despite the crash)")

	fmt.Println("\n== audit snapshot 'q2-close' (consistent cut across sites) ==")
	auditTotal := 0
	for g := 0; g < 3; g++ {
		rep := replicas[c.Process(wanamcast.GroupID(g), 0)]
		snap := rep.snapshots["q2-close"]
		fmt.Printf("  %-8s %v\n", sites[g], snap)
		for _, v := range snap {
			auditTotal += v
		}
	}
	fmt.Printf("  audit total: %d — conserved, so the broadcast cut no transfer in half\n", auditTotal)

	if v := c.CheckProperties(); len(v) != 0 {
		fmt.Println("\nPROPERTY VIOLATIONS:", v)
		return
	}
	fmt.Println("\nproperties verified under the crash: integrity, validity, agreement, prefix order")
}
