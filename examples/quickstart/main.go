// Quickstart: three groups of three processes on a simulated WAN, one
// atomic broadcast (Algorithm A2) and one genuine atomic multicast
// (Algorithm A1), printing who delivered what, in which order, and at what
// measured latency degree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"wanamcast"
)

func main() {
	c := wanamcast.NewCluster(wanamcast.Config{
		Groups:          3,
		PerGroup:        3,
		InterGroupDelay: 100 * time.Millisecond, // the paper's WAN figure
	})
	c.OnDeliver(func(p wanamcast.ProcessID, id wanamcast.MessageID, payload any) {
		fmt.Printf("  %v delivers %v (%v) at t=%v\n", p, id, payload, c.Now())
	})

	fmt.Println("== Atomic broadcast (A2): every process, same order ==")
	bid := c.Broadcast(c.Process(0, 0), "deploy configuration v42")
	c.Run()
	deg, _ := c.LatencyDegree(bid)
	fmt.Printf("broadcast latency degree: %d (cold start: Theorem 5.2's two hops)\n\n", deg)

	fmt.Println("== Genuine atomic multicast (A1): groups 0 and 1 only ==")
	mid := c.Multicast(c.Process(0, 1), "rebalance shard 7", 0, 1)
	c.Run()
	deg, _ = c.LatencyDegree(mid)
	fmt.Printf("multicast latency degree: %d (Theorem 4.1's optimum; group 2 stayed silent)\n\n", deg)

	if v := c.CheckProperties(); len(v) != 0 {
		fmt.Println("PROPERTY VIOLATIONS:", v)
		return
	}
	fmt.Println("properties verified: uniform integrity, validity, uniform agreement, uniform prefix order")
	fmt.Println()
	fmt.Println(c.Stats())
}
