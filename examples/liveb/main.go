// liveb runs Algorithm A2 over real TCP sockets on localhost with an
// injected wide-area delay: two "sites" of three processes each, every
// frame between sites held back 100 ms one-way. It streams broadcasts
// fast enough to keep rounds useful (§5.3), prints the measured wall
// latency of each message's full delivery, and then stops casting to show
// quiescence: after the stream ends, protocol traffic ceases.
//
//	go run ./examples/liveb [-wan 100ms] [-casts 10] [-period 50ms]
package main

import (
	"flag"
	"fmt"
	"strings"
	"sync"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/node"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// a2Counter counts A2-family protocol sends, safely across process loops.
type a2Counter struct {
	node.NopRecorder
	mu sync.Mutex
	n  uint64
}

func (c *a2Counter) OnSend(proto string, _, _ types.ProcessID, _ bool, _ time.Duration) {
	if strings.HasPrefix(proto, "a2") {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func (c *a2Counter) count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func main() {
	wan := flag.Duration("wan", 100*time.Millisecond, "one-way inter-site delay")
	casts := flag.Int("casts", 10, "number of broadcasts")
	period := flag.Duration("period", 50*time.Millisecond, "time between broadcasts")
	flag.Parse()

	tcp.RegisterWireTypes()
	topo := types.NewTopology(2, 3)
	counter := &a2Counter{}

	rt := tcp.New(tcp.Config{
		Topo:     topo,
		BasePort: 23000,
		WANDelay: *wan,
		Recorder: counter,
	})

	type delivery struct {
		p  types.ProcessID
		id types.MessageID
		at time.Duration
	}
	var mu sync.Mutex
	delivered := make(map[types.MessageID][]delivery)

	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:     rt.Proc(id),
			Detector: rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) {
				mu.Lock()
				delivered[mid] = append(delivered[mid], delivery{p: id, id: mid, at: rt.Now()})
				mu.Unlock()
			},
		})
	}
	if err := rt.Start(); err != nil {
		fmt.Println("start:", err)
		return
	}
	defer rt.Stop()

	fmt.Printf("two sites x three processes over TCP localhost, %v one-way WAN delay\n", *wan)
	fmt.Printf("streaming %d broadcasts every %v (round time ≈ %v, so rounds stay hot)\n\n", *casts, *period, *wan)

	castTimes := make(map[types.MessageID]time.Duration)
	for i := 0; i < *casts; i++ {
		from := types.ProcessID((i % 2) * 3) // alternate sites
		var id types.MessageID
		rt.Run(from, func() {
			id = eps[from].ABCast(fmt.Sprintf("update-%d", i))
		})
		mu.Lock()
		castTimes[id] = rt.Now()
		mu.Unlock()
		time.Sleep(*period)
	}

	// Wait for full delivery everywhere.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := len(delivered) >= *casts
		for _, ds := range delivered {
			if len(ds) < topo.N() {
				done = false
			}
		}
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	fmt.Println("message            cast→last-delivery (wall)")
	for id, when := range castTimes {
		ds := delivered[id]
		var last time.Duration
		for _, d := range ds {
			if d.at > last {
				last = d.at
			}
		}
		fmt.Printf("  %-16v %8v   (%d/%d processes)\n", id, (last - when).Round(time.Millisecond), len(ds), topo.N())
	}
	mu.Unlock()

	// Quiescence: watch protocol traffic stop (heartbeats continue; they
	// are failure-detector infrastructure, not A2 traffic).
	before := counter.count()
	time.Sleep(800 * time.Millisecond)
	after := counter.count()
	fmt.Printf("\nquiescence: A2 traffic after the stream ended: %d messages in 800ms", after-before)
	if after == before {
		fmt.Printf(" — quiescent (Prop. A.9)\n")
	} else {
		fmt.Printf(" — still draining\n")
	}
}
