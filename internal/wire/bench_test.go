package wire_test

// Codec micro-benchmarks: the wire codec versus the gob baseline on the
// transport's representative hot-path frames. Run:
//
//	go test ./internal/wire -bench=. -benchmem
//
// The headline numbers (allocs/op especially) are recorded in
// EXPERIMENTS.md; the acceptance bar is ≥3× fewer allocations per message
// than gob, which TestWireAllocsBeatGob pins.
import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// benchFrame is a gob envelope identical to the transport's legacy frame.
type benchFrame struct {
	From  types.ProcessID
	Proto string
	TS    int64
	Body  any
}

// benchTSMsg and benchBundle return pre-boxed bodies: the transport's
// writer receives bodies as `any` (boxed once at protocol-send time, on
// both the simulated and live paths), so boxing is not part of the codec's
// per-frame cost.
func benchTSMsg() any {
	return amcast.TSMsg{Desc: amcast.Descriptor{
		ID:      types.MessageID{Origin: 4, Seq: 12345},
		Dest:    types.NewGroupSet(0, 2),
		Payload: "a-representative-payload",
		TS:      99,
		Stage:   amcast.Stage1,
	}}
}

func benchBundle() any {
	set := make([]abcast.Record, 16)
	for i := range set {
		set[i] = abcast.Record{ID: types.MessageID{Origin: types.ProcessID(i % 6), Seq: uint64(i + 1)}, Payload: i}
	}
	return abcast.BundleMsg{Round: 7, Set: set}
}

func init() {
	gob.Register(amcast.TSMsg{})
	gob.Register(abcast.BundleMsg{})
	gob.Register(types.MessageID{})
	gob.Register(types.GroupSet{})
}

func benchWireEncode(b *testing.B, body any) {
	var buf []byte
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err = wire.AppendFrame(buf[:0], 4, "a1", 17, body)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func benchGobEncode(b *testing.B, body any) {
	// Persistent encoder into a discarding writer: the transport reuses
	// one encoder per connection, so type descriptors are amortised here
	// exactly as they are on the live path.
	enc := gob.NewEncoder(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(benchFrame{From: 4, Proto: "a1", TS: 17, Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTSMsgWire(b *testing.B)  { benchWireEncode(b, benchTSMsg()) }
func BenchmarkEncodeTSMsgGob(b *testing.B)   { benchGobEncode(b, benchTSMsg()) }
func BenchmarkEncodeBundleWire(b *testing.B) { benchWireEncode(b, benchBundle()) }
func BenchmarkEncodeBundleGob(b *testing.B)  { benchGobEncode(b, benchBundle()) }

func benchWireDecode(b *testing.B, body any) {
	frame, err := wire.AppendFrame(nil, 4, "a1", 17, body)
	if err != nil {
		b.Fatal(err)
	}
	payload := frame[4:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeFrame(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGobDecode(b *testing.B, body any) {
	// Pre-encode a run of frames and re-wind the stream as needed: a gob
	// decoder is bound to its stream, so re-creation on rewind is part of
	// the measured (amortised) cost, as it is on reconnect.
	const run = 1024
	var bb bytes.Buffer
	enc := gob.NewEncoder(&bb)
	for i := 0; i < run; i++ {
		if err := enc.Encode(benchFrame{From: 4, Proto: "a1", TS: 17, Body: body}); err != nil {
			b.Fatal(err)
		}
	}
	stream := bb.Bytes()
	r := bytes.NewReader(stream)
	dec := gob.NewDecoder(r)
	left := run
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if left == 0 {
			r.Reset(stream)
			dec = gob.NewDecoder(r)
			left = run
		}
		var f benchFrame
		if err := dec.Decode(&f); err != nil {
			b.Fatal(err)
		}
		left--
	}
}

func BenchmarkDecodeTSMsgWire(b *testing.B)  { benchWireDecode(b, benchTSMsg()) }
func BenchmarkDecodeTSMsgGob(b *testing.B)   { benchGobDecode(b, benchTSMsg()) }
func BenchmarkDecodeBundleWire(b *testing.B) { benchWireDecode(b, benchBundle()) }
func BenchmarkDecodeBundleGob(b *testing.B)  { benchGobDecode(b, benchBundle()) }

// TestWireAllocsBeatGob pins the acceptance bar in a plain test: on the
// batched hot-path frame (a 16-record bundle, the shape MaxBatch=64 ships)
// the wire codec must allocate at least 3× less than gob on both the
// encode and the decode path. Measured on this hardware: encode 0 vs 1
// allocs/frame, decode 2 vs 41 allocs/frame.
func TestWireAllocsBeatGob(t *testing.T) {
	body := benchBundle()

	var buf []byte
	wireEnc := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = wire.AppendFrame(buf[:0], 4, "a1", 17, body)
		if err != nil {
			t.Fatal(err)
		}
	})
	enc := gob.NewEncoder(io.Discard)
	gobEnc := testing.AllocsPerRun(200, func() {
		if err := enc.Encode(benchFrame{From: 4, Proto: "a1", TS: 17, Body: body}); err != nil {
			t.Fatal(err)
		}
	})
	if gobEnc == 0 || gobEnc < 3*wireEnc {
		t.Fatalf("encode allocs: wire %.1f vs gob %.1f — want ≥3× fewer", wireEnc, gobEnc)
	}
	t.Logf("encode allocs/op: wire %.1f, gob %.1f", wireEnc, gobEnc)

	frame, err := wire.AppendFrame(nil, 4, "a1", 17, body)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	wireDec := testing.AllocsPerRun(200, func() {
		if _, err := wire.DecodeFrame(payload); err != nil {
			t.Fatal(err)
		}
	})
	var bb bytes.Buffer
	genc := gob.NewEncoder(&bb)
	for i := 0; i < 500; i++ {
		if err := genc.Encode(benchFrame{From: 4, Proto: "a1", TS: 17, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	dec := gob.NewDecoder(bytes.NewReader(bb.Bytes()))
	gobDec := testing.AllocsPerRun(200, func() {
		var f benchFrame
		if err := dec.Decode(&f); err != nil {
			t.Fatal(err)
		}
	})
	if gobDec < 3*wireDec {
		t.Fatalf("decode allocs: wire %.1f vs gob %.1f — want ≥3× fewer", wireDec, gobDec)
	}
	t.Logf("decode allocs/op: wire %.1f, gob %.1f", wireDec, gobDec)
}
