package wire_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wanamcast/internal/wire"
)

// buildBatch encodes one envelope holding the given bodies under proto "t"
// with ascending timestamps and returns the full wire frame plus the
// Finish accounting.
func buildBatch(t *testing.T, compressMin int, bodies ...any) (frame []byte, rawLen, compLen, wireLen int) {
	t.Helper()
	var bw wire.BatchWriter
	bw.Begin(7)
	for i, b := range bodies {
		if _, err := bw.Add("t", int64(i), b); err != nil {
			t.Fatalf("add %#v: %v", b, err)
		}
	}
	frame, rawLen, compLen, wireLen, err := bw.Finish(nil, compressMin)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return frame, rawLen, compLen, wireLen
}

// decodeBatch runs a wire frame through the transport's streaming decode
// surface (ReadFrameBytes + DecodeFrameOrBatch) into b.
func decodeBatch(t *testing.T, frame []byte, b *wire.Batch) {
	t.Helper()
	var scratch, inflate []byte
	data, err := wire.ReadFrameBytes(bytes.NewReader(frame), &scratch)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	_, kind, isBatch, err := wire.DecodeFrameOrBatch(data, b, &inflate)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !isBatch || kind != wire.KindBatch {
		t.Fatalf("decoded as kind %d isBatch=%v, want a batch", kind, isBatch)
	}
}

// TestBatchEnvelopeRoundTrip: raw and compressed envelopes carry every
// sub-message through the transport decode surface intact, the shared
// sender rides the preamble, and the Finish accounting matches the bytes
// actually produced.
func TestBatchEnvelopeRoundTrip(t *testing.T) {
	bodies := []any{
		"hello", int64(-4), []byte{1, 2, 3}, nil, uint64(1) << 50,
		strings.Repeat("wan bandwidth ", 200), // compressible filler
	}
	for _, tc := range []struct {
		name        string
		compressMin int
		wantFlate   bool
	}{
		{"raw", 0, false},
		{"compressed", 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			frame, rawLen, compLen, wireLen := buildBatch(t, tc.compressMin, bodies...)
			var b wire.Batch
			decodeBatch(t, frame, &b)
			if wireLen != len(frame) {
				t.Fatalf("Finish reported %d wire bytes, produced %d", wireLen, len(frame))
			}
			if b.From != 7 {
				t.Fatalf("From = %v, want 7", b.From)
			}
			if b.Flate != tc.wantFlate {
				t.Fatalf("Flate = %v, want %v", b.Flate, tc.wantFlate)
			}
			if tc.wantFlate {
				if compLen <= 0 || compLen >= rawLen {
					t.Fatalf("compLen = %d for rawLen %d: compression did not pay", compLen, rawLen)
				}
			} else if compLen != 0 {
				t.Fatalf("raw envelope reported compLen %d", compLen)
			}
			if len(b.Msgs) != len(bodies) {
				t.Fatalf("decoded %d sub-messages, want %d", len(b.Msgs), len(bodies))
			}
			sizes := 0
			for i, m := range b.Msgs {
				if m.Proto != "t" || m.TS != int64(i) {
					t.Fatalf("msg %d envelope: %+v", i, m)
				}
				if !reflect.DeepEqual(m.Body, bodies[i]) {
					t.Fatalf("msg %d body:\n got %#v\nwant %#v", i, m.Body, bodies[i])
				}
				if m.Kind != wire.KindOf(bodies[i]) {
					t.Fatalf("msg %d kind = %d, want %d", i, m.Kind, wire.KindOf(bodies[i]))
				}
				sizes += m.Size
			}
			// The sub-message sizes plus the count prefix are the raw payload.
			if sizes >= rawLen || rawLen-sizes > 5 {
				t.Fatalf("sub-message sizes %d do not add up to rawLen %d", sizes, rawLen)
			}
		})
	}
}

// TestBatchRegistryRoundTrip: *Batch is a first-class wire value, so the
// generic AppendValue/DecodeValue path (and with it the fuzz oracle and any
// WAL payload) round-trips envelopes too, in both forms.
func TestBatchRegistryRoundTrip(t *testing.T) {
	for _, flate := range []bool{false, true} {
		in := &wire.Batch{From: 3, Flate: flate, Msgs: []wire.BatchMsg{
			{Proto: "a", TS: 1, Body: "x"},
			{Proto: "b", TS: -2, Body: []byte{5}},
		}}
		buf := wire.AppendValue(nil, in)
		got, rest, err := wire.DecodeValue(buf)
		if err != nil {
			t.Fatalf("flate=%v: decode: %v", flate, err)
		}
		if len(rest) != 0 {
			t.Fatalf("flate=%v: %d trailing bytes", flate, len(rest))
		}
		out := got.(*wire.Batch)
		if out.From != 0 {
			// The value codec carries no preamble; From rides the frame.
			t.Fatalf("value round trip invented From %v", out.From)
		}
		if out.Flate != flate || len(out.Msgs) != len(in.Msgs) {
			t.Fatalf("flate=%v: got %+v", flate, out)
		}
		for i := range in.Msgs {
			if out.Msgs[i].Proto != in.Msgs[i].Proto || out.Msgs[i].TS != in.Msgs[i].TS ||
				!reflect.DeepEqual(out.Msgs[i].Body, in.Msgs[i].Body) {
				t.Fatalf("flate=%v msg %d: got %+v want %+v", flate, i, out.Msgs[i], in.Msgs[i])
			}
		}
	}
}

// TestBatchIncompressibleFallsBackToRaw: when deflate cannot shrink the
// payload (random bytes), Finish keeps the raw form — the envelope never
// pays for compression that does not pay for itself.
func TestBatchIncompressibleFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	noise := make([]byte, 8192)
	rng.Read(noise)
	frame, rawLen, compLen, _ := buildBatch(t, 1, noise)
	if compLen != 0 {
		t.Fatalf("incompressible payload reported compLen %d (rawLen %d)", compLen, rawLen)
	}
	var b wire.Batch
	decodeBatch(t, frame, &b)
	if b.Flate {
		t.Fatal("incompressible envelope went out compressed")
	}
	if !bytes.Equal(b.Msgs[0].Body.([]byte), noise) {
		t.Fatal("payload corrupted by the raw fallback")
	}
}

// TestBatchWriterReuse: one BatchWriter reused across Begin/Finish cycles
// produces byte-identical envelopes to a fresh writer each time — no state
// leaks between envelopes.
func TestBatchWriterReuse(t *testing.T) {
	var reused wire.BatchWriter
	for cycle := 0; cycle < 3; cycle++ {
		bodies := []any{"a", int64(cycle), []byte{byte(cycle)}}
		reused.Begin(9)
		var fresh wire.BatchWriter
		fresh.Begin(9)
		for i, b := range bodies {
			if _, err := reused.Add("p", int64(i), b); err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.Add("p", int64(i), b); err != nil {
				t.Fatal(err)
			}
		}
		got, _, _, _, err := reused.Finish(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _, _, err := fresh.Finish(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: reused writer diverged:\n got %x\nwant %x", cycle, got, want)
		}
	}
}

// TestBatchRejectsNesting: a batch body inside an envelope is corruption by
// definition — the writer refuses to encode one and the decoder refuses to
// accept a crafted one.
func TestBatchRejectsNesting(t *testing.T) {
	var bw wire.BatchWriter
	bw.Begin(1)
	if _, err := bw.Add("p", 0, &wire.Batch{}); err == nil {
		t.Fatal("writer accepted a nested batch")
	}
	if bw.Count() != 0 || bw.Len() != 0 {
		t.Fatalf("failed Add left state behind: count=%d len=%d", bw.Count(), bw.Len())
	}
}

// TestBatchDecodeRejectsCorruption: malformed envelopes — unknown flags,
// oversized declared sizes (decompression bombs), truncations at every
// byte, mismatched flate streams, trailing garbage — error without
// panicking.
func TestBatchDecodeRejectsCorruption(t *testing.T) {
	frame, _, _, _ := buildBatch(t, 1, strings.Repeat("x", 4096))
	body := frame[4:]

	reject := func(name string, data []byte) {
		t.Helper()
		var b wire.Batch
		var inflate []byte
		if _, _, _, err := wire.DecodeFrameOrBatch(data, &b, &inflate); err == nil {
			t.Errorf("%s: accepted corrupt envelope", name)
		}
	}

	for cut := 0; cut < len(body); cut++ {
		var b wire.Batch
		var inflate []byte
		// Truncations must never panic; most must error. A cut inside the
		// preamble can accidentally parse as a non-batch frame, so only the
		// error-free full decode is checked for equality elsewhere.
		wire.DecodeFrameOrBatch(body[:cut], &b, &inflate)
	}

	corrupt := append([]byte(nil), body...)
	// The flags byte sits right after the KindBatch tag; flip an unknown bit.
	kindAt := bytes.IndexByte(corrupt, byte(wire.KindBatch))
	if kindAt < 0 || kindAt+1 >= len(corrupt) {
		t.Fatal("cannot locate envelope flags")
	}
	corrupt[kindAt+1] |= 0x80
	reject("unknown flags", corrupt)

	// A declared raw size beyond MaxFrame is a decompression bomb.
	bomb := append([]byte(nil), body[:kindAt+2]...)
	bomb = wire.AppendUvarint(bomb, wire.MaxFrame+1)
	bomb = append(bomb, body[kindAt+2:]...)
	reject("bomb", bomb)

	// Garbage after a valid envelope must not be silently swallowed.
	reject("trailing", append(append([]byte(nil), body...), 0xAB))

	// A flate stream shorter than its declared size must be rejected.
	short := append([]byte(nil), body...)
	short = short[:len(short)-4]
	reject("short stream", short)
}
