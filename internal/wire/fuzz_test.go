package wire_test

import (
	"bytes"
	"sort"
	"testing"

	"wanamcast/internal/wire"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the envelope decoder: it must
// never panic, and whatever it accepts must reach an encode/decode fixed
// point — two consecutive re-encodes produce identical bytes. The oracle
// compares encoded bytes rather than decoded values: reflect.DeepEqual
// would falsely reject valid inputs whose decoded form is not
// reflexively equal (a NaN float64 payload). The seed corpus is one valid
// frame per registered message type plus the scalar payload kinds, so the
// fuzzer starts from every codec path.
func FuzzWireRoundTrip(f *testing.F) {
	for _, v := range roundTripValues() {
		frame, err := wire.AppendFrame(nil, 2, "a1.cons", 11, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // DecodeFrame takes the bytes after the length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	// Batch-envelope seeds: every registered type packed into one envelope,
	// once raw and once deflated, so the fuzzer starts from both batch
	// decode paths (sorted iteration keeps the corpus deterministic).
	vals := roundTripValues()
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	var bw wire.BatchWriter
	for _, compressMin := range []int{0, 1} {
		bw.Begin(2)
		for _, name := range names {
			if _, err := bw.Add("a1.cons", 11, vals[name]); err != nil {
				f.Fatal(err)
			}
		}
		frame, _, _, _, err := bw.Finish(nil, compressMin)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), frame[4:]...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := wire.DecodeFrame(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		reenc, err := wire.AppendFrame(nil, decoded.From, decoded.Proto, decoded.TS, decoded.Body)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		again, err := wire.DecodeFrame(reenc[4:])
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		reenc2, err := wire.AppendFrame(nil, again.From, again.Proto, again.TS, again.Body)
		if err != nil {
			t.Fatalf("twice-decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, reenc2) {
			t.Fatalf("round trip diverged:\n first %x\nsecond %x", reenc, reenc2)
		}
	})
}
