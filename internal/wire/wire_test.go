package wire_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"strings"
	"testing"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/baseline"
	"wanamcast/internal/consensus"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// gobPayload is an unregistered-with-wire struct that exercises the tagged
// gob fallback path.
type gobPayload struct {
	Name string
	N    int
}

func init() { gob.Register(gobPayload{}) }

// roundTripValues is the full table of registered message types plus every
// scalar payload kind; TestValueRoundTrip and FuzzWireRoundTrip's seed
// corpus both walk it.
func roundTripValues() map[string]any {
	msg := rmcast.Message{
		ID:      types.MessageID{Origin: 3, Seq: 41},
		Dest:    types.NewGroupSet(0, 2),
		Payload: "payload",
	}
	descs := []amcast.Descriptor{
		{ID: types.MessageID{Origin: 1, Seq: 7}, Dest: types.NewGroupSet(1), Payload: 99, TS: 12, Stage: amcast.Stage2},
		{ID: types.MessageID{Origin: 2, Seq: 8}, Dest: types.NewGroupSet(0, 1), Payload: nil, TS: 13, Stage: amcast.Stage0},
	}
	recs := []abcast.Record{
		{ID: types.MessageID{Origin: 0, Seq: 1}, Payload: "a"},
		{ID: types.MessageID{Origin: 5, Seq: 2}, Payload: uint64(7)},
	}
	return map[string]any{
		"nil":     nil,
		"bool":    true,
		"int":     -42,
		"int64":   int64(-1 << 40),
		"uint64":  uint64(1) << 60,
		"float64": 3.25,
		"string":  "hello",
		"bytes":   []byte{1, 2, 3},
		"gob-fallback": gobPayload{
			Name: "fallback",
			N:    7,
		},
		"consensus.ForwardMsg":  consensus.ForwardMsg{Instance: 4, Value: descs},
		"consensus.PrepareMsg":  consensus.PrepareMsg{Instance: 5, Ballot: 9},
		"consensus.PromiseMsg":  consensus.PromiseMsg{Instance: 5, Ballot: 9, VBallot: -1, VValue: nil},
		"consensus.AcceptMsg":   consensus.AcceptMsg{Instance: 6, Ballot: 3, Value: recs},
		"consensus.AcceptedMsg": consensus.AcceptedMsg{Instance: 6, Ballot: 3},
		"consensus.DecideMsg":   consensus.DecideMsg{Instance: 7, Value: descs},
		"rmcast.Message":        msg,
		"rmcast.DataMsg":        rmcast.DataMsg{M: msg},
		"amcast.TSMsg":          amcast.TSMsg{Desc: descs[0]},
		"amcast.Descriptors":    descs,
		"abcast.BundleMsg":      abcast.BundleMsg{Round: 19, Set: recs},
		"abcast.EmptyBundle":    abcast.BundleMsg{Round: 20},
		"abcast.Records":        recs,
		"baseline.SkeenData":    baseline.SkeenData{M: msg},
		"baseline.SkeenProp":    baseline.SkeenProp{ID: msg.ID, TS: 77},
		"svc.ReadReq": svc.ReadReq{Session: 9, Seq: 4, Group: 2, Mode: 1,
			MinWatermark: 88, Op: []byte{2, 1}},
		"svc.ReadResp": svc.ReadResp{Session: 9, Seq: 4, OK: true,
			Result: []byte{1, 0, 3}, Watermark: 91},
		"svc.CertReq": svc.CertReq{Session: 9, Seq: 12},
		"svc.CertShare": svc.CertShare{Session: 9, Seq: 12, OK: true,
			ID: types.MessageID{Origin: 4, Seq: 7}, Group: 1, Order: 33,
			Hash: []byte("hhhh"), Proc: 5, MAC: []byte("mmmm")},
	}
}

func TestValueRoundTrip(t *testing.T) {
	for name, v := range roundTripValues() {
		t.Run(name, func(t *testing.T) {
			buf := wire.AppendValue(nil, v)
			got, rest, err := wire.DecodeValue(buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("decode left %d trailing bytes", len(rest))
			}
			if !reflect.DeepEqual(got, v) {
				t.Fatalf("round trip:\n got %#v\nwant %#v", got, v)
			}
		})
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for name, v := range roundTripValues() {
		t.Run(name, func(t *testing.T) {
			buf, err := wire.AppendFrame(nil, 3, "a1.cons", -17, v)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			var scratch []byte
			f, err := wire.ReadFrame(bytes.NewReader(buf), &scratch)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if f.From != 3 || f.Proto != "a1.cons" || f.TS != -17 {
				t.Fatalf("envelope mismatch: %+v", f)
			}
			if !reflect.DeepEqual(f.Body, v) {
				t.Fatalf("body mismatch:\n got %#v\nwant %#v", f.Body, v)
			}
		})
	}
}

// TestFramesShareOneBuffer pins the transport's buffer-reuse contract:
// consecutive frames encoded into one buffer and streamed through one
// reader with one scratch buffer must decode independently (decoded bodies
// own their memory).
func TestFramesShareOneBuffer(t *testing.T) {
	var stream []byte
	var err error
	stream, err = wire.AppendFrame(stream, 0, "t", 1, "first")
	if err != nil {
		t.Fatal(err)
	}
	stream, err = wire.AppendFrame(stream, 1, "t", 2, []byte{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream)
	var scratch []byte
	f1, err := wire.ReadFrame(r, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := wire.ReadFrame(r, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Body != "first" || !reflect.DeepEqual(f2.Body, []byte{9, 9}) {
		t.Fatalf("stream decode: %+v %+v", f1, f2)
	}
}

func TestDecodeFrameRejectsCorruption(t *testing.T) {
	good, err := wire.AppendFrame(nil, 1, "p", 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:] // strip length prefix
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    body[:len(body)-2],
		"trailing":     append(append([]byte(nil), body...), 0xFF),
		"unknown-kind": {0x02, 0x01, 'p', 0x00, 0xEE},
		"huge-slice": func() []byte {
			// A KindABcastRecords value claiming 2^40 records.
			b := []byte{0x02, 0x01, 'p', 0x00, byte(wire.KindABcastRecords)}
			return wire.AppendUvarint(b, 1<<40)
		}(),
	}
	for name, data := range cases {
		if _, err := wire.DecodeFrame(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	var scratch []byte
	if _, err := wire.ReadFrame(bytes.NewReader(hdr), &scratch); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// TestUnencodableBodyErrors: a payload even gob rejects must surface as an
// AppendFrame error, not a panic, and must leave the buffer unchanged.
func TestUnencodableBodyErrors(t *testing.T) {
	buf := []byte{1, 2, 3}
	out, err := wire.AppendFrame(buf, 0, "p", 0, make(chan int))
	if err == nil {
		t.Fatal("channel payload encoded")
	}
	if !strings.Contains(err.Error(), "gob") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !bytes.Equal(out, buf) {
		t.Fatalf("buffer modified on failed encode: %v", out)
	}
}

// TestAppendFrameRejectsOversizedBody: a frame no reader would accept is
// rejected at the sender (the transport drops it and keeps the
// connection), instead of being written and livelocking the link.
func TestAppendFrameRejectsOversizedBody(t *testing.T) {
	huge := make([]byte, wire.MaxFrame+16)
	out, err := wire.AppendFrame(nil, 0, "p", 0, huge)
	if err == nil {
		t.Fatal("oversized body encoded")
	}
	if len(out) != 0 {
		t.Fatalf("buffer not reset on oversize: %d bytes", len(out))
	}
}

func TestInternReturnsCanonical(t *testing.T) {
	a := wire.Intern([]byte("a1.cons"))
	b := wire.Intern([]byte("a1.cons"))
	if a != b {
		t.Fatal("intern returned different strings")
	}
}
