// Batch envelopes: the WAN byte- and syscall-efficiency layer of the wire
// codec.
//
// A batch envelope packs every frame a transport writer coalesces in one
// flush window into a single outer frame: one 4-byte length header and one
// (from, proto, ts) preamble on the wire instead of one per message. Inside
// the envelope each sub-message carries only its own proto label, timestamp
// and tagged value — the shared `from` is hoisted into the preamble. Above a
// size threshold the sub-message payload is deflated (compress/flate,
// BestSpeed) behind a strict decoded-size bound: the uncompressed length is
// declared up front, capped at MaxFrame, and the inflater reads exactly that
// many bytes or rejects the envelope, so a crafted frame can never expand
// past the bound (no decompression bombs).
//
// The envelope rides the existing stream framing: on the wire it is a
// regular frame whose proto is the reserved BatchProto label and whose value
// kind is KindBatch, so a reader that understands frames understands
// batches, and corrupt envelopes fail decode exactly like corrupt frames
// (drop the connection, peers redial). Batches never nest: a KindBatch value
// inside an envelope is corruption by definition.
//
// Two decode surfaces exist. The registry codec (decode to *Batch) keeps
// AppendValue/DecodeValue round trips and the fuzz oracle working. The
// transport uses DecodeFrameOrBatch + a caller-owned Batch and inflate
// scratch instead, which reuses all storage across envelopes — the steady
// state receive path allocates nothing for the envelope machinery.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"

	"wanamcast/internal/types"
)

// BatchProto is the reserved proto label of batch envelope frames. Protocol
// layers must never register a handler under it; the transport consumes
// envelopes before protocol dispatch.
const BatchProto = "!b"

// MinCompress is the smallest sane compression threshold: one Ethernet MTU.
// Compressing payloads that already fit one packet burns CPU for no
// syscall or packet win, so configuration rejects thresholds below it.
const MinCompress = 1500

const batchFlagFlate = 0x01

// BatchMsg is one decoded sub-message of a batch envelope. Kind and Size
// are decode/encode byproducts kept for byte accounting: Size is the
// sub-message's encoded length inside the envelope (proto + ts + value).
type BatchMsg struct {
	Proto string
	TS    int64
	Body  any
	Kind  Kind
	Size  int
}

// Batch is a decoded batch envelope. Msgs storage is reused across decodes
// when the caller reuses the Batch.
type Batch struct {
	From  types.ProcessID
	Flate bool
	Msgs  []BatchMsg
}

func init() {
	Register[*Batch](KindBatch, appendBatchBody, decodeBatchBody)
}

// KindOf reports the Kind byte AppendValue would tag v with: inline scalar
// kinds, the registered codec's kind, or KindGob for the fallback.
func KindOf(v any) Kind {
	switch v.(type) {
	case nil:
		return KindNil
	case bool:
		return KindBool
	case int:
		return KindInt
	case int64:
		return KindInt64
	case uint64:
		return KindUint64
	case float64:
		return KindFloat64
	case string:
		return KindString
	case []byte:
		return KindBytes
	}
	if c := lookupType(reflect.TypeOf(v)); c != nil {
		return c.kind
	}
	return KindGob
}

// --- pooled helpers -------------------------------------------------------

// sliceWriter is an append-only io.Writer so the pooled flate.Writer can
// deflate into a reusable byte slice instead of a bytes.Buffer.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var (
	scratchPool = sync.Pool{New: func() any { s := make([]byte, 0, 4096); return &s }}
	swPool      = sync.Pool{New: func() any { return &sliceWriter{b: make([]byte, 0, 4096)} }}
	flateWPool  = sync.Pool{New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level; unreachable
		}
		return w
	}}
	flateRPool = sync.Pool{New: func() any { return flate.NewReader(bytes.NewReader(nil)) }}
	bytesRPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}
)

// deflateInto compresses src (as the concatenation of the given chunks) and
// appends the result to dst, reusing pooled flate state.
func deflateInto(dst []byte, chunks ...[]byte) ([]byte, error) {
	sw := swPool.Get().(*sliceWriter)
	sw.b = sw.b[:0]
	fw := flateWPool.Get().(*flate.Writer)
	fw.Reset(sw)
	var werr error
	for _, c := range chunks {
		if _, err := fw.Write(c); err != nil {
			werr = err
			break
		}
	}
	if err := fw.Close(); werr == nil {
		werr = err
	}
	flateWPool.Put(fw)
	if werr != nil {
		swPool.Put(sw)
		return dst, fmt.Errorf("wire: deflate: %w", werr)
	}
	dst = append(dst, sw.b...)
	swPool.Put(sw)
	return dst, nil
}

// inflateInto decompresses comp into (*scratch)[:rawLen], enforcing that the
// stream decodes to exactly rawLen bytes. rawLen has already been validated
// against MaxFrame, so scratch growth is bounded.
func inflateInto(comp []byte, rawLen int, scratch *[]byte) ([]byte, error) {
	if cap(*scratch) < rawLen {
		*scratch = make([]byte, rawLen)
	}
	buf := (*scratch)[:rawLen]
	br := bytesRPool.Get().(*bytes.Reader)
	br.Reset(comp)
	fr := flateRPool.Get().(io.ReadCloser)
	if err := fr.(flate.Resetter).Reset(br, nil); err != nil {
		flateRPool.Put(fr)
		bytesRPool.Put(br)
		return nil, corrupt("flate reset")
	}
	_, err := io.ReadFull(fr, buf)
	if err == nil {
		// The declared size must be exact: a stream holding more than
		// rawLen bytes is an attempt to smuggle data past the bound.
		var one [1]byte
		if n, rerr := fr.Read(one[:]); n != 0 || (rerr != nil && rerr != io.EOF) {
			err = errors.New("long stream")
		}
	}
	flateRPool.Put(fr)
	bytesRPool.Put(br)
	if err != nil {
		return nil, corrupt("flate payload does not match declared size")
	}
	return buf, nil
}

// --- registry codec (alloc path) ------------------------------------------

// appendBatchBody re-encodes a decoded Batch. Production senders use
// BatchWriter; this codec keeps *Batch a first-class value so generic round
// trips (fuzzing, tests, WAL payloads) work.
func appendBatchBody(buf []byte, b *Batch) []byte {
	sp := scratchPool.Get().(*[]byte)
	raw := (*sp)[:0]
	defer func() {
		*sp = raw[:0]
		scratchPool.Put(sp)
	}()
	raw = AppendUvarint(raw, uint64(len(b.Msgs)))
	for i := range b.Msgs {
		m := &b.Msgs[i]
		if _, nested := m.Body.(*Batch); nested {
			panic(encodeError{errors.New("wire: batch envelopes do not nest")})
		}
		raw = AppendString(raw, m.Proto)
		raw = AppendVarint(raw, m.TS)
		raw = AppendValue(raw, m.Body)
	}
	if !b.Flate {
		buf = append(buf, 0)
		return append(buf, raw...)
	}
	buf = append(buf, batchFlagFlate)
	buf = AppendUvarint(buf, uint64(len(raw)))
	lenAt := len(buf)
	buf = AppendUvarint(buf, 0) // patched below; compressed length fits a re-encode
	compStart := len(buf)
	buf, err := deflateInto(buf, raw)
	if err != nil {
		panic(encodeError{err})
	}
	compLen := len(buf) - compStart
	// Patch the compressed-length prefix in place. A uvarint's width depends
	// on its value, so re-append with the real length if the placeholder
	// width was wrong.
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(compLen))
	if n == compStart-lenAt {
		copy(buf[lenAt:compStart], tmp[:n])
		return buf
	}
	comp := append([]byte(nil), buf[compStart:]...)
	buf = buf[:lenAt]
	buf = AppendUvarint(buf, uint64(compLen))
	return append(buf, comp...)
}

func decodeBatchBody(data []byte) (*Batch, []byte, error) {
	b := &Batch{}
	var scratch []byte
	rest, err := decodeBatchInto(b, data, &scratch)
	if err != nil {
		return nil, nil, err
	}
	return b, rest, nil
}

// decodeBatchInto fills b from a batch value body (the bytes after the
// KindBatch tag), reusing b.Msgs and *inflate. It returns the unconsumed
// remainder.
func decodeBatchInto(b *Batch, data []byte, inflate *[]byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, corrupt("batch flags")
	}
	flags := data[0]
	data = data[1:]
	if flags&^byte(batchFlagFlate) != 0 {
		return nil, corrupt("unknown batch flags")
	}
	b.Flate = flags&batchFlagFlate != 0
	raw := data
	var rest []byte
	if b.Flate {
		rawLen, d, err := Uvarint(data)
		if err != nil {
			return nil, err
		}
		if rawLen > MaxFrame {
			return nil, corrupt("batch decoded size exceeds MaxFrame")
		}
		comp, d, err := Bytes(d)
		if err != nil {
			return nil, err
		}
		rest = d
		raw, err = inflateInto(comp, int(rawLen), inflate)
		if err != nil {
			return nil, err
		}
	}
	count, raw, err := SliceLen(raw)
	if err != nil {
		return nil, err
	}
	if cap(b.Msgs) < count {
		b.Msgs = make([]BatchMsg, count)
	} else {
		b.Msgs = b.Msgs[:count]
	}
	for i := 0; i < count; i++ {
		start := len(raw)
		proto, d, err := Bytes(raw)
		if err != nil {
			return nil, err
		}
		ts, d, err := Varint(d)
		if err != nil {
			return nil, err
		}
		if len(d) == 0 {
			return nil, corrupt("batch sub-message value")
		}
		k := Kind(d[0])
		if k == KindBatch {
			return nil, corrupt("nested batch envelope")
		}
		body, d, err := DecodeValue(d)
		if err != nil {
			return nil, err
		}
		b.Msgs[i] = BatchMsg{
			Proto: Intern(proto),
			TS:    ts,
			Body:  body,
			Kind:  k,
			Size:  start - len(d),
		}
		raw = d
	}
	if b.Flate {
		if len(raw) != 0 {
			return nil, corrupt("trailing bytes in compressed batch")
		}
		return rest, nil
	}
	return raw, nil
}

// --- transport surfaces ---------------------------------------------------

// ReadFrameBytes reads one length-prefixed frame payload from r into
// *scratch (growing it as needed) and returns the payload bytes, which alias
// *scratch and are valid until the next call.
func ReadFrameBytes(r io.Reader, scratch *[]byte) ([]byte, error) {
	// The header is read through *scratch, not a local array: a local would
	// escape through the io.Reader interface and cost one heap allocation
	// per frame, which the zero-alloc receive pin forbids.
	if cap(*scratch) < 4 {
		*scratch = make([]byte, 4, 4096)
	}
	hdr := (*scratch)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, corrupt(fmt.Sprintf("frame length %d exceeds MaxFrame", n))
	}
	if uint32(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	buf := (*scratch)[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFrameOrBatch decodes one frame payload (the bytes after the length
// prefix). A batch envelope is decoded into b, reusing its storage and
// *inflate as decompression scratch, and reported with isBatch=true (the
// returned Frame is zero; b.From carries the sender). A regular frame is
// returned directly with its value kind. It never panics on malformed
// input.
func DecodeFrameOrBatch(data []byte, b *Batch, inflate *[]byte) (f Frame, kind Kind, isBatch bool, err error) {
	from, data, err := Varint(data)
	if err != nil {
		return f, 0, false, err
	}
	proto, data, err := Bytes(data)
	if err != nil {
		return f, 0, false, err
	}
	ts, data, err := Varint(data)
	if err != nil {
		return f, 0, false, err
	}
	if len(data) == 0 {
		return f, 0, false, corrupt("missing value kind")
	}
	kind = Kind(data[0])
	if kind == KindBatch {
		rest, err := decodeBatchInto(b, data[1:], inflate)
		if err != nil {
			return f, 0, false, err
		}
		if len(rest) != 0 {
			return f, 0, false, corrupt("trailing bytes after batch envelope")
		}
		b.From = types.ProcessID(from)
		return f, KindBatch, true, nil
	}
	body, rest, err := DecodeValue(data)
	if err != nil {
		return f, 0, false, err
	}
	if len(rest) != 0 {
		return f, 0, false, corrupt("trailing bytes after frame body")
	}
	f.From = types.ProcessID(from)
	f.Proto = Intern(proto)
	f.TS = ts
	f.Body = body
	return f, kind, false, nil
}

// BatchWriter accumulates sub-messages and emits one batch envelope frame.
// All storage is reused across Begin/Finish cycles, so a transport writer
// that owns one BatchWriter encodes envelopes without allocating.
type BatchWriter struct {
	from  types.ProcessID
	sub   []byte
	count int
}

// Begin resets the writer for a new envelope from the given sender.
func (w *BatchWriter) Begin(from types.ProcessID) {
	w.from = from
	w.sub = w.sub[:0]
	w.count = 0
}

// Count reports how many sub-messages have been added since Begin.
func (w *BatchWriter) Count() int { return w.count }

// Len reports the encoded sub-message bytes accumulated since Begin.
func (w *BatchWriter) Len() int { return len(w.sub) }

// Add encodes one sub-message into the envelope and returns its encoded
// size. On encode failure (gob fallback rejection) the envelope is left as
// it was before the call.
func (w *BatchWriter) Add(proto string, ts int64, body any) (n int, err error) {
	start := len(w.sub)
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(encodeError)
			if !ok {
				panic(r)
			}
			w.sub, n, err = w.sub[:start], 0, ee.err
		}
	}()
	if _, nested := body.(*Batch); nested {
		return 0, errors.New("wire: batch envelopes do not nest")
	}
	w.sub = AppendString(w.sub, proto)
	w.sub = AppendVarint(w.sub, ts)
	w.sub = AppendValue(w.sub, body)
	w.count++
	return len(w.sub) - start, nil
}

// Finish appends the completed envelope to buf as one length-prefixed wire
// frame. If compressMin > 0 and the payload is at least that many bytes it
// is deflated — unless compression does not actually shrink it, in which
// case the raw form is kept. It returns the raw (pre-compression) payload
// size, the compressed payload size (0 when the envelope went out raw), and
// the total appended wire bytes, for compression-ratio accounting.
func (w *BatchWriter) Finish(buf []byte, compressMin int) (out []byte, rawLen, compLen, wireLen int, err error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.AppendVarint(buf, int64(w.from))
	buf = AppendString(buf, BatchProto)
	buf = binary.AppendVarint(buf, 0)
	buf = append(buf, byte(KindBatch))
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], uint64(w.count))
	rawLen = cn + len(w.sub)
	compressed := false
	if compressMin > 0 && rawLen >= compressMin {
		flagsAt := len(buf)
		buf = append(buf, batchFlagFlate)
		buf = AppendUvarint(buf, uint64(rawLen))
		lenAt := len(buf)
		buf = AppendUvarint(buf, uint64(rawLen)) // placeholder sized for the worst case
		compStart := len(buf)
		buf, err = deflateInto(buf, cnt[:cn], w.sub)
		if err != nil {
			return buf[:start], 0, 0, 0, err
		}
		compLen = len(buf) - compStart
		if compLen < rawLen {
			// Patch the compressed-length prefix. compLen < rawLen, so its
			// uvarint is never wider than the placeholder; when it is
			// narrower, shift the payload back over the gap.
			var tmp [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(tmp[:], uint64(compLen))
			copy(buf[lenAt:], tmp[:n])
			if gap := compStart - lenAt - n; gap > 0 {
				copy(buf[lenAt+n:], buf[compStart:compStart+compLen])
				buf = buf[:lenAt+n+compLen]
			}
			compressed = true
		} else {
			// Incompressible payload: drop the compressed attempt and fall
			// through to the raw form.
			buf = buf[:flagsAt]
			compLen = 0
		}
	}
	if !compressed {
		buf = append(buf, 0)
		buf = append(buf, cnt[:cn]...)
		buf = append(buf, w.sub...)
	}
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], 0, 0, 0, fmt.Errorf("wire: batch envelope of %d bytes exceeds MaxFrame (%d)", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, rawLen, compLen, n + 4, nil
}
