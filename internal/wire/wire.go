// Package wire is the zero-allocation binary codec of the live TCP
// transport: a length-prefixed frame envelope plus a per-message-kind codec
// registry.
//
// Every protocol message of this repository encodes itself with an
// append-style AppendTo([]byte) []byte / DecodeFrom([]byte) pair (the
// GroupSet.MarshalBinary pattern from internal/types, generalised), and
// registers its codec here under a Kind byte from the catalog below. The
// registry is what lets consensus values and application payloads stay
// `any` end to end: AppendValue dispatches on the dynamic type — common
// scalars inline, registered messages through their codec, and everything
// else through a tagged encoding/gob blob (so arbitrary user payloads keep
// working exactly as they did on the pure-gob transport, including the
// gob.Register requirement for non-basic types).
//
// Wire layout of one frame:
//
//	[4-byte big-endian length][from varint][proto string][ts varint][value]
//
// where a value is one Kind byte followed by the kind-specific body, and a
// string is a uvarint length followed by its bytes. Encoding appends into a
// caller-owned buffer and decoding reads out of a caller-owned buffer, so
// the steady-state hot path of the transport allocates nothing for the
// envelope: the only allocations are the decoded message structures
// themselves. Decoded byte slices alias the input buffer; decoders that
// retain data (strings, payload copies) copy it out.
//
// The codec is explicitly not self-describing: both ends must run the same
// catalog. Unknown kinds and truncated or oversized frames decode to
// errors, never panics — the transport drops the connection and peers
// redial, the same channel-level contract the gob stream had.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"

	"wanamcast/internal/types"
)

// Kind identifies a registered wire encoding. The catalog is assigned here,
// centrally, so the kind space stays collision-free while each protocol
// package owns its own codec implementations.
type Kind byte

const (
	// KindInvalid is never written; a zero kind on the wire is corruption.
	KindInvalid Kind = 0

	// Scalar value kinds, encoded inline by AppendValue.
	KindGob     Kind = 1 // uvarint length + encoding/gob blob of a wrapped any
	KindNil     Kind = 2 // empty body: the nil interface
	KindBool    Kind = 3 // one byte, 0 or 1
	KindInt     Kind = 4 // varint, decodes as int
	KindInt64   Kind = 5 // varint
	KindUint64  Kind = 6 // uvarint
	KindFloat64 Kind = 7 // 8-byte big-endian IEEE 754
	KindString  Kind = 8 // uvarint length + bytes
	KindBytes   Kind = 9 // uvarint length + bytes

	// Protocol message kinds. The codecs live next to the message types and
	// self-register in their package's init.
	KindConsensusForward  Kind = 16 // consensus.ForwardMsg
	KindConsensusPrepare  Kind = 17 // consensus.PrepareMsg
	KindConsensusPromise  Kind = 18 // consensus.PromiseMsg
	KindConsensusAccept   Kind = 19 // consensus.AcceptMsg
	KindConsensusAccepted Kind = 20 // consensus.AcceptedMsg
	KindConsensusDecide   Kind = 21 // consensus.DecideMsg
	KindConsensusLearn    Kind = 22 // consensus.LearnMsg (decision catch-up query)
	KindRMcastData        Kind = 24 // rmcast.DataMsg
	KindRMcastMessage     Kind = 25 // rmcast.Message (as a payload value)
	KindAMcastTS          Kind = 28 // amcast.TSMsg
	KindAMcastDescriptors Kind = 29 // []amcast.Descriptor (consensus value)
	KindABcastBundle      Kind = 32 // abcast.BundleMsg
	KindABcastRecords     Kind = 33 // []abcast.Record (consensus value)
	KindSkeenData         Kind = 36 // baseline.SkeenData
	KindSkeenProp         Kind = 37 // baseline.SkeenProp
	KindHeartbeat         Kind = 40 // tcp heartbeatMsg (sender send-time beat)
	KindSvcRequest        Kind = 44 // svc.Request (client → server)
	KindSvcReply          Kind = 45 // svc.Reply (server → client)
	KindSvcRedirect       Kind = 46 // svc.Redirect (server → client)
	KindSvcCommand        Kind = 47 // svc.Command (the multicast payload)
	KindA1SyncReq         Kind = 50 // amcast.SyncReq (restart state transfer)
	KindA1SyncResp        Kind = 51 // amcast.SyncResp
	KindA2SyncReq         Kind = 52 // abcast.SyncReq (restart state transfer)
	KindA2SyncResp        Kind = 53 // abcast.SyncResp
	KindLeaseGrant        Kind = 54 // tcp leaseGrantMsg (follower → leader lease vote)
	KindSvcReadReq        Kind = 55 // svc.ReadReq (client → server, read tier)
	KindSvcReadResp       Kind = 56 // svc.ReadResp (server → client)
	KindSvcCertReq        Kind = 57 // svc.CertReq (client → server, delivery certificate)
	KindSvcCertShare      Kind = 58 // svc.CertShare (server → client, one HMAC countersignature)
	KindBatch             Kind = 60 // batch envelope: many frames, one header (batch.go)
)

// MaxFrame bounds one frame on the wire. A larger length prefix is treated
// as stream corruption: the reader drops the connection rather than
// allocating attacker-controlled amounts of memory.
const MaxFrame = 64 << 20

// ErrCorrupt reports a malformed buffer. All decode errors wrap it.
var ErrCorrupt = errors.New("wire: corrupt data")

func corrupt(what string) error { return fmt.Errorf("%w: %s", ErrCorrupt, what) }

type codec struct {
	kind   Kind
	append func(buf []byte, v any) []byte
	decode func(data []byte) (any, []byte, error)
}

var (
	regMu  sync.RWMutex
	byType = make(map[reflect.Type]*codec)
	byKind [256]*codec
)

// Register installs the codec for message type T under kind. It is meant to
// be called from package init functions; registering a kind or a type twice
// is a wiring bug and panics. enc appends T's body (without the kind byte);
// dec decodes it and returns the unconsumed remainder.
func Register[T any](kind Kind, enc func(buf []byte, v T) []byte, dec func(data []byte) (T, []byte, error)) {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	c := &codec{
		kind:   kind,
		append: func(buf []byte, v any) []byte { return enc(buf, v.(T)) },
		decode: func(data []byte) (any, []byte, error) { return dec(data) },
	}
	regMu.Lock()
	defer regMu.Unlock()
	if byKind[kind] != nil {
		panic(fmt.Sprintf("wire: kind %d registered twice", kind))
	}
	if _, dup := byType[rt]; dup {
		panic(fmt.Sprintf("wire: type %v registered twice", rt))
	}
	byKind[kind] = c
	byType[rt] = c
}

func lookupType(rt reflect.Type) *codec {
	regMu.RLock()
	c := byType[rt]
	regMu.RUnlock()
	return c
}

func lookupKind(k Kind) *codec {
	regMu.RLock()
	c := byKind[k]
	regMu.RUnlock()
	return c
}

// --- primitives -----------------------------------------------------------

// AppendUvarint appends x in unsigned varint encoding.
func AppendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

// AppendVarint appends x in zig-zag varint encoding.
func AppendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a uvarint length followed by b.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Uvarint consumes an unsigned varint and returns the remainder.
func Uvarint(data []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, corrupt("uvarint")
	}
	return x, data[n:], nil
}

// Varint consumes a zig-zag varint and returns the remainder.
func Varint(data []byte) (int64, []byte, error) {
	x, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, corrupt("varint")
	}
	return x, data[n:], nil
}

// Bytes consumes a length-prefixed byte slice. The returned slice ALIASES
// data; callers that retain it must copy.
func Bytes(data []byte) ([]byte, []byte, error) {
	n, data, err := Uvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(data)) {
		return nil, nil, corrupt("byte-slice length exceeds input")
	}
	return data[:n], data[n:], nil
}

// String consumes a length-prefixed string (copying out of data).
func String(data []byte) (string, []byte, error) {
	b, rest, err := Bytes(data)
	if err != nil {
		return "", nil, err
	}
	return string(b), rest, nil
}

// SliceLen consumes a uvarint element count and validates it against the
// remaining input: each element needs at least one byte, so a count beyond
// len(rest) is corruption. Use it before make()ing a decoded slice so a
// crafted length prefix cannot force a huge allocation.
func SliceLen(data []byte) (int, []byte, error) {
	n, rest, err := Uvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest)) {
		return 0, nil, corrupt("slice length exceeds input")
	}
	return int(n), rest, nil
}

// --- proto-label interning ------------------------------------------------

var (
	internMu sync.RWMutex
	interned = make(map[string]string)
)

// internBounds cap the process-global intern cache: protocol labels are a
// small static set of short strings per deployment, so anything past these
// bounds is garbage from a misbehaving peer — it still decodes (as an
// uncached copy) but must not grow memory forever.
const (
	maxInternLen     = 128
	maxInternEntries = 4096
)

// Intern returns the canonical string for b, allocating only the first time
// a label is seen. Protocol labels are a small static set per run, so the
// read path is a lock + map hit with no conversion allocation.
func Intern(b []byte) string {
	internMu.RLock()
	s, ok := interned[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	if len(b) > maxInternLen {
		return string(b)
	}
	internMu.Lock()
	defer internMu.Unlock()
	if s, ok := interned[string(b)]; ok {
		return s
	}
	s = string(b)
	if len(interned) < maxInternEntries {
		interned[s] = s
	}
	return s
}

// --- values ---------------------------------------------------------------

// gobValue wraps a payload for the gob fallback: gob round-trips interface
// values only through a concrete wrapper, and the concrete payload type must
// be gob.Register'ed by the caller (the same contract the all-gob transport
// had).
type gobValue struct{ V any }

type encodeError struct{ err error }

// AppendValue appends one tagged value: a Kind byte plus the kind-specific
// body. Unregistered types fall back to a gob blob; a payload even gob
// cannot encode (unregistered concrete type, channels, funcs) panics with
// an error AppendFrame translates back into an error return.
func AppendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, byte(KindNil))
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(buf, byte(KindBool), b)
	case int:
		buf = append(buf, byte(KindInt))
		return binary.AppendVarint(buf, int64(x))
	case int64:
		buf = append(buf, byte(KindInt64))
		return binary.AppendVarint(buf, x)
	case uint64:
		buf = append(buf, byte(KindUint64))
		return binary.AppendUvarint(buf, x)
	case float64:
		buf = append(buf, byte(KindFloat64))
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	case string:
		buf = append(buf, byte(KindString))
		return AppendString(buf, x)
	case []byte:
		buf = append(buf, byte(KindBytes))
		return AppendBytes(buf, x)
	}
	if c := lookupType(reflect.TypeOf(v)); c != nil {
		buf = append(buf, byte(c.kind))
		return c.append(buf, v)
	}
	var bb bytes.Buffer
	if err := gob.NewEncoder(&bb).Encode(&gobValue{V: v}); err != nil {
		panic(encodeError{fmt.Errorf("wire: gob fallback for %T: %w", v, err)})
	}
	buf = append(buf, byte(KindGob))
	return AppendBytes(buf, bb.Bytes())
}

// DecodeValue consumes one tagged value and returns the remainder.
func DecodeValue(data []byte) (any, []byte, error) {
	if len(data) == 0 {
		return nil, nil, corrupt("missing value kind")
	}
	kind, data := Kind(data[0]), data[1:]
	switch kind {
	case KindNil:
		return nil, data, nil
	case KindBool:
		if len(data) == 0 {
			return nil, nil, corrupt("bool")
		}
		return data[0] != 0, data[1:], nil
	case KindInt:
		x, rest, err := Varint(data)
		return int(x), rest, err
	case KindInt64:
		x, rest, err := Varint(data)
		return x, rest, err
	case KindUint64:
		x, rest, err := Uvarint(data)
		return x, rest, err
	case KindFloat64:
		if len(data) < 8 {
			return nil, nil, corrupt("float64")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
	case KindString:
		s, rest, err := String(data)
		return s, rest, err
	case KindBytes:
		b, rest, err := Bytes(data)
		if err != nil {
			return nil, nil, err
		}
		return append([]byte(nil), b...), rest, nil
	case KindGob:
		blob, rest, err := Bytes(data)
		if err != nil {
			return nil, nil, err
		}
		var gv gobValue
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&gv); err != nil {
			return nil, nil, fmt.Errorf("%w: gob blob: %v", ErrCorrupt, err)
		}
		return gv.V, rest, nil
	}
	if c := lookupKind(kind); c != nil {
		return c.decode(data)
	}
	return nil, nil, corrupt(fmt.Sprintf("unknown kind %d", kind))
}

// --- frames ---------------------------------------------------------------

// Frame is the decoded transport envelope.
type Frame struct {
	From  types.ProcessID
	Proto string
	TS    int64
	Body  any
}

// AppendFrame appends one length-prefixed frame to buf. The returned error
// is non-nil only when the body cannot be encoded at all (gob fallback
// failure); the buffer is unchanged in that case.
func AppendFrame(buf []byte, from types.ProcessID, proto string, ts int64, body any) (out []byte, err error) {
	start := len(buf)
	defer func() {
		if r := recover(); r != nil {
			ee, ok := r.(encodeError)
			if !ok {
				panic(r)
			}
			out, err = buf[:start], ee.err
		}
	}()
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.AppendVarint(buf, int64(from))
	buf = AppendString(buf, proto)
	buf = binary.AppendVarint(buf, ts)
	buf = AppendValue(buf, body)
	n := len(buf) - start - 4
	if n > MaxFrame {
		// A frame no reader would accept (and, past 4 GiB, one whose
		// length prefix would wrap and desynchronise the stream) must be
		// rejected at the sender.
		return buf[:start], fmt.Errorf("wire: frame body of %d bytes exceeds MaxFrame (%d)", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// DecodeFrame decodes one frame body (the bytes AFTER the length prefix).
// It never panics on malformed input.
func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	from, data, err := Varint(data)
	if err != nil {
		return f, err
	}
	proto, data, err := Bytes(data)
	if err != nil {
		return f, err
	}
	ts, data, err := Varint(data)
	if err != nil {
		return f, err
	}
	body, data, err := DecodeValue(data)
	if err != nil {
		return f, err
	}
	if len(data) != 0 {
		return f, corrupt("trailing bytes after frame body")
	}
	f.From = types.ProcessID(from)
	f.Proto = Intern(proto)
	f.TS = ts
	f.Body = body
	return f, nil
}

// ReadFrame reads one length-prefixed frame from r, reusing *scratch as the
// receive buffer (growing it as needed). On success the returned Frame's
// Body owns its memory; *scratch may be reused for the next frame.
func ReadFrame(r io.Reader, scratch *[]byte) (Frame, error) {
	buf, err := ReadFrameBytes(r, scratch)
	if err != nil {
		return Frame{}, err
	}
	return DecodeFrame(buf)
}
