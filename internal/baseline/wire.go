// Wire codecs for the baseline wire types that the live transport
// registers (Skeen's algorithm; see internal/wire).
package baseline

import (
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

func init() {
	wire.Register(wire.KindSkeenData,
		func(buf []byte, m SkeenData) []byte { return m.AppendTo(buf) },
		func(data []byte) (m SkeenData, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindSkeenProp,
		func(buf []byte, m SkeenProp) []byte { return m.AppendTo(buf) },
		func(data []byte) (m SkeenProp, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
}

// AppendTo appends m's wire encoding.
func (m SkeenData) AppendTo(buf []byte) []byte { return m.M.AppendTo(buf) }

// DecodeFrom decodes m from data and returns the remainder.
func (m *SkeenData) DecodeFrom(data []byte) ([]byte, error) { return m.M.DecodeFrom(data) }

// AppendTo appends m's wire encoding.
func (m SkeenProp) AppendTo(buf []byte) []byte {
	buf = m.ID.AppendTo(buf)
	return wire.AppendUvarint(buf, m.TS)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *SkeenProp) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.ID, data, err = types.DecodeMessageID(data); err != nil {
		return nil, err
	}
	m.TS, data, err = wire.Uvarint(data)
	return data, err
}
