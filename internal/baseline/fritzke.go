package baseline

import (
	"time"

	"wanamcast/internal/amcast"
	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
)

// NewFritzke builds the Fritzke et al. [5] atomic multicast: the A1 engine
// with both of A1's optimizations disabled, exactly the contrast §4.1
// draws. Every message traverses all four stages (two consensus instances,
// even single-group messages and groups whose proposal is the maximum), and
// the initial cast uses the eager (uniform-style) reliable multicast, which
// relays every copy and therefore sends O(k²d²) messages where A1's direct
// primitive sends d(k−1).
//
// Latency degree: 2, like A1 — the extra consensus instances are
// intra-group and do not add inter-group delays. The cost shows up in the
// message and consensus-instance counts instead (see the stage-skipping
// ablation benchmark).
func NewFritzke(host node.Registrar, det fd.Detector, onDeliver func(rmcast.Message), retry time.Duration) *amcast.Mcast {
	return amcast.New(amcast.Config{
		Host:           host,
		Detector:       det,
		OnDeliver:      onDeliver,
		SkipStages:     false,
		RMMode:         rmcast.ModeEager,
		ConsensusRetry: retry,
		LabelPrefix:    "fritzke",
	})
}
