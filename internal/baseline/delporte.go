package baseline

import (
	"fmt"
	"time"

	"wanamcast/internal/consensus"
	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// Delporte is the Delporte-Gallet & Fauconnier [4] genuine atomic
// multicast, as described in §6: the destination groups of a message are
// visited in a fixed order (ascending group ID); each group runs intra-
// group consensus to fix the message's timestamp and hands it over to the
// next group; the last group announces the final timestamp to every
// destination process; and, to avoid cycles in the delivery order, a group
// handles one multi-group message at a time, waiting for the final
// announcement before taking the next.
//
// Latency degree: k+1 for k destination groups (1 hop to the first group,
// k−1 handovers, 1 final announcement), the linear-in-k row of Figure 1(a).
// Inter-group messages: O(kd²) — each hop is a d×d exchange — the cheapest
// of the fault-tolerant multicasts, which is exactly the latency/bandwidth
// trade-off the paper's §6 discusses.
type Delporte struct {
	api       node.API
	onDeliver func(rmcast.Message)
	label     string
	cons      *consensus.Consensus

	k         uint64
	propK     uint64
	castSeqN  uint64
	busy      *types.MessageID // multi-group message being processed, if any
	queue     []*dgPend        // admitted, not yet timestamped by this group
	queued    map[types.MessageID]bool
	processed map[types.MessageID]bool // timestamped (or delivered) by this group
	decisions map[uint64][]DGItem
	delivered map[types.MessageID]bool
}

type dgPend struct {
	msg rmcast.Message
	ts  uint64 // timestamp carried from previous groups
}

// DGItem is the consensus value element: one message picked for
// timestamping by this group.
type DGItem struct {
	ID      types.MessageID
	Dest    types.GroupSet
	Payload any
	TS      uint64 // carried timestamp
}

// Delporte wire messages, exported for gob registration.
type (
	// DGData carries the message from the caster to the first group.
	DGData struct{ M rmcast.Message }
	// DGHandover passes the message and its timestamp-so-far to the next
	// destination group.
	DGHandover struct {
		Item DGItem
	}
	// DGFinal announces the final timestamp to all destination processes.
	DGFinal struct {
		Item DGItem
	}
)

// DelporteConfig configures a Delporte endpoint.
type DelporteConfig struct {
	Host      node.Registrar
	Detector  fd.Detector
	OnDeliver func(rmcast.Message)
	// ConsensusRetry overrides the consensus retry interval.
	ConsensusRetry time.Duration
	// ProtoLabel overrides the wire label (default "dg").
	ProtoLabel string
}

var _ node.Protocol = (*Delporte)(nil)

// NewDelporte builds a Delporte endpoint and registers it on the host.
func NewDelporte(cfg DelporteConfig) *Delporte {
	if cfg.Host == nil || cfg.Detector == nil {
		panic("baseline: DelporteConfig.Host and Detector are required")
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "dg"
	}
	d := &Delporte{
		api:       cfg.Host,
		onDeliver: cfg.OnDeliver,
		label:     label,
		k:         1,
		propK:     1,
		queued:    make(map[types.MessageID]bool),
		processed: make(map[types.MessageID]bool),
		decisions: make(map[uint64][]DGItem),
		delivered: make(map[types.MessageID]bool),
	}
	d.cons = consensus.New(consensus.Config{
		API:           cfg.Host,
		Detector:      cfg.Detector,
		OnDecide:      d.onDecide,
		RetryInterval: cfg.ConsensusRetry,
		ProtoLabel:    label + ".cons",
	})
	cfg.Host.Register(d.cons)
	cfg.Host.Register(d)
	return d
}

// Proto implements node.Protocol.
func (d *Delporte) Proto() string { return d.label }

// Start implements node.Protocol.
func (d *Delporte) Start() {}

// AMCast multicasts payload to dest: the message is shipped to the first
// destination group, which starts the handover chain.
func (d *Delporte) AMCast(payload any, dest types.GroupSet) types.MessageID {
	if dest.Size() == 0 {
		panic("baseline: Delporte A-MCast with empty destination")
	}
	id := types.MessageID{Origin: d.api.Self(), Seq: d.nextSeq()}
	d.api.RecordCast(id)
	m := rmcast.Message{ID: id, Dest: dest, Payload: payload}
	first := dest.Groups()[0]
	d.api.Multicast(d.api.Topo().Members(first), d.label, DGData{M: m})
	return id
}

func (d *Delporte) nextSeq() uint64 {
	d.castSeqN++
	return d.castSeqN
}

// Receive implements node.Protocol.
func (d *Delporte) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case DGData:
		d.admit(DGItem{ID: m.M.ID, Dest: m.M.Dest, Payload: m.M.Payload, TS: 0})
	case DGHandover:
		d.admit(m.Item)
	case DGFinal:
		d.onFinal(m.Item)
	default:
		panic(fmt.Sprintf("baseline: delporte unexpected message %T", body))
	}
}

// admit enqueues a message for this group's consensus.
func (d *Delporte) admit(item DGItem) {
	if d.delivered[item.ID] || d.processed[item.ID] || d.queued[item.ID] {
		return
	}
	d.queued[item.ID] = true
	d.queue = append(d.queue, &dgPend{
		msg: rmcast.Message{ID: item.ID, Dest: item.Dest, Payload: item.Payload},
		ts:  item.TS,
	})
	d.tryPropose()
}

// tryPropose proposes the head of the queue when the group is idle: one
// multi-group message at a time (the paper's serialization), but
// single-group messages can batch freely.
func (d *Delporte) tryPropose() {
	if d.propK > d.k || d.busy != nil || len(d.queue) == 0 {
		return
	}
	head := d.queue[0]
	d.cons.Propose(d.k, []DGItem{{
		ID:      head.msg.ID,
		Dest:    head.msg.Dest,
		Payload: head.msg.Payload,
		TS:      head.ts,
	}})
	d.propK = d.k + 1
}

func (d *Delporte) onDecide(inst uint64, v consensus.Value) {
	set, ok := v.([]DGItem)
	if !ok {
		panic(fmt.Sprintf("baseline: delporte consensus decided unexpected value %T", v))
	}
	d.decisions[inst] = set
	for {
		cur, ok := d.decisions[d.k]
		if !ok {
			return
		}
		delete(d.decisions, d.k)
		d.processDecision(cur)
	}
}

func (d *Delporte) processDecision(set []DGItem) {
	for _, item := range set {
		// Assign this group's timestamp: past the carried one and past
		// everything this group assigned before.
		ts := item.TS
		if d.k > ts {
			ts = d.k
		}
		d.k = ts + 1
		d.processed[item.ID] = true
		d.dropFromQueue(item.ID)
		item.TS = ts

		groups := item.Dest.Groups()
		myIdx := -1
		for i, g := range groups {
			if g == d.api.Group() {
				myIdx = i
				break
			}
		}
		if myIdx < 0 {
			panic(fmt.Sprintf("baseline: delporte %v decided %v not addressed to its group", d.api.Self(), item.ID))
		}
		switch {
		case len(groups) == 1:
			// Single destination group: deliver in consensus order.
			d.deliver(item)
		case myIdx == len(groups)-1:
			// Last group: announce the final timestamp everywhere.
			d.api.Multicast(d.api.Topo().ProcessesIn(item.Dest), d.label, DGFinal{Item: item})
		default:
			// Hand over to the next group and serialize until the final
			// announcement returns.
			id := item.ID
			d.busy = &id
			next := groups[myIdx+1]
			d.api.Multicast(d.api.Topo().Members(next), d.label, DGHandover{Item: item})
		}
	}
	d.propK = d.k // allow proposing the new instance
	d.tryPropose()
}

func (d *Delporte) dropFromQueue(id types.MessageID) {
	for i, p := range d.queue {
		if p.msg.ID == id {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	delete(d.queued, id)
}

func (d *Delporte) onFinal(item DGItem) {
	if d.busy != nil && *d.busy == item.ID {
		// Release serialization and advance the clock past the final
		// timestamp so later messages order after it.
		d.busy = nil
		if item.TS >= d.k {
			d.k = item.TS + 1
		}
	}
	d.deliver(item)
	d.tryPropose()
}

func (d *Delporte) deliver(item DGItem) {
	if d.delivered[item.ID] {
		return
	}
	d.delivered[item.ID] = true
	d.api.RecordDeliver(item.ID)
	if d.onDeliver != nil {
		d.onDeliver(rmcast.Message{ID: item.ID, Dest: item.Dest, Payload: item.Payload})
	}
}
