package baseline

import (
	"fmt"
	"sort"
	"time"

	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// DetMerge is the Aguilera & Strom [1] deterministic-merge broadcast/
// multicast. Its model is stronger than the paper's (§6, footnote): links
// are reliable, publishers never crash, and every publisher casts
// infinitely many messages to every subscriber — realised here with
// periodic empty heartbeats that carry the publisher's stream clock.
//
// Every process is a publisher. A cast travels directly to its destination
// processes (latency degree 1, O(kd) messages — the strong-model reference
// rows of Figure 1). A subscriber delivers the message with stream
// timestamp t once it has heard every publisher's stream reach t, merging
// deterministically by (timestamp, publisher, sequence).
//
// Heartbeats are labelled "<proto>.hb" so the Figure 1 benchmarks can
// report the per-cast message cost separately from the background stream,
// mirroring the paper's accounting (whose model assumes the stream exists
// anyway).
type DetMerge struct {
	api       node.API
	onDeliver func(rmcast.Message)
	label     string
	interval  time.Duration
	stopAfter time.Duration

	castSeq   uint64
	streams   map[types.ProcessID]uint64 // latest stream ts heard per publisher
	buffer    []*dmEntry
	delivered map[types.MessageID]bool
}

type dmEntry struct {
	ts  uint64
	msg rmcast.Message
}

// DetMerge wire messages, exported for gob registration.
type (
	// DMData is a cast: a stream element with content.
	DMData struct {
		TS uint64
		M  rmcast.Message
	}
	// DMHeartbeat advances the publisher's stream without content.
	DMHeartbeat struct {
		TS uint64
	}
)

// DetMergeConfig configures a DetMerge endpoint.
type DetMergeConfig struct {
	Host      node.Registrar
	OnDeliver func(rmcast.Message)
	// Interval is the heartbeat period (default 10 ms). All processes beat
	// at the same virtual instants, as [1]'s synchronized publishers do.
	Interval time.Duration
	// StopAfter, if positive, stops the heartbeat stream after that time so
	// finite simulations drain; [1]'s model runs it forever.
	StopAfter time.Duration
	// ProtoLabel overrides the wire label (default "dm").
	ProtoLabel string
}

var _ node.Protocol = (*DetMerge)(nil)

// NewDetMerge builds a deterministic-merge endpoint and registers it.
func NewDetMerge(cfg DetMergeConfig) *DetMerge {
	if cfg.Host == nil {
		panic("baseline: DetMergeConfig.Host is required")
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "dm"
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	d := &DetMerge{
		api:       cfg.Host,
		onDeliver: cfg.OnDeliver,
		label:     label,
		interval:  interval,
		stopAfter: cfg.StopAfter,
		streams:   make(map[types.ProcessID]uint64),
		delivered: make(map[types.MessageID]bool),
	}
	cfg.Host.Register(d)
	cfg.Host.Register(dmHeartbeats{d})
	return d
}

// dmHeartbeats routes the separately-labelled heartbeat stream back into
// the endpoint; the distinct label lets benchmarks account the background
// stream apart from per-cast traffic.
type dmHeartbeats struct{ d *DetMerge }

func (h dmHeartbeats) Proto() string { return h.d.label + ".hb" }
func (h dmHeartbeats) Start()        {}
func (h dmHeartbeats) Receive(from types.ProcessID, body any) {
	h.d.Receive(from, body)
}

// Proto implements node.Protocol.
func (d *DetMerge) Proto() string { return d.label }

// Start implements node.Protocol: it begins the heartbeat stream.
func (d *DetMerge) Start() {
	d.api.After(d.interval, d.beat)
}

// beat advances this publisher's stream and schedules the next beat.
func (d *DetMerge) beat() {
	if d.stopAfter > 0 && d.api.Now() > d.stopAfter {
		return // stream stopped; finite simulations drain here
	}
	ts := d.now()
	d.streams[d.api.Self()] = ts
	var tos []types.ProcessID
	self := d.api.Self()
	for _, q := range d.api.Topo().AllProcesses() {
		if q != self {
			tos = append(tos, q)
		}
	}
	d.api.Multicast(tos, d.label+".hb", DMHeartbeat{TS: ts})
	d.tryDeliver()
	d.api.After(d.interval, d.beat)
}

// now is the publisher's stream clock: virtual nanoseconds plus one,
// identical across publishers at the synchronized beat instants. The +1
// keeps the zero value of the streams map meaning "nothing heard yet",
// even for casts at virtual time zero.
func (d *DetMerge) now() uint64 { return uint64(d.api.Now()) + 1 }

// AMCast casts payload to dest as the next element of this publisher's
// stream.
func (d *DetMerge) AMCast(payload any, dest types.GroupSet) types.MessageID {
	if dest.Size() == 0 {
		panic("baseline: DetMerge A-MCast with empty destination")
	}
	d.castSeq++
	id := types.MessageID{Origin: d.api.Self(), Seq: d.castSeq}
	d.api.RecordCast(id)
	m := rmcast.Message{ID: id, Dest: dest, Payload: payload}
	ts := d.now()
	d.streams[d.api.Self()] = ts
	// The cast is itself a stream element for its destinations; everyone
	// else sees the stream advance through the next heartbeat.
	self := d.api.Self()
	var tos []types.ProcessID
	selfAddressed := false
	for _, q := range d.api.Topo().ProcessesIn(dest) {
		if q == self {
			selfAddressed = true
			continue
		}
		tos = append(tos, q)
	}
	d.api.Multicast(tos, d.label, DMData{TS: ts, M: m})
	if selfAddressed {
		d.buffer = append(d.buffer, &dmEntry{ts: ts, msg: m})
		// Merge asynchronously: A-Delivering inside the A-MCast call would
		// reorder against the caller's own bookkeeping.
		d.api.After(0, d.tryDeliver)
	}
	return id
}

// Receive implements node.Protocol.
func (d *DetMerge) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case DMData:
		if d.streams[from] < m.TS {
			d.streams[from] = m.TS
		}
		if !d.delivered[m.M.ID] {
			d.buffer = append(d.buffer, &dmEntry{ts: m.TS, msg: m.M})
		}
		d.tryDeliver()
	case DMHeartbeat:
		if d.streams[from] < m.TS {
			d.streams[from] = m.TS
		}
		d.tryDeliver()
	default:
		panic(fmt.Sprintf("baseline: detmerge unexpected message %T", body))
	}
}

// tryDeliver merges deterministically: an element (ts, pub, seq) is
// deliverable once every publisher's stream has reached ts.
func (d *DetMerge) tryDeliver() {
	sort.Slice(d.buffer, func(i, j int) bool {
		a, b := d.buffer[i], d.buffer[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.msg.ID.Less(b.msg.ID)
	})
	for len(d.buffer) > 0 {
		head := d.buffer[0]
		for _, pub := range d.api.Topo().AllProcesses() {
			if d.streams[pub] < head.ts {
				return
			}
		}
		d.buffer = d.buffer[1:]
		if d.delivered[head.msg.ID] {
			continue
		}
		d.delivered[head.msg.ID] = true
		d.api.RecordDeliver(head.msg.ID)
		if d.onDeliver != nil {
			d.onDeliver(head.msg)
		}
	}
}
