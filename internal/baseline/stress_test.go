package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestDelporteOverlappingChainsNoDeadlock floods the system with
// multi-group messages whose destination chains overlap every way
// possible. Because chains always traverse groups in ascending order, the
// wait-for graph of the one-at-a-time serialization is acyclic, so the
// run must drain — MaxSteps turns a deadlock or livelock into a failure —
// and every message must deliver consistently.
func TestDelporteOverlappingChainsNoDeadlock(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newRig(t, 4, 2, buildDelporte)
			rng := rand.New(rand.NewSource(seed))
			destSets := [][]types.GroupID{
				{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3},
			}
			for i := 0; i < 25; i++ {
				from := types.ProcessID(rng.Intn(8))
				dest := destSets[rng.Intn(len(destSets))]
				at := time.Duration(rng.Intn(200)) * time.Millisecond
				r.rt.Scheduler().At(at, func() { r.amcast(from, dest...) })
			}
			r.rt.Scheduler().MaxSteps = 10_000_000
			r.rt.Run() // draining proves the wait-for graph stayed acyclic
			r.verify(t)
		})
	}
}

// TestSeqBcastConcurrentCastersBurst: many casters in the same instant;
// the sequencer's numbers must produce one gap-free order everywhere.
func TestSeqBcastConcurrentCastersBurst(t *testing.T) {
	for _, uniform := range []bool{false, true} {
		r := newBrig(t, 3, 2, uniform)
		for p := 0; p < 6; p++ {
			r.bcast(types.ProcessID(p))
		}
		r.rt.Run()
		if v := r.checker.Check(nil, func(types.MessageID) bool { return true }); len(v) != 0 {
			t.Fatalf("uniform=%v: %v", uniform, v)
		}
		ref := r.checker.Sequence(0)
		if len(ref) != 6 {
			t.Fatalf("uniform=%v: p0 delivered %d of 6", uniform, len(ref))
		}
		for _, p := range r.topo.AllProcesses()[1:] {
			seq := r.checker.Sequence(p)
			for i := range ref {
				if seq[i] != ref[i] {
					t.Fatalf("uniform=%v: order diverges at p%v[%d]", uniform, p, i)
				}
			}
		}
	}
}

// TestDetMergeManySlots: several slotted rounds of casts interleaved with
// heartbeats; merge order must be globally consistent across slots.
func TestDetMergeManySlots(t *testing.T) {
	r := newRig(t, 2, 2, buildDetMerge)
	for slot := 0; slot < 4; slot++ {
		slot := slot
		at := time.Duration(5+slot*40) * time.Millisecond
		r.rt.Scheduler().At(at, func() {
			for p := 0; p < 4; p++ {
				r.amcast(types.ProcessID(p), 0, 1)
			}
		})
	}
	r.rt.Run()
	r.verify(t)
	for _, p := range r.topo.AllProcesses() {
		if got := len(r.checker.Sequence(p)); got != 16 {
			t.Fatalf("p%v delivered %d of 16", p, got)
		}
	}
}

// TestSkeenBurstAllToAll: every process multicasts to every group at once;
// the pure-timestamp protocol must still totally order the burst.
func TestSkeenBurstAllToAll(t *testing.T) {
	r := newRig(t, 3, 2, buildSkeen)
	for p := 0; p < 6; p++ {
		r.amcast(types.ProcessID(p), 0, 1, 2)
	}
	r.rt.Run()
	r.verify(t)
	ref := r.checker.Sequence(0)
	if len(ref) != 6 {
		t.Fatalf("p0 delivered %d of 6", len(ref))
	}
}
