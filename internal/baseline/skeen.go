// Package baseline implements the comparison algorithms of the paper's
// Figure 1: Skeen's multicast [2], Fritzke et al. [5], Delporte-Gallet &
// Fauconnier [4], Rodrigues et al. [10], Aguilera & Strom's deterministic
// merge [1], Sousa et al.'s optimistic total order [12], and Vicente &
// Rodrigues' multi-sequencer protocol [13].
//
// Each implementation reproduces the two quantities Figure 1 reports — the
// latency degree and the inter-group message complexity — from the
// descriptions in the paper's related-work section (§6) and the original
// papers' structure. See DESIGN.md §5 for the fidelity notes.
package baseline

import (
	"fmt"

	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// Skeen is Skeen's atomic multicast [2], designed for failure-free systems:
// every destination process proposes a local-clock timestamp, proposals are
// exchanged all-to-all among destination processes, the final timestamp is
// the maximum, and messages are delivered in (timestamp, id) order.
//
// Latency degree: 2 (one hop for the message, one for the proposals) —
// optimal by the paper's Proposition 3.1, a fact §1 points out went
// unnoticed for twenty years. Inter-group messages: O(k²d²).
type Skeen struct {
	api       node.API
	onDeliver func(rmcast.Message)
	label     string

	lc        uint64
	castSeq   uint64
	pending   map[types.MessageID]*skPend
	props     map[types.MessageID]map[types.ProcessID]uint64
	delivered map[types.MessageID]bool
}

type skPend struct {
	msg   rmcast.Message
	ts    uint64 // own proposal, then the final max
	final bool
}

func (p *skPend) less(q *skPend) bool {
	if p.ts != q.ts {
		return p.ts < q.ts
	}
	return p.msg.ID.Less(q.msg.ID)
}

// Skeen wire messages, exported for gob registration.
type (
	// SkeenData carries the multicast message to its destinations.
	SkeenData struct{ M rmcast.Message }
	// SkeenProp is a timestamp proposal exchanged among destinations.
	SkeenProp struct {
		ID types.MessageID
		TS uint64
	}
)

// SkeenConfig configures a Skeen endpoint.
type SkeenConfig struct {
	Host      node.Registrar
	OnDeliver func(rmcast.Message)
	// ProtoLabel overrides the wire label (default "skeen").
	ProtoLabel string
}

var _ node.Protocol = (*Skeen)(nil)

// NewSkeen builds a Skeen endpoint and registers it on the host.
func NewSkeen(cfg SkeenConfig) *Skeen {
	if cfg.Host == nil {
		panic("baseline: SkeenConfig.Host is required")
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "skeen"
	}
	s := &Skeen{
		api:       cfg.Host,
		onDeliver: cfg.OnDeliver,
		label:     label,
		pending:   make(map[types.MessageID]*skPend),
		props:     make(map[types.MessageID]map[types.ProcessID]uint64),
		delivered: make(map[types.MessageID]bool),
	}
	cfg.Host.Register(s)
	return s
}

// Proto implements node.Protocol.
func (s *Skeen) Proto() string { return s.label }

// Start implements node.Protocol.
func (s *Skeen) Start() {}

// AMCast multicasts payload to dest.
func (s *Skeen) AMCast(payload any, dest types.GroupSet) types.MessageID {
	if dest.Size() == 0 {
		panic("baseline: Skeen A-MCast with empty destination")
	}
	s.castSeq++
	id := types.MessageID{Origin: s.api.Self(), Seq: s.castSeq}
	s.api.RecordCast(id)
	m := rmcast.Message{ID: id, Dest: dest, Payload: payload}
	s.api.Multicast(s.api.Topo().ProcessesIn(dest), s.label, SkeenData{M: m})
	return id
}

// Receive implements node.Protocol.
func (s *Skeen) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case SkeenData:
		s.onData(m.M)
	case SkeenProp:
		s.onProp(from, m)
	default:
		panic(fmt.Sprintf("baseline: skeen unexpected message %T", body))
	}
}

func (s *Skeen) onData(m rmcast.Message) {
	if s.delivered[m.ID] {
		return
	}
	if _, ok := s.pending[m.ID]; ok {
		return
	}
	s.lc++
	p := &skPend{msg: m, ts: s.lc}
	s.pending[m.ID] = p
	// Propose to every other destination process; our own proposal is
	// already in p.ts.
	var tos []types.ProcessID
	self := s.api.Self()
	for _, q := range s.api.Topo().ProcessesIn(m.Dest) {
		if q != self {
			tos = append(tos, q)
		}
	}
	s.api.Multicast(tos, s.label, SkeenProp{ID: m.ID, TS: p.ts})
	s.checkFinal(m.ID)
}

func (s *Skeen) onProp(from types.ProcessID, m SkeenProp) {
	if s.delivered[m.ID] {
		return
	}
	props := s.props[m.ID]
	if props == nil {
		props = make(map[types.ProcessID]uint64)
		s.props[m.ID] = props
	}
	if _, seen := props[from]; !seen {
		props[from] = m.TS
	}
	s.checkFinal(m.ID)
}

// checkFinal fixes the final timestamp once every other destination process
// has proposed.
func (s *Skeen) checkFinal(id types.MessageID) {
	p, ok := s.pending[id]
	if !ok || p.final {
		return
	}
	props := s.props[id]
	self := s.api.Self()
	max := p.ts
	for _, q := range s.api.Topo().ProcessesIn(p.msg.Dest) {
		if q == self {
			continue
		}
		ts, seen := props[q]
		if !seen {
			return
		}
		if ts > max {
			max = ts
		}
	}
	p.ts = max
	p.final = true
	if max > s.lc {
		s.lc = max
	}
	delete(s.props, id)
	s.tryDeliver()
}

// tryDeliver delivers final messages whose (ts, id) is minimal among all
// pending messages. Non-final pending timestamps are lower bounds (the
// final timestamp is a maximum over proposals), so the rule is safe.
func (s *Skeen) tryDeliver() {
	for {
		var min *skPend
		for _, p := range s.pending {
			if min == nil || p.less(min) {
				min = p
			}
		}
		if min == nil || !min.final {
			return
		}
		id := min.msg.ID
		s.delivered[id] = true
		delete(s.pending, id)
		s.api.RecordDeliver(id)
		if s.onDeliver != nil {
			s.onDeliver(min.msg)
		}
	}
}
