package baseline

import (
	"fmt"

	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// Rodrigues is the Rodrigues, Guerraoui & Schiper [10] "scalable atomic
// multicast", as described in §6: destination processes associate the
// message with local-clock timestamps, exchange them, and then run a
// consensus spanning all destination processes on the maximum value.
// Because that consensus crosses groups, it costs two further inter-group
// delays — the reason the paper calls the algorithm "not well-suited for
// wide area networks".
//
// The four inter-group hops are: (1) the message to all destinations,
// (2) the all-to-all timestamp proposals, (3) the all-to-all estimate
// round of the spanning consensus, and (4) its all-to-all commit round.
// Latency degree: 4. Inter-group messages: O(k²d²).
//
// This reproduction targets the failure-free benchmark runs of Figure 1
// (the spanning consensus completes when every destination responds, which
// is the best case the paper's accounting assumes).
type Rodrigues struct {
	api       node.API
	onDeliver func(rmcast.Message)
	label     string

	lc        uint64
	castSeq   uint64
	pending   map[types.MessageID]*rgPend
	delivered map[types.MessageID]bool
}

type rgPend struct {
	msg     rmcast.Message
	ts      uint64 // own proposal, then max, then final
	props   map[types.ProcessID]uint64
	ests    map[types.ProcessID]uint64
	commits map[types.ProcessID]uint64
	phase   int // 0 = proposing, 1 = estimating, 2 = committing, 3 = final
}

func (p *rgPend) less(q *rgPend) bool {
	if p.ts != q.ts {
		return p.ts < q.ts
	}
	return p.msg.ID.Less(q.msg.ID)
}

// Rodrigues wire messages, exported for gob registration.
type (
	// RGData carries the multicast message to its destinations.
	RGData struct{ M rmcast.Message }
	// RGProp is a local-clock timestamp proposal.
	RGProp struct {
		ID types.MessageID
		TS uint64
	}
	// RGEst is the estimate round of the spanning consensus.
	RGEst struct {
		ID types.MessageID
		TS uint64
	}
	// RGCommit is the commit round of the spanning consensus.
	RGCommit struct {
		ID types.MessageID
		TS uint64
	}
)

// RodriguesConfig configures a Rodrigues endpoint.
type RodriguesConfig struct {
	Host      node.Registrar
	OnDeliver func(rmcast.Message)
	// ProtoLabel overrides the wire label (default "rg").
	ProtoLabel string
}

var _ node.Protocol = (*Rodrigues)(nil)

// NewRodrigues builds a Rodrigues endpoint and registers it on the host.
func NewRodrigues(cfg RodriguesConfig) *Rodrigues {
	if cfg.Host == nil {
		panic("baseline: RodriguesConfig.Host is required")
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "rg"
	}
	r := &Rodrigues{
		api:       cfg.Host,
		onDeliver: cfg.OnDeliver,
		label:     label,
		pending:   make(map[types.MessageID]*rgPend),
		delivered: make(map[types.MessageID]bool),
	}
	cfg.Host.Register(r)
	return r
}

// Proto implements node.Protocol.
func (r *Rodrigues) Proto() string { return r.label }

// Start implements node.Protocol.
func (r *Rodrigues) Start() {}

// AMCast multicasts payload to dest.
func (r *Rodrigues) AMCast(payload any, dest types.GroupSet) types.MessageID {
	if dest.Size() == 0 {
		panic("baseline: Rodrigues A-MCast with empty destination")
	}
	r.castSeq++
	id := types.MessageID{Origin: r.api.Self(), Seq: r.castSeq}
	r.api.RecordCast(id)
	m := rmcast.Message{ID: id, Dest: dest, Payload: payload}
	r.api.Multicast(r.api.Topo().ProcessesIn(dest), r.label, RGData{M: m})
	return id
}

// Receive implements node.Protocol.
func (r *Rodrigues) Receive(from types.ProcessID, body any) {
	if d, ok := body.(RGData); ok && r.delivered[d.M.ID] {
		return
	}
	if id, ok := phaseMsgID(body); ok && r.delivered[id] {
		return // late phase traffic for a delivered message
	}
	switch m := body.(type) {
	case RGData:
		r.onData(m.M)
	case RGProp:
		p := r.pend(m.ID)
		if _, seen := p.props[from]; !seen {
			p.props[from] = m.TS
		}
		r.advance(m.ID)
	case RGEst:
		p := r.pend(m.ID)
		if _, seen := p.ests[from]; !seen {
			p.ests[from] = m.TS
		}
		r.advance(m.ID)
	case RGCommit:
		p := r.pend(m.ID)
		if _, seen := p.commits[from]; !seen {
			p.commits[from] = m.TS
		}
		r.advance(m.ID)
	default:
		panic(fmt.Sprintf("baseline: rodrigues unexpected message %T", body))
	}
}

// phaseMsgID extracts the message ID from a phase message, if body is one.
func phaseMsgID(body any) (types.MessageID, bool) {
	switch m := body.(type) {
	case RGProp:
		return m.ID, true
	case RGEst:
		return m.ID, true
	case RGCommit:
		return m.ID, true
	default:
		return types.MessageID{}, false
	}
}

// pend returns the record for id, creating a shell if phases raced ahead of
// the data message.
func (r *Rodrigues) pend(id types.MessageID) *rgPend {
	p, ok := r.pending[id]
	if !ok {
		p = &rgPend{
			props:   make(map[types.ProcessID]uint64),
			ests:    make(map[types.ProcessID]uint64),
			commits: make(map[types.ProcessID]uint64),
			phase:   -1, // data not yet seen
		}
		r.pending[id] = p
	}
	return p
}

func (r *Rodrigues) onData(m rmcast.Message) {
	if r.delivered[m.ID] {
		return
	}
	p := r.pend(m.ID)
	if p.phase >= 0 {
		return // duplicate
	}
	p.msg = m
	p.phase = 0
	r.lc++
	p.ts = r.lc
	p.props[r.api.Self()] = p.ts
	r.sendToDest(m.Dest, RGProp{ID: m.ID, TS: p.ts})
	r.advance(m.ID)
}

// sendToDest multisends body to every destination process but self.
func (r *Rodrigues) sendToDest(dest types.GroupSet, body any) {
	self := r.api.Self()
	var tos []types.ProcessID
	for _, q := range r.api.Topo().ProcessesIn(dest) {
		if q != self {
			tos = append(tos, q)
		}
	}
	r.api.Multicast(tos, r.label, body)
}

// advance moves id through the proposal → estimate → commit → final phases
// as the all-to-all rounds complete.
func (r *Rodrigues) advance(id types.MessageID) {
	p := r.pending[id]
	if p == nil || p.phase < 0 || r.delivered[id] {
		return
	}
	all := r.api.Topo().ProcessesIn(p.msg.Dest)
	complete := func(got map[types.ProcessID]uint64) bool {
		for _, q := range all {
			if q == r.api.Self() {
				continue
			}
			if _, ok := got[q]; !ok {
				return false
			}
		}
		return true
	}
	maxOf := func(got map[types.ProcessID]uint64, base uint64) uint64 {
		max := base
		for _, ts := range got {
			if ts > max {
				max = ts
			}
		}
		return max
	}
	if p.phase == 0 && complete(p.props) {
		est := maxOf(p.props, p.ts)
		p.ts = est
		p.phase = 1
		p.ests[r.api.Self()] = est
		r.sendToDest(p.msg.Dest, RGEst{ID: id, TS: est})
	}
	if p.phase == 1 && complete(p.ests) {
		commit := maxOf(p.ests, p.ts)
		p.ts = commit
		p.phase = 2
		p.commits[r.api.Self()] = commit
		r.sendToDest(p.msg.Dest, RGCommit{ID: id, TS: commit})
	}
	if p.phase == 2 && complete(p.commits) {
		p.ts = maxOf(p.commits, p.ts)
		if p.ts > r.lc {
			r.lc = p.ts
		}
		p.phase = 3
		r.tryDeliver()
	}
}

// tryDeliver delivers final messages whose (ts, id) is minimal among all
// pending messages (pending timestamps only grow toward their final value,
// so they are lower bounds).
func (r *Rodrigues) tryDeliver() {
	for {
		var min *rgPend
		var minID types.MessageID
		for id, p := range r.pending {
			if p.phase < 0 {
				continue // shell without data: unknown ts, cannot order yet
			}
			if min == nil || p.less(min) {
				min = p
				minID = id
			}
		}
		if min == nil || min.phase != 3 {
			return
		}
		r.delivered[minID] = true
		delete(r.pending, minID)
		r.api.RecordDeliver(minID)
		if r.onDeliver != nil {
			r.onDeliver(min.msg)
		}
	}
}
