package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// mcaster is the uniform casting surface of the multicast baselines.
type mcaster interface {
	AMCast(payload any, dest types.GroupSet) types.MessageID
}

type rig struct {
	topo    *types.Topology
	rt      *node.Runtime
	col     *metrics.Collector
	checker *check.Checker
	cast    []mcaster
}

func newRig(t *testing.T, groups, per int, build func(host node.Registrar, rt *node.Runtime, onDeliver func(rmcast.Message)) mcaster) *rig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, col)
	r := &rig{topo: topo, rt: rt, col: col, checker: check.New(topo), cast: make([]mcaster, topo.N())}
	for _, id := range topo.AllProcesses() {
		id := id
		r.cast[id] = build(rt.Proc(id), rt, func(m rmcast.Message) {
			r.checker.RecordDeliver(id, m.ID)
		})
	}
	rt.Start()
	return r
}

func (r *rig) amcast(from types.ProcessID, dest ...types.GroupID) types.MessageID {
	gs := types.NewGroupSet(dest...)
	id := r.cast[from].AMCast("x", gs)
	r.checker.RecordCast(id, gs)
	return id
}

func (r *rig) verify(t *testing.T) {
	t.Helper()
	if v := r.checker.Check(nil, func(types.MessageID) bool { return true }); len(v) != 0 {
		t.Fatalf("property violations:\n%v", v)
	}
}

func buildSkeen(host node.Registrar, _ *node.Runtime, onDeliver func(rmcast.Message)) mcaster {
	return NewSkeen(SkeenConfig{Host: host, OnDeliver: onDeliver})
}

func buildDelporte(host node.Registrar, rt *node.Runtime, onDeliver func(rmcast.Message)) mcaster {
	return NewDelporte(DelporteConfig{Host: host, Detector: rt.Oracle(), OnDeliver: onDeliver})
}

func buildRodrigues(host node.Registrar, _ *node.Runtime, onDeliver func(rmcast.Message)) mcaster {
	return NewRodrigues(RodriguesConfig{Host: host, OnDeliver: onDeliver})
}

func buildDetMerge(host node.Registrar, _ *node.Runtime, onDeliver func(rmcast.Message)) mcaster {
	return NewDetMerge(DetMergeConfig{Host: host, OnDeliver: onDeliver, Interval: 20 * time.Millisecond, StopAfter: 2 * time.Second})
}

var multicastBuilders = map[string]func(node.Registrar, *node.Runtime, func(rmcast.Message)) mcaster{
	"skeen":     buildSkeen,
	"delporte":  buildDelporte,
	"rodrigues": buildRodrigues,
	"detmerge":  buildDetMerge,
}

// TestMulticastBaselinesSingleMessage: every baseline delivers a 2-group
// multicast exactly once at every destination and nowhere else.
func TestMulticastBaselinesSingleMessage(t *testing.T) {
	for name, build := range multicastBuilders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, 3, 2, build)
			id := r.amcast(0, 0, 1)
			r.rt.Run()
			for _, p := range r.topo.AllProcesses() {
				want := 0
				if r.topo.GroupOf(p) != 2 {
					want = 1
				}
				got := 0
				for _, d := range r.checker.Sequence(p) {
					if d == id {
						got++
					}
				}
				if got != want {
					t.Errorf("p%v delivered %d, want %d", p, got, want)
				}
			}
			r.verify(t)
		})
	}
}

// TestMulticastBaselinesConcurrent: concurrent conflicting multicasts must
// satisfy uniform prefix order under every baseline.
func TestMulticastBaselinesConcurrent(t *testing.T) {
	for name, build := range multicastBuilders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, 2, 2, build)
			r.amcast(0, 0, 1)
			r.amcast(2, 0, 1)
			r.amcast(1, 0, 1)
			r.rt.Run()
			r.verify(t)
		})
	}
}

// TestMulticastBaselinesRandomWorkload: randomized destinations and times.
func TestMulticastBaselinesRandomWorkload(t *testing.T) {
	for name, build := range multicastBuilders {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, 3, 2, build)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 15; i++ {
				from := types.ProcessID(rng.Intn(6))
				var dest []types.GroupID
				for g := 0; g < 3; g++ {
					if rng.Intn(2) == 0 {
						dest = append(dest, types.GroupID(g))
					}
				}
				if len(dest) == 0 {
					dest = []types.GroupID{0}
				}
				at := time.Duration(rng.Intn(400)) * time.Millisecond
				r.rt.Scheduler().At(at, func() { r.amcast(from, dest...) })
			}
			r.rt.Run()
			r.verify(t)
		})
	}
}

// TestSkeenMessageComplexity: data kd−1 copies plus all-to-all proposals.
func TestSkeenMessageComplexity(t *testing.T) {
	r := newRig(t, 2, 3, buildSkeen)
	r.amcast(0, 0, 1)
	r.rt.Run()
	st := r.col.Snapshot()
	// data: 5 copies (self uncounted); proposals: 6 destinations × 5 = 30.
	if st.TotalMessages != 35 {
		t.Errorf("total = %d, want 35", st.TotalMessages)
	}
}

// TestDelporteSerializesPerGroup: with two in-flight multi-group messages,
// the shared group must process them one at a time and all orders agree.
func TestDelporteSerializesPerGroup(t *testing.T) {
	r := newRig(t, 3, 2, buildDelporte)
	r.amcast(0, 0, 1)
	r.amcast(0, 0, 1, 2)
	r.amcast(2, 1, 2)
	r.rt.Run()
	r.verify(t)
}

// TestDelporteSingleGroup: single-group messages deliver in consensus order
// with no inter-group traffic.
func TestDelporteSingleGroup(t *testing.T) {
	r := newRig(t, 2, 3, buildDelporte)
	r.amcast(0, 0)
	r.amcast(1, 0)
	r.rt.Run()
	r.verify(t)
	if st := r.col.Snapshot(); st.InterGroupMessages != 0 {
		t.Errorf("single-group casts sent %d inter-group messages", st.InterGroupMessages)
	}
}

// TestDelporteChainVisitsGroupsInOrder: inter-group sends climb the group
// chain g0 → g1 → g2 and the final hop fans back.
func TestDelporteChainVisitsGroupsInOrder(t *testing.T) {
	topo := types.NewTopology(3, 2)
	col := &metrics.Collector{LogSends: true}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, col)
	checker := check.New(topo)
	eps := make([]*Delporte, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = NewDelporte(DelporteConfig{Host: rt.Proc(id), Detector: rt.Oracle(),
			OnDeliver: func(m rmcast.Message) { checker.RecordDeliver(id, m.ID) }})
	}
	rt.Start()
	gs := types.NewGroupSet(0, 1, 2)
	mid := eps[0].AMCast("x", gs)
	checker.RecordCast(mid, gs)
	rt.Run()
	sawHandover01, sawHandover12 := false, false
	for _, s := range col.Sends() {
		if s.Proto != "dg" {
			continue
		}
		gFrom, gTo := topo.GroupOf(s.From), topo.GroupOf(s.To)
		if gFrom == 0 && gTo == 2 {
			// Only the final announcement may jump 0→2, and it must come
			// from the last group — so a dg message from g0 to g2 before
			// g2 was reached is a chain violation. The final announcement
			// is sent by g2, so from g0 only handovers to g1 are legal.
			t.Errorf("g0 sent dg message directly to g2")
		}
		if gFrom == 0 && gTo == 1 {
			sawHandover01 = true
		}
		if gFrom == 1 && gTo == 2 {
			sawHandover12 = true
		}
	}
	if !sawHandover01 || !sawHandover12 {
		t.Error("handover chain incomplete")
	}
	if v := checker.Check(nil, nil); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestRodriguesPhases: commits only happen after estimates complete; the
// delivery count is right even with interleaved messages.
func TestRodriguesInterleaved(t *testing.T) {
	r := newRig(t, 2, 2, buildRodrigues)
	a := r.amcast(0, 0, 1)
	b := r.amcast(3, 0, 1)
	r.rt.Run()
	r.verify(t)
	for _, p := range r.topo.AllProcesses() {
		if len(r.checker.Sequence(p)) != 2 {
			t.Fatalf("p%v delivered %d", p, len(r.checker.Sequence(p)))
		}
	}
	_ = a
	_ = b
}

// TestDetMergeHeartbeatsDriveDelivery: a single cast is held until every
// publisher's stream passes it, then delivered in merge order.
func TestDetMergeHeartbeatsDriveDelivery(t *testing.T) {
	r := newRig(t, 2, 2, buildDetMerge)
	var id types.MessageID
	r.rt.Scheduler().At(5*time.Millisecond, func() { id = r.amcast(0, 0, 1) })
	// Before the next beats propagate, nothing can deliver.
	r.rt.RunUntil(100 * time.Millisecond)
	for _, p := range r.topo.AllProcesses() {
		if len(r.checker.Sequence(p)) != 0 {
			t.Fatalf("p%v delivered before the streams advanced", p)
		}
	}
	r.rt.Run()
	for _, p := range r.topo.AllProcesses() {
		if len(r.checker.Sequence(p)) != 1 || r.checker.Sequence(p)[0] != id {
			t.Fatalf("p%v did not deliver after streams advanced", p)
		}
	}
	r.verify(t)
}

// TestDetMergeMergeOrderIsByTimestamp: casts from different slots deliver
// in slot order everywhere.
func TestDetMergeMergeOrderIsByTimestamp(t *testing.T) {
	r := newRig(t, 2, 2, buildDetMerge)
	var a, b types.MessageID
	r.rt.Scheduler().At(5*time.Millisecond, func() { a = r.amcast(3, 0, 1) })
	r.rt.Scheduler().At(25*time.Millisecond, func() { b = r.amcast(0, 0, 1) })
	r.rt.Run()
	for _, p := range r.topo.AllProcesses() {
		seq := r.checker.Sequence(p)
		if len(seq) != 2 || seq[0] != a || seq[1] != b {
			t.Fatalf("p%v order = %v, want [%v %v]", p, seq, a, b)
		}
	}
	r.verify(t)
}

// TestDetMergeStopsBeating: after StopAfter, the stream ends and the run
// drains.
func TestDetMergeStopsBeating(t *testing.T) {
	r := newRig(t, 2, 1, buildDetMerge)
	r.amcast(0, 0, 1)
	r.rt.Run() // must terminate
	if r.rt.Now() > 3*time.Second {
		t.Errorf("run did not drain promptly: %v", r.rt.Now())
	}
}

// --- sequencer broadcasts ---

type brig struct {
	topo    *types.Topology
	rt      *node.Runtime
	col     *metrics.Collector
	checker *check.Checker
	eps     []*SeqBcast
	opt     []int
}

func newBrig(t *testing.T, groups, per int, uniform bool) *brig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, col)
	r := &brig{topo: topo, rt: rt, col: col, checker: check.New(topo), eps: make([]*SeqBcast, topo.N()), opt: make([]int, topo.N())}
	for _, id := range topo.AllProcesses() {
		id := id
		r.eps[id] = NewSeqBcast(SeqBcastConfig{
			Host:    rt.Proc(id),
			Uniform: uniform,
			OnDeliver: func(mid types.MessageID, payload any) {
				r.checker.RecordDeliver(id, mid)
			},
			OnOptimistic: func(mid types.MessageID, payload any) {
				r.opt[id]++
			},
		})
	}
	rt.Start()
	return r
}

func (r *brig) bcast(from types.ProcessID) types.MessageID {
	id := r.eps[from].ABCast("x")
	r.checker.RecordCast(id, r.topo.AllGroups())
	return id
}

func TestSeqBcastTotalOrder(t *testing.T) {
	for _, uniform := range []bool{false, true} {
		t.Run(fmt.Sprintf("uniform=%v", uniform), func(t *testing.T) {
			r := newBrig(t, 2, 2, uniform)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 10; i++ {
				from := types.ProcessID(rng.Intn(4))
				r.rt.Scheduler().At(time.Duration(rng.Intn(300))*time.Millisecond, func() { r.bcast(from) })
			}
			r.rt.Run()
			if v := r.checker.Check(nil, func(types.MessageID) bool { return true }); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
			ref := r.checker.Sequence(0)
			if len(ref) != 10 {
				t.Fatalf("p0 delivered %d of 10", len(ref))
			}
		})
	}
}

func TestSeqBcastOptimisticPrecedesFinal(t *testing.T) {
	r := newBrig(t, 2, 2, true)
	r.bcast(1)
	r.rt.Run()
	for _, p := range r.topo.AllProcesses() {
		if r.opt[p] != 1 {
			t.Errorf("p%v optimistic deliveries = %d, want 1", p, r.opt[p])
		}
	}
}

func TestSeqBcastMessageComplexity(t *testing.T) {
	// Sousa: n−1 data + n−1 seq = O(n). Vicente adds (n−1)(n−1) echoes
	// minus the sequencer's (its SEQ doubles as its echo) = O(n²).
	nonUniform := newBrig(t, 2, 2, false)
	nonUniform.bcast(0)
	nonUniform.rt.Run()
	su := nonUniform.col.Snapshot().TotalMessages

	uniform := newBrig(t, 2, 2, true)
	uniform.bcast(0)
	uniform.rt.Run()
	vi := uniform.col.Snapshot().TotalMessages

	if su != 6 { // 3 data + 3 seq (n=4, self copies uncounted)
		t.Errorf("sousa messages = %d, want 6", su)
	}
	if vi != su+9 { // 3 non-sequencer processes × 3 echoes each
		t.Errorf("vicente messages = %d, want %d", vi, su+9)
	}
}

func TestSeqBcastSequencerIsCaster(t *testing.T) {
	r := newBrig(t, 2, 2, true)
	id := r.bcast(0) // process 0 is the default sequencer
	r.rt.Run()
	for _, p := range r.topo.AllProcesses() {
		if len(r.checker.Sequence(p)) != 1 || r.checker.Sequence(p)[0] != id {
			t.Fatalf("p%v sequence wrong", p)
		}
	}
}
