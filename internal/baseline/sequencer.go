package baseline

import (
	"fmt"

	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// SeqBcast implements the two sequencer-based atomic broadcasts of
// Figure 1(b):
//
//   - Sousa et al. [12] (Uniform=false): the sender ships m to every
//     process; a fixed sequencer assigns m its sequence number and ships it
//     to every process; delivery follows sequence order. Latency degree 2,
//     O(n) messages, non-uniform (a process may deliver and crash before
//     anyone else learns the sequence number).
//
//   - Vicente & Rodrigues [13] (Uniform=true): same skeleton, but every
//     receiver of m echoes an acknowledgment to every process, and final
//     delivery additionally waits for a majority of echoes — the
//     validation that makes the protocol uniform. The echoes travel in
//     parallel with the sequence number, so the latency degree stays 2
//     while messages grow to O(n²).
//
// Both papers also feature optimistic deliveries (at latency degree 1);
// this reproduction implements the final (atomic) delivery, which is what
// Figure 1 compares, and reports the optimistic event through OnOptimistic
// for completeness.
type SeqBcast struct {
	api       node.API
	onDeliver func(id types.MessageID, payload any)
	onOpt     func(id types.MessageID, payload any)
	label     string
	uniform   bool
	sequencer types.ProcessID

	castSeq  uint64
	seqNext  uint64 // next sequence number (sequencer only)
	deliverN uint64 // next sequence number to deliver
	data     map[types.MessageID]any
	haveData map[types.MessageID]bool
	seqOf    map[uint64]types.MessageID
	acks     map[types.MessageID]map[types.ProcessID]bool
	optDone  map[types.MessageID]bool
}

// SeqBcast wire messages, exported for gob registration.
type (
	// SBData carries the broadcast message to every process.
	SBData struct {
		ID      types.MessageID
		Payload any
	}
	// SBSeq announces the sequence number assigned to a message.
	SBSeq struct {
		ID  types.MessageID
		Seq uint64
	}
	// SBAck is the uniform variant's validation echo.
	SBAck struct {
		ID types.MessageID
	}
)

// SeqBcastConfig configures a sequencer-broadcast endpoint.
type SeqBcastConfig struct {
	Host      node.Registrar
	OnDeliver func(id types.MessageID, payload any)
	// OnOptimistic, if set, receives the optimistic delivery events.
	OnOptimistic func(id types.MessageID, payload any)
	// Uniform selects the Vicente & Rodrigues [13] validation variant.
	Uniform bool
	// Sequencer fixes the sequencer process (default: process 0).
	Sequencer types.ProcessID
	// ProtoLabel overrides the wire label (default "sb").
	ProtoLabel string
}

var _ node.Protocol = (*SeqBcast)(nil)

// NewSeqBcast builds a sequencer-broadcast endpoint and registers it.
func NewSeqBcast(cfg SeqBcastConfig) *SeqBcast {
	if cfg.Host == nil {
		panic("baseline: SeqBcastConfig.Host is required")
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "sb"
	}
	s := &SeqBcast{
		api:       cfg.Host,
		onDeliver: cfg.OnDeliver,
		onOpt:     cfg.OnOptimistic,
		label:     label,
		uniform:   cfg.Uniform,
		sequencer: cfg.Sequencer,
		seqNext:   1,
		deliverN:  1,
		data:      make(map[types.MessageID]any),
		haveData:  make(map[types.MessageID]bool),
		seqOf:     make(map[uint64]types.MessageID),
		acks:      make(map[types.MessageID]map[types.ProcessID]bool),
		optDone:   make(map[types.MessageID]bool),
	}
	cfg.Host.Register(s)
	return s
}

// Proto implements node.Protocol.
func (s *SeqBcast) Proto() string { return s.label }

// Start implements node.Protocol.
func (s *SeqBcast) Start() {}

// ABCast broadcasts payload to all processes.
func (s *SeqBcast) ABCast(payload any) types.MessageID {
	s.castSeq++
	id := types.MessageID{Origin: s.api.Self(), Seq: s.castSeq}
	s.api.RecordCast(id)
	s.api.Multicast(s.api.Topo().AllProcesses(), s.label, SBData{ID: id, Payload: payload})
	return id
}

// Receive implements node.Protocol.
func (s *SeqBcast) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case SBData:
		s.onData(m)
	case SBSeq:
		if _, dup := s.seqOf[m.Seq]; !dup {
			s.seqOf[m.Seq] = m.ID
		}
		if s.uniform {
			s.ack(m.ID, from) // the sequence number carries the sequencer's vote
		}
		s.tryDeliver()
	case SBAck:
		s.ack(m.ID, from)
		s.tryDeliver()
	default:
		panic(fmt.Sprintf("baseline: seqbcast unexpected message %T", body))
	}
}

func (s *SeqBcast) onData(m SBData) {
	if s.haveData[m.ID] {
		return
	}
	s.haveData[m.ID] = true
	s.data[m.ID] = m.Payload
	if s.api.Self() == s.sequencer {
		seq := s.seqNext
		s.seqNext++
		s.seqOf[seq] = m.ID
		s.api.Multicast(s.api.Topo().AllProcesses(), s.label, SBSeq{ID: m.ID, Seq: seq})
	}
	if s.uniform {
		// Validation echo to everyone, in parallel with the sequencing.
		// The sequencer's SBSeq doubles as its echo (one fan-out, one
		// clock tick — as in [13], where the sequence number carries the
		// sequencer's vote).
		s.ack(m.ID, s.api.Self())
		if s.api.Self() != s.sequencer {
			var tos []types.ProcessID
			self := s.api.Self()
			for _, q := range s.api.Topo().AllProcesses() {
				if q != self {
					tos = append(tos, q)
				}
			}
			s.api.Multicast(tos, s.label, SBAck{ID: m.ID})
		}
	}
	s.tryDeliver()
}

func (s *SeqBcast) ack(id types.MessageID, from types.ProcessID) {
	set := s.acks[id]
	if set == nil {
		set = make(map[types.ProcessID]bool)
		s.acks[id] = set
	}
	set[from] = true
}

// tryDeliver delivers messages in sequence order once their data (and, for
// the uniform variant, a majority of validation echoes) has arrived.
func (s *SeqBcast) tryDeliver() {
	for {
		id, ok := s.seqOf[s.deliverN]
		if !ok || !s.haveData[id] {
			return
		}
		if s.onOpt != nil && !s.optDone[id] {
			s.optDone[id] = true
			s.onOpt(id, s.data[id])
		}
		if s.uniform && len(s.acks[id]) <= s.api.Topo().N()/2 {
			return
		}
		delete(s.seqOf, s.deliverN)
		s.deliverN++
		s.api.RecordDeliver(id)
		if s.onDeliver != nil {
			s.onDeliver(id, s.data[id])
		}
		delete(s.data, id)
	}
}
