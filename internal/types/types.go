// Package types defines the process, group, and message identifiers shared
// by every protocol in the repository, together with the static topology
// (the paper's Π and Γ, §2.1).
//
// All protocols in this module are written against these types; they carry
// no behaviour beyond identity, ordering, and topology lookups, so that the
// simulated and the live TCP runtimes can share every protocol
// implementation unchanged.
package types

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process in Π. IDs are dense, starting at 0, and
// are assigned group by group (see NewTopology), so intra-group neighbours
// have adjacent IDs.
type ProcessID int

// GroupID identifies a group in Γ. IDs are dense, starting at 0.
type GroupID int

// String implements fmt.Stringer.
func (p ProcessID) String() string { return fmt.Sprintf("p%d", int(p)) }

// String implements fmt.Stringer.
func (g GroupID) String() string { return fmt.Sprintf("g%d", int(g)) }

// NoProcess is the zero-less sentinel for "no process" (e.g. no leader yet).
const NoProcess ProcessID = -1

// MessageID uniquely identifies an application message across the system
// and provides the total order used to break timestamp ties (Algorithm A1,
// line 4: (m.ts, m.id) lexicographic comparison).
type MessageID struct {
	// Origin is the process that cast the message.
	Origin ProcessID
	// Seq is the per-origin cast sequence number, starting at 1.
	Seq uint64
}

// String implements fmt.Stringer.
func (id MessageID) String() string { return fmt.Sprintf("m(%d,%d)", id.Origin, id.Seq) }

// Less returns whether id orders strictly before other in the global total
// order on message identifiers. The order is lexicographic on (Origin, Seq);
// any deterministic total order satisfies the paper's requirement.
func (id MessageID) Less(other MessageID) bool {
	if id.Origin != other.Origin {
		return id.Origin < other.Origin
	}
	return id.Seq < other.Seq
}

// IsZero reports whether id is the zero MessageID (never assigned to a cast).
func (id MessageID) IsZero() bool { return id.Origin == 0 && id.Seq == 0 }

// AppendTo appends id's wire encoding (origin varint, seq uvarint).
func (id MessageID) AppendTo(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(id.Origin))
	return binary.AppendUvarint(buf, id.Seq)
}

// DecodeMessageID consumes one MessageID and returns the remainder.
func DecodeMessageID(data []byte) (MessageID, []byte, error) {
	origin, n := binary.Varint(data)
	if n <= 0 {
		return MessageID{}, nil, fmt.Errorf("types: corrupt MessageID origin")
	}
	data = data[n:]
	seq, n := binary.Uvarint(data)
	if n <= 0 {
		return MessageID{}, nil, fmt.Errorf("types: corrupt MessageID seq")
	}
	return MessageID{Origin: ProcessID(origin), Seq: seq}, data[n:], nil
}

// GroupSet is an immutable set of destination groups (m.dest in the paper).
// The zero value is the empty set. Construct with NewGroupSet.
type GroupSet struct {
	groups []GroupID // sorted, deduplicated
}

// NewGroupSet builds a set from the given groups, deduplicating and sorting.
func NewGroupSet(groups ...GroupID) GroupSet {
	gs := make([]GroupID, 0, len(groups))
	seen := make(map[GroupID]bool, len(groups))
	for _, g := range groups {
		if !seen[g] {
			seen[g] = true
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return GroupSet{groups: gs}
}

// Contains reports whether g is in the set.
func (s GroupSet) Contains(g GroupID) bool {
	for _, x := range s.groups {
		if x == g {
			return true
		}
		if x > g {
			return false
		}
	}
	return false
}

// Size returns the number of groups in the set.
func (s GroupSet) Size() int { return len(s.groups) }

// Groups returns the member groups in ascending order. The caller must not
// modify the returned slice.
func (s GroupSet) Groups() []GroupID { return s.groups }

// Equal reports whether both sets contain exactly the same groups.
func (s GroupSet) Equal(other GroupSet) bool {
	if len(s.groups) != len(other.groups) {
		return false
	}
	for i, g := range s.groups {
		if other.groups[i] != g {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s GroupSet) String() string {
	parts := make([]string, len(s.groups))
	for i, g := range s.groups {
		parts[i] = g.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// AppendTo appends the set's wire encoding: a uvarint count followed by one
// varint per group, in ascending order.
func (s GroupSet) AppendTo(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.groups)))
	for _, g := range s.groups {
		buf = binary.AppendVarint(buf, int64(g))
	}
	return buf
}

// DecodeGroupSet consumes one GroupSet and returns the remainder. Input that
// is not sorted and deduplicated (which AppendTo never produces) is
// re-canonicalised rather than rejected, so a decoded set always upholds the
// GroupSet invariant even on hostile bytes.
func DecodeGroupSet(data []byte) (GroupSet, []byte, error) {
	n, read := binary.Uvarint(data)
	if read <= 0 {
		return GroupSet{}, nil, fmt.Errorf("types: corrupt GroupSet header")
	}
	data = data[read:]
	if n > uint64(len(data)) { // each element takes at least one byte
		return GroupSet{}, nil, fmt.Errorf("types: GroupSet length %d exceeds input", n)
	}
	if n == 0 {
		return GroupSet{}, data, nil
	}
	groups := make([]GroupID, 0, n)
	canonical := true
	for i := uint64(0); i < n; i++ {
		v, read := binary.Varint(data)
		if read <= 0 {
			return GroupSet{}, nil, fmt.Errorf("types: corrupt GroupSet element %d", i)
		}
		data = data[read:]
		if len(groups) > 0 && groups[len(groups)-1] >= GroupID(v) {
			canonical = false
		}
		groups = append(groups, GroupID(v))
	}
	if !canonical {
		return NewGroupSet(groups...), data, nil
	}
	return GroupSet{groups: groups}, data, nil
}

// MarshalBinary implements encoding.BinaryMarshaler so GroupSets survive
// gob encoding on the live TCP transport despite the unexported field.
func (s GroupSet) MarshalBinary() ([]byte, error) {
	return s.AppendTo(make([]byte, 0, 2+4*len(s.groups))), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *GroupSet) UnmarshalBinary(data []byte) error {
	set, _, err := DecodeGroupSet(data)
	if err != nil {
		return err
	}
	*s = set
	return nil
}

// Topology is the static process/group layout (Π and Γ, §2.1). Groups are
// disjoint, non-empty, and cover Π. Topologies are immutable after creation.
//
// The lookup surface is built for hot paths at thousand-process scale:
// GroupOf and SameGroup are single flat-array reads (the panic for an
// unknown process is kept, but its message formatting lives out of line so
// the lookups inline), and AllProcesses/AllGroups answer from slices
// precomputed at construction instead of allocating per call.
type Topology struct {
	groupOf  []GroupID     // indexed by ProcessID
	members  [][]ProcessID // indexed by GroupID, ascending
	n        int
	numGroup int

	allProcs  []ProcessID // 0..n-1, precomputed
	allGroups GroupSet    // 0..numGroup-1, precomputed
}

// NewTopology builds a topology of numGroups groups with perGroup processes
// each. Process IDs are assigned contiguously: group g owns processes
// [g*perGroup, (g+1)*perGroup). It panics if either argument is < 1; the
// paper requires non-empty groups, and a system with no groups is
// meaningless.
func NewTopology(numGroups, perGroup int) *Topology {
	if numGroups < 1 || perGroup < 1 {
		panic(fmt.Sprintf("types: invalid topology %d groups x %d processes", numGroups, perGroup))
	}
	sizes := make([]int, numGroups)
	for i := range sizes {
		sizes[i] = perGroup
	}
	return NewIrregularTopology(sizes)
}

// NewIrregularTopology builds a topology whose i-th group has sizes[i]
// processes. It panics if sizes is empty or contains a non-positive size.
func NewIrregularTopology(sizes []int) *Topology {
	if len(sizes) == 0 {
		panic("types: topology needs at least one group")
	}
	t := &Topology{numGroup: len(sizes)}
	for g, size := range sizes {
		if size < 1 {
			panic(fmt.Sprintf("types: group %d has invalid size %d", g, size))
		}
		group := make([]ProcessID, 0, size)
		for i := 0; i < size; i++ {
			p := ProcessID(t.n)
			t.groupOf = append(t.groupOf, GroupID(g))
			group = append(group, p)
			t.n++
		}
		t.members = append(t.members, group)
	}
	t.allProcs = make([]ProcessID, t.n)
	for i := range t.allProcs {
		t.allProcs[i] = ProcessID(i)
	}
	gs := make([]GroupID, t.numGroup)
	for i := range gs {
		gs[i] = GroupID(i)
	}
	t.allGroups = GroupSet{groups: gs}
	return t
}

// unknownProcess is the out-of-line panic of the process lookups: keeping
// the fmt call out of GroupOf/SameGroup lets them inline into hot loops.
func unknownProcess(p ProcessID) {
	panic(fmt.Sprintf("types: unknown process %v", p))
}

// N returns |Π|, the total number of processes.
func (t *Topology) N() int { return t.n }

// NumGroups returns |Γ|.
func (t *Topology) NumGroups() int { return t.numGroup }

// GroupOf returns group(p). It panics on an unknown process.
func (t *Topology) GroupOf(p ProcessID) GroupID {
	if p < 0 || int(p) >= t.n {
		unknownProcess(p)
	}
	return t.groupOf[p]
}

// Members returns the processes of group g in ascending order. The caller
// must not modify the returned slice.
func (t *Topology) Members(g GroupID) []ProcessID {
	if g < 0 || int(g) >= t.numGroup {
		panic(fmt.Sprintf("types: unknown group %v", g))
	}
	return t.members[g]
}

// AllGroups returns every group ID in ascending order. The set is
// precomputed and shared (GroupSet is immutable).
func (t *Topology) AllGroups() GroupSet { return t.allGroups }

// AllProcesses returns every process ID in ascending order. The slice is
// precomputed and shared; the caller must not modify it (as with Members).
func (t *Topology) AllProcesses() []ProcessID { return t.allProcs }

// ProcessesIn returns, in ascending order, the processes belonging to any
// group in dest (the p ∈ m.dest abuse of notation from §2.2).
func (t *Topology) ProcessesIn(dest GroupSet) []ProcessID {
	var ps []ProcessID
	for _, g := range dest.Groups() {
		ps = append(ps, t.members[g]...)
	}
	return ps
}

// SameGroup reports whether p and q belong to the same group. One bounds
// check covers both lookups, so the per-message call costs two array reads.
func (t *Topology) SameGroup(p, q ProcessID) bool {
	if p < 0 || int(p) >= t.n {
		unknownProcess(p)
	}
	if q < 0 || int(q) >= t.n {
		unknownProcess(q)
	}
	return t.groupOf[p] == t.groupOf[q]
}
