package types

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

// TestGroupSetBinaryRoundtripQuick: MarshalBinary/UnmarshalBinary is the
// identity on every GroupSet (property-based).
func TestGroupSetBinaryRoundtripQuick(t *testing.T) {
	f := func(members []uint8) bool {
		gs := make([]GroupID, len(members))
		for i, m := range members {
			gs[i] = GroupID(m)
		}
		in := NewGroupSet(gs...)
		data, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out GroupSet
		if err := out.UnmarshalBinary(data); err != nil {
			return false
		}
		return in.Equal(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGroupSetGobRoundtrip: the gob path the live transport uses.
func TestGroupSetGobRoundtrip(t *testing.T) {
	in := NewGroupSet(2, 0, 5)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out GroupSet
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Fatalf("roundtrip: %v -> %v", in, out)
	}
}

// TestGroupSetGobEmpty: the zero set survives too.
func TestGroupSetGobEmpty(t *testing.T) {
	in := NewGroupSet()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out GroupSet
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 {
		t.Fatalf("roundtrip: empty -> %v", out)
	}
}

// TestUnmarshalBinaryCorrupt: truncated input errors instead of panicking.
func TestUnmarshalBinaryCorrupt(t *testing.T) {
	var gs GroupSet
	if err := gs.UnmarshalBinary(nil); err == nil {
		t.Error("nil input must error")
	}
	good, _ := NewGroupSet(1, 2, 3).MarshalBinary()
	if err := gs.UnmarshalBinary(good[:1]); err == nil {
		t.Error("truncated input must error")
	}
}
