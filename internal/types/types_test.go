package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMessageIDLessIsStrictTotalOrder(t *testing.T) {
	// Irreflexive, asymmetric, transitive, total — checked by enumeration
	// over a small grid.
	var ids []MessageID
	for o := 0; o < 4; o++ {
		for s := uint64(0); s < 4; s++ {
			ids = append(ids, MessageID{Origin: ProcessID(o), Seq: s})
		}
	}
	for _, a := range ids {
		if a.Less(a) {
			t.Errorf("Less is not irreflexive at %v", a)
		}
		for _, b := range ids {
			if a != b && a.Less(b) == b.Less(a) {
				t.Errorf("Less is not asymmetric/total at %v,%v", a, b)
			}
			for _, c := range ids {
				if a.Less(b) && b.Less(c) && !a.Less(c) {
					t.Errorf("Less is not transitive at %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestMessageIDLessQuick(t *testing.T) {
	f := func(o1, o2 int16, s1, s2 uint16) bool {
		a := MessageID{Origin: ProcessID(o1), Seq: uint64(s1)}
		b := MessageID{Origin: ProcessID(o2), Seq: uint64(s2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Origin: 3, Seq: 7}
	if got := id.String(); got != "m(3,7)" {
		t.Errorf("String() = %q", got)
	}
	if !(MessageID{}).IsZero() {
		t.Error("zero MessageID not IsZero")
	}
	if id.IsZero() {
		t.Error("non-zero MessageID reported IsZero")
	}
}

func TestNewGroupSetDeduplicatesAndSorts(t *testing.T) {
	s := NewGroupSet(3, 1, 3, 0, 1)
	got := s.Groups()
	want := []GroupID{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("Groups() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Groups() = %v, want %v", got, want)
		}
	}
	if s.Size() != 3 {
		t.Errorf("Size() = %d, want 3", s.Size())
	}
}

func TestGroupSetContains(t *testing.T) {
	s := NewGroupSet(0, 2, 5)
	for _, tc := range []struct {
		g    GroupID
		want bool
	}{{0, true}, {1, false}, {2, true}, {3, false}, {5, true}, {6, false}, {-1, false}} {
		if got := s.Contains(tc.g); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.g, got, tc.want)
		}
	}
}

func TestGroupSetEqual(t *testing.T) {
	if !NewGroupSet(1, 2).Equal(NewGroupSet(2, 1)) {
		t.Error("order must not matter")
	}
	if NewGroupSet(1).Equal(NewGroupSet(1, 2)) {
		t.Error("different sizes reported equal")
	}
	if NewGroupSet(1, 3).Equal(NewGroupSet(1, 2)) {
		t.Error("different members reported equal")
	}
	var zero GroupSet
	if !zero.Equal(NewGroupSet()) {
		t.Error("zero value must equal the empty set")
	}
}

func TestGroupSetString(t *testing.T) {
	if got := NewGroupSet(1, 0).String(); got != "{g0,g1}" {
		t.Errorf("String() = %q", got)
	}
}

func TestGroupSetContainsQuick(t *testing.T) {
	f := func(members []uint8, probe uint8) bool {
		gs := make([]GroupID, len(members))
		inSet := false
		for i, m := range members {
			gs[i] = GroupID(m)
			if m == probe {
				inSet = true
			}
		}
		return NewGroupSet(gs...).Contains(GroupID(probe)) == inSet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTopologyLayout(t *testing.T) {
	topo := NewTopology(3, 4)
	if topo.N() != 12 || topo.NumGroups() != 3 {
		t.Fatalf("N=%d groups=%d", topo.N(), topo.NumGroups())
	}
	for g := 0; g < 3; g++ {
		members := topo.Members(GroupID(g))
		if len(members) != 4 {
			t.Fatalf("group %d has %d members", g, len(members))
		}
		for i, p := range members {
			if int(p) != g*4+i {
				t.Errorf("group %d member %d = %v, want p%d", g, i, p, g*4+i)
			}
			if topo.GroupOf(p) != GroupID(g) {
				t.Errorf("GroupOf(%v) = %v, want g%d", p, topo.GroupOf(p), g)
			}
		}
	}
}

func TestNewIrregularTopology(t *testing.T) {
	topo := NewIrregularTopology([]int{1, 3, 2})
	if topo.N() != 6 {
		t.Fatalf("N = %d, want 6", topo.N())
	}
	if got := len(topo.Members(1)); got != 3 {
		t.Errorf("group 1 size = %d, want 3", got)
	}
	if topo.GroupOf(0) != 0 || topo.GroupOf(3) != 1 || topo.GroupOf(5) != 2 {
		t.Error("GroupOf misassigns irregular layout")
	}
}

func TestTopologyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero groups":     func() { NewTopology(0, 3) },
		"zero per group":  func() { NewTopology(3, 0) },
		"empty sizes":     func() { NewIrregularTopology(nil) },
		"negative size":   func() { NewIrregularTopology([]int{2, -1}) },
		"unknown process": func() { NewTopology(2, 2).GroupOf(99) },
		"unknown group":   func() { NewTopology(2, 2).Members(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProcessesIn(t *testing.T) {
	topo := NewTopology(3, 2)
	got := topo.ProcessesIn(NewGroupSet(0, 2))
	want := []ProcessID{0, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ProcessesIn = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProcessesIn = %v, want %v", got, want)
		}
	}
	if len(topo.ProcessesIn(NewGroupSet())) != 0 {
		t.Error("empty dest must yield no processes")
	}
}

func TestAllGroupsAllProcesses(t *testing.T) {
	topo := NewTopology(2, 2)
	if topo.AllGroups().Size() != 2 {
		t.Error("AllGroups size wrong")
	}
	if len(topo.AllProcesses()) != 4 {
		t.Error("AllProcesses size wrong")
	}
	if !topo.SameGroup(0, 1) || topo.SameGroup(1, 2) {
		t.Error("SameGroup wrong")
	}
}

// TestGroupsPartitionQuick verifies the §2.1 group axioms on random
// topologies: disjoint, non-empty, and covering Π.
func TestGroupsPartitionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		sizes := make([]int, 1+rng.Intn(6))
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(5)
		}
		topo := NewIrregularTopology(sizes)
		seen := make(map[ProcessID]int)
		for g := 0; g < topo.NumGroups(); g++ {
			members := topo.Members(GroupID(g))
			if len(members) == 0 {
				t.Fatal("empty group")
			}
			for _, p := range members {
				seen[p]++
			}
		}
		if len(seen) != topo.N() {
			t.Fatalf("groups do not cover Π: %d of %d", len(seen), topo.N())
		}
		for p, n := range seen {
			if n != 1 {
				t.Fatalf("%v appears in %d groups", p, n)
			}
		}
	}
}
