package network

import (
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/types"
)

func TestBaseDelays(t *testing.T) {
	topo := types.NewTopology(2, 2)
	m := Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}
	if d := m.Delay(topo, 0, 1, nil); d != time.Millisecond {
		t.Errorf("intra delay = %v", d)
	}
	if d := m.Delay(topo, 0, 2, nil); d != 100*time.Millisecond {
		t.Errorf("inter delay = %v", d)
	}
	if d := m.Delay(topo, 0, 0, nil); d != time.Millisecond {
		t.Errorf("self delay = %v (self counts as intra)", d)
	}
}

func TestZeroModel(t *testing.T) {
	topo := types.NewTopology(2, 2)
	var m Model
	if d := m.Delay(topo, 0, 3, nil); d != 0 {
		t.Errorf("zero model delay = %v", d)
	}
}

func TestJitterBounds(t *testing.T) {
	topo := types.NewTopology(2, 2)
	m := Model{IntraGroup: time.Millisecond, InterGroup: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	sawNonBase := false
	for i := 0; i < 200; i++ {
		d := m.Delay(topo, 0, 2, rng)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("jittered delay %v out of [10ms,15ms)", d)
		}
		if d != 10*time.Millisecond {
			sawNonBase = true
		}
	}
	if !sawNonBase {
		t.Error("jitter never moved the delay")
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	topo := types.NewTopology(2, 2)
	m := Model{InterGroup: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	sample := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = m.Delay(topo, 0, 2, rng)
		}
		return out
	}
	a, b := sample(7), sample(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("jitter not deterministic for equal seeds")
		}
	}
}

// TestJitterNeedsRNG pins the Delay contract: a jittered model with no rng
// is a wiring bug and panics rather than silently dropping the jitter.
func TestJitterNeedsRNG(t *testing.T) {
	topo := types.NewTopology(2, 2)
	m := Model{InterGroup: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	defer func() {
		if recover() == nil {
			t.Fatal("Delay with Jitter>0 and nil rng did not panic")
		}
	}()
	m.Delay(topo, 0, 2, nil)
}

func TestPairDelayOverride(t *testing.T) {
	topo := types.NewTopology(2, 2)
	m := Model{
		IntraGroup: time.Millisecond,
		InterGroup: 100 * time.Millisecond,
		PairDelay: func(from, to types.ProcessID) (time.Duration, bool) {
			if from == 0 && to == 2 {
				return 7 * time.Millisecond, true
			}
			return 0, false
		},
	}
	if d := m.Delay(topo, 0, 2, nil); d != 7*time.Millisecond {
		t.Errorf("override ignored: %v", d)
	}
	if d := m.Delay(topo, 2, 0, nil); d != 100*time.Millisecond {
		t.Errorf("non-overridden pair = %v, want base", d)
	}
}

func TestWANConstructor(t *testing.T) {
	m := WAN(50 * time.Millisecond)
	if m.IntraGroup != time.Millisecond || m.InterGroup != 50*time.Millisecond {
		t.Errorf("WAN model = %+v", m)
	}
}
