package network

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wanamcast/internal/types"
)

// Link is one directed (from, to) channel of the fabric. Every override —
// severing, delay, jitter — is directional: a symmetric fault is two links.
type Link struct {
	From, To types.ProcessID
}

// Fabric is a mutable, runtime-controllable link table layered over a base
// Model: the chaos surface of the repository. The base model answers for
// every link the fabric holds no override for; Sever/Heal, SetDelay, and
// SetJitter install per-link overrides at runtime, per (from, to) pair or
// per group-pair, symmetric or asymmetric.
//
// A severed link is still a quasi-reliable channel (§2.1): the runtimes do
// not LOSE messages sent across it, they withhold them — the simulator
// parks them until Heal, and the TCP transport parks outbound frames the
// way real TCP retransmission would carry them across a partition. A
// partition-then-heal is therefore an admissible run (arbitrary finite
// delay), so the §2.2 safety properties must hold throughout and liveness
// must resume after Heal.
//
// Fabric is safe for concurrent use: the simulator drives it from the
// scheduler goroutine, the live runtime consults it from read loops and
// writer goroutines while a scenario mutates it from a timer goroutine.
// The untouched-fabric fast path (no override ever installed) is a single
// atomic load, so runs without chaos pay nothing.
type Fabric struct {
	topo  *types.Topology
	model Model

	active atomic.Bool // any override ever installed

	mu      sync.Mutex
	severed map[Link]bool
	delays  map[Link]time.Duration
	jitters map[Link]time.Duration
	subs    []func(l Link, severed bool)
}

// NewFabric returns a fabric over topo whose every link initially behaves
// per base.
func NewFabric(topo *types.Topology, base Model) *Fabric {
	return &Fabric{
		topo:    topo,
		model:   base,
		severed: make(map[Link]bool),
		delays:  make(map[Link]time.Duration),
		jitters: make(map[Link]time.Duration),
	}
}

// Topo returns the topology the fabric spans.
func (f *Fabric) Topo() *types.Topology { return f.topo }

// Active reports whether any override was ever installed. A false answer
// means Severed is false and Delay equals the base model for every link —
// hot paths use it to skip locks the untouched fabric never needs.
func (f *Fabric) Active() bool { return f.active.Load() }

// Base returns the underlying static model.
func (f *Fabric) Base() Model { return f.model }

// OnTransition subscribes fn to sever/heal transitions: it runs once per
// link whose severed state actually changed, after the change is visible,
// outside the fabric's lock (so fn may query the fabric). Subscribe before
// the run starts; subscription is not synchronized against mutations.
func (f *Fabric) OnTransition(fn func(l Link, severed bool)) {
	f.subs = append(f.subs, fn)
}

// Severed reports whether the directed link from→to is currently severed.
func (f *Fabric) Severed(from, to types.ProcessID) bool {
	if !f.active.Load() {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.severed[Link{from, to}]
}

// Delay returns the current one-way delay for a message on from→to,
// applying the per-link delay/jitter overrides over the base model. rng
// feeds jitter draws; the Model.Delay contract applies (a jittered link
// needs an rng).
func (f *Fabric) Delay(from, to types.ProcessID, rng *rand.Rand) time.Duration {
	if !f.active.Load() {
		return f.model.Delay(f.topo, from, to, rng)
	}
	f.mu.Lock()
	d, hasD := f.delays[Link{from, to}]
	j, hasJ := f.jitters[Link{from, to}]
	f.mu.Unlock()
	if !hasD && !hasJ {
		return f.model.Delay(f.topo, from, to, rng)
	}
	m := f.model
	if hasD {
		// A per-link delay override replaces the base delay but keeps the
		// base jitter unless that is overridden too.
		m.IntraGroup, m.InterGroup, m.PairDelay = d, d, nil
	}
	if hasJ {
		m.Jitter = j
	}
	return m.Delay(f.topo, from, to, rng)
}

// Sever cuts the directed link from→to: the runtimes withhold everything
// sent across it until Heal. Severing a severed link is a no-op.
func (f *Fabric) Sever(from, to types.ProcessID) { f.apply([]Link{{from, to}}, true) }

// Heal restores the directed link from→to; withheld messages flow again.
func (f *Fabric) Heal(from, to types.ProcessID) { f.apply([]Link{{from, to}}, false) }

// SeverBidi cuts both directions between a and b.
func (f *Fabric) SeverBidi(a, b types.ProcessID) { f.apply([]Link{{a, b}, {b, a}}, true) }

// HealBidi restores both directions between a and b.
func (f *Fabric) HealBidi(a, b types.ProcessID) { f.apply([]Link{{a, b}, {b, a}}, false) }

// Isolate cuts every link between p and the rest of its group, both
// directions — the classic "node dropped off the LAN" fault. The failure
// detectors suspect p after their detection lag and restore trust after
// HealIsolate.
func (f *Fabric) Isolate(p types.ProcessID) { f.apply(f.isolationLinks(p), true) }

// HealIsolate undoes Isolate.
func (f *Fabric) HealIsolate(p types.ProcessID) { f.apply(f.isolationLinks(p), false) }

func (f *Fabric) isolationLinks(p types.ProcessID) []Link {
	var links []Link
	for _, q := range f.topo.Members(f.topo.GroupOf(p)) {
		if q != p {
			links = append(links, Link{p, q}, Link{q, p})
		}
	}
	return links
}

// Partition severs every link between the group sets a and b: both
// directions when symmetric, only a→b otherwise. Groups outside a∪b keep
// all their links; links within each side are untouched.
func (f *Fabric) Partition(a, b []types.GroupID, symmetric bool) {
	f.apply(f.crossLinks(a, b, symmetric), true)
}

// HealPartition restores the links Partition(a, b, symmetric) severed.
func (f *Fabric) HealPartition(a, b []types.GroupID, symmetric bool) {
	f.apply(f.crossLinks(a, b, symmetric), false)
}

// HealAll restores every severed link in one transition sweep. Transitions
// fire in (From, To) order — map iteration order must not leak into the
// subscribers, or the simulator's held-message release order (and its rng
// draw order) would vary across same-seed runs.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	var healed []Link
	for l := range f.severed {
		healed = append(healed, l)
		delete(f.severed, l)
	}
	f.mu.Unlock()
	sort.Slice(healed, func(i, j int) bool {
		if healed[i].From != healed[j].From {
			return healed[i].From < healed[j].From
		}
		return healed[i].To < healed[j].To
	})
	f.notify(healed, false)
}

// SetDelay overrides the one-way delay of the directed link from→to.
func (f *Fabric) SetDelay(from, to types.ProcessID, d time.Duration) {
	f.setDelay([]Link{{from, to}}, d)
}

// ClearDelay removes the delay override of from→to.
func (f *Fabric) ClearDelay(from, to types.ProcessID) { f.clearDelay([]Link{{from, to}}) }

// SetGroupDelay overrides the delay of every link between the group sets a
// and b (both directions when symmetric) — a WAN delay spike.
func (f *Fabric) SetGroupDelay(a, b []types.GroupID, d time.Duration, symmetric bool) {
	f.setDelay(f.crossLinks(a, b, symmetric), d)
}

// ClearGroupDelay removes the overrides SetGroupDelay installed.
func (f *Fabric) ClearGroupDelay(a, b []types.GroupID, symmetric bool) {
	f.clearDelay(f.crossLinks(a, b, symmetric))
}

// SetJitter overrides the jitter of the directed link from→to.
func (f *Fabric) SetJitter(from, to types.ProcessID, j time.Duration) {
	if j < 0 {
		panic(fmt.Sprintf("network: negative jitter %v", j))
	}
	f.active.Store(true)
	f.mu.Lock()
	f.jitters[Link{from, to}] = j
	f.mu.Unlock()
}

// ClearJitter removes the jitter override of from→to.
func (f *Fabric) ClearJitter(from, to types.ProcessID) {
	f.mu.Lock()
	delete(f.jitters, Link{from, to})
	f.mu.Unlock()
}

// crossLinks enumerates the directed links crossing from group set a to
// group set b (and back when symmetric), excluding self-links.
func (f *Fabric) crossLinks(a, b []types.GroupID, symmetric bool) []Link {
	var links []Link
	for _, ga := range a {
		for _, gb := range b {
			if ga == gb {
				continue
			}
			for _, p := range f.topo.Members(ga) {
				for _, q := range f.topo.Members(gb) {
					links = append(links, Link{p, q})
					if symmetric {
						links = append(links, Link{q, p})
					}
				}
			}
		}
	}
	return links
}

// apply flips the severed state of links to target and notifies
// subscribers of the actual transitions.
func (f *Fabric) apply(links []Link, target bool) {
	if target {
		f.active.Store(true)
	}
	f.mu.Lock()
	var changed []Link
	for _, l := range links {
		if f.severed[l] == target {
			continue
		}
		if target {
			f.severed[l] = true
		} else {
			delete(f.severed, l)
		}
		changed = append(changed, l)
	}
	f.mu.Unlock()
	f.notify(changed, target)
}

func (f *Fabric) notify(links []Link, severed bool) {
	for _, l := range links {
		for _, fn := range f.subs {
			fn(l, severed)
		}
	}
}

func (f *Fabric) setDelay(links []Link, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("network: negative delay %v", d))
	}
	f.active.Store(true)
	f.mu.Lock()
	for _, l := range links {
		f.delays[l] = d
	}
	f.mu.Unlock()
}

func (f *Fabric) clearDelay(links []Link) {
	f.mu.Lock()
	for _, l := range links {
		delete(f.delays, l)
	}
	f.mu.Unlock()
}
