package network

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wanamcast/internal/types"
)

// Link is one directed (from, to) channel of the fabric. Every override —
// severing, delay, jitter — is directional: a symmetric fault is two links.
type Link struct {
	From, To types.ProcessID
}

// overrides is one immutable snapshot of every installed link override.
// Mutations never touch a published snapshot: they clone it, edit the
// clone, and atomically swap the pointer, so readers (the simulator's
// per-send Route call, the TCP read loops and writer goroutines) consult
// the table with a single atomic load and zero locks.
type overrides struct {
	severed map[Link]bool
	delays  map[Link]time.Duration
	jitters map[Link]time.Duration
	bw      map[Link]int64 // bytes/s cap; overrides Model.Bandwidth
}

func (o *overrides) clone() *overrides {
	c := &overrides{
		severed: make(map[Link]bool, len(o.severed)),
		delays:  make(map[Link]time.Duration, len(o.delays)),
		jitters: make(map[Link]time.Duration, len(o.jitters)),
		bw:      make(map[Link]int64, len(o.bw)),
	}
	for l, v := range o.severed {
		c.severed[l] = v
	}
	for l, v := range o.delays {
		c.delays[l] = v
	}
	for l, v := range o.jitters {
		c.jitters[l] = v
	}
	for l, v := range o.bw {
		c.bw[l] = v
	}
	return c
}

// delay applies the snapshot's per-link overrides over the base model.
func (o *overrides) delay(m Model, topo *types.Topology, from, to types.ProcessID, rng *rand.Rand) time.Duration {
	l := Link{from, to}
	d, hasD := o.delays[l]
	j, hasJ := o.jitters[l]
	if !hasD && !hasJ {
		return m.Delay(topo, from, to, rng)
	}
	if hasD {
		// A per-link delay override replaces the base delay but keeps the
		// base jitter unless that is overridden too.
		m.IntraGroup, m.InterGroup, m.PairDelay = d, d, nil
	}
	if hasJ {
		m.Jitter = j
	}
	return m.Delay(topo, from, to, rng)
}

// Fabric is a mutable, runtime-controllable link table layered over a base
// Model: the chaos surface of the repository. The base model answers for
// every link the fabric holds no override for; Sever/Heal, SetDelay, and
// SetJitter install per-link overrides at runtime, per (from, to) pair or
// per group-pair, symmetric or asymmetric.
//
// A severed link is still a quasi-reliable channel (§2.1): the runtimes do
// not LOSE messages sent across it, they withhold them — the simulator
// parks them until Heal, and the TCP transport parks outbound frames the
// way real TCP retransmission would carry them across a partition. A
// partition-then-heal is therefore an admissible run (arbitrary finite
// delay), so the §2.2 safety properties must hold throughout and liveness
// must resume after Heal.
//
// Fabric is safe for concurrent use: the simulator drives it from the
// scheduler goroutine, the live runtime consults it from read loops and
// writer goroutines while a scenario mutates it from a timer goroutine.
// Reads are lock-free on every path: the override table is a read-mostly
// snapshot behind an atomic pointer, copied on each (rare) mutation. An
// untouched fabric (no override ever installed) answers with a single
// atomic load of nil, so runs without chaos pay nothing per message.
type Fabric struct {
	topo  *types.Topology
	model Model

	snap atomic.Pointer[overrides] // nil until the first override installs

	mu   sync.Mutex // serializes mutations (clone-edit-swap of snap)
	subs []func(l Link, severed bool)

	// bwAny flips true (and stays true) once any per-link bandwidth
	// override installs, so BandwidthOn stays one predictable branch plus
	// one atomic load on fabrics that never model bandwidth.
	bwAny atomic.Bool

	cmu      sync.Mutex // guards counters (creation only; counting is atomic)
	counters map[Link]*LinkCounter
}

// LinkCounter accumulates the traffic a runtime pushed onto one directed
// link: wire bytes (including frame length prefixes) and envelope count.
// Counting is atomic so writer goroutines share a counter lock-free; the
// fabric only locks to create one.
type LinkCounter struct {
	Bytes  atomic.Int64
	Frames atomic.Int64
}

// Count records one envelope of n wire bytes.
func (c *LinkCounter) Count(n int) {
	c.Bytes.Add(int64(n))
	c.Frames.Add(1)
}

// NewFabric returns a fabric over topo whose every link initially behaves
// per base.
func NewFabric(topo *types.Topology, base Model) *Fabric {
	return &Fabric{topo: topo, model: base}
}

// Topo returns the topology the fabric spans.
func (f *Fabric) Topo() *types.Topology { return f.topo }

// Active reports whether any override was ever installed. A false answer
// means Severed is false and Delay equals the base model for every link —
// hot paths use it to skip per-message bookkeeping the untouched fabric
// never needs.
func (f *Fabric) Active() bool { return f.snap.Load() != nil }

// Base returns the underlying static model.
func (f *Fabric) Base() Model { return f.model }

// OnTransition subscribes fn to sever/heal transitions: it runs once per
// link whose severed state actually changed, after the change is visible,
// outside the fabric's lock (so fn may query the fabric). Subscribe before
// the run starts; subscription is not synchronized against mutations.
func (f *Fabric) OnTransition(fn func(l Link, severed bool)) {
	f.subs = append(f.subs, fn)
}

// Severed reports whether the directed link from→to is currently severed.
func (f *Fabric) Severed(from, to types.ProcessID) bool {
	st := f.snap.Load()
	return st != nil && st.severed[Link{from, to}]
}

// Delay returns the current one-way delay for a message on from→to,
// applying the per-link delay/jitter overrides over the base model. rng
// feeds jitter draws; the Model.Delay contract applies (a jittered link
// needs an rng).
func (f *Fabric) Delay(from, to types.ProcessID, rng *rand.Rand) time.Duration {
	st := f.snap.Load()
	if st == nil {
		return f.model.Delay(f.topo, from, to, rng)
	}
	return st.delay(f.model, f.topo, from, to, rng)
}

// Route answers both per-transmit questions — is the link severed, and if
// not what is its delay — from ONE snapshot load, so the simulator's send
// hot path consults the fabric exactly once per message. A severed answer
// draws nothing from rng: parked messages take their delay when the link
// heals and they are released, which keeps the rng stream identical to a
// run that consulted Severed and Delay separately.
func (f *Fabric) Route(from, to types.ProcessID, rng *rand.Rand) (delay time.Duration, severed bool) {
	st := f.snap.Load()
	if st == nil {
		return f.model.Delay(f.topo, from, to, rng), false
	}
	if st.severed[Link{from, to}] {
		return 0, true
	}
	return st.delay(f.model, f.topo, from, to, rng), false
}

// Sever cuts the directed link from→to: the runtimes withhold everything
// sent across it until Heal. Severing a severed link is a no-op.
func (f *Fabric) Sever(from, to types.ProcessID) { f.apply([]Link{{from, to}}, true) }

// Heal restores the directed link from→to; withheld messages flow again.
func (f *Fabric) Heal(from, to types.ProcessID) { f.apply([]Link{{from, to}}, false) }

// SeverBidi cuts both directions between a and b.
func (f *Fabric) SeverBidi(a, b types.ProcessID) { f.apply([]Link{{a, b}, {b, a}}, true) }

// HealBidi restores both directions between a and b.
func (f *Fabric) HealBidi(a, b types.ProcessID) { f.apply([]Link{{a, b}, {b, a}}, false) }

// Isolate cuts every link between p and the rest of its group, both
// directions — the classic "node dropped off the LAN" fault. The failure
// detectors suspect p after their detection lag and restore trust after
// HealIsolate.
func (f *Fabric) Isolate(p types.ProcessID) { f.apply(f.isolationLinks(p), true) }

// HealIsolate undoes Isolate.
func (f *Fabric) HealIsolate(p types.ProcessID) { f.apply(f.isolationLinks(p), false) }

func (f *Fabric) isolationLinks(p types.ProcessID) []Link {
	var links []Link
	for _, q := range f.topo.Members(f.topo.GroupOf(p)) {
		if q != p {
			links = append(links, Link{p, q}, Link{q, p})
		}
	}
	return links
}

// Partition severs every link between the group sets a and b: both
// directions when symmetric, only a→b otherwise. Groups outside a∪b keep
// all their links; links within each side are untouched.
func (f *Fabric) Partition(a, b []types.GroupID, symmetric bool) {
	f.apply(f.crossLinks(a, b, symmetric), true)
}

// HealPartition restores the links Partition(a, b, symmetric) severed.
func (f *Fabric) HealPartition(a, b []types.GroupID, symmetric bool) {
	f.apply(f.crossLinks(a, b, symmetric), false)
}

// HealAll restores every severed link in one transition sweep. Transitions
// fire in (From, To) order — map iteration order must not leak into the
// subscribers, or the simulator's held-message release order (and its rng
// draw order) would vary across same-seed runs.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	cur := f.snap.Load()
	if cur == nil || len(cur.severed) == 0 {
		f.mu.Unlock()
		return
	}
	next := cur.clone()
	healed := make([]Link, 0, len(next.severed))
	for l := range next.severed {
		healed = append(healed, l)
		delete(next.severed, l)
	}
	f.snap.Store(next)
	f.mu.Unlock()
	sort.Slice(healed, func(i, j int) bool {
		if healed[i].From != healed[j].From {
			return healed[i].From < healed[j].From
		}
		return healed[i].To < healed[j].To
	})
	f.notify(healed, false)
}

// SetDelay overrides the one-way delay of the directed link from→to.
func (f *Fabric) SetDelay(from, to types.ProcessID, d time.Duration) {
	f.setDelay([]Link{{from, to}}, d)
}

// ClearDelay removes the delay override of from→to.
func (f *Fabric) ClearDelay(from, to types.ProcessID) { f.clearDelay([]Link{{from, to}}) }

// SetGroupDelay overrides the delay of every link between the group sets a
// and b (both directions when symmetric) — a WAN delay spike.
func (f *Fabric) SetGroupDelay(a, b []types.GroupID, d time.Duration, symmetric bool) {
	f.setDelay(f.crossLinks(a, b, symmetric), d)
}

// ClearGroupDelay removes the overrides SetGroupDelay installed.
func (f *Fabric) ClearGroupDelay(a, b []types.GroupID, symmetric bool) {
	f.clearDelay(f.crossLinks(a, b, symmetric))
}

// SetJitter overrides the jitter of the directed link from→to.
func (f *Fabric) SetJitter(from, to types.ProcessID, j time.Duration) {
	if j < 0 {
		panic(fmt.Sprintf("network: negative jitter %v", j))
	}
	f.mutate(func(st *overrides) {
		st.jitters[Link{from, to}] = j
	})
}

// ClearJitter removes the jitter override of from→to.
func (f *Fabric) ClearJitter(from, to types.ProcessID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.snap.Load()
	if cur == nil {
		return
	}
	next := cur.clone()
	delete(next.jitters, Link{from, to})
	f.snap.Store(next)
}

// SetBandwidth caps the directed link from→to at bytesPerSec, overriding
// the base model's Bandwidth for that link. A non-positive rate is a wiring
// bug (use ClearBandwidth to uncap) and panics.
func (f *Fabric) SetBandwidth(from, to types.ProcessID, bytesPerSec int64) {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("network: non-positive bandwidth %d", bytesPerSec))
	}
	f.mutate(func(st *overrides) {
		st.bw[Link{from, to}] = bytesPerSec
	})
	f.bwAny.Store(true)
}

// SetGroupBandwidth caps every link between the group sets a and b (both
// directions when symmetric) — a congested WAN segment.
func (f *Fabric) SetGroupBandwidth(a, b []types.GroupID, bytesPerSec int64, symmetric bool) {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("network: non-positive bandwidth %d", bytesPerSec))
	}
	links := f.crossLinks(a, b, symmetric)
	f.mutate(func(st *overrides) {
		for _, l := range links {
			st.bw[l] = bytesPerSec
		}
	})
	f.bwAny.Store(true)
}

// ClearBandwidth removes the bandwidth override of from→to; the link
// reverts to the base model's cap (or to uncapped).
func (f *Fabric) ClearBandwidth(from, to types.ProcessID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.snap.Load()
	if cur == nil {
		return
	}
	next := cur.clone()
	delete(next.bw, Link{from, to})
	f.snap.Store(next)
}

// BandwidthOn reports whether any link of this fabric is bandwidth-capped —
// by the base model or by an override, now or at any earlier point. Hot
// paths gate all per-message byte sizing on it, so an uncapped run pays
// nothing for the bandwidth machinery.
func (f *Fabric) BandwidthOn() bool {
	return f.model.Bandwidth > 0 || f.bwAny.Load()
}

// Bandwidth returns the current bytes/s cap of the directed link from→to,
// or 0 when the link is uncapped.
func (f *Fabric) Bandwidth(from, to types.ProcessID) int64 {
	if st := f.snap.Load(); st != nil {
		if bw, ok := st.bw[Link{from, to}]; ok {
			return bw
		}
	}
	return f.model.Bandwidth
}

// Counter returns the byte counter of the directed link from→to, creating
// it on first use. Callers cache the pointer and count lock-free.
func (f *Fabric) Counter(from, to types.ProcessID) *LinkCounter {
	l := Link{from, to}
	f.cmu.Lock()
	defer f.cmu.Unlock()
	if f.counters == nil {
		f.counters = make(map[Link]*LinkCounter)
	}
	c := f.counters[l]
	if c == nil {
		c = &LinkCounter{}
		f.counters[l] = c
	}
	return c
}

// BytesByLink snapshots every link counter: wire bytes by directed link.
func (f *Fabric) BytesByLink() map[Link]int64 {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	out := make(map[Link]int64, len(f.counters))
	for l, c := range f.counters {
		out[l] = c.Bytes.Load()
	}
	return out
}

// TotalBytes sums the wire bytes counted across every link of the fabric.
func (f *Fabric) TotalBytes() int64 {
	f.cmu.Lock()
	defer f.cmu.Unlock()
	var n int64
	for _, c := range f.counters {
		n += c.Bytes.Load()
	}
	return n
}

// crossLinks enumerates the directed links crossing from group set a to
// group set b (and back when symmetric), excluding self-links.
func (f *Fabric) crossLinks(a, b []types.GroupID, symmetric bool) []Link {
	var links []Link
	for _, ga := range a {
		for _, gb := range b {
			if ga == gb {
				continue
			}
			for _, p := range f.topo.Members(ga) {
				for _, q := range f.topo.Members(gb) {
					links = append(links, Link{p, q})
					if symmetric {
						links = append(links, Link{q, p})
					}
				}
			}
		}
	}
	return links
}

// mutate installs overrides through the clone-edit-swap protocol, creating
// the first snapshot on demand.
func (f *Fabric) mutate(edit func(st *overrides)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.snap.Load()
	var next *overrides
	if cur == nil {
		next = (&overrides{}).clone() // empty maps, ready to edit
	} else {
		next = cur.clone()
	}
	edit(next)
	f.snap.Store(next)
}

// apply flips the severed state of links to target and notifies
// subscribers of the actual transitions.
func (f *Fabric) apply(links []Link, target bool) {
	f.mu.Lock()
	cur := f.snap.Load()
	if cur == nil {
		if !target {
			// Healing links on an untouched fabric changes nothing.
			f.mu.Unlock()
			return
		}
		cur = (&overrides{}).clone()
	}
	next := cur.clone()
	var changed []Link
	for _, l := range links {
		if next.severed[l] == target {
			continue
		}
		if target {
			next.severed[l] = true
		} else {
			delete(next.severed, l)
		}
		changed = append(changed, l)
	}
	f.snap.Store(next)
	f.mu.Unlock()
	f.notify(changed, target)
}

func (f *Fabric) notify(links []Link, severed bool) {
	for _, l := range links {
		for _, fn := range f.subs {
			fn(l, severed)
		}
	}
}

func (f *Fabric) setDelay(links []Link, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("network: negative delay %v", d))
	}
	f.mutate(func(st *overrides) {
		for _, l := range links {
			st.delays[l] = d
		}
	})
}

func (f *Fabric) clearDelay(links []Link) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.snap.Load()
	if cur == nil {
		return
	}
	next := cur.clone()
	for _, l := range links {
		delete(next.delays, l)
	}
	f.snap.Store(next)
}
