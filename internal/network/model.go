// Package network models link delays for the simulated WAN.
//
// The paper's setting (§1): processes inside a group communicate over
// "high-end local links" while groups are interconnected through
// "high-latency communication links ... orders of magnitude slower". The
// model captures exactly that: one delay for intra-group links, one for
// inter-group links, optional uniform jitter, and an optional per-pair
// override for irregular topologies. Links are quasi-reliable (§2.1): no
// loss, no corruption, no duplication — delay is the only effect.
//
// Model is the static description; Fabric layers a mutable link table on
// top of it for runtime fault injection (partitions, delay spikes) while
// preserving quasi-reliability — a severed link withholds messages until
// it heals, which is still just delay.
package network

import (
	"math/rand"
	"time"

	"wanamcast/internal/types"
)

// Model describes link delays. The zero value gives a zero-latency network,
// which is still a valid asynchronous run (latency degrees are unaffected:
// they count hops via Lamport clocks, not wall time).
type Model struct {
	// IntraGroup is the one-way delay between processes of the same group.
	IntraGroup time.Duration
	// InterGroup is the one-way delay between processes of different groups.
	InterGroup time.Duration
	// Jitter, if positive, adds a uniformly distributed extra delay in
	// [0, Jitter) to every message, drawn from the run's seeded RNG.
	Jitter time.Duration
	// PairDelay, if non-nil, overrides the base delay for a (from, to)
	// pair when it returns ok=true. Jitter still applies on top.
	PairDelay func(from, to types.ProcessID) (time.Duration, bool)
	// Bandwidth, if positive, caps every link at this many bytes per
	// second: each message additionally occupies its link for
	// TransmitTime(Bandwidth, size) and queues behind earlier traffic on
	// the same link (transmission delay on top of the propagation delay
	// above). Zero models infinitely fast links — the default, and the
	// paper's own abstraction, where only propagation delay exists.
	Bandwidth int64
}

// TransmitTime returns how long n bytes occupy a link capped at rate
// bytes/s — the transmission-delay term of a bandwidth-modeled link. A
// non-positive rate means an uncapped link: zero transmission time.
func TransmitTime(rate int64, n int) time.Duration {
	if rate <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(n) * time.Second / time.Duration(rate)
}

// WAN returns the default wide-area model used across the benchmarks:
// 1 ms local links and interGroup one-way delay between groups.
func WAN(interGroup time.Duration) Model {
	return Model{IntraGroup: 1 * time.Millisecond, InterGroup: interGroup}
}

// Delay returns the one-way delay for a message from from to to.
//
// Contract: a model with Jitter > 0 needs an rng to draw from — passing a
// nil rng then is a wiring bug and panics. (It used to silently drop the
// jitter, turning a run the caller believed was jittered into a perfectly
// regular one.) rng may be nil only while Jitter is zero.
func (m Model) Delay(topo *types.Topology, from, to types.ProcessID, rng *rand.Rand) time.Duration {
	if m.Jitter > 0 && rng == nil {
		panic("network: Model.Delay needs an rng when Jitter > 0")
	}
	var d time.Duration
	if m.PairDelay != nil {
		if override, ok := m.PairDelay(from, to); ok {
			d = override
		} else {
			d = m.baseDelay(topo, from, to)
		}
	} else {
		d = m.baseDelay(topo, from, to)
	}
	if m.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	return d
}

func (m Model) baseDelay(topo *types.Topology, from, to types.ProcessID) time.Duration {
	if topo.SameGroup(from, to) {
		return m.IntraGroup
	}
	return m.InterGroup
}
