package network

import (
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/types"
)

func newTestFabric() *Fabric {
	topo := types.NewTopology(2, 2) // g0 = {0,1}, g1 = {2,3}
	return NewFabric(topo, Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond})
}

func TestFabricUntouchedFastPath(t *testing.T) {
	f := newTestFabric()
	if f.Severed(0, 2) {
		t.Fatal("fresh fabric reports a severed link")
	}
	if d := f.Delay(0, 2, nil); d != 100*time.Millisecond {
		t.Fatalf("base inter delay = %v", d)
	}
	if d := f.Delay(0, 1, nil); d != time.Millisecond {
		t.Fatalf("base intra delay = %v", d)
	}
}

func TestFabricSeverHealDirectional(t *testing.T) {
	f := newTestFabric()
	f.Sever(0, 2)
	if !f.Severed(0, 2) {
		t.Fatal("0→2 not severed")
	}
	if f.Severed(2, 0) {
		t.Fatal("sever is directional; 2→0 must stay up")
	}
	f.Heal(0, 2)
	if f.Severed(0, 2) {
		t.Fatal("0→2 still severed after Heal")
	}
}

func TestFabricPartitionGroups(t *testing.T) {
	f := newTestFabric()
	f.Partition([]types.GroupID{0}, []types.GroupID{1}, true)
	for _, p := range []types.ProcessID{0, 1} {
		for _, q := range []types.ProcessID{2, 3} {
			if !f.Severed(p, q) || !f.Severed(q, p) {
				t.Fatalf("link %v↔%v not severed by symmetric partition", p, q)
			}
		}
	}
	// Intra-group links untouched.
	if f.Severed(0, 1) || f.Severed(2, 3) {
		t.Fatal("partition severed an intra-group link")
	}
	f.HealAll()
	if f.Severed(0, 2) || f.Severed(3, 1) {
		t.Fatal("HealAll left a severed link")
	}
}

func TestFabricAsymmetricPartition(t *testing.T) {
	f := newTestFabric()
	f.Partition([]types.GroupID{0}, []types.GroupID{1}, false)
	if !f.Severed(0, 2) {
		t.Fatal("g0→g1 not severed")
	}
	if f.Severed(2, 0) {
		t.Fatal("asymmetric partition severed the reverse direction")
	}
}

func TestFabricIsolate(t *testing.T) {
	f := newTestFabric()
	f.Isolate(0)
	if !f.Severed(0, 1) || !f.Severed(1, 0) {
		t.Fatal("Isolate did not cut the intra-group pair both ways")
	}
	if f.Severed(0, 2) {
		t.Fatal("Isolate cut an inter-group link")
	}
	f.HealIsolate(0)
	if f.Severed(0, 1) || f.Severed(1, 0) {
		t.Fatal("HealIsolate left links severed")
	}
}

func TestFabricDelayOverrides(t *testing.T) {
	f := newTestFabric()
	f.SetDelay(0, 2, 300*time.Millisecond)
	if d := f.Delay(0, 2, nil); d != 300*time.Millisecond {
		t.Fatalf("per-link delay override = %v", d)
	}
	if d := f.Delay(2, 0, nil); d != 100*time.Millisecond {
		t.Fatalf("reverse direction must keep base delay, got %v", d)
	}
	f.ClearDelay(0, 2)
	if d := f.Delay(0, 2, nil); d != 100*time.Millisecond {
		t.Fatalf("cleared override still applies: %v", d)
	}

	f.SetGroupDelay([]types.GroupID{0}, []types.GroupID{1}, time.Second, true)
	if d := f.Delay(1, 3, nil); d != time.Second {
		t.Fatalf("group delay spike = %v", d)
	}
	if d := f.Delay(3, 0, nil); d != time.Second {
		t.Fatalf("symmetric spike reverse = %v", d)
	}
	if d := f.Delay(0, 1, nil); d != time.Millisecond {
		t.Fatalf("intra delay disturbed by group spike: %v", d)
	}
	f.ClearGroupDelay([]types.GroupID{0}, []types.GroupID{1}, true)
	if d := f.Delay(1, 3, nil); d != 100*time.Millisecond {
		t.Fatalf("cleared spike still applies: %v", d)
	}
}

func TestFabricJitterOverride(t *testing.T) {
	f := newTestFabric()
	f.SetJitter(0, 2, 5*time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	sawNonBase := false
	for i := 0; i < 100; i++ {
		d := f.Delay(0, 2, rng)
		if d < 100*time.Millisecond || d >= 105*time.Millisecond {
			t.Fatalf("jittered delay %v out of [100ms,105ms)", d)
		}
		if d != 100*time.Millisecond {
			sawNonBase = true
		}
	}
	if !sawNonBase {
		t.Fatal("jitter override never moved the delay")
	}
	f.ClearJitter(0, 2)
	if d := f.Delay(0, 2, nil); d != 100*time.Millisecond {
		t.Fatalf("cleared jitter still applies: %v", d)
	}
}

func TestFabricTransitions(t *testing.T) {
	f := newTestFabric()
	type tr struct {
		l       Link
		severed bool
	}
	var seen []tr
	f.OnTransition(func(l Link, severed bool) { seen = append(seen, tr{l, severed}) })

	f.Sever(0, 2)
	f.Sever(0, 2) // no-op: already severed
	f.Heal(0, 2)
	f.Heal(0, 2) // no-op: already healed
	want := []tr{{Link{0, 2}, true}, {Link{0, 2}, false}}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}

	// HealAll notifies once per actually-severed link.
	seen = nil
	f.SeverBidi(1, 3)
	f.HealAll()
	if len(seen) != 4 {
		t.Fatalf("SeverBidi+HealAll produced %d transitions, want 4", len(seen))
	}
}
