// Package harness wires any of the repository's nine total-order
// algorithms — the paper's A1 and A2 plus the seven Figure 1 baselines —
// into a simulated wide-area system with uniform casting, measurement, and
// property-checking surfaces. The Figure 1 benchmarks, the cmd/figures
// tool, and the cross-algorithm tests are all built on it.
package harness

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/baseline"
	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// Algo names an algorithm the harness can build.
type Algo string

// The algorithms of Figure 1.
const (
	AlgoA1        Algo = "a1"        // paper §4: genuine atomic multicast, Δ=2
	AlgoA2        Algo = "a2"        // paper §5: atomic broadcast, Δ=1
	AlgoSkeen     Algo = "skeen"     // [2]: failure-free multicast, Δ=2
	AlgoFritzke   Algo = "fritzke"   // [5]: all four stages, Δ=2
	AlgoDelporte  Algo = "delporte"  // [4]: group chain, Δ=k+1
	AlgoRodrigues Algo = "rodrigues" // [10]: spanning consensus, Δ=4
	AlgoDetMerge  Algo = "detmerge"  // [1]: deterministic merge, Δ=1
	AlgoSousa     Algo = "sousa"     // [12]: optimistic sequencer, Δ=2
	AlgoVicente   Algo = "vicente"   // [13]: validated sequencer, Δ=2
)

// Algos lists every algorithm the harness can build — the single catalog
// commands validate against.
func Algos() []Algo {
	return []Algo{AlgoA1, AlgoA2, AlgoSkeen, AlgoFritzke, AlgoDelporte,
		AlgoRodrigues, AlgoDetMerge, AlgoSousa, AlgoVicente}
}

// Known reports whether the harness can build a.
func (a Algo) Known() bool {
	for _, k := range Algos() {
		if a == k {
			return true
		}
	}
	return false
}

// Usagef is the shared bad-flag exit of the commands: it prints the
// error prefixed with the command name, then the flag usage, and exits 2.
func Usagef(cmd, format string, args ...any) {
	fmt.Fprintf(os.Stderr, cmd+": "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// ValidatePortRange checks that n consecutive TCP ports starting at base
// fit within 1..65535 — the live transport's process-p-listens-on-base+p
// scheme, shared by every command that opens a live cluster.
func ValidatePortRange(base, n int) error {
	if base < 1 || base+n > 65536 {
		return fmt.Errorf("base port %d leaves no room for %d processes (need ports %d..%d within 1..65535)",
			base, n, base, base+n-1)
	}
	return nil
}

// ParseBandwidth parses a link-rate string into bytes per second. The
// number may be fractional; the unit suffix (case-insensitive, optional
// "/s") selects bits or bytes with decimal (1000-based) prefixes, the
// networking convention: "50Mbit" = 50·10⁶ bit/s = 6.25·10⁶ B/s.
// Accepted units: bit, kbit, Mbit, Gbit, B, kB, MB, GB; a bare number
// means bytes per second. Zero or empty means uncapped; negative rates
// and rates that round below one byte per second are rejected.
func ParseBandwidth(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num := strings.TrimRight(s, "/sS")
	i := len(num)
	for i > 0 {
		c := num[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	unit, num := num[i:], num[:i]
	val, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bandwidth %q: %q is not a number", s, num)
	}
	var scale float64 // bytes per unit
	switch strings.ToLower(unit) {
	case "", "b":
		scale = 1
	case "kb":
		scale = 1e3
	case "mb":
		scale = 1e6
	case "gb":
		scale = 1e9
	case "bit":
		scale = 1.0 / 8
	case "kbit":
		scale = 1e3 / 8
	case "mbit":
		scale = 1e6 / 8
	case "gbit":
		scale = 1e9 / 8
	default:
		return 0, fmt.Errorf("bandwidth %q: unknown unit %q (want bit, kbit, Mbit, Gbit, B, kB, MB, or GB)", s, unit)
	}
	bytesPerSec := val * scale
	if bytesPerSec < 0 {
		return 0, fmt.Errorf("bandwidth %q: rate must be non-negative", s)
	}
	if val > 0 && bytesPerSec < 1 {
		return 0, fmt.Errorf("bandwidth %q: rounds below one byte per second", s)
	}
	return int64(bytesPerSec), nil
}

// MulticastAlgos lists the Figure 1(a) contenders in the paper's row order.
func MulticastAlgos() []Algo {
	return []Algo{AlgoDelporte, AlgoRodrigues, AlgoFritzke, AlgoA1, AlgoDetMerge}
}

// BroadcastAlgos lists the Figure 1(b) contenders in the paper's row order.
func BroadcastAlgos() []Algo {
	return []Algo{AlgoSousa, AlgoVicente, AlgoA2, AlgoDetMerge}
}

// Options configures a harness system.
type Options struct {
	Groups   int
	PerGroup int
	Inter    time.Duration // inter-group one-way delay (default 100 ms)
	Intra    time.Duration // intra-group one-way delay (default 1 ms)
	Jitter   time.Duration
	Seed     int64
	LogSends bool
	// ConsensusRetry tunes the consensus engines (where applicable).
	ConsensusRetry time.Duration
	// DetMergeInterval is the [1] heartbeat period (default 10 ms).
	DetMergeInterval time.Duration
	// DetMergeStop stops the [1] heartbeat stream at that virtual time so
	// Run() drains (default 5 s).
	DetMergeStop time.Duration
	// A2AlwaysOn disables A2's quiescence prediction (proactivity
	// ablation); such a system never drains, so use RunUntil.
	A2AlwaysOn bool
	// A2KeepAlive sets A2's quiescence-predictor patience in rounds
	// (0 means the paper's default of 1).
	A2KeepAlive int
	// A2Pipeline sets A2's rounds-in-flight limit (0 means the paper's
	// sequential 1).
	A2Pipeline int
	// A1Pipeline sets A1's consensus-instances-in-flight limit (0 means
	// the paper's sequential 1).
	A1Pipeline int
	// MaxBatch caps how many messages one consensus instance may order in
	// A1 and A2 (0 means unbounded, the paper's rule).
	MaxBatch int
	// SendQueue and FlushEvery tune the live TCP transport when the same
	// workload options drive a real cluster (cmd/wansim -live, cmd/wannode):
	// SendQueue bounds each connection's outbound frame queue and
	// FlushEvery caps write coalescing latency. The simulated runtime has
	// no transport and ignores both.
	SendQueue  int
	FlushEvery time.Duration
	// GobWire reverts the live transport to the legacy encoding/gob codec
	// (benchmark baseline); ignored by the simulated runtime.
	GobWire bool
	// Bandwidth caps every link at this rate (ParseBandwidth forms, e.g.
	// "50Mbit", "6.25MB"; empty or "0" = uncapped). The simulator adds the
	// transmission delay and per-link FIFO queueing to its delay model; the
	// live transport paces each connection's writer. Heartbeats are exempt
	// on the live path — a saturated link must not look like a crash.
	Bandwidth string
	// Uncoalesced reverts the live transport to one plain frame per
	// protocol message (no batch envelopes, no compression) — the
	// bandwidth-efficiency baseline. Ignored by the simulated runtime,
	// which sizes each message as its own frame either way.
	Uncoalesced bool
	// CompressMin is the live transport's batch compression threshold in
	// bytes (0 = default wire.MinCompress, negative = compression off).
	// Positive values below wire.MinCompress (one MTU) are rejected.
	CompressMin int
	// DataDir enables durability on a live cluster: each process persists
	// its WAL and snapshots under DataDir/p<N> and can be crash-recovered
	// (LiveCluster.Restart; wannode recovers at startup). Empty disables
	// persistence. The simulated runtime has no crashes to recover from
	// and ignores it.
	DataDir string
	// NoFsync keeps writing the WAL but skips the fsync barriers: the
	// "fsync=off" benchmark configuration. Ignored without DataDir.
	NoFsync bool
	// SnapshotEvery is the live cluster's snapshot cadence in deliveries
	// per process (0 = default 512, negative disables automatic
	// snapshots). Ignored without DataDir.
	SnapshotEvery int
	// Lanes shards a live cluster's processes across exactly this many
	// ordering lane goroutines by group (0 = one goroutine per process,
	// the historical layout), and routes WAL barriers through the
	// group-commit syncer. The simulated runtime executes single-threaded
	// regardless; there Lanes only configures the lane accounting
	// (node.Runtime.SetLanes), preserving byte-identical traces.
	Lanes int
	// InboxSize bounds each live lane's lock-free inbox ring (default
	// 4096); a full ring parks events, never drops. Ignored by the
	// simulated runtime.
	InboxSize int
	// CPUProfile, MemProfile, and MutexProfile are file paths for pprof
	// output; empty disables each. Commands wire them to -cpuprofile,
	// -memprofile, and -mutexprofile and call StartProfiles around the
	// run.
	CPUProfile   string
	MemProfile   string
	MutexProfile string
	// BenchJSON, when set, appends a machine-readable BenchResult record
	// to this file after a live benchmark run (see AppendBenchJSON).
	BenchJSON string
	// ReadFraction is the read share of a KV load in [0,1] (0 = the
	// historical write-only load). Only live KV commands consume it.
	ReadFraction float64
	// Consistency names the read mode of a KV load: "ordered" (full
	// total-order round), "lease" (leader-local linearizable), or
	// "watermark" (any-replica monotonic). Empty means ordered.
	Consistency string
	// LeaseDuration enables leader leases on a live cluster (0 disables);
	// MaxClockSkew is the drift guard subtracted from every lease window
	// (default 10 ms when leases are on).
	LeaseDuration time.Duration
	MaxClockSkew  time.Duration
	// TelemetryAddr, when non-empty, serves the live introspection plane
	// (Prometheus-text /metrics, recent spans on /spans, /healthz) on this
	// host:port while the command runs. Setting it also enables lifecycle
	// span tracing — see TraceLifecycle. Ignored by the pure simulator.
	TelemetryAddr string
	// SpanBuf bounds each ordering lane's lifecycle-span ring (0 =
	// default 4096 events). A positive value enables span tracing.
	SpanBuf int
	// FlightDump arms the live cluster's flight recorder: the retained
	// spans dump as JSONL to this path on a §2.2 checker violation, an
	// abandoned state transfer, or a crash-restart. Enables span tracing.
	FlightDump string
	// Trace receives debug lines if non-nil.
	Trace func(format string, args ...any)
}

// BandwidthBytes returns the parsed Options.Bandwidth in bytes per second
// (0 = uncapped). Call Validate first; a malformed rate parses as uncapped
// here.
func (o Options) BandwidthBytes() int64 {
	bw, err := ParseBandwidth(o.Bandwidth)
	if err != nil {
		return 0
	}
	return bw
}

// TraceLifecycle reports whether the options ask for lifecycle span
// tracing: any of the telemetry plane, a span buffer size, or a flight
// dump path implies it.
func (o Options) TraceLifecycle() bool {
	return o.TelemetryAddr != "" || o.SpanBuf > 0 || o.FlightDump != ""
}

// Validate rejects option values that would panic deep inside a run —
// non-positive topologies, negative delays or queue sizes. Commands
// validate flags through it so a bad invocation dies with a usage message
// instead of a mid-run panic. Zero values are fine (fill() defaults them).
func (o Options) Validate() error {
	switch {
	case o.Groups < 0 || o.PerGroup < 0:
		return fmt.Errorf("topology must be positive: %d groups x %d processes", o.Groups, o.PerGroup)
	case o.Inter < 0 || o.Intra < 0 || o.Jitter < 0:
		return fmt.Errorf("delays must be non-negative: inter=%v intra=%v jitter=%v", o.Inter, o.Intra, o.Jitter)
	case o.MaxBatch < 0:
		return fmt.Errorf("max batch must be non-negative: %d", o.MaxBatch)
	case o.A1Pipeline < 0 || o.A2Pipeline < 0:
		return fmt.Errorf("pipeline depth must be non-negative: a1=%d a2=%d", o.A1Pipeline, o.A2Pipeline)
	case o.A2KeepAlive < 0:
		return fmt.Errorf("keep-alive rounds must be non-negative: %d", o.A2KeepAlive)
	case o.SendQueue < 0:
		return fmt.Errorf("send queue depth must be non-negative: %d", o.SendQueue)
	case o.FlushEvery < 0:
		return fmt.Errorf("flush interval must be non-negative: %v", o.FlushEvery)
	case o.ConsensusRetry < 0:
		return fmt.Errorf("consensus retry must be non-negative: %v", o.ConsensusRetry)
	case o.Lanes < 0:
		return fmt.Errorf("lane count must be non-negative: %d", o.Lanes)
	case o.InboxSize < 0:
		return fmt.Errorf("inbox size must be non-negative: %d", o.InboxSize)
	case o.NoFsync && o.DataDir == "":
		return fmt.Errorf("fsync=off is meaningless without a data dir")
	case o.SnapshotEvery != 0 && o.DataDir == "":
		return fmt.Errorf("snapshot cadence is meaningless without a data dir")
	case o.ReadFraction < 0 || o.ReadFraction > 1:
		return fmt.Errorf("read fraction must be within [0,1]: %v", o.ReadFraction)
	case o.LeaseDuration < 0 || o.MaxClockSkew < 0:
		return fmt.Errorf("lease duration and clock skew must be non-negative: %v, %v", o.LeaseDuration, o.MaxClockSkew)
	case o.MaxClockSkew > 0 && o.LeaseDuration == 0:
		return fmt.Errorf("a clock-skew guard is meaningless without leases (set a lease duration)")
	case o.LeaseDuration > 0 && o.MaxClockSkew >= o.LeaseDuration:
		return fmt.Errorf("the clock-skew guard %v consumes the whole lease window %v", o.MaxClockSkew, o.LeaseDuration)
	case o.SpanBuf < 0:
		return fmt.Errorf("span buffer size must be non-negative: %d", o.SpanBuf)
	case o.CompressMin > 0 && o.CompressMin < wire.MinCompress:
		return fmt.Errorf("compression threshold %d is below one MTU (%d): compressing sub-packet payloads burns CPU for nothing", o.CompressMin, wire.MinCompress)
	}
	if _, err := ParseBandwidth(o.Bandwidth); err != nil {
		return err
	}
	if o.TelemetryAddr != "" {
		if err := ValidateTelemetryAddr(o.TelemetryAddr); err != nil {
			return err
		}
	}
	switch o.Consistency {
	case "", "ordered", "lease", "watermark":
	default:
		return fmt.Errorf("consistency must be ordered, lease, or watermark: %q", o.Consistency)
	}
	if o.Consistency == "lease" && o.LeaseDuration == 0 {
		return fmt.Errorf("lease-consistent reads need leader leases enabled (set a lease duration)")
	}
	return nil
}

func (o *Options) fill() {
	if o.Groups == 0 {
		o.Groups = 2
	}
	if o.PerGroup == 0 {
		o.PerGroup = 3
	}
	if o.Inter == 0 {
		o.Inter = 100 * time.Millisecond
	}
	if o.Intra == 0 {
		o.Intra = 1 * time.Millisecond
	}
	if o.DetMergeInterval == 0 {
		o.DetMergeInterval = 10 * time.Millisecond
	}
	if o.DetMergeStop == 0 {
		o.DetMergeStop = 5 * time.Second
	}
}

// System is one simulated run of one algorithm.
type System struct {
	Algo    Algo
	Opts    Options
	Topo    *types.Topology
	RT      *node.Runtime
	Col     *metrics.Collector
	Checker *check.Checker

	casters []caster
	crashed map[types.ProcessID]bool

	// Deliveries in global order.
	Deliveries []Delivery
}

// Delivery is one observed A-Deliver.
type Delivery struct {
	Process types.ProcessID
	ID      types.MessageID
	Payload any
	At      time.Duration
}

type caster interface {
	cast(payload any, dest types.GroupSet) types.MessageID
}

type castFunc func(payload any, dest types.GroupSet) types.MessageID

func (f castFunc) cast(payload any, dest types.GroupSet) types.MessageID { return f(payload, dest) }

// Build constructs a system running algo.
func Build(algo Algo, opts Options) *System {
	opts.fill()
	topo := types.NewTopology(opts.Groups, opts.PerGroup)
	col := &metrics.Collector{LogSends: opts.LogSends}
	model := network.Model{IntraGroup: opts.Intra, InterGroup: opts.Inter, Jitter: opts.Jitter,
		Bandwidth: opts.BandwidthBytes()}
	rt := node.NewRuntime(topo, model, opts.Seed, col)
	rt.Trace = opts.Trace
	rt.SetLanes(opts.Lanes)
	s := &System{
		Algo:    algo,
		Opts:    opts,
		Topo:    topo,
		RT:      rt,
		Col:     col,
		Checker: check.New(topo),
		casters: make([]caster, topo.N()),
		crashed: make(map[types.ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		proc := rt.Proc(id)
		onDeliver := func(m rmcast.Message) { s.recordDelivery(id, m.ID, m.Payload) }
		onDeliverKV := func(mid types.MessageID, payload any) { s.recordDelivery(id, mid, payload) }
		switch algo {
		case AlgoA1:
			a := amcast.New(amcast.Config{
				Host: proc, Detector: rt.Oracle(), OnDeliver: onDeliver,
				SkipStages: true, ConsensusRetry: opts.ConsensusRetry,
				MaxBatch: opts.MaxBatch, Pipeline: opts.A1Pipeline,
			})
			s.casters[id] = castFunc(a.AMCast)
		case AlgoFritzke:
			a := baseline.NewFritzke(proc, rt.Oracle(), onDeliver, opts.ConsensusRetry)
			s.casters[id] = castFunc(a.AMCast)
		case AlgoA2:
			b := abcast.New(abcast.Config{
				Host: proc, Detector: rt.Oracle(), OnDeliver: onDeliverKV,
				ConsensusRetry: opts.ConsensusRetry, AlwaysOn: opts.A2AlwaysOn,
				KeepAliveRounds: opts.A2KeepAlive, Pipeline: opts.A2Pipeline,
				MaxBatch: opts.MaxBatch,
			})
			s.casters[id] = castFunc(func(payload any, dest types.GroupSet) types.MessageID {
				return b.ABCast(payload)
			})
		case AlgoSkeen:
			a := baseline.NewSkeen(baseline.SkeenConfig{Host: proc, OnDeliver: onDeliver})
			s.casters[id] = castFunc(a.AMCast)
		case AlgoDelporte:
			a := baseline.NewDelporte(baseline.DelporteConfig{
				Host: proc, Detector: rt.Oracle(), OnDeliver: onDeliver,
				ConsensusRetry: opts.ConsensusRetry,
			})
			s.casters[id] = castFunc(a.AMCast)
		case AlgoRodrigues:
			a := baseline.NewRodrigues(baseline.RodriguesConfig{Host: proc, OnDeliver: onDeliver})
			s.casters[id] = castFunc(a.AMCast)
		case AlgoDetMerge:
			a := baseline.NewDetMerge(baseline.DetMergeConfig{
				Host: proc, OnDeliver: onDeliver,
				Interval: opts.DetMergeInterval, StopAfter: opts.DetMergeStop,
			})
			s.casters[id] = castFunc(a.AMCast)
		case AlgoSousa, AlgoVicente:
			b := baseline.NewSeqBcast(baseline.SeqBcastConfig{
				Host: proc, OnDeliver: onDeliverKV, Uniform: algo == AlgoVicente,
			})
			s.casters[id] = castFunc(func(payload any, dest types.GroupSet) types.MessageID {
				return b.ABCast(payload)
			})
		default:
			panic(fmt.Sprintf("harness: unknown algorithm %q", algo))
		}
	}
	rt.Start()
	return s
}

func (s *System) recordDelivery(p types.ProcessID, id types.MessageID, payload any) {
	s.Checker.RecordDeliver(p, id)
	s.Deliveries = append(s.Deliveries, Delivery{Process: p, ID: id, Payload: payload, At: s.RT.Now()})
}

// IsBroadcast reports whether algo casts to all groups regardless of dest.
func (s *System) IsBroadcast() bool {
	return s.Algo == AlgoA2 || s.Algo == AlgoSousa || s.Algo == AlgoVicente
}

// Cast casts payload from process from to dest (broadcast algorithms
// ignore dest and address all groups) and registers it with the checker.
func (s *System) Cast(from types.ProcessID, payload any, dest types.GroupSet) types.MessageID {
	effective := dest
	if s.IsBroadcast() {
		effective = s.Topo.AllGroups()
	}
	id := s.casters[from].cast(payload, effective)
	s.Checker.RecordCast(id, effective)
	return id
}

// CastAt schedules a Cast at virtual time at.
func (s *System) CastAt(at time.Duration, from types.ProcessID, payload any, dest types.GroupSet) {
	s.RT.Scheduler().At(at, func() { s.Cast(from, payload, dest) })
}

// CrashAt schedules a crash-stop of p at virtual time at.
func (s *System) CrashAt(p types.ProcessID, at time.Duration) {
	s.crashed[p] = true
	s.RT.CrashAt(p, at)
}

// Chaos returns the scenario control surface of the simulated system:
// pass it to scenario.Apply before Run to schedule a fault script.
// Crashed victims are excluded from Check's correct-process set.
func (s *System) Chaos() scenario.Funcs {
	return scenario.SimFuncs(s.RT, func(p types.ProcessID) { s.crashed[p] = true })
}

// Run drains the event queue and returns the virtual end time.
func (s *System) Run() time.Duration {
	s.RT.Run()
	return s.RT.Now()
}

// RunUntil executes events up to the given virtual time.
func (s *System) RunUntil(t time.Duration) { s.RT.RunUntil(t) }

// Check returns the §2.2 property violations of the run so far.
func (s *System) Check() []string {
	correct := func(p types.ProcessID) bool { return !s.crashed[p] }
	correctCaster := func(id types.MessageID) bool { return !s.crashed[id.Origin] }
	return s.Checker.Check(correct, correctCaster)
}

// DegreeOf returns the measured latency degree of id.
func (s *System) DegreeOf(id types.MessageID) (int64, bool) { return s.Col.LatencyDegree(id) }
