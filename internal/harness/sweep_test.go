package harness

import (
	"testing"
	"time"
)

func TestParseShape(t *testing.T) {
	good := map[string]Shape{
		"200x5":  {Groups: 200, PerGroup: 5},
		" 50x3 ": {Groups: 50, PerGroup: 3},
		"1x1":    {Groups: 1, PerGroup: 1},
	}
	for spec, want := range good {
		got, err := ParseShape(spec)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("ParseShape(%q) = %v, want %v", spec, got, want)
		}
	}
	for _, spec := range []string{"", "200", "x5", "200x", "0x3", "3x0", "-1x3", "3x-1", "axb", "3x3x3"} {
		if _, err := ParseShape(spec); err == nil {
			t.Fatalf("ParseShape(%q) accepted a bad shape", spec)
		}
	}
}

func TestParseSweep(t *testing.T) {
	shapes, err := ParseSweep("4x3,50x3,200x5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Shape{{4, 3}, {50, 3}, {200, 5}}
	if len(shapes) != len(want) {
		t.Fatalf("got %d shapes, want %d", len(shapes), len(want))
	}
	for i := range want {
		if shapes[i] != want[i] {
			t.Fatalf("shape %d = %v, want %v", i, shapes[i], want[i])
		}
	}
	if _, err := ParseSweep("4x3,,50x3"); err == nil {
		t.Fatal("ParseSweep accepted an empty element")
	}
}

// TestRunScaleSweepMeasures smokes one small sweep point end to end: the
// run must execute events, report a positive throughput and wall clock,
// and pass the §2.2 property checks.
func TestRunScaleSweepMeasures(t *testing.T) {
	pts := RunScaleSweep(AlgoA1, Options{
		Inter: 20 * time.Millisecond, Intra: time.Millisecond, Seed: 1,
	}, []Shape{{Groups: 3, PerGroup: 3}}, 10)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Events == 0 || p.EventsPerSec <= 0 || p.Wall <= 0 {
		t.Fatalf("sweep point measured nothing: %+v", p)
	}
	if p.Violations != 0 {
		t.Fatalf("sweep run violated ordering properties: %+v", p)
	}
	rec := p.BenchRecord("sim-sweep-a1", 1)
	if rec.Topology != "3x3" || rec.Events != p.Events || rec.Seed != 1 {
		t.Fatalf("bench record mismatch: %+v", rec)
	}
}

// BenchmarkSimScale reports the simulation runtime's whole-run throughput
// at the sweep's canonical shapes. b.N counts casts; custom metrics carry
// what the sweep table prints: events/s and allocs/event.
func BenchmarkSimScale(b *testing.B) {
	for _, sh := range []Shape{{4, 3}, {50, 3}, {200, 5}} {
		b.Run(sh.String(), func(b *testing.B) {
			opts := Options{Inter: 100 * time.Millisecond, Intra: time.Millisecond,
				Jitter: 10 * time.Millisecond, Seed: 1}
			b.ReportAllocs()
			b.ResetTimer()
			pts := RunScaleSweep(AlgoA1, opts, []Shape{sh}, b.N)
			b.StopTimer()
			p := pts[0]
			b.ReportMetric(p.EventsPerSec, "events/s")
			b.ReportMetric(p.AllocsPerEvent, "allocs/event")
			b.ReportMetric(float64(p.Events)/float64(b.N), "events/cast")
		})
	}
}
