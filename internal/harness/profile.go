package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// mutexProfileFraction is the sampling rate armed while a mutex profile
// is requested: 1-in-5 contention events, cheap enough for benchmark
// runs yet dense enough to rank the hot locks.
const mutexProfileFraction = 5

// StartProfiles arms the requested pprof outputs (each path may be
// empty to skip that profile) and returns a stop function that flushes
// and closes them. The CPU profile streams for the whole window; the
// heap and mutex profiles are snapshotted at stop time — after a GC for
// the heap, so the profile shows live memory, not garbage. Commands
// call this around the measured run:
//
//	stop, err := harness.StartProfiles(cpu, mem, mutex)
//	...
//	defer stop()
func StartProfiles(cpu, mem, mutex string) (stop func() error, err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	prevFraction := 0
	if mutex != "" {
		prevFraction = runtime.SetMutexProfileFraction(mutexProfileFraction)
	}
	stop = func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				keep(fmt.Errorf("mem profile: %w", err))
			} else {
				runtime.GC() // profile live objects, not collectable garbage
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		if mutex != "" {
			f, err := os.Create(mutex)
			if err != nil {
				keep(fmt.Errorf("mutex profile: %w", err))
			} else {
				if p := pprof.Lookup("mutex"); p != nil {
					keep(p.WriteTo(f, 0))
				}
				keep(f.Close())
			}
			runtime.SetMutexProfileFraction(prevFraction)
		}
		return firstErr
	}
	return stop, nil
}
