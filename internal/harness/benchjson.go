package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"wanamcast/internal/metrics"
)

// BenchResult is one machine-readable benchmark record — the lane-scaling
// sweeps append one per configuration to a JSON array file (BENCH_lanes.json
// by convention), so the scaling table in EXPERIMENTS.md can be regenerated
// from data instead of transcribed.
type BenchResult struct {
	Name     string `json:"name"`     // benchmark identifier, e.g. "live-kv"
	Topology string `json:"topology"` // "GxP", e.g. "8x3"
	Lanes    int    `json:"lanes"`    // configured lane count (0 = per-process)
	Cores    int    `json:"cores"`    // runtime.NumCPU() at run time
	Casts    int    `json:"casts"`    // messages offered

	OrderedPerSec float64 `json:"ordered_per_sec"` // A-Deliveries/s at one process
	P50Ms         float64 `json:"p50_ms"`          // wall cast→deliver latency
	P99Ms         float64 `json:"p99_ms"`

	// Wire-traffic accounting (zero when the run recorded no wire stats).
	WireBytesPerOp   float64 `json:"wire_bytes_per_op,omitempty"` // wire bytes out / ordered message
	WireBytesOut     uint64  `json:"wire_bytes_out,omitempty"`    // total wire bytes written
	FramesPerWrite   float64 `json:"frames_per_write,omitempty"`  // protocol messages / envelope write
	CompressionRatio float64 `json:"compression_ratio,omitempty"` // raw/compressed payload over compressed envelopes
	Bandwidth        string  `json:"bandwidth,omitempty"`         // configured per-link cap, ParseBandwidth form
	Uncoalesced      bool    `json:"wire_uncoalesced,omitempty"`  // plain per-message frames (baseline codec)

	// Simulation scale-sweep accounting (zero on live runs): throughput
	// and allocation behavior of the discrete-event runtime itself at one
	// topology shape (see RunScaleSweep / wansim -sweep).
	Events         uint64  `json:"events,omitempty"`           // scheduler events executed
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`   // events / wall second
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"` // heap allocations / event
	WallMS         float64 `json:"wall_ms,omitempty"`          // whole-run wall clock
	PeakHeapBytes  uint64  `json:"peak_heap_bytes,omitempty"`  // max observed live heap
	Seed           int64   `json:"seed,omitempty"`             // simulation seed

	// Read-tier accounting (zero on write-only runs).
	ReadFraction float64 `json:"read_fraction,omitempty"` // offered read share in [0,1]
	Consistency  string  `json:"consistency,omitempty"`   // read mode: ordered, lease, or watermark
	Reads        int     `json:"reads,omitempty"`         // reads completed
	ReadsPerSec  float64 `json:"reads_per_sec,omitempty"`
	StaleReads   uint64  `json:"stale_reads,omitempty"`  // follower replies rejected by the watermark barrier
	LeaseDenied  uint64  `json:"lease_denied,omitempty"` // lease reads refused (no valid lease at the replica)
	// ByClass carries per-class latency percentiles in milliseconds, keyed
	// "read-lease" / "read-watermark" / "read-ordered" / "write", each as
	// {"p50": ..., "p99": ...}.
	ByClass map[string]map[string]float64 `json:"by_class,omitempty"`

	// Stage-latency breakdown from the lifecycle tracer (omitted on
	// untraced runs): per-stage percentiles in milliseconds, keyed by
	// stage name ("enqueue", "promise", "order", "reply", ...), each as
	// {"p50": ..., "p99": ...}.
	Stages map[string]map[string]float64 `json:"stages,omitempty"`
	// WanHops counts delivered messages by measured latency degree Δ
	// (WAN hops), keyed by Δ as a decimal string: {"2": 1000} for a pure
	// A1 run, {"1": ...} for warm A2 broadcasts.
	WanHops map[string]int `json:"wan_hops,omitempty"`

	// Durability accounting (zero without a durable store).
	Fsyncs         uint64  `json:"fsyncs"`           // total fsyncs across stores
	GCBarriers     uint64  `json:"gc_barriers"`      // barriers staged through group commit
	GCWindows      uint64  `json:"gc_windows"`       // group-commit windows executed
	BatchesDecided uint64  `json:"batches_decided"`  // consensus batches ordered
	FsyncsPerBatch float64 `json:"fsyncs_per_batch"` // Fsyncs / BatchesDecided

	StartedAt string `json:"started_at"` // RFC 3339, informational
}

// SetWire fills the wire-traffic fields from a recorded WireStats
// snapshot. Runs with no wire accounting (sim without bandwidth modeling,
// gob codec) leave the fields zero so JSON omits them. WireBytesPerOp
// divides by Casts, so set Casts first.
func (r *BenchResult) SetWire(w metrics.WireStats, bandwidth string, uncoalesced bool) {
	if w.BytesOut == 0 {
		return
	}
	r.WireBytesOut = w.BytesOut
	if r.Casts > 0 {
		r.WireBytesPerOp = float64(w.BytesOut) / float64(r.Casts)
	}
	r.FramesPerWrite = w.FramesPerEnvelope()
	r.CompressionRatio = w.CompressionRatio()
	r.Bandwidth = bandwidth
	r.Uncoalesced = uncoalesced
}

// StageBreakdown converts the tracer's per-stage summaries into the
// BenchResult.Stages map (milliseconds). Stages with no samples are
// dropped; an empty result returns nil so the JSON field is omitted.
func StageBreakdown(sums []metrics.StageSummary) map[string]map[string]float64 {
	var out map[string]map[string]float64
	for _, s := range sums {
		if s.Count == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]map[string]float64, len(sums))
		}
		out[s.Name] = map[string]float64{
			"p50": float64(s.P50.Microseconds()) / 1e3,
			"p99": float64(s.P99.Microseconds()) / 1e3,
		}
	}
	return out
}

// WanHopHist converts a measured latency-degree histogram (metrics.Stats.
// DegreeHist) into the BenchResult.WanHops map. Nil in, nil out.
func WanHopHist(h map[int64]int) map[string]int {
	if len(h) == 0 {
		return nil
	}
	out := make(map[string]int, len(h))
	for d, n := range h {
		out[strconv.FormatInt(d, 10)] = n
	}
	return out
}

// AppendBenchJSON appends r to the JSON array in path, creating the file
// if needed. The whole array is rewritten (these files hold dozens of
// records, not millions), so the file is always a valid JSON document.
func AppendBenchJSON(path string, r BenchResult) error {
	var results []BenchResult
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(data) > 0 {
			if err := json.Unmarshal(data, &results); err != nil {
				return fmt.Errorf("benchjson: %s holds something other than a BenchResult array: %w", path, err)
			}
		}
	case os.IsNotExist(err):
		// First record: start a fresh array.
	default:
		return fmt.Errorf("benchjson: read %s: %w", path, err)
	}
	results = append(results, r)
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
