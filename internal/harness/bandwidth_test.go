package harness

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestParseBandwidth: the human-readable rate forms all resolve to
// bytes/second, decimal units, bits divided by eight.
func TestParseBandwidth(t *testing.T) {
	good := map[string]int64{
		"":         0,
		"0":        0,
		"1":        1,
		"400b":     400,
		"1kb":      1_000,
		"6.25MB":   6_250_000,
		"2gb/s":    2_000_000_000,
		"8bit":     1,
		"50mbit":   6_250_000,
		"50Mbit/s": 6_250_000,
		"1gbit":    125_000_000,
		" 10kbit ": 1_250,
	}
	for in, want := range good {
		got, err := ParseBandwidth(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
		} else if got != want {
			t.Errorf("%q = %d B/s, want %d", in, got, want)
		}
	}
	for _, in := range []string{"x", "12parsecs", "-1mb", "0.5bit", "mb", "1.2.3kb"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("%q: accepted", in)
		}
	}
}

// bandwidthRun drives one deterministic simulated A1 workload and returns
// the finished System for accounting inspection.
func bandwidthRun(t *testing.T, bandwidth string) *System {
	t.Helper()
	s := Build(AlgoA1, Options{
		Groups: 3, PerGroup: 3,
		Inter: 20 * time.Millisecond, Intra: time.Millisecond,
		Seed: 11, MaxBatch: 4, A1Pipeline: 2,
		Bandwidth: bandwidth,
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		from := types.ProcessID(rng.Intn(s.Topo.N()))
		ga, gb := types.GroupID(rng.Intn(3)), types.GroupID(rng.Intn(3))
		s.CastAt(time.Duration(i+1)*5*time.Millisecond, from, fmt.Sprintf("m%d", i), types.NewGroupSet(ga, gb))
	}
	s.Run()
	if v := s.Check(); len(v) != 0 {
		t.Fatalf("§2.2 violations under bandwidth modeling: %v", v)
	}
	return s
}

// TestSimWireByteAccounting cross-checks the two independent byte-accounting
// planes on a bandwidth-modeled run: the fabric's per-link counters (the
// network's ground truth) must sum to exactly the wire-metrics byte total
// (the transport's view), per link and in aggregate — and the whole
// accounting must be a pure function of the seed.
func TestSimWireByteAccounting(t *testing.T) {
	s := bandwidthRun(t, "1mb")

	byLink := s.RT.Fabric().BytesByLink()
	if len(byLink) == 0 {
		t.Fatal("bandwidth-modeled run counted no link bytes")
	}
	var linkSum int64
	for l, n := range byLink {
		if n <= 0 {
			t.Errorf("link %v counted %d bytes", l, n)
		}
		if l.From == l.To {
			t.Errorf("self-link %v was bandwidth-accounted", l)
		}
		linkSum += n
	}
	if total := s.RT.Fabric().TotalBytes(); total != linkSum {
		t.Fatalf("TotalBytes %d != per-link sum %d", total, linkSum)
	}

	w := s.Col.Snapshot().Wire
	if int64(w.BytesOut) != linkSum {
		t.Fatalf("metrics counted %d wire bytes, fabric counted %d", w.BytesOut, linkSum)
	}
	if w.FramesOut != w.EnvelopesOut {
		// The simulator models each message as its own envelope.
		t.Fatalf("sim accounting: %d frames vs %d envelopes", w.FramesOut, w.EnvelopesOut)
	}
	var byKind uint64
	for _, n := range w.ByKindOut {
		byKind += n
	}
	if byKind != w.BytesOut {
		// Sim frames carry no envelope overhead, so per-kind attribution
		// must tile the byte total exactly.
		t.Fatalf("per-kind bytes %d != total %d", byKind, w.BytesOut)
	}

	// Same seed, same accounting: the byte counters are deterministic.
	again := bandwidthRun(t, "1mb")
	if !reflect.DeepEqual(again.RT.Fabric().BytesByLink(), byLink) {
		t.Fatal("same-seed runs disagree on per-link bytes")
	}

	// With modeling off the counters stay silent and the run is untouched
	// (the golden-trace pins check byte-identity; here: zero accounting).
	off := bandwidthRun(t, "")
	if n := off.RT.Fabric().TotalBytes(); n != 0 {
		t.Fatalf("uncapped run counted %d fabric bytes", n)
	}
	if w := off.Col.Snapshot().Wire; w.BytesOut != 0 {
		t.Fatalf("uncapped run counted %d wire bytes", w.BytesOut)
	}
	if len(off.Deliveries) != len(s.Deliveries) {
		t.Fatalf("bandwidth modeling changed delivery count: %d vs %d", len(s.Deliveries), len(off.Deliveries))
	}
}

// TestSimBandwidthSlowsDelivery: a capped link actually costs virtual time —
// the same workload finishes later under a tight cap than uncapped, and
// still delivers everything.
func TestSimBandwidthSlowsDelivery(t *testing.T) {
	fast := bandwidthRun(t, "")
	slow := bandwidthRun(t, "100kb")
	if len(slow.Deliveries) != len(fast.Deliveries) {
		t.Fatalf("cap lost deliveries: %d vs %d", len(slow.Deliveries), len(fast.Deliveries))
	}
	last := func(s *System) time.Duration {
		var m time.Duration
		for _, d := range s.Deliveries {
			if d.At > m {
				m = d.At
			}
		}
		return m
	}
	if lf, ls := last(fast), last(slow); ls <= lf {
		t.Fatalf("100kb cap did not slow the run: capped last delivery %v vs uncapped %v", ls, lf)
	}
}
