package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// faultTolerant lists the algorithms that claim crash-stop tolerance with
// a correct majority per group; the chaos suite hammers exactly those.
// (Skeen is failure-free by design; Rodrigues and det-merge are modeled
// failure-free, as in the paper's Figure 1 accounting.)
func faultTolerant() []Algo {
	return []Algo{AlgoA1, AlgoA2, AlgoFritzke, AlgoDelporte}
}

// TestChaosRandomCrashes drives randomized workloads with randomized
// minority crash schedules through every fault-tolerant algorithm and
// verifies the §2.2 properties on every trace.
func TestChaosRandomCrashes(t *testing.T) {
	for _, algo := range faultTolerant() {
		algo := algo
		for seed := int64(0); seed < 5; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", algo, seed), func(t *testing.T) {
				t.Parallel()
				s := Build(algo, Options{Groups: 3, PerGroup: 3, Seed: seed, Jitter: 5 * time.Millisecond})
				rng := rand.New(rand.NewSource(seed * 31))
				crashed := make(map[types.ProcessID]bool)
				// One random victim per group, at a random moment.
				for g := 0; g < 3; g++ {
					victim := s.Topo.Members(types.GroupID(g))[rng.Intn(3)]
					crashed[victim] = true
					s.CrashAt(victim, time.Duration(rng.Intn(400))*time.Millisecond)
				}
				casts := workload.Generate(s.Topo, workload.Spec{
					Casts:      20,
					MeanPeriod: 25 * time.Millisecond,
					Poisson:    true,
					Seed:       seed,
				})
				for _, c := range casts {
					c := c
					s.RT.Scheduler().At(c.At, func() {
						if !crashed[c.From] {
							s.Cast(c.From, c.Payload, c.Dest)
						}
					})
				}
				s.RT.Scheduler().MaxSteps = 5_000_000
				s.Run()
				if v := s.Check(); len(v) != 0 {
					t.Fatalf("violations:\n%v", v)
				}
			})
		}
	}
}

// TestChaosLargeScale is a 6-group × 5-process (30-process) stress run
// with 100 messages through A1 and A2: scale shakes out quadratic-state
// bugs that 2×3 topologies cannot.
func TestChaosLargeScale(t *testing.T) {
	for _, algo := range []Algo{AlgoA1, AlgoA2} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			s := Build(algo, Options{Groups: 6, PerGroup: 5, Seed: 99})
			casts := workload.Generate(s.Topo, workload.Spec{
				Casts:      100,
				MeanPeriod: 10 * time.Millisecond,
				Poisson:    true,
				Seed:       7,
			})
			for _, c := range casts {
				c := c
				s.RT.Scheduler().At(c.At, func() { s.Cast(c.From, c.Payload, c.Dest) })
			}
			s.RT.Scheduler().MaxSteps = 20_000_000
			s.Run()
			if v := s.Check(); len(v) != 0 {
				t.Fatalf("violations (first 5):\n%v", v[:min(5, len(v))])
			}
			// Everyone addressed must have delivered all 100.
			st := s.Col.Snapshot()
			if st.MessagesDelivered != 100 {
				t.Fatalf("delivered %d of 100 casts", st.MessagesDelivered)
			}
		})
	}
}

// TestChaosCrashAtCastInstant crashes casters exactly when they cast —
// the worst moment for validity/agreement bookkeeping.
func TestChaosCrashAtCastInstant(t *testing.T) {
	for _, algo := range faultTolerant() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			s := Build(algo, Options{Groups: 2, PerGroup: 3, Seed: 5})
			dest := types.NewGroupSet(0, 1)
			// Two casters die at their cast instants; one survives.
			s.CastAt(10*time.Millisecond, s.Topo.Members(0)[2], "doomed-1", dest)
			s.CrashAt(s.Topo.Members(0)[2], 10*time.Millisecond)
			s.CastAt(150*time.Millisecond, s.Topo.Members(1)[2], "doomed-2", dest)
			s.CrashAt(s.Topo.Members(1)[2], 150*time.Millisecond)
			s.CastAt(300*time.Millisecond, s.Topo.Members(0)[0], "survivor", dest)
			s.RT.Scheduler().MaxSteps = 5_000_000
			s.Run()
			if v := s.Check(); len(v) != 0 {
				t.Fatalf("violations:\n%v", v)
			}
			// The survivor's message must be everywhere.
			count := 0
			for _, d := range s.Deliveries {
				if d.Payload == "survivor" {
					count++
				}
			}
			if count != 4 {
				t.Fatalf("survivor delivered %d times, want 4 (correct processes)", count)
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
