package harness

import (
	"testing"
	"time"

	"wanamcast/internal/types"
)

// measureMcast returns the inter-group messages for one multicast to k
// groups of d processes (caster in the last destination group).
func measureMcast(t *testing.T, algo Algo, k, d int) float64 {
	t.Helper()
	s := Build(algo, Options{
		Groups: k, PerGroup: d,
		// det-merge needs a live heartbeat stream here (single cast, no
		// slot-fill); its per-cast cost is metered from the data-message
		// protocol label alone, as the paper's O(kd) row accounts it.
		DetMergeInterval: 100 * time.Millisecond, DetMergeStop: 800 * time.Millisecond,
	})
	dest := make([]types.GroupID, k)
	for i := range dest {
		dest[i] = types.GroupID(i)
	}
	members := s.Topo.Members(types.GroupID(k - 1))
	caster := members[len(members)-1]
	s.CastAt(15*time.Millisecond, caster, "m", types.NewGroupSet(dest...))
	s.Run()
	if v := s.Check(); len(v) != 0 {
		t.Fatalf("%s k=%d d=%d: %v", algo, k, d, v)
	}
	st := s.Col.Snapshot()
	if algo == AlgoDetMerge {
		return float64(st.PerProtocol["dm"].InterGroup)
	}
	return float64(st.InterGroupMessages)
}

// TestFigure1aMessageShapes asserts the paper's asymptotic columns as
// measured growth ratios:
//
//   - Delporte [4] is O(kd²): linear in k (doubling k−1 roughly doubles
//     the count), quadratic in d (doubling d roughly quadruples it);
//   - A1 is O(k²d²): quadratic in both;
//   - the A1/Delporte ratio grows with k (the §6 trade-off).
func TestFigure1aMessageShapes(t *testing.T) {
	// Linearity in k for Delporte: messages(k) ≈ a·k + b ⇒ second
	// differences vanish. Allow slack for the constant hops.
	d2, d3, d4, d5 := measureMcast(t, AlgoDelporte, 2, 3), measureMcast(t, AlgoDelporte, 3, 3),
		measureMcast(t, AlgoDelporte, 4, 3), measureMcast(t, AlgoDelporte, 5, 3)
	if diff1, diff2 := d3-d2, d4-d3; diff1 != diff2 || diff2 != d5-d4 {
		t.Errorf("Delporte not linear in k: increments %v %v %v", diff1, diff2, d5-d4)
	}

	// Quadratic growth in k for A1: second differences constant and
	// positive.
	a2, a3, a4, a5 := measureMcast(t, AlgoA1, 2, 3), measureMcast(t, AlgoA1, 3, 3),
		measureMcast(t, AlgoA1, 4, 3), measureMcast(t, AlgoA1, 5, 3)
	s1, s2, s3 := a3-a2, a4-a3, a5-a4
	if !(s2 > s1 && s3 > s2) {
		t.Errorf("A1 not superlinear in k: increments %v %v %v", s1, s2, s3)
	}
	if (s2-s1) != (s3-s2) || s2-s1 <= 0 {
		t.Errorf("A1 not quadratic in k: second differences %v %v", s2-s1, s3-s2)
	}

	// Quadratic growth in d for both A1 (k²d²) and Delporte (kd²):
	// doubling d should roughly quadruple the count (within the ±2kd
	// linear terms).
	for _, algo := range []Algo{AlgoA1, AlgoDelporte} {
		m2, m4 := measureMcast(t, algo, 3, 2), measureMcast(t, algo, 3, 4)
		ratio := m4 / m2
		if ratio < 3.0 || ratio > 4.6 {
			t.Errorf("%s: doubling d scaled messages by %.2f, want ≈4 (quadratic)", algo, ratio)
		}
	}

	// det-merge is O(kd): linear in d.
	dm2, dm4 := measureMcast(t, AlgoDetMerge, 3, 2), measureMcast(t, AlgoDetMerge, 3, 4)
	if ratio := dm4 / dm2; ratio < 1.8 || ratio > 2.4 {
		t.Errorf("det-merge: doubling d scaled messages by %.2f, want ≈2 (linear)", ratio)
	}

	// The §6 trade-off: A1/Delporte message ratio grows with k.
	if !(a5/d5 > a2/d2) {
		t.Errorf("A1/Delporte ratio did not grow with k: %.2f at k=2, %.2f at k=5", a2/d2, a5/d5)
	}
}

// TestFigure1bMessageShapes asserts the broadcast columns: Sousa O(n) is
// linear in n, Vicente and A2 O(n²) quadratic.
func TestFigure1bMessageShapes(t *testing.T) {
	measure := func(algo Algo, groups, d int) float64 {
		s := Build(algo, Options{Groups: groups, PerGroup: d})
		all := s.Topo.AllGroups()
		casts := 1
		if algo == AlgoA2 {
			for g := 0; g < groups; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
				casts++
			}
		}
		s.CastAt(15*time.Millisecond, s.Topo.Members(0)[0], "m", all)
		s.Run()
		if v := s.Check(); len(v) != 0 {
			t.Fatalf("%s: %v", algo, v)
		}
		return float64(s.Col.Snapshot().InterGroupMessages) / float64(casts)
	}
	// n doubles from 6 (2×3) to 12 (4×3).
	for _, tc := range []struct {
		algo     Algo
		lo, hi   float64
		expected string
	}{
		{AlgoSousa, 2.5, 3.5, "linear"}, // ratio ≈ 3 (inter-group share grows too)
		{AlgoVicente, 4.5, 6.5, "quadratic"},
		{AlgoA2, 3.0, 4.5, "quadratic"},
	} {
		m6 := measure(tc.algo, 2, 3)
		m12 := measure(tc.algo, 4, 3)
		ratio := m12 / m6
		if ratio < tc.lo || ratio > tc.hi {
			t.Errorf("%s: doubling n scaled messages by %.2f, want [%.1f,%.1f] (%s)",
				tc.algo, ratio, tc.lo, tc.hi, tc.expected)
		}
	}
}
