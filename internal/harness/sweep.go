package harness

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/types"
)

// Shape is one topology point of a scale sweep: Groups x PerGroup.
type Shape struct {
	Groups   int
	PerGroup int
}

// String renders the shape in the "GxP" notation the bench records use.
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Groups, s.PerGroup) }

// N returns the total process count of the shape.
func (s Shape) N() int { return s.Groups * s.PerGroup }

// ParseShape parses "GxP" (e.g. "200x5") into a Shape. Both sides must be
// positive integers.
func ParseShape(spec string) (Shape, error) {
	g, p, ok := strings.Cut(strings.TrimSpace(spec), "x")
	if !ok {
		return Shape{}, fmt.Errorf("topology shape must be GROUPSxPERGROUP, e.g. 200x5: %q", spec)
	}
	groups, err := strconv.Atoi(g)
	if err != nil {
		return Shape{}, fmt.Errorf("bad group count in shape %q: %v", spec, err)
	}
	per, err := strconv.Atoi(p)
	if err != nil {
		return Shape{}, fmt.Errorf("bad per-group count in shape %q: %v", spec, err)
	}
	sh := Shape{Groups: groups, PerGroup: per}
	if groups < 1 || per < 1 {
		return Shape{}, fmt.Errorf("topology shape must be positive: %q", spec)
	}
	return sh, nil
}

// ParseSweep parses a comma-separated shape list ("50x3,100x3,200x5").
func ParseSweep(spec string) ([]Shape, error) {
	parts := strings.Split(spec, ",")
	shapes := make([]Shape, 0, len(parts))
	for _, p := range parts {
		sh, err := ParseShape(p)
		if err != nil {
			return nil, err
		}
		shapes = append(shapes, sh)
	}
	return shapes, nil
}

// SweepPoint is the measured outcome of one shape in a scale sweep.
type SweepPoint struct {
	Shape Shape
	Casts int // messages offered

	Events         uint64  // scheduler events executed
	EventsPerSec   float64 // events / wall second
	AllocsPerEvent float64 // heap allocations / event (whole run, incl. build)
	Wall           time.Duration
	PeakHeapBytes  uint64
	Violations     int // §2.2 property-check failures (0 on a correct run)
}

// RunScaleSweep runs the same workload through sys at every shape and
// measures throughput and allocation behavior of the simulation runtime
// itself: events/s, allocs/event, wall clock, and peak heap. The workload
// mirrors wansim's default — casts at a fixed virtual-time rate from
// rotating senders to a deterministic destination spread — so the sweep
// exercises the full transmit→deliver fast path under real protocol
// traffic, not a synthetic no-op loop. The per-shape Options are opts with
// the topology overridden; everything else (delays, seed, pipeline) is
// shared, so points differ only in scale.
func RunScaleSweep(algo Algo, opts Options, shapes []Shape, casts int) []SweepPoint {
	points := make([]SweepPoint, 0, len(shapes))
	for _, sh := range shapes {
		points = append(points, runSweepPoint(algo, opts, sh, casts))
	}
	return points
}

func runSweepPoint(algo Algo, opts Options, sh Shape, casts int) SweepPoint {
	opts.Groups, opts.PerGroup = sh.Groups, sh.PerGroup
	var (
		sys        *System
		violations int
	)
	sample := metrics.MeasureResources(func() {
		sys = Build(algo, opts)
		rng := rand.New(rand.NewSource(opts.Seed))
		period := 10 * time.Millisecond
		spread := 2
		if spread > sh.Groups {
			spread = sh.Groups
		}
		if algo == AlgoA2 {
			for g := 0; g < sh.Groups; g++ {
				sys.CastAt(0, sys.Topo.Members(types.GroupID(g))[0], "warm", sys.Topo.AllGroups())
			}
		}
		for i := 0; i < casts; i++ {
			from := types.ProcessID(rng.Intn(sys.Topo.N()))
			dest := make([]types.GroupID, 0, spread)
			for len(dest) < spread {
				g := types.GroupID(rng.Intn(sh.Groups))
				dup := false
				for _, x := range dest {
					dup = dup || x == g
				}
				if !dup {
					dest = append(dest, g)
				}
			}
			sys.CastAt(time.Duration(i+1)*period, from, i, types.NewGroupSet(dest...))
		}
		sys.Run()
		violations = len(sys.Check())
	})
	events := sys.RT.Scheduler().Steps()
	return SweepPoint{
		Shape:          sh,
		Casts:          casts,
		Events:         events,
		EventsPerSec:   sample.PerSec(events),
		AllocsPerEvent: sample.AllocsPer(events),
		Wall:           sample.Wall,
		PeakHeapBytes:  sample.PeakHeap,
		Violations:     violations,
	}
}

// BenchRecord converts the point into the machine-readable form the sweep
// appends to BENCH_sim.json.
func (p SweepPoint) BenchRecord(name string, seed int64) BenchResult {
	return BenchResult{
		Name:           name,
		Topology:       p.Shape.String(),
		Casts:          p.Casts,
		Events:         p.Events,
		EventsPerSec:   p.EventsPerSec,
		AllocsPerEvent: p.AllocsPerEvent,
		WallMS:         float64(p.Wall.Microseconds()) / 1e3,
		PeakHeapBytes:  p.PeakHeapBytes,
		Seed:           seed,
	}
}
