package harness

import (
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestFigure1aLatencyDegrees drives one multicast to k groups through each
// Figure 1(a) algorithm and checks the measured latency degree against the
// paper's row. The caster sits in the last destination group, the generic
// placement under which Delporte's chain costs its full k+1 hops.
func TestFigure1aLatencyDegrees(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, tc := range []struct {
			algo Algo
			want func(k int) int64
		}{
			{AlgoDelporte, func(k int) int64 { return int64(k) + 1 }},
			{AlgoRodrigues, func(int) int64 { return 4 }},
			{AlgoFritzke, func(int) int64 { return 2 }},
			{AlgoA1, func(int) int64 { return 2 }},
			{AlgoSkeen, func(int) int64 { return 2 }},
			{AlgoDetMerge, func(int) int64 { return 1 }},
		} {
			// DetMerge's Δ=1 run follows [1]'s slotted model: every
			// publisher casts in the same slot, so each message's merge is
			// enabled by concurrent casts rather than by later (causally
			// dependent) heartbeats. Latency degree is a minimum over
			// admissible runs, and this is the witness run.
			s := Build(tc.algo, Options{
				Groups: k, PerGroup: 3,
				DetMergeInterval: time.Second,
				DetMergeStop:     500 * time.Millisecond,
			})
			dest := make([]types.GroupID, k)
			for i := range dest {
				dest[i] = types.GroupID(i)
			}
			members := s.Topo.Members(types.GroupID(k - 1))
			caster := members[len(members)-1]
			var id types.MessageID
			s.RT.Scheduler().At(15*time.Millisecond, func() {
				id = s.Cast(caster, "payload", types.NewGroupSet(dest...))
				if tc.algo == AlgoDetMerge {
					for _, p := range s.Topo.AllProcesses() {
						if p != caster {
							s.Cast(p, "slot-fill", types.NewGroupSet(dest...))
						}
					}
				}
			})
			s.Run()
			deg, ok := s.DegreeOf(id)
			if !ok {
				t.Fatalf("%s k=%d: message not delivered", tc.algo, k)
			}
			if want := tc.want(k); deg != want {
				t.Errorf("%s k=%d: latency degree = %d, want %d", tc.algo, k, deg, want)
			}
			if v := s.Check(); len(v) != 0 {
				t.Errorf("%s k=%d: property violations: %v", tc.algo, k, v)
			}
			wantDeliveries := k * 3
			got := 0
			for _, d := range s.Deliveries {
				if d.ID == id {
					got++
				}
			}
			if got != wantDeliveries {
				t.Errorf("%s k=%d: %d deliveries of the cast, want %d", tc.algo, k, got, wantDeliveries)
			}
		}
	}
}

// TestFigure1bLatencyDegrees drives a broadcast through each Figure 1(b)
// algorithm. A2 is probed while synchronized rounds run (its latency-1
// regime); the others are cold-started.
func TestFigure1bLatencyDegrees(t *testing.T) {
	for _, tc := range []struct {
		algo Algo
		want int64
	}{
		{AlgoSousa, 2},
		{AlgoVicente, 2},
		{AlgoA2, 1},
		{AlgoDetMerge, 1},
	} {
		s := Build(tc.algo, Options{
			Groups: 3, PerGroup: 3,
			DetMergeInterval: time.Second,
			DetMergeStop:     500 * time.Millisecond,
		})
		all := s.Topo.AllGroups()
		if tc.algo == AlgoA2 {
			// Synchronize rounds: one warm-up broadcast per group at t=0.
			for g := 0; g < 3; g++ {
				s.CastAt(0, s.Topo.Members(types.GroupID(g))[0], "warm", all)
			}
		}
		caster := s.Topo.Members(0)[1]
		var id types.MessageID
		s.RT.Scheduler().At(15*time.Millisecond, func() {
			id = s.Cast(caster, "probe", all)
			if tc.algo == AlgoDetMerge {
				// [1]'s slotted model: every publisher casts in the slot.
				for _, p := range s.Topo.AllProcesses() {
					if p != caster {
						s.Cast(p, "slot-fill", all)
					}
				}
			}
		})
		s.Run()
		deg, ok := s.DegreeOf(id)
		if !ok {
			t.Fatalf("%s: probe not delivered", tc.algo)
		}
		if deg != tc.want {
			t.Errorf("%s: latency degree = %d, want %d", tc.algo, deg, tc.want)
		}
		if v := s.Check(); len(v) != 0 {
			t.Errorf("%s: property violations: %v", tc.algo, v)
		}
	}
}
