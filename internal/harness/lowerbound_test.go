package harness

import (
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestLowerBoundWitness is the empirical face of Proposition 3.1: across
// every genuine atomic multicast algorithm, seed, topology, and uncontended
// schedule we can construct, no message addressed to ≥2 groups is ever
// delivered with latency degree below two — and A1 attains exactly two,
// witnessing tightness.
func TestLowerBoundWitness(t *testing.T) {
	genuine := []Algo{AlgoA1, AlgoFritzke, AlgoSkeen, AlgoDelporte, AlgoRodrigues}
	for _, algo := range genuine {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			minSeen := int64(1 << 30)
			for seed := int64(0); seed < 4; seed++ {
				for _, k := range []int{2, 3} {
					for caster := 0; caster < 2; caster++ {
						s := Build(algo, Options{Groups: k + 1, PerGroup: 2, Seed: seed})
						dest := make([]types.GroupID, k)
						for i := range dest {
							dest[i] = types.GroupID(i)
						}
						from := s.Topo.Members(types.GroupID(caster))[0]
						var id types.MessageID
						s.RT.Scheduler().At(time.Duration(seed)*time.Millisecond, func() {
							id = s.Cast(from, "probe", types.NewGroupSet(dest...))
						})
						s.Run()
						deg, ok := s.DegreeOf(id)
						if !ok {
							t.Fatalf("seed=%d k=%d: not delivered", seed, k)
						}
						if deg < 2 {
							t.Fatalf("GENUINE MULTICAST BEAT THE LOWER BOUND: %s seed=%d k=%d caster=%d Δ=%d",
								algo, seed, k, caster, deg)
						}
						if deg < minSeen {
							minSeen = deg
						}
					}
				}
			}
			if algo == AlgoA1 && minSeen != 2 {
				t.Fatalf("A1 best degree = %d, want exactly the bound 2", minSeen)
			}
			t.Logf("%s: minimum observed multi-group degree = %d (bound: 2)", algo, minSeen)
		})
	}
}

// TestHarnessSurface exercises the remaining harness API: broadcast
// detection, row listings, and option filling.
func TestHarnessSurface(t *testing.T) {
	if got := len(MulticastAlgos()); got != 5 {
		t.Errorf("MulticastAlgos = %d rows, want 5", got)
	}
	if got := len(BroadcastAlgos()); got != 4 {
		t.Errorf("BroadcastAlgos = %d rows, want 4", got)
	}
	s := Build(AlgoA2, Options{})
	if !s.IsBroadcast() {
		t.Error("A2 must report IsBroadcast")
	}
	if s.Topo.NumGroups() != 2 || s.Topo.N() != 6 {
		t.Errorf("defaults not filled: %d groups, %d processes", s.Topo.NumGroups(), s.Topo.N())
	}
	m := Build(AlgoA1, Options{})
	if m.IsBroadcast() {
		t.Error("A1 must not report IsBroadcast")
	}
	// Broadcast algorithms ignore dest.
	id := s.Cast(0, "x", types.NewGroupSet(0))
	s.Run()
	count := 0
	for _, d := range s.Deliveries {
		if d.ID == id {
			count++
		}
	}
	if count != 6 {
		t.Errorf("broadcast delivered %d times, want 6 (dest ignored)", count)
	}
}

// TestHarnessUnknownAlgoPanics guards the Build dispatch.
func TestHarnessUnknownAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown algorithm")
		}
	}()
	Build(Algo("nope"), Options{})
}

// TestHarnessRunUntil covers partial execution.
func TestHarnessRunUntil(t *testing.T) {
	s := Build(AlgoA1, Options{Groups: 2, PerGroup: 2})
	id := s.Cast(0, "x", types.NewGroupSet(0, 1))
	s.RunUntil(50 * time.Millisecond) // less than one WAN hop
	if _, ok := s.DegreeOf(id); ok {
		t.Error("delivered before the WAN delay elapsed")
	}
	s.Run()
	if _, ok := s.DegreeOf(id); !ok {
		t.Error("not delivered after full run")
	}
}
