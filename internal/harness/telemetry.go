package harness

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"wanamcast/internal/metrics"
)

// Telemetry supplies the live introspection plane's data as closures, so
// the plane serves any host — LiveCluster-backed commands, the sim's live
// mode, or tests — without this package importing them. Every field but
// Stats is optional: a nil closure simply omits its section.
type Telemetry struct {
	// Cmd names the serving command on the index page.
	Cmd string
	// Stats returns the cluster-wide protocol measurements (required).
	Stats func() metrics.Stats
	// Service returns the service-layer counters (requests, replies,
	// stale reads, lease denials).
	Service func() metrics.ServiceStats
	// Stages returns the per-stage latency histograms of the lifecycle
	// tracer. Nil, or an empty result, means tracing is off.
	Stages func() []metrics.StageSummary
	// Spans writes the recent lifecycle spans as JSONL; nil serves 404 on
	// /spans.
	Spans func(w io.Writer) error
	// Gauges returns extra point-in-time gauges (fsync totals, lane
	// depths). Keys must be valid Prometheus metric names; they are
	// emitted verbatim.
	Gauges func() map[string]float64
	// Healthy reports process liveness for /healthz; nil means healthy.
	Healthy func() error
}

// TelemetryServer is a running introspection plane; Close releases its
// listener.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with a ":0" listen address).
func (t *TelemetryServer) Addr() string { return t.ln.Addr().String() }

// Close shuts the plane down. Idempotent.
func (t *TelemetryServer) Close() { _ = t.srv.Close() }

// ServeTelemetry binds addr and serves the introspection plane on it:
// Prometheus-text metrics on /metrics, the recent span dump (JSONL) on
// /spans, and liveness on /healthz. It returns once the listener is
// bound; serving continues until Close.
func ServeTelemetry(addr string, t Telemetry) (*TelemetryServer, error) {
	if t.Stats == nil {
		return nil, fmt.Errorf("telemetry: Stats source is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "%s telemetry\n\n/metrics  Prometheus text\n/spans    recent lifecycle spans (JSONL)\n/healthz  liveness\n", t.Cmd)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, t)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if t.Spans == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_ = t.Spans(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if t.Healthy != nil {
			if err := t.Healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Handler: mux}
	ts := &TelemetryServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return ts, nil
}

// writeMetrics renders one Prometheus-text scrape. Counters come from the
// sources' snapshots, so a scrape is consistent within each section but
// not across sections — fine for monitoring, which is all this is for.
func writeMetrics(w io.Writer, t Telemetry) {
	st := t.Stats()
	emit := func(name string, v float64) { fmt.Fprintf(w, "%s %g\n", name, v) }
	emit("wanamcast_messages_total", float64(st.TotalMessages))
	emit("wanamcast_messages_intergroup_total", float64(st.InterGroupMessages))
	emit("wanamcast_consensus_instances_total", float64(st.ConsensusInstances))
	emit("wanamcast_messages_cast_total", float64(st.MessagesCast))
	emit("wanamcast_messages_delivered_total", float64(st.MessagesDelivered))
	emit("wanamcast_ordered_per_second", st.ThroughputPerSec)
	emit("wanamcast_batches_decided_total", float64(st.BatchesDecided))
	emit("wanamcast_suspicions_total", float64(st.Suspicions))
	emit("wanamcast_trust_restorations_total", float64(st.TrustRestorations))
	emit("wanamcast_leader_changes_total", float64(st.LeaderChanges))
	// Latency degree Δ per message — the paper's WAN-hop count, measured.
	degrees := make([]int64, 0, len(st.DegreeHist))
	for d := range st.DegreeHist {
		degrees = append(degrees, d)
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] < degrees[j] })
	for _, d := range degrees {
		fmt.Fprintf(w, "wanamcast_latency_degree_total{degree=%q} %d\n",
			strconv.FormatInt(d, 10), st.DegreeHist[d])
	}
	if t.Service != nil {
		sv := t.Service()
		emit("wanamcast_requests_total", float64(sv.Requests))
		emit("wanamcast_replies_total", float64(sv.Replies))
		emit("wanamcast_redirects_total", float64(sv.Redirects))
		emit("wanamcast_duplicates_total", float64(sv.Duplicates))
		emit("wanamcast_stale_reads_total", float64(sv.StaleReads))
		emit("wanamcast_lease_denied_total", float64(sv.LeaseDenied))
	}
	if t.Stages != nil {
		for _, s := range t.Stages() {
			if s.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "wanamcast_stage_latency_seconds{stage=%q,quantile=\"0.5\"} %g\n", s.Name, s.P50.Seconds())
			fmt.Fprintf(w, "wanamcast_stage_latency_seconds{stage=%q,quantile=\"0.99\"} %g\n", s.Name, s.P99.Seconds())
			fmt.Fprintf(w, "wanamcast_stage_latency_seconds_count{stage=%q} %d\n", s.Name, s.Count)
		}
	}
	if t.Gauges != nil {
		gs := t.Gauges()
		names := make([]string, 0, len(gs))
		for n := range gs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			emit(n, gs[n])
		}
	}
	fmt.Fprintf(w, "wanamcast_scrape_time_seconds %g\n", float64(time.Now().UnixNano())/1e9)
}

// ValidateTelemetryAddr rejects -telemetry values that cannot be
// listened on: the flag takes a host:port (":9090", "127.0.0.1:0", ...).
func ValidateTelemetryAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("telemetry address must be host:port: %q", addr)
	}
	_ = host // empty host (":9090") binds all interfaces — fine
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("telemetry port must be 0..65535: %q", port)
	}
	return nil
}
