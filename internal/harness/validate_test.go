package harness

import (
	"testing"
	"time"
)

// TestOptionsValidate: option values that would panic deep inside a run
// are rejected up front, and defaultable zero values pass.
func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{},
		{Groups: 3, PerGroup: 3, Inter: time.Second, MaxBatch: 64, A1Pipeline: 4},
		{DataDir: "/tmp/x", NoFsync: true, SnapshotEvery: 128},
		{DataDir: "/tmp/x", SnapshotEvery: -1}, // negative = snapshots off
		{Bandwidth: "50mbit", CompressMin: 4096},
		{Bandwidth: "6.25MB/s", Uncoalesced: true},
		{CompressMin: -1}, // negative = compression off
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good[%d]: unexpected error %v", i, err)
		}
	}
	bad := map[string]Options{
		"neg groups":            {Groups: -1},
		"neg pergroup":          {PerGroup: -2},
		"neg inter":             {Inter: -time.Second},
		"neg jitter":            {Jitter: -1},
		"neg maxbatch":          {MaxBatch: -1},
		"neg pipeline":          {A1Pipeline: -1},
		"neg keepalive":         {A2KeepAlive: -1},
		"neg sendqueue":         {SendQueue: -1},
		"neg flush":             {FlushEvery: -time.Millisecond},
		"neg retry":             {ConsensusRetry: -1},
		"nofsync w/o datadir":   {NoFsync: true},
		"snapshots w/o datadir": {SnapshotEvery: 64},
		"garbage bandwidth":     {Bandwidth: "fifty"},
		"bad bandwidth unit":    {Bandwidth: "50parsecs"},
		"negative bandwidth":    {Bandwidth: "-3mb"},
		"sub-byte bandwidth":    {Bandwidth: "0.5bit"},
		"compressmin below MTU": {CompressMin: 512},
	}
	for name, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, o)
		}
	}
}
