// Package tcp is the live runtime: it runs the same protocol state
// machines as the simulator over real TCP connections on localhost, with
// an injected one-way WAN delay for inter-group links and a heartbeat
// failure detector in place of the simulation oracle.
//
// Every process is a goroutine-confined event loop: incoming frames,
// timers, and local hand-offs are funneled through a per-process inbox, so
// protocol code keeps the paper's "each line executes atomically"
// semantics without internal locking. The wire format is gob; call
// RegisterWireTypes (or register your payload types) before Start.
package tcp

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/baseline"
	"wanamcast/internal/consensus"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// RegisterWireTypes registers every protocol message of this repository
// with encoding/gob. Application payloads beyond the basic types must be
// registered separately by the caller.
func RegisterWireTypes() {
	gob.Register(types.MessageID{})
	gob.Register(types.GroupSet{})
	gob.Register(consensus.ForwardMsg{})
	gob.Register(consensus.PrepareMsg{})
	gob.Register(consensus.PromiseMsg{})
	gob.Register(consensus.AcceptMsg{})
	gob.Register(consensus.AcceptedMsg{})
	gob.Register(consensus.DecideMsg{})
	gob.Register(rmcast.DataMsg{})
	gob.Register(rmcast.Message{})
	gob.Register(amcast.TSMsg{})
	gob.Register(amcast.Descriptor{})
	gob.Register([]amcast.Descriptor{})
	gob.Register(abcast.BundleMsg{})
	gob.Register(abcast.Record{})
	gob.Register([]abcast.Record{})
	gob.Register(baseline.SkeenData{})
	gob.Register(baseline.SkeenProp{})
	gob.Register(heartbeatMsg{})
}

// frame is the wire envelope.
type frame struct {
	From  types.ProcessID
	Proto string
	TS    int64
	Body  any
}

// Config configures a live runtime. By default it hosts every process of
// topo in one OS process (each on its own localhost TCP port); set Local
// to host only a subset and run the rest of Π in other OS processes (see
// cmd/wannode) — the wire protocol is identical either way.
type Config struct {
	Topo *types.Topology
	// Local lists the processes this runtime hosts. Nil means all of Π.
	Local []types.ProcessID
	// BasePort: process p listens on BasePort+p (default 19000).
	BasePort int
	// WANDelay is the injected one-way delay for inter-group frames
	// (default 100 ms). LANDelay applies within a group (default 0: the
	// loopback's real latency).
	WANDelay time.Duration
	LANDelay time.Duration
	// HeartbeatEvery and SuspectAfter tune the failure detector
	// (defaults 50 ms and 250 ms).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	// Recorder receives measurement events; it is locked internally.
	// Nil discards.
	Recorder node.Recorder
}

// Runtime is the live counterpart of node.Runtime.
type Runtime struct {
	cfg   Config
	topo  *types.Topology
	rec   *lockedRecorder
	start time.Time

	procs   []*node.Proc
	inboxes []chan func()
	fds     []*heartbeatFD
	local   []types.ProcessID

	listeners []net.Listener
	connMu    sync.Mutex
	conns     map[connKey]*connection
	accepted  []net.Conn

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

type connKey struct {
	from, to types.ProcessID
}

type connection struct {
	c   net.Conn
	enc *gob.Encoder
}

var debugTCP = os.Getenv("WANAMCAST_TCP_DEBUG") != ""

var _ node.Env = (*Runtime)(nil)

// New builds (but does not start) a live runtime.
func New(cfg Config) *Runtime {
	if cfg.Topo == nil {
		panic("tcp: Config.Topo is required")
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 19000
	}
	if cfg.WANDelay == 0 {
		cfg.WANDelay = 100 * time.Millisecond
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 250 * time.Millisecond
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = node.NopRecorder{}
	}
	rt := &Runtime{
		cfg:   cfg,
		topo:  cfg.Topo,
		rec:   &lockedRecorder{inner: rec},
		conns: make(map[connKey]*connection),
		done:  make(chan struct{}),
	}
	n := cfg.Topo.N()
	rt.procs = make([]*node.Proc, n)
	rt.inboxes = make([]chan func(), n)
	rt.fds = make([]*heartbeatFD, n)
	local := cfg.Local
	if local == nil {
		local = cfg.Topo.AllProcesses()
	}
	rt.local = local
	for _, id := range local {
		rt.procs[id] = node.NewProc(id, cfg.Topo, rt)
		rt.inboxes[id] = make(chan func(), 4096)
		rt.fds[id] = newHeartbeatFD(rt.procs[id], cfg.HeartbeatEvery, cfg.SuspectAfter)
		rt.procs[id].Register(rt.fds[id])
	}
	return rt
}

// Proc returns process id's node for protocol registration (before Start).
// It panics for processes not hosted by this runtime.
func (rt *Runtime) Proc(id types.ProcessID) *node.Proc {
	if rt.procs[id] == nil {
		panic(fmt.Sprintf("tcp: process %v is not hosted by this runtime", id))
	}
	return rt.procs[id]
}

// Detector returns process id's failure detector.
func (rt *Runtime) Detector(id types.ProcessID) *heartbeatFD { return rt.fds[id] }

// Start opens the listeners, launches the event loops, and runs every
// protocol's Start on its own loop.
func (rt *Runtime) Start() error {
	rt.start = time.Now()
	for _, id := range rt.local {
		addr := rt.addr(id)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			rt.Stop()
			return fmt.Errorf("tcp: listen %s: %w", addr, err)
		}
		rt.listeners = append(rt.listeners, ln)
		rt.wg.Add(1)
		go rt.acceptLoop(id, ln)
	}
	for _, id := range rt.local {
		id := id
		rt.wg.Add(1)
		go rt.procLoop(id)
	}
	var startWG sync.WaitGroup
	for _, id := range rt.local {
		id := id
		startWG.Add(1)
		rt.enqueue(id, func() {
			rt.procs[id].StartAll()
			startWG.Done()
		})
	}
	startWG.Wait()
	return nil
}

// Stop terminates the runtime: loops stop, sockets close.
func (rt *Runtime) Stop() {
	rt.stopOnce.Do(func() {
		close(rt.done)
		for _, ln := range rt.listeners {
			_ = ln.Close()
		}
		rt.connMu.Lock()
		for _, c := range rt.conns {
			_ = c.c.Close()
		}
		for _, c := range rt.accepted {
			_ = c.Close()
		}
		rt.connMu.Unlock()
	})
	rt.wg.Wait()
}

// Run executes fn on process id's event loop and waits for it — the only
// safe way for external code to touch protocol state.
func (rt *Runtime) Run(id types.ProcessID, fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	rt.enqueue(id, func() {
		fn()
		wg.Done()
	})
	wg.Wait()
}

// Crash crash-stops process id: its loop ignores everything from now on.
func (rt *Runtime) Crash(id types.ProcessID) {
	rt.Run(id, func() { rt.procs[id].Crash() })
}

func (rt *Runtime) addr(id types.ProcessID) string {
	return fmt.Sprintf("127.0.0.1:%d", rt.cfg.BasePort+int(id))
}

func (rt *Runtime) enqueue(id types.ProcessID, fn func()) {
	select {
	case rt.inboxes[id] <- fn:
	case <-rt.done:
	}
}

func (rt *Runtime) procLoop(id types.ProcessID) {
	defer rt.wg.Done()
	for {
		select {
		case fn := <-rt.inboxes[id]:
			fn()
		case <-rt.done:
			return
		}
	}
}

func (rt *Runtime) acceptLoop(id types.ProcessID, ln net.Listener) {
	defer rt.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		rt.connMu.Lock()
		rt.accepted = append(rt.accepted, conn)
		rt.connMu.Unlock()
		rt.wg.Add(1)
		go rt.readLoop(id, conn)
	}
}

func (rt *Runtime) readLoop(to types.ProcessID, conn net.Conn) {
	defer rt.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if debugTCP {
				fmt.Printf("DEBUG decode error at p%d: %v\n", to, err)
			}
			return // connection closed or corrupt; peers redial
		}
		delay := rt.cfg.LANDelay
		if !rt.topo.SameGroup(f.From, to) {
			delay = rt.cfg.WANDelay
		}
		if debugTCP && f.Proto != "fd" {
			fmt.Printf("DEBUG %v recv %v->%v %s %+v\n", time.Since(rt.start).Round(time.Millisecond), f.From, to, f.Proto, f.Body)
		}
		// f is declared inside the loop body, so each closure captures its
		// own frame.
		deliver := func() {
			rt.enqueue(to, func() {
				if rt.procs[to] != nil {
					rt.procs[to].Deliver(f.From, f.Proto, f.Body, f.TS)
				}
			})
		}
		if delay > 0 {
			time.AfterFunc(delay, deliver)
		} else {
			deliver()
		}
	}
}

// Now implements node.Env: wall time since Start.
func (rt *Runtime) Now() time.Duration { return time.Since(rt.start) }

// Recorder implements node.Env.
func (rt *Runtime) Recorder() node.Recorder { return rt.rec }

// Tracef implements node.Env.
func (rt *Runtime) Tracef(string, ...any) {}

// Later implements node.Env.
func (rt *Runtime) Later(owner *node.Proc, d time.Duration, fn func()) {
	id := owner.Self()
	if d <= 0 {
		rt.enqueue(id, fn)
		return
	}
	time.AfterFunc(d, func() { rt.enqueue(id, fn) })
}

// Transmit implements node.Env. It runs on the sender's loop; self-sends
// short-circuit through the inbox.
func (rt *Runtime) Transmit(from, to types.ProcessID, proto string, body any, sendTS int64) {
	if from == to {
		rt.enqueue(to, func() { rt.procs[to].Deliver(from, proto, body, sendTS) })
		return
	}
	interGroup := !rt.topo.SameGroup(from, to)
	rt.rec.OnSend(proto, from, to, interGroup, rt.Now())
	conn, err := rt.conn(from, to)
	if err != nil {
		if debugTCP {
			fmt.Printf("DEBUG dial error %v->%v: %v\n", from, to, err)
		}
		return // unreachable peer: quasi-reliable links lose nothing between correct processes; a dead peer does not matter
	}
	if err := conn.enc.Encode(frame{From: from, Proto: proto, TS: sendTS, Body: body}); err != nil {
		if debugTCP {
			fmt.Printf("DEBUG encode error %v->%v proto=%s: %v\n", from, to, proto, err)
		}
		rt.dropConn(from, to)
	}
}

func (rt *Runtime) conn(from, to types.ProcessID) (*connection, error) {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	key := connKey{from, to}
	if c, ok := rt.conns[key]; ok {
		return c, nil
	}
	select {
	case <-rt.done:
		return nil, errors.New("tcp: runtime stopped")
	default:
	}
	c, err := net.DialTimeout("tcp", rt.addr(to), time.Second)
	if err != nil {
		return nil, err
	}
	conn := &connection{c: c, enc: gob.NewEncoder(c)}
	rt.conns[key] = conn
	return conn, nil
}

func (rt *Runtime) dropConn(from, to types.ProcessID) {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	key := connKey{from, to}
	if c, ok := rt.conns[key]; ok {
		_ = c.c.Close()
		delete(rt.conns, key)
	}
}

// lockedRecorder makes any Recorder safe for the live runtime's loops.
type lockedRecorder struct {
	mu    sync.Mutex
	inner node.Recorder
}

func (l *lockedRecorder) OnSend(proto string, from, to types.ProcessID, inter bool, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnSend(proto, from, to, inter, at)
}

func (l *lockedRecorder) OnCast(id types.MessageID, ts int64, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnCast(id, ts, at)
}

func (l *lockedRecorder) OnDeliver(id types.MessageID, p types.ProcessID, ts int64, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnDeliver(id, p, ts, at)
}

func (l *lockedRecorder) OnConsensusInstance() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnConsensusInstance()
}

func (l *lockedRecorder) OnBatchDecided(size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnBatchDecided(size)
}
