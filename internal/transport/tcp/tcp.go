// Package tcp is the live runtime: it runs the same protocol state
// machines as the simulator over real TCP connections on localhost, with
// an injected one-way WAN delay for inter-group links and a heartbeat
// failure detector in place of the simulation oracle.
//
// Every process is confined to exactly one ordering lane: incoming
// frames, timers, and local hand-offs are funneled through the lane's
// lock-free inbox ring and executed by the lane goroutine, so protocol
// code keeps the paper's "each line executes atomically" semantics
// without internal locking. By default each hosted process gets its own
// lane (the historical one-goroutine-per-process layout); Config.Lanes
// shards processes across exactly N lane goroutines by group
// (lane = group mod Lanes), so a replica hosting many groups can pin its
// parallelism — the paper's genuine multicast coordinates groups only
// through messages, which cross lanes as ordinary inbox events. The
// receive path demultiplexes decoded frames straight into the
// destination process's lane ring (no intermediate closure, no global
// inbox hop), and the decoded wire body is handed to the protocol
// as-is — zero-copy from the codec to the deliver hook.
//
// Lane back-pressure is explicit: the inbox ring (Config.InboxSize) is
// bounded and lock-free, but when it fills, events PARK in an unbounded
// overflow list — they are never dropped and never block the producer.
// The inbox carries consensus replies, timer callbacks, and delivery
// events, none of which have a retransmission to fall back on; the only
// place this transport drops is the per-connection SEND queue, whose
// drops are protocol-retry-safe (rmcast data and consensus rounds both
// retransmit toward live peers).
//
// The transport is asynchronous and buffered. Transmit runs on the
// sender's process loop and does nothing but enqueue the frame onto a
// bounded per-connection send queue; a dedicated writer goroutine per
// (from, to) pair dials, encodes, and writes. The writer coalesces every
// frame it can take within FlushEvery into one buffered write, so many
// frames share a syscall, and it reuses one encode buffer, so the
// steady-state encode path allocates nothing. A dead or wedged peer
// therefore never stalls a process loop: dials happen off-loop with a
// timeout, writes block only the writer goroutine, and when a queue fills
// the frame is dropped — quasi-reliable links guarantee nothing to crashed
// processes, and the protocols' retry timers recover any frame dropped
// toward a live one.
//
// The default wire format is the zero-allocation internal/wire codec;
// Config.Codec can revert to the legacy encoding/gob stream (the benchmark
// baseline). Either way, call RegisterWireTypes (or gob-register your
// payload types) before Start: non-basic application payloads always ride
// the gob path.
package tcp

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/baseline"
	"wanamcast/internal/consensus"
	"wanamcast/internal/fd"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/ring"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/trace"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// RegisterWireTypes registers every protocol message of this repository
// with encoding/gob (the legacy codec and the fallback payload path).
// Application payloads beyond the basic types must be registered separately
// by the caller.
func RegisterWireTypes() {
	gob.Register(types.MessageID{})
	gob.Register(types.GroupSet{})
	gob.Register(consensus.ForwardMsg{})
	gob.Register(consensus.PrepareMsg{})
	gob.Register(consensus.PromiseMsg{})
	gob.Register(consensus.AcceptMsg{})
	gob.Register(consensus.AcceptedMsg{})
	gob.Register(consensus.DecideMsg{})
	gob.Register(consensus.LearnMsg{})
	gob.Register(rmcast.DataMsg{})
	gob.Register(rmcast.Message{})
	gob.Register(amcast.TSMsg{})
	gob.Register(amcast.Descriptor{})
	gob.Register([]amcast.Descriptor{})
	gob.Register(amcast.SyncReq{})
	gob.Register(amcast.SyncResp{})
	gob.Register(abcast.BundleMsg{})
	gob.Register(abcast.Record{})
	gob.Register([]abcast.Record{})
	gob.Register(abcast.SyncReq{})
	gob.Register(abcast.SyncResp{})
	gob.Register(baseline.SkeenData{})
	gob.Register(baseline.SkeenProp{})
	gob.Register(&heartbeatMsg{})
	gob.Register(&leaseGrantMsg{})
}

// The failure detector's messages are the highest-frequency frames a quiet
// deployment receives, so their decoded bodies come from free-lists: the
// codec draws a pooled pointer, the detector releases it after processing
// (fd.go), and the steady-state heartbeat receive path allocates nothing —
// a pointer in an interface needs no box, unlike the old value bodies.
var (
	hbPool = sync.Pool{New: func() any { return new(heartbeatMsg) }}
	lgPool = sync.Pool{New: func() any { return new(leaseGrantMsg) }}
)

func init() {
	wire.Register(wire.KindHeartbeat,
		func(buf []byte, m *heartbeatMsg) []byte { return wire.AppendVarint(buf, m.Beat) },
		func(data []byte) (*heartbeatMsg, []byte, error) {
			b, rest, err := wire.Varint(data)
			if err != nil {
				return nil, rest, err
			}
			m := hbPool.Get().(*heartbeatMsg)
			m.Beat = b
			return m, rest, nil
		})
	wire.Register(wire.KindLeaseGrant,
		func(buf []byte, m *leaseGrantMsg) []byte { return wire.AppendVarint(buf, m.Beat) },
		func(data []byte) (*leaseGrantMsg, []byte, error) {
			b, rest, err := wire.Varint(data)
			if err != nil {
				return nil, rest, err
			}
			m := lgPool.Get().(*leaseGrantMsg)
			m.Beat = b
			return m, rest, nil
		})
}

// gobFrame is the legacy gob wire envelope (Config.Codec = CodecGob).
type gobFrame struct {
	From  types.ProcessID
	Proto string
	TS    int64
	Body  any
}

// Codec selects the transport's wire format.
type Codec int

const (
	// CodecWire is the zero-allocation length-prefixed binary codec
	// (internal/wire). The default.
	CodecWire Codec = iota
	// CodecGob is the legacy encoding/gob stream, kept as the benchmark
	// baseline and as an escape hatch for exotic payloads.
	CodecGob
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecWire:
		return "wire"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// Default values for the transport knobs (see Config).
const (
	DefaultSendQueue   = 4096
	DefaultInboxSize   = 4096
	DefaultFlushEvery  = 200 * time.Microsecond
	DefaultDialTimeout = time.Second
)

// Config configures a live runtime. By default it hosts every process of
// topo in one OS process (each on its own localhost TCP port); set Local
// to host only a subset and run the rest of Π in other OS processes (see
// cmd/wannode) — the wire protocol is identical either way.
type Config struct {
	Topo *types.Topology
	// Local lists the processes this runtime hosts. Nil means all of Π.
	Local []types.ProcessID
	// BasePort: process p listens on BasePort+p (default 19000).
	BasePort int
	// WANDelay is the injected one-way delay for inter-group frames
	// (default 100 ms). LANDelay applies within a group (default 0: the
	// loopback's real latency).
	WANDelay time.Duration
	LANDelay time.Duration
	// Bandwidth caps every link at this many bytes per second (0 =
	// uncapped): each connection's writer paces itself so a flushed burst
	// occupies the link for its transmission time before further protocol
	// frames go out. Builds into the private fabric's base model; with an
	// injected Config.Fabric the fabric's own base (plus per-link
	// SetBandwidth overrides) governs instead. fd frames are exempt — see
	// fdProto.
	Bandwidth int64
	// HeartbeatEvery and SuspectAfter tune the failure detector
	// (defaults 50 ms and 250 ms).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	// LeaseDuration enables leader leases: each beat a group's leader
	// sends doubles as a lease request its followers countersign, and a
	// majority of countersignatures lets the leader serve linearizable
	// reads locally until (beat + LeaseDuration − MaxClockSkew). 0 (the
	// default) disables leases; Lease(id) then stays permanently invalid.
	// Must comfortably exceed HeartbeatEvery so grants renew the lease
	// before it expires.
	LeaseDuration time.Duration
	// MaxClockSkew is the lease safety margin: the holder shortens its
	// claim by it while granters lengthen their fencing promise by it, so
	// clock RATE drift up to MaxClockSkew per lease window cannot overlap
	// an old holder with a successor (offsets cancel — see leaseGrantMsg).
	// Defaults to 10 ms when leases are enabled.
	MaxClockSkew time.Duration
	// Lanes shards the hosted processes across exactly this many ordering
	// lane goroutines, by group: process p runs on lane
	// group(p) mod Lanes, so a group's whole protocol state stays
	// confined to one lane while different groups order in parallel on
	// different cores. 0 (the default) keeps the historical layout — one
	// lane per hosted process. Lanes=1 serialises every hosted process
	// onto a single goroutine (the single-core baseline the lane-scaling
	// benchmark measures against).
	Lanes int
	// InboxSize bounds each lane's lock-free inbox ring (default 4096).
	// A full ring PARKS further events in an unbounded overflow list —
	// inbox events (consensus replies, timers, deliveries) are never
	// dropped, unlike SendQueue's frames, whose loss is retry-safe.
	InboxSize int
	// SendQueue bounds each connection's outbound frame queue (default
	// 4096). A full queue drops the frame instead of blocking the sender's
	// process loop; protocol retry timers recover drops toward live peers.
	SendQueue int
	// FlushEvery caps how long an encoded frame may sit in a connection's
	// write buffer before it is flushed (default 200 µs). Within the
	// window the writer coalesces every queued frame into one syscall.
	FlushEvery time.Duration
	// DialTimeout bounds each connect attempt (default 1 s). Dials run on
	// writer goroutines, never on process loops; after a failed dial the
	// connection backs off for DialTimeout before trying again, dropping
	// frames meanwhile.
	DialTimeout time.Duration
	// Codec selects the wire format (default CodecWire). Both ends of a
	// deployment must agree.
	Codec Codec
	// Uncoalesced disables batch envelopes: every protocol message goes out
	// as its own length-prefixed frame, one preamble per message, never
	// compressed. This is the pre-envelope wire format, kept as the
	// bandwidth-efficiency baseline the WAN benchmarks compare against.
	// Receivers always understand both forms.
	Uncoalesced bool
	// CompressMin is the batch compression threshold: an envelope whose
	// payload reaches this many bytes is deflated (compress/flate,
	// BestSpeed) unless compression fails to shrink it. 0 means the default
	// (wire.MinCompress, one MTU); negative disables compression entirely.
	// Thresholds in (0, wire.MinCompress) are rejected by harness
	// validation — compressing sub-packet payloads burns CPU for nothing.
	CompressMin int
	// Fabric, when non-nil, is the mutable link table chaos scenarios
	// drive: a severed (from, to) link kills the outbound connection,
	// rejects dials, and parks outbound frames (heartbeats excepted) until
	// the link heals — the transport-level analogue of TCP retransmission
	// carrying data across a partition, so partitions stay admissible
	// quasi-reliable runs. Per-link delay overrides replace the static
	// WANDelay/LANDelay injection. When nil, a private fabric is built
	// from WANDelay/LANDelay; Fabric() exposes it either way. All hosted
	// processes consult the same fabric, which assumes one Runtime per
	// deployment or an external fabric shared between them. An injected
	// fabric's BASE model must have zero Jitter (per-link jitter overrides
	// are fine): base jitter would need the shared rng on the lock-free
	// receive fast path.
	Fabric *network.Fabric
	// Recorder receives measurement events; it is locked internally.
	// Nil discards.
	Recorder node.Recorder
	// Trace, when non-nil, receives debug trace lines (Tracef). It may be
	// called from any runtime goroutine; the runtime serialises calls.
	// When nil and WANAMCAST_TCP_DEBUG is set, traces go to stderr.
	Trace func(format string, args ...any)
	// Tracer, when non-nil, is the structured lifecycle tracer: every
	// hosted Proc records its protocol spans into it, received frames get
	// a span ID and a StageLaneDeq queue-delay span, and the Tracef debug
	// path (Config.Trace / WANAMCAST_TCP_DEBUG) switches from %+v body
	// dumps to compact span-ID lines that join against /spans output.
	Tracer *trace.Tracer
}

// Runtime is the live counterpart of node.Runtime.
type Runtime struct {
	cfg         Config
	topo        *types.Topology
	rec         *lockedRecorder
	wrec        wireRecorder // cfg.Recorder's wire-traffic surface; nil when absent
	compressMin int          // resolved Config.CompressMin; 0 = compression off
	fabric      *network.Fabric
	base        network.Model // the fabric's base, for the override-free fast path
	start       time.Time

	rngMu sync.Mutex
	jrng  *rand.Rand // feeds fabric jitter overrides; dispatch goroutines share it

	tracer *trace.Tracer // nil-safe; nil means lifecycle tracing is off

	procs  []*node.Proc
	lanes  []*lane // every lane goroutine, in creation order
	laneOf []*lane // indexed by ProcessID; nil for processes not hosted here
	fds    []*heartbeatFD
	leases []*fd.Lease // indexed by ProcessID; outlive detector restarts
	local  []types.ProcessID

	listeners []net.Listener
	connMu    sync.Mutex
	links     map[connKey]*link
	open      []net.Conn // every live socket, inbound and outbound; closed by Stop

	traceMu sync.Mutex
	trace   func(format string, args ...any)

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

type connKey struct {
	from, to types.ProcessID
}

var _ node.Env = (*Runtime)(nil)

// New builds (but does not start) a live runtime.
func New(cfg Config) *Runtime {
	if cfg.Topo == nil {
		panic("tcp: Config.Topo is required")
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 19000
	}
	if cfg.WANDelay == 0 {
		cfg.WANDelay = 100 * time.Millisecond
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 250 * time.Millisecond
	}
	if cfg.LeaseDuration > 0 && cfg.MaxClockSkew == 0 {
		cfg.MaxClockSkew = 10 * time.Millisecond
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = DefaultSendQueue
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = DefaultInboxSize
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = node.NopRecorder{}
	}
	// Wire-traffic accounting is an optional recorder surface (the Recorder
	// interface predates it): a recorder that implements wireRecorder gets
	// byte/frame/envelope counts. It is called from writer and read
	// goroutines — concurrently, outside lockedRecorder — so the runtime
	// wraps it in its own lock rather than demanding internal
	// synchronisation of every implementation.
	var wrec wireRecorder
	if w, ok := rec.(wireRecorder); ok {
		wrec = &lockedWireRecorder{inner: w}
	}
	compressMin := cfg.CompressMin
	switch {
	case compressMin == 0:
		compressMin = wire.MinCompress
	case compressMin < 0:
		compressMin = 0 // compression off
	}
	tracef := cfg.Trace
	if tracef == nil && os.Getenv("WANAMCAST_TCP_DEBUG") != "" {
		tracef = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "DEBUG "+format+"\n", args...)
		}
	}
	fabric := cfg.Fabric
	if fabric == nil {
		fabric = network.NewFabric(cfg.Topo, network.Model{
			IntraGroup: cfg.LANDelay,
			InterGroup: cfg.WANDelay,
			Bandwidth:  cfg.Bandwidth,
		})
	}
	rt := &Runtime{
		cfg:         cfg,
		topo:        cfg.Topo,
		rec:         &lockedRecorder{inner: rec},
		wrec:        wrec,
		compressMin: compressMin,
		fabric:      fabric,
		base:        fabric.Base(),
		jrng:        rand.New(rand.NewSource(time.Now().UnixNano())),
		links:       make(map[connKey]*link),
		trace:       tracef,
		tracer:      cfg.Tracer,
		done:        make(chan struct{}),
	}
	// Writer goroutines block on their queues; a fabric transition must
	// wake the affected link so a sever kills its connection immediately
	// (not at the next frame) and a heal flushes the parked frames even if
	// nothing new is being sent.
	fabric.OnTransition(func(l network.Link, severed bool) {
		rt.connMu.Lock()
		lk := rt.links[connKey{l.From, l.To}]
		rt.connMu.Unlock()
		if lk != nil {
			select {
			case lk.wake <- struct{}{}:
			default: // a wake is already pending
			}
		}
	})
	n := cfg.Topo.N()
	rt.procs = make([]*node.Proc, n)
	rt.laneOf = make([]*lane, n)
	rt.fds = make([]*heartbeatFD, n)
	rt.leases = make([]*fd.Lease, n)
	local := cfg.Local
	if local == nil {
		local = cfg.Topo.AllProcesses()
	}
	rt.local = local
	// Lane layout: one lane per hosted process by default; with
	// Config.Lanes > 0, lane index group(p) mod Lanes — every member of a
	// group a runtime hosts shares that group's lane, and groups spread
	// round-robin across the N goroutines.
	byIdx := make(map[int]*lane)
	for _, id := range local {
		var ln *lane
		if cfg.Lanes <= 0 {
			ln = rt.newLane()
		} else {
			idx := int(cfg.Topo.GroupOf(id)) % cfg.Lanes
			ln = byIdx[idx]
			if ln == nil {
				ln = rt.newLane()
				byIdx[idx] = ln
			}
		}
		rt.laneOf[id] = ln
		rt.procs[id] = node.NewProc(id, cfg.Topo, rt)
		rt.procs[id].SetTracer(cfg.Tracer, ln.idx)
		rt.leases[id] = new(fd.Lease)
		rt.fds[id] = newHeartbeatFD(rt.procs[id], cfg.HeartbeatEvery, cfg.SuspectAfter, rt.rec,
			rt.leases[id], cfg.LeaseDuration, cfg.MaxClockSkew)
		rt.procs[id].Register(rt.fds[id])
	}
	return rt
}

func (rt *Runtime) newLane() *lane {
	ln := &lane{
		rt:   rt,
		idx:  len(rt.lanes),
		in:   ring.NewMPSC[laneEvent](rt.cfg.InboxSize),
		wake: make(chan struct{}, 1),
	}
	rt.lanes = append(rt.lanes, ln)
	return ln
}

// LaneCount returns how many lane goroutines this runtime runs.
func (rt *Runtime) LaneCount() int { return len(rt.lanes) }

// LaneDepths snapshots each lane's pending-event count (posted but not
// yet executed) — the telemetry plane's queue-depth gauge. Safe from any
// goroutine; values are instantaneous, not a consistent cut.
func (rt *Runtime) LaneDepths() []int {
	out := make([]int, len(rt.lanes))
	for i, ln := range rt.lanes {
		out[i] = int(ln.depth.Load())
	}
	return out
}

// SameLane reports whether two hosted processes share a lane (tests).
func (rt *Runtime) SameLane(p, q types.ProcessID) bool {
	return rt.laneOf[p] != nil && rt.laneOf[p] == rt.laneOf[q]
}

// Proc returns process id's node for protocol registration (before Start).
// It panics for processes not hosted by this runtime.
func (rt *Runtime) Proc(id types.ProcessID) *node.Proc {
	if rt.procs[id] == nil {
		panic(fmt.Sprintf("tcp: process %v is not hosted by this runtime", id))
	}
	return rt.procs[id]
}

// Detector returns process id's failure detector.
func (rt *Runtime) Detector(id types.ProcessID) *heartbeatFD { return rt.fds[id] }

// Lease returns process id's leader lease. The object is stable across
// Restart (the service layer holds it for the lifetime of the deployment);
// with Config.LeaseDuration == 0 it simply never becomes valid.
func (rt *Runtime) Lease(id types.ProcessID) *fd.Lease { return rt.leases[id] }

// Fabric returns the runtime's link fabric — the chaos control surface.
// It is safe to mutate from any goroutine while the runtime runs.
func (rt *Runtime) Fabric() *network.Fabric { return rt.fabric }

// Start opens the listeners, launches the event loops, and runs every
// protocol's Start on its own loop. Starting a stopped runtime fails:
// Stop is a one-way door (otherwise the startup barrier below would wait
// forever on loops that exit immediately).
func (rt *Runtime) Start() error {
	rt.start = time.Now()
	for _, id := range rt.local {
		addr := rt.addr(id)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			rt.Stop()
			return fmt.Errorf("tcp: listen %s: %w", addr, err)
		}
		if !rt.trackListener(ln) {
			return fmt.Errorf("tcp: runtime already stopped")
		}
		rt.wg.Add(1)
		go rt.acceptLoop(id, ln)
	}
	for _, ln := range rt.lanes {
		rt.wg.Add(1)
		go ln.loop()
	}
	var startWG sync.WaitGroup
	for _, id := range rt.local {
		id := id
		startWG.Add(1)
		rt.enqueue(id, func() {
			rt.procs[id].StartAll()
			startWG.Done()
		})
	}
	startWG.Wait()
	return nil
}

// Stop terminates the runtime: loops stop, sockets close. Stop is
// idempotent and safe to call concurrently (every caller blocks until
// shutdown completes) or concurrently with Start — listeners are handed
// over under connMu, so a racing Start either loses (its listener closes
// immediately and Start errors) or finishes before the close sweep.
func (rt *Runtime) Stop() {
	rt.stopOnce.Do(func() {
		// done is closed under connMu so link() cannot wg.Add a new writer
		// after the shutdown decision (its done-check holds the same lock),
		// and every socket is closed so writer goroutines stuck in a write
		// to a wedged peer unblock — wg.Wait() below cannot hang.
		rt.connMu.Lock()
		close(rt.done)
		for _, c := range rt.open {
			_ = c.Close()
		}
		lns := rt.listeners
		rt.listeners = nil
		rt.connMu.Unlock()
		for _, ln := range lns {
			_ = ln.Close()
		}
	})
	rt.wg.Wait()
}

// trackListener registers a listener for closure by Stop. It reports false
// — closing the listener immediately — when the runtime has already
// stopped, so a Start racing a Stop cannot leak a live socket.
func (rt *Runtime) trackListener(ln net.Listener) bool {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	select {
	case <-rt.done:
		_ = ln.Close()
		return false
	default:
	}
	rt.listeners = append(rt.listeners, ln)
	return true
}

// Run executes fn on process id's event loop and waits for it — the only
// safe way for external code to touch protocol state.
func (rt *Runtime) Run(id types.ProcessID, fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	rt.enqueue(id, func() {
		fn()
		wg.Done()
	})
	wg.Wait()
}

// Async schedules fn on process id's event loop without waiting for it.
// Use for work that must run between protocol events (snapshots) from code
// that may itself be running on that loop.
func (rt *Runtime) Async(id types.ProcessID, fn func()) {
	rt.enqueue(id, fn)
}

// Crash crash-stops process id: its loop ignores everything from now on.
func (rt *Runtime) Crash(id types.ProcessID) {
	rt.Run(id, func() { rt.procs[id].Crash() })
}

// Restart replaces crashed process id with a fresh incarnation. It runs
// entirely as ONE event on id's loop, so no frame or timer can interleave
// with the rebuild: rebuild receives the fresh Proc (already carrying a
// fresh failure detector, in recovering mode — sends suppressed) and must
// register the new protocol endpoints and replay their durable state.
// Afterwards the new incarnation is swapped in, recovering mode ends, and
// every protocol's Start runs. Timers, delivery closures, and sockets of
// the old incarnation keep pointing at the old (crashed, inert) Proc;
// outbound links are reused.
func (rt *Runtime) Restart(id types.ProcessID, rebuild func(proc *node.Proc, det fd.Detector)) error {
	var err error
	rt.Run(id, func() {
		old := rt.procs[id]
		if old == nil {
			err = fmt.Errorf("tcp: process %v is not hosted by this runtime", id)
			return
		}
		if !old.Crashed() {
			err = fmt.Errorf("tcp: process %v is not crashed", id)
			return
		}
		proc := node.NewProc(id, rt.topo, rt)
		proc.SetTracer(rt.tracer, rt.laneOf[id].idx)
		// The lease object persists across incarnations (svc servers hold
		// the pointer), but the new incarnation starts fenced: it re-earns
		// a majority of fresh grants before serving lease reads again.
		rt.leases[id].Revoke()
		hfd := newHeartbeatFD(proc, rt.cfg.HeartbeatEvery, rt.cfg.SuspectAfter, rt.rec,
			rt.leases[id], rt.cfg.LeaseDuration, rt.cfg.MaxClockSkew)
		proc.Register(hfd)
		proc.SetRecovering(true)
		rebuild(proc, hfd)
		rt.procs[id] = proc
		rt.fds[id] = hfd
		proc.SetRecovering(false)
		proc.StartAll()
	})
	return err
}

func (rt *Runtime) addr(id types.ProcessID) string {
	return fmt.Sprintf("127.0.0.1:%d", rt.cfg.BasePort+int(id))
}

func (rt *Runtime) enqueue(id types.ProcessID, fn func()) {
	rt.laneOf[id].post(laneEvent{fn: fn, to: id})
}

// laneEvent is one unit of lane work. The receive path posts deliveries
// as plain field sets (fn == nil) so the hot path allocates no closure;
// timers and Run/Async hand-offs carry an explicit fn. While lifecycle
// tracing is enabled, received frames also carry their span ID and
// enqueue timestamp so the lane can attribute queueing delay (at == 0
// means untimed — tracing was off when the frame arrived).
type laneEvent struct {
	fn    func()
	from  types.ProcessID
	to    types.ProcessID
	proto string
	ts    int64
	body  any
	span  uint64
	at    int64 // enqueue time, ns; 0 = untimed
}

// lane is one ordering goroutine: a bounded MPSC inbox ring fed by read
// loops, timers, and other lanes, drained by a single loop that executes
// events in post order (per producer). A full ring parks events in the
// overflow list — see the package doc's back-pressure contract.
type lane struct {
	rt   *Runtime
	idx  int // position in rt.lanes; the tracer's lane number
	in   *ring.MPSC[laneEvent]
	wake chan struct{} // capacity 1; coalesced wake-up signal

	ovMu sync.Mutex
	ov   []laneEvent
	ovOn atomic.Bool

	depth atomic.Int64 // posted-but-unexecuted events; the telemetry gauge
}

// post hands an event to the lane. It never blocks and never drops:
// ring first; once the ring is full (or an overflow is already pending,
// which keeps per-producer FIFO) the event parks in the overflow list.
// Posts racing Stop are inert — the lane drains what it can and exits.
func (ln *lane) post(ev laneEvent) {
	ln.depth.Add(1)
	if ln.ovOn.Load() || !ln.in.TryPush(ev) {
		ln.ovMu.Lock()
		ln.ovOn.Store(true)
		ln.ov = append(ln.ov, ev)
		ln.ovMu.Unlock()
	}
	select {
	case ln.wake <- struct{}{}:
	default: // a wake is already pending
	}
}

func (ln *lane) loop() {
	rt := ln.rt
	defer rt.wg.Done()
	for {
		n := 0
		for {
			ev, ok := ln.in.TryPop()
			if !ok {
				break
			}
			ln.exec(ev)
			n++
		}
		if ln.ovOn.Load() {
			ln.ovMu.Lock()
			batch := ln.ov
			ln.ov = nil
			if len(batch) == 0 {
				ln.ovOn.Store(false) // overflow drained: ring carries new posts again
			}
			ln.ovMu.Unlock()
			for _, ev := range batch {
				ln.exec(ev)
			}
			n += len(batch)
		}
		if n > 0 {
			continue // more may have arrived while we executed
		}
		select {
		case <-ln.wake:
		case <-rt.done:
			return
		}
	}
}

// exec runs one lane event on the lane goroutine. rt.procs[id] is only
// read and written on id's lane after Start (Restart swaps it via Run),
// so the slot needs no synchronisation here. Timed frames (ev.at != 0,
// stamped by dispatch while tracing) record a StageLaneDeq span whose
// Aux is the time the frame spent queued behind the lane.
func (ln *lane) exec(ev laneEvent) {
	rt := ln.rt
	ln.depth.Add(-1)
	if ev.fn != nil {
		ev.fn()
		return
	}
	if ev.at != 0 {
		rt.tracer.RecordSpan(ev.span, ln.idx, trace.StageLaneDeq, types.MessageID{}, ev.to,
			time.Now().UnixNano()-ev.at)
	}
	if p := rt.procs[ev.to]; p != nil {
		p.Deliver(ev.from, ev.proto, ev.body, ev.ts)
	}
}

// track registers a socket for closure by Stop; sockets opened after Stop
// are closed immediately.
func (rt *Runtime) track(c net.Conn) {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	select {
	case <-rt.done:
		_ = c.Close()
	default:
	}
	rt.open = append(rt.open, c)
}

// untrack forgets a socket its owner has closed, so flapping peers do not
// accumulate dead entries in rt.open across reconnects.
func (rt *Runtime) untrack(c net.Conn) {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	for i, x := range rt.open {
		if x == c {
			rt.open[i] = rt.open[len(rt.open)-1]
			rt.open[len(rt.open)-1] = nil
			rt.open = rt.open[:len(rt.open)-1]
			return
		}
	}
}

func (rt *Runtime) acceptLoop(id types.ProcessID, ln net.Listener) {
	defer rt.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		rt.track(conn)
		rt.wg.Add(1)
		go rt.readLoop(id, conn)
	}
}

func (rt *Runtime) readLoop(to types.ProcessID, conn net.Conn) {
	defer rt.wg.Done()
	defer func() {
		_ = conn.Close()
		rt.untrack(conn)
	}()
	if rt.cfg.Codec == CodecGob {
		dec := gob.NewDecoder(bufio.NewReaderSize(conn, 64<<10))
		for {
			var f gobFrame
			if err := dec.Decode(&f); err != nil {
				rt.Tracef("decode error at %v: %v", to, err)
				return // connection closed or corrupt; peers redial
			}
			if !rt.validFrom(f.From) {
				rt.Tracef("drop frame at %v: sender %d outside topology", to, int(f.From))
				return
			}
			rt.dispatch(to, wire.Frame{From: f.From, Proto: f.Proto, TS: f.TS, Body: f.Body})
		}
	}
	// The wire read path reuses all of its storage across envelopes: the
	// frame scratch, the inflate scratch, and the Batch (whose Msgs slice is
	// recycled). Decoded bodies never alias the scratch buffers — every
	// registered codec copies or builds fresh values — so handing them to
	// lanes while the next envelope overwrites the scratch is safe, and the
	// steady-state receive machinery allocates nothing per envelope.
	br := bufio.NewReaderSize(conn, 64<<10)
	var (
		scratch []byte
		inflate []byte
		bat     wire.Batch
	)
	for {
		data, err := wire.ReadFrameBytes(br, &scratch)
		if err != nil {
			rt.Tracef("decode error at %v: %v", to, err)
			return // connection closed or corrupt; peers redial
		}
		if rt.wrec != nil {
			rt.wrec.OnWireEnvelopeIn(len(data) + 4)
		}
		f, kind, isBatch, err := wire.DecodeFrameOrBatch(data, &bat, &inflate)
		if err != nil {
			rt.Tracef("decode error at %v: %v", to, err)
			return
		}
		if isBatch {
			if !rt.validFrom(bat.From) {
				rt.Tracef("drop batch at %v: sender %d outside topology", to, int(bat.From))
				return
			}
			for i := range bat.Msgs {
				m := &bat.Msgs[i]
				if rt.wrec != nil {
					rt.wrec.OnWireRecv(byte(m.Kind), m.Size)
				}
				rt.dispatch(to, wire.Frame{From: bat.From, Proto: m.Proto, TS: m.TS, Body: m.Body})
			}
			continue
		}
		if !rt.validFrom(f.From) {
			rt.Tracef("drop frame at %v: sender %d outside topology", to, int(f.From))
			return
		}
		if rt.wrec != nil {
			rt.wrec.OnWireRecv(byte(kind), len(data))
		}
		rt.dispatch(to, f)
	}
}

// validFrom guards the receive path against sender IDs outside this
// runtime's topology (a corrupt varint or a peer configured with a
// different Π): the topology lookups in dispatch panic on them, and a
// malformed frame must cost a connection, never the process.
func (rt *Runtime) validFrom(from types.ProcessID) bool {
	return from >= 0 && int(from) < rt.topo.N()
}

// dispatch applies the injected link delay (the fabric's current view of
// it, so delay spikes take effect mid-run) and hands the frame to the
// receiver's event loop. Frames of a link severed after they were written
// still deliver: they are in flight, and in-flight traffic draining during
// a partition is just delay — the sender side stopped writing the moment
// the sever landed.
func (rt *Runtime) dispatch(to types.ProcessID, f wire.Frame) {
	// Read loops run concurrently, and the shared jitter rng needs a lock —
	// but only an ACTIVE fabric can have jitter overrides, so the common
	// case (no chaos this run) stays lock-free: every frame taking a
	// runtime-global mutex here would serialise all receive paths for a
	// knob that is usually untouched. (A base model with static jitter
	// would need the rng too, but the transport's base is built from
	// WANDelay/LANDelay alone; an injected Config.Fabric must keep its
	// base jitter zero.)
	var delay time.Duration
	if rt.fabric.Active() {
		rt.rngMu.Lock()
		delay = rt.fabric.Delay(f.From, to, rt.jrng)
		rt.rngMu.Unlock()
	} else {
		delay = rt.base.Delay(rt.topo, f.From, to, nil)
	}
	// Demultiplex straight into the destination lane: the decoded frame
	// becomes the lane event field-for-field (body handed over as-is —
	// zero-copy from the codec), with no per-frame closure on the
	// zero-delay path.
	ev := laneEvent{from: f.From, to: to, proto: f.Proto, ts: f.TS, body: f.Body}
	if rt.tracer.Enabled() {
		ev.span = rt.tracer.NextSpan()
		ev.at = time.Now().UnixNano()
	}
	// The nil check must come before the call: building the variadic args
	// boxes every operand, which would put allocations back on the
	// receive hot path whenever tracing is off (the default). With a span
	// assigned, the debug line names it instead of %+v-dumping the body —
	// the line joins against the tracer's /spans output by span ID.
	if rt.trace != nil && f.Proto != "fd" {
		if ev.span != 0 {
			rt.Tracef("%v recv span=%d %v->%v %s", time.Since(rt.start).Round(time.Millisecond), ev.span, f.From, to, f.Proto)
		} else {
			rt.Tracef("%v recv %v->%v %s %+v", time.Since(rt.start).Round(time.Millisecond), f.From, to, f.Proto, f.Body)
		}
	}
	if delay > 0 {
		ln := rt.laneOf[to]
		time.AfterFunc(delay, func() { ln.post(ev) })
	} else {
		rt.laneOf[to].post(ev)
	}
}

// Now implements node.Env: wall time since Start.
func (rt *Runtime) Now() time.Duration { return time.Since(rt.start) }

// Recorder implements node.Env.
func (rt *Runtime) Recorder() node.Recorder { return rt.rec }

// Tracef implements node.Env: trace lines go to Config.Trace (or stderr
// under WANAMCAST_TCP_DEBUG), serialised across the runtime's goroutines,
// so live tracing composes with protocol Tracef calls exactly like the
// simulator's.
func (rt *Runtime) Tracef(format string, args ...any) {
	if rt.trace == nil {
		return
	}
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	rt.trace(format, args...)
}

// Later implements node.Env. Timer callbacks whose owning process has
// crashed by fire time are dropped, matching node.Runtime.Later: a dead
// node must not keep driving consensus rounds. The crash flag is
// loop-confined state, so the check runs on the owner's loop.
func (rt *Runtime) Later(owner *node.Proc, d time.Duration, fn func()) {
	id := owner.Self()
	run := func() {
		if owner.Crashed() {
			return
		}
		fn()
	}
	if d <= 0 {
		rt.enqueue(id, run)
		return
	}
	time.AfterFunc(d, func() { rt.enqueue(id, run) })
}

// Transmit implements node.Env. It runs on the sender's loop and never
// blocks: self-sends short-circuit through the inbox and remote sends are
// enqueued to the connection's writer goroutine (dropping if the bounded
// queue is full).
func (rt *Runtime) Transmit(from, to types.ProcessID, proto string, body any, sendTS int64) {
	if from == to {
		rt.laneOf[to].post(laneEvent{from: from, to: to, proto: proto, ts: sendTS, body: body})
		return
	}
	l := rt.link(from, to)
	if l == nil {
		return // runtime stopped
	}
	// fd frames ride their own small queue: a protocol backlog (bandwidth
	// pacing, slow peer) filling l.queue must never drop or delay the
	// liveness signals, or congestion would masquerade as a crash.
	q := l.queue
	if proto == fdProto {
		q = l.fdq
	}
	select {
	case q <- outFrame{proto: proto, ts: sendTS, body: body}:
		// Record only frames actually handed to a writer: counting drops
		// as sends would skew message statistics in exactly the overload
		// regime the queue bound exists for.
		rt.rec.OnSend(proto, from, to, !rt.topo.SameGroup(from, to), rt.Now())
	default:
		rt.Tracef("send queue full: drop %v->%v %s", from, to, proto)
	}
}

// link returns (creating on first use) the outbound connection state for
// the (from, to) pair, or nil if the runtime has stopped.
func (rt *Runtime) link(from, to types.ProcessID) *link {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	key := connKey{from, to}
	if l, ok := rt.links[key]; ok {
		return l
	}
	select {
	case <-rt.done:
		return nil
	default:
	}
	l := &link{
		rt:    rt,
		from:  from,
		to:    to,
		queue: make(chan outFrame, rt.cfg.SendQueue),
		fdq:   make(chan outFrame, 16),
		wake:  make(chan struct{}, 1),
		ctr:   rt.fabric.Counter(from, to),
	}
	rt.links[key] = l
	rt.wg.Add(1)
	go l.writeLoop()
	return l
}

// outFrame is one queued send; the sender's identity lives on the link.
type outFrame struct {
	proto string
	ts    int64
	body  any
	// encSize is writePending scratch: the frame's encoded size inside the
	// envelope being built (-1 when the body failed to encode).
	encSize int
}

// fdProto is the failure detector's proto label. fd frames get transport
// privileges: they are never folded into batch envelopes, never compressed,
// and exempt from bandwidth pacing — a saturated or compressed link must
// keep carrying the liveness signals, or congestion would masquerade as
// crashes.
const fdProto = "fd"

// maxEnvelopeFrames caps how many additional frames the writer pulls off
// its queue into one flush cycle, bounding a single batch envelope.
const maxEnvelopeFrames = 512

// paceChunkBytes caps one write burst on a bandwidth-capped link. Without
// it the writer would hand a whole coalesced cycle — potentially megabytes —
// to the kernel at memory speed and then sit silent through the transmission
// debt, so the peer would see an instantaneous flood followed by a gap. The
// flood is the dangerous half: hundreds of frames land on the receiver's
// lane at once and heartbeat processing queues behind them past
// SuspectAfter. Chunking the burst and paying the debt between chunks makes
// the peer receive at the modeled rate instead.
const paceChunkBytes = 128 << 10

// link owns one outbound TCP connection: a bounded frame queue drained by a
// single writer goroutine that dials, encodes, and writes with coalesced
// flushes. While the fabric severs the link, the writer kills the
// connection, refuses to dial, and parks protocol frames in held until the
// link heals — the heal wakes it through wake.
type link struct {
	rt       *Runtime
	from, to types.ProcessID
	queue    chan outFrame
	fdq      chan outFrame        // fd frames only: immune to protocol backlog
	wake     chan struct{}        // fabric transition signal, capacity 1
	ctr      *network.LinkCounter // the fabric's independent per-link byte count

	// Writer-goroutine state, reused across flush cycles.
	bat      wire.BatchWriter
	pend     []outFrame
	nextFree time.Time // bandwidth pacing: when the written bytes have drained
}

func (l *link) writeLoop() {
	rt := l.rt
	defer rt.wg.Done()
	var (
		conn     net.Conn
		bw       *bufio.Writer
		genc     *gob.Encoder
		buf      []byte // reused wire-encode buffer; zero-alloc steady state
		nextDial time.Time
		held     []outFrame // frames parked while the fabric severs the link
	)
	// teardown closes the connection after a write error. It does NOT arm
	// the dial backoff: a transient error on an established connection
	// (peer restarted its listener, one RST) should redial immediately —
	// blacking the link out for DialTimeout would drop heartbeats long
	// enough to falsely suspect a live peer. Only failed dials back off.
	teardown := func() {
		if conn != nil {
			_ = conn.Close()
			rt.untrack(conn)
		}
		conn, bw, genc = nil, nil, nil
	}
	defer func() {
		if conn != nil {
			_ = conn.Close()
			rt.untrack(conn)
		}
	}()
	for {
		var f outFrame
		var got bool
		select {
		case f = <-l.fdq:
			got = true
		case f = <-l.queue:
			got = true
		case <-l.wake:
			// Fabric transition on this link: fall through to re-check the
			// severed state — killing the connection on a sever, flushing
			// held on a heal.
		case <-rt.done:
			return
		}
		if rt.fabric.Severed(l.from, l.to) {
			// Partition: kill the connection, reject dials, and park the
			// frame — the transport-level stand-in for the TCP retransmit
			// buffer that carries unacked data across a real partition, so
			// the severed link stays a quasi-reliable (arbitrarily slow)
			// channel. Heartbeats are NOT parked: they are ephemeral
			// liveness signals, and withholding them is the whole point —
			// the peer must suspect us until the link heals. The park
			// buffer is bounded by SendQueue; beyond it frames drop, as a
			// full send queue always has (protocol retries recover).
			if conn != nil {
				teardown()
			}
			if got && f.proto != "fd" {
				if len(held) < rt.cfg.SendQueue {
					held = append(held, f)
				} else {
					rt.Tracef("partition hold full: drop %v->%v %s", l.from, l.to, f.proto)
				}
			}
			continue
		}
		if got {
			held = append(held, f)
		}
		if len(held) == 0 {
			continue
		}
		if conn == nil {
			if time.Now().Before(nextDial) {
				held = nil
				continue // peer presumed dead: drop until the backoff expires
			}
			c, err := net.DialTimeout("tcp", rt.addr(l.to), rt.cfg.DialTimeout)
			if err != nil {
				rt.Tracef("dial error %v->%v: %v", l.from, l.to, err)
				nextDial = time.Now().Add(rt.cfg.DialTimeout)
				held = nil
				continue // unreachable peer: quasi-reliable links lose nothing between correct processes
			}
			conn = c
			rt.track(conn)
			bw = bufio.NewWriterSize(conn, 64<<10)
			if rt.cfg.Codec == CodecGob {
				genc = gob.NewEncoder(bw)
			}
		}
		// Coalesce: gather the held frames (usually just the one received
		// above; more after a heal) plus whatever the queue yields within
		// FlushEvery, and write them as one flush. On the wire codec the
		// gathered protocol frames pack into a single batch envelope — one
		// length header and one sender preamble for the whole burst, one
		// syscall — while fd frames are written immediately as plain
		// frames (see fdProto). The legacy gob codec encodes frame by
		// frame, exactly as before.
		deadline := time.Now().Add(rt.cfg.FlushEvery)
		var err error
		pend := l.pend[:0]
		take := func(f outFrame) {
			switch {
			case genc != nil:
				err = genc.Encode(gobFrame{From: l.from, Proto: f.proto, TS: f.ts, Body: f.body})
			case f.proto == fdProto:
				_, err = l.writePlain(bw, &buf, f)
			default:
				pend = append(pend, f)
			}
		}
		for len(held) > 0 && err == nil {
			take(held[0])
			if err == nil {
				held = held[1:]
			}
		}
		if len(held) == 0 {
			held = nil // release the backing array
		}
		for err == nil && len(pend) < maxEnvelopeFrames && time.Now().Before(deadline) {
			var more bool
			select {
			case f = <-l.fdq:
				more = true
			default:
				select {
				case f = <-l.queue:
					more = true
				default:
				}
			}
			if !more {
				break
			}
			take(f)
		}
		// Write the gathered protocol frames. On an uncapped link the whole
		// cycle goes out as one burst (one envelope on the wire codec). On a
		// bandwidth-capped link it goes out in paceChunkBytes chunks with the
		// transmission debt paid between them — modeling the burst draining
		// through a rate-limited pipe, and keeping the peer's receive rate at
		// the modeled rate (see paceChunkBytes).
		rate := rt.fabric.Bandwidth(l.from, l.to)
		limit := 0
		if rate > 0 {
			limit = paceChunkBytes
		}
		for off := 0; err == nil && off < len(pend); {
			var payBytes, used int
			payBytes, used, err = l.writePending(bw, &buf, pend[off:], limit)
			off += used
			if err == nil {
				err = bw.Flush()
			}
			if err == nil && payBytes > 0 && rate > 0 {
				now := time.Now()
				if l.nextFree.Before(now) {
					l.nextFree = now
				}
				l.nextFree = l.nextFree.Add(network.TransmitTime(rate, payBytes))
				err = l.pace(&held, bw, &buf)
			}
		}
		for i := range pend {
			pend[i] = outFrame{} // drop body references
		}
		l.pend = pend[:0]
		if err == nil {
			err = bw.Flush() // fd and gob frames written outside writePending
		}
		if err != nil {
			// Unwritten held frames stay parked for the next attempt (a
			// heal racing a broken connection must not lose them).
			rt.Tracef("write error %v->%v: %v", l.from, l.to, err)
			teardown()
			continue
		}
	}
}

// writePending encodes the cycle's gathered protocol frames: one batch
// envelope when two or more coalesced (unless Config.Uncoalesced reverts to
// the plain per-message format), and also when a lone frame reaches the
// compression threshold — the envelope is the unit of compression, and on a
// payload that size its preamble is noise next to the deflate win. A lone
// frame below the threshold goes out plain: there the preamble costs more
// than it saves. It consumes frames from the front of pend — all of them
// when limit is zero, otherwise stopping once the payload reaches limit
// bytes (always at least one frame) — and returns the pacing-liable wire
// bytes written plus how many frames it consumed.
func (l *link) writePending(bw *bufio.Writer, buf *[]byte, pend []outFrame, limit int) (payBytes, used int, err error) {
	rt := l.rt
	if len(pend) == 0 {
		return 0, 0, nil
	}
	if rt.cfg.Uncoalesced {
		total := 0
		for i := range pend {
			n, werr := l.writePlain(bw, buf, pend[i])
			total += n
			used = i + 1
			if werr != nil {
				return total, used, werr
			}
			if limit > 0 && total >= limit {
				break
			}
		}
		return total, used, nil
	}
	l.bat.Begin(l.from)
	solo := -1
	for i := range pend {
		f := &pend[i]
		n, aerr := l.bat.Add(f.proto, f.ts, f.body)
		used = i + 1
		if aerr != nil {
			// The body itself is unencodable (e.g. an unregistered exotic
			// payload): drop this frame, keep the rest of the envelope.
			rt.Tracef("encode error %v->%v %s: %v", l.from, l.to, f.proto, aerr)
			f.encSize = -1
			continue
		}
		f.encSize = n
		solo = i
		if limit > 0 && l.bat.Len() >= limit {
			break
		}
	}
	if l.bat.Count() == 0 {
		return 0, used, nil
	}
	if l.bat.Count() == 1 && (rt.compressMin <= 0 || l.bat.Len() < rt.compressMin) {
		n, werr := l.writePlain(bw, buf, pend[solo])
		return n, used, werr
	}
	if rt.wrec != nil {
		for i := 0; i < used; i++ {
			if pend[i].encSize >= 0 {
				rt.wrec.OnWireSend(byte(wire.KindOf(pend[i].body)), pend[i].encSize)
			}
		}
	}
	b, rawLen, compLen, wireLen, ferr := l.bat.Finish((*buf)[:0], rt.compressMin)
	if ferr != nil {
		rt.Tracef("encode error %v->%v batch: %v", l.from, l.to, ferr)
		return 0, used, nil
	}
	*buf = b
	l.ctr.Count(wireLen)
	if rt.wrec != nil {
		rt.wrec.OnWireFlush(wireLen, rawLen, compLen)
	}
	_, werr := bw.Write(b)
	return wireLen, used, werr
}

// writePlain encodes one frame in the plain (non-envelope) wire format and
// counts its bytes. It returns the frame's pacing-liable wire bytes: zero
// for fd frames, which are exempt from bandwidth pacing. Encode failures
// drop the frame but keep the connection; only write failures return error.
func (l *link) writePlain(bw *bufio.Writer, buf *[]byte, f outFrame) (int, error) {
	rt := l.rt
	b, err := wire.AppendFrame((*buf)[:0], l.from, f.proto, f.ts, f.body)
	if err != nil {
		rt.Tracef("encode error %v->%v %s: %v", l.from, l.to, f.proto, err)
		return 0, nil
	}
	*buf = b
	l.ctr.Count(len(b))
	if rt.wrec != nil {
		rt.wrec.OnWireSend(byte(wire.KindOf(f.body)), len(b))
		rt.wrec.OnWireFlush(len(b), 0, 0)
	}
	_, err = bw.Write(b)
	if f.proto == fdProto {
		return 0, err
	}
	return len(b), err
}

// pace blocks until the link's transmission-debt clock (nextFree) passes:
// after a burst of n bytes on a link capped at rate bytes/s the writer
// accepts no further protocol frames for TransmitTime(rate, n) — the
// written bytes draining through the modeled pipe. fd frames are exempt:
// they are written and flushed immediately during the wait, so a saturated
// link keeps carrying heartbeats and congestion cannot masquerade as a
// crash. Other frames arriving mid-wait park in held for the next cycle,
// bounded by SendQueue exactly like the partition hold.
func (l *link) pace(held *[]outFrame, bw *bufio.Writer, buf *[]byte) error {
	rt := l.rt
	for {
		d := time.Until(l.nextFree)
		if d <= 0 {
			return nil
		}
		t := time.NewTimer(d)
		select {
		case f := <-l.fdq:
			// fd frames are exempt from pacing: write and flush them
			// through the capped window so the wait cannot starve the
			// failure detector.
			t.Stop()
			if rt.fabric.Severed(l.from, l.to) {
				continue // heartbeats never cross a severed link
			}
			if _, err := l.writePlain(bw, buf, f); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		case f := <-l.queue:
			t.Stop()
			if len(*held) < rt.cfg.SendQueue {
				*held = append(*held, f)
			} else {
				rt.Tracef("pacing hold full: drop %v->%v %s", l.from, l.to, f.proto)
			}
		case <-l.wake:
			t.Stop()
			if rt.fabric.Severed(l.from, l.to) {
				// A sever must kill the connection now: hand control back
				// to the main loop with the wake re-armed so it sees the
				// transition. Remaining debt stays on nextFree.
				select {
				case l.wake <- struct{}{}:
				default:
				}
				return nil
			}
			// A heal or reverse-link transition changes nothing for an
			// unsevered writer: keep pacing.
		case <-rt.done:
			t.Stop()
			return nil
		case <-t.C:
			return nil
		}
	}
}

// wireRecorder is the optional wire-traffic surface of a Recorder
// (metrics.Collector and metrics.LockedCollector implement it). The
// transport calls it from writer and read goroutines concurrently —
// outside lockedRecorder — so the runtime wraps the configured
// implementation in lockedWireRecorder. OnWireSend/OnWireRecv count
// protocol messages and attribute their encoded bytes to a value kind;
// OnWireFlush/OnWireEnvelopeIn own the authoritative wire byte totals, one
// call per envelope (a plain frame is its own envelope).
type wireRecorder interface {
	OnWireSend(kind byte, n int)
	OnWireRecv(kind byte, n int)
	OnWireFlush(wireBytes, rawLen, compLen int)
	OnWireEnvelopeIn(n int)
}

// lockedWireRecorder serialises the concurrent writer/read-goroutine calls
// onto one wireRecorder, so plain (unsynchronised) recorders are safe to
// configure. The counters are a few integer adds; one uncontended mutex per
// envelope is noise next to the write it accounts for.
type lockedWireRecorder struct {
	mu    sync.Mutex
	inner wireRecorder
}

func (l *lockedWireRecorder) OnWireSend(kind byte, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnWireSend(kind, n)
}

func (l *lockedWireRecorder) OnWireRecv(kind byte, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnWireRecv(kind, n)
}

func (l *lockedWireRecorder) OnWireFlush(wireBytes, rawLen, compLen int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnWireFlush(wireBytes, rawLen, compLen)
}

func (l *lockedWireRecorder) OnWireEnvelopeIn(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnWireEnvelopeIn(n)
}

// lockedRecorder makes any Recorder safe for the live runtime's loops.
type lockedRecorder struct {
	mu    sync.Mutex
	inner node.Recorder
}

func (l *lockedRecorder) OnSend(proto string, from, to types.ProcessID, inter bool, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnSend(proto, from, to, inter, at)
}

func (l *lockedRecorder) OnCast(id types.MessageID, ts int64, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnCast(id, ts, at)
}

func (l *lockedRecorder) OnDeliver(id types.MessageID, p types.ProcessID, ts int64, at time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnDeliver(id, p, ts, at)
}

func (l *lockedRecorder) OnConsensusInstance() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnConsensusInstance()
}

func (l *lockedRecorder) OnBatchDecided(size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnBatchDecided(size)
}

// The failure-detector events (fd.Observer) are forwarded only when the
// wrapped recorder cares about them; the per-process heartbeat detectors
// all share this one locked observer.
func (l *lockedRecorder) OnSuspect(g types.GroupID, p types.ProcessID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if obs, ok := l.inner.(fd.Observer); ok {
		obs.OnSuspect(g, p)
	}
}

func (l *lockedRecorder) OnTrustRestored(g types.GroupID, p types.ProcessID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if obs, ok := l.inner.(fd.Observer); ok {
		obs.OnTrustRestored(g, p)
	}
}

func (l *lockedRecorder) OnLeaderChange(g types.GroupID, leader types.ProcessID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if obs, ok := l.inner.(fd.Observer); ok {
		obs.OnLeaderChange(g, leader)
	}
}
