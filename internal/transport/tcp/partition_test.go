package tcp

import (
	"sync"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// sink is a minimal protocol that records received string payloads.
type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) Proto() string { return "sink" }
func (s *sink) Start()        {}
func (s *sink) Receive(from types.ProcessID, body any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, body.(string))
}

func (s *sink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.got...)
}

// TestPartitionHoldsFramesUntilHeal: frames sent while a link is severed
// are parked by the writer (the stand-in for TCP retransmission across a
// real partition) and delivered after the heal — without any further
// traffic on the link, so this also pins the heal wake-up path.
func TestPartitionHoldsFramesUntilHeal(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 1)
	rt := New(Config{Topo: topo, BasePort: 26000, WANDelay: time.Millisecond})
	s := &sink{}
	rt.Proc(0).Register(&sink{})
	rt.Proc(1).Register(s)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	rt.Fabric().Sever(0, 1)
	rt.Run(0, func() { rt.Proc(0).Send(1, "sink", "across-the-partition") })
	time.Sleep(200 * time.Millisecond)
	if got := s.snapshot(); len(got) != 0 {
		t.Fatalf("frame crossed a severed link: %v", got)
	}

	rt.Fabric().Heal(0, 1)
	waitFor(t, 5*time.Second, func() bool { return len(s.snapshot()) == 1 })
	if got := s.snapshot(); got[0] != "across-the-partition" {
		t.Fatalf("released frame = %v", got)
	}
}

// TestPartitionIsDirectional: severing 0→1 leaves 1→0 delivering.
func TestPartitionIsDirectional(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 1)
	rt := New(Config{Topo: topo, BasePort: 26010, WANDelay: time.Millisecond})
	s0 := &sink{}
	rt.Proc(0).Register(s0)
	rt.Proc(1).Register(&sink{})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	rt.Fabric().Sever(0, 1)
	rt.Run(1, func() { rt.Proc(1).Send(0, "sink", "reverse-ok") })
	waitFor(t, 5*time.Second, func() bool { return len(s0.snapshot()) == 1 })
}

// TestPartitionSuspicionAndTrustRestore: an intra-group partition stops
// the heartbeats, so the peers demote the leader after SuspectAfter; the
// heal lets beats resume, trust is restored, and the old leader is
// re-elected — subscribers see both changes.
func TestPartitionSuspicionAndTrustRestore(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(1, 2)
	rt := New(Config{
		Topo:           topo,
		BasePort:       26020,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
	})
	for _, id := range topo.AllProcesses() {
		rt.Proc(id).Register(&sink{})
	}
	var mu sync.Mutex
	var leaders []types.ProcessID
	rt.Detector(1).Subscribe(func(_ types.GroupID, l types.ProcessID) {
		mu.Lock()
		defer mu.Unlock()
		leaders = append(leaders, l)
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Let the detectors see each other first.
	time.Sleep(100 * time.Millisecond)
	rt.Fabric().SeverBidi(0, 1)
	waitFor(t, 5*time.Second, func() bool {
		var l types.ProcessID
		rt.Run(1, func() { l = rt.Detector(1).Leader(0) })
		return l == 1
	})

	rt.Fabric().HealBidi(0, 1)
	waitFor(t, 5*time.Second, func() bool {
		var l types.ProcessID
		rt.Run(1, func() { l = rt.Detector(1).Leader(0) })
		return l == 0
	})
	mu.Lock()
	defer mu.Unlock()
	if len(leaders) < 2 || leaders[len(leaders)-1] != 0 {
		t.Fatalf("leader notifications at p1 = %v, want demotion then re-election of p0", leaders)
	}
}

// TestDelaySpikeOverride: a per-link fabric delay override replaces the
// static injected delay at dispatch time.
func TestDelaySpikeOverride(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 1)
	rt := New(Config{Topo: topo, BasePort: 26030, WANDelay: time.Millisecond})
	s := &sink{}
	rt.Proc(0).Register(&sink{})
	rt.Proc(1).Register(s)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	rt.Fabric().SetDelay(0, 1, 400*time.Millisecond)
	begin := time.Now()
	rt.Run(0, func() { rt.Proc(0).Send(1, "sink", "slow") })
	time.Sleep(150 * time.Millisecond)
	if got := s.snapshot(); len(got) != 0 {
		t.Fatalf("frame beat the delay spike: %v", got)
	}
	waitFor(t, 5*time.Second, func() bool { return len(s.snapshot()) == 1 })
	if since := time.Since(begin); since < 350*time.Millisecond {
		t.Fatalf("spiked frame arrived after %v, want ≥ ~400ms", since)
	}

	// Clearing the override restores the base delay.
	rt.Fabric().ClearDelay(0, 1)
	rt.Run(0, func() { rt.Proc(0).Send(1, "sink", "fast") })
	waitFor(t, 2*time.Second, func() bool { return len(s.snapshot()) == 2 })
}
