//go:build !race

package tcp

// raceEnabled reports whether the race detector instruments this binary;
// allocation pins are skipped under it (instrumentation allocates).
const raceEnabled = false
