package tcp

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestSvcConnRoundTrip: values written on one end come out the other, over
// a real socket, concurrently with replies in the opposite direction.
func TestSvcConnRoundTrip(t *testing.T) {
	ln, err := SvcListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			v, err := conn.ReadMsg()
			if err != nil {
				return
			}
			if err := conn.WriteMsg(types.ProcessID(1), v); err != nil {
				return
			}
		}
	}()

	conn, err := SvcDial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, v := range []any{"hello", 42, []byte{1, 2, 3}, nil, true} {
		if err := conn.WriteMsg(types.NoProcess, v); err != nil {
			t.Fatalf("write %v: %v", v, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, err := conn.ReadMsg()
		if err != nil {
			t.Fatalf("read echo of %v: %v", v, err)
		}
		switch want := v.(type) {
		case []byte:
			if string(got.([]byte)) != string(want) {
				t.Fatalf("echo = %v, want %v", got, want)
			}
		default:
			if got != v {
				t.Fatalf("echo = %v, want %v", got, v)
			}
		}
	}
}

// TestSvcConnReadDeadline: an expired deadline errors the read instead of
// blocking forever.
func TestSvcConnReadDeadline(t *testing.T) {
	ln, err := SvcListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			_, _ = conn.ReadMsg() // hold the conn open, send nothing
		}
	}()
	conn, err := SvcDial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := conn.ReadMsg(); err == nil {
		t.Fatal("ReadMsg returned without data before the deadline")
	}
}

// TestSvcConnCorruptFrame: a hostile length prefix is an error, not a
// panic or an attacker-sized allocation.
func TestSvcConnCorruptFrame(t *testing.T) {
	ln, err := SvcListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		_, err = conn.ReadMsg()
		errCh <- err
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<31) // far beyond MaxFrame
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("server accepted a frame longer than MaxFrame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not reject the corrupt frame")
	}
}
