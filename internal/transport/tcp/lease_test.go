package tcp

import (
	"reflect"
	"testing"
	"time"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// TestLeaseWireRoundTrip: the lease protocol's frames survive the binary
// codec exactly, including negative and large beats, and truncations
// error instead of panicking.
func TestLeaseWireRoundTrip(t *testing.T) {
	RegisterWireTypes()
	for _, v := range []any{
		&heartbeatMsg{Beat: 0},
		&heartbeatMsg{Beat: -5},
		&heartbeatMsg{Beat: 1 << 40},
		&leaseGrantMsg{Beat: 1 << 40},
		&leaseGrantMsg{Beat: -1},
	} {
		buf := wire.AppendValue(nil, v)
		got, rest, err := wire.DecodeValue(buf)
		if err != nil {
			t.Fatalf("%#v: decode: %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%#v: %d trailing bytes", v, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip = %#v, want %#v", got, v)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := wire.DecodeValue(buf[:cut]); err == nil {
				// A strict prefix may cut before the varint begins, which
				// is only valid if it decodes to something else entirely;
				// the varint itself must never accept a truncation.
				if cut > 1 {
					t.Fatalf("%#v truncated to %d/%d bytes decoded without error", v, cut, len(buf))
				}
			}
		}
	}
}

// TestLeaderLeaseAcquireAndFence drives the live lease protocol through
// its full cycle on one group of three: the rank-0 leader earns a lease
// from a majority of grants; isolating it lets the grants age out and the
// successor take over; and the two incarnations never overlap — the old
// holder's lease lapses strictly before the successor's activates, which
// is the whole safety argument for serving reads under it.
func TestLeaderLeaseAcquireAndFence(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(1, 3)
	rt := New(Config{
		Topo:           topo,
		BasePort:       27200,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		LeaseDuration:  80 * time.Millisecond,
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	old, succ := rt.Lease(0), rt.Lease(1)
	waitFor(t, 5*time.Second, func() bool { return old.Valid() })
	if succ.Valid() {
		t.Fatal("a follower holds a lease while the leader does")
	}

	rt.Fabric().Isolate(0)
	waitFor(t, 5*time.Second, func() bool { return succ.Valid() })
	// The successor only activates once every promise to the old holder
	// has expired, so the old lease must already have lapsed.
	if old.Valid() {
		t.Fatal("old holder's lease still valid after the successor activated")
	}
	oldEnd := old.ExpiredAt()
	if oldEnd.IsZero() {
		// Passive expiry is frozen lazily; an untouched lease still shows
		// its final deadline as ValidUntil.
		oldEnd = old.ValidUntil()
	}
	if !oldEnd.Before(succ.ActivatedAt()) {
		t.Fatalf("lease overlap: old holder held until %v, successor active from %v",
			oldEnd, succ.ActivatedAt())
	}

	// Heal: trust restores, leadership reverts to rank 0, the successor
	// revokes on demotion, and the old leader re-earns a fresh incarnation.
	rt.Fabric().HealIsolate(0)
	waitFor(t, 5*time.Second, func() bool { return old.Valid() })
	waitFor(t, 5*time.Second, func() bool { return !succ.Valid() })
	if old.Activations() < 2 {
		t.Fatalf("old leader re-earned its lease without a fresh activation (activations=%d)", old.Activations())
	}
}
