package tcp

import (
	"sync"
	"testing"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/types"
)

// TestLaneLayout pins the lane-assignment contract: Lanes=0 keeps the
// historical one-lane-per-process layout, Lanes=N shards by group mod N,
// and Lanes=1 serialises everything onto a single goroutine.
func TestLaneLayout(t *testing.T) {
	topo := types.NewTopology(4, 2) // groups {0,1},{2,3},{4,5},{6,7}

	legacy := New(Config{Topo: topo, BasePort: 22000})
	if got := legacy.LaneCount(); got != topo.N() {
		t.Fatalf("Lanes=0: %d lanes, want %d (one per process)", got, topo.N())
	}
	if legacy.SameLane(0, 1) {
		t.Fatal("Lanes=0: group peers must not share a lane")
	}

	two := New(Config{Topo: topo, BasePort: 22000, Lanes: 2})
	if got := two.LaneCount(); got != 2 {
		t.Fatalf("Lanes=2: %d lanes, want 2", got)
	}
	for _, id := range topo.AllProcesses() {
		// Same group ⇒ same lane, always.
		for _, peer := range topo.Members(topo.GroupOf(id)) {
			if !two.SameLane(id, peer) {
				t.Fatalf("Lanes=2: %v and %v share group %v but not a lane", id, peer, topo.GroupOf(id))
			}
		}
	}
	// group mod 2: groups 0,2 on one lane; 1,3 on the other.
	if !two.SameLane(0, 4) || !two.SameLane(2, 6) {
		t.Fatal("Lanes=2: groups with equal index mod 2 must share a lane")
	}
	if two.SameLane(0, 2) {
		t.Fatal("Lanes=2: groups 0 and 1 must be on different lanes")
	}

	one := New(Config{Topo: topo, BasePort: 22000, Lanes: 1})
	if got := one.LaneCount(); got != 1 {
		t.Fatalf("Lanes=1: %d lanes, want 1", got)
	}
	if !one.SameLane(0, 7) {
		t.Fatal("Lanes=1: every process must share the single lane")
	}
}

// TestLaneInboxOverflowParks drives a deliberately tiny inbox ring far
// past capacity from several concurrent producers and checks the
// back-pressure contract: every event executes, in per-producer order —
// parked, never dropped.
func TestLaneInboxOverflowParks(t *testing.T) {
	topo := types.NewTopology(1, 2)
	rt := New(Config{Topo: topo, BasePort: 22010, Lanes: 1, InboxSize: 8})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	const producers = 4
	const perProducer = 2000
	var mu sync.Mutex
	got := make([][]int, producers)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				i := i
				rt.Async(types.ProcessID(p%topo.N()), func() {
					mu.Lock()
					got[p] = append(got[p], i)
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for p := 0; p < producers; p++ {
			if len(got[p]) != perProducer {
				return false
			}
		}
		return true
	})
	mu.Lock()
	defer mu.Unlock()
	for p := 0; p < producers; p++ {
		for i, v := range got[p] {
			if v != i {
				t.Fatalf("producer %d: event %d executed at position %d — per-producer FIFO broken", p, v, i)
			}
		}
	}
}

// TestLiveBroadcastLanesShared runs the total-order broadcast check with
// four processes multiplexed onto two lanes over real sockets: sharing a
// lane must be invisible to the protocols.
func TestLiveBroadcastLanesShared(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 2)
	rt := New(Config{
		Topo:     topo,
		BasePort: 22020,
		WANDelay: 5 * time.Millisecond,
		Lanes:    2,
	})
	log := newLog()
	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:     rt.Proc(id),
			Detector: rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) {
				log.add(id, mid)
			},
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	const casts = 8
	for i := 0; i < casts; i++ {
		i := i
		from := types.ProcessID(i % topo.N())
		rt.Run(from, func() { eps[from].ABCast(i) })
	}
	waitFor(t, 15*time.Second, func() bool {
		for _, id := range topo.AllProcesses() {
			if len(log.seq(id)) < casts {
				return false
			}
		}
		return true
	})
	ref := log.seq(0)
	for _, id := range topo.AllProcesses()[1:] {
		seq := log.seq(id)
		for i := range ref {
			if seq[i] != ref[i] {
				t.Fatalf("process %v delivery %d = %v, want %v (total order broken across shared lanes)", id, i, seq[i], ref[i])
			}
		}
	}
}
