package tcp

import (
	"sync"
	"testing"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/amcast"
	"wanamcast/internal/metrics"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/types"
)

// deliveryLog collects A-Deliver events safely across process loops.
type deliveryLog struct {
	mu   sync.Mutex
	seqs map[types.ProcessID][]types.MessageID
}

func newLog() *deliveryLog {
	return &deliveryLog{seqs: make(map[types.ProcessID][]types.MessageID)}
}

func (l *deliveryLog) add(p types.ProcessID, id types.MessageID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seqs[p] = append(l.seqs[p], id)
}

func (l *deliveryLog) seq(p types.ProcessID) []types.MessageID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]types.MessageID(nil), l.seqs[p]...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

func TestLiveBroadcastTotalOrder(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 2)
	col := &metrics.Collector{}
	rt := New(Config{
		Topo:     topo,
		BasePort: 21100,
		WANDelay: 20 * time.Millisecond,
		Recorder: col,
	})
	log := newLog()
	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:     rt.Proc(id),
			Detector: rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) {
				log.add(id, mid)
			},
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	const casts = 6
	for i := 0; i < casts; i++ {
		i := i
		from := types.ProcessID(i % topo.N())
		rt.Run(from, func() { eps[from].ABCast(i) })
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, p := range topo.AllProcesses() {
			if len(log.seq(p)) < casts {
				return false
			}
		}
		return true
	})
	ref := log.seq(0)
	for _, p := range topo.AllProcesses()[1:] {
		seq := log.seq(p)
		for i := 0; i < casts; i++ {
			if seq[i] != ref[i] {
				t.Fatalf("live total order diverges at %d: p0=%v p%v=%v", i, ref[i], p, seq[i])
			}
		}
	}
}

func TestLiveMulticastGenuine(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(3, 2)
	col := &metrics.Collector{LogSends: true}
	rt := New(Config{
		Topo:     topo,
		BasePort: 21200,
		WANDelay: 20 * time.Millisecond,
		Recorder: col,
	})
	log := newLog()
	eps := make([]*amcast.Mcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = amcast.New(amcast.Config{
			Host:       rt.Proc(id),
			Detector:   rt.Detector(id),
			SkipStages: true,
			OnDeliver: func(m rmcast.Message) {
				log.add(id, m.ID)
			},
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	var id types.MessageID
	rt.Run(0, func() { id = eps[0].AMCast("live", types.NewGroupSet(0, 1)) })
	waitFor(t, 10*time.Second, func() bool {
		for _, p := range []types.ProcessID{0, 1, 2, 3} {
			seq := log.seq(p)
			if len(seq) != 1 || seq[0] != id {
				return false
			}
		}
		return true
	})
	// Group 2 delivered nothing and sent no a1 traffic (genuineness).
	if len(log.seq(4)) != 0 || len(log.seq(5)) != 0 {
		t.Fatal("uninvolved group delivered")
	}
	rt.Stop()
	for _, s := range col.Sends() {
		if s.Proto == "fd" {
			continue // heartbeats are infrastructure, not protocol traffic
		}
		if g := topo.GroupOf(s.From); g == 2 {
			t.Fatalf("uninvolved group 2 sent %s traffic", s.Proto)
		}
	}
}

func TestLiveLeaderCrashRecovers(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 3)
	rt := New(Config{
		Topo:           topo,
		BasePort:       21300,
		WANDelay:       10 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   100 * time.Millisecond,
	})
	log := newLog()
	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:     rt.Proc(id),
			Detector: rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) {
				log.add(id, mid)
			},
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	// Crash group 0's leader, then broadcast from a survivor: the new
	// leader must drive the round.
	rt.Crash(0)
	var id types.MessageID
	rt.Run(1, func() { id = eps[1].ABCast("after-crash") })
	waitFor(t, 15*time.Second, func() bool {
		for _, p := range []types.ProcessID{1, 2, 3, 4, 5} {
			found := false
			for _, got := range log.seq(p) {
				if got == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})
}
