package tcp

import (
	"testing"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/types"
)

// TestMultiRuntimeBroadcast splits a 2×2 system across two separate
// Runtime instances (the cmd/wannode deployment shape, in-process here)
// and checks that a broadcast crosses the runtime boundary and totally
// orders everywhere.
func TestMultiRuntimeBroadcast(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 2)
	log := newLog()

	mk := func(local []types.ProcessID) (*Runtime, map[types.ProcessID]*abcast.Bcast) {
		rt := New(Config{
			Topo:     topo,
			Local:    local,
			BasePort: 21500,
			WANDelay: 15 * time.Millisecond,
		})
		eps := make(map[types.ProcessID]*abcast.Bcast)
		for _, id := range local {
			id := id
			eps[id] = abcast.New(abcast.Config{
				Host:     rt.Proc(id),
				Detector: rt.Detector(id),
				OnDeliver: func(mid types.MessageID, _ any) {
					log.add(id, mid)
				},
			})
		}
		return rt, eps
	}

	// Group 0 lives in runtime A, group 1 in runtime B.
	rtA, epsA := mk([]types.ProcessID{0, 1})
	rtB, epsB := mk([]types.ProcessID{2, 3})
	if err := rtA.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtA.Stop()
	if err := rtB.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtB.Stop()

	var first, second types.MessageID
	rtA.Run(0, func() { first = epsA[0].ABCast("from-runtime-A") })
	time.Sleep(20 * time.Millisecond)
	rtB.Run(3, func() { second = epsB[3].ABCast("from-runtime-B") })

	waitFor(t, 15*time.Second, func() bool {
		for _, p := range topo.AllProcesses() {
			if len(log.seq(p)) < 2 {
				return false
			}
		}
		return true
	})
	for _, p := range topo.AllProcesses() {
		seq := log.seq(p)
		if seq[0] != log.seq(0)[0] || seq[1] != log.seq(0)[1] {
			t.Fatalf("cross-runtime order diverges at p%v: %v vs %v", p, seq, log.seq(0))
		}
	}
	_ = first
	_ = second
}

// TestProcPanicsForRemote: asking a runtime for a process it does not host
// is a wiring bug and must panic.
func TestProcPanicsForRemote(t *testing.T) {
	topo := types.NewTopology(2, 1)
	rt := New(Config{Topo: topo, Local: []types.ProcessID{0}, BasePort: 21600})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-local process")
		}
	}()
	rt.Proc(1)
}
