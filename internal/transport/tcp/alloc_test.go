package tcp

import (
	"bytes"
	"testing"

	"wanamcast/internal/wire"
)

// TestReceiveEnvelopeZeroAllocs pins the acceptance bar for the receive
// path: reading a batch envelope off a connection and decoding every
// sub-message allocates nothing once the buffers and pools are warm. The
// pieces under test are exactly what readLoop uses — ReadFrameBytes into a
// reused scratch, DecodeFrameOrBatch into a reused Batch, and pooled
// pointer bodies released after processing, the way heartbeatFD.Receive
// releases them at the end of lane processing.
func TestReceiveEnvelopeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin holds without it")
	}
	RegisterWireTypes()
	var bw wire.BatchWriter
	bw.Begin(3)
	for i := 0; i < 16; i++ {
		if _, err := bw.Add(fdProto, int64(i), &heartbeatMsg{Beat: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	frame, _, _, _, err := bw.Finish(nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(frame)
	var scratch, inflate []byte
	var bat wire.Batch
	recv := func() {
		r.Reset(frame)
		data, err := wire.ReadFrameBytes(r, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		_, kind, isBatch, err := wire.DecodeFrameOrBatch(data, &bat, &inflate)
		if err != nil {
			t.Fatal(err)
		}
		if !isBatch || kind != wire.KindBatch || len(bat.Msgs) != 16 {
			t.Fatalf("decoded kind=%d isBatch=%v msgs=%d", kind, isBatch, len(bat.Msgs))
		}
		for i := range bat.Msgs {
			m, ok := bat.Msgs[i].Body.(*heartbeatMsg)
			if !ok || m.Beat != int64(i) {
				t.Fatalf("msg %d: %#v", i, bat.Msgs[i].Body)
			}
			hbPool.Put(m)
		}
	}
	// Warm the scratch buffers, the Msgs storage, the proto intern table,
	// and the heartbeat pool.
	for i := 0; i < 64; i++ {
		recv()
	}
	if allocs := testing.AllocsPerRun(200, recv); allocs != 0 {
		t.Fatalf("envelope receive allocates %.1f objects/envelope, want 0", allocs)
	}
}

func BenchmarkReceiveEnvelope(b *testing.B) {
	RegisterWireTypes()
	var bw wire.BatchWriter
	bw.Begin(3)
	for i := 0; i < 16; i++ {
		bw.Add(fdProto, int64(i), &heartbeatMsg{Beat: int64(i)})
	}
	frame, _, _, _, _ := bw.Finish(nil, 0)
	r := bytes.NewReader(frame)
	var scratch, inflate []byte
	var bat wire.Batch
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		r.Reset(frame)
		data, _ := wire.ReadFrameBytes(r, &scratch)
		wire.DecodeFrameOrBatch(data, &bat, &inflate)
		for i := range bat.Msgs {
			hbPool.Put(bat.Msgs[i].Body.(*heartbeatMsg))
		}
	}
}
