package tcp

import (
	"bufio"
	"net"
	"sync"
	"time"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// The client-facing side of the live runtime: unlike the process-to-process
// transport above (fixed topology, per-pair writer goroutines, injected WAN
// delay), service connections are ad-hoc — any number of clients dial in,
// speak length-prefixed internal/wire frames, and hang up. SvcListen /
// SvcDial / SvcConn are the shared framing layer that internal/svc builds
// its request/reply protocol on.

// SvcProto labels service frames on the wire (wire.Frame.Proto).
const SvcProto = "svc"

// SvcConn is one client-facing connection speaking length-prefixed
// internal/wire values. Reads and writes are independently safe for
// concurrent use: writes serialise on an internal lock (replies may be
// issued from a different goroutine than the reader), reads must come from
// a single goroutine at a time.
type SvcConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte

	rbuf []byte
}

// NewSvcConn wraps an established connection.
func NewSvcConn(c net.Conn) *SvcConn {
	return &SvcConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// SvcDial connects to a service listener.
func SvcDial(addr string, timeout time.Duration) (*SvcConn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewSvcConn(c), nil
}

// WriteMsg sends one value as a wire frame. from identifies the sender
// (servers use their ProcessID, clients types.NoProcess). It is safe to
// call from any goroutine.
func (s *SvcConn) WriteMsg(from types.ProcessID, v any) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	b, err := wire.AppendFrame(s.wbuf[:0], from, SvcProto, 0, v)
	if err != nil {
		return err
	}
	s.wbuf = b
	_, err = s.c.Write(b)
	return err
}

// ReadMsg reads the next frame and returns its body. Errors (including
// corruption and deadline expiry) are terminal for the connection.
func (s *SvcConn) ReadMsg() (any, error) {
	f, err := wire.ReadFrame(s.br, &s.rbuf)
	if err != nil {
		return nil, err
	}
	return f.Body, nil
}

// SetReadDeadline bounds the next ReadMsg.
func (s *SvcConn) SetReadDeadline(t time.Time) error { return s.c.SetReadDeadline(t) }

// SetWriteDeadline bounds subsequent WriteMsg calls.
func (s *SvcConn) SetWriteDeadline(t time.Time) error { return s.c.SetWriteDeadline(t) }

// Close closes the underlying socket.
func (s *SvcConn) Close() error { return s.c.Close() }

// RemoteAddr returns the peer address (diagnostics).
func (s *SvcConn) RemoteAddr() net.Addr { return s.c.RemoteAddr() }

// SvcListener accepts client-facing service connections.
type SvcListener struct {
	ln net.Listener
}

// SvcListen opens a service listener on addr ("host:port"; port 0 picks a
// free port — read it back with Addr).
func SvcListen(addr string) (*SvcListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &SvcListener{ln: ln}, nil
}

// Accept waits for the next client connection.
func (l *SvcListener) Accept() (*SvcConn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewSvcConn(c), nil
}

// Addr returns the bound address.
func (l *SvcListener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting; blocked Accept calls return an error.
func (l *SvcListener) Close() error { return l.ln.Close() }
