package tcp

// Tests for the asynchronous buffered transport: a dead or wedged peer
// must never stall a process loop, crashed owners' timers must be dropped
// at fire time, and tracing must flow through Config.Trace.

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"wanamcast/internal/abcast"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// sinkProto records every receive for one process.
type sinkProto struct {
	mu   sync.Mutex
	got  []any
	name string
}

func (s *sinkProto) Proto() string { return s.name }
func (s *sinkProto) Start()        {}
func (s *sinkProto) Receive(_ types.ProcessID, body any) {
	s.mu.Lock()
	s.got = append(s.got, body)
	s.mu.Unlock()
}
func (s *sinkProto) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

// TestDeadPeerDoesNotStallLoop is the acceptance test for the async
// transport: with one peer wedged (accepting but never reading, so TCP
// backpressure eventually blocks writes) and another peer's port dead, a
// burst of sends from the process loop must return immediately, and a
// frame to a live peer must still arrive promptly.
func TestDeadPeerDoesNotStallLoop(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(1, 4) // p0 sender, p1 live, p2 wedged, p3 dead
	const basePort = 21700

	// p2: a wedged peer — accepts connections and never reads them.
	wedged, err := net.Listen("tcp", "127.0.0.1:21702")
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	var wedgedConns []net.Conn
	var wedgedMu sync.Mutex
	go func() {
		for {
			c, err := wedged.Accept()
			if err != nil {
				return
			}
			wedgedMu.Lock()
			wedgedConns = append(wedgedConns, c)
			wedgedMu.Unlock()
		}
	}()
	defer func() {
		wedgedMu.Lock()
		for _, c := range wedgedConns {
			_ = c.Close()
		}
		wedgedMu.Unlock()
	}()
	// p3's port is simply never opened: dials fail outright.

	flush := 5 * time.Millisecond
	rtA := New(Config{Topo: topo, Local: []types.ProcessID{0}, BasePort: basePort, FlushEvery: flush, DialTimeout: 200 * time.Millisecond})
	rtB := New(Config{Topo: topo, Local: []types.ProcessID{1}, BasePort: basePort, FlushEvery: flush})
	sink := &sinkProto{name: "t"}
	rtB.Proc(1).Register(sink)
	// Start the receiver first so p0's link to p1 connects on its first
	// dial (a frame sent during the initial dial backoff is legitimately
	// dropped, and this test's sends are one-shot).
	if err := rtB.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtB.Stop()
	if err := rtA.Start(); err != nil {
		t.Fatal(err)
	}
	defer rtA.Stop()

	// Warm the p0→p1 link: ping until the sink sees one, so the later
	// one-shot latency measurement starts from an established connection.
	warmDeadline := time.Now().Add(5 * time.Second)
	for sink.count() == 0 {
		if time.Now().After(warmDeadline) {
			t.Fatal("could not establish the p0→p1 link")
		}
		rtA.Run(0, func() { rtA.Transmit(0, 1, "t", "warm", 0) })
		time.Sleep(5 * time.Millisecond)
	}
	warm := sink.count()

	// Burst enough bytes at the wedged and dead peers to exhaust any
	// kernel buffering many times over, all from p0's event loop. The loop
	// must come back essentially immediately: encodes, dials, and writes
	// all happen on writer goroutines.
	payload := make([]byte, 64<<10)
	start := time.Now()
	rtA.Run(0, func() {
		for i := 0; i < 300; i++ {
			rtA.Transmit(0, 2, "t", payload, 0)
			rtA.Transmit(0, 3, "t", payload, 0)
		}
	})
	if stall := time.Since(start); stall > 500*time.Millisecond {
		t.Fatalf("process loop stalled %v bursting at dead peers", stall)
	}

	// Sends to the live peer keep flowing while p2 stays wedged and p3
	// stays dead.
	sent := time.Now()
	rtA.Run(0, func() { rtA.Transmit(0, 1, "t", "alive?", 0) })
	deadline := time.Now().Add(2 * time.Second)
	for sink.count() <= warm && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.count() <= warm {
		t.Fatal("live peer did not receive while dead peers were wedged")
	}
	if lat := time.Since(sent); lat > time.Second {
		t.Fatalf("live-peer delivery took %v with dead peers in the system", lat)
	}
}

// TestLaterDropsCrashedOwnerTimers: a timer scheduled through the env-level
// Later must not fire once its owning process has crashed — the same
// guarantee node.Runtime.Later gives the simulator.
func TestLaterDropsCrashedOwnerTimers(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(1, 2)
	rt := New(Config{Topo: topo, BasePort: 21850})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	var mu sync.Mutex
	fired := map[string]bool{}
	mark := func(k string) func() {
		return func() {
			mu.Lock()
			fired[k] = true
			mu.Unlock()
		}
	}
	rt.Later(rt.Proc(0), 80*time.Millisecond, mark("crashed-owner"))
	rt.Later(rt.Proc(1), 80*time.Millisecond, mark("live-owner"))
	rt.Crash(0)
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired["crashed-owner"] {
		t.Fatal("timer of a crashed owner fired")
	}
	if !fired["live-owner"] {
		t.Fatal("timer of a live owner did not fire")
	}
}

// TestTraceCapturesTransportEvents: Config.Trace receives receive-path
// trace lines, so live tracing behaves like the simulator's.
func TestTraceCapturesTransportEvents(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(1, 2)
	var mu sync.Mutex
	var lines []string
	rt := New(Config{
		Topo:     topo,
		BasePort: 21800,
		Trace: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, format)
			mu.Unlock()
		},
	})
	log := newLog()
	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:      rt.Proc(id),
			Detector:  rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) { log.add(id, mid) },
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	rt.Run(0, func() { eps[0].ABCast("traced") })
	waitFor(t, 10*time.Second, func() bool {
		return len(log.seq(0)) >= 1 && len(log.seq(1)) >= 1
	})
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "recv") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no receive trace lines captured (got %d lines)", len(lines))
	}
}

// TestGobCodecStillWorks: the legacy gob stream remains a working
// transport configuration (it is the benchmark baseline).
func TestGobCodecStillWorks(t *testing.T) {
	RegisterWireTypes()
	topo := types.NewTopology(2, 2)
	rt := New(Config{Topo: topo, BasePort: 21900, WANDelay: 10 * time.Millisecond, Codec: CodecGob})
	log := newLog()
	eps := make([]*abcast.Bcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		eps[id] = abcast.New(abcast.Config{
			Host:      rt.Proc(id),
			Detector:  rt.Detector(id),
			OnDeliver: func(mid types.MessageID, _ any) { log.add(id, mid) },
		})
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	rt.Run(0, func() { eps[0].ABCast("via-gob") })
	waitFor(t, 10*time.Second, func() bool {
		for _, p := range topo.AllProcesses() {
			if len(log.seq(p)) < 1 {
				return false
			}
		}
		return true
	})
}

var _ node.Protocol = (*sinkProto)(nil)
