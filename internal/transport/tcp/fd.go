package tcp

import (
	"sort"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// heartbeatMsg is the failure detector's intra-group beat. Beat is the
// sender's clock (api.Now() nanos) at send time; when leader leases are
// enabled it doubles as the lease timestamp a follower countersigns.
type heartbeatMsg struct {
	Beat int64
}

// leaseGrantMsg is a follower's lease vote: by echoing beat b back to the
// leader, the follower promises not to grant any OTHER candidate a lease
// until (local receipt time of b) + LeaseDuration + MaxClockSkew. The
// leader that collects a majority of grants for beat b (counting its own)
// holds the lease until b + LeaseDuration − MaxClockSkew on its own clock.
//
// Safety is clock-OFFSET-free: a grant's promise window starts at the
// follower's receipt of the beat, which is physically no earlier than the
// leader's send, so promise end ≥ claim end + 2×MaxClockSkew in real time
// regardless of how the two clocks are offset — only clock RATE drift over
// one lease window must stay under MaxClockSkew. Any majority a successor
// assembles intersects the holder's majority in a replica whose promise
// still fences, so two valid leases never overlap.
type leaseGrantMsg struct {
	Beat int64
}

// heartbeatFD is the live Ω: every process beats to its group peers; a
// peer silent for SuspectAfter is suspected; the leader is the lowest
// unsuspected member. Suspicion is revocable: the moment a suspect's beat
// arrives again — after a partition heals, or after a chaos scenario's
// forced false suspicion — trust is restored, the leader is recomputed,
// and subscribers are re-notified. Ω's eventual accuracy holds as long as
// the loopback eventually delivers beats within the timeout — adequate for
// the localhost deployments this runtime targets, and exactly the
// trust-restoring behavior partitions need: one transient outage demotes a
// leader only until its heartbeats resume.
type heartbeatFD struct {
	api          node.API
	obs          fd.Observer // may be nil
	every        time.Duration
	suspectAfter time.Duration

	group     []types.ProcessID
	lastSeen  map[types.ProcessID]time.Duration
	suspected map[types.ProcessID]bool
	leader    types.ProcessID
	subs      []func(types.GroupID, types.ProcessID)

	// Leader-lease state (inert when leaseDur == 0). lease is owned by the
	// Runtime and outlives detector restarts; grants holds, per group
	// member, the newest beat that member countersigned for us (leader
	// side); promiseEnd holds, per candidate, the local time until which we
	// have promised that candidate our vote (follower side — the fence).
	lease      *fd.Lease
	leaseDur   time.Duration
	skew       time.Duration
	grants     map[types.ProcessID]int64
	promiseEnd map[types.ProcessID]time.Duration
}

var _ fd.Detector = (*heartbeatFD)(nil)
var _ node.Protocol = (*heartbeatFD)(nil)

func newHeartbeatFD(api node.API, every, suspectAfter time.Duration, obs fd.Observer, lease *fd.Lease, leaseDur, skew time.Duration) *heartbeatFD {
	h := &heartbeatFD{
		api:          api,
		obs:          obs,
		every:        every,
		suspectAfter: suspectAfter,
		lastSeen:     make(map[types.ProcessID]time.Duration),
		suspected:    make(map[types.ProcessID]bool),
		lease:        lease,
		leaseDur:     leaseDur,
		skew:         skew,
		grants:       make(map[types.ProcessID]int64),
		promiseEnd:   make(map[types.ProcessID]time.Duration),
	}
	h.group = append(h.group, api.Topo().Members(api.Group())...)
	sort.Slice(h.group, func(i, j int) bool { return h.group[i] < h.group[j] })
	h.leader = h.group[0]
	return h
}

// Proto implements node.Protocol.
func (h *heartbeatFD) Proto() string { return "fd" }

// Start implements node.Protocol: it launches the beat/check cycle.
func (h *heartbeatFD) Start() {
	now := h.api.Now()
	for _, q := range h.group {
		h.lastSeen[q] = now
	}
	h.tick()
}

func (h *heartbeatFD) tick() {
	self := h.api.Self()
	now := h.api.Now()
	var tos []types.ProcessID
	for _, q := range h.group {
		if q != self {
			tos = append(tos, q)
		}
	}
	// One beat body serves every peer: the writer goroutines only read it,
	// and the receive side decodes its own pooled copy. (Send-side bodies
	// are NOT pooled — a queued frame may outlive this tick.)
	h.api.Multicast(tos, "fd", &heartbeatMsg{Beat: int64(now)})
	if h.leaseDur > 0 && h.leader == self && h.canGrantTo(self, now) {
		// Self-grant through the same fencing path followers use: our own
		// vote counts toward the majority only while no other candidate
		// holds our promise.
		h.promiseEnd[self] = now + h.leaseDur + h.skew
		h.grants[self] = int64(now)
		h.recomputeLease(now)
	}
	h.checkSuspicions()
	h.api.After(h.every, h.tick)
}

// Receive implements node.Protocol. The pooled message bodies are released
// back to their free-lists here — the end of lane processing — which is what
// keeps the heartbeat receive path allocation-free end to end.
func (h *heartbeatFD) Receive(from types.ProcessID, body any) {
	h.lastSeen[from] = h.api.Now()
	if h.suspected[from] {
		// The suspicion was a mistake (crash-stop processes never beat
		// again): the fresh beat restores trust, Ω taking its mistake back.
		h.restore(from)
	}
	switch m := body.(type) {
	case *heartbeatMsg:
		if h.leaseDur > 0 {
			h.maybeGrant(from, m.Beat)
		}
		hbPool.Put(m)
	case *leaseGrantMsg:
		if h.leaseDur > 0 {
			h.acceptGrant(from, m.Beat)
		}
		lgPool.Put(m)
	}
}

// maybeGrant is the follower side of the lease protocol: countersign the
// beat of the replica we currently believe leads — unless an earlier
// promise to a DIFFERENT candidate still fences us.
func (h *heartbeatFD) maybeGrant(from types.ProcessID, beat int64) {
	if from != h.leader {
		return
	}
	now := h.api.Now()
	if !h.canGrantTo(from, now) {
		return
	}
	h.promiseEnd[from] = now + h.leaseDur + h.skew
	h.api.Send(from, "fd", &leaseGrantMsg{Beat: beat})
}

// canGrantTo reports whether every outstanding promise to a candidate
// other than to has expired. Promises are honored in local time even
// across suspicion changes: that persistence IS the fence that keeps an
// old holder's lease and a successor's from overlapping.
func (h *heartbeatFD) canGrantTo(to types.ProcessID, now time.Duration) bool {
	for q, end := range h.promiseEnd {
		if q != to && now < end {
			return false
		}
	}
	return true
}

// acceptGrant is the leader side: record the follower's newest vote and
// extend the published lease if a majority of the group (including self)
// still countersigns a recent enough beat.
func (h *heartbeatFD) acceptGrant(from types.ProcessID, beat int64) {
	if h.leader != h.api.Self() {
		return // demoted since the beat went out; grants were cleared
	}
	now := h.api.Now()
	if beat > int64(now) || beat <= h.grants[from] {
		return // from the future (not our beat) or stale
	}
	h.grants[from] = beat
	h.recomputeLease(now)
}

// recomputeLease extends the lease to (majority-th newest granted beat)
// + LeaseDuration − MaxClockSkew if at least a majority of grants are
// still inside their window. Expiry is passive: when grants age out the
// published deadline simply passes.
func (h *heartbeatFD) recomputeLease(now time.Duration) {
	if h.lease == nil {
		return
	}
	valid := make([]time.Duration, 0, len(h.group))
	for _, q := range h.group {
		b, ok := h.grants[q]
		if ok && time.Duration(b)+h.leaseDur-h.skew > now {
			valid = append(valid, time.Duration(b))
		}
	}
	maj := len(h.group)/2 + 1
	if len(valid) < maj {
		return
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i] > valid[j] })
	untilRel := valid[maj-1] + h.leaseDur - h.skew
	// Translate the api-relative deadline to the wall clock the lease
	// publishes (read dispatch checks against time.Now()).
	h.lease.Extend(time.Now().Add(untilRel - now))
}

// Suspect forces a (false) suspicion of q, as a chaos scenario does to flap
// a leader: q is treated exactly like a timed-out peer, so the leader is
// recomputed and subscribers notified — and trust restores itself the
// moment q's next heartbeat lands. Run it on the owning process's loop.
// Suspecting self or an already-suspected peer is a no-op.
func (h *heartbeatFD) Suspect(q types.ProcessID) {
	if q == h.api.Self() || h.suspected[q] {
		return
	}
	h.suspected[q] = true
	if h.obs != nil {
		h.obs.OnSuspect(h.api.Group(), q)
	}
	h.recomputeLeader()
}

// Unsuspect explicitly restores trust in q (scenarios use it to end a
// forced suspicion without waiting for the next beat). It also refreshes
// q's lastSeen so the next suspicion check does not immediately re-suspect
// a peer whose beats are still in flight.
func (h *heartbeatFD) Unsuspect(q types.ProcessID) {
	h.lastSeen[q] = h.api.Now()
	if h.suspected[q] {
		h.restore(q)
	}
}

// restore revokes q's suspicion and recomputes the leadership.
func (h *heartbeatFD) restore(q types.ProcessID) {
	delete(h.suspected, q)
	if h.obs != nil {
		h.obs.OnTrustRestored(h.api.Group(), q)
	}
	h.recomputeLeader()
}

func (h *heartbeatFD) checkSuspicions() {
	now := h.api.Now()
	changed := false
	for _, q := range h.group {
		if q == h.api.Self() || h.suspected[q] {
			continue
		}
		if now-h.lastSeen[q] > h.suspectAfter {
			h.suspected[q] = true
			if h.obs != nil {
				h.obs.OnSuspect(h.api.Group(), q)
			}
			changed = true
		}
	}
	if changed {
		h.recomputeLeader()
	}
}

func (h *heartbeatFD) recomputeLeader() {
	leader := h.group[0]
	for _, q := range h.group {
		if !h.suspected[q] {
			leader = q
			break
		}
	}
	if leader == h.leader {
		return
	}
	h.leader = leader
	if leader != h.api.Self() && h.lease != nil {
		// Conservative revocation: the moment our own view stops leading —
		// a suspicion of us propagating, or us suspecting a lower rank back
		// to life — we stop serving lease reads, without waiting for the
		// grants to age out. (A partitioned holder never runs this; the
		// wall-clock window in the grant protocol fences it instead.)
		h.lease.Revoke()
		clear(h.grants)
	}
	if h.obs != nil {
		h.obs.OnLeaderChange(h.api.Group(), leader)
	}
	for _, fn := range h.subs {
		fn(h.api.Group(), leader)
	}
}

// Leader implements fd.Detector. Only the local group's view is
// maintained; protocols in this repository never ask about other groups.
func (h *heartbeatFD) Leader(g types.GroupID) types.ProcessID {
	if g != h.api.Group() {
		return h.api.Topo().Members(g)[0]
	}
	return h.leader
}

// Subscribe implements fd.Detector.
func (h *heartbeatFD) Subscribe(fn func(types.GroupID, types.ProcessID)) {
	h.subs = append(h.subs, fn)
}
