package tcp

import (
	"sort"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// heartbeatMsg is the failure detector's intra-group beat.
type heartbeatMsg struct{}

// heartbeatFD is the live Ω: every process beats to its group peers; a
// peer silent for SuspectAfter is suspected; the leader is the lowest
// unsuspected member. Ω's eventual accuracy holds as long as the loopback
// keeps delivering beats within the timeout — adequate for the localhost
// deployments this runtime targets.
type heartbeatFD struct {
	api          node.API
	every        time.Duration
	suspectAfter time.Duration

	group     []types.ProcessID
	lastSeen  map[types.ProcessID]time.Duration
	suspected map[types.ProcessID]bool
	leader    types.ProcessID
	subs      []func(types.GroupID, types.ProcessID)
}

var _ fd.Detector = (*heartbeatFD)(nil)
var _ node.Protocol = (*heartbeatFD)(nil)

func newHeartbeatFD(api node.API, every, suspectAfter time.Duration) *heartbeatFD {
	h := &heartbeatFD{
		api:          api,
		every:        every,
		suspectAfter: suspectAfter,
		lastSeen:     make(map[types.ProcessID]time.Duration),
		suspected:    make(map[types.ProcessID]bool),
	}
	h.group = append(h.group, api.Topo().Members(api.Group())...)
	sort.Slice(h.group, func(i, j int) bool { return h.group[i] < h.group[j] })
	h.leader = h.group[0]
	return h
}

// Proto implements node.Protocol.
func (h *heartbeatFD) Proto() string { return "fd" }

// Start implements node.Protocol: it launches the beat/check cycle.
func (h *heartbeatFD) Start() {
	now := h.api.Now()
	for _, q := range h.group {
		h.lastSeen[q] = now
	}
	h.tick()
}

func (h *heartbeatFD) tick() {
	self := h.api.Self()
	var tos []types.ProcessID
	for _, q := range h.group {
		if q != self {
			tos = append(tos, q)
		}
	}
	h.api.Multicast(tos, "fd", heartbeatMsg{})
	h.checkSuspicions()
	h.api.After(h.every, h.tick)
}

// Receive implements node.Protocol.
func (h *heartbeatFD) Receive(from types.ProcessID, _ any) {
	h.lastSeen[from] = h.api.Now()
	if h.suspected[from] {
		// Crash-stop model: a revived suspicion would be a false positive;
		// trust the fresh beat again (Ω is allowed mistakes).
		delete(h.suspected, from)
		h.recomputeLeader()
	}
}

func (h *heartbeatFD) checkSuspicions() {
	now := h.api.Now()
	changed := false
	for _, q := range h.group {
		if q == h.api.Self() || h.suspected[q] {
			continue
		}
		if now-h.lastSeen[q] > h.suspectAfter {
			h.suspected[q] = true
			changed = true
		}
	}
	if changed {
		h.recomputeLeader()
	}
}

func (h *heartbeatFD) recomputeLeader() {
	leader := h.group[0]
	for _, q := range h.group {
		if !h.suspected[q] {
			leader = q
			break
		}
	}
	if leader == h.leader {
		return
	}
	h.leader = leader
	for _, fn := range h.subs {
		fn(h.api.Group(), leader)
	}
}

// Leader implements fd.Detector. Only the local group's view is
// maintained; protocols in this repository never ask about other groups.
func (h *heartbeatFD) Leader(g types.GroupID) types.ProcessID {
	if g != h.api.Group() {
		return h.api.Topo().Members(g)[0]
	}
	return h.leader
}

// Subscribe implements fd.Detector.
func (h *heartbeatFD) Subscribe(fn func(types.GroupID, types.ProcessID)) {
	h.subs = append(h.subs, fn)
}
