package tcp

import (
	"sort"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// heartbeatMsg is the failure detector's intra-group beat.
type heartbeatMsg struct{}

// heartbeatFD is the live Ω: every process beats to its group peers; a
// peer silent for SuspectAfter is suspected; the leader is the lowest
// unsuspected member. Suspicion is revocable: the moment a suspect's beat
// arrives again — after a partition heals, or after a chaos scenario's
// forced false suspicion — trust is restored, the leader is recomputed,
// and subscribers are re-notified. Ω's eventual accuracy holds as long as
// the loopback eventually delivers beats within the timeout — adequate for
// the localhost deployments this runtime targets, and exactly the
// trust-restoring behavior partitions need: one transient outage demotes a
// leader only until its heartbeats resume.
type heartbeatFD struct {
	api          node.API
	obs          fd.Observer // may be nil
	every        time.Duration
	suspectAfter time.Duration

	group     []types.ProcessID
	lastSeen  map[types.ProcessID]time.Duration
	suspected map[types.ProcessID]bool
	leader    types.ProcessID
	subs      []func(types.GroupID, types.ProcessID)
}

var _ fd.Detector = (*heartbeatFD)(nil)
var _ node.Protocol = (*heartbeatFD)(nil)

func newHeartbeatFD(api node.API, every, suspectAfter time.Duration, obs fd.Observer) *heartbeatFD {
	h := &heartbeatFD{
		api:          api,
		obs:          obs,
		every:        every,
		suspectAfter: suspectAfter,
		lastSeen:     make(map[types.ProcessID]time.Duration),
		suspected:    make(map[types.ProcessID]bool),
	}
	h.group = append(h.group, api.Topo().Members(api.Group())...)
	sort.Slice(h.group, func(i, j int) bool { return h.group[i] < h.group[j] })
	h.leader = h.group[0]
	return h
}

// Proto implements node.Protocol.
func (h *heartbeatFD) Proto() string { return "fd" }

// Start implements node.Protocol: it launches the beat/check cycle.
func (h *heartbeatFD) Start() {
	now := h.api.Now()
	for _, q := range h.group {
		h.lastSeen[q] = now
	}
	h.tick()
}

func (h *heartbeatFD) tick() {
	self := h.api.Self()
	var tos []types.ProcessID
	for _, q := range h.group {
		if q != self {
			tos = append(tos, q)
		}
	}
	h.api.Multicast(tos, "fd", heartbeatMsg{})
	h.checkSuspicions()
	h.api.After(h.every, h.tick)
}

// Receive implements node.Protocol.
func (h *heartbeatFD) Receive(from types.ProcessID, _ any) {
	h.lastSeen[from] = h.api.Now()
	if h.suspected[from] {
		// The suspicion was a mistake (crash-stop processes never beat
		// again): the fresh beat restores trust, Ω taking its mistake back.
		h.restore(from)
	}
}

// Suspect forces a (false) suspicion of q, as a chaos scenario does to flap
// a leader: q is treated exactly like a timed-out peer, so the leader is
// recomputed and subscribers notified — and trust restores itself the
// moment q's next heartbeat lands. Run it on the owning process's loop.
// Suspecting self or an already-suspected peer is a no-op.
func (h *heartbeatFD) Suspect(q types.ProcessID) {
	if q == h.api.Self() || h.suspected[q] {
		return
	}
	h.suspected[q] = true
	if h.obs != nil {
		h.obs.OnSuspect(h.api.Group(), q)
	}
	h.recomputeLeader()
}

// Unsuspect explicitly restores trust in q (scenarios use it to end a
// forced suspicion without waiting for the next beat). It also refreshes
// q's lastSeen so the next suspicion check does not immediately re-suspect
// a peer whose beats are still in flight.
func (h *heartbeatFD) Unsuspect(q types.ProcessID) {
	h.lastSeen[q] = h.api.Now()
	if h.suspected[q] {
		h.restore(q)
	}
}

// restore revokes q's suspicion and recomputes the leadership.
func (h *heartbeatFD) restore(q types.ProcessID) {
	delete(h.suspected, q)
	if h.obs != nil {
		h.obs.OnTrustRestored(h.api.Group(), q)
	}
	h.recomputeLeader()
}

func (h *heartbeatFD) checkSuspicions() {
	now := h.api.Now()
	changed := false
	for _, q := range h.group {
		if q == h.api.Self() || h.suspected[q] {
			continue
		}
		if now-h.lastSeen[q] > h.suspectAfter {
			h.suspected[q] = true
			if h.obs != nil {
				h.obs.OnSuspect(h.api.Group(), q)
			}
			changed = true
		}
	}
	if changed {
		h.recomputeLeader()
	}
}

func (h *heartbeatFD) recomputeLeader() {
	leader := h.group[0]
	for _, q := range h.group {
		if !h.suspected[q] {
			leader = q
			break
		}
	}
	if leader == h.leader {
		return
	}
	h.leader = leader
	if h.obs != nil {
		h.obs.OnLeaderChange(h.api.Group(), leader)
	}
	for _, fn := range h.subs {
		fn(h.api.Group(), leader)
	}
}

// Leader implements fd.Detector. Only the local group's view is
// maintained; protocols in this repository never ask about other groups.
func (h *heartbeatFD) Leader(g types.GroupID) types.ProcessID {
	if g != h.api.Group() {
		return h.api.Topo().Members(g)[0]
	}
	return h.leader
}

// Subscribe implements fd.Detector.
func (h *heartbeatFD) Subscribe(fn func(types.GroupID, types.ProcessID)) {
	h.subs = append(h.subs, fn)
}
