package scenario_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// runSuiteScenario drives one scenario against a simulated A1 system
// under a Poisson workload and returns the system for inspection.
func runSuiteScenario(t *testing.T, algo harness.Algo, sc scenario.Scenario, seed int64) *harness.System {
	t.Helper()
	// Jitter makes every link delay a draw from the seeded rng, so any
	// nondeterminism in the fault engine (e.g. a map-ordered heal sweep
	// desynchronising the rng) shows up as a diverging trace.
	s := harness.Build(algo, harness.Options{
		Groups: 3, PerGroup: 3, Seed: seed,
		Inter: 50 * time.Millisecond, Intra: time.Millisecond,
		Jitter: 2 * time.Millisecond,
	})
	scenario.Apply(s.Chaos(), sc)
	casts := workload.Generate(s.Topo, workload.Spec{
		Casts:      40,
		MeanPeriod: 40 * time.Millisecond,
		Poisson:    true,
		Seed:       seed,
	})
	crashed := crashSet(sc)
	for _, c := range casts {
		c := c
		s.RT.Scheduler().At(c.At, func() {
			if !crashed[c.From] {
				s.Cast(c.From, c.Payload, c.Dest)
			}
		})
	}
	// Post-heal progress probe: a fresh cast after the last scenario event
	// must still be delivered everywhere.
	probeAt := sc.Horizon() + 100*time.Millisecond
	s.RT.Scheduler().At(probeAt, func() {
		s.Cast(s.Topo.Members(1)[0], "post-heal-probe", s.Topo.AllGroups())
	})
	s.RT.Scheduler().MaxSteps = 20_000_000
	s.Run()
	return s
}

// crashSet collects processes a scenario crashes (sim restarts are
// permanent crashes).
func crashSet(sc scenario.Scenario) map[types.ProcessID]bool {
	out := make(map[types.ProcessID]bool)
	for _, e := range sc.Events {
		if e.Kind == scenario.Crash {
			for _, p := range e.Procs {
				out[p] = true
			}
		}
	}
	return out
}

// TestSuiteOnSimulator: every suite scenario — symmetric partition+heal,
// asymmetric partition, leader flap ×3, delay spike, partition during
// crash-recovery, lease-holder isolation — satisfies §2.2 under load on
// the simulated runtime,
// and the post-heal probe is delivered everywhere (liveness resumed).
func TestSuiteOnSimulator(t *testing.T) {
	topo := types.NewTopology(3, 3)
	cfg := scenario.SuiteConfig{Unit: 300 * time.Millisecond, Spike: 400 * time.Millisecond}
	for _, sc := range scenario.Suite(topo, cfg) {
		sc := sc
		for _, algo := range []harness.Algo{harness.AlgoA1, harness.AlgoA2} {
			algo := algo
			t.Run(fmt.Sprintf("%s/%s", sc.Name, algo), func(t *testing.T) {
				t.Parallel()
				s := runSuiteScenario(t, algo, sc, 42)
				if v := s.Check(); len(v) != 0 {
					t.Fatalf("§2.2 violations under %s:\n%v", sc.Name, v)
				}
				probes := 0
				for _, d := range s.Deliveries {
					if d.Payload == "post-heal-probe" {
						probes++
					}
				}
				want := 0
				crashed := crashSet(sc)
				for _, p := range s.Topo.AllProcesses() {
					if !crashed[p] {
						want++
					}
				}
				if probes != want {
					t.Fatalf("post-heal probe delivered %d times, want %d (delivery did not resume)", probes, want)
				}
			})
		}
	}
}

// TestScenarioDeterministicTrace: the same scenario and seed yield
// byte-identical delivery traces across two independent sim runs — chaos
// stays reproducible.
func TestScenarioDeterministicTrace(t *testing.T) {
	topo := types.NewTopology(3, 3)
	cfg := scenario.SuiteConfig{Unit: 200 * time.Millisecond}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := scenario.ByName(topo, cfg, name)
			if !ok {
				t.Fatalf("unknown suite scenario %q", name)
			}
			trace := func() string {
				s := runSuiteScenario(t, harness.AlgoA1, sc, 7)
				var b strings.Builder
				for _, d := range s.Deliveries {
					fmt.Fprintf(&b, "%v %v %v %v\n", d.At, d.Process, d.ID, d.Payload)
				}
				return b.String()
			}
			first, second := trace(), trace()
			if first != second {
				t.Fatalf("scenario %q not deterministic:\nrun1:\n%s\nrun2:\n%s", name, first, second)
			}
			if len(first) == 0 {
				t.Fatalf("scenario %q delivered nothing", name)
			}
		})
	}
}

// TestApplyRequiresWiring pins the Funcs contract.
func TestApplyRequiresWiring(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with missing Funcs did not panic")
		}
	}()
	scenario.Apply(scenario.Funcs{}, scenario.Scenario{})
}

// TestSuiteShape sanity-checks the preset suite: six scenarios, the
// advertised names, and every partition or isolation eventually healed.
func TestSuiteShape(t *testing.T) {
	topo := types.NewTopology(2, 3)
	suite := scenario.Suite(topo, scenario.SuiteConfig{})
	if len(suite) != len(scenario.Names()) {
		t.Fatalf("suite has %d scenarios, names list %d", len(suite), len(scenario.Names()))
	}
	for i, sc := range suite {
		if sc.Name != scenario.Names()[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, sc.Name, scenario.Names()[i])
		}
		partitions, heals, isolates, deisolates := 0, 0, 0, 0
		for _, e := range sc.Events {
			switch e.Kind {
			case scenario.Partition:
				partitions++
			case scenario.Heal, scenario.HealAll:
				heals++
			case scenario.Isolate:
				isolates++
			case scenario.HealIsolate:
				deisolates++
			}
		}
		if partitions > 0 && heals == 0 {
			t.Fatalf("scenario %q partitions without healing", sc.Name)
		}
		if isolates > 0 && deisolates == 0 {
			t.Fatalf("scenario %q isolates without healing", sc.Name)
		}
	}
}
