package scenario_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"wanamcast/internal/harness"
	"wanamcast/internal/scenario"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// runLanedScenario mirrors runSuiteScenario but shards the simulated
// processes onto a fixed number of accounting lanes — the same group→lane
// map the live runtime uses. The simulator stays single-threaded: lanes
// only tag events, so the scheduler's (time, prio, seq) merge order IS
// the deterministic interleaving the test pins.
func runLanedScenario(t *testing.T, sc scenario.Scenario, seed int64, lanes int) *harness.System {
	t.Helper()
	s := harness.Build(harness.AlgoA1, harness.Options{
		Groups: 3, PerGroup: 3, Seed: seed,
		Inter: 50 * time.Millisecond, Intra: time.Millisecond,
		Jitter: 2 * time.Millisecond,
		Lanes:  lanes,
	})
	scenario.Apply(s.Chaos(), sc)
	casts := workload.Generate(s.Topo, workload.Spec{
		Casts:      40,
		MeanPeriod: 40 * time.Millisecond,
		Poisson:    true,
		Seed:       seed,
	})
	crashed := crashSet(sc)
	for _, c := range casts {
		c := c
		s.RT.Scheduler().At(c.At, func() {
			if !crashed[c.From] {
				s.Cast(c.From, c.Payload, c.Dest)
			}
		})
	}
	probeAt := sc.Horizon() + 100*time.Millisecond
	s.RT.Scheduler().At(probeAt, func() {
		s.Cast(s.Topo.Members(1)[0], "post-heal-probe", s.Topo.AllGroups())
	})
	s.RT.Scheduler().MaxSteps = 20_000_000
	s.Run()
	return s
}

// TestLanesDeterministicTrace: the six-scenario suite at Lanes=4 yields
// byte-identical delivery traces across two same-seed runs, and the
// laned trace matches the unsharded (Lanes=0) trace exactly — sharding
// the runtime onto lanes must not perturb simulated time.
func TestLanesDeterministicTrace(t *testing.T) {
	topo := types.NewTopology(3, 3)
	cfg := scenario.SuiteConfig{Unit: 200 * time.Millisecond}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := scenario.ByName(topo, cfg, name)
			if !ok {
				t.Fatalf("unknown suite scenario %q", name)
			}
			trace := func(lanes int) string {
				s := runLanedScenario(t, sc, 7, lanes)
				if lanes > 0 {
					stats := s.RT.LaneStats()
					if len(stats) != lanes {
						t.Fatalf("lanes=%d: LaneStats has %d entries", lanes, len(stats))
					}
					var total uint64
					for _, n := range stats {
						total += n
					}
					if total == 0 {
						t.Fatalf("lanes=%d: no events accounted to any lane", lanes)
					}
				}
				var b strings.Builder
				for _, d := range s.Deliveries {
					fmt.Fprintf(&b, "%v %v %v %v\n", d.At, d.Process, d.ID, d.Payload)
				}
				return b.String()
			}
			first, second := trace(4), trace(4)
			if first != second {
				t.Fatalf("scenario %q not deterministic at Lanes=4:\nrun1:\n%s\nrun2:\n%s", name, first, second)
			}
			if len(first) == 0 {
				t.Fatalf("scenario %q delivered nothing at Lanes=4", name)
			}
			if base := trace(0); base != first {
				t.Fatalf("scenario %q: Lanes=4 trace diverges from unsharded trace", name)
			}
		})
	}
}
