// Package scenario is the chaos scenario engine: a declarative, timed
// fault schedule — partition these group sets at t=2s, heal at 5s, crash
// p3 at 6s, restart it at 8s, spike the inter-group delay, flap a leader
// three times — runnable unchanged on both the simulated and the live TCP
// runtime through the Funcs control surface.
//
// Every fault a scenario injects keeps the run admissible under the
// paper's §2.1 model: partitions and delay spikes are arbitrary-but-finite
// link delays (the fabric withholds, never loses), crashes are crash-stops
// (with the live runtime's durable restart as the recovery path), and
// forced suspicions are the mistakes Ω is explicitly allowed. The §2.2
// safety properties must therefore hold through any schedule, and
// delivery must resume after the last heal — exactly what cmd/wanchaos
// and the acceptance tests assert.
//
// Scenarios are deterministic: a schedule is a fixed list of events, so on
// the simulated runtime the same scenario and seed reproduce a run
// byte-for-byte (pinned by TestScenarioDeterministicTrace).
package scenario

import (
	"fmt"
	"strings"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// Kind enumerates the fault operations a scenario event can apply.
type Kind int

const (
	// Partition severs every link between group sets A and B — both
	// directions, or only A→B when Asym is set.
	Partition Kind = iota
	// Heal restores the links between group sets A and B (the inverse of
	// Partition with the same operands).
	Heal
	// HealAll restores every severed link in the fabric.
	HealAll
	// Crash crash-stops every process in Procs.
	Crash
	// Restart recovers every process in Procs from its durable store (live
	// runtimes only; targets without a RestartFn log and skip it, leaving
	// the crash permanent — still an admissible run).
	Restart
	// DelaySpike overrides the delay of every link between group sets A
	// and B with Delay (both directions unless Asym).
	DelaySpike
	// ClearDelay removes the DelaySpike overrides between A and B.
	ClearDelay
	// Suspect injects a false suspicion of every process in Procs into the
	// group's failure detectors (demoting a leader without any real fault).
	Suspect
	// Unsuspect restores trust in every process in Procs. On the live
	// runtime resumed heartbeats restore trust on their own; the event
	// makes the schedule explicit and deterministic on the simulator.
	Unsuspect
	// Isolate severs every link between each process in Procs and the rest
	// of its group, both directions — the "node dropped off the LAN" fault.
	// Against a lease-holding leader this is the canonical lease-safety
	// test: the victim keeps believing it leads while its peers' grants age
	// out, so its lease must lapse before any successor's activates.
	Isolate
	// HealIsolate restores the links Isolate severed.
	HealIsolate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case HealAll:
		return "heal-all"
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case DelaySpike:
		return "delay-spike"
	case ClearDelay:
		return "clear-delay"
	case Suspect:
		return "suspect"
	case Unsuspect:
		return "unsuspect"
	case Isolate:
		return "isolate"
	case HealIsolate:
		return "heal-isolate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault: at offset At from the scenario's start, apply
// Kind to the operands.
type Event struct {
	At   time.Duration
	Kind Kind

	// A and B are the group sets of Partition/Heal/DelaySpike/ClearDelay.
	A, B []types.GroupID
	// Asym restricts a Partition or DelaySpike to the A→B direction.
	Asym bool
	// Procs are the victims of Crash/Restart/Suspect/Unsuspect.
	Procs []types.ProcessID
	// Delay is the DelaySpike override.
	Delay time.Duration
}

// Scenario is a named, ordered fault schedule.
type Scenario struct {
	Name   string
	Events []Event
}

// Horizon returns the offset of the scenario's last event.
func (s Scenario) Horizon() time.Duration {
	var h time.Duration
	for _, e := range s.Events {
		if e.At > h {
			h = e.At
		}
	}
	return h
}

// String summarises the schedule.
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Name)
	for _, e := range s.Events {
		fmt.Fprintf(&b, " [%v %v", e.At, e.Kind)
		if len(e.A) > 0 || len(e.B) > 0 {
			fmt.Fprintf(&b, " %v|%v", e.A, e.B)
			if e.Asym {
				b.WriteString(" asym")
			}
		}
		if len(e.Procs) > 0 {
			fmt.Fprintf(&b, " %v", e.Procs)
		}
		if e.Delay > 0 {
			fmt.Fprintf(&b, " %v", e.Delay)
		}
		b.WriteString("]")
	}
	return b.String()
}

// Funcs is the control surface a scenario drives — the seams where the
// simulated and the live runtime differ. Topo, Net, Schedule, and CrashFn
// are required; the rest degrade gracefully (a nil RestartFn leaves
// crashes permanent, nil Suspect/UnsuspectFn skip flap events, a nil Logf
// is silent).
type Funcs struct {
	Topo *types.Topology
	// Net is the runtime's link fabric.
	Net *network.Fabric
	// Schedule runs fn d after the scenario is applied (virtual time on the
	// simulator, wall time live).
	Schedule func(d time.Duration, fn func())
	// CrashFn crash-stops a process.
	CrashFn func(p types.ProcessID)
	// RestartFn recovers a crashed process from its durable state.
	RestartFn func(p types.ProcessID) error
	// SuspectFn injects a false suspicion of p; UnsuspectFn revokes it.
	SuspectFn   func(p types.ProcessID)
	UnsuspectFn func(p types.ProcessID)
	// Logf receives one line per applied event.
	Logf func(format string, args ...any)
}

// SimFuncs adapts a simulated runtime. onCrash, when non-nil, runs before
// each crash (the harnesses use it to mark the victim for the §2.2
// checker's correct-process set).
func SimFuncs(rt *node.Runtime, onCrash func(p types.ProcessID)) Funcs {
	return Funcs{
		Topo: rt.Topo(),
		Net:  rt.Fabric(),
		Schedule: func(d time.Duration, fn func()) {
			rt.Scheduler().After(d, fn)
		},
		CrashFn: func(p types.ProcessID) {
			if onCrash != nil {
				onCrash(p)
			}
			rt.Crash(p)
		},
		SuspectFn:   rt.Suspect,
		UnsuspectFn: rt.Unsuspect,
	}
}

// Apply schedules every event of sc onto t. It returns immediately; the
// events fire at their offsets through t.Schedule. Apply panics on a
// missing required Func — that is a wiring bug, not a runtime condition.
func Apply(t Funcs, sc Scenario) {
	if t.Topo == nil || t.Net == nil || t.Schedule == nil || t.CrashFn == nil {
		panic("scenario: Funcs.Topo, Net, Schedule, and CrashFn are required")
	}
	for _, e := range sc.Events {
		e := e
		t.Schedule(e.At, func() { applyEvent(t, sc.Name, e) })
	}
}

func applyEvent(t Funcs, name string, e Event) {
	logf := t.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	switch e.Kind {
	case Partition:
		logf("%s t=%v: partition %v|%v (asym=%v)", name, e.At, e.A, e.B, e.Asym)
		t.Net.Partition(e.A, e.B, !e.Asym)
	case Heal:
		logf("%s t=%v: heal %v|%v", name, e.At, e.A, e.B)
		t.Net.HealPartition(e.A, e.B, !e.Asym)
	case HealAll:
		logf("%s t=%v: heal all", name, e.At)
		t.Net.HealAll()
	case Crash:
		for _, p := range e.Procs {
			logf("%s t=%v: crash %v", name, e.At, p)
			t.CrashFn(p)
		}
	case Restart:
		for _, p := range e.Procs {
			if t.RestartFn == nil {
				logf("%s t=%v: restart %v skipped (no restart surface; crash stays permanent)", name, e.At, p)
				continue
			}
			if err := t.RestartFn(p); err != nil {
				logf("%s t=%v: restart %v FAILED: %v", name, e.At, p, err)
			} else {
				logf("%s t=%v: restart %v", name, e.At, p)
			}
		}
	case DelaySpike:
		logf("%s t=%v: delay spike %v|%v -> %v (asym=%v)", name, e.At, e.A, e.B, e.Delay, e.Asym)
		t.Net.SetGroupDelay(e.A, e.B, e.Delay, !e.Asym)
	case ClearDelay:
		logf("%s t=%v: clear delay %v|%v", name, e.At, e.A, e.B)
		t.Net.ClearGroupDelay(e.A, e.B, !e.Asym)
	case Suspect:
		for _, p := range e.Procs {
			if t.SuspectFn == nil {
				logf("%s t=%v: suspect %v skipped (no suspicion surface)", name, e.At, p)
				continue
			}
			logf("%s t=%v: force-suspect %v", name, e.At, p)
			t.SuspectFn(p)
		}
	case Unsuspect:
		for _, p := range e.Procs {
			if t.UnsuspectFn == nil {
				continue
			}
			logf("%s t=%v: unsuspect %v", name, e.At, p)
			t.UnsuspectFn(p)
		}
	case Isolate:
		for _, p := range e.Procs {
			logf("%s t=%v: isolate %v from its group", name, e.At, p)
			t.Net.Isolate(p)
		}
	case HealIsolate:
		for _, p := range e.Procs {
			logf("%s t=%v: heal isolation of %v", name, e.At, p)
			t.Net.HealIsolate(p)
		}
	default:
		panic(fmt.Sprintf("scenario: unknown event kind %v", e.Kind))
	}
}

// SuiteConfig parameterises the preset suite.
type SuiteConfig struct {
	// Unit is the schedule's time step (default 500 ms): faults start at
	// 1×Unit and the last heal lands by 4×Unit.
	Unit time.Duration
	// Spike is the DelaySpike override (default 1×Unit): pick several
	// times the WAN delay so the spike is visible but finite — messages
	// must still drain before the scenario's horizon.
	Spike time.Duration
}

func (c *SuiteConfig) fill() {
	if c.Unit == 0 {
		c.Unit = 500 * time.Millisecond
	}
	if c.Spike == 0 {
		c.Spike = c.Unit
	}
}

// Suite returns the acceptance scenario suite over topo: symmetric
// partition+heal, asymmetric partition, leader flap ×3, inter-group delay
// spike, partition during crash-recovery, and lease-holder isolation. It
// panics on fewer than two groups (nothing to partition). The
// crash-recovery and lease-partition scenarios assume groups of at least
// three (the victim's group must keep a majority).
func Suite(topo *types.Topology, cfg SuiteConfig) []Scenario {
	cfg.fill()
	if topo.NumGroups() < 2 {
		panic("scenario: the suite needs at least two groups")
	}
	u := cfg.Unit
	g0 := []types.GroupID{0}
	rest := make([]types.GroupID, 0, topo.NumGroups()-1)
	for g := 1; g < topo.NumGroups(); g++ {
		rest = append(rest, types.GroupID(g))
	}
	g1 := rest[:1]
	leader0 := topo.Members(0)[0]
	lastOfG0 := topo.Members(0)[len(topo.Members(0))-1]

	return []Scenario{
		{
			Name: "partition-heal",
			Events: []Event{
				{At: 1 * u, Kind: Partition, A: g0, B: rest},
				{At: 3 * u, Kind: HealAll},
			},
		},
		{
			Name: "asym-partition",
			Events: []Event{
				{At: 1 * u, Kind: Partition, A: g0, B: g1, Asym: true},
				{At: 3 * u, Kind: HealAll},
			},
		},
		{
			Name: "leader-flap",
			Events: []Event{
				{At: 1 * u, Kind: Suspect, Procs: []types.ProcessID{leader0}},
				{At: 3 * u / 2, Kind: Unsuspect, Procs: []types.ProcessID{leader0}},
				{At: 2 * u, Kind: Suspect, Procs: []types.ProcessID{leader0}},
				{At: 5 * u / 2, Kind: Unsuspect, Procs: []types.ProcessID{leader0}},
				{At: 3 * u, Kind: Suspect, Procs: []types.ProcessID{leader0}},
				{At: 7 * u / 2, Kind: Unsuspect, Procs: []types.ProcessID{leader0}},
			},
		},
		{
			Name: "delay-spike",
			Events: []Event{
				{At: 1 * u, Kind: DelaySpike, A: g0, B: g1, Delay: cfg.Spike},
				{At: 3 * u, Kind: ClearDelay, A: g0, B: g1},
			},
		},
		{
			Name: "partition-recovery",
			Events: []Event{
				{At: 1 * u / 2, Kind: Crash, Procs: []types.ProcessID{lastOfG0}},
				{At: 1 * u, Kind: Partition, A: g0, B: rest},
				{At: 3 * u / 2, Kind: Restart, Procs: []types.ProcessID{lastOfG0}},
				{At: 3 * u, Kind: HealAll},
			},
		},
		{
			// Sever the initial lease holder from its own group mid-run: its
			// peers' grants age out, their promises expire, and the Ω
			// successor assembles a fresh lease — which must not activate
			// until the victim's lapses (the read tier's no-stale-read pin).
			Name: "lease-partition",
			Events: []Event{
				{At: 1 * u, Kind: Isolate, Procs: []types.ProcessID{leader0}},
				{At: 3 * u, Kind: HealIsolate, Procs: []types.ProcessID{leader0}},
			},
		},
	}
}

// ByName returns the suite scenario with the given name.
func ByName(topo *types.Topology, cfg SuiteConfig, name string) (Scenario, bool) {
	for _, sc := range Suite(topo, cfg) {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names lists the suite's scenario names in order.
func Names() []string {
	return []string{"partition-heal", "asym-partition", "leader-flap", "delay-spike", "partition-recovery", "lease-partition"}
}
