package svc_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"wanamcast"
	"wanamcast/internal/metrics"
	"wanamcast/internal/svc"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// kvFixture is one live cluster fronted by the KV service.
type kvFixture struct {
	cluster *wanamcast.LiveCluster
	service *svc.Service
	stats   *metrics.Service
	topo    *wanamcast.Topology
}

func newKVFixture(t *testing.T, groups, perGroup, basePort int, wan time.Duration) *kvFixture {
	t.Helper()
	cluster := wanamcast.NewLiveCluster(wanamcast.LiveConfig{
		Groups:   groups,
		PerGroup: perGroup,
		BasePort: basePort,
		WANDelay: wan,
		MaxBatch: 16,
		Pipeline: 2,
		Check:    true,
	})
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	stats := &metrics.Service{}
	route := svc.PrefixRoute(groups)
	service, err := svc.ServeCluster(cluster, cluster.Topology(), svc.ServiceConfig{
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(service.Stop) // registered after cluster.Stop, so it runs first
	return &kvFixture{cluster: cluster, service: service, stats: stats, topo: cluster.Topology()}
}

// machine returns replica p's KV machine.
func (f *kvFixture) machine(p types.ProcessID) *svc.KVMachine {
	return f.service.Machine(p).(*svc.KVMachine)
}

// waitApplied blocks until every replica of every group in dest has
// applied exactly want mutations, then verifies the count stays there
// (exactly-once: late duplicate deliveries must not bump it).
func (f *kvFixture) waitApplied(t *testing.T, dest []types.GroupID, want uint64, settle time.Duration) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		all := true
		for _, g := range dest {
			for _, p := range f.topo.Members(g) {
				if f.machine(p).Applied() < want {
					all = false
				}
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not reach %d applied mutations", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let any in-flight duplicates drain, then pin the exact count.
	time.Sleep(settle)
	for _, g := range dest {
		for _, p := range f.topo.Members(g) {
			if got := f.machine(p).Applied(); got != want {
				t.Fatalf("replica %v applied %d mutations, want exactly %d", p, got, want)
			}
		}
	}
}

// TestExactlyOnceDuplicateRequest is the wire-level exactly-once
// guarantee: the same (session, seq) request sent twice — the manual
// equivalent of a client retry — causes exactly one state mutation on
// every destination shard, and the duplicate is answered from the
// replicated result cache.
func TestExactlyOnceDuplicateRequest(t *testing.T) {
	f := newKVFixture(t, 2, 2, 25000, 10*time.Millisecond)
	addr := f.service.Addrs()[0][0]
	conn, err := tcp.SvcDial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := svc.Request{
		Session: 7,
		Seq:     1,
		Dest:    types.NewGroupSet(0, 1),
		Op:      svc.EncodePut(map[string]string{"g0/x": "1", "g1/y": "2"}),
	}
	send := func() svc.Reply {
		t.Helper()
		if err := conn.WriteMsg(types.NoProcess, req); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		v, err := conn.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		r, ok := v.(svc.Reply)
		if !ok {
			t.Fatalf("got %T, want Reply", v)
		}
		return r
	}

	first := send()
	if !first.OK {
		t.Fatalf("first request failed: %s", first.Err)
	}
	second := send()
	if !second.OK {
		t.Fatalf("duplicate request failed: %s", second.Err)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("duplicate reply %v differs from original %v", second.Result, first.Result)
	}
	f.waitApplied(t, []types.GroupID{0, 1}, 1, 300*time.Millisecond)
	if st := f.stats.Snapshot(); st.Duplicates == 0 {
		t.Fatal("no duplicate was recorded for the resent request")
	}

	// A genuinely new command under the next sequence number still runs.
	req.Seq = 2
	req.Dest = types.NewGroupSet(0)
	req.Op = svc.EncodePut(map[string]string{"g0/x": "3"})
	if r := send(); !r.OK {
		t.Fatalf("follow-up command failed: %s", r.Err)
	}
	f.waitApplied(t, []types.GroupID{0}, 2, 300*time.Millisecond)
	// Shard 1 was not addressed: its count must still be 1.
	for _, p := range f.topo.Members(1) {
		if got := f.machine(p).Applied(); got != 1 {
			t.Fatalf("uninvolved replica %v applied %d, want 1", p, got)
		}
	}

	// An old sequence number still inside the session window is answered
	// from the cache — NOT re-executed (counts pinned above stay pinned).
	req.Seq = 1
	req.Dest = types.NewGroupSet(0, 1)
	req.Op = svc.EncodePut(map[string]string{"g0/x": "1", "g1/y": "2"})
	if r := send(); !r.OK {
		t.Fatalf("in-window duplicate refused: %s", r.Err)
	}
	time.Sleep(200 * time.Millisecond)
	for _, p := range f.topo.Members(0) {
		if got := f.machine(p).Applied(); got != 2 {
			t.Fatalf("replica %v applied %d after old-seq replay, want 2", p, got)
		}
	}
}

// TestClientRetryExactlyOnce is the acceptance scenario end to end: the
// WAN delay makes the first attempt(s) time out, the client resends under
// the same sequence number, duplicate commands reach the ordering layer —
// and every destination shard still mutates exactly once.
func TestClientRetryExactlyOnce(t *testing.T) {
	f := newKVFixture(t, 2, 2, 25100, 120*time.Millisecond)
	client := svc.NewClient(svc.ClientConfig{
		Session:     11,
		Addrs:       f.service.Addrs(),
		Timeout:     40 * time.Millisecond, // << the ~2×WAN commit latency: forces retries
		MaxAttempts: 10,
		Stats:       f.stats,
	})
	defer client.Close()
	kv := &svc.KV{Client: client, Route: svc.PrefixRoute(2)}

	if _, err := kv.Put(map[string]string{"g0/a": "va", "g1/b": "vb"}); err != nil {
		t.Fatalf("put did not commit despite retries: %v", err)
	}
	st := f.stats.Snapshot()
	if st.Retries == 0 {
		t.Fatal("the 40ms timeout against a 240ms WAN path should have forced a retry")
	}
	// Duplicates were submitted into the ordering layer; the settle window
	// (>2×WAN+consensus) lets them all deliver, then the count is pinned.
	f.waitApplied(t, []types.GroupID{0, 1}, 1, 1500*time.Millisecond)
	if st := f.stats.Snapshot(); st.Duplicates == 0 {
		t.Fatal("retried command produced no suppressed duplicates anywhere")
	}
	for _, p := range f.topo.ProcessesIn(types.NewGroupSet(0, 1)) {
		m := f.machine(p)
		g := f.topo.GroupOf(p)
		key := fmt.Sprintf("g%d/%s", g, map[types.GroupID]string{0: "a", 1: "b"}[g])
		want := map[types.GroupID]string{0: "va", 1: "vb"}[g]
		if v, ok := m.Get(key); !ok || v != want {
			t.Fatalf("replica %v: %s = %q,%v, want %q", p, key, v, ok, want)
		}
	}
}

// TestRedirect: a client with an incomplete address map contacts the wrong
// shard, is redirected, and commits under the same sequence number.
func TestRedirect(t *testing.T) {
	f := newKVFixture(t, 2, 2, 25200, 5*time.Millisecond)
	partial := map[types.GroupID][]string{0: f.service.Addrs()[0]}
	client := svc.NewClient(svc.ClientConfig{
		Session: 21,
		Addrs:   partial,
		Timeout: 2 * time.Second,
		Stats:   f.stats,
	})
	defer client.Close()
	kv := &svc.KV{Client: client, Route: svc.PrefixRoute(2)}

	if _, err := kv.Put(map[string]string{"g1/k": "v"}); err != nil {
		t.Fatalf("put through redirect failed: %v", err)
	}
	if st := f.stats.Snapshot(); st.Redirects == 0 {
		t.Fatal("no redirect was recorded")
	}
	f.waitApplied(t, []types.GroupID{1}, 1, 200*time.Millisecond)
	for _, p := range f.topo.Members(0) {
		if got := f.machine(p).Applied(); got != 0 {
			t.Fatalf("shard 0 replica %v applied %d commands for a shard-1-only key", p, got)
		}
	}
}

// TestSessionEviction: the dedup table is bounded — beyond MaxSessions
// the least-recently-delivered-to session is evicted, and the server
// keeps serving new sessions correctly.
func TestSessionEviction(t *testing.T) {
	cluster := wanamcast.NewLiveCluster(wanamcast.LiveConfig{
		Groups: 1, PerGroup: 1, BasePort: 25270,
	})
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	route := svc.PrefixRoute(1)
	service, err := svc.ServeCluster(cluster, cluster.Topology(), svc.ServiceConfig{
		MaxSessions: 2,
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(service.Stop)

	for i := 1; i <= 5; i++ {
		client := svc.NewClient(svc.ClientConfig{
			Session: uint64(i),
			Addrs:   service.Addrs(),
			Timeout: 2 * time.Second,
		})
		kv := &svc.KV{Client: client, Route: route}
		if _, err := kv.Put(map[string]string{fmt.Sprintf("g0/s%d", i): "v"}); err != nil {
			t.Fatalf("session %d put: %v", i, err)
		}
		client.Close()
	}
	if got := service.Server(0).SessionCount(); got > 2 {
		t.Fatalf("dedup table holds %d sessions, want at most 2", got)
	}
	if got := service.Machine(0).(*svc.KVMachine).Len(); got != 5 {
		t.Fatalf("machine holds %d keys, want 5", got)
	}
}

// TestServerRejectsBadDest: requests with no destination shards or with
// destination groups outside the topology are answered with an error —
// never submitted (an unknown group would panic the ordering layer's
// topology lookups) — and the server keeps serving afterwards.
func TestServerRejectsBadDest(t *testing.T) {
	f := newKVFixture(t, 1, 1, 25250, 0)
	conn, err := tcp.SvcDial(f.service.Addrs()[0][0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip := func(req svc.Request) svc.Reply {
		t.Helper()
		if err := conn.WriteMsg(types.NoProcess, req); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		v, err := conn.ReadMsg()
		if err != nil {
			t.Fatal(err)
		}
		r, ok := v.(svc.Reply)
		if !ok {
			t.Fatalf("want a Reply, got %#v", v)
		}
		return r
	}

	if r := roundTrip(svc.Request{Session: 1, Seq: 1, Op: []byte{1, 0}}); r.OK {
		t.Fatal("server accepted an empty destination set")
	}
	if r := roundTrip(svc.Request{Session: 1, Seq: 2, Dest: types.NewGroupSet(0, 99),
		Op: svc.EncodePut(map[string]string{"g0/x": "1"})}); r.OK {
		t.Fatal("server accepted a destination group outside the topology")
	}
	// The replica survived both and still executes valid commands.
	if r := roundTrip(svc.Request{Session: 1, Seq: 3, Dest: types.NewGroupSet(0),
		Op: svc.EncodePut(map[string]string{"g0/x": "1"})}); !r.OK {
		t.Fatalf("valid request after rejections failed: %s", r.Err)
	}
}
