// Package svc is the client-facing replicated service layer: it turns the
// live cluster's genuine atomic multicast (Algorithm A1) into an
// exactly-once replicated state machine that real clients call over TCP.
//
// # Architecture
//
// Every replica process of the ordering cluster also runs a Server: a
// client-facing listener speaking a request/reply protocol framed with
// internal/wire (Kinds Request, Reply, Redirect). A client names the exact
// set of shards its operation touches; the contacted server — which must
// belong to one of them — wraps the operation in a Command tagged with the
// client's (session, sequence) identity and genuinely multicasts it to
// exactly those shards via A1. Uninvolved shards never see the command
// (genuineness, the paper's §1 motivation). When the command A-Delivers
// locally, the server applies it to its StateMachine and answers the
// client; every other destination replica applies it in the same total
// order, so replicas of a shard stay identical and cross-shard commands
// serialize consistently everywhere.
//
// # Sessions and exactly-once execution
//
// Each client owns a session (a unique uint64) and numbers its commands
// with a per-session sequence, one outstanding command at a time. A retry
// after a timeout reuses the same sequence number. Every replica keeps a
// dedup table per session: a sliding window of applied sequence numbers
// with their cached results. The table needs no replication protocol of
// its own — it is a deterministic function of the A-Delivery order, so all
// replicas of a shard agree on it. A retried command therefore mutates the
// state machine exactly once, no matter how many times the client resent
// it or how many duplicate Commands reached the ordering layer; later
// copies hit the table and are answered from the cached result.
//
// The table is a window rather than a high-water mark on purpose: two
// commands of one session that touch different shard sets may be
// delivered at a shard they share in the opposite of issue order (atomic
// multicast fixes a pairwise-consistent total order, not real-time
// order), and a mark-only table would mistake the earlier command for a
// duplicate and drop its writes. Window entries older than sessionWindow
// below the session's maximum are pruned; a request that far behind is
// answered "expired" — a correct closed-loop client can never send one.
//
// Total dedup memory is bounded on both axes: at most sessionWindow
// cached results per session, and at most ServerConfig.MaxSessions
// sessions per replica, evicted least-recently-delivered-to first.
// Eviction keys off the delivery order only, so replicas of a shard evict
// in lockstep and their tables stay identical.
//
// # Redirects
//
// A server contacted with a destination set that excludes its own group
// does not proxy: it answers Redirect carrying the addresses of servers
// that can coordinate (members of the destination groups). The shard-aware
// Client routes by key → group up front, so redirects only happen when its
// address map is stale or incomplete; it follows the redirect and resends
// under the same sequence number.
//
// Reply results are replica-local: for a cross-shard command the client
// receives the coordinator shard's result (each shard applies only its
// part of the operation).
package svc

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/metrics"
	"wanamcast/internal/trace"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// StateMachine is one replica's application state. Apply is invoked in
// A-Delivery order, sequentially, for every command addressed to the
// replica's shard; it returns the replica-local result. Snapshot
// serialises the state deterministically (replica-equality checks, crash
// recovery, state transfer); Restore replaces the state with a previously
// Snapshot-ted one — it runs during crash recovery, before any Apply of
// the new incarnation. Implementations need no internal locking for Apply
// (the Server serialises calls) but Snapshot may race with Apply and must
// synchronise if the machine is read concurrently.
type StateMachine interface {
	Apply(op []byte) ([]byte, error)
	Snapshot() ([]byte, error)
	Restore(snapshot []byte) error
}

// QueryMachine is the optional read-only surface of a StateMachine. Query
// evaluates a read-only operation against the current state WITHOUT going
// through the ordering layer — the read tier (lease and watermark reads)
// requires it. Unlike Apply, Query may run concurrently with Apply and
// with other Queries; implementations must synchronise internally.
type QueryMachine interface {
	Query(op []byte) ([]byte, error)
}

// ServerConfig configures one replica's client-facing server.
type ServerConfig struct {
	// Self and Group identify the replica within the ordering cluster.
	Self  types.ProcessID
	Group types.GroupID
	// Groups is |Γ|, the number of shards (required). Requests naming a
	// destination group outside [0, Groups) are refused: the ordering
	// layer's topology lookups panic on unknown groups, and a malformed
	// client request must cost an error reply, never the replica.
	Groups int
	// Addr is the client-facing listen address (e.g. "127.0.0.1:0").
	Addr string
	// Machine is the replica's state machine (required).
	Machine StateMachine
	// Submit hands a command to the ordering layer: genuinely multicast it
	// to dest and return its MessageID (required). It must be safe to call
	// from connection goroutines and must not be called on the cluster's
	// event loop (the Server never does).
	Submit func(cmd Command, dest types.GroupSet) types.MessageID
	// GroupAddrs resolves a group to its servers' client-facing addresses,
	// for Redirect replies. Nil disables redirect address hints.
	GroupAddrs func(g types.GroupID) []string
	// Stats, when non-nil, receives service-level counters.
	Stats *metrics.Service
	// Tracer, when non-nil and enabled, records the client-facing spans of
	// the message lifecycle: StageSubmit when a request arrives,
	// StageEnqueue when it is handed to the ordering layer, StageReply
	// (with the server-side end-to-end latency) when the delivery answers
	// the client.
	Tracer *trace.Tracer
	// ReplyTimeout bounds each reply write (default 5s); a client too slow
	// to take its reply loses the connection, not the command.
	ReplyTimeout time.Duration
	// MaxSessions bounds the replicated dedup table (default 65536
	// sessions): beyond it the least-recently-delivered-to session is
	// evicted. Eviction is driven purely by A-Delivery order, so replicas
	// of a shard evict identically and their tables never diverge. A
	// client idle long enough to be evicted loses exactly-once for its
	// in-flight command and must open a fresh session.
	MaxSessions int
	// Lease, when non-nil, is this replica's leader lease (the transport's
	// per-process lease object). Lease-mode reads are served only while it
	// is valid — checked before AND after the query, so a lease that
	// lapses mid-read can never leak a stale result. Nil refuses lease
	// reads outright.
	Lease *fd.Lease
	// Ring, when non-nil, enables delivery certificates: the server
	// answers CertReq with an HMAC countersignature under its own derived
	// key. Nil refuses certificate requests.
	Ring *KeyRing
	// ReadTimeout bounds how long a read parks waiting for the replica's
	// watermark to reach the client's MinWatermark (default 2s). A read
	// that far behind answers an error and lets the client retry
	// elsewhere.
	ReadTimeout time.Duration
}

// sessionWindow bounds the per-session dedup window: how many recent
// (sequence → result) entries each replica retains. A closed-loop client
// has at most two sequence numbers live at once (the outstanding command
// and, under shard-order inversion, its predecessor), so 128 is deep
// margin; anything older answers "expired" rather than re-executing.
const sessionWindow = 128

// appliedCmd is one executed command's cached outcome, plus the receipt a
// delivery certificate attests: the shard-local delivery order (the
// server's tick at first apply), the message ID that carried the command,
// and the shard's rolling state hash after the apply. All three are
// deterministic functions of the A-Delivery sequence, so every replica of
// the shard countersigns the same receipt.
type appliedCmd struct {
	result []byte
	err    string
	order  uint64
	id     types.MessageID
	hash   [sha256.Size]byte
}

// session is one client session's replicated dedup state. It is identical
// on every replica of a shard because it advances only on A-Delivery.
//
// The table is a WINDOW of applied sequences, not just a high-water mark:
// two commands of one session with different destination sets may be
// delivered in opposite relative order at a shard they share (atomic
// multicast guarantees pairwise-consistent order, not issue order), and a
// mark-only table would misread the earlier command as a duplicate and
// drop its writes. With the window, each sequence number executes exactly
// once no matter how deliveries interleave.
type session struct {
	maxSeq  uint64
	applied map[uint64]appliedCmd
	// touched is the server's delivery tick of the session's most recent
	// command — NEVER a request-path timestamp: eviction order must be a
	// deterministic function of the A-Delivery sequence alone, or replicas
	// of a shard would evict different sessions and their dedup tables
	// (replicated state!) would diverge.
	touched uint64
}

// pendingReq is a locally submitted command awaiting A-Delivery, so the
// submitting server can answer its client.
type pendingReq struct {
	conn    *tcp.SvcConn
	session uint64
	seq     uint64
	at      time.Time // submit time, stamped only while tracing (zero = untimed)
}

// readWaiter is one parked read: the replica's watermark has not yet
// reached the client's MinWatermark, so the read waits (bounded by
// ReadTimeout) for the deliveries to catch up instead of failing. done
// flips (under Server.mu) when exactly one of Deliver or the timeout
// claims the waiter.
type readWaiter struct {
	conn  *tcp.SvcConn
	req   ReadReq
	timer *time.Timer
	done  bool
}

// Server serves one replica's clients. Create with NewServer, then Start.
type Server struct {
	cfg ServerConfig
	ln  *tcp.SvcListener

	// wm mirrors tick for lock-free reads: the replica's delivery
	// watermark, the highest contiguous prefix of the shard's A-Delivery
	// order this replica has applied.
	wm atomic.Uint64

	mu        sync.Mutex
	sessions  map[uint64]*session
	tick      uint64 // delivery counter driving deterministic session LRU
	stateHash [sha256.Size]byte
	pending   map[types.MessageID]pendingReq
	waiters   []*readWaiter
	conns     map[*tcp.SvcConn]bool
	closed    bool

	wg sync.WaitGroup
}

// NewServer builds (but does not start) a server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Machine == nil || cfg.Submit == nil {
		panic("svc: ServerConfig.Machine and Submit are required")
	}
	if cfg.Groups < 1 {
		panic("svc: ServerConfig.Groups is required")
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 5 * time.Second
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Second
	}
	return &Server{
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		pending:  make(map[types.MessageID]pendingReq),
		conns:    make(map[*tcp.SvcConn]bool),
	}
}

// Start opens the client listener and begins accepting (Listen + Serve).
// Wire the cluster's delivery hook to Deliver before Start so no delivery
// is missed.
func (s *Server) Start() error {
	if err := s.Listen(); err != nil {
		return err
	}
	s.Serve()
	return nil
}

// Listen binds the client-facing listener without accepting yet; Addr is
// valid afterwards. ServeCluster uses the split phases to finish the
// redirect address book before any client can possibly connect.
func (s *Server) Listen() error {
	ln, err := tcp.SvcListen(s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("svc: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return nil
}

// Serve starts accepting client connections. Call after Listen.
func (s *Server) Serve() {
	s.wg.Add(1)
	go s.acceptLoop()
}

// Addr returns the bound client-facing address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and every client connection and waits for the
// connection goroutines to drain. Idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]*tcp.SvcConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn *tcp.SvcConn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		v, err := conn.ReadMsg()
		if err != nil {
			return // client hung up or sent garbage
		}
		switch req := v.(type) {
		case Request:
			s.handle(conn, req)
		case ReadReq:
			s.handleRead(conn, req)
		case CertReq:
			s.handleCert(conn, req)
		default:
			return // protocol violation: cost the connection
		}
	}
}

// Watermark returns the replica's delivery watermark: how many commands
// of its shard's A-Delivery sequence it has applied. Reads serve at this
// watermark; a client comparing watermarks across replicas sees which one
// is ahead.
func (s *Server) Watermark() uint64 { return s.wm.Load() }

// handleRead serves one read-tier request on the connection's goroutine.
// Reads never touch the ordering layer: a lease read costs a local
// lease-validity check plus the query, a watermark read just the query —
// zero WAN round trips either way. If the replica's watermark has not
// reached the client's MinWatermark, the read parks until a delivery
// catches it up (bounded by ReadTimeout); that barrier is what makes
// follower reads read-your-writes and monotonic per session.
func (s *Server) handleRead(conn *tcp.SvcConn, req ReadReq) {
	if s.cfg.Stats != nil {
		s.cfg.Stats.RecordRequest()
	}
	fail := func(err string) {
		_ = s.writeMsg(conn, ReadResp{Session: req.Session, Seq: req.Seq, Err: err})
	}
	if req.Group != s.cfg.Group {
		fail(fmt.Sprintf("read for group %v at a member of group %v", req.Group, s.cfg.Group))
		return
	}
	if _, ok := s.cfg.Machine.(QueryMachine); !ok {
		fail("state machine does not support local reads")
		return
	}
	switch req.Mode {
	case readModeLease:
		if s.cfg.Lease == nil || !s.cfg.Lease.Valid() {
			if s.cfg.Stats != nil {
				s.cfg.Stats.RecordLeaseDenied()
			}
			fail("no lease")
			return
		}
	case readModeWatermark:
		// any replica serves
	default:
		fail(fmt.Sprintf("unknown read mode %d", req.Mode))
		return
	}
	w := &readWaiter{conn: conn, req: req}
	if s.wm.Load() >= req.MinWatermark {
		s.finishRead(w)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// Re-check under the lock: a delivery between the fast check and the
	// park would otherwise strand the waiter until the timeout.
	if s.wm.Load() >= req.MinWatermark {
		s.mu.Unlock()
		s.finishRead(w)
		return
	}
	w.timer = time.AfterFunc(s.cfg.ReadTimeout, func() { s.expireRead(w) })
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
}

// finishRead runs the query and answers the read. The published watermark
// is read BEFORE the query — the result reflects at least that much of
// the delivery sequence, possibly more, so the client's tracked watermark
// stays a sound lower bound. Lease validity is re-checked AFTER the
// query: a lease that lapsed mid-read (suspicion, partition fencing)
// conservatively turns the answer into a refusal rather than risk serving
// a value a new holder may already have superseded.
func (s *Server) finishRead(w *readWaiter) {
	resp := ReadResp{Session: w.req.Session, Seq: w.req.Seq, Watermark: s.wm.Load()}
	res, err := s.cfg.Machine.(QueryMachine).Query(w.req.Op)
	if w.req.Mode == readModeLease && (s.cfg.Lease == nil || !s.cfg.Lease.Valid()) {
		if s.cfg.Stats != nil {
			s.cfg.Stats.RecordLeaseDenied()
		}
		resp.Err = "no lease"
		_ = s.writeMsg(w.conn, resp)
		return
	}
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.OK = true
		resp.Result = res
		if s.cfg.Stats != nil {
			s.cfg.Stats.RecordReply()
		}
	}
	_ = s.writeMsg(w.conn, resp)
}

// expireRead fails a parked read whose watermark barrier never cleared.
func (s *Server) expireRead(w *readWaiter) {
	s.mu.Lock()
	if w.done {
		s.mu.Unlock()
		return
	}
	w.done = true
	for i, q := range s.waiters {
		if q == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
	wm := s.wm.Load()
	s.mu.Unlock()
	_ = s.writeMsg(w.conn, ReadResp{Session: w.req.Session, Seq: w.req.Seq, Watermark: wm,
		Err: fmt.Sprintf("replica at watermark %d, behind requested %d", wm, w.req.MinWatermark)})
}

// handleCert answers one certificate request with this replica's HMAC
// countersignature over the command's receipt. The command must still be
// inside the session's dedup window; the receipt (order, message ID,
// rolling state hash) was recorded at first apply and is identical at
// every replica of the shard.
func (s *Server) handleCert(conn *tcp.SvcConn, req CertReq) {
	if s.cfg.Stats != nil {
		s.cfg.Stats.RecordRequest()
	}
	share := CertShare{Session: req.Session, Seq: req.Seq, Proc: s.cfg.Self, Group: s.cfg.Group}
	if s.cfg.Ring == nil {
		share.Err = "certificates disabled (no secret configured)"
		_ = s.writeMsg(conn, share)
		return
	}
	s.mu.Lock()
	var (
		ac appliedCmd
		ok bool
	)
	if sess := s.sessions[req.Session]; sess != nil {
		ac, ok = sess.applied[req.Seq]
	}
	s.mu.Unlock()
	if !ok {
		share.Err = fmt.Sprintf("(session %d, seq %d) not in the dedup window", req.Session, req.Seq)
		_ = s.writeMsg(conn, share)
		return
	}
	share.OK = true
	share.ID = ac.id
	share.Order = ac.order
	share.Hash = append([]byte(nil), ac.hash[:]...)
	share.MAC = s.cfg.Ring.Sign(s.cfg.Self, receiptBytes(share.ID, share.Group, share.Order, share.Hash))
	_ = s.writeMsg(conn, share)
}

// handle processes one request on the connection's goroutine. It never
// blocks on the ordering layer's event loops beyond the submit hand-off
// and never holds s.mu across Submit (Deliver runs on the event loop and
// takes s.mu — holding it across Submit would deadlock).
func (s *Server) handle(conn *tcp.SvcConn, req Request) {
	if s.cfg.Stats != nil {
		s.cfg.Stats.RecordRequest()
	}
	var start time.Time
	if s.cfg.Tracer.Enabled() {
		start = time.Now()
		s.cfg.Tracer.Record(int(s.cfg.Self), trace.StageSubmit, types.MessageID{}, s.cfg.Self, 0)
	}
	if req.Dest.Size() == 0 {
		s.reply(conn, Reply{Session: req.Session, Seq: req.Seq, Err: "empty destination set"})
		return
	}
	for _, g := range req.Dest.Groups() {
		if g < 0 || int(g) >= s.cfg.Groups {
			s.reply(conn, Reply{Session: req.Session, Seq: req.Seq,
				Err: fmt.Sprintf("destination group %v outside topology (%d shards)", g, s.cfg.Groups)})
			return
		}
	}
	if !req.Dest.Contains(s.cfg.Group) {
		if s.cfg.Stats != nil {
			s.cfg.Stats.RecordRedirect()
		}
		var addrs []string
		if s.cfg.GroupAddrs != nil {
			for _, g := range req.Dest.Groups() {
				addrs = append(addrs, s.cfg.GroupAddrs(g)...)
			}
		}
		_ = s.writeMsg(conn, Redirect{Session: req.Session, Seq: req.Seq, Groups: req.Dest, Addrs: addrs})
		return
	}

	// Fast path: the command already committed (a retry arriving after the
	// original's delivery). Answer from the replicated dedup table without
	// re-submitting.
	s.mu.Lock()
	if r, done := s.cachedReply(req, true); done {
		s.mu.Unlock()
		s.reply(conn, r)
		return
	}
	s.mu.Unlock()

	id := s.cfg.Submit(Command{Session: req.Session, Seq: req.Seq, Op: req.Op}, req.Dest)
	if !start.IsZero() {
		s.cfg.Tracer.Record(int(s.cfg.Self), trace.StageEnqueue, id, s.cfg.Self, time.Since(start).Nanoseconds())
	}
	if id.IsZero() {
		// The ordering layer refused the submission (the replica's process
		// is crashed and not yet restarted). No reply: the client times
		// out and retries against a live replica under the same sequence.
		return
	}

	s.mu.Lock()
	// The command may have been delivered between Submit returning and
	// this re-lock; answer now if so, else park the reply on its
	// MessageID. A hit here is (almost always) this very submission
	// racing its own delivery, not a client retry, so it must not count
	// toward the duplicates metric.
	if r, done := s.cachedReply(req, false); done {
		s.mu.Unlock()
		s.reply(conn, r)
		return
	}
	s.pending[id] = pendingReq{conn: conn, session: req.Session, seq: req.Seq, at: start}
	s.mu.Unlock()
}

// cachedReply answers req from the session window if its sequence number
// has already been applied (or has aged out of the window entirely).
// recordDup controls whether a hit counts toward the duplicates metric —
// true for genuine client resends, false for a submission racing its own
// delivery. Callers hold s.mu.
func (s *Server) cachedReply(req Request, recordDup bool) (Reply, bool) {
	sess := s.sessions[req.Session]
	if sess == nil {
		return Reply{}, false
	}
	if ac, done := sess.applied[req.Seq]; done {
		if recordDup && s.cfg.Stats != nil {
			s.cfg.Stats.RecordDuplicate()
		}
		return appliedReply(req.Session, req.Seq, ac), true
	}
	if req.Seq+sessionWindow <= sess.maxSeq {
		// Too old to still hold a result — and too old to be a live retry
		// from a correct closed-loop client. Refuse rather than re-execute.
		return Reply{Session: req.Session, Seq: req.Seq,
			Err: fmt.Sprintf("sequence %d expired (session window past %d)", req.Seq, sess.maxSeq)}, true
	}
	return Reply{}, false
}

// appliedReply builds the reply for a cached command outcome.
func appliedReply(sessionID, seq uint64, ac appliedCmd) Reply {
	r := Reply{Session: sessionID, Seq: seq, OK: ac.err == "", Err: ac.err}
	if r.OK {
		r.Result = ac.result
		r.Order = ac.order
	}
	return r
}

// Deliver feeds one local A-Delivery into the server. Wire it to the
// cluster's per-process delivery hook; non-Command payloads are ignored so
// the service coexists with other traffic on the same cluster. Deliver
// runs on the replica's event loop: calls are sequential and in delivery
// order, which is exactly the state machine's contract.
func (s *Server) Deliver(id types.MessageID, payload any) {
	cmd, ok := payload.(Command)
	if !ok {
		return
	}
	s.mu.Lock()
	if s.closed {
		// A stopped server must go fully inert: its delivery hook cannot
		// be unregistered from the cluster, and a ghost apply would
		// double-execute commands against a dead machine and skew the
		// shared metrics.
		s.mu.Unlock()
		return
	}
	s.tick++
	s.wm.Store(s.tick)
	sess := s.sessions[cmd.Session]
	if sess == nil {
		// touched is set before the eviction sweep so the newcomer can
		// never be its own victim.
		sess = &session{applied: make(map[uint64]appliedCmd), touched: s.tick}
		s.sessions[cmd.Session] = sess
		if len(s.sessions) > s.cfg.MaxSessions {
			s.evictOldestSession()
		}
	}
	sess.touched = s.tick
	if _, done := sess.applied[cmd.Seq]; !done && cmd.Seq+sessionWindow > sess.maxSeq {
		// First delivery of this (session, seq): the one and only state
		// mutation, identical at every replica of every destination shard.
		// The receipt (order, id, rolling hash) is recorded here and only
		// here, so duplicates certify the original's receipt.
		res, err := s.cfg.Machine.Apply(cmd.Op)
		ac := appliedCmd{result: res, order: s.tick, id: id}
		if err != nil {
			ac.err = err.Error()
		}
		chain := make([]byte, 0, 2*sha256.Size+len(cmd.Op))
		chain = append(chain, s.stateHash[:]...)
		chain = id.AppendTo(chain)
		chain = append(chain, cmd.Op...)
		s.stateHash = sha256.Sum256(chain)
		ac.hash = s.stateHash
		sess.applied[cmd.Seq] = ac
		if cmd.Seq > sess.maxSeq {
			sess.maxSeq = cmd.Seq
		}
		if len(sess.applied) > sessionWindow {
			for q := range sess.applied {
				if q+sessionWindow <= sess.maxSeq {
					delete(sess.applied, q)
				}
			}
		}
	} else if s.cfg.Stats != nil {
		// A duplicate Command ordered by a client retry (or one that fell
		// out of the window): suppressed here, at every replica, by the
		// replicated dedup table.
		s.cfg.Stats.RecordDuplicate()
	}
	pr, waiting := s.pending[id]
	var r Reply
	if waiting {
		delete(s.pending, id)
		if ac, ok := sess.applied[pr.seq]; ok {
			r = appliedReply(pr.session, pr.seq, ac)
		} else {
			r = Reply{Session: pr.session, Seq: pr.seq,
				Err: fmt.Sprintf("sequence %d expired (session window past %d)", pr.seq, sess.maxSeq)}
		}
	}
	// Claim every parked read whose watermark barrier this delivery
	// cleared; the queries run off-loop so a read can never stall the
	// delivery sequence.
	var ready []*readWaiter
	if len(s.waiters) > 0 {
		kept := s.waiters[:0]
		for _, w := range s.waiters {
			if !w.done && w.req.MinWatermark <= s.tick {
				w.done = true
				w.timer.Stop()
				ready = append(ready, w)
			} else {
				kept = append(kept, w)
			}
		}
		s.waiters = kept
	}
	s.mu.Unlock()
	for _, w := range ready {
		// Untracked for the same reason as the reply goroutine below.
		go s.finishRead(w)
	}
	if waiting {
		if !pr.at.IsZero() {
			// Server-side end-to-end: client submit → reply handed off.
			s.cfg.Tracer.Record(int(s.cfg.Self), trace.StageReply, id, s.cfg.Self, time.Since(pr.at).Nanoseconds())
		}
		// Off-loop: a slow client must never stall the replica's
		// deliveries. The goroutine is deliberately not wg-tracked — it
		// only touches the connection (safe after Stop closed it), and
		// Deliver can legitimately race Stop, where a wg.Add against the
		// final wg.Wait would be misuse.
		go s.reply(pr.conn, r)
	}
}

// evictOldestSession drops the session with the oldest delivery tick.
// Callers hold s.mu. Because ticks advance only on A-Delivery, every
// replica of the shard evicts the same session at the same point in the
// command sequence, keeping the replicated dedup tables identical.
func (s *Server) evictOldestSession() {
	var (
		victim uint64
		oldest uint64
		found  bool
	)
	for id, sess := range s.sessions {
		if !found || sess.touched < oldest {
			victim, oldest, found = id, sess.touched, true
		}
	}
	if found {
		delete(s.sessions, victim)
	}
}

// SessionCount returns how many sessions the dedup table currently holds
// (diagnostics; bounded by ServerConfig.MaxSessions).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// reply sends r on conn under the write deadline; errors cost the
// connection (the client will retry elsewhere under the same sequence).
func (s *Server) reply(conn *tcp.SvcConn, r Reply) {
	if s.cfg.Stats != nil && r.OK {
		s.cfg.Stats.RecordReply()
	}
	_ = s.writeMsg(conn, r)
}

func (s *Server) writeMsg(conn *tcp.SvcConn, v any) error {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.ReplyTimeout))
	if err := conn.WriteMsg(s.cfg.Self, v); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}
