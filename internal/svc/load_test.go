package svc_test

import (
	"bytes"
	"testing"
	"time"

	"wanamcast/internal/svc"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// TestServiceLoadHundredClients is the acceptance workload: 100 concurrent
// closed-loop client sessions against 3 shards, destination fan-out drawn
// from the §1 partial-replication mix. Every operation must succeed, every
// §2.2 property must hold over the live run, and replicas of each shard
// must converge to identical state.
func TestServiceLoadHundredClients(t *testing.T) {
	f := newKVFixture(t, 3, 3, 25300, 5*time.Millisecond)

	res := svc.RunKVLoad(f.topo, f.service.Addrs(), svc.LoadSpec{
		Clients: 100,
		Ops:     3,
		Mix:     workload.DefaultMix(),
		Timeout: 5 * time.Second,
		Seed:    42,
	}, f.stats)

	if res.Errors != 0 {
		t.Fatalf("%d of %d client operations failed", res.Errors, res.Errors+res.Ops)
	}
	if want := 100 * 3; res.Ops != want {
		t.Fatalf("completed %d ops, want %d", res.Ops, want)
	}
	t.Logf("load: %d ops in %v (%.0f ops/s)\n%v",
		res.Ops, res.Elapsed.Round(time.Millisecond),
		float64(res.Ops)/res.Elapsed.Seconds(), res.Stats)

	// Clients saw their coordinator's delivery; wait for the uniform
	// fan-out (every addressee of every command) to drain, then demand a
	// clean §2.2 verdict.
	violations := f.cluster.WaitPropertiesClean(30 * time.Second)
	if len(violations) > 0 {
		t.Fatalf("§2.2 property violations over the live run (%d):\n%v", len(violations), violations)
	}

	// Replica convergence per shard: byte-identical snapshots.
	for g := 0; g < f.topo.NumGroups(); g++ {
		members := f.topo.Members(types.GroupID(g))
		ref, err := f.machine(members[0]).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range members[1:] {
			snap, err := f.machine(p).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, snap) {
				t.Fatalf("shard %d replicas diverged: %v vs %v", g, members[0], p)
			}
		}
		if f.machine(members[0]).Len() == 0 {
			t.Fatalf("shard %d holds no keys after 300 ops with a home-shard mix", g)
		}
	}
}
