// Delivery certificates: a quorum of a shard's replicas countersigns the
// receipt (MessageID, group, order t, state hash) of an applied command,
// and the client can verify the bundle OFFLINE — no trust in any single
// replica, in the spirit of pod's accountable, optimal-latency reads.
//
// Each replica p holds an HMAC-SHA256 key derived from a deployment
// secret; its CertShare MACs the canonical receipt bytes under that key.
// A majority of matching shares proves — to anyone holding the KeyRing —
// that a majority of the shard attests the command was A-Delivered at
// order t leaving the shard's rolling state hash at h: forging a
// certificate requires forging MACs, and equivocating about t or h
// requires a majority of replicas to diverge from the replicated state
// machine, which the §2.2 properties rule out for correct processes.
package svc

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// CertReq asks a replica for its countersignature over the receipt of the
// write command (Session, Seq). The command must still be inside the
// session's dedup window at that replica.
type CertReq struct {
	Session uint64
	Seq     uint64
}

// CertShare is one replica's countersignature: replica Proc of shard
// Group attests that command (Session, Seq) — ordered as message ID —
// A-Delivered at shard order Order, leaving the shard's rolling state
// hash at Hash. MAC is HMAC-SHA256 over the canonical receipt bytes
// under Proc's key.
type CertShare struct {
	Session uint64
	Seq     uint64
	OK      bool
	Err     string
	ID      types.MessageID
	Group   types.GroupID
	Order   uint64
	Hash    []byte
	Proc    types.ProcessID
	MAC     []byte
}

// Certificate is a client-assembled bundle of matching shares. Verify
// with KeyRing.VerifyCertificate — the check needs no network.
type Certificate struct {
	ID     types.MessageID
	Group  types.GroupID
	Order  uint64
	Hash   []byte
	Shares map[types.ProcessID][]byte // replica → MAC over the receipt
}

// KeyRing derives each replica's certificate key from one deployment
// secret: key(p) = HMAC-SHA256(secret, "cert-key" ‖ uvarint(p)). Both
// sides of the protocol — replicas signing and clients verifying — hold
// the same ring; it is the deployment's root of trust for receipts.
type KeyRing struct {
	secret []byte
}

// NewKeyRing builds a ring from the deployment secret (non-empty).
func NewKeyRing(secret []byte) *KeyRing {
	if len(secret) == 0 {
		panic("svc: empty certificate secret")
	}
	return &KeyRing{secret: append([]byte(nil), secret...)}
}

func (r *KeyRing) keyOf(p types.ProcessID) []byte {
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte("cert-key"))
	mac.Write(wire.AppendUvarint(nil, uint64(p)))
	return mac.Sum(nil)
}

// Sign MACs msg under p's derived key.
func (r *KeyRing) Sign(p types.ProcessID, msg []byte) []byte {
	mac := hmac.New(sha256.New, r.keyOf(p))
	mac.Write(msg)
	return mac.Sum(nil)
}

// Verify checks a MAC in constant time.
func (r *KeyRing) Verify(p types.ProcessID, msg, mac []byte) bool {
	return hmac.Equal(mac, r.Sign(p, msg))
}

// receiptBytes is the canonical signing payload of one receipt. Every
// field a certificate attests is bound into it; anything mutable left out
// would be forgeable.
func receiptBytes(id types.MessageID, g types.GroupID, order uint64, hash []byte) []byte {
	buf := id.AppendTo(nil)
	buf = wire.AppendVarint(buf, int64(g))
	buf = wire.AppendUvarint(buf, order)
	return wire.AppendBytes(buf, hash)
}

// VerifyCertificate checks c offline against the shard membership: every
// share must come from a distinct member of the group and carry a valid
// MAC over the receipt, and the shares must number at least a majority of
// the group. A nil error means a majority of the shard attests (ID,
// Order, Hash).
func (r *KeyRing) VerifyCertificate(c Certificate, members []types.ProcessID) error {
	quorum := len(members)/2 + 1
	if len(c.Shares) < quorum {
		return fmt.Errorf("svc: certificate has %d shares, quorum is %d", len(c.Shares), quorum)
	}
	isMember := make(map[types.ProcessID]bool, len(members))
	for _, p := range members {
		isMember[p] = true
	}
	msg := receiptBytes(c.ID, c.Group, c.Order, c.Hash)
	for p, mac := range c.Shares {
		if !isMember[p] {
			return fmt.Errorf("svc: certificate share from %v, not a member of group %v", p, c.Group)
		}
		if !r.Verify(p, msg, mac) {
			return fmt.Errorf("svc: certificate share from %v has an invalid MAC", p)
		}
	}
	return nil
}

func init() {
	gob.Register(CertReq{})
	gob.Register(CertShare{})
	wire.Register(wire.KindSvcCertReq, appendCertReq, decodeCertReq)
	wire.Register(wire.KindSvcCertShare, appendCertShare, decodeCertShare)
}

func appendCertReq(buf []byte, r CertReq) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	return wire.AppendUvarint(buf, r.Seq)
}

func decodeCertReq(data []byte) (CertReq, []byte, error) {
	var r CertReq
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	return r, data, nil
}

func appendCertShare(buf []byte, s CertShare) []byte {
	buf = wire.AppendUvarint(buf, s.Session)
	buf = wire.AppendUvarint(buf, s.Seq)
	ok := byte(0)
	if s.OK {
		ok = 1
	}
	buf = append(buf, ok)
	buf = wire.AppendString(buf, s.Err)
	buf = s.ID.AppendTo(buf)
	buf = wire.AppendVarint(buf, int64(s.Group))
	buf = wire.AppendUvarint(buf, s.Order)
	buf = wire.AppendBytes(buf, s.Hash)
	buf = wire.AppendVarint(buf, int64(s.Proc))
	return wire.AppendBytes(buf, s.MAC)
}

func decodeCertShare(data []byte) (CertShare, []byte, error) {
	var s CertShare
	var err error
	if s.Session, data, err = wire.Uvarint(data); err != nil {
		return s, nil, err
	}
	if s.Seq, data, err = wire.Uvarint(data); err != nil {
		return s, nil, err
	}
	if len(data) == 0 {
		return s, nil, wire.ErrCorrupt
	}
	s.OK, data = data[0] != 0, data[1:]
	if s.Err, data, err = wire.String(data); err != nil {
		return s, nil, err
	}
	if s.ID, data, err = types.DecodeMessageID(data); err != nil {
		return s, nil, err
	}
	var g int64
	if g, data, err = wire.Varint(data); err != nil {
		return s, nil, err
	}
	s.Group = types.GroupID(g)
	if s.Order, data, err = wire.Uvarint(data); err != nil {
		return s, nil, err
	}
	h, data, err := wire.Bytes(data)
	if err != nil {
		return s, nil, err
	}
	s.Hash = append([]byte(nil), h...)
	var p int64
	if p, data, err = wire.Varint(data); err != nil {
		return s, nil, err
	}
	s.Proc = types.ProcessID(p)
	m, data, err := wire.Bytes(data)
	if err != nil {
		return s, nil, err
	}
	s.MAC = append([]byte(nil), m...)
	return s, data, nil
}
