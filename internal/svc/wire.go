package svc

import (
	"encoding/gob"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// Command is the replicated operation: the payload the server genuinely
// multicasts to the destination shards. (Session, Seq) is the client's
// exactly-once identity — every replica's dedup table is keyed by it, and
// because every replica of a shard sees the same A-Delivery order, the
// tables stay identical without any extra coordination.
type Command struct {
	Session uint64
	Seq     uint64
	Op      []byte
}

// Request is one client call: execute Op on the shards in Dest, exactly
// once, under (Session, Seq). Retries after a timeout MUST reuse the same
// Seq — that is what makes them retries rather than new commands.
type Request struct {
	Session uint64
	Seq     uint64
	Dest    types.GroupSet
	Op      []byte
}

// Reply answers a Request. Result is the replica-local result of the
// contacted server's shard. OK false carries an application or protocol
// error in Err. Order is the coordinator shard's delivery watermark after
// the command applied (0 for error replies): the client folds it into its
// per-shard watermark so follower reads are read-your-writes.
type Reply struct {
	Session uint64
	Seq     uint64
	OK      bool
	Err     string
	Result  []byte
	Order   uint64
}

// Redirect tells a client it asked the wrong shard: the contacted server's
// group is not in the request's destination set. Addrs lists client-facing
// addresses of servers that can coordinate the command (members of Groups).
type Redirect struct {
	Session uint64
	Seq     uint64
	Groups  types.GroupSet
	Addrs   []string
}

func init() {
	// The gob registrations keep the CodecGob transport and the gob
	// fallback path working for service payloads.
	gob.Register(Command{})
	gob.Register(Request{})
	gob.Register(Reply{})
	gob.Register(Redirect{})

	wire.Register(wire.KindSvcCommand, appendCommand, decodeCommand)
	wire.Register(wire.KindSvcRequest, appendRequest, decodeRequest)
	wire.Register(wire.KindSvcReply, appendReply, decodeReply)
	wire.Register(wire.KindSvcRedirect, appendRedirect, decodeRedirect)
}

func appendCommand(buf []byte, c Command) []byte {
	buf = wire.AppendUvarint(buf, c.Session)
	buf = wire.AppendUvarint(buf, c.Seq)
	return wire.AppendBytes(buf, c.Op)
}

func decodeCommand(data []byte) (Command, []byte, error) {
	var c Command
	var err error
	if c.Session, data, err = wire.Uvarint(data); err != nil {
		return c, nil, err
	}
	if c.Seq, data, err = wire.Uvarint(data); err != nil {
		return c, nil, err
	}
	op, data, err := wire.Bytes(data)
	if err != nil {
		return c, nil, err
	}
	c.Op = append([]byte(nil), op...) // Bytes aliases the input; Command outlives it
	return c, data, nil
}

func appendRequest(buf []byte, r Request) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	buf = wire.AppendUvarint(buf, r.Seq)
	buf = r.Dest.AppendTo(buf)
	return wire.AppendBytes(buf, r.Op)
}

func decodeRequest(data []byte) (Request, []byte, error) {
	var r Request
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Dest, data, err = types.DecodeGroupSet(data); err != nil {
		return r, nil, err
	}
	op, data, err := wire.Bytes(data)
	if err != nil {
		return r, nil, err
	}
	r.Op = append([]byte(nil), op...)
	return r, data, nil
}

func appendReply(buf []byte, r Reply) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	buf = wire.AppendUvarint(buf, r.Seq)
	ok := byte(0)
	if r.OK {
		ok = 1
	}
	buf = append(buf, ok)
	buf = wire.AppendString(buf, r.Err)
	buf = wire.AppendBytes(buf, r.Result)
	return wire.AppendUvarint(buf, r.Order)
}

func decodeReply(data []byte) (Reply, []byte, error) {
	var r Reply
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if len(data) == 0 {
		return r, nil, wire.ErrCorrupt
	}
	r.OK, data = data[0] != 0, data[1:]
	if r.Err, data, err = wire.String(data); err != nil {
		return r, nil, err
	}
	res, data, err := wire.Bytes(data)
	if err != nil {
		return r, nil, err
	}
	r.Result = append([]byte(nil), res...)
	if r.Order, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	return r, data, nil
}

func appendRedirect(buf []byte, r Redirect) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	buf = wire.AppendUvarint(buf, r.Seq)
	buf = r.Groups.AppendTo(buf)
	buf = wire.AppendUvarint(buf, uint64(len(r.Addrs)))
	for _, a := range r.Addrs {
		buf = wire.AppendString(buf, a)
	}
	return buf
}

func decodeRedirect(data []byte) (Redirect, []byte, error) {
	var r Redirect
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Groups, data, err = types.DecodeGroupSet(data); err != nil {
		return r, nil, err
	}
	n, data, err := wire.SliceLen(data)
	if err != nil {
		return r, nil, err
	}
	if n > 0 {
		r.Addrs = make([]string, 0, n)
		for i := 0; i < n; i++ {
			var a string
			if a, data, err = wire.String(data); err != nil {
				return r, nil, err
			}
			r.Addrs = append(r.Addrs, a)
		}
	}
	return r, data, nil
}
