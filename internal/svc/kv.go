package svc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// The reference application of the service layer: a partially replicated
// key-value store (the paper's §1 scenario). Keys are routed to shards by
// a Route function; a put touching several shards is one cross-shard
// command, genuinely multicast to exactly those shards.

// KV op encoding: one op-code byte, then the op-specific body, all in
// internal/wire primitives.
const (
	kvOpPut byte = 1 // uvarint n, then n × (string key, string value)
	kvOpGet byte = 2 // string key
)

// EncodePut builds a put command. Keys are encoded in sorted order so the
// command bytes — and therefore every replica's Apply — are deterministic.
func EncodePut(sets map[string]string) []byte {
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte{kvOpPut}
	buf = wire.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = wire.AppendString(buf, k)
		buf = wire.AppendString(buf, sets[k])
	}
	return buf
}

// EncodeGet builds a get command (a linearizable read: it rides the same
// ordered path as writes).
func EncodeGet(key string) []byte {
	buf := []byte{kvOpGet}
	return wire.AppendString(buf, key)
}

// DecodeGetResult unpacks a get's reply result.
func DecodeGetResult(res []byte) (value string, found bool, err error) {
	if len(res) == 0 {
		return "", false, fmt.Errorf("svc: empty get result")
	}
	found, res = res[0] != 0, res[1:]
	value, _, err = wire.String(res)
	return value, found, err
}

// DecodePutResult unpacks a put's reply result: how many keys the
// coordinator's shard wrote.
func DecodePutResult(res []byte) (int, error) {
	n, _, err := wire.Uvarint(res)
	return int(n), err
}

// Route maps a key to the shard (group) owning it.
type Route func(key string) types.GroupID

// PrefixRoute routes keys of the form "g<N>/..." to group N (mod
// numGroups); any other key hashes by its first byte. The load generator
// and cmd/wankv use it so a key's shard is visible in the key itself.
func PrefixRoute(numGroups int) Route {
	return func(key string) types.GroupID {
		if strings.HasPrefix(key, "g") {
			if i := strings.IndexByte(key, '/'); i > 1 {
				n := 0
				ok := true
				for _, ch := range key[1:i] {
					if ch < '0' || ch > '9' {
						ok = false
						break
					}
					n = n*10 + int(ch-'0')
				}
				if ok {
					return types.GroupID(n % numGroups)
				}
			}
		}
		if len(key) == 0 {
			return 0
		}
		return types.GroupID(int(key[0]) % numGroups)
	}
}

// KVMachine is one replica's shard of the key-value store. It implements
// StateMachine: Apply runs in A-Delivery order (serialised by the Server);
// the mutex only guards against concurrent readers (Snapshot, Get,
// Applied).
type KVMachine struct {
	group types.GroupID
	route Route

	mu      sync.Mutex
	data    map[string]string
	applied uint64 // mutating commands applied (exactly-once accounting)
}

// NewKVMachine builds the machine for one replica of shard group.
func NewKVMachine(group types.GroupID, route Route) *KVMachine {
	return &KVMachine{group: group, route: route, data: make(map[string]string)}
}

// Apply implements StateMachine.
func (m *KVMachine) Apply(op []byte) ([]byte, error) {
	if len(op) == 0 {
		return nil, fmt.Errorf("kv: empty op")
	}
	code, body := op[0], op[1:]
	m.mu.Lock()
	defer m.mu.Unlock()
	switch code {
	case kvOpPut:
		n, body, err := wire.SliceLen(body)
		if err != nil {
			return nil, fmt.Errorf("kv: corrupt put: %w", err)
		}
		wrote := 0
		for i := 0; i < n; i++ {
			var k, v string
			if k, body, err = wire.String(body); err != nil {
				return nil, fmt.Errorf("kv: corrupt put key: %w", err)
			}
			if v, body, err = wire.String(body); err != nil {
				return nil, fmt.Errorf("kv: corrupt put value: %w", err)
			}
			if m.route(k) == m.group {
				m.data[k] = v
				wrote++
			}
		}
		m.applied++
		return wire.AppendUvarint(nil, uint64(wrote)), nil
	case kvOpGet:
		k, _, err := wire.String(body)
		if err != nil {
			return nil, fmt.Errorf("kv: corrupt get: %w", err)
		}
		v, found := m.data[k]
		res := []byte{0}
		if found {
			res[0] = 1
		}
		return wire.AppendString(res, v), nil
	default:
		return nil, fmt.Errorf("kv: unknown op %d", code)
	}
}

// Query implements QueryMachine: it evaluates a READ-ONLY op against the
// current shard state without the ordering layer — the read tier's entry
// point. Only gets are read-only; anything else is refused (a mutation
// smuggled around the ordered path would diverge the replicas). The
// result encoding matches Apply's, so DecodeGetResult works on both.
func (m *KVMachine) Query(op []byte) ([]byte, error) {
	if len(op) == 0 || op[0] != kvOpGet {
		return nil, fmt.Errorf("kv: not a read-only op")
	}
	k, _, err := wire.String(op[1:])
	if err != nil {
		return nil, fmt.Errorf("kv: corrupt get: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, found := m.data[k]
	res := []byte{0}
	if found {
		res[0] = 1
	}
	return wire.AppendString(res, v), nil
}

// Snapshot implements StateMachine: a deterministic encoding of the shard
// state (including the exactly-once apply counter), byte-identical across
// in-sync replicas.
func (m *KVMachine) Snapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	buf = wire.AppendUvarint(buf, m.applied)
	buf = wire.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = wire.AppendString(buf, k)
		buf = wire.AppendString(buf, m.data[k])
	}
	return buf, nil
}

// Restore implements StateMachine: it replaces the shard state with a
// Snapshot-ted one (crash recovery).
func (m *KVMachine) Restore(snapshot []byte) error {
	applied, data, err := wire.Uvarint(snapshot)
	if err != nil {
		return fmt.Errorf("kv: corrupt snapshot: %w", err)
	}
	var n int
	if n, data, err = wire.SliceLen(data); err != nil {
		return fmt.Errorf("kv: corrupt snapshot: %w", err)
	}
	fresh := make(map[string]string, n)
	for i := 0; i < n; i++ {
		var k, v string
		if k, data, err = wire.String(data); err != nil {
			return fmt.Errorf("kv: corrupt snapshot key: %w", err)
		}
		if v, data, err = wire.String(data); err != nil {
			return fmt.Errorf("kv: corrupt snapshot value: %w", err)
		}
		fresh[k] = v
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = fresh
	m.applied = applied
	return nil
}

// Applied returns how many mutating commands this replica has executed —
// the quantity the exactly-once tests pin.
func (m *KVMachine) Applied() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applied
}

// Get reads a key locally (test/diagnostic access, not linearizable).
func (m *KVMachine) Get(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[key]
	return v, ok
}

// Len returns the number of keys held locally.
func (m *KVMachine) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// KV wraps a Client with key-based routing: the destination set of every
// command is exactly the set of shards owning its keys.
type KV struct {
	Client *Client
	Route  Route
}

// DestOf computes the exact destination shards of a key set — the
// genuineness contract: only owners participate.
func (kv *KV) DestOf(keys ...string) types.GroupSet {
	gs := make([]types.GroupID, 0, len(keys))
	for _, k := range keys {
		gs = append(gs, kv.Route(k))
	}
	return types.NewGroupSet(gs...)
}

// Put writes all pairs as one exactly-once command, multicast to the
// owning shards only. It returns how many keys the coordinator shard
// wrote.
func (kv *KV) Put(sets map[string]string) (int, error) {
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	res, err := kv.Client.Invoke(kv.DestOf(keys...), EncodePut(sets))
	if err != nil {
		return 0, err
	}
	return DecodePutResult(res)
}

// Get reads a key through the ordered path (linearizable).
func (kv *KV) Get(key string) (string, bool, error) {
	res, err := kv.Client.Invoke(kv.DestOf(key), EncodeGet(key))
	if err != nil {
		return "", false, err
	}
	return DecodeGetResult(res)
}

// GetAt reads a key under the given consistency mode: ordered rides the
// write path, lease and watermark take the read tier (zero WAN round
// trips, falling back to ordered when no replica will serve). All three
// modes record their latency under the matching read class.
func (kv *KV) GetAt(key string, mode Consistency) (string, bool, error) {
	res, err := kv.Client.Read(kv.Route(key), EncodeGet(key), mode)
	if err != nil {
		return "", false, err
	}
	return DecodeGetResult(res)
}
