// The read tier's wire protocol: reads bypass the ordering layer entirely.
// A ReadReq names a single shard and a mode — lease (serve only while the
// replica holds its group's leader lease: linearizable when writes route
// through the lease holder, which is the client's default routing) or
// watermark (serve at the replica's delivery watermark, whatever replica
// answers). Both carry the client's MinWatermark: the replica parks the
// read until its own watermark catches up, which is what makes follower
// reads read-your-writes and monotonic per session.
package svc

import (
	"encoding/gob"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// Read modes on the wire (ReadReq.Mode).
const (
	readModeLease     byte = 1
	readModeWatermark byte = 2
)

// ReadReq is one local (non-ordered) read of shard Group. Seq numbers the
// session's reads in their own namespace — reads are idempotent, so unlike
// write sequences they are never deduplicated, only matched to responses.
type ReadReq struct {
	Session uint64
	Seq     uint64
	Group   types.GroupID
	Mode    byte
	// MinWatermark is the highest shard watermark this session has
	// observed; the server answers only at or above it.
	MinWatermark uint64
	Op           []byte
}

// ReadResp answers a ReadReq. Watermark is the shard's delivery watermark
// at query time; a client seeing a Watermark below its own tracked value
// rejects the response as stale (a replica restarted behind, or a
// partitioned leftover) and retries elsewhere.
type ReadResp struct {
	Session   uint64
	Seq       uint64
	OK        bool
	Err       string
	Result    []byte
	Watermark uint64
}

func init() {
	gob.Register(ReadReq{})
	gob.Register(ReadResp{})
	wire.Register(wire.KindSvcReadReq, appendReadReq, decodeReadReq)
	wire.Register(wire.KindSvcReadResp, appendReadResp, decodeReadResp)
}

func appendReadReq(buf []byte, r ReadReq) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	buf = wire.AppendUvarint(buf, r.Seq)
	buf = wire.AppendVarint(buf, int64(r.Group))
	buf = append(buf, r.Mode)
	buf = wire.AppendUvarint(buf, r.MinWatermark)
	return wire.AppendBytes(buf, r.Op)
}

func decodeReadReq(data []byte) (ReadReq, []byte, error) {
	var r ReadReq
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	var g int64
	if g, data, err = wire.Varint(data); err != nil {
		return r, nil, err
	}
	r.Group = types.GroupID(g)
	if len(data) == 0 {
		return r, nil, wire.ErrCorrupt
	}
	r.Mode, data = data[0], data[1:]
	if r.MinWatermark, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	op, data, err := wire.Bytes(data)
	if err != nil {
		return r, nil, err
	}
	r.Op = append([]byte(nil), op...)
	return r, data, nil
}

func appendReadResp(buf []byte, r ReadResp) []byte {
	buf = wire.AppendUvarint(buf, r.Session)
	buf = wire.AppendUvarint(buf, r.Seq)
	ok := byte(0)
	if r.OK {
		ok = 1
	}
	buf = append(buf, ok)
	buf = wire.AppendString(buf, r.Err)
	buf = wire.AppendBytes(buf, r.Result)
	return wire.AppendUvarint(buf, r.Watermark)
}

func decodeReadResp(data []byte) (ReadResp, []byte, error) {
	var r ReadResp
	var err error
	if r.Session, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if r.Seq, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	if len(data) == 0 {
		return r, nil, wire.ErrCorrupt
	}
	r.OK, data = data[0] != 0, data[1:]
	if r.Err, data, err = wire.String(data); err != nil {
		return r, nil, err
	}
	res, data, err := wire.Bytes(data)
	if err != nil {
		return r, nil, err
	}
	r.Result = append([]byte(nil), res...)
	if r.Watermark, data, err = wire.Uvarint(data); err != nil {
		return r, nil, err
	}
	return r, data, nil
}
