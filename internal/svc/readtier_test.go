package svc_test

import (
	"testing"
	"time"

	"wanamcast"
	"wanamcast/internal/fd"
	"wanamcast/internal/metrics"
	"wanamcast/internal/svc"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// readFixture is a live cluster with the full read tier enabled: leader
// leases, delivery certificates, and the KV service.
type readFixture struct {
	cluster *wanamcast.LiveCluster
	service *svc.Service
	stats   *metrics.Service
	topo    *wanamcast.Topology
}

func newReadFixture(t *testing.T, groups, perGroup, basePort int, wan time.Duration) *readFixture {
	t.Helper()
	cluster := wanamcast.NewLiveCluster(wanamcast.LiveConfig{
		Groups:         groups,
		PerGroup:       perGroup,
		BasePort:       basePort,
		WANDelay:       wan,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		LeaseDuration:  100 * time.Millisecond,
		MaxBatch:       16,
		Pipeline:       2,
		Check:          true,
	})
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	stats := &metrics.Service{}
	route := svc.PrefixRoute(groups)
	service, err := svc.ServeCluster(cluster, cluster.Topology(), svc.ServiceConfig{
		NewMachine: func(p types.ProcessID, g types.GroupID) svc.StateMachine {
			return svc.NewKVMachine(g, route)
		},
		LeaseFor:   func(p types.ProcessID) *fd.Lease { return cluster.ReadLease(p) },
		CertSecret: []byte("read-tier-test-secret"),
		Stats:      stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(service.Stop)
	f := &readFixture{cluster: cluster, service: service, stats: stats, topo: cluster.Topology()}
	// Let every shard's rank-0 leader earn its lease before the test body
	// issues lease reads.
	deadline := time.Now().Add(10 * time.Second)
	for g := 0; g < groups; g++ {
		leader := f.topo.Members(types.GroupID(g))[0]
		for !cluster.ReadLease(leader).Valid() {
			if time.Now().After(deadline) {
				t.Fatalf("shard %d leader never earned its lease", g)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return f
}

func (f *readFixture) kv(t *testing.T, session uint64) *svc.KV {
	t.Helper()
	client := svc.NewClient(svc.ClientConfig{
		Session: session,
		Addrs:   f.service.Addrs(),
		Timeout: 2 * time.Second,
		Stats:   f.stats,
	})
	t.Cleanup(client.Close)
	return &svc.KV{Client: client, Route: svc.PrefixRoute(f.topo.NumGroups())}
}

// TestLeaseReadsLinearizableAndLocal: lease reads return the latest
// committed value, bill to the read-lease class, and cross zero
// inter-group links — the whole point of the tier.
func TestLeaseReadsLinearizableAndLocal(t *testing.T) {
	f := newReadFixture(t, 2, 3, 25200, 10*time.Millisecond)
	kv := f.kv(t, 71)

	if _, err := kv.Put(map[string]string{"g0/a": "1", "g1/b": "2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Put(map[string]string{"g0/a": "3"}); err != nil {
		t.Fatal(err)
	}

	before := f.cluster.Stats().InterGroupMessages
	for i := 0; i < 20; i++ {
		v, found, err := kv.GetAt("g0/a", svc.ConsistencyLease)
		if err != nil || !found || v != "3" {
			t.Fatalf("lease read %d: %q,%v,%v (want \"3\")", i, v, found, err)
		}
		v, found, err = kv.GetAt("g1/b", svc.ConsistencyLease)
		if err != nil || !found || v != "2" {
			t.Fatalf("lease read %d: %q,%v,%v (want \"2\")", i, v, found, err)
		}
	}
	if delta := f.cluster.Stats().InterGroupMessages - before; delta != 0 {
		t.Fatalf("lease reads crossed %d inter-group links, want 0", delta)
	}

	ss := f.stats.Snapshot()
	if ss.ByClass["read-lease"].Count != 40 {
		t.Fatalf("read-lease class recorded %d samples, want 40", ss.ByClass["read-lease"].Count)
	}
	if ss.StaleReads != 0 {
		t.Fatalf("%d stale reads on an undisturbed cluster", ss.StaleReads)
	}

	// A write immediately followed by a lease read observes the write:
	// the lease holder IS the write coordinator.
	if _, err := kv.Put(map[string]string{"g0/a": "4"}); err != nil {
		t.Fatal(err)
	}
	if v, _, err := kv.GetAt("g0/a", svc.ConsistencyLease); err != nil || v != "4" {
		t.Fatalf("lease read after write: %q,%v (want \"4\")", v, err)
	}
}

// TestWatermarkReadsAreMonotonic: watermark reads rotate over replicas,
// observe the session's own writes (the MinWatermark barrier parks behind
// replicas), and never move the session's watermark backwards.
func TestWatermarkReadsAreMonotonic(t *testing.T) {
	f := newReadFixture(t, 2, 3, 25300, 10*time.Millisecond)
	kv := f.kv(t, 72)

	for round := 1; round <= 5; round++ {
		want := string(rune('0' + round))
		if _, err := kv.Put(map[string]string{"g1/k": want}); err != nil {
			t.Fatal(err)
		}
		prev := kv.Client.Watermark(1)
		// One read per replica: the rotation visits all three, including
		// the two followers, and each must already reflect the write this
		// session just completed.
		for i := 0; i < 3; i++ {
			v, found, err := kv.GetAt("g1/k", svc.ConsistencyWatermark)
			if err != nil || !found || v != want {
				t.Fatalf("round %d read %d: %q,%v,%v (want %q)", round, i, v, found, err, want)
			}
			if wm := kv.Client.Watermark(1); wm < prev {
				t.Fatalf("session watermark moved backwards: %d -> %d", prev, wm)
			} else {
				prev = wm
			}
		}
	}
	if ss := f.stats.Snapshot(); ss.StaleReads != 0 {
		t.Fatalf("%d stale reads on an undisturbed cluster", ss.StaleReads)
	}
}

// TestCertifyQuorumAndForgery: a write's delivery certificate carries a
// quorum of matching HMAC shares, verifies offline against the shard
// membership, and dies on any forged byte — the negative control.
func TestCertifyQuorumAndForgery(t *testing.T) {
	f := newReadFixture(t, 2, 3, 25400, 10*time.Millisecond)
	kv := f.kv(t, 73)

	if _, err := kv.Put(map[string]string{"g0/c": "v"}); err != nil {
		t.Fatal(err)
	}
	seq := kv.Client.Seq()
	cert, err := kv.Client.Certify(0, seq)
	if err != nil {
		t.Fatal(err)
	}
	members := f.topo.Members(0)
	if len(cert.Shares) < len(members)/2+1 {
		t.Fatalf("certificate carries %d shares, want a quorum of %d", len(cert.Shares), len(members)/2+1)
	}
	ring := f.service.Ring()
	if err := ring.VerifyCertificate(cert, members); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}
	f.stats.RecordCertVerify(true)

	// Forge one MAC byte: verification must fail.
	for p, mac := range cert.Shares {
		forged := svc.Certificate{ID: cert.ID, Group: cert.Group, Order: cert.Order,
			Hash: cert.Hash, Shares: map[types.ProcessID][]byte{}}
		for q, m := range cert.Shares {
			forged.Shares[q] = m
		}
		bad := append([]byte(nil), mac...)
		bad[0] ^= 0x01
		forged.Shares[p] = bad
		if err := ring.VerifyCertificate(forged, members); err == nil {
			t.Fatalf("certificate with a forged share from %v verified", p)
		}
		f.stats.RecordCertVerify(false)
		break
	}

	// Lying about the order or the state hash must also fail, even with
	// genuine MACs.
	lied := cert
	lied.Order++
	if err := ring.VerifyCertificate(lied, members); err == nil {
		t.Fatal("certificate with a rewritten order verified")
	}

	// Certifying a seq outside the dedup window is an error, not a panic.
	if _, err := kv.Client.Certify(0, seq+100); err == nil {
		t.Fatal("certificate issued for a never-executed command")
	}
}

// TestStaleReadRejected is the stale-read injection negative control: a
// lying replica that answers below the session's watermark must be
// rejected (counted, error surfaced internally) and the read must still
// succeed via the next replica.
func TestStaleReadRejected(t *testing.T) {
	f := newReadFixture(t, 1, 3, 25500, 0)

	// The liar: accepts read requests and always answers watermark 0 with
	// a bogus value — a replica "from the past".
	liar, err := tcp.SvcListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = liar.Close() })
	go func() {
		for {
			conn, err := liar.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					v, err := conn.ReadMsg()
					if err != nil {
						return
					}
					if req, ok := v.(svc.ReadReq); ok {
						_ = conn.WriteMsg(types.NoProcess, svc.ReadResp{
							Session: req.Session, Seq: req.Seq, OK: true,
							Result:    append([]byte{1}, []byte("bogus-from-the-past")...),
							Watermark: 0,
						})
					}
				}
			}()
		}
	}()

	// The reader's address book lists the honest replicas first and the
	// liar last, so the watermark rotation reaches it on the fourth read.
	addrs := map[types.GroupID][]string{
		0: append(append([]string(nil), f.service.Addrs()[0]...), liar.Addr().String()),
	}
	client := svc.NewClient(svc.ClientConfig{
		Session: 74, Addrs: addrs, Timeout: 2 * time.Second, Stats: f.stats,
	})
	t.Cleanup(client.Close)
	kv := &svc.KV{Client: client, Route: svc.PrefixRoute(1)}

	if _, err := kv.Put(map[string]string{"g0/k": "truth"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v, found, err := kv.GetAt("g0/k", svc.ConsistencyWatermark)
		if err != nil || !found || v != "truth" {
			t.Fatalf("read %d returned %q,%v,%v — a stale injection leaked through", i, v, found, err)
		}
	}
	if ss := f.stats.Snapshot(); ss.StaleReads == 0 {
		t.Fatal("the rotation visited the lying replica but no stale read was recorded")
	}
}
