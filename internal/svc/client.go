package svc

import (
	"fmt"
	"slices"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// ClientConfig configures one client session.
type ClientConfig struct {
	// Session is this client's unique session identifier (required,
	// non-zero, unique across concurrently live clients — the exactly-once
	// guarantee is per session).
	Session uint64
	// Addrs maps each group to the client-facing addresses of its servers.
	// It may be partial: a server contacted off-shard answers with a
	// Redirect carrying usable addresses.
	Addrs map[types.GroupID][]string
	// Timeout is the first attempt's reply deadline (default 250 ms); it
	// doubles on every retry, capped at 16× — retries resend under the SAME
	// sequence number, so a slow command is never executed twice.
	Timeout time.Duration
	// MaxAttempts bounds send attempts per command (default 8).
	MaxAttempts int
	// DialTimeout bounds each connect (default 1 s).
	DialTimeout time.Duration
	// Stats, when non-nil, receives client-observed latency and retry
	// counters.
	Stats *metrics.Service
}

// Consistency selects how a Client.Read is served.
type Consistency int

const (
	// ConsistencyOrdered routes the read through the ordering layer like a
	// write: linearizable, at full WAN cost.
	ConsistencyOrdered Consistency = iota
	// ConsistencyLease serves the read locally at the shard's lease
	// holder: zero WAN round trips, linearizable as long as writes route
	// through the lease holder (the client's default rank-first routing).
	ConsistencyLease
	// ConsistencyWatermark serves the read at ANY replica of the shard, at
	// that replica's delivery watermark: zero WAN round trips,
	// read-your-writes and monotonic per session (the client carries its
	// watermark into every read), not linearizable across sessions.
	ConsistencyWatermark
)

// String names the consistency mode (flag values of cmd/wankv).
func (c Consistency) String() string {
	switch c {
	case ConsistencyOrdered:
		return "ordered"
	case ConsistencyLease:
		return "lease"
	case ConsistencyWatermark:
		return "watermark"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// ParseConsistency parses a -consistency flag value.
func ParseConsistency(s string) (Consistency, error) {
	switch s {
	case "ordered":
		return ConsistencyOrdered, nil
	case "lease":
		return ConsistencyLease, nil
	case "watermark":
		return ConsistencyWatermark, nil
	default:
		return 0, fmt.Errorf("svc: unknown consistency %q (want ordered, lease, or watermark)", s)
	}
}

// Client is a shard-aware service client: it routes each command to a
// server of one of its destination shards, retries with the same sequence
// number on timeout, and follows redirects. One Client is one session;
// it is NOT safe for concurrent use (sessions are closed-loop by design —
// run one goroutine per Client).
type Client struct {
	cfg        ClientConfig
	seq        uint64
	conn       *tcp.SvcConn
	connAddr   string
	candidates []string // current coordinator candidates, rotated on failure
	next       int

	// Read-tier state. readConns caches one connection per replica
	// address (reads fan out across replicas; the write conn stays
	// dedicated to the ordered path). wm tracks, per shard, the highest
	// watermark this session has observed — from write replies (Order)
	// and read responses — and rides into every ReadReq as the barrier
	// that makes reads read-your-writes and monotonic. groupOf inverts
	// the address book for attributing write replies to shards.
	readConns map[string]*tcp.SvcConn
	readSeq   uint64
	readNext  map[types.GroupID]int // watermark-mode rotation cursor
	wm        map[types.GroupID]uint64
	groupOf   map[string]types.GroupID
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Session == 0 {
		panic("svc: ClientConfig.Session is required and must be non-zero")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	c := &Client{
		cfg:       cfg,
		readConns: make(map[string]*tcp.SvcConn),
		readNext:  make(map[types.GroupID]int),
		wm:        make(map[types.GroupID]uint64),
		groupOf:   make(map[string]types.GroupID),
	}
	for g, addrs := range cfg.Addrs {
		for _, a := range addrs {
			c.groupOf[a] = g
		}
	}
	return c
}

// Session returns the session identifier.
func (c *Client) Session() uint64 { return c.cfg.Session }

// Seq returns the sequence number of the most recent Invoke (0 before the
// first): the handle Certify takes to name a write.
func (c *Client) Seq() uint64 { return c.seq }

// Close drops the connections. The session's dedup state lives on at the
// servers, so a future client reusing the session id and a higher sequence
// continues it.
func (c *Client) Close() {
	c.dropConn()
	for addr, conn := range c.readConns {
		_ = conn.Close()
		delete(c.readConns, addr)
	}
}

// Watermark returns the highest delivery watermark this session has
// observed for shard g (0 before the first write or read there).
func (c *Client) Watermark(g types.GroupID) uint64 { return c.wm[g] }

// Invoke executes op exactly once on the shards in dest and returns the
// coordinator shard's result. It blocks until a reply or until every
// attempt is exhausted; the returned error distinguishes application
// errors (the command executed, the machine said no) from exhaustion (the
// command may or may not have executed — a fresh Invoke with a new
// operation is still safe, but the caller should treat the outcome as
// unknown).
func (c *Client) Invoke(dest types.GroupSet, op []byte) ([]byte, error) {
	if dest.Size() == 0 {
		return nil, fmt.Errorf("svc: empty destination set")
	}
	c.seq++
	req := Request{Session: c.cfg.Session, Seq: c.seq, Dest: dest, Op: op}
	c.candidates = c.routeCandidates(dest)
	c.next = 0
	// A connection kept from an earlier command may point at a server
	// outside this command's shards; re-route up front instead of paying a
	// redirect round trip.
	if c.conn != nil && !slices.Contains(c.candidates, c.connAddr) {
		c.dropConn()
	}
	start := time.Now()
	timeout := c.cfg.Timeout
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.cfg.Stats != nil {
				c.cfg.Stats.RecordRetry()
			}
			if timeout < 16*c.cfg.Timeout {
				timeout *= 2
			}
		}
		conn, err := c.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		// A write deadline keeps a wedged server (accepted, stopped
		// reading, full TCP buffer) from blocking Invoke past the attempt
		// budget — mirror of the server's ReplyTimeout.
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
		if err := conn.WriteMsg(types.NoProcess, req); err != nil {
			lastErr = err
			c.dropConn()
			continue
		}
		res, retry, err := c.awaitReply(conn, req, time.Now().Add(timeout))
		if retry {
			lastErr = err
			continue
		}
		if c.cfg.Stats != nil {
			c.cfg.Stats.RecordOutcome(dest.Size(), time.Since(start), err == nil)
		}
		return res, err
	}
	if c.cfg.Stats != nil {
		c.cfg.Stats.RecordOutcome(dest.Size(), time.Since(start), false)
	}
	return nil, fmt.Errorf("svc: no reply for (session %d, seq %d) after %d attempts: %w",
		req.Session, req.Seq, c.cfg.MaxAttempts, lastErr)
}

// awaitReply reads until the matching reply, a redirect, or the deadline.
// retry=true means resend the same request (possibly elsewhere).
func (c *Client) awaitReply(conn *tcp.SvcConn, req Request, deadline time.Time) (res []byte, retry bool, err error) {
	for {
		_ = conn.SetReadDeadline(deadline)
		v, rerr := conn.ReadMsg()
		if rerr != nil {
			// Timeout or broken connection: drop it so a late reply cannot
			// leak into the next exchange, and retry under the same seq.
			c.dropConn()
			return nil, true, fmt.Errorf("svc: awaiting (session %d, seq %d): %w", req.Session, req.Seq, rerr)
		}
		switch m := v.(type) {
		case Reply:
			if m.Session != req.Session || m.Seq != req.Seq {
				continue // stale reply from an earlier retry round
			}
			if !m.OK {
				return nil, false, fmt.Errorf("svc: %s", m.Err)
			}
			if m.Order > 0 {
				// The coordinator's watermark after our command applied:
				// fold it into the session watermark so a follower read
				// that follows this write is parked until it sees it.
				if g, ok := c.groupOf[c.connAddr]; ok && m.Order > c.wm[g] {
					c.wm[g] = m.Order
				}
			}
			return m.Result, false, nil
		case Redirect:
			if m.Session != req.Session || m.Seq != req.Seq {
				continue
			}
			if len(m.Addrs) > 0 {
				c.candidates, c.next = m.Addrs, 0
			}
			c.dropConn() // re-route to a redirected address
			return nil, true, fmt.Errorf("svc: redirected to %v", m.Groups)
		default:
			continue // unknown frame; ignore
		}
	}
}

// routeCandidates orders coordinator addresses: servers of the destination
// groups first (in GroupSet order), then — when the address map knows none
// of them — every known server, trusting redirects to steer us.
func (c *Client) routeCandidates(dest types.GroupSet) []string {
	var out []string
	for _, g := range dest.Groups() {
		out = append(out, c.cfg.Addrs[g]...)
	}
	if len(out) == 0 {
		for _, addrs := range c.cfg.Addrs {
			out = append(out, addrs...)
		}
	}
	return out
}

// ensureConn returns the live connection, dialing the next candidate if
// needed.
func (c *Client) ensureConn() (*tcp.SvcConn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	if len(c.candidates) == 0 {
		return nil, fmt.Errorf("svc: no server addresses known")
	}
	addr := c.candidates[c.next%len(c.candidates)]
	c.next++
	conn, err := tcp.SvcDial(addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("svc: dial %s: %w", addr, err)
	}
	c.conn, c.connAddr = conn, addr
	return conn, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn, c.connAddr = nil, ""
	}
}

// Read executes the read-only op against shard g under the given
// consistency mode and returns the result.
//
// Lease mode tries the shard's replicas in rank order (rank 0 is the
// expected lease holder); watermark mode rotates across them. Every
// response is checked against the session's tracked watermark: a replica
// answering below it — a restarted replica still catching up, or a
// partitioned leftover — is rejected as stale and the next replica tried.
// When every replica refuses (lease lapsed mid-failover, all behind), the
// read falls back to the ordered path, which is always correct — the fast
// modes are a performance tier, never a correctness gamble. Ordered mode
// goes straight through Invoke.
//
// The latency is recorded under the REQUESTED class ("read-lease",
// "read-watermark", "read-ordered") even when the read fell back, so the
// histograms expose what each tier actually costs end to end.
func (c *Client) Read(g types.GroupID, op []byte, mode Consistency) ([]byte, error) {
	start := time.Now()
	res, err := c.read(g, op, mode)
	if c.cfg.Stats != nil {
		c.cfg.Stats.RecordClassOutcome("read-"+mode.String(), time.Since(start), err == nil)
	}
	return res, err
}

func (c *Client) read(g types.GroupID, op []byte, mode Consistency) ([]byte, error) {
	if mode == ConsistencyOrdered {
		return c.Invoke(types.NewGroupSet(g), op)
	}
	addrs := c.cfg.Addrs[g]
	if len(addrs) == 0 {
		return nil, fmt.Errorf("svc: no known servers for group %v", g)
	}
	wireMode := readModeLease
	rotate := 0
	if mode == ConsistencyWatermark {
		wireMode = readModeWatermark
		rotate = c.readNext[g]
		c.readNext[g]++
	}
	var lastErr error
	for i := 0; i < len(addrs); i++ {
		addr := addrs[(i+rotate)%len(addrs)]
		res, err := c.readAt(addr, g, op, wireMode)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	// Every replica refused or was unreachable: the ordered path is the
	// always-correct fallback (and the latency stays billed to the
	// requested class, where the cost belongs).
	res, err := c.Invoke(types.NewGroupSet(g), op)
	if err != nil {
		return nil, fmt.Errorf("svc: %v read of group %v fell back to ordered and failed: %w (last fast-path error: %v)",
			mode, g, err, lastErr)
	}
	return res, nil
}

// readAt performs one read attempt against one replica.
func (c *Client) readAt(addr string, g types.GroupID, op []byte, wireMode byte) ([]byte, error) {
	conn, err := c.readConn(addr)
	if err != nil {
		return nil, err
	}
	c.readSeq++
	req := ReadReq{Session: c.cfg.Session, Seq: c.readSeq, Group: g,
		Mode: wireMode, MinWatermark: c.wm[g], Op: op}
	deadline := time.Now().Add(c.cfg.Timeout)
	_ = conn.SetWriteDeadline(deadline)
	if err := conn.WriteMsg(types.NoProcess, req); err != nil {
		c.dropReadConn(addr)
		return nil, err
	}
	for {
		_ = conn.SetReadDeadline(deadline)
		v, err := conn.ReadMsg()
		if err != nil {
			c.dropReadConn(addr)
			return nil, err
		}
		resp, ok := v.(ReadResp)
		if !ok || resp.Session != req.Session || resp.Seq != req.Seq {
			continue // stale frame from an abandoned earlier read
		}
		if !resp.OK {
			return nil, fmt.Errorf("svc: read at %s: %s", addr, resp.Err)
		}
		if resp.Watermark < c.wm[g] {
			// The replica answered below what this session has already
			// seen — its barrier cannot be trusted (restarted behind, or
			// fenced leftovers). Reject rather than travel back in time.
			if c.cfg.Stats != nil {
				c.cfg.Stats.RecordStaleRead()
			}
			return nil, fmt.Errorf("svc: stale read at %s: watermark %d below session's %d",
				addr, resp.Watermark, c.wm[g])
		}
		c.wm[g] = resp.Watermark
		return resp.Result, nil
	}
}

// Certify collects a delivery certificate for this session's write seq
// against shard g: it asks every replica for a countersignature and
// returns a certificate carrying a quorum of shares that agree on the
// receipt (message ID, order, state hash). Verify it offline with
// KeyRing.VerifyCertificate. The write must still be inside the session's
// dedup window.
func (c *Client) Certify(g types.GroupID, seq uint64) (Certificate, error) {
	addrs := c.cfg.Addrs[g]
	if len(addrs) == 0 {
		return Certificate{}, fmt.Errorf("svc: no known servers for group %v", g)
	}
	quorum := len(addrs)/2 + 1
	// Bucket shares by receipt: correct replicas agree, so the biggest
	// bucket is the shard's answer; a diverging or lying replica lands in
	// its own bucket and simply fails to contribute.
	type bucket struct {
		cert Certificate
	}
	buckets := make(map[string]*bucket)
	var lastErr error
	for _, addr := range addrs {
		share, err := c.certShareAt(addr, seq)
		if err != nil {
			lastErr = err
			continue
		}
		key := string(receiptBytes(share.ID, share.Group, share.Order, share.Hash))
		b := buckets[key]
		if b == nil {
			b = &bucket{cert: Certificate{
				ID: share.ID, Group: share.Group, Order: share.Order,
				Hash:   append([]byte(nil), share.Hash...),
				Shares: make(map[types.ProcessID][]byte),
			}}
			buckets[key] = b
		}
		b.cert.Shares[share.Proc] = append([]byte(nil), share.MAC...)
		if len(b.cert.Shares) >= quorum {
			return b.cert, nil
		}
	}
	return Certificate{}, fmt.Errorf("svc: no quorum of matching certificate shares for (session %d, seq %d) on group %v (last error: %v)",
		c.cfg.Session, seq, g, lastErr)
}

// certShareAt fetches one replica's countersignature for (session, seq).
func (c *Client) certShareAt(addr string, seq uint64) (CertShare, error) {
	conn, err := c.readConn(addr)
	if err != nil {
		return CertShare{}, err
	}
	req := CertReq{Session: c.cfg.Session, Seq: seq}
	deadline := time.Now().Add(c.cfg.Timeout)
	_ = conn.SetWriteDeadline(deadline)
	if err := conn.WriteMsg(types.NoProcess, req); err != nil {
		c.dropReadConn(addr)
		return CertShare{}, err
	}
	for {
		_ = conn.SetReadDeadline(deadline)
		v, err := conn.ReadMsg()
		if err != nil {
			c.dropReadConn(addr)
			return CertShare{}, err
		}
		share, ok := v.(CertShare)
		if !ok || share.Session != req.Session || share.Seq != req.Seq {
			continue
		}
		if !share.OK {
			return CertShare{}, fmt.Errorf("svc: certificate share at %s: %s", addr, share.Err)
		}
		return share, nil
	}
}

func (c *Client) readConn(addr string) (*tcp.SvcConn, error) {
	if conn := c.readConns[addr]; conn != nil {
		return conn, nil
	}
	conn, err := tcp.SvcDial(addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("svc: dial %s: %w", addr, err)
	}
	c.readConns[addr] = conn
	return conn, nil
}

func (c *Client) dropReadConn(addr string) {
	if conn := c.readConns[addr]; conn != nil {
		_ = conn.Close()
		delete(c.readConns, addr)
	}
}
