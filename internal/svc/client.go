package svc

import (
	"fmt"
	"slices"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/transport/tcp"
	"wanamcast/internal/types"
)

// ClientConfig configures one client session.
type ClientConfig struct {
	// Session is this client's unique session identifier (required,
	// non-zero, unique across concurrently live clients — the exactly-once
	// guarantee is per session).
	Session uint64
	// Addrs maps each group to the client-facing addresses of its servers.
	// It may be partial: a server contacted off-shard answers with a
	// Redirect carrying usable addresses.
	Addrs map[types.GroupID][]string
	// Timeout is the first attempt's reply deadline (default 250 ms); it
	// doubles on every retry, capped at 16× — retries resend under the SAME
	// sequence number, so a slow command is never executed twice.
	Timeout time.Duration
	// MaxAttempts bounds send attempts per command (default 8).
	MaxAttempts int
	// DialTimeout bounds each connect (default 1 s).
	DialTimeout time.Duration
	// Stats, when non-nil, receives client-observed latency and retry
	// counters.
	Stats *metrics.Service
}

// Client is a shard-aware service client: it routes each command to a
// server of one of its destination shards, retries with the same sequence
// number on timeout, and follows redirects. One Client is one session;
// it is NOT safe for concurrent use (sessions are closed-loop by design —
// run one goroutine per Client).
type Client struct {
	cfg        ClientConfig
	seq        uint64
	conn       *tcp.SvcConn
	connAddr   string
	candidates []string // current coordinator candidates, rotated on failure
	next       int
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Session == 0 {
		panic("svc: ClientConfig.Session is required and must be non-zero")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	return &Client{cfg: cfg}
}

// Session returns the session identifier.
func (c *Client) Session() uint64 { return c.cfg.Session }

// Close drops the connection. The session's dedup state lives on at the
// servers, so a future client reusing the session id and a higher sequence
// continues it.
func (c *Client) Close() {
	c.dropConn()
}

// Invoke executes op exactly once on the shards in dest and returns the
// coordinator shard's result. It blocks until a reply or until every
// attempt is exhausted; the returned error distinguishes application
// errors (the command executed, the machine said no) from exhaustion (the
// command may or may not have executed — a fresh Invoke with a new
// operation is still safe, but the caller should treat the outcome as
// unknown).
func (c *Client) Invoke(dest types.GroupSet, op []byte) ([]byte, error) {
	if dest.Size() == 0 {
		return nil, fmt.Errorf("svc: empty destination set")
	}
	c.seq++
	req := Request{Session: c.cfg.Session, Seq: c.seq, Dest: dest, Op: op}
	c.candidates = c.routeCandidates(dest)
	c.next = 0
	// A connection kept from an earlier command may point at a server
	// outside this command's shards; re-route up front instead of paying a
	// redirect round trip.
	if c.conn != nil && !slices.Contains(c.candidates, c.connAddr) {
		c.dropConn()
	}
	start := time.Now()
	timeout := c.cfg.Timeout
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.cfg.Stats != nil {
				c.cfg.Stats.RecordRetry()
			}
			if timeout < 16*c.cfg.Timeout {
				timeout *= 2
			}
		}
		conn, err := c.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		// A write deadline keeps a wedged server (accepted, stopped
		// reading, full TCP buffer) from blocking Invoke past the attempt
		// budget — mirror of the server's ReplyTimeout.
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
		if err := conn.WriteMsg(types.NoProcess, req); err != nil {
			lastErr = err
			c.dropConn()
			continue
		}
		res, retry, err := c.awaitReply(conn, req, time.Now().Add(timeout))
		if retry {
			lastErr = err
			continue
		}
		if c.cfg.Stats != nil {
			c.cfg.Stats.RecordOutcome(dest.Size(), time.Since(start), err == nil)
		}
		return res, err
	}
	if c.cfg.Stats != nil {
		c.cfg.Stats.RecordOutcome(dest.Size(), time.Since(start), false)
	}
	return nil, fmt.Errorf("svc: no reply for (session %d, seq %d) after %d attempts: %w",
		req.Session, req.Seq, c.cfg.MaxAttempts, lastErr)
}

// awaitReply reads until the matching reply, a redirect, or the deadline.
// retry=true means resend the same request (possibly elsewhere).
func (c *Client) awaitReply(conn *tcp.SvcConn, req Request, deadline time.Time) (res []byte, retry bool, err error) {
	for {
		_ = conn.SetReadDeadline(deadline)
		v, rerr := conn.ReadMsg()
		if rerr != nil {
			// Timeout or broken connection: drop it so a late reply cannot
			// leak into the next exchange, and retry under the same seq.
			c.dropConn()
			return nil, true, fmt.Errorf("svc: awaiting (session %d, seq %d): %w", req.Session, req.Seq, rerr)
		}
		switch m := v.(type) {
		case Reply:
			if m.Session != req.Session || m.Seq != req.Seq {
				continue // stale reply from an earlier retry round
			}
			if !m.OK {
				return nil, false, fmt.Errorf("svc: %s", m.Err)
			}
			return m.Result, false, nil
		case Redirect:
			if m.Session != req.Session || m.Seq != req.Seq {
				continue
			}
			if len(m.Addrs) > 0 {
				c.candidates, c.next = m.Addrs, 0
			}
			c.dropConn() // re-route to a redirected address
			return nil, true, fmt.Errorf("svc: redirected to %v", m.Groups)
		default:
			continue // unknown frame; ignore
		}
	}
}

// routeCandidates orders coordinator addresses: servers of the destination
// groups first (in GroupSet order), then — when the address map knows none
// of them — every known server, trusting redirects to steer us.
func (c *Client) routeCandidates(dest types.GroupSet) []string {
	var out []string
	for _, g := range dest.Groups() {
		out = append(out, c.cfg.Addrs[g]...)
	}
	if len(out) == 0 {
		for _, addrs := range c.cfg.Addrs {
			out = append(out, addrs...)
		}
	}
	return out
}

// ensureConn returns the live connection, dialing the next candidate if
// needed.
func (c *Client) ensureConn() (*tcp.SvcConn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	if len(c.candidates) == 0 {
		return nil, fmt.Errorf("svc: no server addresses known")
	}
	addr := c.candidates[c.next%len(c.candidates)]
	c.next++
	conn, err := tcp.SvcDial(addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("svc: dial %s: %w", addr, err)
	}
	c.conn, c.connAddr = conn, addr
	return conn, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn, c.connAddr = nil, ""
	}
}
