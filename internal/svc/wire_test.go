package svc

import (
	"reflect"
	"testing"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// TestServiceWireRoundTrip: every service message survives the wire codec
// byte-exactly, including empty corner cases.
func TestServiceWireRoundTrip(t *testing.T) {
	values := map[string]any{
		"command": Command{Session: 7, Seq: 3, Op: []byte{1, 2, 3}},
		"command-empty-op": Command{Session: 1, Seq: 1,
			Op: []byte{9}},
		"request": Request{Session: 9, Seq: 12, Dest: types.NewGroupSet(0, 2),
			Op: []byte("put")},
		"reply-ok":  Reply{Session: 9, Seq: 12, OK: true, Result: []byte("r")},
		"reply-err": Reply{Session: 9, Seq: 12, Err: "stale sequence 3"},
		"redirect": Redirect{Session: 4, Seq: 1, Groups: types.NewGroupSet(1),
			Addrs: []string{"127.0.0.1:9", "127.0.0.1:10"}},
		"redirect-no-addrs": Redirect{Session: 4, Seq: 2, Groups: types.NewGroupSet(0)},
		"reply-ordered": Reply{Session: 9, Seq: 13, OK: true, Result: []byte("r"),
			Order: 512},
		"read-req": ReadReq{Session: 9, Seq: 4, Group: 2, Mode: readModeLease,
			MinWatermark: 88, Op: []byte{2, 1}},
		"read-req-watermark": ReadReq{Session: 1, Seq: 1, Group: 0,
			Mode: readModeWatermark, Op: []byte{2}},
		"read-resp-ok": ReadResp{Session: 9, Seq: 4, OK: true,
			Result: []byte{1, 0, 3}, Watermark: 91},
		"read-resp-err": ReadResp{Session: 9, Seq: 5, Err: "no lease",
			Watermark: 91},
		"cert-req": CertReq{Session: 9, Seq: 12},
		"cert-share-ok": CertShare{Session: 9, Seq: 12, OK: true,
			ID: types.MessageID{Origin: 4, Seq: 7}, Group: 1, Order: 33,
			Hash: []byte("hhhh"), Proc: 5, MAC: []byte("mmmm")},
		"cert-share-err": CertShare{Session: 9, Seq: 13,
			Err: "not in the dedup window"},
	}
	for name, v := range values {
		buf := wire.AppendValue(nil, v)
		got, rest, err := wire.DecodeValue(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", name, len(rest))
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("%s: round trip = %#v, want %#v", name, got, v)
		}
	}
}

// TestServiceWireCorrupt: truncations of every encoding decode to errors,
// never panics (the transport-level contract).
func TestServiceWireCorrupt(t *testing.T) {
	values := []any{
		Command{Session: 7, Seq: 3, Op: []byte{1, 2, 3}},
		Request{Session: 9, Seq: 12, Dest: types.NewGroupSet(0, 2), Op: []byte("put")},
		Reply{Session: 9, Seq: 12, OK: true, Result: []byte("r"), Order: 300},
		Redirect{Session: 4, Seq: 1, Groups: types.NewGroupSet(1), Addrs: []string{"a", "b"}},
		ReadReq{Session: 9, Seq: 4, Group: 2, Mode: readModeLease, MinWatermark: 88, Op: []byte{2, 1}},
		ReadResp{Session: 9, Seq: 4, OK: true, Result: []byte{1, 0, 3}, Watermark: 300},
		CertReq{Session: 9, Seq: 300},
		CertShare{Session: 9, Seq: 12, OK: true, ID: types.MessageID{Origin: 4, Seq: 7},
			Group: 1, Order: 300, Hash: []byte("hhhh"), Proc: 5, MAC: []byte("mmmm")},
	}
	for _, v := range values {
		full := wire.AppendValue(nil, v)
		for cut := 0; cut < len(full); cut++ {
			// Every strict prefix must decode to an error — each type either
			// ends with a length-delimited field or with a multi-byte
			// uvarint (the 300s above), so no prefix is a valid complete
			// encoding — and, per the transport contract, must never panic.
			if _, _, err := wire.DecodeValue(full[:cut]); err == nil {
				t.Errorf("%T truncated to %d/%d bytes decoded without error", v, cut, len(full))
			}
		}
	}
}

// TestPrefixRoute: "g<N>/..." keys land on shard N mod |Γ|; everything
// else falls back to first-byte hashing, and no input panics.
func TestPrefixRoute(t *testing.T) {
	route := PrefixRoute(3)
	cases := map[string]types.GroupID{
		"g0/x":    0,
		"g1/x":    1,
		"g2/x":    2,
		"g4/x":    1, // mod 3
		"g12/k":   0, // 12 mod 3
		"gx/x":    'g' % 3,
		"plain":   'p' % 3,
		"g/slash": 'g' % 3,
		"":        0,
	}
	for key, want := range cases {
		if got := route(key); got != want {
			t.Errorf("route(%q) = %v, want %v", key, got, want)
		}
	}
}

// TestKVMachineApplyAndSnapshot: puts route to the owning shard only, gets
// read back, snapshots are deterministic.
func TestKVMachineApplyAndSnapshot(t *testing.T) {
	route := PrefixRoute(2)
	m0 := NewKVMachine(0, route)
	m1 := NewKVMachine(1, route)
	op := EncodePut(map[string]string{"g0/a": "1", "g1/b": "2"})
	res0, err := m0.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := m1.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := DecodePutResult(res0); n != 1 {
		t.Fatalf("shard 0 wrote %d keys, want 1", n)
	}
	if n, _ := DecodePutResult(res1); n != 1 {
		t.Fatalf("shard 1 wrote %d keys, want 1", n)
	}
	if v, ok := m0.Get("g0/a"); !ok || v != "1" {
		t.Fatalf("shard 0 g0/a = %q,%v", v, ok)
	}
	if _, ok := m0.Get("g1/b"); ok {
		t.Fatal("shard 0 stored a key it does not own")
	}
	res, err := m0.Apply(EncodeGet("g0/a"))
	if err != nil {
		t.Fatal(err)
	}
	v, found, err := DecodeGetResult(res)
	if err != nil || !found || v != "1" {
		t.Fatalf("get result = %q,%v,%v", v, found, err)
	}
	twin := NewKVMachine(0, route)
	if _, err := twin.Apply(op); err != nil {
		t.Fatal(err)
	}
	s1, _ := m0.Snapshot()
	// m0 also applied a get; snapshots cover data only, so they match.
	s2, _ := twin.Snapshot()
	if string(s1) != string(s2) {
		t.Fatal("snapshots of identical shard state differ")
	}
	if m0.Applied() != 1 || m1.Applied() != 1 {
		t.Fatalf("applied counts %d,%d, want 1,1 (gets are not mutations)", m0.Applied(), m1.Applied())
	}
}

// TestKVMachineCorruptOps: malformed command bytes error out without
// mutating state.
func TestKVMachineCorruptOps(t *testing.T) {
	m := NewKVMachine(0, PrefixRoute(1))
	for _, op := range [][]byte{nil, {}, {99}, {1, 200}, {2}} {
		if _, err := m.Apply(op); err == nil {
			t.Errorf("Apply(%v) accepted a corrupt op", op)
		}
	}
	if m.Applied() != 0 || m.Len() != 0 {
		t.Fatal("corrupt ops mutated the machine")
	}
}
