// Crash recovery for the service layer: a replica's durable section is
// its state machine snapshot plus the replicated session-dedup tables —
// exactly the state that is a deterministic function of the A-Delivery
// sequence, captured at the same instant as the ordering layer's snapshot
// (both run between events on the replica's loop), so log replay
// re-applies precisely the commands the cut excludes.
package svc

import (
	"fmt"
	"sort"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// SaveSnapshot encodes the replica's durable state: machine snapshot,
// delivery tick, and every session's dedup window. Pending replies are
// connection-bound and deliberately excluded — a restarted replica has no
// clients yet, and their commands' results live in the session windows.
func (s *Server) SaveSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	machine, err := s.cfg.Machine.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("svc: machine snapshot: %w", err)
	}
	buf := wire.AppendBytes(nil, machine)
	buf = wire.AppendUvarint(buf, s.tick)
	buf = wire.AppendBytes(buf, s.stateHash[:])
	ids := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = wire.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		sess := s.sessions[id]
		buf = wire.AppendUvarint(buf, id)
		buf = wire.AppendUvarint(buf, sess.maxSeq)
		buf = wire.AppendUvarint(buf, sess.touched)
		seqs := make([]uint64, 0, len(sess.applied))
		for q := range sess.applied {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		buf = wire.AppendUvarint(buf, uint64(len(seqs)))
		for _, q := range seqs {
			ac := sess.applied[q]
			buf = wire.AppendUvarint(buf, q)
			buf = wire.AppendBytes(buf, ac.result)
			buf = wire.AppendString(buf, ac.err)
			buf = wire.AppendUvarint(buf, ac.order)
			buf = ac.id.AppendTo(buf)
			buf = wire.AppendBytes(buf, ac.hash[:])
		}
	}
	return buf, nil
}

// RestoreSnapshot replaces the replica's durable state with a
// SaveSnapshot-ted one. Call before the replica sees any delivery.
func (s *Server) RestoreSnapshot(data []byte) error {
	machine, data, err := wire.Bytes(data)
	if err != nil {
		return err
	}
	if err := s.cfg.Machine.Restore(machine); err != nil {
		return fmt.Errorf("svc: machine restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tick, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	s.wm.Store(s.tick)
	var hash []byte
	if hash, data, err = wire.Bytes(data); err != nil {
		return err
	}
	if len(hash) != len(s.stateHash) {
		return fmt.Errorf("svc: snapshot state hash is %d bytes, want %d", len(hash), len(s.stateHash))
	}
	copy(s.stateHash[:], hash)
	var n int
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	s.sessions = make(map[uint64]*session, n)
	for i := 0; i < n; i++ {
		var id uint64
		if id, data, err = wire.Uvarint(data); err != nil {
			return err
		}
		sess := &session{applied: make(map[uint64]appliedCmd)}
		if sess.maxSeq, data, err = wire.Uvarint(data); err != nil {
			return err
		}
		if sess.touched, data, err = wire.Uvarint(data); err != nil {
			return err
		}
		var m int
		if m, data, err = wire.SliceLen(data); err != nil {
			return err
		}
		for j := 0; j < m; j++ {
			var q uint64
			if q, data, err = wire.Uvarint(data); err != nil {
				return err
			}
			var ac appliedCmd
			var res []byte
			if res, data, err = wire.Bytes(data); err != nil {
				return err
			}
			ac.result = append([]byte(nil), res...)
			if ac.err, data, err = wire.String(data); err != nil {
				return err
			}
			if ac.order, data, err = wire.Uvarint(data); err != nil {
				return err
			}
			if ac.id, data, err = types.DecodeMessageID(data); err != nil {
				return err
			}
			var h []byte
			if h, data, err = wire.Bytes(data); err != nil {
				return err
			}
			if len(h) != len(ac.hash) {
				return fmt.Errorf("svc: snapshot receipt hash is %d bytes, want %d", len(h), len(ac.hash))
			}
			copy(ac.hash[:], h)
			sess.applied[q] = ac
		}
		s.sessions[id] = sess
	}
	return nil
}

// DurableCluster is the optional restart surface of a Cluster; the root
// package's LiveCluster implements it when configured with a durable
// store.
type DurableCluster interface {
	Cluster
	// Restart recovers crashed process p from its durable store and
	// catches it up from live peers.
	Restart(p types.ProcessID) error
	// RegisterSnapshot adds (or replaces, by name) a snapshot section for
	// process p.
	RegisterSnapshot(p types.ProcessID, name string,
		save func() ([]byte, error), restore func(data []byte) error)
	// SetDeliverAt replaces ALL of p's delivery hooks with fn.
	SetDeliverAt(p types.ProcessID, fn func(id types.MessageID, payload any))
}

// snapshotSection is the service layer's section name in cluster
// snapshots.
const snapshotSection = "svc"
