package svc

import (
	"fmt"
	"sync"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/metrics"
	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// Cluster is what the service layer needs from the ordering layer; the
// root package's LiveCluster satisfies it.
type Cluster interface {
	// Multicast genuinely multicasts payload from process from to groups
	// (Algorithm A1) and returns the message's ID.
	Multicast(from types.ProcessID, payload any, groups ...types.GroupID) types.MessageID
	// OnDeliverAt installs a per-process delivery hook, invoked in p's
	// A-Delivery order.
	OnDeliverAt(p types.ProcessID, fn func(id types.MessageID, payload any))
}

// ServiceConfig configures ServeCluster.
type ServiceConfig struct {
	// BasePort: process p's client-facing listener binds 127.0.0.1:BasePort+p.
	// 0 binds ephemeral ports (tests); read them back with Addrs.
	BasePort int
	// NewMachine builds the state machine for replica p of group g
	// (required).
	NewMachine func(p types.ProcessID, g types.GroupID) StateMachine
	// Stats, when non-nil, receives the servers' service-level counters.
	Stats *metrics.Service
	// ReplyTimeout bounds reply writes (see ServerConfig).
	ReplyTimeout time.Duration
	// MaxSessions bounds each replica's dedup table (see ServerConfig).
	MaxSessions int
	// LeaseFor, when non-nil, resolves replica p's leader lease (the live
	// runtime's ReadLease). Nil disables lease reads on every replica.
	LeaseFor func(p types.ProcessID) *fd.Lease
	// CertSecret, when non-empty, enables delivery certificates: every
	// server signs with a key derived from it, and clients verify with
	// NewKeyRing(CertSecret).
	CertSecret []byte
	// ReadTimeout bounds each read's watermark wait (see ServerConfig).
	ReadTimeout time.Duration
	// Tracer, when non-nil, records each server's request lifecycle spans
	// (submit, enqueue, reply) into the cluster-wide lifecycle tracer.
	Tracer *trace.Tracer
}

// Service is one Server per cluster process plus the address book that
// clients and redirects use.
type Service struct {
	topo    *types.Topology
	cfg     ServiceConfig
	cluster Cluster

	ring *KeyRing // nil unless CertSecret configured

	mu       sync.Mutex
	servers  []*Server
	machines []StateMachine
	addrs    map[types.GroupID][]string
}

// Ring returns the certificate key ring (nil when certificates are
// disabled); clients verify certificates against it.
func (s *Service) Ring() *KeyRing { return s.ring }

// ServeCluster starts one client-facing Server per process of the cluster,
// wired to the cluster's genuine multicast and delivery hooks. Call after
// the cluster has started, and Stop the Service BEFORE stopping the
// cluster: a request in flight submits through the cluster's event loops,
// and tearing those down first would strand it.
//
// On a durable cluster (one implementing DurableCluster) every replica's
// state machine and session tables also register as a snapshot section, so
// cluster snapshots capture them and RestartReplica recovers them.
func ServeCluster(c Cluster, topo *types.Topology, cfg ServiceConfig) (*Service, error) {
	if cfg.NewMachine == nil {
		panic("svc: ServiceConfig.NewMachine is required")
	}
	svc := &Service{
		topo:     topo,
		cfg:      cfg,
		cluster:  c,
		servers:  make([]*Server, topo.N()),
		machines: make([]StateMachine, topo.N()),
		addrs:    make(map[types.GroupID][]string, topo.NumGroups()),
	}
	if len(cfg.CertSecret) > 0 {
		svc.ring = NewKeyRing(cfg.CertSecret)
	}
	// Phase 1: bind every listener (learning ephemeral ports) and fill the
	// address book — accepting no connections and registering no delivery
	// hooks yet. A Listen failure therefore aborts with the cluster
	// untouched (no orphaned servers wired into its delivery path), and
	// the GroupAddrs closures can never read svc.addrs while it is still
	// being built, even on predictable fixed ports.
	for _, p := range topo.AllProcesses() {
		g := topo.GroupOf(p)
		addr := "127.0.0.1:0"
		if cfg.BasePort != 0 {
			addr = fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+int(p))
		}
		srv, machine := svc.buildServer(p, g, addr)
		if err := srv.Listen(); err != nil {
			svc.Stop()
			return nil, err
		}
		svc.servers[p] = srv
		svc.machines[p] = machine
		svc.addrs[g] = append(svc.addrs[g], srv.Addr())
	}
	// Phase 2: every listener is bound and the address book is complete;
	// wire the delivery hooks and snapshot sections, and start accepting.
	// (A stopped server's Deliver is a no-op, so a Service that is later
	// Stopped goes inert even though hooks cannot be unregistered.)
	dc, durable := c.(DurableCluster)
	for _, p := range topo.AllProcesses() {
		c.OnDeliverAt(p, svc.servers[p].Deliver)
		if durable {
			srv := svc.servers[p]
			dc.RegisterSnapshot(p, snapshotSection, srv.SaveSnapshot, srv.RestoreSnapshot)
		}
	}
	for _, srv := range svc.servers {
		srv.Serve()
	}
	return svc, nil
}

// buildServer constructs (without binding) replica p's server and machine.
func (s *Service) buildServer(p types.ProcessID, g types.GroupID, addr string) (*Server, StateMachine) {
	machine := s.cfg.NewMachine(p, g)
	sc := ServerConfig{
		Self:    p,
		Group:   g,
		Groups:  s.topo.NumGroups(),
		Addr:    addr,
		Machine: machine,
		Submit: func(cmd Command, dest types.GroupSet) types.MessageID {
			return s.cluster.Multicast(p, cmd, dest.Groups()...)
		},
		GroupAddrs:   func(g types.GroupID) []string { return s.groupAddrs(g) },
		Stats:        s.cfg.Stats,
		ReplyTimeout: s.cfg.ReplyTimeout,
		MaxSessions:  s.cfg.MaxSessions,
		Ring:         s.ring,
		ReadTimeout:  s.cfg.ReadTimeout,
		Tracer:       s.cfg.Tracer,
	}
	if s.cfg.LeaseFor != nil {
		sc.Lease = s.cfg.LeaseFor(p)
	}
	srv := NewServer(sc)
	return srv, machine
}

// groupAddrs reads the (mutable across restarts) address book.
func (s *Service) groupAddrs(g types.GroupID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs[g]...)
}

// RestartReplica recovers crashed replica p end to end: the old server
// (with its listener and connections) is stopped, a fresh server and
// state machine are built and wired as p's ONLY delivery hook and
// snapshot section — nothing of the dead incarnation stays reachable —
// and the cluster's Restart replays p's durable state (restoring the
// machine and session tables) and catches up from live peers. The new
// server reuses the old incarnation's client-facing address.
func (s *Service) RestartReplica(p types.ProcessID) error {
	dc, ok := s.cluster.(DurableCluster)
	if !ok {
		return fmt.Errorf("svc: cluster does not support restart")
	}
	s.mu.Lock()
	old := s.servers[p]
	s.mu.Unlock()
	if old == nil {
		return fmt.Errorf("svc: no server for %v", p)
	}
	g := s.topo.GroupOf(p)
	oldAddr := old.Addr()
	old.Stop() // frees the listen address for the new incarnation
	srv, machine := s.buildServer(p, g, oldAddr)
	if err := srv.Listen(); err != nil {
		return err
	}
	// Wire the new incarnation BEFORE recovery so replayed deliveries
	// rebuild its state; replace (not append) the hook and section so the
	// dead incarnation leaks nothing into the delivery path.
	dc.RegisterSnapshot(p, snapshotSection, srv.SaveSnapshot, srv.RestoreSnapshot)
	dc.SetDeliverAt(p, srv.Deliver)
	if err := dc.Restart(p); err != nil {
		srv.Stop()
		return err
	}
	srv.Serve()
	s.mu.Lock()
	s.servers[p] = srv
	s.machines[p] = machine
	for i, a := range s.addrs[g] {
		if a == oldAddr {
			s.addrs[g][i] = srv.Addr()
		}
	}
	s.mu.Unlock()
	return nil
}

// Addrs returns a copy of the client-facing address book: group → its
// servers (the book can change across replica restarts).
func (s *Service) Addrs() map[types.GroupID][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.GroupID][]string, len(s.addrs))
	for g, as := range s.addrs {
		out[g] = append([]string(nil), as...)
	}
	return out
}

// Machine returns replica p's state machine (test/diagnostic access).
func (s *Service) Machine(p types.ProcessID) StateMachine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.machines[p]
}

// Server returns replica p's server.
func (s *Service) Server(p types.ProcessID) *Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.servers[p]
}

// Stop stops every server. The underlying cluster keeps running.
func (s *Service) Stop() {
	s.mu.Lock()
	servers := append([]*Server(nil), s.servers...)
	s.mu.Unlock()
	for _, srv := range servers {
		if srv != nil {
			srv.Stop()
		}
	}
}
