package svc

import (
	"fmt"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/types"
)

// Cluster is what the service layer needs from the ordering layer; the
// root package's LiveCluster satisfies it.
type Cluster interface {
	// Multicast genuinely multicasts payload from process from to groups
	// (Algorithm A1) and returns the message's ID.
	Multicast(from types.ProcessID, payload any, groups ...types.GroupID) types.MessageID
	// OnDeliverAt installs a per-process delivery hook, invoked in p's
	// A-Delivery order.
	OnDeliverAt(p types.ProcessID, fn func(id types.MessageID, payload any))
}

// ServiceConfig configures ServeCluster.
type ServiceConfig struct {
	// BasePort: process p's client-facing listener binds 127.0.0.1:BasePort+p.
	// 0 binds ephemeral ports (tests); read them back with Addrs.
	BasePort int
	// NewMachine builds the state machine for replica p of group g
	// (required).
	NewMachine func(p types.ProcessID, g types.GroupID) StateMachine
	// Stats, when non-nil, receives the servers' service-level counters.
	Stats *metrics.Service
	// ReplyTimeout bounds reply writes (see ServerConfig).
	ReplyTimeout time.Duration
	// MaxSessions bounds each replica's dedup table (see ServerConfig).
	MaxSessions int
}

// Service is one Server per cluster process plus the address book that
// clients and redirects use.
type Service struct {
	topo     *types.Topology
	servers  []*Server
	machines []StateMachine
	addrs    map[types.GroupID][]string
}

// ServeCluster starts one client-facing Server per process of the cluster,
// wired to the cluster's genuine multicast and delivery hooks. Call after
// the cluster has started, and Stop the Service BEFORE stopping the
// cluster: a request in flight submits through the cluster's event loops,
// and tearing those down first would strand it.
func ServeCluster(c Cluster, topo *types.Topology, cfg ServiceConfig) (*Service, error) {
	if cfg.NewMachine == nil {
		panic("svc: ServiceConfig.NewMachine is required")
	}
	svc := &Service{
		topo:     topo,
		servers:  make([]*Server, topo.N()),
		machines: make([]StateMachine, topo.N()),
		addrs:    make(map[types.GroupID][]string, topo.NumGroups()),
	}
	// Phase 1: bind every listener (learning ephemeral ports) and fill the
	// address book — accepting no connections and registering no delivery
	// hooks yet. A Listen failure therefore aborts with the cluster
	// untouched (no orphaned servers wired into its delivery path), and
	// the GroupAddrs closures can never read svc.addrs while it is still
	// being built, even on predictable fixed ports.
	for _, p := range topo.AllProcesses() {
		p := p
		g := topo.GroupOf(p)
		addr := "127.0.0.1:0"
		if cfg.BasePort != 0 {
			addr = fmt.Sprintf("127.0.0.1:%d", cfg.BasePort+int(p))
		}
		machine := cfg.NewMachine(p, g)
		srv := NewServer(ServerConfig{
			Self:    p,
			Group:   g,
			Groups:  topo.NumGroups(),
			Addr:    addr,
			Machine: machine,
			Submit: func(cmd Command, dest types.GroupSet) types.MessageID {
				return c.Multicast(p, cmd, dest.Groups()...)
			},
			// Read-only by the time Serve (phase 2) admits any client.
			GroupAddrs:   func(g types.GroupID) []string { return svc.addrs[g] },
			Stats:        cfg.Stats,
			ReplyTimeout: cfg.ReplyTimeout,
			MaxSessions:  cfg.MaxSessions,
		})
		if err := srv.Listen(); err != nil {
			svc.Stop()
			return nil, err
		}
		svc.servers[p] = srv
		svc.machines[p] = machine
		svc.addrs[g] = append(svc.addrs[g], srv.Addr())
	}
	// Phase 2: every listener is bound and the address book is complete;
	// wire the delivery hooks and start accepting. (A stopped server's
	// Deliver is a no-op, so a Service that is later Stopped goes inert
	// even though hooks cannot be unregistered.)
	for _, p := range topo.AllProcesses() {
		c.OnDeliverAt(p, svc.servers[p].Deliver)
	}
	for _, srv := range svc.servers {
		srv.Serve()
	}
	return svc, nil
}

// Addrs returns the client-facing address book: group → its servers.
// Callers must not modify it.
func (s *Service) Addrs() map[types.GroupID][]string { return s.addrs }

// Machine returns replica p's state machine (test/diagnostic access).
func (s *Service) Machine(p types.ProcessID) StateMachine { return s.machines[p] }

// Server returns replica p's server.
func (s *Service) Server(p types.ProcessID) *Server { return s.servers[p] }

// Stop stops every server. The underlying cluster keeps running.
func (s *Service) Stop() {
	for _, srv := range s.servers {
		if srv != nil {
			srv.Stop()
		}
	}
}
