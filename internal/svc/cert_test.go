package svc

import (
	"bytes"
	"strings"
	"testing"

	"wanamcast/internal/types"
)

func testReceipt() (types.MessageID, types.GroupID, uint64, []byte) {
	return types.MessageID{Origin: 3, Seq: 41}, types.GroupID(1), uint64(17), []byte("statehash-32-bytes-aaaaaaaaaaaaa")
}

// TestKeyRingSignVerify: per-process keys are distinct, MACs verify only
// under the signing process's key and only over the signed bytes.
func TestKeyRingSignVerify(t *testing.T) {
	ring := NewKeyRing([]byte("secret"))
	id, g, order, hash := testReceipt()
	msg := receiptBytes(id, g, order, hash)

	m2 := ring.Sign(2, msg)
	m3 := ring.Sign(3, msg)
	if bytes.Equal(m2, m3) {
		t.Fatal("distinct processes produced identical MACs — keys are not per-process")
	}
	if !ring.Verify(2, msg, m2) || !ring.Verify(3, msg, m3) {
		t.Fatal("valid MAC failed to verify")
	}
	if ring.Verify(3, msg, m2) {
		t.Fatal("process 3 accepted process 2's MAC")
	}
	other := receiptBytes(id, g, order+1, hash)
	if ring.Verify(2, other, m2) {
		t.Fatal("MAC verified over different receipt bytes")
	}
	// A different deployment secret must not cross-verify.
	if NewKeyRing([]byte("other-secret")).Verify(2, msg, m2) {
		t.Fatal("MAC verified under a different deployment secret")
	}
}

// TestKeyRingForgedMAC is the bit-flip negative control: flipping ANY bit
// of a MAC (or of the receipt it covers) must fail verification.
func TestKeyRingForgedMAC(t *testing.T) {
	ring := NewKeyRing([]byte("secret"))
	id, g, order, hash := testReceipt()
	msg := receiptBytes(id, g, order, hash)
	mac := ring.Sign(5, msg)
	for i := range mac {
		forged := append([]byte(nil), mac...)
		forged[i] ^= 0x01
		if ring.Verify(5, msg, forged) {
			t.Fatalf("forged MAC (bit flip at byte %d) verified", i)
		}
	}
	for i := range msg {
		tampered := append([]byte(nil), msg...)
		tampered[i] ^= 0x01
		if ring.Verify(5, tampered, mac) {
			t.Fatalf("MAC verified over tampered receipt (bit flip at byte %d)", i)
		}
	}
}

// TestVerifyCertificate: quorum, membership, and MAC validity are each
// enforced, and tampering with any attested field kills the certificate.
func TestVerifyCertificate(t *testing.T) {
	ring := NewKeyRing([]byte("secret"))
	members := []types.ProcessID{3, 4, 5}
	id, g, order, hash := testReceipt()
	msg := receiptBytes(id, g, order, hash)
	cert := Certificate{
		ID: id, Group: g, Order: order,
		Hash:   append([]byte(nil), hash...),
		Shares: map[types.ProcessID][]byte{3: ring.Sign(3, msg), 5: ring.Sign(5, msg)},
	}
	if err := ring.VerifyCertificate(cert, members); err != nil {
		t.Fatalf("2-of-3 certificate rejected: %v", err)
	}

	under := cert
	under.Shares = map[types.ProcessID][]byte{3: ring.Sign(3, msg)}
	if err := ring.VerifyCertificate(under, members); err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("1-of-3 certificate accepted (err=%v)", err)
	}

	outsider := cert
	outsider.Shares = map[types.ProcessID][]byte{3: ring.Sign(3, msg), 9: ring.Sign(9, msg)}
	if err := ring.VerifyCertificate(outsider, members); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("certificate with a non-member share accepted (err=%v)", err)
	}

	forged := cert
	badMAC := append([]byte(nil), cert.Shares[5]...)
	badMAC[0] ^= 0x80
	forged.Shares = map[types.ProcessID][]byte{3: cert.Shares[3], 5: badMAC}
	if err := ring.VerifyCertificate(forged, members); err == nil || !strings.Contains(err.Error(), "invalid MAC") {
		t.Fatalf("certificate with a forged MAC accepted (err=%v)", err)
	}

	// Equivocation: genuine MACs cannot be replayed under a different
	// claimed order or state hash.
	lied := cert
	lied.Order = order + 1
	if err := ring.VerifyCertificate(lied, members); err == nil {
		t.Fatal("certificate with a rewritten order accepted")
	}
	lied = cert
	lied.Hash = append([]byte(nil), hash...)
	lied.Hash[3] ^= 0x01
	if err := ring.VerifyCertificate(lied, members); err == nil {
		t.Fatal("certificate with a rewritten state hash accepted")
	}
}

// BenchmarkVerifyCertificate prices the offline audit path: one 2-of-3
// certificate check, membership and quorum included.
func BenchmarkVerifyCertificate(b *testing.B) {
	ring := NewKeyRing([]byte("secret"))
	members := []types.ProcessID{3, 4, 5}
	id, g, order, hash := testReceipt()
	msg := receiptBytes(id, g, order, hash)
	cert := Certificate{
		ID: id, Group: g, Order: order,
		Hash:   append([]byte(nil), hash...),
		Shares: map[types.ProcessID][]byte{3: ring.Sign(3, msg), 5: ring.Sign(5, msg)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ring.VerifyCertificate(cert, members); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNewKeyRingRejectsEmptySecret: an empty deployment secret would make
// every key derivable by anyone; constructing such a ring is a wiring bug.
func TestNewKeyRingRejectsEmptySecret(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKeyRing(nil) did not panic")
		}
	}()
	NewKeyRing(nil)
}
