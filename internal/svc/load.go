package svc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/types"
	"wanamcast/internal/workload"
)

// LoadSpec describes a closed-loop multi-client KV workload: Clients
// concurrent sessions, each issuing Ops puts back to back (the next op
// starts when the previous reply lands), destination fan-out drawn from
// Mix.
type LoadSpec struct {
	Clients int
	Ops     int
	// Mix is the destination-shard distribution (nil = the §1
	// partial-replication default: 60% one shard, 30% two, 10% all).
	Mix []workload.MixEntry
	// Timeout is each client's first-attempt reply deadline (default 1s).
	Timeout time.Duration
	// KeysPerShard sizes each client's per-shard key space (default 16).
	KeysPerShard int
	// SessionBase offsets the session IDs (client i uses SessionBase+i+1;
	// default 0). Set it to run a second load against a cluster whose
	// replicas still hold the first load's dedup windows.
	SessionBase uint64
	Seed        int64
	// ReadFraction in [0, 1] is the share of ops that are reads of the
	// client's home shard (default 0: the historical all-write load).
	ReadFraction float64
	// Consistency selects how reads are served (ordered, lease, or
	// watermark); ignored when ReadFraction is 0.
	Consistency Consistency
}

// LoadResult aggregates one load run.
type LoadResult struct {
	Ops     int // replies received (success)
	Errors  int // ops that exhausted retries or failed
	Reads   int // successful ops that were reads
	Writes  int // successful ops that were writes
	Elapsed time.Duration
	Stats   metrics.ServiceStats
}

// RunKVLoad drives spec against the service at addrs and blocks until
// every client finishes. Client i uses session i+1; sessions survive in
// the replicas' dedup tables, so reusing a seed against a live cluster
// requires fresh session numbers — RunKVLoad is meant for one run per
// cluster. The returned stats fold together the client-observed latencies
// and whatever server counters the caller wired into stats (pass the same
// *metrics.Service to ServeCluster to see both sides in one snapshot).
func RunKVLoad(topo *types.Topology, addrs map[types.GroupID][]string, spec LoadSpec, stats *metrics.Service) LoadResult {
	if spec.Clients <= 0 || spec.Ops <= 0 {
		panic(fmt.Sprintf("svc: invalid load spec %+v", spec))
	}
	if spec.Timeout <= 0 {
		spec.Timeout = time.Second
	}
	if spec.KeysPerShard <= 0 {
		spec.KeysPerShard = 16
	}
	if stats == nil {
		stats = &metrics.Service{}
	}
	plans := workload.ClientPlans(topo, workload.ClientSpec{
		Clients: spec.Clients, Ops: spec.Ops, Mix: spec.Mix, Seed: spec.Seed,
		ReadFraction: spec.ReadFraction,
	})
	route := PrefixRoute(topo.NumGroups())

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		ok     int
		failed int
		reads  int
		writes int
	)
	begin := time.Now()
	for i := 0; i < spec.Clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(i)*7919))
			client := NewClient(ClientConfig{
				Session: spec.SessionBase + uint64(i+1),
				Addrs:   addrs,
				Timeout: spec.Timeout,
				Stats:   stats,
			})
			defer client.Close()
			kv := &KV{Client: client, Route: route}
			var good, bad, r, w int
			for op, plan := range plans[i] {
				if plan.Read {
					g := plan.Dest.Groups()[0]
					key := fmt.Sprintf("g%d/c%d-k%d", g, i, rng.Intn(spec.KeysPerShard))
					if _, _, err := kv.GetAt(key, spec.Consistency); err != nil {
						bad++
						continue
					}
					good++
					r++
					continue
				}
				sets := make(map[string]string, plan.Dest.Size())
				for _, g := range plan.Dest.Groups() {
					key := fmt.Sprintf("g%d/c%d-k%d", g, i, rng.Intn(spec.KeysPerShard))
					sets[key] = fmt.Sprintf("c%d-op%d", i, op)
				}
				t0 := time.Now()
				_, err := kv.Put(sets)
				stats.RecordClassOutcome("write", time.Since(t0), err == nil)
				if err != nil {
					bad++
					continue
				}
				good++
				w++
			}
			mu.Lock()
			ok += good
			failed += bad
			reads += r
			writes += w
			mu.Unlock()
		}()
	}
	wg.Wait()
	return LoadResult{Ops: ok, Errors: failed, Reads: reads, Writes: writes,
		Elapsed: time.Since(begin), Stats: stats.Snapshot()}
}
