package node

import (
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/types"
)

// sinkProto is a do-nothing protocol: the allocation pin below measures the
// runtime's transmit→deliver machinery, not protocol logic.
type sinkProto struct {
	got int
}

func (s *sinkProto) Proto() string                { return "sink" }
func (s *sinkProto) Start()                       {}
func (s *sinkProto) Receive(types.ProcessID, any) { s.got++ }

// TestTransmitDeliverZeroAllocs pins the simulated runtime's hot path: with
// tracing disarmed (rt.Trace == nil) and metrics discarded, one
// Transmit→Step round trip — fabric route, typed delivery event, clock
// update, protocol dispatch — must not allocate in steady state. This is
// the regression guard for the two historical per-send allocations: the
// unguarded Tracef call whose varargs boxed on every send even with
// tracing off, and the per-copy delivery closure.
func TestTransmitDeliverZeroAllocs(t *testing.T) {
	topo := types.NewTopology(3, 3)
	model := network.Model{
		IntraGroup: time.Millisecond,
		InterGroup: 40 * time.Millisecond,
		Jitter:     5 * time.Millisecond,
	}
	rt := NewRuntime(topo, model, 1, nil)
	sinks := make([]*sinkProto, topo.N())
	for _, id := range topo.AllProcesses() {
		sinks[id] = &sinkProto{}
		rt.Proc(id).Register(sinks[id])
	}
	rt.Start()

	// body is pre-boxed once; protocols hand the same boxed message to every
	// copy of a multicast, so the steady-state path never re-boxes.
	var body any = &struct{ x int }{x: 7}

	// Warm the scheduler's slabs and bucket ring past steady state.
	for i := 0; i < 4096; i++ {
		rt.Transmit(0, types.ProcessID(i%topo.N()), "sink", body, 1)
	}
	rt.Run()

	from, to := types.ProcessID(0), types.ProcessID(4) // inter-group: WAN prio path
	allocs := testing.AllocsPerRun(2000, func() {
		rt.Transmit(from, to, "sink", body, 1)
		for rt.Scheduler().Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("Transmit→deliver allocated %.2f allocs/event, want 0", allocs)
	}
	if sinks[to].got == 0 {
		t.Fatalf("sink protocol on %v received nothing; pin measured a dead path", to)
	}
}

// TestTracefDisarmedCostsNothing pins the satellite fix directly: Tracef
// call sites in the runtime are guarded by rt.Trace != nil, so a disarmed
// trace hook must not box its arguments. An armed hook still sees every
// line (spot-checked), so the guard did not silence tracing.
func TestTracefDisarmedCostsNothing(t *testing.T) {
	topo := types.NewTopology(2, 2)
	rt := NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	for _, id := range topo.AllProcesses() {
		rt.Proc(id).Register(&sinkProto{})
	}
	rt.Start()
	var body any = "m"
	for i := 0; i < 256; i++ {
		rt.Transmit(0, 1, "sink", body, 1)
	}
	rt.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		rt.Transmit(0, 1, "sink", body, 1)
		for rt.Scheduler().Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Tracef path allocated %.2f allocs/event, want 0", allocs)
	}

	lines := 0
	rt.Trace = func(string, ...any) { lines++ }
	rt.Transmit(0, 1, "sink", body, 1)
	rt.Run()
	if lines == 0 {
		t.Fatal("armed trace hook saw no SEND line; guard silenced tracing")
	}
}
