package node

import (
	"testing"
	"testing/quick"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/types"
)

// TestClockLawsQuick drives random send schedules through the runtime and
// checks the §2.3 clock laws as invariants:
//
//  1. clocks never decrease;
//  2. a process's clock equals the number of inter-group send events it
//     performed plus what it absorbed via receives (so a process that
//     neither sends inter-group nor receives stays at zero);
//  3. causality: a receive's clock is ≥ the carried send timestamp.
type clockProbe struct {
	api     API
	label   string
	maxSeen int64
	bad     bool
}

func (c *clockProbe) Proto() string { return c.label }
func (c *clockProbe) Start()        {}
func (c *clockProbe) Receive(from types.ProcessID, body any) {
	ts := body.(int64)
	if c.api.Clock() < ts { // law 3: receive takes the max
		c.bad = true
	}
	if c.api.Clock() < c.maxSeen { // law 1: monotone
		c.bad = true
	}
	c.maxSeen = c.api.Clock()
}

func TestClockLawsQuick(t *testing.T) {
	f := func(seed int64, plan []uint16) bool {
		if len(plan) > 40 {
			plan = plan[:40]
		}
		topo := types.NewTopology(3, 2)
		rt := NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 20 * time.Millisecond}, seed, nil)
		probes := make([]*clockProbe, topo.N())
		for _, id := range topo.AllProcesses() {
			probes[id] = &clockProbe{api: rt.Proc(id), label: "probe"}
			rt.Proc(id).Register(probes[id])
		}
		rt.Start()
		interSends := make([]int64, topo.N())
		for i, move := range plan {
			from := types.ProcessID(int(move) % topo.N())
			to := types.ProcessID(int(move>>4) % topo.N())
			at := time.Duration(int(move>>8)+i) * time.Millisecond
			rt.Scheduler().At(at, func() {
				p := rt.Proc(from)
				before := p.Clock()
				p.Send(to, "probe", before+boolToInt(!topo.SameGroup(from, to)))
				// law 2 (send side): inter-group send ticks exactly once.
				if !topo.SameGroup(from, to) && from != to {
					interSends[from]++
					if p.Clock() != before+1 {
						probes[from].bad = true
					}
				} else if p.Clock() != before {
					probes[from].bad = true
				}
			})
		}
		rt.Run()
		for _, pr := range probes {
			if pr.bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
