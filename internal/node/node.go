// Package node hosts the per-process protocol runtime shared by the
// simulated and the live transports.
//
// Every protocol in this repository (consensus, reliable multicast, the
// paper's A1 and A2, and all baselines) is written as an event-driven state
// machine against the API interface: it reacts to Start, incoming messages,
// and timers, and emits point-to-point sends. The runtime guarantees the
// paper's "each line is executed atomically" semantics by executing all
// events of a process sequentially, and it maintains the modified Lamport
// clock of §2.3 (ticking only on inter-group sends) used to measure latency
// degrees.
package node

import (
	"fmt"
	"time"

	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// Protocol is an event-driven protocol instance bound to one process.
type Protocol interface {
	// Proto returns the wire label that routes messages to this protocol.
	// It must be unique among the protocols registered on a process.
	Proto() string
	// Start runs once when the system starts, before any message delivery.
	Start()
	// Receive handles a message from another process (or from self).
	Receive(from types.ProcessID, body any)
}

// API is the environment a protocol sees. It is implemented by *Proc.
type API interface {
	// Self returns the identity of the hosting process.
	Self() types.ProcessID
	// Group returns group(Self()).
	Group() types.GroupID
	// Topo returns the immutable system topology.
	Topo() *types.Topology
	// Send transmits body to process to under the given protocol label.
	// Sending to self is delivered locally without touching the network
	// (and without counting as a message). Sends from a crashed process
	// are dropped.
	Send(to types.ProcessID, proto string, body any)
	// Multicast transmits body to every process in tos as ONE logical
	// send event: the §2.3 clock ticks once if any destination lies
	// outside the sender's group, and every copy carries that single
	// timestamp. This mirrors the paper's "send m to {q | ...}"
	// statements, whose proofs treat the fan-out as one event (e.g.
	// Theorem 4.1: all (TS, m) copies share one timestamp). Message
	// accounting still counts every copy individually.
	Multicast(tos []types.ProcessID, proto string, body any)
	// After schedules fn on this process after delay d. The callback does
	// not run if the process has crashed by then.
	After(d time.Duration, fn func())
	// Now returns the current (virtual or wall) time of the run.
	Now() time.Duration
	// Clock returns the process's current modified Lamport clock (§2.3).
	Clock() int64
	// Crashed reports whether the hosting process has crashed.
	Crashed() bool
	// RecordCast reports an A-XCast event for metrics; the event is local,
	// so its timestamp is the current clock.
	RecordCast(id types.MessageID)
	// RecordDeliver reports an A-Deliver event for metrics.
	RecordDeliver(id types.MessageID)
	// RecordConsensus reports completion of a consensus instance.
	RecordConsensus()
	// RecordBatch reports the size of a decided ordering batch (the number
	// of messages one consensus instance ordered).
	RecordBatch(size int)
	// Tracef emits a debug trace line when tracing is enabled.
	Tracef(format string, args ...any)
	// Trace records a lifecycle span for message id at the given stage
	// when a tracer is attached (see internal/trace). aux carries the
	// stage-specific payload: the Lamport clock at cast/deliver, a
	// duration in nanoseconds for barrier stages, a consensus instance
	// for propose/learn. Costs one nil check when no tracer is attached.
	Trace(st trace.Stage, id types.MessageID, aux int64)
	// Tracing reports whether lifecycle spans are being recorded, so call
	// sites can skip clock reads and other span bookkeeping when off.
	Tracing() bool
}

// Registrar is the registration surface protocol constructors use to attach
// themselves (and their sub-protocols) to a process. *Proc implements it.
type Registrar interface {
	API
	// Register attaches a protocol to the process's dispatch table.
	Register(proto Protocol)
}

// Recorder receives measurement events. *metrics.Collector implements it;
// the live runtime wraps it with a lock.
type Recorder interface {
	OnSend(proto string, from, to types.ProcessID, interGroup bool, at time.Duration)
	OnCast(id types.MessageID, lamportTS int64, at time.Duration)
	OnDeliver(id types.MessageID, p types.ProcessID, lamportTS int64, at time.Duration)
	OnConsensusInstance()
	OnBatchDecided(size int)
}

// NopRecorder is a Recorder that discards everything.
type NopRecorder struct{}

func (NopRecorder) OnSend(string, types.ProcessID, types.ProcessID, bool, time.Duration) {}
func (NopRecorder) OnCast(types.MessageID, int64, time.Duration)                         {}
func (NopRecorder) OnDeliver(types.MessageID, types.ProcessID, int64, time.Duration)     {}
func (NopRecorder) OnConsensusInstance()                                                 {}
func (NopRecorder) OnBatchDecided(int)                                                   {}

var _ Recorder = NopRecorder{}

// Env is the transport/scheduling backend a Proc runs on. The simulated
// runtime (this package) and the live TCP runtime implement it.
type Env interface {
	Now() time.Duration
	// Transmit delivers body to process to with the given send timestamp.
	// from has already updated its clock; the env applies network delay,
	// accounting, and crash filtering.
	Transmit(from, to types.ProcessID, proto string, body any, sendTS int64)
	// Later schedules fn on process owner after d. The env MUST drop the
	// callback if the owner crashed by fire time — Proc.After relies on
	// it (it no longer wraps fn in a re-checking closure).
	Later(owner *Proc, d time.Duration, fn func())
	Recorder() Recorder
	Tracef(format string, args ...any)
}

// Proc is one process: a Lamport clock, a crash flag, and a protocol
// registry. Construct with NewProc.
type Proc struct {
	id         types.ProcessID
	group      types.GroupID
	topo       *types.Topology
	env        Env
	clock      int64
	crashed    bool
	recovering bool
	protos     map[string]Protocol
	order      []string // registration order, for deterministic Start

	tracer *trace.Tracer // nil = lifecycle tracing off
	lane   int           // tracer ring the process records into
}

var _ API = (*Proc)(nil)

// NewProc creates a process bound to env.
func NewProc(id types.ProcessID, topo *types.Topology, env Env) *Proc {
	return &Proc{
		id:     id,
		group:  topo.GroupOf(id),
		topo:   topo,
		env:    env,
		protos: make(map[string]Protocol),
	}
}

// Register adds a protocol to the process. It panics on a duplicate label:
// that is a wiring bug, not a runtime condition.
func (p *Proc) Register(proto Protocol) {
	name := proto.Proto()
	if _, dup := p.protos[name]; dup {
		panic(fmt.Sprintf("node: duplicate protocol %q on %v", name, p.id))
	}
	p.protos[name] = proto
	p.order = append(p.order, name)
}

// StartAll runs Start on every registered protocol in registration order.
func (p *Proc) StartAll() {
	for _, name := range p.order {
		p.protos[name].Start()
	}
}

// Self implements API.
func (p *Proc) Self() types.ProcessID { return p.id }

// Group implements API.
func (p *Proc) Group() types.GroupID { return p.group }

// Topo implements API.
func (p *Proc) Topo() *types.Topology { return p.topo }

// Now implements API.
func (p *Proc) Now() time.Duration { return p.env.Now() }

// Clock implements API.
func (p *Proc) Clock() int64 { return p.clock }

// Crashed implements API.
func (p *Proc) Crashed() bool { return p.crashed }

// Crash marks the process as crashed: it stops sending, receiving, and
// running timers. Crash-stop (§2.1): there is no recovery of THIS Proc —
// the live runtime recovers a process by building a fresh Proc and
// replaying its durable state into it (see internal/transport/tcp).
func (p *Proc) Crash() { p.crashed = true }

// SetRecovering toggles replay mode: while recovering, the process sends
// nothing and records no metrics — log replay must reconstruct state
// silently, not re-broadcast the past. Timers still arm (they fire after
// recovery and re-drive liveness), and local hand-offs still run.
func (p *Proc) SetRecovering(r bool) { p.recovering = r }

// Recovering reports whether the process is replaying durable state.
func (p *Proc) Recovering() bool { return p.recovering }

// Send implements API. It applies the §2.3 clock rule for send events:
// inter-group sends tick the clock; intra-group sends do not.
func (p *Proc) Send(to types.ProcessID, proto string, body any) {
	p.Multicast([]types.ProcessID{to}, proto, body)
}

// Multicast implements API.
func (p *Proc) Multicast(tos []types.ProcessID, proto string, body any) {
	if p.crashed || p.recovering || len(tos) == 0 {
		return
	}
	interGroup := false
	for _, q := range tos {
		if q != p.id && p.topo.GroupOf(q) != p.group {
			interGroup = true
			break
		}
	}
	ts := p.clock
	if interGroup {
		ts = p.clock + 1
		p.clock = ts
	}
	for _, q := range tos {
		// Self-sends also go through Transmit: the env delivers them with
		// the intra-group delay (keeping group members symmetric) but does
		// not count them as network messages.
		p.env.Transmit(p.id, q, proto, body, ts)
	}
}

// After implements API. The crashed-owner drop is the env's job (both
// runtimes check at fire time), so no wrapper closure is allocated here.
func (p *Proc) After(d time.Duration, fn func()) {
	p.env.Later(p, d, fn)
}

// RecordCast implements API. With a tracer attached it also opens the
// message's span chain: a StageCast event carrying the caster's clock,
// which the trace-based latency-degree measurements pair with the
// StageDeliver clocks.
func (p *Proc) RecordCast(id types.MessageID) {
	if p.recovering {
		return
	}
	p.env.Recorder().OnCast(id, p.clock, p.env.Now())
	if p.tracer != nil {
		p.tracer.Record(p.lane, trace.StageCast, id, p.id, p.clock)
	}
}

// RecordDeliver implements API. With a tracer attached it also records
// the StageDeliver span with the deliverer's clock.
func (p *Proc) RecordDeliver(id types.MessageID) {
	if p.recovering {
		return
	}
	p.env.Recorder().OnDeliver(id, p.id, p.clock, p.env.Now())
	if p.tracer != nil {
		p.tracer.Record(p.lane, trace.StageDeliver, id, p.id, p.clock)
	}
}

// RecordConsensus implements API.
func (p *Proc) RecordConsensus() {
	if p.recovering {
		return
	}
	p.env.Recorder().OnConsensusInstance()
}

// RecordBatch implements API.
func (p *Proc) RecordBatch(size int) {
	if p.recovering {
		return
	}
	p.env.Recorder().OnBatchDecided(size)
}

// SetTracer attaches the lifecycle tracer; lane selects the per-lane
// span ring this process records into (the live runtime passes the
// process's event-loop lane, the simulator passes its accounting lane).
func (p *Proc) SetTracer(t *trace.Tracer, lane int) {
	p.tracer = t
	p.lane = lane
}

// Trace implements API. Recovering processes record nothing: replaying a
// WAL must not re-trace the past.
func (p *Proc) Trace(st trace.Stage, id types.MessageID, aux int64) {
	if p.tracer == nil || p.recovering {
		return
	}
	p.tracer.Record(p.lane, st, id, p.id, aux)
}

// Tracing implements API.
func (p *Proc) Tracing() bool {
	return p.tracer.Enabled() && !p.recovering
}

// Tracef implements API.
func (p *Proc) Tracef(format string, args ...any) {
	p.env.Tracef("%v t=%v lc=%d "+format, append([]any{p.id, p.env.Now(), p.clock}, args...)...)
}

// deliver applies the receive clock rule and dispatches to the protocol.
// The env calls it (via Deliver) when a transmitted message arrives.
func (p *Proc) deliver(from types.ProcessID, proto string, body any, sendTS int64) {
	if p.crashed {
		return
	}
	if sendTS > p.clock {
		p.clock = sendTS
	}
	handler, ok := p.protos[proto]
	if !ok {
		// A message for an unregistered protocol is a wiring bug.
		panic(fmt.Sprintf("node: %v received message for unknown protocol %q", p.id, proto))
	}
	handler.Receive(from, body)
}

// Deliver hands an incoming network message to the process. Envs call this
// at delivery time.
func (p *Proc) Deliver(from types.ProcessID, proto string, body any, sendTS int64) {
	p.deliver(from, proto, body, sendTS)
}
