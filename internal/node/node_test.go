package node

import (
	"testing"
	"time"

	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/types"
)

// echo is a test protocol that records receptions and can send on demand.
type echo struct {
	api      API
	label    string
	received []recv
}

type recv struct {
	from types.ProcessID
	body any
}

func (e *echo) Proto() string { return e.label }
func (e *echo) Start()        {}
func (e *echo) Receive(from types.ProcessID, body any) {
	e.received = append(e.received, recv{from, body})
}

func newTestRT(groups, per int) (*Runtime, *metrics.Collector) {
	col := &metrics.Collector{LogSends: true}
	topo := types.NewTopology(groups, per)
	model := network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}
	rt := NewRuntime(topo, model, 1, col)
	return rt, col
}

func register(rt *Runtime) []*echo {
	es := make([]*echo, rt.Topo().N())
	for _, id := range rt.Topo().AllProcesses() {
		e := &echo{api: rt.Proc(id), label: "echo"}
		rt.Proc(id).Register(e)
		es[id] = e
	}
	rt.Start()
	return es
}

// TestClockRulesIntraGroup: intra-group sends do not tick the clock (§2.3
// rule 2, same-group case).
func TestClockRulesIntraGroup(t *testing.T) {
	rt, _ := newTestRT(2, 2)
	es := register(rt)
	rt.Proc(0).Send(1, "echo", "x")
	rt.Run()
	if rt.Proc(0).Clock() != 0 {
		t.Errorf("sender clock = %d, want 0 (intra-group send)", rt.Proc(0).Clock())
	}
	if rt.Proc(1).Clock() != 0 {
		t.Errorf("receiver clock = %d, want 0", rt.Proc(1).Clock())
	}
	if len(es[1].received) != 1 {
		t.Fatal("message not delivered")
	}
}

// TestClockRulesInterGroup: inter-group sends tick the sender and propagate
// via max at the receiver (§2.3 rules 2 and 3).
func TestClockRulesInterGroup(t *testing.T) {
	rt, _ := newTestRT(2, 2)
	register(rt)
	rt.Proc(0).Send(2, "echo", "x")
	rt.Run()
	if rt.Proc(0).Clock() != 1 {
		t.Errorf("sender clock = %d, want 1", rt.Proc(0).Clock())
	}
	if rt.Proc(2).Clock() != 1 {
		t.Errorf("receiver clock = %d, want 1", rt.Proc(2).Clock())
	}
}

// TestMulticastTicksOnce: a fan-out with any inter-group destination is one
// send event — one tick, one shared timestamp (the Theorem 4.1 accounting).
func TestMulticastTicksOnce(t *testing.T) {
	rt, _ := newTestRT(2, 2)
	register(rt)
	rt.Proc(0).Multicast([]types.ProcessID{1, 2, 3}, "echo", "x")
	rt.Run()
	if rt.Proc(0).Clock() != 1 {
		t.Errorf("sender clock = %d, want 1 (single tick for the fan-out)", rt.Proc(0).Clock())
	}
	// The intra-group recipient also carries the fan-out's timestamp.
	if rt.Proc(1).Clock() != 1 {
		t.Errorf("intra recipient clock = %d, want 1", rt.Proc(1).Clock())
	}
}

// TestMulticastIntraOnlyNoTick: a fan-out entirely within the group does
// not tick.
func TestMulticastIntraOnlyNoTick(t *testing.T) {
	rt, _ := newTestRT(2, 3)
	register(rt)
	rt.Proc(0).Multicast([]types.ProcessID{1, 2}, "echo", "x")
	rt.Run()
	if rt.Proc(0).Clock() != 0 {
		t.Errorf("sender clock = %d, want 0", rt.Proc(0).Clock())
	}
}

// TestReceiveTakesMax: receiving an older timestamp does not lower the
// clock.
func TestReceiveTakesMax(t *testing.T) {
	rt, _ := newTestRT(3, 1)
	register(rt)
	// p0 sends to p2 twice with ticks in between; p2's clock is the max.
	rt.Proc(0).Send(2, "echo", "a") // ts 1
	rt.Proc(0).Send(2, "echo", "b") // ts 2
	rt.Proc(1).Send(2, "echo", "c") // ts 1 (older)
	rt.Run()
	if rt.Proc(2).Clock() != 2 {
		t.Errorf("receiver clock = %d, want 2", rt.Proc(2).Clock())
	}
}

func TestSelfSendDeliversWithoutCounting(t *testing.T) {
	rt, col := newTestRT(1, 2)
	es := register(rt)
	rt.Proc(0).Send(0, "echo", "self")
	rt.Run()
	if len(es[0].received) != 1 || es[0].received[0].from != 0 {
		t.Fatalf("self-send not delivered: %+v", es[0].received)
	}
	if st := col.Snapshot(); st.TotalMessages != 0 {
		t.Errorf("self-send counted as %d network messages", st.TotalMessages)
	}
}

func TestSelfSendTakesIntraDelay(t *testing.T) {
	rt, _ := newTestRT(1, 2)
	var at time.Duration
	p := rt.Proc(0)
	e := &echo{api: p, label: "echo"}
	p.Register(e)
	p.Register(&hook{label: "t", fn: func() {}})
	rt.Proc(1).Register(&echo{label: "echo"})
	rt.Proc(1).Register(&hook{label: "t", fn: func() {}})
	rt.Start()
	p.Send(0, "echo", "x")
	rt.Scheduler().At(0, func() {})
	rt.Run()
	_ = at
	// Delivery is scheduled with the intra-group delay (1ms), keeping
	// group members symmetric.
	if len(e.received) != 1 {
		t.Fatal("self message lost")
	}
	if got := rt.Now(); got != time.Millisecond {
		t.Errorf("self-send delivered at %v, want 1ms", got)
	}
}

type hook struct {
	label string
	fn    func()
}

func (h *hook) Proto() string                { return h.label }
func (h *hook) Start()                       { h.fn() }
func (h *hook) Receive(types.ProcessID, any) {}

func TestCrashedProcessStopsSendingAndReceiving(t *testing.T) {
	rt, col := newTestRT(2, 1)
	es := register(rt)
	rt.Proc(0).Send(1, "echo", "pre") // in flight
	rt.Crash(1)
	rt.Proc(1).Send(0, "echo", "from-crashed")
	rt.Run()
	if len(es[1].received) != 0 {
		t.Error("crashed process received a message")
	}
	if len(es[0].received) != 0 {
		t.Error("crashed process's send was transmitted")
	}
	// The pre-crash send still counts as sent.
	if st := col.Snapshot(); st.TotalMessages != 1 {
		t.Errorf("messages = %d, want 1", st.TotalMessages)
	}
}

func TestCrashCancelsTimers(t *testing.T) {
	rt, _ := newTestRT(1, 1)
	fired := false
	p := rt.Proc(0)
	p.Register(&hook{label: "h", fn: func() {
		p.After(10*time.Millisecond, func() { fired = true })
	}})
	rt.Start()
	rt.CrashAt(0, 5*time.Millisecond)
	rt.Run()
	if fired {
		t.Error("timer fired on a crashed process")
	}
}

// TestRuntimeLaterDropsCrashedOwnerTimers: the env itself must drop a
// timer whose owning process crashed by fire time, even when the callback
// was scheduled through Env.Later directly (bypassing Proc.After's own
// re-check) — a dead node must not keep driving consensus rounds.
func TestRuntimeLaterDropsCrashedOwnerTimers(t *testing.T) {
	rt, _ := newTestRT(1, 1)
	register(rt)
	fired := false
	rt.Later(rt.Proc(0), 10*time.Millisecond, func() { fired = true })
	rt.CrashAt(0, 5*time.Millisecond)
	rt.Run()
	if fired {
		t.Error("env-level timer fired for a crashed owner")
	}
}

func TestCrashNotifiesOracleAfterSuspicionDelay(t *testing.T) {
	rt, _ := newTestRT(1, 2)
	register(rt)
	rt.SuspicionDelay = 20 * time.Millisecond
	rt.Crash(0)
	rt.RunUntil(10 * time.Millisecond)
	if rt.Oracle().Suspected(0) {
		t.Error("suspected before the suspicion delay")
	}
	rt.RunUntil(30 * time.Millisecond)
	if !rt.Oracle().Suspected(0) {
		t.Error("not suspected after the suspicion delay")
	}
	if rt.Oracle().Leader(0) != 1 {
		t.Error("leadership did not move")
	}
}

func TestDuplicateProtocolPanics(t *testing.T) {
	rt, _ := newTestRT(1, 1)
	p := rt.Proc(0)
	p.Register(&echo{label: "dup"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate protocol")
		}
	}()
	p.Register(&echo{label: "dup"})
}

func TestUnknownProtocolPanics(t *testing.T) {
	rt, _ := newTestRT(1, 2)
	register(rt)
	rt.Proc(0).Send(1, "nope", "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown protocol")
		}
	}()
	rt.Run()
}

func TestStartTwicePanics(t *testing.T) {
	rt, _ := newTestRT(1, 1)
	rt.Start()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double Start")
		}
	}()
	rt.Start()
}

func TestStartOrderIsRegistrationOrder(t *testing.T) {
	rt, _ := newTestRT(1, 1)
	var order []string
	p := rt.Proc(0)
	p.Register(&hook{label: "a", fn: func() { order = append(order, "a") }})
	p.Register(&hook{label: "b", fn: func() { order = append(order, "b") }})
	rt.Start()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("start order = %v", order)
	}
}

func TestInterGroupDeliveryDelay(t *testing.T) {
	rt, _ := newTestRT(2, 1)
	es := register(rt)
	rt.Proc(0).Send(1, "echo", "x")
	rt.RunUntil(99 * time.Millisecond)
	if len(es[1].received) != 0 {
		t.Error("inter-group message arrived before the WAN delay")
	}
	rt.RunUntil(101 * time.Millisecond)
	if len(es[1].received) != 1 {
		t.Error("inter-group message did not arrive after the WAN delay")
	}
}

func TestRecordersReceiveCastAndDeliver(t *testing.T) {
	rt, col := newTestRT(2, 1)
	register(rt)
	id := types.MessageID{Origin: 0, Seq: 1}
	rt.Proc(0).RecordCast(id)
	rt.Proc(0).Send(1, "echo", "x") // tick
	rt.Proc(1).RecordDeliver(id)    // receiver clock still 0 until delivery...
	rt.Run()
	deg, ok := col.LatencyDegree(id)
	if !ok || deg != 0 {
		t.Errorf("degree = %d ok=%v (deliver recorded before reception)", deg, ok)
	}
}

func TestEmptyMulticastIsNoop(t *testing.T) {
	rt, col := newTestRT(2, 1)
	register(rt)
	rt.Proc(0).Multicast(nil, "echo", "x")
	rt.Run()
	if rt.Proc(0).Clock() != 0 {
		t.Error("empty multicast ticked the clock")
	}
	if st := col.Snapshot(); st.TotalMessages != 0 {
		t.Error("empty multicast sent messages")
	}
}
