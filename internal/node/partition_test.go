package node

import (
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/types"
)

// echoProto records what it receives.
type echoProto struct {
	got []string
}

func (e *echoProto) Proto() string { return "echo" }
func (e *echoProto) Start()        {}
func (e *echoProto) Receive(from types.ProcessID, body any) {
	e.got = append(e.got, body.(string))
}

// TestSeveredLinkHoldsAndReleases: a message sent over a severed link is
// withheld, not lost — it arrives after the link heals (quasi-reliable
// channels: a partition is just delay).
func TestSeveredLinkHoldsAndReleases(t *testing.T) {
	topo := types.NewTopology(2, 1)
	rt := NewRuntime(topo, network.Model{InterGroup: time.Millisecond}, 1, nil)
	e := &echoProto{}
	rt.Proc(1).Register(e)
	rt.Proc(0).Register(&echoProto{})
	rt.Start()

	rt.Fabric().Sever(0, 1)
	rt.Proc(0).Send(1, "echo", "during-partition")
	rt.RunUntil(50 * time.Millisecond)
	if len(e.got) != 0 {
		t.Fatalf("message crossed a severed link: %v", e.got)
	}

	rt.Scheduler().At(60*time.Millisecond, func() { rt.Fabric().Heal(0, 1) })
	rt.Run()
	if len(e.got) != 1 || e.got[0] != "during-partition" {
		t.Fatalf("held message not released on heal: %v", e.got)
	}
	if rt.Now() < 60*time.Millisecond {
		t.Fatalf("delivery before the heal at %v", rt.Now())
	}
}

// TestSeveredLinkIsDirectional: severing 0→1 leaves 1→0 working.
func TestSeveredLinkIsDirectional(t *testing.T) {
	topo := types.NewTopology(2, 1)
	rt := NewRuntime(topo, network.Model{InterGroup: time.Millisecond}, 1, nil)
	e0, e1 := &echoProto{}, &echoProto{}
	rt.Proc(0).Register(e0)
	rt.Proc(1).Register(e1)
	rt.Start()

	rt.Fabric().Sever(0, 1)
	rt.Proc(0).Send(1, "echo", "blocked")
	rt.Proc(1).Send(0, "echo", "reverse-ok")
	rt.Run()
	if len(e1.got) != 0 {
		t.Fatalf("0→1 delivered despite sever: %v", e1.got)
	}
	if len(e0.got) != 1 || e0.got[0] != "reverse-ok" {
		t.Fatalf("1→0 blocked by a directional sever of 0→1: %v", e0.got)
	}
}

// TestHeldOrderPreserved: parked messages release in send order.
func TestHeldOrderPreserved(t *testing.T) {
	topo := types.NewTopology(2, 1)
	rt := NewRuntime(topo, network.Model{InterGroup: time.Millisecond}, 1, nil)
	e := &echoProto{}
	rt.Proc(1).Register(e)
	rt.Proc(0).Register(&echoProto{})
	rt.Start()

	rt.Fabric().Sever(0, 1)
	for _, m := range []string{"a", "b", "c"} {
		rt.Proc(0).Send(1, "echo", m)
	}
	rt.Scheduler().At(10*time.Millisecond, func() { rt.Fabric().Heal(0, 1) })
	rt.Run()
	if len(e.got) != 3 || e.got[0] != "a" || e.got[1] != "b" || e.got[2] != "c" {
		t.Fatalf("release order = %v, want [a b c]", e.got)
	}
}

// TestIsolationSuspicionAndTrustRestore: cutting every intra-group link
// out of a process makes the oracle suspect it after SuspicionDelay
// (heartbeats dark) and healing restores trust, re-electing it.
func TestIsolationSuspicionAndTrustRestore(t *testing.T) {
	topo := types.NewTopology(1, 3)
	rt := NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	for i := 0; i < 3; i++ {
		rt.Proc(types.ProcessID(i)).Register(&echoProto{})
	}
	rt.Start()
	var leaders []types.ProcessID
	rt.Oracle().Subscribe(func(_ types.GroupID, l types.ProcessID) { leaders = append(leaders, l) })

	rt.Scheduler().At(10*time.Millisecond, func() { rt.Fabric().Isolate(0) })
	rt.RunUntil(10*time.Millisecond + rt.SuspicionDelay/2)
	if rt.Oracle().Suspected(0) {
		t.Fatal("suspected before SuspicionDelay elapsed")
	}
	rt.RunUntil(10*time.Millisecond + 2*rt.SuspicionDelay)
	if !rt.Oracle().Suspected(0) {
		t.Fatal("isolated process never suspected")
	}
	if rt.Oracle().Leader(0) != 1 {
		t.Fatalf("leader = %v after isolating p0, want p1", rt.Oracle().Leader(0))
	}

	rt.Scheduler().At(100*time.Millisecond, func() { rt.Fabric().HealIsolate(0) })
	rt.RunUntil(110 * time.Millisecond)
	if rt.Oracle().Suspected(0) {
		t.Fatal("trust not restored after heal")
	}
	if rt.Oracle().Leader(0) != 0 {
		t.Fatalf("leader = %v after heal, want p0 re-elected", rt.Oracle().Leader(0))
	}
	if len(leaders) != 2 || leaders[0] != 1 || leaders[1] != 0 {
		t.Fatalf("leader notifications = %v, want [1 0]", leaders)
	}
}

// TestPartialSeveranceNoSuspicion: a process that can still reach one
// group peer is not suspected.
func TestPartialSeveranceNoSuspicion(t *testing.T) {
	topo := types.NewTopology(1, 3)
	rt := NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	for i := 0; i < 3; i++ {
		rt.Proc(types.ProcessID(i)).Register(&echoProto{})
	}
	rt.Start()
	rt.Fabric().Sever(0, 1) // 0→2 still up
	rt.RunUntil(10 * rt.SuspicionDelay)
	if rt.Oracle().Suspected(0) {
		t.Fatal("partially severed process wrongly suspected")
	}
}

// TestCrashedProcessStaysSuspectedAfterHeal: healing an isolation must not
// restore trust in a process that crashed meanwhile — crash-stop is
// permanent.
func TestCrashedProcessStaysSuspectedAfterHeal(t *testing.T) {
	topo := types.NewTopology(1, 3)
	rt := NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	for i := 0; i < 3; i++ {
		rt.Proc(types.ProcessID(i)).Register(&echoProto{})
	}
	rt.Start()
	rt.Scheduler().At(time.Millisecond, func() { rt.Fabric().Isolate(0) })
	rt.Scheduler().At(50*time.Millisecond, func() { rt.Crash(0) })
	rt.Scheduler().At(100*time.Millisecond, func() { rt.Fabric().HealIsolate(0) })
	rt.RunUntil(200 * time.Millisecond)
	if !rt.Oracle().Suspected(0) {
		t.Fatal("crashed process trusted again after heal")
	}
	rt.Unsuspect(0) // explicit Unsuspect must refuse too
	if !rt.Oracle().Suspected(0) {
		t.Fatal("Unsuspect revived a crashed process's trust")
	}
}
