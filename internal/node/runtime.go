package node

import (
	"fmt"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/network"
	"wanamcast/internal/sim"
	"wanamcast/internal/types"
)

// Runtime is the simulated whole-system runtime: it owns the scheduler, the
// network model, one Proc per process, the failure-detector oracle, and the
// metrics recorder. It implements Env.
type Runtime struct {
	sched  *sim.Scheduler
	topo   *types.Topology
	model  network.Model
	rec    Recorder
	oracle *fd.Oracle
	procs  []*Proc

	// SuspicionDelay is how long after a crash the Ω oracle starts
	// suspecting the crashed process. It models failure-detection lag.
	SuspicionDelay time.Duration

	// Trace, if non-nil, receives debug trace lines.
	Trace func(format string, args ...any)

	started bool
}

var _ Env = (*Runtime)(nil)

// NewRuntime builds a simulated system over topo with the given network
// model and RNG seed. rec may be nil to discard metrics.
func NewRuntime(topo *types.Topology, model network.Model, seed int64, rec Recorder) *Runtime {
	if rec == nil {
		rec = NopRecorder{}
	}
	rt := &Runtime{
		sched:          sim.New(seed),
		topo:           topo,
		model:          model,
		rec:            rec,
		oracle:         fd.NewOracle(topo),
		SuspicionDelay: 20 * time.Millisecond,
	}
	rt.procs = make([]*Proc, topo.N())
	for _, id := range topo.AllProcesses() {
		rt.procs[id] = NewProc(id, topo, rt)
	}
	return rt
}

// Proc returns the process with the given ID.
func (rt *Runtime) Proc(id types.ProcessID) *Proc { return rt.procs[id] }

// Topo returns the system topology.
func (rt *Runtime) Topo() *types.Topology { return rt.topo }

// Oracle returns the simulation's Ω oracle.
func (rt *Runtime) Oracle() *fd.Oracle { return rt.oracle }

// Scheduler returns the underlying discrete-event scheduler.
func (rt *Runtime) Scheduler() *sim.Scheduler { return rt.sched }

// Start invokes Start on every protocol of every process, in process order.
// It must be called exactly once, after all protocols are registered.
func (rt *Runtime) Start() {
	if rt.started {
		panic("node: Runtime.Start called twice")
	}
	rt.started = true
	for _, p := range rt.procs {
		p.StartAll()
	}
}

// Run drains the event queue and returns the number of events executed.
func (rt *Runtime) Run() uint64 { return rt.sched.Run() }

// RunUntil executes events up to the virtual-time deadline.
func (rt *Runtime) RunUntil(deadline time.Duration) uint64 { return rt.sched.RunUntil(deadline) }

// Now implements Env.
func (rt *Runtime) Now() time.Duration { return rt.sched.Now() }

// Recorder implements Env.
func (rt *Runtime) Recorder() Recorder { return rt.rec }

// Tracef implements Env.
func (rt *Runtime) Tracef(format string, args ...any) {
	if rt.Trace != nil {
		rt.Trace(format, args...)
	}
}

// Transmit implements Env: it accounts the send, applies the network delay,
// and delivers unless the receiver has crashed by arrival time. Self-sends
// take the intra-group delay but are not counted as network messages.
func (rt *Runtime) Transmit(from, to types.ProcessID, proto string, body any, sendTS int64) {
	interGroup := !rt.topo.SameGroup(from, to)
	if from != to {
		rt.rec.OnSend(proto, from, to, interGroup, rt.sched.Now())
	}
	rt.Tracef("SEND %v->%v %s ts=%d %+v", from, to, proto, sendTS, body)
	delay := rt.model.Delay(rt.topo, from, to, rt.sched.Rand())
	prio := 0
	if interGroup {
		prio = 1 // at equal instants, local events precede WAN arrivals
	}
	receiver := rt.procs[to]
	rt.sched.AfterPrio(delay, prio, func() {
		receiver.Deliver(from, proto, body, sendTS)
	})
}

// Later implements Env. Timer callbacks whose owning process has crashed
// by fire time are dropped: a dead node must not keep driving consensus
// rounds. (Proc.After re-checks too; this keeps the guarantee even for
// timers scheduled through the env directly.)
func (rt *Runtime) Later(owner *Proc, d time.Duration, fn func()) {
	rt.sched.After(d, func() {
		if owner.Crashed() {
			return
		}
		fn()
	})
}

// Crash crashes process id now: it stops sending and receiving immediately,
// and the Ω oracle suspects it after SuspicionDelay.
func (rt *Runtime) Crash(id types.ProcessID) {
	p := rt.procs[id]
	if p.Crashed() {
		return
	}
	p.Crash()
	rt.Tracef("CRASH %v at %v", id, rt.sched.Now())
	rt.sched.After(rt.SuspicionDelay, func() {
		rt.oracle.Suspect(id)
	})
}

// CrashAt schedules a crash of id at virtual time at.
func (rt *Runtime) CrashAt(id types.ProcessID, at time.Duration) {
	rt.sched.At(at, func() { rt.Crash(id) })
}

// String summarises the runtime configuration.
func (rt *Runtime) String() string {
	return fmt.Sprintf("sim runtime: %d groups, %d processes, intra=%v inter=%v",
		rt.topo.NumGroups(), rt.topo.N(), rt.model.IntraGroup, rt.model.InterGroup)
}
