package node

import (
	"fmt"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/network"
	"wanamcast/internal/sim"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// Runtime is the simulated whole-system runtime: it owns the scheduler, the
// network fabric, one Proc per process, the failure-detector oracle, and the
// metrics recorder. It implements Env.
//
// The fabric makes the simulated network partitionable at runtime: a
// message sent over a severed link is withheld (parked in the runtime, not
// lost — quasi-reliable channels, §2.1) and released when the link heals,
// so a partition-then-heal is exactly an arbitrary-but-finite delay and
// every such run is admissible. Severing every intra-group link out of a
// process simulates its heartbeats ceasing: after SuspicionDelay the Ω
// oracle suspects it, and healing restores trust (Unsuspect), re-electing
// any demoted leader. All fabric mutations must happen on the scheduler's
// goroutine (schedule them as events, or make them before Run).
type Runtime struct {
	sched  *sim.Scheduler
	topo   *types.Topology
	fabric *network.Fabric
	rec    Recorder
	oracle *fd.Oracle
	procs  []*Proc

	held         map[network.Link][]heldMsg // parked sends of severed links
	isoSuspected map[types.ProcessID]bool   // suspected due to isolation, not crash

	// Bandwidth modeling state, touched only when the fabric is
	// bandwidth-capped (Fabric.BandwidthOn). Each capped link is a FIFO
	// transmission queue: a message occupies the link for its transmit
	// time and queues behind earlier traffic, so sized messages convert
	// directly into latency. bwScratch is the reusable encode buffer that
	// sizes each message exactly as the live wire codec would; bwNextFree
	// is each link's earliest free instant; bwCounters caches the fabric's
	// per-link byte counters. An uncapped run never touches any of this —
	// its event stream is byte-identical to one without the machinery.
	bwNextFree map[network.Link]time.Duration
	bwCounters map[network.Link]*network.LinkCounter
	bwScratch  []byte
	wireRec    wireRecorder // rt.rec, if it also records wire traffic

	// suspectFn is the crash-suspicion notifier, built once so every
	// Crash schedules a typed evCall event instead of a fresh closure.
	suspectFn func(int32)

	// Lane accounting (SetLanes). The simulator mirrors the live runtime's
	// per-group ordering lanes WITHOUT changing execution: events stay on
	// the one scheduler goroutine, and the scheduler's (time, priority,
	// sequence) merge order IS the deterministic interleaving of the lanes
	// — which is why a simulated run produces a byte-identical trace at any
	// lane count, while the live runtime's lanes race for real. The lane
	// map only attributes delivered events to the lane that would have
	// executed them, so scenarios can assert lane balance and the lane
	// layout under test matches the live one (group mod Lanes).
	lanes      int
	laneEvents []uint64 // delivered events per lane index

	// SuspicionDelay is how long after a crash (or a full intra-group
	// isolation) the Ω oracle starts suspecting the process. It models
	// failure-detection lag.
	SuspicionDelay time.Duration

	// Trace, if non-nil, receives debug trace lines.
	Trace func(format string, args ...any)

	started bool
}

// heldMsg is one send parked on a severed link until it heals.
type heldMsg struct {
	proto  string
	body   any
	sendTS int64
}

var _ Env = (*Runtime)(nil)

// NewRuntime builds a simulated system over topo with the given network
// model and RNG seed. rec may be nil to discard metrics; a recorder that
// also implements fd.Observer receives the oracle's suspicion, trust, and
// leader-change events.
func NewRuntime(topo *types.Topology, model network.Model, seed int64, rec Recorder) *Runtime {
	if rec == nil {
		rec = NopRecorder{}
	}
	rt := &Runtime{
		sched:          sim.New(seed),
		topo:           topo,
		fabric:         network.NewFabric(topo, model),
		rec:            rec,
		oracle:         fd.NewOracle(topo),
		held:           make(map[network.Link][]heldMsg),
		isoSuspected:   make(map[types.ProcessID]bool),
		SuspicionDelay: 20 * time.Millisecond,
	}
	if obs, ok := rec.(fd.Observer); ok {
		rt.oracle.Observer = obs
	}
	if wr, ok := rec.(wireRecorder); ok {
		rt.wireRec = wr
	}
	rt.procs = make([]*Proc, topo.N())
	for _, id := range topo.AllProcesses() {
		rt.procs[id] = NewProc(id, topo, rt)
	}
	rt.sched.OnDeliver(rt.execDeliver)
	rt.suspectFn = func(p int32) { rt.oracle.Suspect(types.ProcessID(p)) }
	rt.fabric.OnTransition(rt.onLinkTransition)
	return rt
}

// execDeliver executes one typed delivery event: it accounts the lane and
// hands the message to the receiver. This is the single delivery handler
// the scheduler invokes for every network arrival — the per-send closure
// the hot path used to allocate is gone.
func (rt *Runtime) execDeliver(from, to int32, proto string, body any, sendTS int64) {
	if rt.laneEvents != nil {
		rt.laneEvents[rt.LaneOf(types.ProcessID(to))]++
	}
	rt.procs[to].Deliver(types.ProcessID(from), proto, body, sendTS)
}

// Proc returns the process with the given ID.
func (rt *Runtime) Proc(id types.ProcessID) *Proc { return rt.procs[id] }

// Topo returns the system topology.
func (rt *Runtime) Topo() *types.Topology { return rt.topo }

// Oracle returns the simulation's Ω oracle.
func (rt *Runtime) Oracle() *fd.Oracle { return rt.oracle }

// Fabric returns the mutable link fabric: the chaos control surface of the
// simulated network. Mutate it only from the scheduler goroutine.
func (rt *Runtime) Fabric() *network.Fabric { return rt.fabric }

// Scheduler returns the underlying discrete-event scheduler.
func (rt *Runtime) Scheduler() *sim.Scheduler { return rt.sched }

// SetLanes configures the lane accounting to mirror a live runtime with
// the given lane count (0 = one lane per process, the live default).
// Call before Run; execution is unaffected — see the field docs.
func (rt *Runtime) SetLanes(n int) {
	rt.lanes = n
	size := rt.topo.N()
	if n > 0 {
		size = n
	}
	rt.laneEvents = make([]uint64, size)
}

// LaneOf returns the lane index process p maps to under the configured
// lane count — the same layout the live runtime uses (group mod Lanes;
// one lane per process when unset).
func (rt *Runtime) LaneOf(p types.ProcessID) int {
	if rt.lanes <= 0 {
		return int(p)
	}
	return int(rt.topo.GroupOf(p)) % rt.lanes
}

// LaneStats returns how many delivered events each lane executed (only
// populated after SetLanes).
func (rt *Runtime) LaneStats() []uint64 {
	return append([]uint64(nil), rt.laneEvents...)
}

// Start invokes Start on every protocol of every process, in process order.
// It must be called exactly once, after all protocols are registered.
func (rt *Runtime) Start() {
	if rt.started {
		panic("node: Runtime.Start called twice")
	}
	rt.started = true
	for _, p := range rt.procs {
		p.StartAll()
	}
}

// Run drains the event queue and returns the number of events executed.
func (rt *Runtime) Run() uint64 { return rt.sched.Run() }

// RunUntil executes events up to the virtual-time deadline.
func (rt *Runtime) RunUntil(deadline time.Duration) uint64 { return rt.sched.RunUntil(deadline) }

// Now implements Env.
func (rt *Runtime) Now() time.Duration { return rt.sched.Now() }

// Recorder implements Env.
func (rt *Runtime) Recorder() Recorder { return rt.rec }

// Tracef implements Env.
func (rt *Runtime) Tracef(format string, args ...any) {
	if rt.Trace != nil {
		rt.Trace(format, args...)
	}
}

// Transmit implements Env: it accounts the send, applies the network delay,
// and delivers unless the receiver has crashed by arrival time. Self-sends
// take the intra-group delay but are not counted as network messages. A
// send over a severed link is parked until the link heals — the message is
// in the network, arbitrarily delayed, never lost.
//
// This is THE hot path of a simulated run — one call per message copy —
// and it is allocation-free in steady state: one fabric Route call (a
// single atomic load when no chaos override was ever installed), trace
// formatting gated on the Trace hook being armed, and a typed delivery
// event in place of the closure the seed runtime allocated per send.
func (rt *Runtime) Transmit(from, to types.ProcessID, proto string, body any, sendTS int64) {
	interGroup := !rt.topo.SameGroup(from, to)
	if from != to {
		rt.rec.OnSend(proto, from, to, interGroup, rt.sched.Now())
	}
	delay, severed := rt.fabric.Route(from, to, rt.sched.Rand())
	if severed {
		if rt.Trace != nil {
			rt.Tracef("HOLD %v->%v %s ts=%d (link severed)", from, to, proto, sendTS)
		}
		l := network.Link{From: from, To: to}
		rt.held[l] = append(rt.held[l], heldMsg{proto: proto, body: body, sendTS: sendTS})
		return
	}
	if rt.Trace != nil {
		rt.Tracef("SEND %v->%v %s ts=%d %+v", from, to, proto, sendTS, body)
	}
	if from != to && rt.fabric.BandwidthOn() {
		delay += rt.bwDelay(from, to, proto, body, sendTS)
	}
	prio := 0
	if interGroup {
		prio = 1 // at equal instants, local events precede WAN arrivals
	}
	rt.sched.DeliverAfter(delay, prio, int32(from), int32(to), proto, body, sendTS)
}

// wireRecorder is the optional recorder extension for wire-byte accounting
// (metrics.Collector implements it).
type wireRecorder interface {
	OnWireSend(kind byte, n int)
	OnWireFlush(wireBytes, rawLen, compLen int)
}

// bwDelay sizes one message the way the live wire codec would and returns
// its transmission + queueing delay on the (possibly capped) link, counting
// the bytes against the fabric's per-link counter and the wire metrics.
// Called only on bandwidth-modeled runs.
func (rt *Runtime) bwDelay(from, to types.ProcessID, proto string, body any, sendTS int64) time.Duration {
	buf, err := wire.AppendFrame(rt.bwScratch[:0], from, proto, sendTS, body)
	if err != nil {
		// Unencodable payload (gob rejection): nothing sized, nothing owed.
		return 0
	}
	rt.bwScratch = buf[:0]
	n := len(buf)
	l := network.Link{From: from, To: to}
	c := rt.bwCounters[l]
	if c == nil {
		if rt.bwCounters == nil {
			rt.bwCounters = make(map[network.Link]*network.LinkCounter)
		}
		c = rt.fabric.Counter(from, to)
		rt.bwCounters[l] = c
	}
	c.Count(n)
	if rt.wireRec != nil {
		rt.wireRec.OnWireSend(byte(wire.KindOf(body)), n)
		rt.wireRec.OnWireFlush(n, 0, 0)
	}
	rate := rt.fabric.Bandwidth(from, to)
	if rate <= 0 {
		return 0
	}
	now := rt.sched.Now()
	start := now
	if rt.bwNextFree == nil {
		rt.bwNextFree = make(map[network.Link]time.Duration)
	} else if nf := rt.bwNextFree[l]; nf > start {
		start = nf
	}
	finish := start + network.TransmitTime(rate, n)
	rt.bwNextFree[l] = finish
	return finish - now
}

// scheduleDelivery applies the fabric delay and enqueues the arrival — the
// held-message release path (Transmit routes inline).
func (rt *Runtime) scheduleDelivery(from, to types.ProcessID, proto string, body any, sendTS int64) {
	delay := rt.fabric.Delay(from, to, rt.sched.Rand())
	if from != to && rt.fabric.BandwidthOn() {
		delay += rt.bwDelay(from, to, proto, body, sendTS)
	}
	prio := 0
	if !rt.topo.SameGroup(from, to) {
		prio = 1 // at equal instants, local events precede WAN arrivals
	}
	rt.sched.DeliverAfter(delay, prio, int32(from), int32(to), proto, body, sendTS)
}

// onLinkTransition reacts to fabric sever/heal events: healing a link
// releases its parked messages (in send order, at the link's current
// delay) and restores trust in a process whose isolation caused a
// suspicion; severing the last intra-group link out of a process starts
// its suspicion clock, modeling heartbeats going dark.
func (rt *Runtime) onLinkTransition(l network.Link, severed bool) {
	if severed {
		if rt.intraGroupPeer(l) && rt.isolated(l.From) && !rt.procs[l.From].Crashed() {
			p := l.From
			rt.Tracef("ISOLATED %v at %v", p, rt.sched.Now())
			rt.sched.After(rt.SuspicionDelay, func() {
				if rt.isolated(p) && !rt.procs[p].Crashed() && !rt.oracle.Suspected(p) {
					rt.isoSuspected[p] = true
					rt.oracle.Suspect(p)
				}
			})
		}
		return
	}
	// Healed: release parked messages.
	if msgs := rt.held[l]; len(msgs) > 0 {
		delete(rt.held, l)
		rt.Tracef("RELEASE %d held msgs %v->%v at %v", len(msgs), l.From, l.To, rt.sched.Now())
		for _, m := range msgs {
			rt.scheduleDelivery(l.From, l.To, m.proto, m.body, m.sendTS)
		}
	}
	// Trust restored: simulated heartbeats resume the moment any
	// intra-group link out of the process heals.
	if rt.intraGroupPeer(l) && rt.isoSuspected[l.From] && !rt.procs[l.From].Crashed() {
		delete(rt.isoSuspected, l.From)
		rt.oracle.Unsuspect(l.From)
	}
}

// intraGroupPeer reports whether l connects two distinct members of one
// group — the links simulated heartbeats ride on.
func (rt *Runtime) intraGroupPeer(l network.Link) bool {
	return l.From != l.To && rt.topo.SameGroup(l.From, l.To)
}

// isolated reports whether every intra-group link out of p is severed: no
// simulated heartbeat of p reaches any group peer.
func (rt *Runtime) isolated(p types.ProcessID) bool {
	for _, q := range rt.topo.Members(rt.topo.GroupOf(p)) {
		if q != p && !rt.fabric.Severed(p, q) {
			return false
		}
	}
	return true
}

// Later implements Env. Timer callbacks whose owning process has crashed
// by fire time are dropped: a dead node must not keep driving consensus
// rounds. The drop rides the scheduler's typed timer event — no wrapper
// closure per timer.
func (rt *Runtime) Later(owner *Proc, d time.Duration, fn func()) {
	rt.sched.TimerAfter(d, owner, fn)
}

// Crash crashes process id now: it stops sending and receiving immediately,
// and the Ω oracle suspects it after SuspicionDelay (a typed call event on
// the runtime's one pre-built notifier — no closure per crash).
func (rt *Runtime) Crash(id types.ProcessID) {
	p := rt.procs[id]
	if p.Crashed() {
		return
	}
	p.Crash()
	delete(rt.isoSuspected, id) // a crash suspicion is permanent
	rt.Tracef("CRASH %v at %v", id, rt.sched.Now())
	rt.sched.CallAfter(rt.SuspicionDelay, rt.suspectFn, int32(id))
}

// CrashAt schedules a crash of id at virtual time at.
func (rt *Runtime) CrashAt(id types.ProcessID, at time.Duration) {
	rt.sched.At(at, func() { rt.Crash(id) })
}

// Suspect injects a (possibly false) suspicion of id into the Ω oracle —
// the chaos scenarios' leader-flap lever.
func (rt *Runtime) Suspect(id types.ProcessID) { rt.oracle.Suspect(id) }

// Unsuspect restores trust in id unless it has crashed (a crash-stop is
// permanent; only mistaken suspicions are revocable).
func (rt *Runtime) Unsuspect(id types.ProcessID) {
	if rt.procs[id].Crashed() {
		return
	}
	delete(rt.isoSuspected, id)
	rt.oracle.Unsuspect(id)
}

// String summarises the runtime configuration.
func (rt *Runtime) String() string {
	base := rt.fabric.Base()
	return fmt.Sprintf("sim runtime: %d groups, %d processes, intra=%v inter=%v",
		rt.topo.NumGroups(), rt.topo.N(), base.IntraGroup, base.InterGroup)
}
