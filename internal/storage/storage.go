// Package storage is the durability subsystem: a segmented, CRC-framed,
// append-only write-ahead log plus atomic-rename snapshot files, shared by
// every durable layer of a process (consensus acceptors, the A1/A2
// ordering engines, and the service layer's replicated state).
//
// One process owns one Store. Layers append Records tagged with their
// protocol label and call Commit at their durability barriers (an acceptor
// must not ack a Promise or Accept it could forget); Commit flushes the
// write buffer and fsyncs unless the store was opened with NoFsync.
// Because consensus values are whole ordering batches, the steady-state
// cost is one fsync per decided batch per acceptor, not one per message —
// and the encode path reuses the internal/wire zero-allocation codecs, so
// appending a record allocates nothing.
//
// Snapshots bound the log: SaveSnapshot atomically replaces the snapshot
// file (write temp, fsync, rename) and records the WAL index it covers;
// segments entirely below that index are deleted. Recovery is
// Load (snapshot blob + replay start index) followed by Replay, which
// tolerates a torn or corrupted tail by stopping at the first bad frame —
// everything before it is intact by CRC.
//
// Mem is the in-memory implementation for tests and for in-process
// restarts without a disk; a nil *Log is the no-op used when durability is
// off.
package storage

import (
	"fmt"
	"sync/atomic"

	"wanamcast/internal/wire"
)

// Store is one process's durable state: an appendable record log and a
// replaceable snapshot.
type Store interface {
	// Append adds one record to the log. It is buffered: the record is
	// durable only after the next Commit.
	Append(rec Record) error
	// Commit is the durability barrier: flush buffered appends and fsync
	// (unless the store runs fsync-off).
	Commit() error
	// SaveSnapshot atomically replaces the snapshot with data, marking it
	// as covering every record appended so far, and prunes log segments
	// the snapshot makes obsolete.
	SaveSnapshot(data []byte) error
	// Load returns the newest intact snapshot (nil if none) and the log
	// index replay should start from.
	Load() (snap []byte, replayFrom uint64, err error)
	// Replay invokes fn for every intact record with index >= from, in
	// append order. A torn or corrupt tail ends the replay cleanly.
	Replay(from uint64, fn func(rec Record) error) error
	// Close flushes and releases the store.
	Close() error
}

// SyncStore is the optional Store extension group commit needs: the
// Commit durability barrier split into its two halves, so many lanes'
// barriers can share one fsync. Flush and Maintain run on the store's
// owning lane; Sync is the one method called from the group-commit
// syncer goroutine, concurrently with lane-side appends.
type SyncStore interface {
	Store
	// Flush pushes buffered appends to the OS. No durability yet.
	Flush() error
	// Sync makes everything previously flushed durable (fsync unless the
	// store runs fsync-off). Safe to call concurrently with Append/Flush.
	Sync() error
	// Maintain runs post-sync maintenance (segment rotation) that must
	// stay confined to the owning lane.
	Maintain() error
	// Fsyncs returns how many fsyncs the store has issued so far — the
	// observable behind the fsyncs-per-decided-batch metric.
	Fsyncs() uint64
}

// Log is the nil-safe append handle layers hold. A nil *Log discards
// everything, so protocols need no durability branches on their hot
// paths. Append and Commit panic on store errors: a process that cannot
// persist the state it is about to promise must fail-stop (§2.1's
// crash-stop model), not carry on with amnesia.
type Log struct {
	store Store
	// Group-commit attachment (nil = synchronous barriers): CommitThen
	// stages its continuation here instead of fsyncing inline.
	sync SyncStore
	q    *gcQueue
}

// NewLog wraps store; a nil store yields a nil (discard-everything) Log.
func NewLog(store Store) *Log {
	if store == nil {
		return nil
	}
	return &Log{store: store}
}

// Append buffers one record.
func (l *Log) Append(rec Record) {
	if l == nil {
		return
	}
	if err := l.store.Append(rec); err != nil {
		panic(fmt.Sprintf("storage: append failed, cannot continue without durability: %v", err))
	}
}

// Commit is the durability barrier; see Store.Commit.
func (l *Log) Commit() {
	if l == nil {
		return
	}
	if err := l.store.Commit(); err != nil {
		panic(fmt.Sprintf("storage: commit failed, cannot continue without durability: %v", err))
	}
}

// Enabled reports whether records appended here are actually retained.
func (l *Log) Enabled() bool { return l != nil }

// AttachGroupCommit routes this log's CommitThen barriers through gc:
// the barrier's continuation is parked until the syncer's next fsync of
// this store completes, and one fsync covers every barrier staged across
// all lanes in the window. post must run its argument on the store's
// owning lane, as its own event (e.g. tcp.Runtime.Async) — parked
// continuations touch loop-confined protocol state.
//
// A nil log, a nil gc, or a store that cannot split its barrier (no
// SyncStore) leave the log synchronous: CommitThen then degrades to
// Commit-then-call, which is the exact historical behavior.
func (l *Log) AttachGroupCommit(gc *GroupCommit, post func(func())) {
	if l == nil || gc == nil {
		return
	}
	ss, ok := l.store.(SyncStore)
	if !ok {
		return
	}
	l.sync = ss
	l.q = gc.register(ss, post)
}

// CommitThen is the asynchronous durability barrier: then runs strictly
// after every record appended so far is durable. Without a group-commit
// attachment it is Commit() followed by then() — synchronous, today's
// behavior to the byte. With one, the appends are flushed to the OS on
// the calling lane and then is parked until the group-commit syncer's
// covering fsync completes; it then runs on the owning lane via the
// attachment's post hook. Either way the caller must not touch
// loop-confined state between CommitThen and then running — the reply a
// barrier guards belongs inside then.
func (l *Log) CommitThen(then func()) {
	if l == nil {
		if then != nil {
			then()
		}
		return
	}
	if l.q == nil {
		l.Commit()
		if then != nil {
			then()
		}
		return
	}
	if err := l.sync.Flush(); err != nil {
		panic(fmt.Sprintf("storage: flush failed, cannot continue without durability: %v", err))
	}
	l.q.stage(then)
}

// --- in-memory store ------------------------------------------------------

// Mem is an in-memory Store: records and snapshot survive as long as the
// process does. It backs tests and in-process restart scenarios (the
// LiveCluster Crash/Restart cycle) without touching a disk. Mem is not
// safe for concurrent use by multiple goroutines — like a disk store, it
// belongs to one process's event loop.
type Mem struct {
	recs     []Record
	snap     []byte
	snapFrom uint64
	closed   bool
	syncs    atomic.Uint64
}

var _ Store = (*Mem)(nil)
var _ SyncStore = (*Mem)(nil)

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append implements Store.
func (m *Mem) Append(rec Record) error {
	if m.closed {
		return fmt.Errorf("storage: append to closed store")
	}
	m.recs = append(m.recs, rec)
	return nil
}

// Commit implements Store (memory is always "durable").
func (m *Mem) Commit() error { return nil }

// Flush implements SyncStore: memory has nothing to flush.
func (m *Mem) Flush() error { return nil }

// Sync implements SyncStore. It only counts: memory is always durable,
// but the counter lets tests observe how group commit batches barriers.
// Unlike the rest of Mem it is safe to call concurrently (the
// group-commit syncer calls it from its own goroutine).
func (m *Mem) Sync() error {
	m.syncs.Add(1)
	return nil
}

// Maintain implements SyncStore: nothing to rotate.
func (m *Mem) Maintain() error { return nil }

// Fsyncs implements SyncStore: for Mem it reports the number of Sync
// barriers observed (no real fsyncs ever happen).
func (m *Mem) Fsyncs() uint64 { return m.syncs.Load() }

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(data []byte) error {
	m.snap = append([]byte(nil), data...)
	m.snapFrom = uint64(len(m.recs))
	return nil
}

// Load implements Store.
func (m *Mem) Load() ([]byte, uint64, error) {
	if m.snap == nil {
		return nil, 0, nil
	}
	return append([]byte(nil), m.snap...), m.snapFrom, nil
}

// Replay implements Store.
func (m *Mem) Replay(from uint64, fn func(rec Record) error) error {
	for i := int(from); i < len(m.recs); i++ {
		if err := fn(m.recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.closed = true
	return nil
}

// Len returns the number of records appended so far (test access).
func (m *Mem) Len() int { return len(m.recs) }

// TrimTail bounds an append-only slice amortisedly: once it reaches twice
// max, the newest max entries are copied down and the vacated tail is
// zeroed (releasing payload references). It returns the slice and how many
// entries were dropped from the front. The shared idiom behind the
// cluster's delivery log and the endpoints' sync archives.
func TrimTail[T any](s []T, max int) ([]T, int) {
	if max <= 0 || len(s) < 2*max {
		return s, 0
	}
	dropped := len(s) - max
	n := copy(s, s[dropped:])
	var zero T
	for i := n; i < len(s); i++ {
		s[i] = zero
	}
	return s[:n], dropped
}

// --- snapshot sections ----------------------------------------------------

// A snapshot blob is a sequence of named sections, one per durable layer,
// concatenated in restore order.

// AppendSection appends one named section to a snapshot blob.
func AppendSection(buf []byte, name string, body []byte) []byte {
	buf = wire.AppendString(buf, name)
	return wire.AppendBytes(buf, body)
}

// Section is one named slice of a snapshot blob. Data aliases the blob.
type Section struct {
	Name string
	Data []byte
}

// Sections splits a snapshot blob into its sections, in order.
func Sections(data []byte) ([]Section, error) {
	var out []Section
	for len(data) > 0 {
		name, rest, err := wire.String(data)
		if err != nil {
			return nil, err
		}
		body, rest, err := wire.Bytes(rest)
		if err != nil {
			return nil, err
		}
		out = append(out, Section{Name: name, Data: body})
		data = rest
	}
	return out, nil
}
