// The disk store: a segmented append-only WAL plus an atomically replaced
// snapshot file, both living in one per-process directory.
//
// Segment layout: wal-%016x.log (hex first record index), an 8-byte magic
// header, then frames of [4-byte LE body length][4-byte LE CRC-32C][body].
// The CRC covers the body only; a frame whose length is implausible or
// whose CRC mismatches ends replay — the standard torn-tail contract.
//
// Snapshot layout: snap-%016x.snap (hex WAL index it covers), an 8-byte
// magic, the covered index as a uvarint, a 4-byte LE CRC-32C of the
// payload, then the payload. Snapshots are written to a temp file, synced,
// and renamed into place, so a crash mid-save leaves the previous snapshot
// intact.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	segMagic  = []byte("WANWAL01")
	snapMagic = []byte("WANSNP01")
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

const (
	frameHeader = 8 // 4-byte length + 4-byte CRC
	// maxRecord bounds one WAL frame; anything larger in a header is
	// corruption, not an allocation request.
	maxRecord = 64 << 20
)

// DiskOptions tunes OpenDisk.
type DiskOptions struct {
	// SegmentSize is the rotation threshold in bytes (default 8 MiB).
	SegmentSize int64
	// NoFsync makes Commit flush to the OS without fsyncing: crash
	// recovery of the OS process is then best-effort, but an in-process
	// restart still sees every record. The "fsync=off" benchmark knob.
	NoFsync bool
}

// Disk is the file-backed Store. Under group commit it is shared
// between its owning lane (Append/Flush/Commit/Maintain) and the syncer
// goroutine (Sync): fmu guards the segment file handle against a
// rotation or Close racing an in-flight fsync, and the dirty flag and
// fsync counter are atomic. All other methods stay lane-confined.
type Disk struct {
	dir     string
	opts    DiskOptions
	fmu     sync.RWMutex // guards f (and closed) against Sync vs rotate/Close
	f       *os.File
	wbuf    []byte // pending (unflushed) encoded frames
	scratch []byte // per-record encode scratch
	next    uint64 // index of the next record to append
	segLen  int64  // bytes written to the current segment
	dirty   atomic.Bool
	fsyncs  atomic.Uint64
	closed  bool
}

var (
	_ Store     = (*Disk)(nil)
	_ SyncStore = (*Disk)(nil)
)

// OpenDisk opens (creating if needed) the store in dir. Existing segments
// are scanned to find the next record index; appends continue in a fresh
// segment so a torn tail from a previous incarnation can never be
// mid-segment ahead of new records.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	d := &Disk{dir: dir, opts: opts}
	segs, err := d.segments()
	if err != nil {
		return nil, err
	}
	d.next = 0
	if len(segs) > 0 {
		// A torn tail in the last incarnation's segment would otherwise
		// stop every future replay before the records this incarnation
		// appends: truncate the tear away now, while nothing depends on it.
		last := segs[len(segs)-1]
		path := filepath.Join(dir, segName(last))
		n, goodLen, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if goodLen < int64(len(segMagic)) {
			// Not even an intact header: the file would stop every replay.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("storage: %w", err)
			}
		} else if err := os.Truncate(path, goodLen); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		d.next = last + n
	}
	if err := d.openSegment(); err != nil {
		return nil, err
	}
	return d, nil
}

// Dir returns the store's directory.
func (d *Disk) Dir() string { return d.dir }

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

// segments returns the first indices of existing segments, ascending.
func (d *Disk) segments() ([]uint64, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var firsts []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		firsts = append(firsts, n)
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

func (d *Disk) openSegment() error {
	f, err := os.OpenFile(filepath.Join(d.dir, segName(d.next)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	// The directory entry must be durable too, or a power loss can drop
	// the whole segment no matter how often its CONTENT was fsynced.
	if err := d.syncDir(); err != nil {
		_ = f.Close()
		return err
	}
	d.f = f
	d.segLen = int64(len(segMagic))
	d.dirty.Store(true)
	return nil
}

// syncDir fsyncs the store directory (new files, renames). No-op under
// NoFsync.
func (d *Disk) syncDir() error {
	if d.opts.NoFsync {
		return nil
	}
	dir, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Append implements Store. The encode path reuses the store's scratch
// buffer and the record's wire codecs, so it allocates nothing in steady
// state.
func (d *Disk) Append(rec Record) error {
	if d.closed {
		return fmt.Errorf("storage: append to closed store")
	}
	body := rec.AppendTo(d.scratch[:0])
	d.scratch = body[:0]
	if len(body) > maxRecord {
		return fmt.Errorf("storage: record of %d bytes exceeds limit", len(body))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
	d.wbuf = append(d.wbuf, hdr[:]...)
	d.wbuf = append(d.wbuf, body...)
	d.next++
	// Flush opportunistically so wbuf stays small; durability still waits
	// for Commit.
	if len(d.wbuf) >= 256<<10 {
		if err := d.flush(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Disk) flush() error {
	if len(d.wbuf) == 0 {
		return nil
	}
	if _, err := d.f.Write(d.wbuf); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	d.segLen += int64(len(d.wbuf))
	d.wbuf = d.wbuf[:0]
	d.dirty.Store(true)
	return nil
}

// Flush implements SyncStore: push buffered appends to the OS without a
// durability barrier. Lane-side (same goroutine as Append).
func (d *Disk) Flush() error {
	if d.closed {
		return fmt.Errorf("storage: flush on closed store")
	}
	return d.flush()
}

// Sync implements SyncStore: fsync everything flushed so far. This is
// the one method the group-commit syncer calls from its own goroutine;
// it holds the file-handle lock so a concurrent rotation or Close cannot
// pull the file out from under the fsync. Flushes that complete before a
// barrier is staged are covered by construction (flush happens-before
// stage happens-before the syncer's drain happens-before this call).
func (d *Disk) Sync() error {
	d.fmu.RLock()
	defer d.fmu.RUnlock()
	if d.closed || !d.dirty.Swap(false) {
		return nil
	}
	if d.opts.NoFsync {
		return nil
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	d.fsyncs.Add(1)
	return nil
}

// Maintain implements SyncStore: rotate the segment if it outgrew the
// threshold. Lane-side, so rotation cannot race the lane's appends.
func (d *Disk) Maintain() error {
	if d.closed || d.segLen < d.opts.SegmentSize {
		return nil
	}
	return d.rotate()
}

// Fsyncs implements SyncStore.
func (d *Disk) Fsyncs() uint64 { return d.fsyncs.Load() }

// Commit implements Store: flush and (unless NoFsync) fsync, then rotate
// the segment if it outgrew the threshold.
func (d *Disk) Commit() error {
	if d.closed {
		return fmt.Errorf("storage: commit on closed store")
	}
	if err := d.flush(); err != nil {
		return err
	}
	if d.dirty.Load() && !d.opts.NoFsync {
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		d.fsyncs.Add(1)
	}
	d.dirty.Store(false)
	if d.segLen >= d.opts.SegmentSize {
		if err := d.rotate(); err != nil {
			return err
		}
	}
	return nil
}

func (d *Disk) rotate() error {
	// The whole swap runs under the file-handle lock: a group-commit Sync
	// in flight must finish against the old segment before it closes, and
	// must see the new handle afterwards.
	d.fmu.Lock()
	defer d.fmu.Unlock()
	if !d.opts.NoFsync {
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		d.fsyncs.Add(1)
	}
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return d.openSegment()
}

// SaveSnapshot implements Store.
func (d *Disk) SaveSnapshot(data []byte) error {
	if d.closed {
		return fmt.Errorf("storage: snapshot on closed store")
	}
	// The snapshot covers every record appended so far; make sure they are
	// all in their segments before pruning anything.
	if err := d.Commit(); err != nil {
		return err
	}
	upTo := d.next
	var buf []byte
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, upTo)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(data, crcTable))
	buf = append(buf, crc[:]...)
	buf = append(buf, data...)

	final := filepath.Join(d.dir, fmt.Sprintf("snap-%016x.snap", upTo))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := d.syncDir(); err != nil {
		return err
	}
	d.prune(upTo)
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// prune removes segments and snapshots a snapshot covering upTo makes
// obsolete: segments whose successor starts at or below upTo (their every
// record is below it) and all but the newest snapshot. Prune errors are
// ignored — stale files cost disk, not correctness.
func (d *Disk) prune(upTo uint64) {
	segs, err := d.segments()
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= upTo {
			_ = os.Remove(filepath.Join(d.dir, segName(segs[i])))
		}
	}
	snaps, _ := d.snapshots()
	for i := 0; i+1 < len(snaps); i++ {
		_ = os.Remove(filepath.Join(d.dir, snaps[i]))
	}
}

// snapshots returns snapshot file names, oldest first.
func (d *Disk) snapshots() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Load implements Store: newest intact snapshot wins; corrupt ones are
// skipped (an older snapshot plus a longer replay is still correct).
func (d *Disk) Load() ([]byte, uint64, error) {
	snaps, err := d.snapshots()
	if err != nil {
		return nil, 0, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, upTo, ok := readSnapshot(filepath.Join(d.dir, snaps[i]))
		if ok {
			return data, upTo, nil
		}
	}
	return nil, 0, nil
}

func readSnapshot(path string) (data []byte, upTo uint64, ok bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < len(snapMagic)+5 {
		return nil, 0, false
	}
	if string(raw[:len(snapMagic)]) != string(snapMagic) {
		return nil, 0, false
	}
	raw = raw[len(snapMagic):]
	upTo, n := binary.Uvarint(raw)
	if n <= 0 || len(raw[n:]) < 4 {
		return nil, 0, false
	}
	raw = raw[n:]
	want := binary.LittleEndian.Uint32(raw[:4])
	payload := raw[4:]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, 0, false
	}
	return payload, upTo, true
}

// Replay implements Store. Buffered appends are flushed first so an
// in-process restart replays everything it logged; a torn or corrupt tail
// ends the walk without error.
func (d *Disk) Replay(from uint64, fn func(rec Record) error) error {
	if !d.closed {
		if err := d.flush(); err != nil {
			return err
		}
	}
	segs, err := d.segments()
	if err != nil {
		return err
	}
	for _, first := range segs {
		stop, err := replaySegment(filepath.Join(d.dir, segName(first)), first, from, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// replaySegment walks one segment; it reports whether replay should stop
// (torn tail found — later segments, if any, predate the tear only when
// rotation raced a crash, and skipping them keeps the replayed prefix
// consistent).
func replaySegment(path string, first, from uint64, fn func(rec Record) error) (stop bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != string(segMagic) {
		return true, nil // unreadable segment: treat as torn
	}
	raw = raw[len(segMagic):]
	idx := first
	for len(raw) > 0 {
		if len(raw) < frameHeader {
			return true, nil
		}
		n := binary.LittleEndian.Uint32(raw[0:4])
		want := binary.LittleEndian.Uint32(raw[4:8])
		if n > maxRecord || int(n) > len(raw)-frameHeader {
			return true, nil
		}
		body := raw[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(body, crcTable) != want {
			return true, nil
		}
		if idx >= from {
			rec, rest, derr := DecodeRecord(body)
			if derr != nil || len(rest) != 0 {
				return true, nil // framed but unparseable: corrupt tail
			}
			if err := fn(rec); err != nil {
				return false, err
			}
		}
		idx++
		raw = raw[frameHeader+int(n):]
	}
	return false, nil
}

// Close implements Store.
func (d *Disk) Close() error {
	if d.closed {
		return nil
	}
	err := d.Commit()
	d.fmu.Lock()
	d.closed = true
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	d.fmu.Unlock()
	return err
}

// scanSegment returns how many intact records a segment holds and the
// byte length of that intact prefix (used on reopen to continue the index
// sequence and truncate any torn tail).
func scanSegment(path string) (n uint64, goodLen int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("storage: %w", err)
	}
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != string(segMagic) {
		return 0, 0, nil
	}
	off := len(segMagic)
	for len(raw)-off >= frameHeader {
		l := binary.LittleEndian.Uint32(raw[off : off+4])
		want := binary.LittleEndian.Uint32(raw[off+4 : off+8])
		if l > maxRecord || int(l) > len(raw)-off-frameHeader {
			break
		}
		if crc32.Checksum(raw[off+frameHeader:off+frameHeader+int(l)], crcTable) != want {
			break
		}
		n++
		off += frameHeader + int(l)
	}
	return n, int64(off), nil
}

var _ io.Closer = (*Disk)(nil)
