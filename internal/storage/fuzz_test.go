package storage

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment replay path as if a
// crash had left them on disk. The invariants: replay never panics, never
// errors on torn/corrupt input (it stops instead), and every record it
// does yield is well-formed — it re-encodes to exactly the body the frame
// carried, so replayed state can never be something the appenders could
// not have written (the property the §2.2 checkers rely on after a
// restart).
func FuzzWALReplay(f *testing.F) {
	// Seeds: an intact segment, a torn one, and raw noise.
	var intact []byte
	intact = append(intact, segMagic...)
	for _, rec := range testRecords() {
		body := rec.AppendTo(nil)
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))
		intact = append(intact, hdr[:]...)
		intact = append(intact, body...)
	}
	f.Add(intact)
	f.Add(intact[:len(intact)-3])
	f.Add([]byte("garbage that is not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(0))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		stopped, err := replaySegment(path, 0, 0, func(rec Record) error {
			got = append(got, rec)
			return nil
		})
		_ = stopped
		if err != nil {
			t.Fatalf("replay errored on fuzzed input: %v", err)
		}
		for _, rec := range got {
			if rec.Kind == KindInvalid {
				t.Fatalf("replay yielded an invalid record: %+v", rec)
			}
			// Round-trip: a yielded record must re-encode and re-decode to
			// itself — no half-parsed state can leak out of the log.
			buf := rec.AppendTo(nil)
			back, rest, derr := DecodeRecord(buf)
			if derr != nil || len(rest) != 0 {
				t.Fatalf("yielded record does not round-trip: %+v (%v)", rec, derr)
			}
			if !recordsEquivalent(back, rec) {
				t.Fatalf("yielded record re-decodes differently:\n got %+v\nwant %+v", back, rec)
			}
		}
		// Reopening the directory over the fuzzed segment must also be
		// safe: the torn tail is truncated and appends continue.
		d, err := OpenDisk(dir, DiskOptions{NoFsync: true})
		if err != nil {
			t.Fatalf("reopen over fuzzed segment: %v", err)
		}
		if err := d.Append(Record{Kind: KindDecide, Proto: "f", Inst: 1}); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// recordsEquivalent compares records after one decode cycle. NaN payloads
// (reachable via the float64 value kind) are unequal to themselves under
// DeepEqual, so compare the encodings instead.
func recordsEquivalent(a, b Record) bool {
	if reflect.DeepEqual(a, b) {
		return true
	}
	return string(a.AppendTo(nil)) == string(b.AppendTo(nil))
}
