// Group commit: the cross-lane fsync batcher behind the parallel
// ordering runtime.
//
// With per-group lanes, every lane hits its own durability barriers
// (Promise and Accept records must be fsynced before their replies).
// Issuing those fsyncs inline would serialise the lanes on the disk;
// instead each Log flushes its appends on its own lane and stages the
// barrier's continuation into a per-log SPSC ring, and ONE syncer
// goroutine per process drains every ring, issues one fsync per distinct
// dirty store for the whole window, and posts the parked continuations
// back to their owning lanes.
//
// Batching is natural, not timed: a window is simply everything staged
// while the previous fsync ran. An idle system pays no added latency (a
// lone barrier syncs immediately); a busy one amortises — eight lanes'
// promises in one window cost one fsync, not eight. The fsync-before-
// reply invariant is preserved by construction: a continuation is only
// posted after a Sync call that started after its records were flushed.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wanamcast/internal/ring"
	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// GroupCommitStats counts the syncer's work: Barriers staged, fsync
// Windows executed, and Syncs issued (one per distinct dirty store per
// window; ≤ Windows × stores, and Barriers/Windows is the batching
// factor).
type GroupCommitStats struct {
	Barriers uint64
	Windows  uint64
	Syncs    uint64
}

// GroupCommit is one process's cross-lane fsync batcher. Construct with
// NewGroupCommit, attach logs via Log.AttachGroupCommit, and Close after
// the lanes have stopped (and before their stores close: Close waits for
// the syncer, whose Sync calls must not race a store's Close).
type GroupCommit struct {
	mu     sync.Mutex
	queues []*gcQueue

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	barriers atomic.Uint64
	windows  atomic.Uint64
	syncs    atomic.Uint64

	tracer *trace.Tracer // nil = fsync sub-spans off
}

// SetTracer attaches the lifecycle tracer: every group-commit window then
// records a StageFsync sub-span carrying the window's fsync wall time, so
// consensus barrier waits can be attributed to the disk. Call before the
// producing lanes start.
func (g *GroupCommit) SetTracer(t *trace.Tracer) { g.tracer = t }

// NewGroupCommit starts a syncer and returns its handle.
func NewGroupCommit() *GroupCommit {
	g := &GroupCommit{
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// gcQueue is one log's staging queue: barriers are staged from the log's
// owning lane only (single producer) and drained by the syncer (single
// consumer), so a lock-free SPSC ring carries the steady state; when it
// fills, barriers park in an unbounded spill list — a durability barrier
// can never be dropped, and stage must never block the lane.
type gcQueue struct {
	g     *GroupCommit
	store SyncStore
	post  func(func())

	ring *ring.SPSC[func()]
	ovMu sync.Mutex
	ov   []func()
	ovOn atomic.Bool
}

// register adds a staging queue for store; continuations are handed back
// through post. Called by Log.AttachGroupCommit.
func (g *GroupCommit) register(store SyncStore, post func(func())) *gcQueue {
	q := &gcQueue{g: g, store: store, post: post, ring: ring.NewSPSC[func()](256)}
	g.mu.Lock()
	g.queues = append(g.queues, q)
	g.mu.Unlock()
	return q
}

// stage parks then until the next covering fsync. The caller must have
// flushed the records the barrier guards. Never blocks, never drops:
// once the ring is full (or a spill is already pending, to keep FIFO)
// barriers go to the spill list the syncer drains after the ring.
func (q *gcQueue) stage(then func()) {
	if q.ovOn.Load() || !q.ring.TryPush(then) {
		q.ovMu.Lock()
		q.ovOn.Store(true)
		q.ov = append(q.ov, then)
		q.ovMu.Unlock()
	}
	q.g.barriers.Add(1)
	select {
	case q.g.wake <- struct{}{}:
	default: // a wake is already pending
	}
}

// drain empties the queue in stage order. Syncer only.
func (q *gcQueue) drain(into []func()) []func() {
	for {
		fn, ok := q.ring.TryPop()
		if !ok {
			break
		}
		into = append(into, fn)
	}
	if q.ovOn.Load() {
		q.ovMu.Lock()
		batch := q.ov
		q.ov = nil
		if len(batch) == 0 {
			q.ovOn.Store(false) // spill empty: ring resumes carrying new stages
		}
		q.ovMu.Unlock()
		into = append(into, batch...)
	}
	return into
}

func (g *GroupCommit) run() {
	defer g.wg.Done()
	for {
		select {
		case <-g.wake:
		case <-g.done:
			g.round() // final sweep: no staged barrier may be lost
			return
		}
		for g.round() {
			// Keep sweeping until a round finds nothing: stages that raced
			// the previous round's fsync are the next window.
		}
	}
}

// round is one group-commit window: drain every queue, fsync each
// distinct dirty store once, then post the parked continuations (with
// the store's lane-side maintenance ahead of them). It reports whether
// any barrier was found.
func (g *GroupCommit) round() bool {
	g.mu.Lock()
	queues := g.queues
	g.mu.Unlock()
	type job struct {
		q     *gcQueue
		thens []func()
	}
	var jobs []job
	for _, q := range queues {
		if thens := q.drain(nil); len(thens) > 0 {
			jobs = append(jobs, job{q: q, thens: thens})
		}
	}
	if len(jobs) == 0 {
		return false
	}
	g.windows.Add(1)
	traced := g.tracer.Enabled()
	var syncStart time.Time
	if traced {
		syncStart = time.Now()
	}
	synced := make(map[SyncStore]bool, len(jobs))
	for _, j := range jobs {
		if synced[j.q.store] {
			continue
		}
		synced[j.q.store] = true
		if err := j.q.store.Sync(); err != nil {
			panic(fmt.Sprintf("storage: group-commit fsync failed, cannot continue without durability: %v", err))
		}
		g.syncs.Add(1)
	}
	if traced {
		g.tracer.Record(0, trace.StageFsync, types.MessageID{}, 0, time.Since(syncStart).Nanoseconds())
	}
	for _, j := range jobs {
		store, thens := j.q.store, j.thens
		j.q.post(func() {
			// Rotation (and any other file juggling) stays on the owning
			// lane, where it cannot race the lane's appends.
			if err := store.Maintain(); err != nil {
				panic(fmt.Sprintf("storage: post-sync maintenance failed: %v", err))
			}
			for _, fn := range thens {
				if fn != nil {
					fn()
				}
			}
		})
	}
	return true
}

// Stats returns the syncer's counters so far.
func (g *GroupCommit) Stats() GroupCommitStats {
	return GroupCommitStats{
		Barriers: g.barriers.Load(),
		Windows:  g.windows.Load(),
		Syncs:    g.syncs.Load(),
	}
}

// Close performs a final sweep and stops the syncer. Idempotent. Call
// after the producing lanes have stopped and before the stores close.
func (g *GroupCommit) Close() {
	g.once.Do(func() { close(g.done) })
	g.wg.Wait()
}
