package storage

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedStore wraps Mem with a controllable Sync gate so tests can hold
// the group-commit fsync mid-flight and assert nothing staged behind it
// leaks out early.
type gatedStore struct {
	Mem
	gate    chan struct{} // each Sync receives once before completing
	syncing chan struct{} // signals a Sync has started
}

func newGatedStore() *gatedStore {
	return &gatedStore{
		gate:    make(chan struct{}),
		syncing: make(chan struct{}, 16),
	}
}

func (g *gatedStore) Sync() error {
	g.syncing <- struct{}{}
	<-g.gate
	return g.Mem.Sync()
}

// directPost runs continuations synchronously on the syncer goroutine —
// fine for tests that only flip flags.
func directPost(fn func()) { fn() }

// TestGroupCommitParksUntilFsync forces the interleaving the durability
// invariant is about: a barrier staged while no fsync is running must
// not fire its continuation until the covering Sync completes.
func TestGroupCommitParksUntilFsync(t *testing.T) {
	g := NewGroupCommit()
	store := newGatedStore()
	log := NewLog(store)
	log.AttachGroupCommit(g, directPost)

	var sent atomic.Bool
	log.Append(Record{Kind: KindPromise, Proto: "test", Inst: 1, Ballot: 1})
	log.CommitThen(func() { sent.Store(true) })

	// The syncer is now inside Sync, blocked on the gate.
	<-store.syncing
	time.Sleep(10 * time.Millisecond)
	if sent.Load() {
		t.Fatal("continuation ran before its record's fsync completed")
	}

	// A second barrier staged mid-fsync must wait for the NEXT window.
	var sent2 atomic.Bool
	log.Append(Record{Kind: KindAccept, Proto: "test", Inst: 1, Ballot: 1})
	log.CommitThen(func() { sent2.Store(true) })
	time.Sleep(10 * time.Millisecond)
	if sent2.Load() {
		t.Fatal("second continuation ran while the first fsync was still in flight")
	}

	store.gate <- struct{}{} // release the first fsync
	waitTrue(t, &sent, "first continuation after its fsync")
	if s := g.Stats(); s.Windows < 1 {
		t.Fatalf("no window recorded: %+v", s)
	}

	<-store.syncing // the syncer starts the second window on its own
	store.gate <- struct{}{}
	waitTrue(t, &sent2, "second continuation after the next fsync")

	close(store.gate) // let any further Sync pass
	g.Close()
	if s := g.Stats(); s.Barriers != 2 {
		t.Fatalf("barriers = %d, want 2 (stats %+v)", s.Barriers, s)
	}
}

func waitTrue(t *testing.T, flag *atomic.Bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !flag.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitBatchesBarriers stages many barriers from several
// producer "lanes" while the first fsync is held open, then checks one
// window's fsync covered all of them: syncs per store ≪ barriers.
func TestGroupCommitBatchesBarriers(t *testing.T) {
	g := NewGroupCommit()
	store := newGatedStore()
	log := NewLog(store)
	var postMu sync.Mutex
	var posted []func()
	log.AttachGroupCommit(g, func(fn func()) {
		postMu.Lock()
		posted = append(posted, fn)
		postMu.Unlock()
	})

	// First barrier opens a window and parks inside Sync…
	var done atomic.Int64
	log.Append(Record{Kind: KindPromise, Proto: "t", Inst: 0, Ballot: 1})
	log.CommitThen(func() { done.Add(1) })
	<-store.syncing

	// …while 99 more barriers pile up behind it (spilling past the SPSC
	// ring is part of what this exercises — park, never drop).
	const extra = 512
	for i := 1; i <= extra; i++ {
		log.Append(Record{Kind: KindPromise, Proto: "t", Inst: uint64(i), Ballot: 1})
		log.CommitThen(func() { done.Add(1) })
	}
	store.gate <- struct{}{} // finish window 1
	<-store.syncing          // window 2 holds everything staged meanwhile
	store.gate <- struct{}{}
	close(store.gate)
	g.Close()

	postMu.Lock()
	for _, fn := range posted {
		fn()
	}
	postMu.Unlock()
	if got := done.Load(); got != extra+1 {
		t.Fatalf("continuations ran = %d, want %d", got, extra+1)
	}
	s := g.Stats()
	if s.Barriers != extra+1 {
		t.Fatalf("barriers = %d, want %d", s.Barriers, extra+1)
	}
	if s.Syncs > 4 {
		t.Fatalf("syncs = %d for %d barriers: batching is not happening (stats %+v)", s.Syncs, extra+1, s)
	}
}

// TestCommitThenWithoutAttachment pins the degraded paths: nil log and
// unattached log both run the continuation synchronously (historical
// behavior).
func TestCommitThenWithoutAttachment(t *testing.T) {
	ran := false
	var nilLog *Log
	nilLog.CommitThen(func() { ran = true })
	if !ran {
		t.Fatal("nil log did not run continuation synchronously")
	}

	store := NewMem()
	log := NewLog(store)
	log.Append(Record{Kind: KindPromise, Proto: "t", Inst: 0, Ballot: 1})
	ran = false
	log.CommitThen(func() { ran = true })
	if !ran {
		t.Fatal("unattached log did not run continuation synchronously")
	}
}

// TestDiskSyncStore exercises the split barrier on the real WAL: Flush
// makes records visible to an in-process replay, Sync makes them durable
// and counts fsyncs, Maintain rotates once the segment outgrows its
// threshold.
func TestDiskSyncStore(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Append(Record{Kind: KindPromise, Proto: "t", Inst: uint64(i), Ballot: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	before := d.Fsyncs()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Fsyncs() != before+1 {
		t.Fatalf("fsyncs = %d, want %d", d.Fsyncs(), before+1)
	}
	// Nothing dirty: Sync must be free.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Fsyncs() != before+1 {
		t.Fatalf("clean Sync issued an fsync (count %d)", d.Fsyncs())
	}

	// Outgrow the 1 KiB segment, then Maintain must rotate.
	big := make([]byte, 600)
	for i := 0; i < 3; i++ {
		if err := d.Append(Record{Kind: KindAccept, Proto: "t", Inst: uint64(10 + i), Ballot: 1, Value: big}); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := d.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := d.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation after outgrowing the segment: %d segments", len(segs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything synced must replay after reopening.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var n int
	if err := d2.Replay(0, func(rec Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("replayed %d records, want 7", n)
	}
}

// TestGroupCommitConcurrentLanes runs a lane staging barriers flat-out
// against the free-running syncer — under -race this is the
// configuration that proves the Flush (lane) / Sync (syncer) split on
// the real WAL is sound.
func TestGroupCommitConcurrentLanes(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{NoFsync: true}) // exercise the concurrency, not the disk
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommit()
	log := NewLog(d)
	var mu sync.Mutex
	var posted []func()
	log.AttachGroupCommit(g, func(fn func()) {
		mu.Lock()
		posted = append(posted, fn)
		mu.Unlock()
	})
	var ran atomic.Int64
	const total = 2000
	for i := 0; i < total; i++ {
		log.Append(Record{Kind: KindPromise, Proto: "t", Inst: uint64(i), Ballot: 1})
		log.CommitThen(func() { ran.Add(1) })
		if i%64 == 0 {
			// Drain the posted continuations on the "lane" like the runtime
			// would, interleaved with fresh stages.
			mu.Lock()
			batch := posted
			posted = nil
			mu.Unlock()
			for _, fn := range batch {
				fn()
			}
		}
	}
	g.Close()
	mu.Lock()
	batch := posted
	posted = nil
	mu.Unlock()
	for _, fn := range batch {
		fn()
	}
	if got := ran.Load(); got != total {
		t.Fatalf("continuations ran = %d, want %d", got, total)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
