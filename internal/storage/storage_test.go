package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wanamcast/internal/types"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindPromise, Proto: "a1.cons", Inst: 3, Ballot: 7},
		{Kind: KindAccept, Proto: "a1.cons", Inst: 3, Ballot: 7, Value: "batch"},
		{Kind: KindDecide, Proto: "a2.cons", Inst: 9, Value: int64(42)},
		{Kind: KindTSProp, Proto: "a1", Inst: 12, Aux: 2,
			ID: types.MessageID{Origin: 4, Seq: 9}, Dest: types.NewGroupSet(0, 2)},
		{Kind: KindDeliver, Proto: "a1", Inst: 5,
			ID: types.MessageID{Origin: 1, Seq: 2}, Dest: types.NewGroupSet(1), Value: []byte{1, 2, 3}},
		{Kind: KindRound, Proto: "a2", Inst: 4, Value: nil},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		buf := rec.AppendTo(nil)
		got, rest, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %+v left %d bytes", rec, len(rest))
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
		}
	}
}

func TestDiskAppendReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, rec := range want {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := d.Replay(0, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Partial replay honors the start index.
	got = nil
	if err := d.Replay(4, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[4:]) {
		t.Fatalf("partial replay mismatch: got %+v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskReopenContinues(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs[:3] {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, rec := range recs[3:] {
		if err := d2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := d2.Commit(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := d2.Replay(0, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("reopen replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tail: chop bytes off the single segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	raw, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[len(segs)-1], raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// The last record is gone; a fresh append continues past the tear and
	// replays after it.
	extra := Record{Kind: KindDecide, Proto: "x", Inst: 99}
	if err := d2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := d2.Commit(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := d2.Replay(0, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), recs[:len(recs)-1]...), extra)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-tear replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDiskSnapshotPrunesAndLoads(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentSize: 64}) // rotate aggressively
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := d.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	blob := []byte("snapshot-state")
	if err := d.SaveSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	// Everything before the snapshot must be pruned to (at most) one
	// trailing segment; replay from the snapshot index yields nothing.
	snap, from, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != string(blob) {
		t.Fatalf("snapshot payload mismatch: %q", snap)
	}
	if from != uint64(len(recs)) {
		t.Fatalf("replayFrom = %d, want %d", from, len(recs))
	}
	var got []Record
	if err := d.Replay(from, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("replay after snapshot returned %d records", len(got))
	}
	// Records after the snapshot replay normally, across a reopen.
	extra := Record{Kind: KindPromise, Proto: "y", Inst: 1, Ballot: 2}
	if err := d.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, from, err = d2.Load()
	if err != nil || string(snap) != string(blob) {
		t.Fatalf("reopened load: %q, %v", snap, err)
	}
	got = nil
	if err := d2.Replay(from, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Record{extra}) {
		t.Fatalf("post-snapshot replay mismatch: %+v", got)
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	recs := testRecords()
	for _, rec := range recs[:4] {
		if err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[4:] {
		if err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	snap, from, err := m.Load()
	if err != nil || string(snap) != "s" || from != 4 {
		t.Fatalf("load: %q %d %v", snap, from, err)
	}
	var got []Record
	if err := m.Replay(from, func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[4:]) {
		t.Fatalf("mem replay mismatch: %+v", got)
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Append(Record{Kind: KindDecide, Proto: "x"})
	l.Commit()
	if l.Enabled() {
		t.Fatal("nil log reports enabled")
	}
	if NewLog(nil) != nil {
		t.Fatal("NewLog(nil) should be nil")
	}
}

func TestSections(t *testing.T) {
	var buf []byte
	buf = AppendSection(buf, "a1", []byte("alpha"))
	buf = AppendSection(buf, "a2", nil)
	buf = AppendSection(buf, "svc", []byte{1, 2})
	secs, err := Sections(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 3 || secs[0].Name != "a1" || string(secs[0].Data) != "alpha" ||
		secs[1].Name != "a2" || len(secs[1].Data) != 0 ||
		secs[2].Name != "svc" || len(secs[2].Data) != 2 {
		t.Fatalf("sections mismatch: %+v", secs)
	}
	if _, err := Sections([]byte{250, 250}); err == nil {
		t.Fatal("corrupt sections must error")
	}
}
