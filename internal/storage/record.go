// WAL record encoding. A Record is the unit every durable layer appends:
// a kind byte, the owning protocol's wire label, a handful of numeric
// fields whose meaning is kind-specific, and an optional value encoded
// through the internal/wire codec registry — so batched consensus values
// ([]amcast.Descriptor, []abcast.Record) and service commands reuse their
// zero-allocation encoders on the log path exactly as they do on the
// network path.
package storage

import (
	"fmt"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// Kind identifies what a WAL record means to its owning protocol.
type Kind byte

const (
	// KindInvalid is never written; a zero kind in a log is corruption.
	KindInvalid Kind = 0

	// KindPromise is a Paxos acceptor promise: Proto names the consensus
	// engine, Inst the instance, Ballot the promised ballot. Persisted
	// (and synced) BEFORE the Promise reply leaves the process.
	KindPromise Kind = 1
	// KindAccept is a Paxos acceptor vote: Inst, Ballot, and the accepted
	// Value. Persisted (and synced) BEFORE the Accepted reply leaves.
	KindAccept Kind = 2
	// KindDecide is a learned decision: Inst and the decided Value. It is
	// appended before the decision's effects run but not synced — a lost
	// tail decision is group-durable and recoverable from live peers.
	KindDecide Kind = 3
	// KindTSProp is an A1 (TS, m) receipt: Aux carries the proposing
	// group, Inst the proposed timestamp, and Value the full descriptor
	// (so replay can re-admit a message introduced only by the proposal).
	KindTSProp Kind = 4
	// KindBundle is an A2 remote-bundle receipt: Inst is the round, Aux
	// the sender group, Value the []Record bundle.
	KindBundle Kind = 5
	// KindDeliver is a delivery adopted from a peer during post-restart
	// state transfer (A1): ID/Dest identify the message, Inst its final
	// timestamp, Value the payload.
	KindDeliver Kind = 6
	// KindRound is a completed round adopted from a peer during
	// post-restart state transfer (A2): Inst is the round, Value the
	// delivered []Record union.
	KindRound Kind = 7
	// KindAdmit is an A1 reliable-multicast receipt — a message's FIRST
	// admission to PENDING: ID/Dest identify the message, Value carries
	// the payload. Unlogged admissions would let WAL replay reconstruct a
	// smaller PENDING set than the pre-crash one, weakening the
	// ADeliveryTest barrier and over-delivering out of group order.
	// Appended unsynced: a lost tail admission is as if the rmcast never
	// arrived — the (TS, m) path or the restart state transfer re-supplies
	// the message.
	KindAdmit Kind = 8
)

// Record is one durable event. Field meaning is kind-specific; unused
// fields stay zero and cost one byte each on disk.
type Record struct {
	Kind   Kind
	Proto  string // owning protocol label, e.g. "a1", "a1.cons"
	Inst   uint64 // instance / round / timestamp
	Ballot int64  // Paxos ballot (KindPromise, KindAccept)
	Aux    uint64 // auxiliary small field (sender group, ...)
	ID     types.MessageID
	Dest   types.GroupSet
	Value  any // wire-encodable payload; nil allowed
}

// AppendTo appends rec's body (without framing) to buf. It allocates
// nothing for records whose Value has a registered wire codec.
func (rec Record) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = wire.AppendString(buf, rec.Proto)
	buf = wire.AppendUvarint(buf, rec.Inst)
	buf = wire.AppendVarint(buf, rec.Ballot)
	buf = wire.AppendUvarint(buf, rec.Aux)
	buf = rec.ID.AppendTo(buf)
	buf = rec.Dest.AppendTo(buf)
	return wire.AppendValue(buf, rec.Value)
}

// DecodeRecord decodes one record body and returns the remainder. It never
// panics on malformed input.
func DecodeRecord(data []byte) (rec Record, rest []byte, err error) {
	if len(data) == 0 {
		return rec, nil, fmt.Errorf("%w: empty record", wire.ErrCorrupt)
	}
	rec.Kind, data = Kind(data[0]), data[1:]
	if rec.Kind == KindInvalid {
		return rec, nil, fmt.Errorf("%w: zero record kind", wire.ErrCorrupt)
	}
	var proto []byte
	if proto, data, err = wire.Bytes(data); err != nil {
		return rec, nil, err
	}
	rec.Proto = wire.Intern(proto)
	if rec.Inst, data, err = wire.Uvarint(data); err != nil {
		return rec, nil, err
	}
	if rec.Ballot, data, err = wire.Varint(data); err != nil {
		return rec, nil, err
	}
	if rec.Aux, data, err = wire.Uvarint(data); err != nil {
		return rec, nil, err
	}
	if rec.ID, data, err = types.DecodeMessageID(data); err != nil {
		return rec, nil, err
	}
	if rec.Dest, data, err = types.DecodeGroupSet(data); err != nil {
		return rec, nil, err
	}
	rec.Value, data, err = wire.DecodeValue(data)
	return rec, data, err
}
