package storage

import (
	"testing"

	"wanamcast/internal/types"
)

// walRecord builds the hot-path record shape: an acceptor vote carrying a
// whole ordering batch as its value (the per-batch durability unit).
func walRecord(value any) Record {
	return Record{
		Kind:   KindAccept,
		Proto:  "a1.cons",
		Inst:   12345,
		Ballot: 3,
		ID:     types.MessageID{Origin: 4, Seq: 77},
		Dest:   types.NewGroupSet(0, 1),
		Value:  value,
	}
}

// TestWALAppendZeroAllocs pins the acceptance bar: appending a WAL record
// (including its CRC framing) allocates nothing once the store's buffers
// are warm — the same guarantee TestWireAllocsBeatGob pins for the
// network encode path, which the log path reuses.
func TestWALAppendZeroAllocs(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{NoFsync: true, SegmentSize: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := walRecord("payload-string") // a registered scalar kind: no gob
	// Warm the scratch and write buffers past what the measured runs will
	// need, so buffer growth cannot masquerade as per-record allocation.
	for i := 0; i < 512; i++ {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WAL append allocates %.1f objects/record, want 0", allocs)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		noFsync bool
		commit  bool
	}{
		{"append-only", true, false},
		{"commit-nofsync", true, true},
		{"commit-fsync", false, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d, err := OpenDisk(b.TempDir(), DiskOptions{NoFsync: cfg.noFsync})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			rec := walRecord("payload-string")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Append(rec); err != nil {
					b.Fatal(err)
				}
				if cfg.commit {
					if err := d.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
