package consensus

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// These tests audit consensus safety and liveness under failure-detector
// mistakes: a falsely suspected leader is demoted mid-instance, the next
// rank takes over with a higher ballot while the old leader's ballot-0
// messages are still in flight, trust is restored and the old leader
// re-drives — ballots race, but Paxos's promise/accept guards must keep
// decisions unique and the retry timer must still converge on a decision.

// flap schedules a Suspect/Unsuspect pair of p at the given virtual times.
func (r *rig) flap(p types.ProcessID, suspectAt, restoreAt time.Duration) {
	r.rt.Scheduler().At(suspectAt, func() { r.rt.Oracle().Suspect(p) })
	r.rt.Scheduler().At(restoreAt, func() { r.rt.Oracle().Unsuspect(p) })
}

// TestFalseSuspicionMidInstance: the leader is demoted after the proposal
// reaches it but (possibly) before its ballot completes; rank 1 drives a
// higher ballot concurrently with the in-flight ballot-0 messages; then
// trust is restored and rank 0 re-drives. Exactly one value may be
// decided (the rig errors on double decisions), all processes must agree,
// and the instance must terminate.
func TestFalseSuspicionMidInstance(t *testing.T) {
	// The suspicion instants sweep across the whole ballot-0 round trip
	// (intra-group delay is 1 ms), so some seed demotes the leader before
	// the Accepts leave, some mid-flight, some after the quorum formed.
	for us := 200; us <= 3000; us += 400 {
		us := us
		t.Run(fmt.Sprintf("suspectAt=%dus", us), func(t *testing.T) {
			r := newRig(t, 3)
			r.cons[2].Propose(1, "v-from-p2")
			r.flap(0, time.Duration(us)*time.Microsecond, 10*time.Millisecond)
			r.rt.Scheduler().MaxSteps = 1_000_000
			r.rt.Run()
			want, ok := r.decs[0][1]
			if !ok {
				t.Fatal("instance 1 never decided at p0 despite trust restoration")
			}
			for i := 0; i < 3; i++ {
				got, ok := r.decs[i][1]
				if !ok {
					t.Fatalf("p%d never decided", i)
				}
				if got != want {
					t.Fatalf("disagreement under false suspicion: p0=%v p%d=%v", want, i, got)
				}
			}
			if want != "v-from-p2" {
				t.Fatalf("decided %v, not the only proposal", want)
			}
		})
	}
}

// TestLeaderFlapStorm: rank 0 flaps three times while 20 instances from
// every member are in flight — old and new leaders race ballots across
// many instances at once. Safety (unique, agreed decisions) and
// termination must survive.
func TestLeaderFlapStorm(t *testing.T) {
	for seed := 0; seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newRig(t, 3)
			for k := uint64(1); k <= 20; k++ {
				k := k
				proposer := int(k) % 3
				at := time.Duration(k) * 700 * time.Microsecond
				r.rt.Scheduler().At(at, func() {
					r.cons[proposer].Propose(k, fmt.Sprintf("v%d", k))
				})
			}
			// Three flaps spread across the proposal window; offsets vary
			// with the seed so the races land differently.
			off := time.Duration(seed) * 300 * time.Microsecond
			r.flap(0, 1*time.Millisecond+off, 3*time.Millisecond+off)
			r.flap(0, 5*time.Millisecond+off, 7*time.Millisecond+off)
			r.flap(0, 9*time.Millisecond+off, 11*time.Millisecond+off)
			r.rt.Scheduler().MaxSteps = 5_000_000
			r.rt.Run()
			for k := uint64(1); k <= 20; k++ {
				want, ok := r.decs[0][k]
				if !ok {
					t.Fatalf("instance %d never decided at p0", k)
				}
				for i := 1; i < 3; i++ {
					if got := r.decs[i][k]; got != want {
						t.Fatalf("instance %d: p0=%v p%d=%v", k, want, i, got)
					}
				}
			}
		})
	}
}

// TestDemotedAndReelectedLeaderSequence pins the Ω side of the flap: the
// rank-0 leader is demoted by a false suspicion and provably re-elected
// after trust restoration, and the pending proposal decides either way.
func TestDemotedAndReelectedLeaderSequence(t *testing.T) {
	r := newRig(t, 3)
	var leaders []types.ProcessID
	r.rt.Oracle().Subscribe(func(_ types.GroupID, l types.ProcessID) {
		leaders = append(leaders, l)
	})
	r.cons[1].Propose(1, "survives-the-flap")
	r.flap(0, 500*time.Microsecond, 5*time.Millisecond)
	r.rt.Scheduler().MaxSteps = 1_000_000
	r.rt.Run()
	if len(leaders) != 2 || leaders[0] != 1 || leaders[1] != 0 {
		t.Fatalf("leader sequence = %v, want demotion to p1 then re-election of p0", leaders)
	}
	if r.rt.Oracle().Leader(0) != 0 {
		t.Fatalf("final leader = %v, want the re-elected p0", r.rt.Oracle().Leader(0))
	}
	for i := 0; i < 3; i++ {
		if got := r.decs[i][1]; got != "survives-the-flap" {
			t.Fatalf("p%d decided %v", i, got)
		}
	}
}

// TestSuspicionOfNonLeaderHarmless: falsely suspecting a non-leader must
// not disturb a running instance at all.
func TestSuspicionOfNonLeaderHarmless(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "steady")
	r.flap(2, 300*time.Microsecond, 2*time.Millisecond)
	r.rt.Scheduler().MaxSteps = 1_000_000
	r.rt.Run()
	for i := 0; i < 3; i++ {
		if got := r.decs[i][1]; got != "steady" {
			t.Fatalf("p%d decided %v", i, got)
		}
	}
}
