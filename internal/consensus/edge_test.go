package consensus

import (
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// TestCatchUpViaPrepare: a new leader Preparing an instance that some
// acceptor already knows decided gets the decision straight back.
func TestCatchUpViaPrepare(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "v")
	r.rt.Run() // decided everywhere
	// Force p1 to lead instance 1 afresh (as if it had missed the
	// decision): feed it a Prepare-triggering proposal path by having it
	// drive after a (simulated) leader change.
	r.rt.Crash(0)
	r.rt.Run() // suspicion propagates
	// A late proposal at p2 routes to the new leader p1, which already
	// decided: the catch-up reply path answers immediately.
	r.cons[2].Propose(1, "late")
	r.rt.Run()
	if v, ok := r.cons[2].Decided(1); !ok || v != "v" {
		t.Fatalf("late proposer after leader change got %v ok=%v", v, ok)
	}
}

// TestSuccessiveLeaderCrashes: the rank-0 leader dies at once and the
// rank-1 leader dies mid-phase-1; rank 2 takes over with a yet higher
// ballot, exercising nextBallot's skip-past-maxSeen loop and the
// stale-Prepare rejection at acceptors that promised the dead leader's
// ballot. A majority (3 of 5) survives, so the instance must decide.
func TestSuccessiveLeaderCrashes(t *testing.T) {
	topo := types.NewTopology(1, 5)
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	var cons []*Consensus
	decs := make([]map[uint64]Value, 5)
	for i := 0; i < 5; i++ {
		i := i
		decs[i] = make(map[uint64]Value)
		c := New(Config{
			API:      rt.Proc(types.ProcessID(i)),
			Detector: rt.Oracle(),
			OnDecide: func(k uint64, v Value) { decs[i][k] = v },
		})
		rt.Proc(types.ProcessID(i)).Register(c)
		cons = append(cons, c)
	}
	rt.Start()
	rt.Crash(0)
	cons[1].Propose(1, "from-1")
	cons[2].Propose(1, "from-2")
	// p1 becomes leader when p0's suspicion lands (~20ms) and starts
	// phase 1; kill it just after its Prepares go out.
	rt.CrashAt(1, 21*time.Millisecond)
	rt.Run()
	for _, i := range []int{2, 3, 4} {
		v, ok := decs[i][1]
		if !ok {
			t.Fatalf("p%d never decided after successive leader crashes", i)
		}
		if v != decs[2][1] {
			t.Fatalf("disagreement: %v vs %v", v, decs[2][1])
		}
	}
}

// TestRetryTimerRefreshesBallot: a leader whose instance stalls past the
// retry period restarts with a fresh ballot and still decides.
func TestRetryTimerRefreshesBallot(t *testing.T) {
	topo := types.NewTopology(1, 3)
	// Make intra-group delay longer than the retry interval so the first
	// retry fires while phase messages are still in flight.
	rt := node.NewRuntime(topo, network.Model{IntraGroup: 30 * time.Millisecond}, 1, nil)
	decs := make([]map[uint64]Value, 3)
	var cons []*Consensus
	for i := 0; i < 3; i++ {
		i := i
		decs[i] = make(map[uint64]Value)
		c := New(Config{
			API:           rt.Proc(types.ProcessID(i)),
			Detector:      rt.Oracle(),
			RetryInterval: 20 * time.Millisecond,
			OnDecide:      func(k uint64, v Value) { decs[i][k] = v },
		})
		rt.Proc(types.ProcessID(i)).Register(c)
		cons = append(cons, c)
	}
	rt.Start()
	cons[0].Propose(1, "slow")
	cons[1].Propose(1, "other")
	rt.Scheduler().MaxSteps = 500_000
	rt.Run()
	for i := 0; i < 3; i++ {
		if decs[i][1] == nil {
			t.Fatalf("p%d never decided under aggressive retries", i)
		}
		if decs[i][1] != decs[0][1] {
			t.Fatalf("disagreement under retries: %v vs %v", decs[i][1], decs[0][1])
		}
	}
}

// TestUnexpectedMessagePanics: the dispatch guards against foreign bodies.
func TestUnexpectedMessagePanics(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unexpected message type")
		}
	}()
	r.cons[0].Receive(0, "garbage")
}
