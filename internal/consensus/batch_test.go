package consensus

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// testItem is a minimal batch element.
type testItem struct {
	ID types.MessageID
	V  int
}

func (it testItem) ItemID() types.MessageID { return it.ID }

func mid(seq uint64) types.MessageID { return types.MessageID{Origin: 0, Seq: seq} }

// fakeAPI satisfies node.API without a runtime: sends are recorded, timers
// are captured (never fired), and the clock stands still. Enough for
// white-box Batcher tests that drive decisions by hand.
type fakeAPI struct {
	topo    *types.Topology
	self    types.ProcessID
	sends   []string
	timers  []func()
	batches []int
}

func (f *fakeAPI) Self() types.ProcessID { return f.self }
func (f *fakeAPI) Group() types.GroupID  { return f.topo.GroupOf(f.self) }
func (f *fakeAPI) Topo() *types.Topology { return f.topo }
func (f *fakeAPI) Now() time.Duration    { return 0 }
func (f *fakeAPI) Clock() int64          { return 0 }
func (f *fakeAPI) Crashed() bool         { return false }
func (f *fakeAPI) Send(to types.ProcessID, proto string, body any) {
	f.sends = append(f.sends, fmt.Sprintf("%v/%s/%T", to, proto, body))
}
func (f *fakeAPI) Multicast(tos []types.ProcessID, proto string, body any) {
	for _, q := range tos {
		f.Send(q, proto, body)
	}
}
func (f *fakeAPI) After(d time.Duration, fn func())          { f.timers = append(f.timers, fn) }
func (f *fakeAPI) RecordCast(types.MessageID)                {}
func (f *fakeAPI) RecordDeliver(types.MessageID)             {}
func (f *fakeAPI) RecordConsensus()                          {}
func (f *fakeAPI) RecordBatch(size int)                      { f.batches = append(f.batches, size) }
func (f *fakeAPI) Tracef(string, ...any)                     {}
func (f *fakeAPI) Trace(trace.Stage, types.MessageID, int64) {}
func (f *fakeAPI) Tracing() bool                             { return false }

// fakeDet is an Ω stub whose leader never changes.
type fakeDet struct{ leader types.ProcessID }

func (d fakeDet) Leader(types.GroupID) types.ProcessID           { return d.leader }
func (d fakeDet) Subscribe(func(types.GroupID, types.ProcessID)) {}

// batchRig is one Batcher over a scripted queue of proposable items.
type batchRig struct {
	api     *fakeAPI
	b       *Batcher[testItem]
	queue   []testItem
	applied [][]testItem
	applyIn []uint64
	decided []uint64
}

func newBatchRig(maxBatch, pipeline int) *batchRig {
	r := &batchRig{api: &fakeAPI{topo: types.NewTopology(1, 3), self: 0}}
	r.b = NewBatcher(BatcherConfig[testItem]{
		API:      r.api,
		Detector: fakeDet{leader: 0},
		MaxBatch: maxBatch,
		Pipeline: pipeline,
		Fill: func(exclude func(types.MessageID) bool, limit int) []testItem {
			var out []testItem
			for _, it := range r.queue {
				if exclude(it.ID) {
					continue
				}
				out = append(out, it)
				if limit > 0 && len(out) == limit {
					break
				}
			}
			return out
		},
		OnDecide: func(inst uint64, batch []testItem) { r.decided = append(r.decided, inst) },
		OnApply: func(inst uint64, batch []testItem) {
			r.applyIn = append(r.applyIn, inst)
			r.applied = append(r.applied, batch)
			// Applied items leave the queue (the client's bookkeeping).
			keep := r.queue[:0]
			for _, it := range r.queue {
				inBatch := false
				for _, d := range batch {
					if d.ID == it.ID {
						inBatch = true
					}
				}
				if !inBatch {
					keep = append(keep, it)
				}
			}
			r.queue = keep
		},
	})
	return r
}

func (r *batchRig) enqueue(n int) {
	for i := 0; i < n; i++ {
		r.queue = append(r.queue, testItem{ID: mid(uint64(len(r.queue) + 1))})
	}
}

// TestBatcherWindowAndCap: with Pipeline=2 and MaxBatch=2, five items fill
// exactly two instances of two items; the fifth waits for the window.
func TestBatcherWindowAndCap(t *testing.T) {
	r := newBatchRig(2, 2)
	r.enqueue(5)
	r.b.Pump()
	if got := r.b.NextInstance(); got != 3 {
		t.Fatalf("NextInstance = %d, want 3 (two instances proposed)", got)
	}
	for i := 1; i <= 4; i++ {
		if !r.b.InFlight(mid(uint64(i))) {
			t.Errorf("item %d should be in flight", i)
		}
	}
	if r.b.InFlight(mid(5)) {
		t.Error("item 5 should wait for the window")
	}
	// Deciding instance 1 applies it, reopens the window, and proposes the
	// fifth item in instance 3.
	r.b.decided(1, []testItem{{ID: mid(1)}, {ID: mid(2)}})
	if got := r.b.NextInstance(); got != 4 {
		t.Fatalf("NextInstance = %d after apply, want 4", got)
	}
	if !r.b.InFlight(mid(5)) {
		t.Error("item 5 should now be in flight")
	}
}

// TestBatcherOutOfOrderApply: decisions arriving as 3,1,2 must fire
// OnDecide in that order but OnApply strictly as 1,2,3.
func TestBatcherOutOfOrderApply(t *testing.T) {
	r := newBatchRig(1, 3)
	r.enqueue(3)
	r.b.Pump()
	if got := r.b.NextInstance(); got != 4 {
		t.Fatalf("NextInstance = %d, want 4 (three in flight)", got)
	}
	r.b.decided(3, []testItem{{ID: mid(3)}})
	r.b.decided(1, []testItem{{ID: mid(1)}})
	r.b.decided(2, []testItem{{ID: mid(2)}})
	wantDec := []uint64{3, 1, 2}
	wantApp := []uint64{1, 2, 3}
	for i, w := range wantDec {
		if r.decided[i] != w {
			t.Fatalf("OnDecide order = %v, want %v", r.decided, wantDec)
		}
	}
	for i, w := range wantApp {
		if r.applyIn[i] != w {
			t.Fatalf("OnApply order = %v, want %v", r.applyIn, wantApp)
		}
	}
	if len(r.applied[0]) != 1 || r.applied[0][0].ID != mid(1) {
		t.Fatalf("instance 1 applied %v", r.applied[0])
	}
}

// TestBatcherDroppedItemsReproposed: when a rival proposal wins an
// instance, the loser's items leave in-flight at apply time and ride the
// next instance.
func TestBatcherDroppedItemsReproposed(t *testing.T) {
	r := newBatchRig(0, 1)
	r.enqueue(2)
	r.b.Pump() // proposes both items in instance 1
	if got := r.b.NextInstance(); got != 2 {
		t.Fatalf("NextInstance = %d, want 2", got)
	}
	rival := types.MessageID{Origin: 2, Seq: 9}
	r.b.decided(1, []testItem{{ID: rival}}) // rival won instance 1
	// Applying instance 1 released the dropped items and the engine's own
	// re-pump immediately proposed them again in instance 2.
	if got := r.b.NextInstance(); got != 3 {
		t.Fatalf("NextInstance = %d, want 3 (re-proposal happened)", got)
	}
	if !r.b.InFlight(mid(1)) || !r.b.InFlight(mid(2)) {
		t.Fatal("dropped items must be re-proposed")
	}
	// Winning instance 2 releases them for good.
	r.b.decided(2, []testItem{{ID: mid(1)}, {ID: mid(2)}})
	if r.b.InFlight(mid(1)) || r.b.InFlight(mid(2)) {
		t.Fatal("items stuck in flight after their instance applied")
	}
}

// TestBatcherNextSyncsPastAppliedInstances: a process that proposed
// nothing while rivals drove instances forward must not propose an
// already-decided instance (which would strand its items in flight).
func TestBatcherNextSyncsPastAppliedInstances(t *testing.T) {
	r := newBatchRig(0, 1)
	r.b.decided(1, []testItem{{ID: types.MessageID{Origin: 1, Seq: 1}}})
	r.b.decided(2, []testItem{{ID: types.MessageID{Origin: 1, Seq: 2}}})
	if got := r.b.AppliedInstances(); got != 2 {
		t.Fatalf("AppliedInstances = %d, want 2", got)
	}
	if got := r.b.NextInstance(); got != 3 {
		t.Fatalf("NextInstance = %d, want 3 (synced past applied)", got)
	}
	r.enqueue(1)
	r.b.Pump()
	if !r.b.InFlight(mid(1)) {
		t.Fatal("fresh item should be in flight in instance 3")
	}
	// Deciding instance 3 releases it.
	r.b.decided(3, []testItem{{ID: mid(1)}})
	if r.b.InFlight(mid(1)) {
		t.Fatal("item stuck in flight after its instance applied")
	}
}

// TestBatcherEmptyBatchesNeedAGate: with a nil Gate the engine never
// proposes an empty batch; with a permissive gate it does (A2's keepalive
// rounds rely on this).
func TestBatcherEmptyBatchesNeedAGate(t *testing.T) {
	r := newBatchRig(0, 1)
	r.b.Pump()
	if got := r.b.NextInstance(); got != 1 {
		t.Fatalf("NextInstance = %d, want 1 (nothing to propose)", got)
	}

	gated := &batchRig{api: &fakeAPI{topo: types.NewTopology(1, 3), self: 0}}
	gated.b = NewBatcher(BatcherConfig[testItem]{
		API:      gated.api,
		Detector: fakeDet{leader: 0},
		Fill:     func(func(types.MessageID) bool, int) []testItem { return nil },
		Gate:     func(inst uint64, batch []testItem) bool { return inst <= 2 },
		OnApply:  func(uint64, []testItem) {},
	})
	gated.b.Pump()
	if got := gated.b.NextInstance(); got != 2 {
		t.Fatalf("NextInstance = %d, want 2 (one empty instance gated in)", got)
	}
}

// TestBatcherRecordsBatchSizes: every decided instance reports its batch
// size to the metrics API.
func TestBatcherRecordsBatchSizes(t *testing.T) {
	r := newBatchRig(0, 2)
	r.enqueue(3)
	r.b.Pump()
	r.b.decided(1, []testItem{{ID: mid(1)}, {ID: mid(2)}, {ID: mid(3)}})
	r.b.decided(2, nil)
	if len(r.api.batches) != 2 || r.api.batches[0] != 3 || r.api.batches[1] != 0 {
		t.Fatalf("recorded batches = %v, want [3 0]", r.api.batches)
	}
}
