// Batched, pipelined ordering engine layered on the multi-instance
// consensus of this package.
//
// Algorithms A1 and A2 both follow the same loop: accumulate orderable
// items, agree on a batch of them per consensus instance, and consume
// decisions in instance order. The seed implementations each hand-rolled
// that loop with one instance in flight at a time, so a WAN round trip
// gated every instance and throughput was bounded by one batch per
// inter-group delay. Batcher factors the loop out and generalizes it along
// the two axes production consensus layers use to amortize agreement cost:
//
//   - MaxBatch: how many items one instance may order (batching);
//   - Pipeline: how many instances may be in flight concurrently
//     (pipelining).
//
// Instances are numbered densely (1, 2, 3, …) per engine. Because
// pipelined decisions can arrive out of instance order, the engine buffers
// them and invokes OnApply strictly in instance order — the order every
// group member observes, which is what keeps replicated state (group
// clocks, delivery rounds) deterministic. OnDecide, by contrast, fires the
// moment a decision is learned, possibly out of order, for work that is
// safe to do early (A2 ships its bundle immediately). Items proposed to an
// undecided instance are excluded from later proposals; an item dropped
// from a decision (a rival proposal won the instance) becomes proposable
// again as soon as that instance applies.
//
// Quiescence is preserved: the engine proposes nothing on its own. Pump
// only proposes what Fill returns and what Gate admits, and the underlying
// consensus arms its retry timer only while proposals are undecided.
package consensus

import (
	"fmt"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/storage"
	"wanamcast/internal/types"
)

// Item is one element of a batched proposal. Items travel inside consensus
// values, so they must be self-contained; the identity is used to keep an
// item out of later proposals while an earlier instance holding it is
// still in flight.
type Item interface {
	ItemID() types.MessageID
}

// BatcherConfig configures a Batcher for one process.
type BatcherConfig[T Item] struct {
	// API and Detector wire the underlying consensus engine; both are
	// required.
	API      node.API
	Detector fd.Detector
	// RetryInterval, ProtoLabel, and Log are passed to the consensus
	// engine (Log makes the acceptor durable; see consensus.Config.Log).
	RetryInterval time.Duration
	ProtoLabel    string
	Log           *storage.Log

	// MaxBatch caps the number of items per proposal. Zero or negative
	// means unbounded — the paper's propose-everything rule.
	MaxBatch int
	// Pipeline is the number of instances that may be open beyond the
	// window base. Zero or negative means 1: the strictly sequential
	// engine both seed algorithms used.
	Pipeline int

	// Fill returns the next batch of proposable items in a deterministic
	// order, skipping items for which exclude returns true and returning
	// at most limit items when limit > 0. Required.
	Fill func(exclude func(types.MessageID) bool, limit int) []T
	// Gate, when non-nil, decides whether instance inst may be proposed
	// with the given batch; returning false stops the propose loop. A nil
	// Gate admits only non-empty batches. A2 uses it to run empty
	// keepalive rounds up to its Barrier.
	Gate func(inst uint64, batch []T) bool
	// Base, when non-nil, returns the propose window's base: instances up
	// to Base()+Pipeline−1 may be open. A nil Base uses the number of
	// applied instances, so Pipeline bounds decided-but-unapplied depth.
	// A2 anchors the window to its delivery round instead, which also
	// waits for remote bundles.
	Base func() uint64
	// OnDecide, when non-nil, fires as soon as an instance's decision is
	// learned — possibly out of instance order.
	OnDecide func(inst uint64, batch []T)
	// OnApply fires exactly once per instance, in dense instance order.
	// Required: it is where clients advance their replicated state.
	OnApply func(inst uint64, batch []T)
}

// Batcher is the per-process batched, pipelined ordering engine. It owns a
// Consensus instance; register Protocol() on the host process alongside
// the client protocol.
type Batcher[T Item] struct {
	cons     *Consensus
	api      node.API
	maxBatch int
	pipeline uint64

	fill     func(exclude func(types.MessageID) bool, limit int) []T
	gate     func(inst uint64, batch []T) bool
	base     func() uint64
	onDecide func(inst uint64, batch []T)
	onApply  func(inst uint64, batch []T)

	next      uint64                     // next instance to propose
	applyNext uint64                     // next instance to apply, in dense order
	buffered  map[uint64][]T             // decided but not yet applied (out-of-order)
	inFlight  map[types.MessageID]uint64 // item → undecided/unapplied instance

	healEvery time.Duration // gap-healing re-check period
	healing   bool          // gap-healing timer armed
}

// NewBatcher builds a batched ordering engine. It panics on missing API,
// Detector, Fill, or OnApply: those are wiring bugs.
func NewBatcher[T Item](cfg BatcherConfig[T]) *Batcher[T] {
	if cfg.API == nil || cfg.Detector == nil {
		panic("consensus: BatcherConfig.API and Detector are required")
	}
	if cfg.Fill == nil || cfg.OnApply == nil {
		panic("consensus: BatcherConfig.Fill and OnApply are required")
	}
	pipeline := uint64(1)
	if cfg.Pipeline > 1 {
		pipeline = uint64(cfg.Pipeline)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch < 0 {
		maxBatch = 0
	}
	healEvery := cfg.RetryInterval
	if healEvery <= 0 {
		healEvery = 40 * time.Millisecond
	}
	b := &Batcher[T]{
		api:       cfg.API,
		maxBatch:  maxBatch,
		pipeline:  pipeline,
		fill:      cfg.Fill,
		gate:      cfg.Gate,
		base:      cfg.Base,
		onDecide:  cfg.OnDecide,
		onApply:   cfg.OnApply,
		next:      1,
		applyNext: 1,
		buffered:  make(map[uint64][]T),
		inFlight:  make(map[types.MessageID]uint64),
		healEvery: healEvery,
	}
	if b.base == nil {
		b.base = func() uint64 { return b.applyNext }
	}
	b.cons = New(Config{
		API:           cfg.API,
		Detector:      cfg.Detector,
		OnDecide:      b.decided,
		RetryInterval: cfg.RetryInterval,
		ProtoLabel:    cfg.ProtoLabel,
		Log:           cfg.Log,
	})
	return b
}

// Protocol returns the engine's consensus protocol for registration on the
// host process.
func (b *Batcher[T]) Protocol() node.Protocol { return b.cons }

// NextInstance returns the next instance number this process would propose
// (for tests).
func (b *Batcher[T]) NextInstance() uint64 { return b.next }

// AppliedInstances returns how many instances have been applied (for
// tests and window accounting).
func (b *Batcher[T]) AppliedInstances() uint64 { return b.applyNext - 1 }

// InFlight reports whether id is held by a proposed instance that has not
// yet applied.
func (b *Batcher[T]) InFlight(id types.MessageID) bool {
	_, ok := b.inFlight[id]
	return ok
}

// Pump proposes as many instances as the window, the gate, and the fill
// allow. Clients call it whenever proposable state may have changed; it is
// idempotent and safe to call reentrantly from OnApply/OnDecide.
func (b *Batcher[T]) Pump() {
	for b.next < b.base()+b.pipeline {
		batch := b.fill(b.InFlight, b.maxBatch)
		if b.maxBatch > 0 && len(batch) > b.maxBatch {
			batch = batch[:b.maxBatch]
		}
		if b.gate != nil {
			if !b.gate(b.next, batch) {
				return
			}
		} else if len(batch) == 0 {
			return
		}
		for _, it := range batch {
			b.inFlight[it.ItemID()] = b.next
		}
		b.cons.Propose(b.next, batch)
		b.next++
	}
}

// decided is the consensus OnDecide hook: it records the batch, fires the
// early hook, and drains the apply queue in dense instance order.
func (b *Batcher[T]) decided(inst uint64, v Value) {
	batch, ok := v.([]T)
	if !ok && v != nil {
		panic(fmt.Sprintf("consensus: batcher decided unexpected value %T", v))
	}
	b.api.RecordBatch(len(batch))
	if b.onDecide != nil {
		b.onDecide(inst, batch)
	}
	b.buffered[inst] = batch
	for {
		cur, ok := b.buffered[b.applyNext]
		if !ok {
			break
		}
		b.applyOne(b.applyNext, cur)
	}
	b.Pump()
	b.checkGap()
}

// applyOne consumes the decision of the apply horizon's instance.
func (b *Batcher[T]) applyOne(k uint64, cur []T) {
	delete(b.buffered, k)
	b.applyNext++
	// Never propose at or below an applied instance: a process whose
	// fill stayed empty while rivals drove instances forward would
	// otherwise propose an already-decided instance — a local no-op
	// that would strand its items in flight forever.
	if b.next <= k {
		b.next = k + 1
	}
	// Items of this instance are no longer in flight. Items the
	// decision dropped become proposable again; items it kept are the
	// client's to track from OnApply onward.
	for id, held := range b.inFlight {
		if held == k {
			delete(b.inFlight, id)
		}
	}
	b.onApply(k, cur)
}
