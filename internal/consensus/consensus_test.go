package consensus

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// rig builds one group of size d with a consensus engine per process and a
// decision log.
type rig struct {
	rt    *node.Runtime
	cons  []*Consensus
	decs  []map[uint64]Value // per process: instance -> decided value
	order [][]uint64         // per process: decision arrival order
}

func newRig(t *testing.T, d int) *rig {
	t.Helper()
	topo := types.NewTopology(1, d)
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	r := &rig{rt: rt, cons: make([]*Consensus, d), decs: make([]map[uint64]Value, d), order: make([][]uint64, d)}
	for i := 0; i < d; i++ {
		i := i
		r.decs[i] = make(map[uint64]Value)
		c := New(Config{
			API:      rt.Proc(types.ProcessID(i)),
			Detector: rt.Oracle(),
			OnDecide: func(inst uint64, v Value) {
				if _, dup := r.decs[i][inst]; dup {
					t.Errorf("p%d decided instance %d twice", i, inst)
				}
				r.decs[i][inst] = v
				r.order[i] = append(r.order[i], inst)
			},
		})
		rt.Proc(types.ProcessID(i)).Register(c)
		r.cons[i] = c
	}
	rt.Start()
	return r
}

// TestSingleProposerAllDecide: termination and uniform agreement with one
// proposer.
func TestSingleProposerAllDecide(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		r := newRig(t, d)
		r.cons[0].Propose(1, "v")
		r.rt.Run()
		for i := 0; i < d; i++ {
			v, ok := r.decs[i][1]
			if !ok {
				t.Fatalf("d=%d: p%d never decided", d, i)
			}
			if v != "v" {
				t.Fatalf("d=%d: p%d decided %v", d, i, v)
			}
		}
	}
}

// TestUniformIntegrity: the decided value was proposed by someone.
func TestUniformIntegrity(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "a")
	r.cons[1].Propose(1, "b")
	r.cons[2].Propose(1, "c")
	r.rt.Run()
	v := r.decs[0][1]
	if v != "a" && v != "b" && v != "c" {
		t.Fatalf("decided %v, not among proposals", v)
	}
	for i := 1; i < 3; i++ {
		if r.decs[i][1] != v {
			t.Fatalf("disagreement: p0=%v p%d=%v", v, i, r.decs[i][1])
		}
	}
}

// TestManyInstances: instances are independent and all terminate.
func TestManyInstances(t *testing.T) {
	r := newRig(t, 3)
	for k := uint64(1); k <= 20; k++ {
		r.cons[int(k)%3].Propose(k, fmt.Sprintf("v%d", k))
	}
	r.rt.Run()
	for i := 0; i < 3; i++ {
		for k := uint64(1); k <= 20; k++ {
			if r.decs[i][k] != fmt.Sprintf("v%d", k) {
				t.Fatalf("p%d instance %d decided %v", i, k, r.decs[i][k])
			}
		}
	}
}

// TestSparseInstanceNumbers: the instance namespace may skip (as A1's K
// sequence does).
func TestSparseInstanceNumbers(t *testing.T) {
	r := newRig(t, 3)
	for _, k := range []uint64{1, 5, 100, 7} {
		r.cons[0].Propose(k, k)
	}
	r.rt.Run()
	for _, k := range []uint64{1, 5, 100, 7} {
		for i := 0; i < 3; i++ {
			if r.decs[i][k] != k {
				t.Fatalf("p%d instance %d: %v", i, k, r.decs[i][k])
			}
		}
	}
}

// TestReproposalIgnored: at most one proposal per instance per process.
func TestReproposalIgnored(t *testing.T) {
	r := newRig(t, 2)
	r.cons[0].Propose(1, "first")
	r.cons[0].Propose(1, "second")
	r.rt.Run()
	if r.decs[0][1] != "first" {
		t.Fatalf("decided %v, want the first local proposal", r.decs[0][1])
	}
}

// TestLeaderCrashBeforePropose: a follower's proposal survives the leader
// crashing before driving anything.
func TestLeaderCrashBeforePropose(t *testing.T) {
	r := newRig(t, 3)
	r.rt.Crash(0) // leader gone; suspicion after 20ms
	r.cons[1].Propose(1, "survivor")
	r.rt.Run()
	for _, i := range []int{1, 2} {
		if r.decs[i][1] != "survivor" {
			t.Fatalf("p%d decided %v", i, r.decs[i][1])
		}
	}
}

// TestLeaderCrashMidInstance: the leader crashes right after proposing; the
// new leader finishes the instance.
func TestLeaderCrashMidInstance(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "from-leader")
	r.cons[1].Propose(1, "from-follower")
	r.rt.CrashAt(0, 500*time.Microsecond) // before Accepted quorum returns
	r.rt.Run()
	v1, ok1 := r.decs[1][1]
	v2, ok2 := r.decs[2][1]
	if !ok1 || !ok2 {
		t.Fatal("correct processes did not decide after leader crash")
	}
	if v1 != v2 {
		t.Fatalf("disagreement after crash: %v vs %v", v1, v2)
	}
}

// TestSafetyAcrossLeaderChange: if the old leader's value reached a quorum,
// the new leader must decide the same value (Paxos safety).
func TestSafetyAcrossLeaderChange(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "chosen")
	// Let the accept round land (quorum reached ~3ms in), then crash the
	// leader before everyone hears the Decide... decide messages go out in
	// the same handler, so instead crash just after proposing at another
	// process to force the new leader through phase 1.
	r.rt.CrashAt(0, 2500*time.Microsecond)
	r.cons[1].Propose(1, "other")
	r.rt.Run()
	v1 := r.decs[1][1]
	v2 := r.decs[2][1]
	if v1 != v2 {
		t.Fatalf("disagreement: %v vs %v", v1, v2)
	}
}

// TestMinorityCrashStillLive: consensus survives any minority of crashes.
func TestMinorityCrashStillLive(t *testing.T) {
	r := newRig(t, 5)
	r.rt.Crash(3)
	r.rt.CrashAt(4, 10*time.Millisecond)
	for k := uint64(1); k <= 5; k++ {
		r.cons[1].Propose(k, k*10)
	}
	r.rt.Run()
	for i := 0; i < 3; i++ {
		for k := uint64(1); k <= 5; k++ {
			if r.decs[i][k] != k*10 {
				t.Fatalf("p%d instance %d: %v", i, k, r.decs[i][k])
			}
		}
	}
}

// TestLateProposerCatchesUp: a process proposing an already-decided
// instance learns the decision.
func TestLateProposerCatchesUp(t *testing.T) {
	r := newRig(t, 3)
	r.cons[0].Propose(1, "early")
	r.rt.Run()
	// Everyone has decided. Now p2 proposes the same instance late.
	r.cons[2].Propose(1, "late")
	r.rt.Run()
	if r.decs[2][1] != "early" {
		t.Fatalf("late proposer decided %v", r.decs[2][1])
	}
}

// TestQuiescentWhenIdle: no proposals → no messages, and after decisions
// complete the retry timer chain stops (needed for Prop. A.9).
func TestQuiescentWhenIdle(t *testing.T) {
	topo := types.NewTopology(1, 3)
	col := &countingRecorder{}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, col)
	var cs []*Consensus
	for i := 0; i < 3; i++ {
		c := New(Config{
			API:      rt.Proc(types.ProcessID(i)),
			Detector: rt.Oracle(),
			OnDecide: func(uint64, Value) {},
		})
		rt.Proc(types.ProcessID(i)).Register(c)
		cs = append(cs, c)
	}
	rt.Start()
	rt.Run()
	if col.sends != 0 {
		t.Fatalf("idle consensus sent %d messages", col.sends)
	}
	cs[0].Propose(1, "x")
	rt.Run() // must drain: decided, timers stopped
	after := col.sends
	rt.RunUntil(rt.Now() + time.Second)
	if col.sends != after {
		t.Fatalf("consensus kept sending after deciding: %d -> %d", after, col.sends)
	}
}

type countingRecorder struct {
	node.NopRecorder
	sends int
}

func (c *countingRecorder) OnSend(string, types.ProcessID, types.ProcessID, bool, time.Duration) {
	c.sends++
}

// TestDecidedAccessor exposes decisions for clients that poll.
func TestDecidedAccessor(t *testing.T) {
	r := newRig(t, 2)
	if _, ok := r.cons[0].Decided(1); ok {
		t.Error("Decided before any proposal")
	}
	r.cons[0].Propose(1, "v")
	r.rt.Run()
	v, ok := r.cons[1].Decided(1)
	if !ok || v != "v" {
		t.Errorf("Decided = %v ok=%v", v, ok)
	}
}

// TestConfigValidation: missing wiring panics.
func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing config")
		}
	}()
	New(Config{})
}

// TestTwoGroupsIndependent: engines in different groups share instance
// numbers without interference.
func TestTwoGroupsIndependent(t *testing.T) {
	topo := types.NewTopology(2, 2)
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 50 * time.Millisecond}, 1, nil)
	decs := make([]map[uint64]Value, 4)
	var cons []*Consensus
	for i := 0; i < 4; i++ {
		i := i
		decs[i] = make(map[uint64]Value)
		c := New(Config{
			API:      rt.Proc(types.ProcessID(i)),
			Detector: rt.Oracle(),
			OnDecide: func(inst uint64, v Value) { decs[i][inst] = v },
		})
		rt.Proc(types.ProcessID(i)).Register(c)
		cons = append(cons, c)
	}
	rt.Start()
	cons[0].Propose(1, "group0")
	cons[2].Propose(1, "group1")
	rt.Run()
	if decs[0][1] != "group0" || decs[1][1] != "group0" {
		t.Errorf("group 0 decisions: %v %v", decs[0][1], decs[1][1])
	}
	if decs[2][1] != "group1" || decs[3][1] != "group1" {
		t.Errorf("group 1 decisions: %v %v", decs[2][1], decs[3][1])
	}
}
