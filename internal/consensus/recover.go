// Crash recovery for the consensus engine and its batched ordering layer:
// snapshot encoding of the surviving instance state, WAL-record replay,
// decision re-fire into the apply pipeline, window skipping after peer
// state transfer, and gap healing (recovering decisions whose original
// announcement was missed).
package consensus

import (
	"fmt"
	"sort"

	"wanamcast/internal/storage"
	"wanamcast/internal/wire"
)

// --- consensus snapshot ---------------------------------------------------

// appendSnap encodes the acceptor/learner state of every instance at or
// above from (instances below it are applied and closed: the engine never
// re-opens them, so their state is dead weight a snapshot drops).
func (c *Consensus) appendSnap(buf []byte, from uint64) []byte {
	var ks []uint64
	for k := range c.insts {
		if k >= from {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	buf = wire.AppendUvarint(buf, uint64(len(ks)))
	for _, k := range ks {
		in := c.insts[k]
		buf = wire.AppendUvarint(buf, k)
		buf = wire.AppendVarint(buf, in.promised)
		buf = wire.AppendVarint(buf, in.accepted)
		buf = wire.AppendValue(buf, in.aValue)
		dec := byte(0)
		if in.decided {
			dec = 1
		}
		buf = append(buf, dec)
		buf = wire.AppendValue(buf, in.decision)
		buf = wire.AppendVarint(buf, in.maxSeen)
	}
	return buf
}

// restoreSnap rebuilds the instance table from appendSnap's encoding.
// Decided instances are restored silently: the batcher re-fires their
// apply cascade itself, in order.
func (c *Consensus) restoreSnap(data []byte) ([]byte, error) {
	n, data, err := wire.SliceLen(data)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var k uint64
		if k, data, err = wire.Uvarint(data); err != nil {
			return nil, err
		}
		in := c.inst(k)
		if in.promised, data, err = wire.Varint(data); err != nil {
			return nil, err
		}
		if in.accepted, data, err = wire.Varint(data); err != nil {
			return nil, err
		}
		if in.aValue, data, err = wire.DecodeValue(data); err != nil {
			return nil, err
		}
		if len(data) == 0 {
			return nil, fmt.Errorf("%w: instance decided flag", wire.ErrCorrupt)
		}
		in.decided, data = data[0] != 0, data[1:]
		if in.decision, data, err = wire.DecodeValue(data); err != nil {
			return nil, err
		}
		if in.maxSeen, data, err = wire.Varint(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// restoreRecord replays one WAL record into the acceptor/learner state.
// Promise and Accept records restore exactly what was durable before the
// reply left; Decide records run the full learn path (with re-persisting
// suppressed), so the batcher's apply cascade re-executes deterministically.
func (c *Consensus) restoreRecord(rec storage.Record) error {
	switch rec.Kind {
	case storage.KindPromise:
		in := c.inst(rec.Inst)
		if rec.Ballot > in.promised {
			in.promised = rec.Ballot
		}
		if rec.Ballot > in.maxSeen {
			in.maxSeen = rec.Ballot
		}
	case storage.KindAccept:
		in := c.inst(rec.Inst)
		if rec.Ballot > in.accepted {
			in.promised = rec.Ballot
			in.accepted = rec.Ballot
			in.aValue = rec.Value
		}
		if rec.Ballot > in.maxSeen {
			in.maxSeen = rec.Ballot
		}
	case storage.KindDecide:
		c.learn(rec.Inst, rec.Value)
	default:
		return fmt.Errorf("consensus: unexpected %s record kind %d", c.label, rec.Kind)
	}
	return nil
}

// --- batcher recovery surface ---------------------------------------------

// Label returns the engine's wire label (the WAL record namespace of its
// consensus sub-protocol).
func (b *Batcher[T]) Label() string { return b.cons.label }

// BeginRecovery puts the engine in replay mode: learned decisions are not
// re-persisted. Pair with EndRecovery.
func (b *Batcher[T]) BeginRecovery() { b.cons.recovering = true }

// EndRecovery leaves replay mode.
func (b *Batcher[T]) EndRecovery() { b.cons.recovering = false }

// AppendSnapshot encodes the engine's replicated ordering state: the
// propose/apply cursors plus the consensus instance table from the apply
// horizon upward.
func (b *Batcher[T]) AppendSnapshot(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, b.next)
	buf = wire.AppendUvarint(buf, b.applyNext)
	return b.cons.appendSnap(buf, b.applyNext)
}

// RestoreSnapshot rebuilds the engine from AppendSnapshot's encoding. It
// does not fire apply callbacks; call Recover once every layer's snapshot
// state is in place.
func (b *Batcher[T]) RestoreSnapshot(data []byte) error {
	var err error
	if b.next, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	if b.applyNext, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	if b.next < b.applyNext {
		b.next = b.applyNext
	}
	if _, err := b.cons.restoreSnap(data); err != nil {
		return err
	}
	return nil
}

// Recover re-fires the apply cascade for every instance the restored
// consensus state knows a decision for, starting at the apply horizon and
// stopping at the first gap (gap healing takes over from there). Decisions
// beyond a gap re-enter the buffered set, exactly as if their DecideMsg
// had just arrived, so they apply the moment the gap closes. OnDecide is
// NOT re-fired: its effects (bundle shipping, re-proposal fences) are
// either replicated work already done pre-crash or part of the owning
// layer's own snapshot. Call between BeginRecovery and EndRecovery, after
// every layer restored its snapshot section.
func (b *Batcher[T]) Recover() {
	for k, in := range b.cons.insts {
		if k < b.applyNext || !in.decided {
			continue
		}
		if batch, ok := in.decision.([]T); ok || in.decision == nil {
			b.buffered[k] = batch
		}
	}
	for {
		cur, ok := b.buffered[b.applyNext]
		if !ok {
			break
		}
		b.applyOne(b.applyNext, cur)
	}
	b.checkGap()
}

// ReplayRecord feeds one WAL record of this engine back into it.
func (b *Batcher[T]) ReplayRecord(rec storage.Record) error {
	return b.cons.restoreRecord(rec)
}

// SkipTo marks every instance below next as externally applied: a peer
// state transfer handed this process the aggregate effect of those
// instances, so the engine must neither wait for nor re-apply them. Items
// held in flight by skipped instances are released (still-pending ones are
// re-proposed by the next Pump; the duplicate-decision guards make that
// safe).
func (b *Batcher[T]) SkipTo(next uint64) {
	if next <= b.applyNext {
		return
	}
	b.applyNext = next
	if b.next < next {
		b.next = next
	}
	for k := range b.buffered {
		if k < next {
			delete(b.buffered, k)
		}
	}
	for id, held := range b.inFlight {
		if held < next {
			delete(b.inFlight, id)
		}
	}
	// A decision buffered beyond the new horizon may now be applicable.
	for {
		cur, ok := b.buffered[b.applyNext]
		if !ok {
			break
		}
		b.applyOne(b.applyNext, cur)
	}
	b.Pump()
	b.checkGap()
}

// checkGap arms (once) the gap-healing timer: while a decision for a later
// instance is buffered but the apply horizon's own decision is missing —
// its DecideMsg was dropped, or this process restarted past it — ask the
// group for it and re-check. The timer chain stops as soon as the gap
// closes, preserving quiescence.
func (b *Batcher[T]) checkGap() {
	if b.healing || len(b.buffered) == 0 {
		return
	}
	b.healing = true
	b.api.After(b.healEvery, func() {
		b.healing = false
		if len(b.buffered) == 0 {
			return
		}
		if _, ok := b.buffered[b.applyNext]; ok {
			return // draining; decided() will re-arm if a gap remains
		}
		b.cons.requestDecision(b.applyNext)
		b.checkGap()
	})
}
