package consensus

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// TestConsensusPropertiesQuick: for random group sizes, proposer sets,
// instance counts, proposal timings, and one optional minority crash,
// uniform consensus holds: every correct process decides every proposed
// instance, decisions agree, and each decision was proposed.
func TestConsensusPropertiesQuick(t *testing.T) {
	f := func(seed int64, dRaw, instRaw uint8, plan []uint16) bool {
		d := 1 + int(dRaw)%5        // group of 1..5
		insts := 1 + int(instRaw)%6 // 1..6 instances
		if len(plan) > 24 {
			plan = plan[:24]
		}
		topo := types.NewTopology(1, d)
		rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, seed, nil)
		decs := make([]map[uint64]Value, d)
		cons := make([]*Consensus, d)
		for i := 0; i < d; i++ {
			i := i
			decs[i] = make(map[uint64]Value)
			cons[i] = New(Config{
				API:      rt.Proc(types.ProcessID(i)),
				Detector: rt.Oracle(),
				OnDecide: func(k uint64, v Value) {
					if _, dup := decs[i][k]; dup {
						t.Errorf("p%d decided %d twice", i, k)
					}
					decs[i][k] = v
				},
			})
			rt.Proc(types.ProcessID(i)).Register(cons[i])
		}
		rt.Start()

		proposed := make(map[uint64]map[string]bool)
		planned := make(map[uint64]bool)
		for _, move := range plan {
			proposer := int(move) % d
			inst := uint64(int(move>>4)%insts) + 1
			at := time.Duration(int(move>>8)%50) * time.Millisecond
			val := fmt.Sprintf("p%d-i%d", proposer, inst)
			if proposed[inst] == nil {
				proposed[inst] = make(map[string]bool)
			}
			rt.Scheduler().At(at, func() {
				cons[proposer].Propose(inst, val)
			})
			// Record the value as potentially proposed; Propose dedups
			// locally, but the first call per (proposer, inst) wins and
			// any of the recorded values is a legal decision.
			proposed[inst][val] = true
			planned[inst] = true
		}
		// Optionally crash one process (keep a majority) mid-run.
		crashed := -1
		if d >= 3 && seed%2 == 0 {
			crashed = int((seed / 2) % int64(d))
			if crashed < 0 {
				crashed += d
			}
			at := time.Duration(seed%40) * time.Millisecond
			if at < 0 {
				at = -at
			}
			rt.CrashAt(types.ProcessID(crashed), at)
		}
		rt.Scheduler().MaxSteps = 2_000_000
		rt.Run()

		for inst := range planned {
			// A crashed sole proposer may legally leave an instance
			// undecided; skip instances only the crashed process proposed.
			var ref Value
			decidedBy := 0
			for i := 0; i < d; i++ {
				if i == crashed {
					continue
				}
				v, ok := decs[i][inst]
				if !ok {
					continue
				}
				if decidedBy == 0 {
					ref = v
				} else if v != ref {
					return false // uniform agreement broken
				}
				decidedBy++
			}
			if decidedBy > 0 {
				if !proposed[inst][ref.(string)] {
					return false // uniform integrity broken
				}
				// Termination: all correct processes decided.
				want := d
				if crashed >= 0 {
					want--
				}
				if decidedBy != want {
					return false
				}
			} else {
				// Nobody decided: legal only if every proposer of this
				// instance crashed, i.e. the only proposer was `crashed`.
				for i := 0; i < d; i++ {
					if i == crashed {
						continue
					}
					if _, stillHas := decs[i][inst]; stillHas {
						return false
					}
				}
				// Check no correct process proposed it.
				onlyCrashedProposed := true
				for _, move := range plan {
					proposer := int(move) % d
					pinst := uint64(int(move>>4)%insts) + 1
					if pinst == inst && proposer != crashed {
						onlyCrashedProposed = false
					}
				}
				if !onlyCrashedProposed {
					return false // a correct proposal must terminate
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
