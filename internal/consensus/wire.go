// Wire codecs for the consensus messages. Each message implements the
// append-style AppendTo/DecodeFrom pair and registers itself with the
// internal/wire catalog; consensus values stay opaque `any` and round-trip
// through wire.AppendValue/DecodeValue (registered batch types inline,
// everything else via the gob fallback).
package consensus

import (
	"wanamcast/internal/wire"
)

func init() {
	wire.Register(wire.KindConsensusForward,
		func(buf []byte, m ForwardMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m ForwardMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusPrepare,
		func(buf []byte, m PrepareMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m PrepareMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusPromise,
		func(buf []byte, m PromiseMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m PromiseMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusAccept,
		func(buf []byte, m AcceptMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m AcceptMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusAccepted,
		func(buf []byte, m AcceptedMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m AcceptedMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusDecide,
		func(buf []byte, m DecideMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m DecideMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindConsensusLearn,
		func(buf []byte, m LearnMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m LearnMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
}

// AppendTo appends m's wire encoding.
func (m ForwardMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	return wire.AppendValue(buf, m.Value)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *ForwardMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Value, data, err = wire.DecodeValue(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m PrepareMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	return wire.AppendVarint(buf, m.Ballot)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *PrepareMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Ballot, data, err = wire.Varint(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m PromiseMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	buf = wire.AppendVarint(buf, m.Ballot)
	buf = wire.AppendVarint(buf, m.VBallot)
	return wire.AppendValue(buf, m.VValue)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *PromiseMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	if m.Ballot, data, err = wire.Varint(data); err != nil {
		return nil, err
	}
	if m.VBallot, data, err = wire.Varint(data); err != nil {
		return nil, err
	}
	m.VValue, data, err = wire.DecodeValue(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m AcceptMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	buf = wire.AppendVarint(buf, m.Ballot)
	return wire.AppendValue(buf, m.Value)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *AcceptMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	if m.Ballot, data, err = wire.Varint(data); err != nil {
		return nil, err
	}
	m.Value, data, err = wire.DecodeValue(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m AcceptedMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	return wire.AppendVarint(buf, m.Ballot)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *AcceptedMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Ballot, data, err = wire.Varint(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m LearnMsg) AppendTo(buf []byte) []byte {
	return wire.AppendUvarint(buf, m.Instance)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *LearnMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	m.Instance, data, err = wire.Uvarint(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m DecideMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Instance)
	return wire.AppendValue(buf, m.Value)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *DecideMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Instance, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Value, data, err = wire.DecodeValue(data)
	return data, err
}
