package consensus

import (
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/storage"
	"wanamcast/internal/types"
)

func newAcceptor(t *testing.T, log *storage.Log) *Consensus {
	t.Helper()
	topo := types.NewTopology(1, 3)
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	return New(Config{
		API:      rt.Proc(0),
		Detector: rt.Oracle(),
		OnDecide: func(uint64, Value) {},
		Log:      log,
	})
}

// TestRestartedAcceptorKeepsPromise pins the acceptance bar of the
// durability work at the Paxos level: promises and votes are persisted
// before they are answered, so an acceptor rebuilt from its log can never
// accept below a ballot it promised, nor forget a value it voted for.
func TestRestartedAcceptorKeepsPromise(t *testing.T) {
	mem := storage.NewMem()
	c0 := newAcceptor(t, storage.NewLog(mem))
	c0.Receive(1, PrepareMsg{Instance: 1, Ballot: 5})
	c0.Receive(1, AcceptMsg{Instance: 1, Ballot: 5, Value: "chosen"})
	c0.Receive(2, PrepareMsg{Instance: 2, Ballot: 7})

	// "Restart": a fresh engine fed only the durable records.
	c1 := newAcceptor(t, nil)
	c1.recovering = true
	if err := mem.Replay(0, c1.restoreRecord); err != nil {
		t.Fatal(err)
	}
	c1.recovering = false

	in := c1.inst(1)
	if in.promised != 5 || in.accepted != 5 || in.aValue != "chosen" {
		t.Fatalf("restored acceptor state: promised=%d accepted=%d value=%v, want 5/5/chosen",
			in.promised, in.accepted, in.aValue)
	}
	if in2 := c1.inst(2); in2.promised != 7 {
		t.Fatalf("restored promise on instance 2: %d, want 7", in2.promised)
	}

	// A stale leader's lower-ballot messages must not regress the state.
	c1.onPrepare(1, PrepareMsg{Instance: 1, Ballot: 3})
	c1.onAccept(1, AcceptMsg{Instance: 1, Ballot: 3, Value: "usurper"})
	if in.promised != 5 || in.accepted != 5 || in.aValue != "chosen" {
		t.Fatalf("restored acceptor broke its promise: promised=%d accepted=%d value=%v",
			in.promised, in.accepted, in.aValue)
	}
}

// TestDecideRecordsReplayInOrder pins that the batcher's recovery path
// re-applies logged decisions densely and in instance order.
func TestDecideRecordsReplayInOrder(t *testing.T) {
	mem := storage.NewMem()
	c0 := newAcceptor(t, storage.NewLog(mem))
	batch := func(seq uint64) []fakeItem {
		return []fakeItem{{id: types.MessageID{Origin: 0, Seq: seq}}}
	}
	c0.learn(2, batch(2)) // decisions can be learned out of order
	c0.learn(1, batch(1))
	c0.learn(3, batch(3))

	var applied []uint64
	c1Topo := types.NewTopology(1, 3)
	rt := node.NewRuntime(c1Topo, network.Model{IntraGroup: time.Millisecond}, 1, nil)
	b := NewBatcher(BatcherConfig[fakeItem]{
		API:      rt.Proc(0),
		Detector: rt.Oracle(),
		Fill:     func(func(types.MessageID) bool, int) []fakeItem { return nil },
		OnApply:  func(inst uint64, _ []fakeItem) { applied = append(applied, inst) },
	})
	b.BeginRecovery()
	if err := mem.Replay(0, b.ReplayRecord); err != nil {
		t.Fatal(err)
	}
	b.EndRecovery()
	if len(applied) != 3 || applied[0] != 1 || applied[1] != 2 || applied[2] != 3 {
		t.Fatalf("replayed apply order %v, want [1 2 3]", applied)
	}
}

type fakeItem struct{ id types.MessageID }

func (f fakeItem) ItemID() types.MessageID { return f.id }
