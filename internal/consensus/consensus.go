// Package consensus implements the uniform consensus abstraction the paper
// assumes inside every group (§2.1–2.2): uniform integrity, termination,
// and uniform agreement.
//
// The implementation is a multi-instance, leader-driven Paxos restricted to
// one group. Leadership comes from the Ω oracle (internal/fd); safety never
// depends on Ω, only liveness does. All consensus traffic stays inside the
// group, so consensus contributes zero inter-group message delays — exactly
// the accounting the paper uses for algorithms A1 and A2, where consensus
// "is run inside groups exclusively" (§6).
//
// Liveness is proposer-driven: every process holding an undecided proposal
// periodically re-forwards it to the current leader, and the leader
// periodically re-drives its phases, so decisions survive leader crashes
// and Ω mistakes. Crucially for the paper's quiescence property (Prop.
// A.9), the retry timer is armed only while undecided proposals exist:
// an idle consensus layer sends nothing and schedules nothing.
//
// Ω mistakes include FALSE suspicions and their revocation (fd.Oracle
// Unsuspect, the heartbeat detector's trust restoration): a leader can be
// demoted mid-instance while its ballot's messages are in flight, the next
// rank drives a higher ballot concurrently, and the old leader re-drives
// after re-election. Safety through such ballot races rests on the
// acceptor guards alone — promised/accepted only move up, and a value is
// adopted from the highest accepted ballot of a promise quorum — so no
// handler consults the detector on the receive path; leadership only
// gates who initiates ballots. When an old leader's ballot has been
// outbid, its retry tick observes maxSeen > ballot and restarts with a
// fresh owned ballot, which converges once Ω stabilises
// (suspicion_test.go sweeps demotion instants across the round trip and
// storms flaps over pipelined instances to pin this).
package consensus

import (
	"fmt"
	"sort"
	"time"

	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/storage"
	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// Value is an opaque consensus value. Implementations treat it as a black
// box; clients of this package propose message sets.
type Value any

// Wire message bodies. They are exported so the live transport can register
// them with encoding/gob.
type (
	// ForwardMsg carries a proposal from a group member to the leader.
	ForwardMsg struct {
		Instance uint64
		Value    Value
	}
	// PrepareMsg is Paxos phase 1a.
	PrepareMsg struct {
		Instance uint64
		Ballot   int64
	}
	// PromiseMsg is Paxos phase 1b.
	PromiseMsg struct {
		Instance uint64
		Ballot   int64
		VBallot  int64 // highest ballot in which the sender accepted, or -1
		VValue   Value
	}
	// AcceptMsg is Paxos phase 2a.
	AcceptMsg struct {
		Instance uint64
		Ballot   int64
		Value    Value
	}
	// AcceptedMsg is Paxos phase 2b.
	AcceptedMsg struct {
		Instance uint64
		Ballot   int64
	}
	// DecideMsg announces a decision to the group.
	DecideMsg struct {
		Instance uint64
		Value    Value
	}
	// LearnMsg asks a peer for an instance's decision: the peer replies
	// with DecideMsg if it knows one and stays silent otherwise. Restarted
	// or gap-stalled learners use it to recover decisions whose original
	// announcement they missed.
	LearnMsg struct {
		Instance uint64
	}
)

// instance is the per-instance acceptor+leader state.
type instance struct {
	// Acceptor state.
	promised int64 // highest ballot promised; -1 initially (ballot 0 always allowed)
	accepted int64 // highest ballot accepted, -1 if none
	aValue   Value

	// Proposer state.
	proposal    Value // this process's own proposal, nil if none
	hasProposal bool

	// Leader state (used only while this process believes it leads).
	ballot    int64 // ballot this leader is driving, -1 if none
	phase1OK  map[types.ProcessID]PromiseMsg
	phase2OK  map[types.ProcessID]bool
	leadValue Value
	hasLead   bool

	// Learner state.
	decided  bool
	decision Value

	maxSeen int64 // highest ballot observed in any message
}

// Config configures a Consensus engine for one process.
type Config struct {
	API      node.API
	Detector fd.Detector
	// OnDecide is invoked exactly once per instance, in arrival order (not
	// necessarily instance order; clients consume decisions by their own
	// instance counter, as Algorithms A1/A2 do with K).
	OnDecide func(instance uint64, value Value)
	// RetryInterval is the re-drive period for undecided proposals.
	// Defaults to 40 ms.
	RetryInterval time.Duration
	// ProtoLabel overrides the wire label (default "consensus"); distinct
	// labels let two consensus engines coexist on one process.
	ProtoLabel string
	// Log, when non-nil, makes the acceptor durable: promised and accepted
	// ballots are persisted (and synced) BEFORE the Promise/Accepted reply
	// leaves the process, so a restarted acceptor can never break a
	// promise; decisions are appended (unsynced — they are group-durable
	// and recoverable from peers) so local replay reconstructs the applied
	// sequence. Because a consensus value is a whole ordering batch, the
	// steady-state cost is one fsync per batch, not one per message.
	Log *storage.Log
}

// Consensus is the per-process consensus engine. Register it on the
// process's node.Proc; it is driven entirely by Start/Receive/timers.
type Consensus struct {
	api   node.API
	det   fd.Detector
	onDec func(uint64, Value)
	retry time.Duration
	label string

	group   []types.ProcessID
	rank    int // index of self in group
	d       int // group size
	quorum  int
	insts   map[uint64]*instance
	pending map[uint64]bool // undecided instances with a local proposal
	timerOn bool

	log        *storage.Log
	recovering bool // replaying the log: no re-persisting
}

var _ node.Protocol = (*Consensus)(nil)

// New builds a consensus engine. It panics on a missing API, Detector, or
// OnDecide: those are wiring bugs.
func New(cfg Config) *Consensus {
	if cfg.API == nil || cfg.Detector == nil || cfg.OnDecide == nil {
		panic("consensus: Config.API, Detector and OnDecide are required")
	}
	retry := cfg.RetryInterval
	if retry <= 0 {
		retry = 40 * time.Millisecond
	}
	label := cfg.ProtoLabel
	if label == "" {
		label = "consensus"
	}
	c := &Consensus{
		api:     cfg.API,
		det:     cfg.Detector,
		onDec:   cfg.OnDecide,
		retry:   retry,
		label:   label,
		insts:   make(map[uint64]*instance),
		pending: make(map[uint64]bool),
		log:     cfg.Log,
	}
	c.group = cfg.API.Topo().Members(cfg.API.Group())
	c.d = len(c.group)
	c.quorum = c.d/2 + 1
	c.rank = -1
	for i, p := range c.group {
		if p == cfg.API.Self() {
			c.rank = i
			break
		}
	}
	if c.rank < 0 {
		panic(fmt.Sprintf("consensus: %v not in its own group", cfg.API.Self()))
	}
	return c
}

// Proto implements node.Protocol.
func (c *Consensus) Proto() string { return c.label }

// Start implements node.Protocol: it subscribes to leadership changes so
// proposals are re-routed and new leaders take over undecided instances.
func (c *Consensus) Start() {
	c.det.Subscribe(func(g types.GroupID, leader types.ProcessID) {
		if g != c.api.Group() || c.api.Crashed() {
			return
		}
		c.onLeaderChange(leader)
	})
}

// Propose submits value for the given instance. Re-proposing an instance
// that already has a local proposal or a decision is a no-op, matching the
// at-most-one-proposal-per-instance discipline (propK in the paper).
func (c *Consensus) Propose(inst uint64, value Value) {
	in := c.inst(inst)
	if in.decided || in.hasProposal {
		return
	}
	in.proposal = value
	in.hasProposal = true
	c.pending[inst] = true
	c.api.Trace(trace.StagePropose, types.MessageID{}, int64(inst))
	c.drive(inst)
	c.armTimer()
}

// Decided returns the decision for inst, if any.
func (c *Consensus) Decided(inst uint64) (Value, bool) {
	in, ok := c.insts[inst]
	if !ok || !in.decided {
		return nil, false
	}
	return in.decision, true
}

// Receive implements node.Protocol.
func (c *Consensus) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case ForwardMsg:
		c.onForward(from, m)
	case PrepareMsg:
		c.onPrepare(from, m)
	case PromiseMsg:
		c.onPromise(from, m)
	case AcceptMsg:
		c.onAccept(from, m)
	case AcceptedMsg:
		c.onAccepted(from, m)
	case DecideMsg:
		c.learn(m.Instance, m.Value)
	case LearnMsg:
		c.onLearnReq(from, m)
	default:
		panic(fmt.Sprintf("consensus: unexpected message %T", body))
	}
}

func (c *Consensus) inst(k uint64) *instance {
	in, ok := c.insts[k]
	if !ok {
		in = &instance{promised: -1, accepted: -1, ballot: -1, maxSeen: -1}
		c.insts[k] = in
	}
	return in
}

func (c *Consensus) leader() types.ProcessID { return c.det.Leader(c.api.Group()) }

func (c *Consensus) isLeader() bool { return c.leader() == c.api.Self() }

// drive makes progress on instance k from this process's perspective:
// leaders run their phases, others forward the proposal to the leader.
func (c *Consensus) drive(k uint64) {
	in := c.inst(k)
	if in.decided || !in.hasProposal {
		return
	}
	if !c.isLeader() {
		c.send(c.leader(), ForwardMsg{Instance: k, Value: in.proposal})
		return
	}
	c.lead(k, in.proposal)
}

// lead starts (or restarts) this process's leadership of instance k with
// initial value v.
func (c *Consensus) lead(k uint64, v Value) {
	in := c.inst(k)
	if in.decided {
		return
	}
	if !in.hasLead {
		in.leadValue = v
		in.hasLead = true
	}
	if in.ballot < 0 {
		in.ballot = c.nextBallot(in)
	}
	if in.ballot == 0 {
		// Ballot 0 belongs to the initial (rank-0) leader and needs no
		// phase 1: acceptors start with promised = -1 and thus accept it.
		c.broadcastAccept(k, in)
		return
	}
	if in.phase1OK != nil {
		// Phase 1 already in flight for this ballot; restarting here
		// would discard promises and livelock against re-forwarded
		// proposals. The retry timer re-drives with a fresh ballot if
		// the instance stalls.
		return
	}
	in.phase1OK = make(map[types.ProcessID]PromiseMsg, c.d)
	for _, q := range c.group {
		c.send(q, PrepareMsg{Instance: k, Ballot: in.ballot})
	}
}

// nextBallot picks the smallest ballot owned by this process greater than
// any ballot seen on instance in. Ballot b is owned by group rank b mod d.
func (c *Consensus) nextBallot(in *instance) int64 {
	b := int64(c.rank)
	for b <= in.maxSeen || b < in.ballot {
		b += int64(c.d)
	}
	return b
}

func (c *Consensus) broadcastAccept(k uint64, in *instance) {
	in.phase2OK = make(map[types.ProcessID]bool, c.d)
	for _, q := range c.group {
		c.send(q, AcceptMsg{Instance: k, Ballot: in.ballot, Value: in.leadValue})
	}
}

func (c *Consensus) onForward(from types.ProcessID, m ForwardMsg) {
	in := c.inst(m.Instance)
	if in.decided {
		// Catch-up: tell the sender the decision directly.
		c.send(from, DecideMsg{Instance: m.Instance, Value: in.decision})
		return
	}
	if !c.isLeader() {
		// Stale route; the proposer will retry toward the real leader.
		return
	}
	c.lead(m.Instance, m.Value)
}

func (c *Consensus) onPrepare(from types.ProcessID, m PrepareMsg) {
	in := c.inst(m.Instance)
	if m.Ballot > in.maxSeen {
		in.maxSeen = m.Ballot
	}
	if in.decided {
		c.send(from, DecideMsg{Instance: m.Instance, Value: in.decision})
		return
	}
	if m.Ballot < in.promised {
		return // reject silently; the leader retries with a higher ballot
	}
	// Equal ballots are re-promised: retransmitted Prepares must be
	// idempotent for liveness over lossy or reordered transports. Only a
	// ballot increase is persisted — a re-promise restates durable state.
	if m.Ballot > in.promised {
		in.promised = m.Ballot
		c.log.Append(storage.Record{Kind: storage.KindPromise, Proto: c.label, Inst: m.Instance, Ballot: m.Ballot})
	}
	// The promise must survive a crash before it is given: the reply is
	// parked until the record's durability barrier resolves — inline
	// fsync on a synchronous log, or the group-commit syncer's next
	// covering fsync when lanes batch their barriers. A re-promise rides
	// the same barrier so it can never overtake a first promise whose
	// fsync is still in flight. The reply captures the acceptor state at
	// promise time; a racing Accept at this same ballot is harmless (its
	// leader has already closed phase 1).
	reply := PromiseMsg{Instance: m.Instance, Ballot: m.Ballot, VBallot: in.accepted, VValue: in.aValue}
	if c.api.Tracing() {
		// Sub-span: how long the promise waited on its fsync barrier.
		barrier := c.api.Now()
		c.log.CommitThen(func() {
			c.api.Trace(trace.StagePromise, types.MessageID{}, int64(c.api.Now()-barrier))
			c.send(from, reply)
		})
		return
	}
	c.log.CommitThen(func() { c.send(from, reply) })
}

func (c *Consensus) onPromise(from types.ProcessID, m PromiseMsg) {
	in := c.inst(m.Instance)
	if in.decided || in.ballot != m.Ballot || in.phase1OK == nil {
		return
	}
	in.phase1OK[from] = m
	if len(in.phase1OK) < c.quorum {
		return
	}
	// Quorum of promises: adopt the value of the highest accepted ballot,
	// if any, else keep our own.
	var (
		bestBallot int64 = -1
		bestValue  Value
	)
	for _, pm := range in.phase1OK {
		if pm.VBallot > bestBallot {
			bestBallot = pm.VBallot
			bestValue = pm.VValue
		}
	}
	if bestBallot >= 0 {
		in.leadValue = bestValue
	}
	in.phase1OK = nil // phase 1 done for this ballot
	c.broadcastAccept(m.Instance, in)
}

func (c *Consensus) onAccept(from types.ProcessID, m AcceptMsg) {
	in := c.inst(m.Instance)
	if m.Ballot > in.maxSeen {
		in.maxSeen = m.Ballot
	}
	if in.decided {
		c.send(from, DecideMsg{Instance: m.Instance, Value: in.decision})
		return
	}
	if m.Ballot < in.promised {
		return
	}
	// A retransmitted Accept for the ballot already voted (one ballot
	// carries one value) restates durable state: nothing new is appended.
	if m.Ballot > in.accepted {
		in.promised = m.Ballot
		in.accepted = m.Ballot
		in.aValue = m.Value
		c.log.Append(storage.Record{Kind: storage.KindAccept, Proto: c.label, Inst: m.Instance, Ballot: m.Ballot, Value: m.Value})
	}
	// The vote must survive a crash before it is cast: parked like the
	// Promise reply in onPrepare — and a retransmission's reply shares
	// the original's barrier ordering, so it cannot leak an unsynced vote.
	reply := AcceptedMsg{Instance: m.Instance, Ballot: m.Ballot}
	if c.api.Tracing() {
		barrier := c.api.Now()
		c.log.CommitThen(func() {
			c.api.Trace(trace.StageAccept, types.MessageID{}, int64(c.api.Now()-barrier))
			c.send(from, reply)
		})
		return
	}
	c.log.CommitThen(func() { c.send(from, reply) })
}

func (c *Consensus) onAccepted(from types.ProcessID, m AcceptedMsg) {
	in := c.inst(m.Instance)
	if in.decided || in.ballot != m.Ballot || in.phase2OK == nil {
		return
	}
	in.phase2OK[from] = true
	if len(in.phase2OK) < c.quorum {
		return
	}
	// Majority accepted: the value is chosen. Announce to the group.
	for _, q := range c.group {
		c.send(q, DecideMsg{Instance: m.Instance, Value: in.leadValue})
	}
	c.learn(m.Instance, in.leadValue)
}

// learn records a decision and fires the client callback exactly once.
// The decision is appended to the log BEFORE its effects run (so replay
// order matches event order) but not synced: a decision is group-durable,
// and a restarted process recovers a lost tail from live peers.
func (c *Consensus) learn(k uint64, v Value) {
	in := c.inst(k)
	if in.decided {
		return
	}
	in.decided = true
	in.decision = v
	delete(c.pending, k)
	if !c.recovering {
		c.log.Append(storage.Record{Kind: storage.KindDecide, Proto: c.label, Inst: k, Value: v})
	}
	c.api.RecordConsensus()
	c.api.Trace(trace.StageLearn, types.MessageID{}, int64(k))
	c.onDec(k, v)
}

// onLearnReq answers a peer's decision query (restart catch-up and gap
// healing); unknown instances stay silent — the asker retries elsewhere.
func (c *Consensus) onLearnReq(from types.ProcessID, m LearnMsg) {
	if in, ok := c.insts[m.Instance]; ok && in.decided {
		c.send(from, DecideMsg{Instance: m.Instance, Value: in.decision})
	}
}

// requestDecision asks every group peer for instance k's decision.
func (c *Consensus) requestDecision(k uint64) {
	for _, q := range c.group {
		if q != c.api.Self() {
			c.send(q, LearnMsg{Instance: k})
		}
	}
}

func (c *Consensus) onLeaderChange(leader types.ProcessID) {
	// Re-route pending proposals; a new leader takes over immediately.
	for _, k := range c.sortedPending() {
		c.drive(k)
	}
	c.armTimer()
}

// armTimer schedules the retry tick if undecided proposals exist. The timer
// chain stops as soon as pending drains, keeping the layer quiescent.
func (c *Consensus) armTimer() {
	if c.timerOn || len(c.pending) == 0 {
		return
	}
	c.timerOn = true
	c.api.After(c.retry, func() {
		c.timerOn = false
		for _, k := range c.sortedPending() {
			in := c.inst(k)
			if in.decided {
				continue
			}
			switch {
			case !c.isLeader() || !in.hasLead:
				c.drive(k)
			case in.maxSeen > in.ballot:
				// Outbid by a higher ballot: restart with a fresh one.
				in.ballot = c.nextBallot(in)
				in.phase1OK = nil
				in.phase2OK = nil
				c.lead(k, in.leadValue)
			case in.phase1OK != nil:
				// Phase 1 in flight: retransmit the Prepare and keep the
				// promises collected so far. Equal-ballot Prepares are
				// re-promised, so this converges even when the retry
				// period is shorter than the group's round-trip time —
				// bumping the ballot here instead would livelock.
				for _, q := range c.group {
					c.send(q, PrepareMsg{Instance: k, Ballot: in.ballot})
				}
			case in.phase2OK != nil:
				// Phase 2 in flight: retransmit the Accept likewise.
				for _, q := range c.group {
					c.send(q, AcceptMsg{Instance: k, Ballot: in.ballot, Value: in.leadValue})
				}
			default:
				c.lead(k, in.leadValue)
			}
		}
		c.armTimer()
	})
}

func (c *Consensus) sortedPending() []uint64 {
	ks := make([]uint64, 0, len(c.pending))
	for k := range c.pending {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func (c *Consensus) send(to types.ProcessID, body any) {
	c.api.Send(to, c.label, body)
}
