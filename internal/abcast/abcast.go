// Package abcast implements Algorithm A2 of the paper: the first
// fault-tolerant atomic broadcast with a latency degree of one (§5).
//
// The algorithm is proactive: processes execute an unbounded sequence of
// rounds. In round K, each group agrees (by intra-group consensus) on its
// bundle of messages — the messages R-Delivered locally but not yet
// A-Delivered — then groups exchange bundles, and everyone A-Delivers the
// union of all round-K bundles in a deterministic order. Because a message
// R-MCast inside its caster's group rides the very next bundle exchange,
// its only inter-group delay is that single exchange: latency degree one.
//
// Quiescence (Prop. A.9) comes from the Barrier variable: a round that
// delivers nothing does not raise the Barrier, so once R-Delivered messages
// drain and casts cease, line 11's guard goes false forever and processes
// stop. A cast arriving after quiescence restarts rounds — the caster's
// group via line 11's first disjunct, the other groups via the bundle they
// receive (line 10) — at the cost of latency degree two (Theorem 5.2),
// which §3 proves unavoidable.
//
// Rounds run on the batched, pipelined ordering engine of
// internal/consensus, shared with Algorithm A1: the engine owns the
// propose window (Config.Pipeline rounds in flight beyond the current
// delivery round), the per-round batch cap (Config.MaxBatch), in-flight
// exclusion, and in-order consumption of out-of-order decisions. The
// quiescence logic stays here, expressed as the engine's Gate: a round
// past the Barrier with nothing to propose is not started.
package abcast

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"wanamcast/internal/consensus"
	"wanamcast/internal/fd"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/storage"
	"wanamcast/internal/trace"
	"wanamcast/internal/types"
)

// Record is one broadcast message as it travels in bundles.
type Record struct {
	ID      types.MessageID
	Payload any
}

// ItemID implements consensus.Item.
func (r Record) ItemID() types.MessageID { return r.ID }

// BundleMsg is the (K, msgSet) inter-group message of line 15.
type BundleMsg struct {
	Round uint64
	Set   []Record
}

// Config configures an A2 endpoint on one process.
type Config struct {
	Host     node.Registrar
	Detector fd.Detector
	// OnDeliver is invoked on every A-Deliver, in delivery order. May be
	// nil.
	OnDeliver func(id types.MessageID, payload any)
	// ConsensusRetry overrides the consensus retry interval.
	ConsensusRetry time.Duration
	// LabelPrefix namespaces the wire labels (default "a2").
	LabelPrefix string
	// AlwaysOn disables the quiescence prediction: rounds run forever
	// (Barrier is treated as infinite). Used by the proactivity ablation;
	// note an AlwaysOn run never drains its event queue.
	AlwaysOn bool
	// NextID overrides cast-ID allocation. Hosts running several casting
	// endpoints on one process must share one allocator, or their message
	// IDs collide. Nil uses a private per-endpoint counter.
	NextID func() types.MessageID
	// KeepAliveRounds is the quiescence predictor's patience: after a
	// useful round, keep executing up to this many further rounds even if
	// they deliver nothing, before predicting that casts have stopped.
	// The paper's Algorithm A2 corresponds to 1 (the round after a useful
	// one always runs, lines 22–23); higher values implement the "more
	// elaborate prediction strategies" §5.3 suggests for bursty traffic:
	// a cast arriving within the patience window still enjoys latency
	// degree one, at the price of extra empty-round traffic. Zero means 1.
	KeepAliveRounds int
	// Pipeline is the maximum number of rounds in flight. The paper's
	// Algorithm A2 is strictly sequential (Pipeline 1, the default): the
	// wait at line 16 blocks round K+1's consensus until round K's
	// bundles arrive, so round throughput is one per inter-group delay.
	// Higher values are an extension: a group may propose and ship rounds
	// K+1..K+Pipeline−1 while earlier bundles are still in flight;
	// A-Delivery still happens strictly in round order, so every §2.2
	// property is preserved, and a message never waits a full WAN delay
	// for the next proposable round. Messages decided in an in-flight
	// round are excluded from later proposals, but that exclusion is
	// local to each proposer: with Pipeline >= 2 two members can decide
	// the same record into two rounds' bundles, so bundle shipping is
	// at-least-once. Delivery stays exactly-once — tryCompleteRound
	// dedups via ADELIVERED identically at every process.
	Pipeline int
	// MaxBatch caps how many records one round's bundle may carry. Zero
	// means unbounded — the paper's rule (the bundle is everything
	// R-Delivered but not yet A-Delivered).
	MaxBatch int
	// Log, when non-nil, makes the endpoint durable: the consensus
	// acceptor persists promises and votes, round decisions and received
	// remote bundles are appended for replay, and state transfer
	// (StartSync) records the rounds it adopts from peers.
	Log *storage.Log
	// SyncArchive bounds how many recent completed rounds (with their
	// delivered unions) are retained to serve restarted group peers'
	// state transfer. Default 4096.
	SyncArchive int
	// OnSynced, when non-nil, fires once a StartSync state transfer has
	// caught this endpoint up with its group.
	OnSynced func()
	// OnSyncFailed, when non-nil, fires the moment a state transfer is
	// abandoned as unrecoverable (see SyncFailed). The host's flight
	// recorder hangs its span dump here.
	OnSyncFailed func()
}

// Bcast is the per-process Algorithm A2 endpoint.
type Bcast struct {
	api       node.API
	onDeliver func(types.MessageID, any)
	label     string
	alwaysOn  bool
	keepAlive uint64

	rm     *rmcast.RMcast
	engine *consensus.Batcher[Record]

	// wm counts this endpoint's A-Deliveries, readable lock-free off the
	// event loop (the read tier's delivery watermark).
	wm atomic.Uint64

	k          uint64 // current delivery round (line 2's K)
	rdelivered map[types.MessageID]Record
	adelivered map[types.MessageID]bool
	rdOrder    []types.MessageID // R-Delivery order, for deterministic proposals
	barrier    uint64
	bundles    map[uint64]map[types.GroupID][]Record // Msgs, keyed by round then sender group
	decided    map[uint64][]Record                   // own group's decided bundle per round
	inDecided  map[types.MessageID]bool              // decided into a bundle, not yet delivered
	castSeq    uint64
	nextID     func() types.MessageID
	rdAt       map[types.MessageID]time.Duration // R-Delivery times, kept only while tracing

	// Durability & recovery state (see Config.Log).
	log        *storage.Log
	archive    []roundUnion // completed rounds [archBase, k)
	archBase   uint64       // first archived round (rounds start at 1)
	archCap    int
	syncing    bool // state transfer in progress: round completion gated
	syncFailed bool // transfer abandoned (peers' archives rotated past us)
	syncHeard  map[types.ProcessID]syncPeerInfo
	onSynced   func()
	onFailed   func() // OnSyncFailed
}

// syncPeerInfo is the latest sync answer seen from one group peer.
type syncPeerInfo struct {
	next uint64
	busy bool
}

// roundUnion is one completed round's delivered union, archived for
// restarted peers.
type roundUnion struct {
	round uint64
	set   []Record
}

var _ node.Protocol = (*Bcast)(nil)

// New builds an A2 endpoint and registers it (with its sub-protocols) on
// the host process.
func New(cfg Config) *Bcast {
	if cfg.Host == nil || cfg.Detector == nil {
		panic("abcast: Config.Host and Detector are required")
	}
	prefix := cfg.LabelPrefix
	if prefix == "" {
		prefix = "a2"
	}
	keepAlive := uint64(cfg.KeepAliveRounds)
	if keepAlive == 0 {
		keepAlive = 1
	}
	archCap := cfg.SyncArchive
	if archCap <= 0 {
		archCap = 4096
	}
	b := &Bcast{
		api:        cfg.Host,
		onDeliver:  cfg.OnDeliver,
		label:      prefix,
		alwaysOn:   cfg.AlwaysOn,
		keepAlive:  keepAlive,
		k:          1,
		rdelivered: make(map[types.MessageID]Record),
		adelivered: make(map[types.MessageID]bool),
		bundles:    make(map[uint64]map[types.GroupID][]Record),
		decided:    make(map[uint64][]Record),
		inDecided:  make(map[types.MessageID]bool),
		nextID:     cfg.NextID,
		log:        cfg.Log,
		archBase:   1,
		archCap:    archCap,
		onSynced:   cfg.OnSynced,
		onFailed:   cfg.OnSyncFailed,
	}
	if b.nextID == nil {
		b.nextID = func() types.MessageID {
			b.castSeq++
			return types.MessageID{Origin: b.api.Self(), Seq: b.castSeq}
		}
	}
	b.rm = rmcast.New(rmcast.Config{
		API:        cfg.Host,
		Mode:       rmcast.ModeEager, // intra-group only: cheap, robust agreement
		OnDeliver:  b.onRDeliver,
		ProtoLabel: prefix + ".rm",
	})
	b.engine = consensus.NewBatcher(consensus.BatcherConfig[Record]{
		API:           cfg.Host,
		Detector:      cfg.Detector,
		RetryInterval: cfg.ConsensusRetry,
		ProtoLabel:    prefix + ".cons",
		MaxBatch:      cfg.MaxBatch,
		Pipeline:      cfg.Pipeline,
		Log:           cfg.Log,
		Fill:          b.fillBundle,
		Gate:          b.mayPropose,
		Base:          func() uint64 { return b.k },
		OnDecide:      b.shipBundle,
		OnApply:       b.applyRound,
	})
	cfg.Host.Register(b.rm)
	cfg.Host.Register(b.engine.Protocol())
	cfg.Host.Register(b)
	return b
}

// Proto implements node.Protocol.
func (b *Bcast) Proto() string { return b.label }

// Start implements node.Protocol.
func (b *Bcast) Start() {}

// ABCast atomically broadcasts payload to all groups and returns the
// assigned message ID (Task 1, lines 4–5): the message is reliably
// multicast to the caster's own group only.
func (b *Bcast) ABCast(payload any) types.MessageID {
	id := b.nextID()
	b.api.RecordCast(id)
	own := types.NewGroupSet(b.api.Group())
	b.rm.MCast(rmcast.Message{ID: id, Dest: own, Payload: payload})
	return id
}

// Round returns the process's current round number K (for tests).
func (b *Bcast) Round() uint64 { return b.k }

// Barrier returns the current Barrier value (for tests).
func (b *Bcast) Barrier() uint64 { return b.barrier }

// onRDeliver is Task 2, lines 6–7.
func (b *Bcast) onRDeliver(m rmcast.Message) {
	if b.adelivered[m.ID] {
		// Already A-Delivered via a remote bundle (and pruned from the
		// R-Delivered working set); re-admitting would re-propose it.
		return
	}
	if _, ok := b.rdelivered[m.ID]; ok {
		return
	}
	b.rdelivered[m.ID] = Record{ID: m.ID, Payload: m.Payload}
	b.rdOrder = append(b.rdOrder, m.ID)
	if b.api.Tracing() {
		if b.rdAt == nil {
			b.rdAt = make(map[types.MessageID]time.Duration)
		}
		b.rdAt[m.ID] = b.api.Now()
	}
	b.engine.Pump()
}

// Receive implements node.Protocol: it handles bundle messages from other
// groups (Task 3, lines 8–10) and the restart state-transfer exchange.
func (b *Bcast) Receive(from types.ProcessID, body any) {
	switch m := body.(type) {
	case BundleMsg:
		b.handleBundle(b.api.Topo().GroupOf(from), m.Round, m.Set, false)
	case SyncReq:
		b.onSyncReq(from, m)
	case SyncResp:
		b.onSyncResp(from, m)
	default:
		panic(fmt.Sprintf("abcast: unexpected message %T", body))
	}
}

// handleBundle records one remote group's round bundle. replay marks WAL
// replay: state advances identically but nothing is re-logged.
func (b *Bcast) handleBundle(g types.GroupID, round uint64, set []Record, replay bool) {
	if round < b.k {
		// The round already completed here: every member of the sender
		// group ships its group's bundle, so late copies keep arriving
		// after the first one completed the round. Storing them would
		// re-create bundles[round] entries nothing ever reads or
		// deletes again; and a completed round can no longer need the
		// Barrier raised to it (future rounds are all > round).
		return
	}
	perGroup := b.bundles[round]
	if perGroup == nil {
		perGroup = make(map[types.GroupID][]Record)
		b.bundles[round] = perGroup
	}
	if _, seen := perGroup[g]; !seen {
		perGroup[g] = set
		if !replay {
			// Unsynced: a lost tail bundle is re-fetched from peers by the
			// next restart's state transfer.
			b.log.Append(storage.Record{Kind: storage.KindBundle, Proto: b.label,
				Inst: round, Aux: uint64(g), Value: set})
		}
	}
	if round > b.barrier {
		b.barrier = round
	}
	b.engine.Pump()
	b.tryCompleteRound()
}

// fillBundle is the engine's Fill hook (Task 4, line 12's msgSet):
// RDELIVERED \ ADELIVERED, minus messages decided into an undelivered
// bundle or in flight in an undecided round (relevant only when
// pipelining), in R-Delivery order up to limit. Both fences are local to
// this proposer — a record this process never proposed can still be
// decided into two concurrent rounds by different members — so they bound
// redundant shipping rather than prevent it (see Config.Pipeline).
func (b *Bcast) fillBundle(exclude func(types.MessageID) bool, limit int) []Record {
	var out []Record
	for _, id := range b.rdOrder {
		if b.adelivered[id] || b.inDecided[id] || exclude(id) {
			continue
		}
		out = append(out, b.rdelivered[id])
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// mayPropose is the engine's Gate (line 11's guard, generalized): a round
// is started if it is within the Barrier (keepalive), there is something
// to propose, or quiescence prediction is off.
func (b *Bcast) mayPropose(inst uint64, batch []Record) bool {
	return b.alwaysOn || inst <= b.barrier || len(batch) > 0
}

// shipBundle is the engine's OnDecide hook (line 14's "When Decided" and
// line 15): the moment our group's round bundle is decided — possibly out
// of round order when pipelining — ship it to every process outside the
// group and fence its records against re-proposal.
func (b *Bcast) shipBundle(inst uint64, set []Record) {
	for _, rec := range set {
		b.inDecided[rec.ID] = true
	}
	myGroup := b.api.Group()
	topo := b.api.Topo()
	var tos []types.ProcessID
	for _, q := range topo.AllProcesses() {
		if topo.GroupOf(q) != myGroup {
			tos = append(tos, q)
		}
	}
	b.api.Multicast(tos, b.label, BundleMsg{Round: inst, Set: set})
}

// applyRound is the engine's OnApply hook: decisions arrive here in dense
// round order; completing the round additionally waits for the other
// groups' bundles (the wait at line 16).
func (b *Bcast) applyRound(inst uint64, set []Record) {
	b.decided[inst] = set
	b.tryCompleteRound()
}

// tryCompleteRound is the event-driven form of the wait at line 16: once
// our own round-K bundle is decided and a bundle from every other group has
// arrived, execute lines 17–23.
func (b *Bcast) tryCompleteRound() {
	if b.syncing {
		// State transfer in progress: rounds this process missed must be
		// adopted (in order) before any new round may deliver.
		return
	}
	own, ok := b.decided[b.k]
	if !ok {
		return
	}
	topo := b.api.Topo()
	myGroup := b.api.Group()
	perGroup := b.bundles[b.k]
	for _, g := range topo.AllGroups().Groups() {
		if g == myGroup {
			continue
		}
		if _, have := perGroup[g]; !have {
			return
		}
	}
	// Lines 17–18: the round's delivery set is the union of all bundles.
	union := make([]Record, 0, len(own))
	union = append(union, own...)
	for _, g := range topo.AllGroups().Groups() {
		if g != myGroup {
			union = append(union, perGroup[g]...)
		}
	}
	// Line 19: deterministic order — ascending message ID.
	sort.Slice(union, func(i, j int) bool { return union[i].ID.Less(union[j].ID) })
	for _, rec := range union {
		delete(b.inDecided, rec.ID)
		delete(b.rdelivered, rec.ID)
		if b.adelivered[rec.ID] {
			delete(b.rdAt, rec.ID)
			continue
		}
		b.adelivered[rec.ID] = true
		b.wm.Add(1)
		if at, ok := b.rdAt[rec.ID]; ok {
			// Ordering residency: R-Delivery → round completion.
			b.api.Trace(trace.StageOrder, rec.ID, int64(b.api.Now()-at))
			delete(b.rdAt, rec.ID)
		}
		b.api.RecordDeliver(rec.ID)
		b.api.Tracef("a2: A-Deliver %v in round %d", rec.ID, b.k)
		if b.onDeliver != nil {
			b.onDeliver(rec.ID, rec.Payload)
		}
	}
	// Compact the R-Delivery working set: fillBundle walks rdOrder on
	// every Pump, so delivered entries must not accumulate across rounds.
	if len(union) > 0 {
		kept := b.rdOrder[:0]
		for _, id := range b.rdOrder {
			if _, ok := b.rdelivered[id]; ok {
				kept = append(kept, id)
			}
		}
		b.rdOrder = kept
	}
	delete(b.bundles, b.k)
	delete(b.decided, b.k)
	b.archiveRound(b.k, union)
	// Line 21.
	b.k++
	// Lines 22–23: keep rounds running only if this one was useful. The
	// predictor's patience (KeepAliveRounds, paper default 1) extends the
	// Barrier past the next round for bursty workloads.
	if len(union) > 0 && b.k+b.keepAlive-1 > b.barrier {
		b.barrier = b.k + b.keepAlive - 1
	}
	// An already-received decision or bundle may complete the next round.
	b.engine.Pump()
	b.tryCompleteRound()
}
