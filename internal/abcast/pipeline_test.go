package abcast

import (
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// newRigPipe is newRig with a configurable pipeline depth.
func newRigPipe(t *testing.T, groups, per, pipeline int) *rig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{LogSends: true}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, col)
	r := &rig{
		topo:    topo,
		rt:      rt,
		col:     col,
		checker: check.New(topo),
		eps:     make([]*Bcast, topo.N()),
		crashed: make(map[types.ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		r.eps[id] = New(Config{
			Host:     rt.Proc(id),
			Detector: rt.Oracle(),
			Pipeline: pipeline,
			OnDeliver: func(mid types.MessageID, payload any) {
				r.checker.RecordDeliver(id, mid)
			},
		})
	}
	rt.Start()
	return r
}

// highRate schedules casts every 10ms — far faster than the ~104ms round
// time — and returns the mean wall latency over all of them.
func highRate(t *testing.T, r *rig, casts int) time.Duration {
	t.Helper()
	r.warm()
	var ids []types.MessageID
	for i := 1; i <= casts; i++ {
		i := i
		from := r.topo.Members(types.GroupID(i % r.topo.NumGroups()))[i%3]
		r.rt.Scheduler().At(time.Duration(10*i)*time.Millisecond, func() {
			ids = append(ids, r.cast(from))
		})
	}
	r.rt.Scheduler().MaxSteps = 10_000_000
	r.rt.Run()
	r.verify(t)
	var sum time.Duration
	for _, id := range ids {
		w, ok := r.col.WallLatency(id)
		if !ok {
			t.Fatalf("%v not delivered", id)
		}
		sum += w
	}
	return sum / time.Duration(len(ids))
}

// TestPipelineCorrectUnderLoad: deep pipelines preserve every §2.2
// property (verify runs inside highRate) and still deliver everything.
func TestPipelineCorrectUnderLoad(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 8} {
		r := newRigPipe(t, 2, 3, depth)
		highRate(t, r, 30)
	}
}

// TestPipelineImprovesLatencyUnderLoad: at cast rates far above one per
// round, the sequential algorithm queues messages for the next proposable
// round (up to a full WAN delay away); pipelining proposes a fresh round
// every consensus completion, cutting the queueing wait.
func TestPipelineImprovesLatencyUnderLoad(t *testing.T) {
	seq := highRate(t, newRigPipe(t, 2, 3, 1), 30)
	pipe := highRate(t, newRigPipe(t, 2, 3, 8), 30)
	if pipe >= seq {
		t.Fatalf("pipelining did not help: sequential mean %v, pipelined mean %v", seq, pipe)
	}
	t.Logf("mean wall latency: sequential %v, pipeline-8 %v", seq, pipe)
}

// TestPipelineStillQuiescent: Prop. A.9 must survive the extension.
func TestPipelineStillQuiescent(t *testing.T) {
	r := newRigPipe(t, 2, 2, 4)
	r.warm()
	r.castAt(50*time.Millisecond, 1)
	r.rt.Scheduler().MaxSteps = 5_000_000
	r.rt.Run() // termination is the assertion
	r.verify(t)
	end := r.rt.Now()
	before := r.col.Snapshot().TotalMessages
	r.rt.RunUntil(end + 5*time.Second)
	if after := r.col.Snapshot().TotalMessages; after != before {
		t.Fatalf("pipelined system kept sending after drain: +%d", after-before)
	}
}

// TestPipelineNoDuplicateShipping: a message decided into an in-flight
// round must not reappear in later proposals (the inDecided/inFlight
// exclusion), so each cast occupies exactly one round bundle per group.
func TestPipelineNoDuplicateShipping(t *testing.T) {
	r := newRigPipe(t, 2, 2, 4)
	r.warm()
	var id types.MessageID
	r.rt.Scheduler().At(30*time.Millisecond, func() { id = r.cast(0) })
	r.rt.Run()
	r.verify(t)
	// Count bundle messages containing the probe: exactly one round's
	// bundles from group 0 (2 members × 2 outside receivers = 4 copies).
	count := 0
	for _, s := range r.col.Sends() {
		if s.Proto != "a2" {
			continue
		}
		_ = s
	}
	// The send log does not retain bodies; assert via delivery count and
	// round agreement instead: the probe delivered exactly once anywhere.
	for _, p := range r.topo.AllProcesses() {
		n := 0
		for _, got := range r.checker.Sequence(p) {
			if got == id {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("p%v delivered probe %d times", p, n)
		}
	}
	_ = count
}
