package abcast

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

type rig struct {
	topo    *types.Topology
	rt      *node.Runtime
	col     *metrics.Collector
	checker *check.Checker
	eps     []*Bcast
	crashed map[types.ProcessID]bool
}

func newRig(t *testing.T, groups, per int, seed int64) *rig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{LogSends: true}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, seed, col)
	r := &rig{
		topo:    topo,
		rt:      rt,
		col:     col,
		checker: check.New(topo),
		eps:     make([]*Bcast, topo.N()),
		crashed: make(map[types.ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		r.eps[id] = New(Config{
			Host:     rt.Proc(id),
			Detector: rt.Oracle(),
			OnDeliver: func(mid types.MessageID, payload any) {
				r.checker.RecordDeliver(id, mid)
			},
		})
	}
	rt.Start()
	return r
}

func (r *rig) cast(from types.ProcessID) types.MessageID {
	id := r.eps[from].ABCast("payload")
	r.checker.RecordCast(id, r.topo.AllGroups())
	return id
}

func (r *rig) castAt(at time.Duration, from types.ProcessID) {
	r.rt.Scheduler().At(at, func() {
		if !r.crashed[from] {
			r.cast(from)
		}
	})
}

func (r *rig) crash(p types.ProcessID, at time.Duration) {
	r.crashed[p] = true
	r.rt.CrashAt(p, at)
}

func (r *rig) verify(t *testing.T) {
	t.Helper()
	correct := func(p types.ProcessID) bool { return !r.crashed[p] }
	caster := func(id types.MessageID) bool { return !r.crashed[id.Origin] }
	if v := r.checker.Check(correct, caster); len(v) != 0 {
		t.Fatalf("property violations:\n%v", v)
	}
}

// warm synchronizes rounds by broadcasting from every group at t=0.
func (r *rig) warm() {
	for g := 0; g < r.topo.NumGroups(); g++ {
		r.castAt(0, r.topo.Members(types.GroupID(g))[0])
	}
}

// TestColdStartDegreeTwo is Theorem 5.2's run: the first broadcast after
// quiescence costs latency degree two.
func TestColdStartDegreeTwo(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	id := r.cast(0)
	r.rt.Run()
	deg, ok := r.col.LatencyDegree(id)
	if !ok || deg != 2 {
		t.Fatalf("degree = %d ok=%v, want 2", deg, ok)
	}
	r.verify(t)
}

// TestWarmDegreeOne is Theorem 5.1's run: with synchronized rounds
// running, a broadcast achieves latency degree one.
func TestWarmDegreeOne(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.warm()
	var id types.MessageID
	r.rt.Scheduler().At(50*time.Millisecond, func() { id = r.cast(1) })
	r.rt.Run()
	deg, ok := r.col.LatencyDegree(id)
	if !ok || deg != 1 {
		t.Fatalf("degree = %d ok=%v, want 1 (Theorem 5.1)", deg, ok)
	}
	r.verify(t)
}

// TestSustainedStreamKeepsDegreeOne: §5.3 — if the inter-cast period stays
// below the round duration, rounds never stop and every later message
// enjoys latency degree one.
func TestSustainedStreamKeepsDegreeOne(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.warm()
	var probes []types.MessageID
	// One broadcast every 50ms < ~104ms round time, alternating groups.
	for i := 1; i <= 12; i++ {
		i := i
		from := r.topo.Members(types.GroupID(i % 2))[i%3]
		r.rt.Scheduler().At(time.Duration(50*i)*time.Millisecond, func() {
			probes = append(probes, r.cast(from))
		})
	}
	r.rt.Run()
	for _, id := range probes {
		deg, ok := r.col.LatencyDegree(id)
		if !ok {
			t.Fatalf("%v not delivered", id)
		}
		if deg != 1 {
			t.Errorf("%v degree = %d, want 1 in the sustained regime", id, deg)
		}
	}
	r.verify(t)
}

// TestQuiescence is Proposition A.9: finitely many broadcasts ⇒ processes
// eventually stop sending. The simulator's event queue draining is exactly
// that: no timers, no messages.
func TestQuiescence(t *testing.T) {
	r := newRig(t, 3, 3, 1)
	r.warm()
	for i := 1; i <= 5; i++ {
		r.castAt(time.Duration(30*i)*time.Millisecond, types.ProcessID(i%9))
	}
	r.rt.Run() // draining terminates ⇒ quiescent
	end := r.rt.Now()
	lastSend, any := r.col.LastSend()
	if !any {
		t.Fatal("nothing was sent at all")
	}
	if lastSend >= end+time.Nanosecond {
		t.Fatalf("sends continued past the end: %v vs %v", lastSend, end)
	}
	r.verify(t)
	// After draining, injecting nothing for a long virtual stretch changes
	// nothing (no hidden periodic traffic).
	before := r.col.Snapshot().TotalMessages
	r.rt.RunUntil(end + 10*time.Second)
	if after := r.col.Snapshot().TotalMessages; after != before {
		t.Fatalf("quiescent system sent %d more messages", after-before)
	}
}

// TestRestartAfterQuiescence: a cast after rounds stopped restarts them —
// the caster's group via line 11, the others via the received bundle
// raising Barrier (line 10).
func TestRestartAfterQuiescence(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	first := r.cast(0)
	r.rt.Run()          // quiesce
	second := r.cast(4) // from the *other* group, after quiescence
	r.rt.Run()
	for _, id := range []types.MessageID{first, second} {
		for _, p := range r.topo.AllProcesses() {
			found := false
			for _, got := range r.checker.Sequence(p) {
				if got == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v missing at p%v", id, p)
			}
		}
	}
	deg, _ := r.col.LatencyDegree(second)
	if deg != 2 {
		t.Errorf("post-quiescence degree = %d, want 2 (Theorem 5.2)", deg)
	}
	r.verify(t)
}

// TestRoundsStopWhenUseless: Barrier stops advancing once a round delivers
// nothing; K freezes.
func TestRoundsStopWhenUseless(t *testing.T) {
	r := newRig(t, 2, 2, 1)
	r.cast(0)
	r.rt.Run()
	k := r.eps[0].Round()
	bar := r.eps[0].Barrier()
	if k <= bar {
		t.Errorf("rounds still runnable after drain: K=%d Barrier=%d", k, bar)
	}
	// The delivering round r raised Barrier to r+1; the empty round r+1
	// did not raise it further: K = Barrier + 1.
	if k != bar+1 {
		t.Errorf("K=%d Barrier=%d, want K=Barrier+1", k, bar)
	}
}

// TestTotalOrderAcrossManyCasters: all processes deliver the identical
// global sequence (for broadcast, prefix order degenerates to one order).
func TestTotalOrderAcrossManyCasters(t *testing.T) {
	r := newRig(t, 3, 2, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		r.castAt(time.Duration(rng.Intn(500))*time.Millisecond, types.ProcessID(rng.Intn(6)))
	}
	r.rt.Run()
	ref := r.checker.Sequence(0)
	if len(ref) != 20 {
		t.Fatalf("p0 delivered %d of 20", len(ref))
	}
	for _, p := range r.topo.AllProcesses()[1:] {
		seq := r.checker.Sequence(p)
		if len(seq) != len(ref) {
			t.Fatalf("p%v delivered %d of %d", p, len(seq), len(ref))
		}
		for i := range ref {
			if seq[i] != ref[i] {
				t.Fatalf("p%v order diverges at %d", p, i)
			}
		}
	}
	r.verify(t)
}

// TestRoundNumbersAgree: Lemma A.15 / A.16 — processes complete the same
// rounds with the same bundles; terminal K values agree.
func TestRoundNumbersAgree(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.warm()
	for i := 1; i <= 6; i++ {
		r.castAt(time.Duration(40*i)*time.Millisecond, types.ProcessID(i%6))
	}
	r.rt.Run()
	k0 := r.eps[0].Round()
	for _, p := range r.topo.AllProcesses()[1:] {
		if r.eps[p].Round() != k0 {
			t.Errorf("terminal rounds diverge: p0=%d p%v=%d", k0, p, r.eps[p].Round())
		}
	}
	r.verify(t)
}

// TestCrashMinorityMidStream: uniform agreement and total order survive
// minority crashes in every group.
func TestCrashMinorityMidStream(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newRig(t, 2, 3, seed)
			rng := rand.New(rand.NewSource(seed + 50))
			r.warm()
			for i := 1; i <= 10; i++ {
				r.castAt(time.Duration(30*i)*time.Millisecond, types.ProcessID(rng.Intn(6)))
			}
			r.crash(types.ProcessID(rng.Intn(3)), time.Duration(50+rng.Intn(150))*time.Millisecond)
			r.crash(types.ProcessID(3+rng.Intn(3)), time.Duration(50+rng.Intn(150))*time.Millisecond)
			r.rt.Run()
			r.verify(t)
		})
	}
}

// TestCasterCrashAfterCast: the message was R-MCast to the caster's group
// eagerly; uniform agreement must deliver it everywhere or nowhere, and
// with the eager relay it is everywhere.
func TestCasterCrashAfterCast(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	id := r.cast(0)
	r.crash(0, 0)
	r.rt.Run()
	for _, p := range []types.ProcessID{1, 2, 3, 4, 5} {
		found := false
		for _, got := range r.checker.Sequence(p) {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("correct p%v missed the crashed caster's message", p)
		}
	}
	r.verify(t)
}

// TestLeaderCrashDuringRound: the group's consensus recovers and the round
// completes.
func TestLeaderCrashDuringRound(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.cast(1)
	r.crash(0, 2*time.Millisecond) // g0's leader mid-consensus
	r.rt.Run()
	r.verify(t)
	for _, p := range []types.ProcessID{1, 2, 3, 4, 5} {
		if len(r.checker.Sequence(p)) != 1 {
			t.Errorf("p%v delivered %d, want 1", p, len(r.checker.Sequence(p)))
		}
	}
}

// TestEmptyProposalRounds: groups with nothing to send propose empty sets
// (line 12's note) and rounds still complete.
func TestEmptyProposalRounds(t *testing.T) {
	r := newRig(t, 3, 2, 1)
	id := r.cast(0) // only group 0 ever has content
	r.rt.Run()
	for _, p := range r.topo.AllProcesses() {
		if len(r.checker.Sequence(p)) != 1 || r.checker.Sequence(p)[0] != id {
			t.Fatalf("p%v sequence wrong", p)
		}
	}
	r.verify(t)
}

// TestMessageComplexityPerRound: each round exchanges bundles all-to-all
// across groups: n(n−d) inter-group bundle messages per round — the O(n²)
// row of Figure 1(b).
func TestMessageComplexityPerRound(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.cast(0)
	r.rt.Run()
	st := r.col.Snapshot()
	bundles := st.PerProtocol["a2"]
	// Rounds executed: delivering round + trailing empty round = 2, each
	// sending 6·3 = 18 inter-group bundle messages.
	if bundles.InterGroup != 36 {
		t.Errorf("bundle inter-group messages = %d, want 36", bundles.InterGroup)
	}
	if bundles.Total != bundles.InterGroup {
		t.Errorf("bundles must all be inter-group: %+v", bundles)
	}
}

// TestRandomWorkloads: property-style sweep over seeds.
func TestRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := newRig(t, 1+int(seed%3)+1, 2, seed)
			rng := rand.New(rand.NewSource(seed))
			n := r.topo.N()
			for i := 0; i < 15; i++ {
				r.castAt(time.Duration(rng.Intn(400))*time.Millisecond, types.ProcessID(rng.Intn(n)))
			}
			r.rt.Run()
			r.verify(t)
		})
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on missing config")
		}
	}()
	New(Config{})
}
