package abcast

import (
	"bytes"
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// TestSnapshotRoundTrip pins the recovery encoding: an endpoint's
// snapshot, restored into a fresh endpoint, re-encodes byte-identically.
func TestSnapshotRoundTrip(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	// Completed rounds in the archive plus in-flight state: run the clock
	// only partway through a second burst.
	r.cast(0)
	r.cast(3)
	r.rt.RunUntil(250 * time.Millisecond)
	r.cast(1)
	r.cast(4)
	r.rt.RunUntil(300 * time.Millisecond)

	for _, p := range []types.ProcessID{0, 3} {
		snap := r.eps[p].AppendSnapshot(nil)

		topo := types.NewTopology(2, 3)
		rt2 := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, nil)
		shadow := New(Config{
			Host:      rt2.Proc(p),
			Detector:  rt2.Oracle(),
			OnDeliver: func(mid types.MessageID, payload any) {},
		})
		if err := shadow.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore %v: %v", p, err)
		}
		if got := shadow.AppendSnapshot(nil); !bytes.Equal(got, snap) {
			t.Fatalf("%v: snapshot does not round-trip (%d vs %d bytes)", p, len(got), len(snap))
		}
		if shadow.Round() != r.eps[p].Round() {
			t.Fatalf("%v: round %d != %d after restore", p, shadow.Round(), r.eps[p].Round())
		}
		if shadow.Barrier() != r.eps[p].Barrier() {
			t.Fatalf("%v: barrier %d != %d after restore", p, shadow.Barrier(), r.eps[p].Barrier())
		}
	}
}
