package abcast

// Tests for the shared batching engine under Algorithm A2: bundle caps,
// determinism with pipelining, and total order at every knob setting.

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// newRigKnobs is newRig with explicit MaxBatch and Pipeline.
func newRigKnobs(t *testing.T, groups, per int, seed int64, maxBatch, pipeline int) *rig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{LogSends: true}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, seed, col)
	r := &rig{
		topo:    topo,
		rt:      rt,
		col:     col,
		checker: check.New(topo),
		eps:     make([]*Bcast, topo.N()),
		crashed: make(map[types.ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		r.eps[id] = New(Config{
			Host:     rt.Proc(id),
			Detector: rt.Oracle(),
			MaxBatch: maxBatch,
			Pipeline: pipeline,
			OnDeliver: func(mid types.MessageID, payload any) {
				r.checker.RecordDeliver(id, mid)
			},
		})
	}
	rt.Start()
	return r
}

// TestBundleCapRespected: with MaxBatch set, no decided bundle exceeds it
// and every message still delivers (excess rides later rounds).
func TestBundleCapRespected(t *testing.T) {
	r := newRigKnobs(t, 2, 3, 1, 2, 1)
	r.warm()
	for i := 1; i <= 10; i++ {
		r.castAt(time.Duration(10*i)*time.Millisecond, types.ProcessID(i%6))
	}
	r.rt.Scheduler().MaxSteps = 10_000_000
	r.rt.Run()
	r.verify(t)
	st := r.col.Snapshot()
	if st.MaxBatchSize > 2 {
		t.Fatalf("decided bundle of %d exceeds MaxBatch=2", st.MaxBatchSize)
	}
	if got := len(r.checker.Sequence(0)); got != 12 {
		t.Fatalf("p0 delivered %d of 12", got)
	}
}

// TestStrictKnobsWarmDegreeOne: the Theorem 5.1 regression with the
// strictest engine configuration — MaxBatch=1, Pipeline=1 must keep the
// warm-path latency degree at one.
func TestStrictKnobsWarmDegreeOne(t *testing.T) {
	r := newRigKnobs(t, 2, 3, 1, 1, 1)
	r.warm()
	var id types.MessageID
	r.rt.Scheduler().At(50*time.Millisecond, func() { id = r.cast(1) })
	r.rt.Run()
	deg, ok := r.col.LatencyDegree(id)
	if !ok || deg != 1 {
		t.Fatalf("degree = %d ok=%v, want 1 with MaxBatch=1 Pipeline=1 (Theorem 5.1)", deg, ok)
	}
	r.verify(t)
}

// TestKnobGridTotalOrder: every knob combination preserves the single
// global delivery sequence and quiescence.
func TestKnobGridTotalOrder(t *testing.T) {
	for _, tc := range []struct{ maxBatch, pipeline int }{
		{1, 1}, {2, 4}, {0, 8},
	} {
		t.Run(fmt.Sprintf("mb=%d/pl=%d", tc.maxBatch, tc.pipeline), func(t *testing.T) {
			r := newRigKnobs(t, 2, 3, 5, tc.maxBatch, tc.pipeline)
			r.warm()
			for i := 1; i <= 15; i++ {
				r.castAt(time.Duration(8*i)*time.Millisecond, types.ProcessID(i%6))
			}
			r.rt.Scheduler().MaxSteps = 10_000_000
			r.rt.Run()
			r.verify(t)
			ref := r.checker.Sequence(0)
			if len(ref) != 17 {
				t.Fatalf("p0 delivered %d of 17", len(ref))
			}
			for _, p := range r.topo.AllProcesses()[1:] {
				seq := r.checker.Sequence(p)
				if len(seq) != len(ref) {
					t.Fatalf("p%v delivered %d, want %d", p, len(seq), len(ref))
				}
				for i := range ref {
					if seq[i] != ref[i] {
						t.Fatalf("p%v diverges at %d", p, i)
					}
				}
			}
		})
	}
}
