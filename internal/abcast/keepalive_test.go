package abcast

import (
	"testing"
	"time"

	"wanamcast/internal/check"
	"wanamcast/internal/metrics"
	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/types"
)

// newRigKA is newRig with a configurable quiescence-predictor patience.
func newRigKA(t *testing.T, groups, per, keepAlive int) *rig {
	t.Helper()
	topo := types.NewTopology(groups, per)
	col := &metrics.Collector{LogSends: true}
	rt := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, col)
	r := &rig{
		topo:    topo,
		rt:      rt,
		col:     col,
		checker: check.New(topo),
		eps:     make([]*Bcast, topo.N()),
		crashed: make(map[types.ProcessID]bool),
	}
	for _, id := range topo.AllProcesses() {
		id := id
		r.eps[id] = New(Config{
			Host:            rt.Proc(id),
			Detector:        rt.Oracle(),
			KeepAliveRounds: keepAlive,
			OnDeliver: func(mid types.MessageID, payload any) {
				r.checker.RecordDeliver(id, mid)
			},
		})
	}
	rt.Start()
	return r
}

// TestKeepAliveBridgesGaps: a cast gap of ~1.5 round times makes the
// paper's 1-round predictor quiesce (Δ=2 for the next cast), while a
// patience of 3 rounds bridges it (Δ=1) — §5.3's suggested refinement.
func TestKeepAliveBridgesGaps(t *testing.T) {
	run := func(keepAlive int) int64 {
		r := newRigKA(t, 2, 3, keepAlive)
		r.warm()
		// Rounds take ~104ms. Cast again after a ~260ms gap.
		var probe types.MessageID
		r.rt.Scheduler().At(260*time.Millisecond, func() { probe = r.cast(1) })
		r.rt.Run()
		r.verify(t)
		deg, ok := r.col.LatencyDegree(probe)
		if !ok {
			t.Fatal("probe not delivered")
		}
		return deg
	}
	if deg := run(1); deg != 2 {
		t.Errorf("paper predictor: degree = %d, want 2 (rounds stopped during the gap)", deg)
	}
	if deg := run(3); deg != 1 {
		t.Errorf("patient predictor: degree = %d, want 1 (rounds bridged the gap)", deg)
	}
}

// TestKeepAliveStillQuiescent: whatever the patience, a finite workload
// still drains — Prop. A.9 must survive the extension.
func TestKeepAliveStillQuiescent(t *testing.T) {
	for _, ka := range []int{1, 2, 5} {
		r := newRigKA(t, 2, 2, ka)
		r.warm()
		r.castAt(50*time.Millisecond, 1)
		r.rt.Scheduler().MaxSteps = 2_000_000
		r.rt.Run() // termination is the assertion
		r.verify(t)
		k := r.eps[0].Round()
		bar := r.eps[0].Barrier()
		if k <= bar {
			t.Errorf("keepAlive=%d: still runnable after drain: K=%d Barrier=%d", ka, k, bar)
		}
	}
}

// TestKeepAliveCostsEmptyRounds: the patience is paid in empty-round
// bundle traffic.
func TestKeepAliveCostsEmptyRounds(t *testing.T) {
	msgs := func(keepAlive int) uint64 {
		r := newRigKA(t, 2, 3, keepAlive)
		r.warm()
		r.rt.Run()
		return r.col.Snapshot().PerProtocol["a2"].Total
	}
	m1, m4 := msgs(1), msgs(4)
	if m4 <= m1 {
		t.Errorf("patience 4 sent %d bundle messages, patience 1 sent %d — expected extra empty rounds", m4, m1)
	}
}
