// Crash recovery and restart state transfer for Algorithm A2.
//
// Recovery mirrors amcast's: RestoreSnapshot rebuilds the endpoint (round,
// Barrier, the R-Delivered working set, received remote bundles, the
// completed-round archive, and the ordering engine), Recover re-fires the
// apply cascade for decisions the snapshot knew, and ReplayRecord replays
// the WAL tail — decisions, remote-bundle receipts, adopted rounds —
// through the same code paths that produced them.
//
// State transfer is round shipping: every group member completes the same
// rounds with the same unions, so a restarted process asks its same-group
// peers for the archived unions from its round onward, applies them in
// order (delivering what it had not delivered), then adopts the peer's
// engine horizon, Barrier, and in-flight remote bundles. Until then round
// completion is gated.
package abcast

import (
	"sort"
	"time"

	"wanamcast/internal/storage"
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

// syncBatch bounds the rounds one SyncResp carries.
const syncBatch = 128

// syncRetryEvery is the re-request period while a state transfer is
// outstanding.
const syncRetryEvery = 100 * time.Millisecond

// SyncReq asks a group peer for completed rounds from From onward.
type SyncReq struct {
	From uint64
}

// RoundSet is one completed round's delivered union.
type RoundSet struct {
	Round uint64
	Set   []Record
}

// GroupBundle is one received (still in-flight) remote bundle.
type GroupBundle struct {
	Round uint64
	Group types.GroupID
	Set   []Record
}

// SyncResp is the bounded state-transfer answer.
type SyncResp struct {
	Base    uint64     // first round in Rounds
	Rounds  []RoundSet // consecutive completed rounds [Base, Base+len)
	Next    uint64     // responder's current round K
	Applied uint64     // responder's applied consensus instances
	Barrier uint64
	// Bundles (remote bundles for rounds >= Next) ride only the response
	// that completes the catch-up; chunked responses omit them.
	Bundles []GroupBundle
	TooFar  bool
	// Busy marks a responder that is itself recovering; see the amcast
	// counterpart — when EVERY group peer is Busy with nothing newer, the
	// whole group is restarting together and the requester resumes.
	Busy bool
}

// archiveRound retains one completed round for restarted peers.
func (b *Bcast) archiveRound(round uint64, union []Record) {
	if b.archCap <= 0 {
		return
	}
	b.archive, _ = storage.TrimTail(append(b.archive, roundUnion{round: round, set: union}), b.archCap)
	b.archBase = b.archive[0].round
}

// --- snapshot ---------------------------------------------------------------

// AppendSnapshot encodes the endpoint's full replicated state (including
// its ordering engine) for the host's snapshot section.
func (b *Bcast) AppendSnapshot(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, b.k)
	buf = wire.AppendUvarint(buf, b.barrier)
	buf = wire.AppendUvarint(buf, b.castSeq)
	// R-Delivered working set, in R-Delivery order.
	buf = wire.AppendUvarint(buf, uint64(len(b.rdOrder)))
	for _, id := range b.rdOrder {
		buf = b.rdelivered[id].AppendTo(buf)
	}
	// ADELIVERED ids, sorted.
	ids := make([]types.MessageID, 0, len(b.adelivered))
	for id := range b.adelivered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	buf = wire.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = id.AppendTo(buf)
	}
	// inDecided ids, sorted.
	ids = ids[:0]
	for id := range b.inDecided {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	buf = wire.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = id.AppendTo(buf)
	}
	// Own decided bundles for uncompleted rounds.
	rounds := make([]uint64, 0, len(b.decided))
	for r := range b.decided {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	buf = wire.AppendUvarint(buf, uint64(len(rounds)))
	for _, r := range rounds {
		buf = wire.AppendUvarint(buf, r)
		buf = AppendRecords(buf, b.decided[r])
	}
	// Remote bundles for uncompleted rounds, sorted by (round, group).
	var gbs []GroupBundle
	for r, perGroup := range b.bundles {
		for g, set := range perGroup {
			gbs = append(gbs, GroupBundle{Round: r, Group: g, Set: set})
		}
	}
	sortGroupBundles(gbs)
	buf = appendGroupBundles(buf, gbs)
	// Completed-round archive.
	buf = wire.AppendUvarint(buf, uint64(len(b.archive)))
	for _, ru := range b.archive {
		buf = wire.AppendUvarint(buf, ru.round)
		buf = AppendRecords(buf, ru.set)
	}
	// The ordering engine, length-prefixed.
	return wire.AppendBytes(buf, b.engine.AppendSnapshot(nil))
}

// RestoreSnapshot rebuilds the endpoint from AppendSnapshot's encoding.
func (b *Bcast) RestoreSnapshot(data []byte) error {
	var err error
	if b.k, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	if b.barrier, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	if b.castSeq, data, err = wire.Uvarint(data); err != nil {
		return err
	}
	var n int
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var r Record
		if data, err = r.DecodeFrom(data); err != nil {
			return err
		}
		b.rdelivered[r.ID] = r
		b.rdOrder = append(b.rdOrder, r.ID)
	}
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var id types.MessageID
		if id, data, err = types.DecodeMessageID(data); err != nil {
			return err
		}
		b.adelivered[id] = true
	}
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var id types.MessageID
		if id, data, err = types.DecodeMessageID(data); err != nil {
			return err
		}
		b.inDecided[id] = true
	}
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var r uint64
		if r, data, err = wire.Uvarint(data); err != nil {
			return err
		}
		var set []Record
		if set, data, err = DecodeRecords(data); err != nil {
			return err
		}
		b.decided[r] = set
	}
	var gbs []GroupBundle
	if gbs, data, err = decodeGroupBundles(data); err != nil {
		return err
	}
	for _, gb := range gbs {
		perGroup := b.bundles[gb.Round]
		if perGroup == nil {
			perGroup = make(map[types.GroupID][]Record)
			b.bundles[gb.Round] = perGroup
		}
		perGroup[gb.Group] = gb.Set
	}
	if n, data, err = wire.SliceLen(data); err != nil {
		return err
	}
	b.archive = b.archive[:0]
	for i := 0; i < n; i++ {
		var ru roundUnion
		if ru.round, data, err = wire.Uvarint(data); err != nil {
			return err
		}
		if ru.set, data, err = DecodeRecords(data); err != nil {
			return err
		}
		b.archive = append(b.archive, ru)
	}
	if len(b.archive) > 0 {
		b.archBase = b.archive[0].round
	} else {
		b.archBase = b.k
	}
	var engineBlob []byte
	if engineBlob, _, err = wire.Bytes(data); err != nil {
		return err
	}
	return b.engine.RestoreSnapshot(engineBlob)
}

// Recover re-fires the apply cascade for decisions the restored snapshot
// knew about (see amcast.Recover).
func (b *Bcast) Recover() {
	b.engine.BeginRecovery()
	b.engine.Recover()
}

// EndRecovery leaves replay mode once the WAL tail has been replayed.
func (b *Bcast) EndRecovery() { b.engine.EndRecovery() }

// ReplayRecord replays one WAL record belonging to this endpoint.
func (b *Bcast) ReplayRecord(rec storage.Record) error {
	if rec.Proto == b.engine.Label() {
		return b.engine.ReplayRecord(rec)
	}
	switch rec.Kind {
	case storage.KindBundle:
		set, _ := rec.Value.([]Record)
		b.handleBundle(types.GroupID(rec.Aux), rec.Inst, set, true)
	case storage.KindRound:
		set, _ := rec.Value.([]Record)
		b.applySyncRound(rec.Inst, set, true)
	default:
		b.api.Tracef("a2: ignoring unexpected WAL record kind %d", rec.Kind)
	}
	return nil
}

// --- state transfer ---------------------------------------------------------

// EngineLabel returns the ordering engine's wire label (the WAL namespace
// of the endpoint's consensus records).
func (b *Bcast) EngineLabel() string { return b.engine.Label() }

// Syncing reports whether a state transfer is in progress.
func (b *Bcast) Syncing() bool { return b.syncing }

// SyncFailed reports an abandoned state transfer (see amcast.SyncFailed).
func (b *Bcast) SyncFailed() bool { return b.syncFailed }

// Watermark returns how many messages this endpoint has A-Delivered,
// readable lock-free from any goroutine (the read tier's delivery
// watermark).
func (b *Bcast) Watermark() uint64 { return b.wm.Load() }

// StartSync begins catch-up from the same-group peers after a restart.
func (b *Bcast) StartSync() {
	if len(b.api.Topo().Members(b.api.Group())) <= 1 {
		b.finishSync()
		return
	}
	b.syncing = true
	b.syncFailed = false
	b.syncHeard = make(map[types.ProcessID]syncPeerInfo)
	b.sendSyncReq()
	b.armSyncRetry()
}

func (b *Bcast) sendSyncReq() {
	self := b.api.Self()
	var tos []types.ProcessID
	for _, q := range b.api.Topo().Members(b.api.Group()) {
		if q != self {
			tos = append(tos, q)
		}
	}
	b.api.Multicast(tos, b.label, SyncReq{From: b.k})
}

func (b *Bcast) armSyncRetry() {
	b.api.After(syncRetryEvery, func() {
		if !b.syncing || b.syncFailed {
			return
		}
		b.sendSyncReq()
		b.armSyncRetry()
	})
}

// onSyncReq serves a restarted peer from the completed-round archive. A
// responder that is itself syncing answers Busy: archived rounds are
// immutable facts, but its in-flight state must not be adopted.
func (b *Bcast) onSyncReq(from types.ProcessID, m SyncReq) {
	resp := SyncResp{Base: m.From, Next: b.k, Applied: b.engine.AppliedInstances(),
		Barrier: b.barrier, Busy: b.syncing}
	if m.From < b.archBase {
		resp.TooFar = true
		b.api.Send(from, b.label, resp)
		return
	}
	end := m.From + syncBatch
	if end > b.k {
		end = b.k
	}
	for r := m.From; r < end; r++ {
		resp.Rounds = append(resp.Rounds, RoundSet{Round: r, Set: b.archive[r-b.archBase].set})
	}
	// In-flight bundles ride only the response that completes the catch-up.
	if !resp.Busy && end == b.k {
		for r, perGroup := range b.bundles {
			for g, set := range perGroup {
				resp.Bundles = append(resp.Bundles, GroupBundle{Round: r, Group: g, Set: set})
			}
		}
		sortGroupBundles(resp.Bundles)
	}
	b.api.Send(from, b.label, resp)
}

// onSyncResp consumes one state-transfer answer.
func (b *Bcast) onSyncResp(from types.ProcessID, m SyncResp) {
	if !b.syncing {
		return
	}
	if m.TooFar {
		// Terminal; see the amcast counterpart.
		b.api.Tracef("a2: peer archive no longer covers round %d; cannot catch up by log transfer (sync abandoned)", b.k)
		b.syncFailed = true
		if b.onFailed != nil {
			b.onFailed()
		}
		return
	}
	progressed := false
	for _, rs := range m.Rounds {
		if rs.Round == b.k {
			b.applySyncRound(rs.Round, rs.Set, false)
			progressed = true
		}
	}
	b.syncHeard[from] = syncPeerInfo{next: m.Next, busy: m.Busy}
	switch {
	case !m.Busy && b.k >= m.Next:
		// Caught up with a serving peer: adopt its in-flight bundles and
		// horizon.
		for _, gb := range m.Bundles {
			b.adoptBundle(gb)
		}
		if m.Barrier > b.barrier {
			b.barrier = m.Barrier
		}
		b.engine.SkipTo(m.Applied + 1)
		b.finishSync()
	case progressed:
		b.sendSyncReq()
	default:
		b.maybeFinishGroupRestart()
	}
}

// maybeFinishGroupRestart resumes when every group peer has answered Busy
// with no round newer than ours — the full-group restart case; see the
// amcast counterpart.
func (b *Bcast) maybeFinishGroupRestart() {
	self := b.api.Self()
	for _, q := range b.api.Topo().Members(b.api.Group()) {
		if q == self {
			continue
		}
		info, ok := b.syncHeard[q]
		if !ok || !info.busy || info.next > b.k {
			return
		}
	}
	b.api.Tracef("a2: whole group restarting, no peer ahead of round %d; resuming", b.k)
	b.finishSync()
}

// adoptBundle installs one in-flight remote bundle learned via sync.
func (b *Bcast) adoptBundle(gb GroupBundle) {
	if gb.Round < b.k {
		return
	}
	perGroup := b.bundles[gb.Round]
	if perGroup == nil {
		perGroup = make(map[types.GroupID][]Record)
		b.bundles[gb.Round] = perGroup
	}
	if _, seen := perGroup[gb.Group]; seen {
		return
	}
	perGroup[gb.Group] = gb.Set
	b.log.Append(storage.Record{Kind: storage.KindBundle, Proto: b.label,
		Inst: gb.Round, Aux: uint64(gb.Group), Value: gb.Set})
	if gb.Round > b.barrier {
		b.barrier = gb.Round
	}
}

// applySyncRound repeats one round the group completed while this process
// was down: deliver its union's undelivered records in the deterministic
// order and advance K. replay marks WAL replay (no re-logging).
func (b *Bcast) applySyncRound(round uint64, union []Record, replay bool) {
	if round != b.k {
		return
	}
	if !replay {
		b.log.Append(storage.Record{Kind: storage.KindRound, Proto: b.label, Inst: round, Value: union})
	}
	for _, rec := range union {
		delete(b.inDecided, rec.ID)
		if _, ok := b.rdelivered[rec.ID]; ok {
			delete(b.rdelivered, rec.ID)
			b.compactRDOrder()
		}
		if b.adelivered[rec.ID] {
			continue
		}
		b.adelivered[rec.ID] = true
		b.wm.Add(1)
		b.api.RecordDeliver(rec.ID)
		b.api.Tracef("a2: A-Deliver %v in round %d (state transfer)", rec.ID, round)
		if b.onDeliver != nil {
			b.onDeliver(rec.ID, rec.Payload)
		}
	}
	delete(b.bundles, round)
	delete(b.decided, round)
	b.archiveRound(round, union)
	b.k++
	if len(union) > 0 && b.k+b.keepAlive-1 > b.barrier {
		b.barrier = b.k + b.keepAlive - 1
	}
}

// compactRDOrder drops R-Delivery order entries whose records are gone.
func (b *Bcast) compactRDOrder() {
	kept := b.rdOrder[:0]
	for _, id := range b.rdOrder {
		if _, ok := b.rdelivered[id]; ok {
			kept = append(kept, id)
		}
	}
	b.rdOrder = kept
}

// finishSync ends the transfer: round completion resumes and the engine
// pumps; the host is told so it can snapshot the synced state.
func (b *Bcast) finishSync() {
	b.syncing = false
	b.syncHeard = nil
	b.engine.Pump()
	b.tryCompleteRound()
	if b.onSynced != nil {
		b.onSynced()
	}
}

// --- helpers ----------------------------------------------------------------

func sortGroupBundles(gbs []GroupBundle) {
	sort.Slice(gbs, func(i, j int) bool {
		if gbs[i].Round != gbs[j].Round {
			return gbs[i].Round < gbs[j].Round
		}
		return gbs[i].Group < gbs[j].Group
	})
}

func appendGroupBundles(buf []byte, gbs []GroupBundle) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(gbs)))
	for _, gb := range gbs {
		buf = wire.AppendUvarint(buf, gb.Round)
		buf = wire.AppendVarint(buf, int64(gb.Group))
		buf = AppendRecords(buf, gb.Set)
	}
	return buf
}

func decodeGroupBundles(data []byte) ([]GroupBundle, []byte, error) {
	n, data, err := wire.SliceLen(data)
	if err != nil {
		return nil, nil, err
	}
	var gbs []GroupBundle
	for i := 0; i < n; i++ {
		var gb GroupBundle
		if gb.Round, data, err = wire.Uvarint(data); err != nil {
			return nil, nil, err
		}
		var g int64
		if g, data, err = wire.Varint(data); err != nil {
			return nil, nil, err
		}
		gb.Group = types.GroupID(g)
		if gb.Set, data, err = DecodeRecords(data); err != nil {
			return nil, nil, err
		}
		gbs = append(gbs, gb)
	}
	return gbs, data, nil
}
