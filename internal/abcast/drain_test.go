package abcast

import (
	"fmt"
	"testing"
	"time"

	"wanamcast/internal/types"
)

// TestRoundStateDrains: a quiescent run leaves no residue in the per-round
// or R-Delivery working sets. Late bundle copies for completed rounds must
// be dropped rather than re-stored, and delivered records must be pruned
// from rdelivered/rdOrder — both would otherwise grow with every round of
// a long-lived cluster, and fillBundle would rescan the full history on
// every Pump.
func TestRoundStateDrains(t *testing.T) {
	for _, pipeline := range []int{1, 3} {
		t.Run(fmt.Sprintf("pipeline=%d", pipeline), func(t *testing.T) {
			r := newRigKnobs(t, 3, 2, 5, 0, pipeline)
			for i := 0; i < 12; i++ {
				r.castAt(time.Duration(i*40)*time.Millisecond, types.ProcessID(i%6))
			}
			r.rt.Run()
			r.verify(t)
			for _, p := range r.topo.AllProcesses() {
				ep := r.eps[p]
				if n := len(ep.bundles); n != 0 {
					t.Errorf("p%v: %d stale bundle rounds retained", p, n)
				}
				if n := len(ep.decided); n != 0 {
					t.Errorf("p%v: %d stale decided rounds retained", p, n)
				}
				if n := len(ep.inDecided); n != 0 {
					t.Errorf("p%v: %d stale inDecided records retained", p, n)
				}
				if n := len(ep.rdelivered); n != 0 {
					t.Errorf("p%v: rdelivered retains %d delivered records", p, n)
				}
				if n := len(ep.rdOrder); n != 0 {
					t.Errorf("p%v: rdOrder retains %d entries", p, n)
				}
			}
		})
	}
}
