package abcast

import (
	"testing"
	"time"

	"wanamcast/internal/types"
)

func TestLeaderCrashBeforeCast(t *testing.T) {
	r := newRig(t, 2, 3, 1)
	r.crash(0, 0)
	r.rt.Scheduler().At(5*time.Millisecond, func() { r.cast(1) })
	r.rt.Scheduler().MaxSteps = 500000
	r.rt.Run()
	r.verify(t)
	for _, p := range []int{1, 2, 3, 4, 5} {
		if len(r.checker.Sequence(types.ProcessID(p))) != 1 {
			t.Errorf("p%d delivered %d", p, len(r.checker.Sequence(types.ProcessID(p))))
		}
	}
}
