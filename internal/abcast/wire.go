// Wire codecs for Algorithm A2's messages (see internal/wire): the
// (K, msgSet) bundle and the []Record batches that travel as consensus
// values.
package abcast

import (
	"fmt"

	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

func init() {
	wire.Register(wire.KindABcastBundle,
		func(buf []byte, m BundleMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m BundleMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindABcastRecords, AppendRecords, DecodeRecords)
	wire.Register(wire.KindA2SyncReq,
		func(buf []byte, m SyncReq) []byte { return m.AppendTo(buf) },
		func(data []byte) (m SyncReq, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindA2SyncResp,
		func(buf []byte, m SyncResp) []byte { return m.AppendTo(buf) },
		func(data []byte) (m SyncResp, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
}

// AppendTo appends m's wire encoding.
func (m SyncReq) AppendTo(buf []byte) []byte { return wire.AppendUvarint(buf, m.From) }

// DecodeFrom decodes m from data and returns the remainder.
func (m *SyncReq) DecodeFrom(data []byte) (rest []byte, err error) {
	m.From, data, err = wire.Uvarint(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m SyncResp) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Base)
	buf = wire.AppendUvarint(buf, uint64(len(m.Rounds)))
	for _, rs := range m.Rounds {
		buf = wire.AppendUvarint(buf, rs.Round)
		buf = AppendRecords(buf, rs.Set)
	}
	buf = wire.AppendUvarint(buf, m.Next)
	buf = wire.AppendUvarint(buf, m.Applied)
	buf = wire.AppendUvarint(buf, m.Barrier)
	buf = appendGroupBundles(buf, m.Bundles)
	flags := byte(0)
	if m.TooFar {
		flags |= 1
	}
	if m.Busy {
		flags |= 2
	}
	return append(buf, flags)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *SyncResp) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Base, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	var n int
	if n, data, err = wire.SliceLen(data); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var rs RoundSet
		if rs.Round, data, err = wire.Uvarint(data); err != nil {
			return nil, err
		}
		if rs.Set, data, err = DecodeRecords(data); err != nil {
			return nil, err
		}
		m.Rounds = append(m.Rounds, rs)
	}
	if m.Next, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	if m.Applied, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	if m.Barrier, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	if m.Bundles, data, err = decodeGroupBundles(data); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: sync resp flags", wire.ErrCorrupt)
	}
	m.TooFar, m.Busy, data = data[0]&1 != 0, data[0]&2 != 0, data[1:]
	return data, nil
}

// AppendTo appends r's wire encoding.
func (r Record) AppendTo(buf []byte) []byte {
	buf = r.ID.AppendTo(buf)
	return wire.AppendValue(buf, r.Payload)
}

// DecodeFrom decodes r from data and returns the remainder.
func (r *Record) DecodeFrom(data []byte) (rest []byte, err error) {
	if r.ID, data, err = types.DecodeMessageID(data); err != nil {
		return nil, err
	}
	r.Payload, data, err = wire.DecodeValue(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m BundleMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Round)
	return AppendRecords(buf, m.Set)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *BundleMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Round, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Set, data, err = DecodeRecords(data)
	return data, err
}

// AppendRecords appends a record batch (an A2 consensus value and the body
// of every bundle).
//
// Batches are delta-encoded: the first record's MessageID is written in
// full, every subsequent one as zig-zag varint deltas of (Origin, Seq)
// against its predecessor. Bundles are runs of per-origin sequences, so the
// deltas are almost always (0, +1) — two bytes where the full ID spent up
// to twelve.
func AppendRecords(buf []byte, rs []Record) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		if i == 0 {
			buf = r.AppendTo(buf)
			continue
		}
		prev := &rs[i-1]
		buf = wire.AppendVarint(buf, int64(r.ID.Origin)-int64(prev.ID.Origin))
		buf = wire.AppendVarint(buf, int64(r.ID.Seq-prev.ID.Seq))
		buf = wire.AppendValue(buf, r.Payload)
	}
	return buf
}

// DecodeRecords decodes a record batch and returns the remainder.
func DecodeRecords(data []byte) ([]Record, []byte, error) {
	n, data, err := wire.SliceLen(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	rs := make([]Record, n)
	if data, err = rs[0].DecodeFrom(data); err != nil {
		return nil, nil, err
	}
	for i := 1; i < n; i++ {
		prev := &rs[i-1]
		r := &rs[i]
		var dv int64
		if dv, data, err = wire.Varint(data); err != nil {
			return nil, nil, err
		}
		r.ID.Origin = types.ProcessID(int64(prev.ID.Origin) + dv)
		if dv, data, err = wire.Varint(data); err != nil {
			return nil, nil, err
		}
		r.ID.Seq = prev.ID.Seq + uint64(dv)
		if r.Payload, data, err = wire.DecodeValue(data); err != nil {
			return nil, nil, err
		}
	}
	return rs, data, nil
}
