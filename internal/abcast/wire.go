// Wire codecs for Algorithm A2's messages (see internal/wire): the
// (K, msgSet) bundle and the []Record batches that travel as consensus
// values.
package abcast

import (
	"wanamcast/internal/types"
	"wanamcast/internal/wire"
)

func init() {
	wire.Register(wire.KindABcastBundle,
		func(buf []byte, m BundleMsg) []byte { return m.AppendTo(buf) },
		func(data []byte) (m BundleMsg, rest []byte, err error) { rest, err = m.DecodeFrom(data); return })
	wire.Register(wire.KindABcastRecords, AppendRecords, DecodeRecords)
}

// AppendTo appends r's wire encoding.
func (r Record) AppendTo(buf []byte) []byte {
	buf = r.ID.AppendTo(buf)
	return wire.AppendValue(buf, r.Payload)
}

// DecodeFrom decodes r from data and returns the remainder.
func (r *Record) DecodeFrom(data []byte) (rest []byte, err error) {
	if r.ID, data, err = types.DecodeMessageID(data); err != nil {
		return nil, err
	}
	r.Payload, data, err = wire.DecodeValue(data)
	return data, err
}

// AppendTo appends m's wire encoding.
func (m BundleMsg) AppendTo(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, m.Round)
	return AppendRecords(buf, m.Set)
}

// DecodeFrom decodes m from data and returns the remainder.
func (m *BundleMsg) DecodeFrom(data []byte) (rest []byte, err error) {
	if m.Round, data, err = wire.Uvarint(data); err != nil {
		return nil, err
	}
	m.Set, data, err = DecodeRecords(data)
	return data, err
}

// AppendRecords appends a record batch (an A2 consensus value and the body
// of every bundle).
func AppendRecords(buf []byte, rs []Record) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(rs)))
	for _, r := range rs {
		buf = r.AppendTo(buf)
	}
	return buf
}

// DecodeRecords decodes a record batch and returns the remainder.
func DecodeRecords(data []byte) ([]Record, []byte, error) {
	n, data, err := wire.SliceLen(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	rs := make([]Record, n)
	for i := range rs {
		if data, err = rs[i].DecodeFrom(data); err != nil {
			return nil, nil, err
		}
	}
	return rs, data, nil
}
