// Package workload generates cast schedules for experiments: open-loop
// Poisson or periodic arrivals, configurable destination-set distributions
// (single-group, pairwise, spanning, or mixed), and caster placement.
// The §1 partial-replication scenario — most operations touch one or two
// groups, a few touch everything — is the default mix. ClientPlans
// additionally generates closed-loop per-client op sequences for the
// service layer's load generator (internal/svc).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"wanamcast/internal/types"
)

// Cast is one scheduled message.
type Cast struct {
	At      time.Duration
	From    types.ProcessID
	Dest    types.GroupSet
	Payload any
}

// Spec describes a workload.
type Spec struct {
	// Casts is the number of messages (required).
	Casts int
	// MeanPeriod is the mean inter-cast time (required). With Poisson
	// set, gaps are exponential with this mean; otherwise they are fixed.
	MeanPeriod time.Duration
	// Poisson selects exponential inter-arrival gaps.
	Poisson bool
	// Start offsets the first cast.
	Start time.Duration
	// Mix is the destination-set distribution; nil means the default
	// partial-replication mix (60% one group, 30% two groups, 10% all).
	Mix []MixEntry
	// Seed drives the generator.
	Seed int64
}

// MixEntry pairs a destination-set size with a relative weight. Size 0
// means "all groups".
type MixEntry struct {
	Groups int
	Weight float64
}

// DefaultMix is the §1 partial-replication scenario.
func DefaultMix() []MixEntry {
	return []MixEntry{{Groups: 1, Weight: 0.6}, {Groups: 2, Weight: 0.3}, {Groups: 0, Weight: 0.1}}
}

// Generate produces the cast schedule for topo. It panics on an invalid
// spec: workloads are test fixtures, and a bad fixture is a bug.
func Generate(topo *types.Topology, spec Spec) []Cast {
	if spec.Casts <= 0 || spec.MeanPeriod <= 0 {
		panic(fmt.Sprintf("workload: invalid spec %+v", spec))
	}
	mix := spec.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	var total float64
	for _, e := range mix {
		if e.Weight < 0 || e.Groups < 0 || e.Groups > topo.NumGroups() {
			panic(fmt.Sprintf("workload: invalid mix entry %+v", e))
		}
		total += e.Weight
	}
	if total <= 0 {
		panic("workload: mix has no weight")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	at := spec.Start
	casts := make([]Cast, 0, spec.Casts)
	for i := 0; i < spec.Casts; i++ {
		gap := spec.MeanPeriod
		if spec.Poisson {
			gap = time.Duration(rng.ExpFloat64() * float64(spec.MeanPeriod))
		}
		at += gap
		from := types.ProcessID(rng.Intn(topo.N()))
		casts = append(casts, Cast{
			At:      at,
			From:    from,
			Dest:    pickDest(topo, rng, mix, total, from),
			Payload: fmt.Sprintf("op-%d", i),
		})
	}
	return casts
}

// ClientSpec describes a closed-loop client population for the service
// layer: Clients sessions, each issuing Ops commands one at a time, with
// destination fan-out drawn from Mix.
type ClientSpec struct {
	Clients int
	Ops     int
	// Mix is the destination-set distribution; nil means DefaultMix.
	Mix  []MixEntry
	Seed int64
	// ReadFraction in [0, 1] is the share of ops that are reads (0 = the
	// historical all-write workload). Reads are single-shard and homed on
	// the client's home group — the partial-replication scenario's
	// read-mostly serving pattern, and the shape the read tier serves
	// without WAN hops.
	ReadFraction float64
}

// ClientOp is one closed-loop operation: the exact set of shards it
// touches, and whether it is a read (single-shard, served by the read
// tier) or a write (ordered). The caller maps it onto application
// commands (e.g. one key per destination shard).
type ClientOp struct {
	Dest types.GroupSet
	Read bool
}

// ClientPlans produces one op sequence per client. Client i is homed on
// group i mod |Γ| and every op's destination set includes its home shard
// (locality, as in the open-loop generator). It panics on an invalid spec.
func ClientPlans(topo *types.Topology, spec ClientSpec) [][]ClientOp {
	if spec.Clients <= 0 || spec.Ops <= 0 || spec.ReadFraction < 0 || spec.ReadFraction > 1 {
		panic(fmt.Sprintf("workload: invalid client spec %+v", spec))
	}
	mix := spec.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	var total float64
	for _, e := range mix {
		if e.Weight < 0 || e.Groups < 0 || e.Groups > topo.NumGroups() {
			panic(fmt.Sprintf("workload: invalid mix entry %+v", e))
		}
		total += e.Weight
	}
	if total <= 0 {
		panic("workload: mix has no weight")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	plans := make([][]ClientOp, spec.Clients)
	for i := range plans {
		home := types.GroupID(i % topo.NumGroups())
		from := topo.Members(home)[0]
		ops := make([]ClientOp, spec.Ops)
		for j := range ops {
			if spec.ReadFraction > 0 && rng.Float64() < spec.ReadFraction {
				ops[j] = ClientOp{Dest: types.NewGroupSet(home), Read: true}
				continue
			}
			ops[j] = ClientOp{Dest: pickDest(topo, rng, mix, total, from)}
		}
		plans[i] = ops
	}
	return plans
}

// pickDest draws a destination set from the mix. Sets of size ≥ 1 always
// include the caster's group (locality: operations touch local data).
func pickDest(topo *types.Topology, rng *rand.Rand, mix []MixEntry, total float64, from types.ProcessID) types.GroupSet {
	x := rng.Float64() * total
	var size int
	for _, e := range mix {
		if x < e.Weight {
			size = e.Groups
			break
		}
		x -= e.Weight
	}
	if size == 0 || size >= topo.NumGroups() {
		return topo.AllGroups()
	}
	dest := []types.GroupID{topo.GroupOf(from)}
	for len(dest) < size {
		g := types.GroupID(rng.Intn(topo.NumGroups()))
		dup := false
		for _, d := range dest {
			if d == g {
				dup = true
				break
			}
		}
		if !dup {
			dest = append(dest, g)
		}
	}
	return types.NewGroupSet(dest...)
}
