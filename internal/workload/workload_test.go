package workload

import (
	"testing"
	"time"

	"wanamcast/internal/types"
)

func TestGenerateCountAndOrder(t *testing.T) {
	topo := types.NewTopology(3, 3)
	casts := Generate(topo, Spec{Casts: 50, MeanPeriod: 10 * time.Millisecond, Seed: 1})
	if len(casts) != 50 {
		t.Fatalf("generated %d casts", len(casts))
	}
	for i := 1; i < len(casts); i++ {
		if casts[i].At < casts[i-1].At {
			t.Fatal("cast times not monotone")
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	topo := types.NewTopology(2, 2)
	a := Generate(topo, Spec{Casts: 20, MeanPeriod: time.Millisecond, Poisson: true, Seed: 5})
	b := Generate(topo, Spec{Casts: 20, MeanPeriod: time.Millisecond, Poisson: true, Seed: 5})
	for i := range a {
		if a[i].At != b[i].At || a[i].From != b[i].From || !a[i].Dest.Equal(b[i].Dest) {
			t.Fatal("workload not deterministic for equal seeds")
		}
	}
}

func TestDestIncludesCasterGroup(t *testing.T) {
	topo := types.NewTopology(4, 2)
	casts := Generate(topo, Spec{Casts: 200, MeanPeriod: time.Millisecond, Seed: 2})
	for _, c := range casts {
		if c.Dest.Size() < topo.NumGroups() && !c.Dest.Contains(topo.GroupOf(c.From)) {
			t.Fatalf("partial dest %v excludes caster group %v", c.Dest, topo.GroupOf(c.From))
		}
	}
}

func TestMixRespected(t *testing.T) {
	topo := types.NewTopology(3, 2)
	casts := Generate(topo, Spec{
		Casts: 300, MeanPeriod: time.Millisecond, Seed: 3,
		Mix: []MixEntry{{Groups: 2, Weight: 1}},
	})
	for _, c := range casts {
		if c.Dest.Size() != 2 {
			t.Fatalf("dest size %d, want 2", c.Dest.Size())
		}
	}
}

func TestAllGroupsEntry(t *testing.T) {
	topo := types.NewTopology(3, 2)
	casts := Generate(topo, Spec{
		Casts: 10, MeanPeriod: time.Millisecond, Seed: 4,
		Mix: []MixEntry{{Groups: 0, Weight: 1}},
	})
	for _, c := range casts {
		if c.Dest.Size() != 3 {
			t.Fatal("Groups:0 must mean all groups")
		}
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	topo := types.NewTopology(2, 2)
	for name, spec := range map[string]Spec{
		"no casts":   {MeanPeriod: time.Millisecond},
		"no period":  {Casts: 1},
		"bad mix":    {Casts: 1, MeanPeriod: time.Millisecond, Mix: []MixEntry{{Groups: 9, Weight: 1}}},
		"zero mix":   {Casts: 1, MeanPeriod: time.Millisecond, Mix: []MixEntry{{Groups: 1, Weight: 0}}},
		"neg weight": {Casts: 1, MeanPeriod: time.Millisecond, Mix: []MixEntry{{Groups: 1, Weight: -1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Generate(topo, spec)
		}()
	}
}

func TestClientPlans(t *testing.T) {
	topo := types.NewTopology(3, 2)
	spec := ClientSpec{Clients: 9, Ops: 20, Seed: 5}
	plans := ClientPlans(topo, spec)
	if len(plans) != 9 {
		t.Fatalf("got %d plans, want 9", len(plans))
	}
	for i, ops := range plans {
		if len(ops) != 20 {
			t.Fatalf("client %d has %d ops, want 20", i, len(ops))
		}
		home := types.GroupID(i % 3)
		for j, op := range ops {
			if op.Dest.Size() == 0 {
				t.Fatalf("client %d op %d has empty destination", i, j)
			}
			if !op.Dest.Contains(home) {
				t.Fatalf("client %d op %d dest %v misses home shard %v", i, j, op.Dest, home)
			}
		}
	}
	// Determinism: same seed, same plans.
	again := ClientPlans(topo, spec)
	for i := range plans {
		for j := range plans[i] {
			if !plans[i][j].Dest.Equal(again[i][j].Dest) {
				t.Fatal("ClientPlans is not deterministic for a fixed seed")
			}
		}
	}
	// The default mix reaches beyond single-shard ops.
	multi := 0
	for _, ops := range plans {
		for _, op := range ops {
			if op.Dest.Size() > 1 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("default mix produced no multi-shard ops in 180 draws")
	}
}

func TestClientPlansInvalidSpecPanics(t *testing.T) {
	topo := types.NewTopology(2, 2)
	for name, spec := range map[string]ClientSpec{
		"no clients": {Ops: 1},
		"no ops":     {Clients: 1},
		"bad mix":    {Clients: 1, Ops: 1, Mix: []MixEntry{{Groups: 9, Weight: 1}}},
		"zero mix":   {Clients: 1, Ops: 1, Mix: []MixEntry{{Groups: 1, Weight: 0}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			ClientPlans(topo, spec)
		}()
	}
}
