package amcast

import (
	"testing"
	"time"

	"wanamcast/internal/network"
	"wanamcast/internal/node"
	"wanamcast/internal/rmcast"
	"wanamcast/internal/storage"
	"wanamcast/internal/types"
)

// TestReplayMatchesPreCrashDeliveries pins the recovery-order invariant
// behind the KindAdmit WAL record: replaying a crashed endpoint's log must
// re-deliver EXACTLY the pre-crash delivery sequence — no more, no fewer,
// same order.
//
// Before admissions were logged, a message admitted only via reliable
// multicast (stage s0, no consensus record yet) vanished from the
// replayed PENDING set; the ADeliveryTest barrier it provided vanished
// with it, and replay over-delivered an s3 message ahead of the group's
// order. The restarted replica then skipped the message forever (the
// state transfer saw it as already delivered) and its delivery sequence
// diverged from the group's — found by the chaos suite's
// partition-recovery scenario under client load.
//
// The construction forces the hazardous state deterministically at the
// victim p2 (group g0 = {0,1,2}) via per-pair link delays:
//
//   - m_a = m(5,1), cast by p5 to {g0,g1}: reaches s3/ts=0 at the victim
//     at ~104ms (g0 and g1 both propose 0, so s2 is skipped);
//   - m_b = m(4,1), cast by p4 to {g0} ONLY (single-group: no (TS, m)
//     traffic ever mentions it, so no TSProp record can re-admit it): the
//     link p4→p2 is fast (1ms), so the victim admits it at ~2ms with
//     provisional ts=0 — while p4→{p0,p1} is slow (300ms) and the
//     victim's own consensus traffic toward the leader p0 is slow
//     (200ms), so NO consensus instance includes m_b before ~205ms: the
//     rmcast admission is the only trace of it in the victim's log.
//
// From ~104ms to ~205ms the victim holds m_a@s3/ts=0 blocked by the
// rmcast-only m_b@s0/ts=0 (m(4,1) < m(5,1) breaks the timestamp tie), and
// delivers nothing. A crash at 150ms must therefore replay into zero
// deliveries; a replay that loses the admission delivers m_a — out of the
// group's order, which delivers m_b first.
func TestReplayMatchesPreCrashDeliveries(t *testing.T) {
	const (
		victim = types.ProcessID(2)
		leader = types.ProcessID(0)
	)
	topo := types.NewTopology(2, 3)
	store := storage.NewMem()
	model := network.Model{
		IntraGroup: time.Millisecond,
		InterGroup: 100 * time.Millisecond,
		PairDelay: func(from, to types.ProcessID) (time.Duration, bool) {
			switch {
			case from == 4 && to == victim:
				return time.Millisecond, true // m_b reaches the victim at once
			case from == 4 && (to == 0 || to == 1):
				return 300 * time.Millisecond, true // ...and the rest of g0 very late
			case from == victim && to == leader:
				return 200 * time.Millisecond, true // victim's forwards/votes crawl
			}
			return 0, false
		},
	}
	rt := node.NewRuntime(topo, model, 1, nil)
	var deliveries []types.MessageID
	eps := make([]*Mcast, topo.N())
	for _, id := range topo.AllProcesses() {
		id := id
		var lg *storage.Log
		if id == victim {
			lg = storage.NewLog(store)
		}
		eps[id] = New(Config{
			Host:       rt.Proc(id),
			Detector:   rt.Oracle(),
			SkipStages: true,
			Log:        lg,
			OnDeliver: func(m rmcast.Message) {
				if id == victim {
					deliveries = append(deliveries, m.ID)
				}
			},
		})
	}
	rt.Start()
	rt.Scheduler().At(0, func() { eps[5].AMCast("m_a", types.NewGroupSet(0, 1)) })
	rt.Scheduler().At(time.Millisecond, func() { eps[4].AMCast("m_b", types.NewGroupSet(0)) })
	rt.CrashAt(victim, 150*time.Millisecond)
	rt.RunUntil(400 * time.Millisecond)

	// Sanity-check the construction: at the crash the victim must have
	// been holding m_a at s3 behind the rmcast-only m_b, delivering
	// neither.
	if len(deliveries) != 0 {
		t.Fatalf("construction broke: victim delivered %v before the crash", deliveries)
	}
	if n := eps[victim].PendingCount(); n != 2 {
		t.Fatalf("construction broke: victim crashed with %d pending (want m_a@s3 + m_b@s0)", n)
	}

	// Replay the victim's WAL into a fresh incarnation and record what it
	// re-delivers (no snapshot was ever taken, so the log is the whole
	// history).
	rt2 := node.NewRuntime(topo, network.Model{IntraGroup: time.Millisecond, InterGroup: 100 * time.Millisecond}, 1, nil)
	var replayed []types.MessageID
	shadow := New(Config{
		Host:       rt2.Proc(victim),
		Detector:   rt2.Oracle(),
		SkipStages: true,
		Log:        storage.NewLog(storage.NewMem()), // replay must not re-log into the source
		OnDeliver:  func(m rmcast.Message) { replayed = append(replayed, m.ID) },
	})
	rt2.Proc(victim).SetRecovering(true)
	_, from, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	shadow.Recover()
	err = store.Replay(from, func(rec storage.Record) error {
		if rec.Proto == shadow.Proto() || rec.Proto == shadow.EngineLabel() {
			return shadow.ReplayRecord(rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	shadow.EndRecovery()

	if len(replayed) != 0 {
		t.Fatalf("replay over-delivered %v: the pre-crash endpoint had delivered nothing "+
			"(the rmcast-only admission's barrier was lost)", replayed)
	}
	if shadow.PendingCount() != 2 {
		t.Fatalf("replayed PENDING has %d entries, want 2 (m_a@s3 and the rmcast-only m_b@s0)",
			shadow.PendingCount())
	}
	if shadow.Delivered() != 0 {
		t.Fatalf("replayed delivered counter = %d, want 0", shadow.Delivered())
	}
	// And the gate: with group peers present, a recovered endpoint must
	// stay delivery-gated until its state transfer confirms the group
	// prefix (EndRecovery arms it, finishSync lifts it).
	if !shadow.Syncing() {
		t.Fatal("recovered endpoint not delivery-gated before state transfer")
	}
}
